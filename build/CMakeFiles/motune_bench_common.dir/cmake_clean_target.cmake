file(REMOVE_RECURSE
  "libmotune_bench_common.a"
)
