# Empty compiler generated dependencies file for motune_bench_common.
# This may be replaced when dependencies are built.
