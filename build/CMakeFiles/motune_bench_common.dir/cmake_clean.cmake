file(REMOVE_RECURSE
  "CMakeFiles/motune_bench_common.dir/bench/common.cpp.o"
  "CMakeFiles/motune_bench_common.dir/bench/common.cpp.o.d"
  "libmotune_bench_common.a"
  "libmotune_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motune_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
