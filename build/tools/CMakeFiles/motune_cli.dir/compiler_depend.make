# Empty compiler generated dependencies file for motune_cli.
# This may be replaced when dependencies are built.
