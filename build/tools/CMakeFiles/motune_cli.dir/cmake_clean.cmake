file(REMOVE_RECURSE
  "CMakeFiles/motune_cli.dir/motune_cli.cpp.o"
  "CMakeFiles/motune_cli.dir/motune_cli.cpp.o.d"
  "motune"
  "motune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motune_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
