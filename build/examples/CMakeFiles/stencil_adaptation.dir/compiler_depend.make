# Empty compiler generated dependencies file for stencil_adaptation.
# This may be replaced when dependencies are built.
