file(REMOVE_RECURSE
  "CMakeFiles/stencil_adaptation.dir/stencil_adaptation.cpp.o"
  "CMakeFiles/stencil_adaptation.dir/stencil_adaptation.cpp.o.d"
  "stencil_adaptation"
  "stencil_adaptation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil_adaptation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
