
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/integration_test.cpp" "tests/CMakeFiles/integration_test.dir/integration_test.cpp.o" "gcc" "tests/CMakeFiles/integration_test.dir/integration_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/cachesim/CMakeFiles/motune_cachesim.dir/DependInfo.cmake"
  "/root/repo/build/src/autotune/CMakeFiles/motune_autotune.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/motune_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/motune_core.dir/DependInfo.cmake"
  "/root/repo/build/src/tuning/CMakeFiles/motune_tuning.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/motune_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/motune_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/motune_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/motune_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/analyzer/CMakeFiles/motune_analyzer.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/motune_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/motune_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/multiversion/CMakeFiles/motune_multiversion.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/motune_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
