# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/machine_test[1]_include.cmake")
include("/root/repo/build/tests/cachesim_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/analyzer_test[1]_include.cmake")
include("/root/repo/build/tests/transform_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/kernels_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/perfmodel_test[1]_include.cmake")
include("/root/repo/build/tests/tuning_test[1]_include.cmake")
include("/root/repo/build/tests/optimizer_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/artifact_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/paper_shapes_test[1]_include.cmake")
include("/root/repo/build/tests/parse_test[1]_include.cmake")
include("/root/repo/build/tests/fusion_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
