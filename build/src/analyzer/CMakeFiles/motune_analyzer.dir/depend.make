# Empty dependencies file for motune_analyzer.
# This may be replaced when dependencies are built.
