
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analyzer/access.cpp" "src/analyzer/CMakeFiles/motune_analyzer.dir/access.cpp.o" "gcc" "src/analyzer/CMakeFiles/motune_analyzer.dir/access.cpp.o.d"
  "/root/repo/src/analyzer/dependence.cpp" "src/analyzer/CMakeFiles/motune_analyzer.dir/dependence.cpp.o" "gcc" "src/analyzer/CMakeFiles/motune_analyzer.dir/dependence.cpp.o.d"
  "/root/repo/src/analyzer/region.cpp" "src/analyzer/CMakeFiles/motune_analyzer.dir/region.cpp.o" "gcc" "src/analyzer/CMakeFiles/motune_analyzer.dir/region.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/motune_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/motune_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/motune_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
