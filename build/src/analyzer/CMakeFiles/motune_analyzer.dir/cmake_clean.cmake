file(REMOVE_RECURSE
  "CMakeFiles/motune_analyzer.dir/access.cpp.o"
  "CMakeFiles/motune_analyzer.dir/access.cpp.o.d"
  "CMakeFiles/motune_analyzer.dir/dependence.cpp.o"
  "CMakeFiles/motune_analyzer.dir/dependence.cpp.o.d"
  "CMakeFiles/motune_analyzer.dir/region.cpp.o"
  "CMakeFiles/motune_analyzer.dir/region.cpp.o.d"
  "libmotune_analyzer.a"
  "libmotune_analyzer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motune_analyzer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
