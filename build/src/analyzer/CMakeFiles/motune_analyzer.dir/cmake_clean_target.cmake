file(REMOVE_RECURSE
  "libmotune_analyzer.a"
)
