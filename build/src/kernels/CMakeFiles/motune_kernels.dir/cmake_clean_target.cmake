file(REMOVE_RECURSE
  "libmotune_kernels.a"
)
