file(REMOVE_RECURSE
  "CMakeFiles/motune_kernels.dir/irbuilders.cpp.o"
  "CMakeFiles/motune_kernels.dir/irbuilders.cpp.o.d"
  "CMakeFiles/motune_kernels.dir/kernel.cpp.o"
  "CMakeFiles/motune_kernels.dir/kernel.cpp.o.d"
  "CMakeFiles/motune_kernels.dir/native.cpp.o"
  "CMakeFiles/motune_kernels.dir/native.cpp.o.d"
  "libmotune_kernels.a"
  "libmotune_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motune_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
