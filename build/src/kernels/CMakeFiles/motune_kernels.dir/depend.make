# Empty dependencies file for motune_kernels.
# This may be replaced when dependencies are built.
