
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernels/irbuilders.cpp" "src/kernels/CMakeFiles/motune_kernels.dir/irbuilders.cpp.o" "gcc" "src/kernels/CMakeFiles/motune_kernels.dir/irbuilders.cpp.o.d"
  "/root/repo/src/kernels/kernel.cpp" "src/kernels/CMakeFiles/motune_kernels.dir/kernel.cpp.o" "gcc" "src/kernels/CMakeFiles/motune_kernels.dir/kernel.cpp.o.d"
  "/root/repo/src/kernels/native.cpp" "src/kernels/CMakeFiles/motune_kernels.dir/native.cpp.o" "gcc" "src/kernels/CMakeFiles/motune_kernels.dir/native.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/motune_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/motune_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/motune_support.dir/DependInfo.cmake"
  "/root/repo/build/src/multiversion/CMakeFiles/motune_multiversion.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
