# CMake generated Testfile for 
# Source directory: /root/repo/src/multiversion
# Build directory: /root/repo/build/src/multiversion
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
