file(REMOVE_RECURSE
  "libmotune_multiversion.a"
)
