# Empty compiler generated dependencies file for motune_multiversion.
# This may be replaced when dependencies are built.
