file(REMOVE_RECURSE
  "CMakeFiles/motune_multiversion.dir/version_table.cpp.o"
  "CMakeFiles/motune_multiversion.dir/version_table.cpp.o.d"
  "libmotune_multiversion.a"
  "libmotune_multiversion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motune_multiversion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
