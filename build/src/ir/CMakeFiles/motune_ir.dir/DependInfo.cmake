
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/affine.cpp" "src/ir/CMakeFiles/motune_ir.dir/affine.cpp.o" "gcc" "src/ir/CMakeFiles/motune_ir.dir/affine.cpp.o.d"
  "/root/repo/src/ir/expr.cpp" "src/ir/CMakeFiles/motune_ir.dir/expr.cpp.o" "gcc" "src/ir/CMakeFiles/motune_ir.dir/expr.cpp.o.d"
  "/root/repo/src/ir/interp.cpp" "src/ir/CMakeFiles/motune_ir.dir/interp.cpp.o" "gcc" "src/ir/CMakeFiles/motune_ir.dir/interp.cpp.o.d"
  "/root/repo/src/ir/parse.cpp" "src/ir/CMakeFiles/motune_ir.dir/parse.cpp.o" "gcc" "src/ir/CMakeFiles/motune_ir.dir/parse.cpp.o.d"
  "/root/repo/src/ir/print.cpp" "src/ir/CMakeFiles/motune_ir.dir/print.cpp.o" "gcc" "src/ir/CMakeFiles/motune_ir.dir/print.cpp.o.d"
  "/root/repo/src/ir/program.cpp" "src/ir/CMakeFiles/motune_ir.dir/program.cpp.o" "gcc" "src/ir/CMakeFiles/motune_ir.dir/program.cpp.o.d"
  "/root/repo/src/ir/simplify.cpp" "src/ir/CMakeFiles/motune_ir.dir/simplify.cpp.o" "gcc" "src/ir/CMakeFiles/motune_ir.dir/simplify.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/motune_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
