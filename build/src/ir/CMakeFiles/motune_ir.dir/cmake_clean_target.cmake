file(REMOVE_RECURSE
  "libmotune_ir.a"
)
