file(REMOVE_RECURSE
  "CMakeFiles/motune_ir.dir/affine.cpp.o"
  "CMakeFiles/motune_ir.dir/affine.cpp.o.d"
  "CMakeFiles/motune_ir.dir/expr.cpp.o"
  "CMakeFiles/motune_ir.dir/expr.cpp.o.d"
  "CMakeFiles/motune_ir.dir/interp.cpp.o"
  "CMakeFiles/motune_ir.dir/interp.cpp.o.d"
  "CMakeFiles/motune_ir.dir/parse.cpp.o"
  "CMakeFiles/motune_ir.dir/parse.cpp.o.d"
  "CMakeFiles/motune_ir.dir/print.cpp.o"
  "CMakeFiles/motune_ir.dir/print.cpp.o.d"
  "CMakeFiles/motune_ir.dir/program.cpp.o"
  "CMakeFiles/motune_ir.dir/program.cpp.o.d"
  "CMakeFiles/motune_ir.dir/simplify.cpp.o"
  "CMakeFiles/motune_ir.dir/simplify.cpp.o.d"
  "libmotune_ir.a"
  "libmotune_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motune_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
