# Empty compiler generated dependencies file for motune_ir.
# This may be replaced when dependencies are built.
