# Empty compiler generated dependencies file for motune_core.
# This may be replaced when dependencies are built.
