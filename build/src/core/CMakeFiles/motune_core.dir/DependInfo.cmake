
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/gde3.cpp" "src/core/CMakeFiles/motune_core.dir/gde3.cpp.o" "gcc" "src/core/CMakeFiles/motune_core.dir/gde3.cpp.o.d"
  "/root/repo/src/core/grid_search.cpp" "src/core/CMakeFiles/motune_core.dir/grid_search.cpp.o" "gcc" "src/core/CMakeFiles/motune_core.dir/grid_search.cpp.o.d"
  "/root/repo/src/core/hypervolume.cpp" "src/core/CMakeFiles/motune_core.dir/hypervolume.cpp.o" "gcc" "src/core/CMakeFiles/motune_core.dir/hypervolume.cpp.o.d"
  "/root/repo/src/core/nsga2.cpp" "src/core/CMakeFiles/motune_core.dir/nsga2.cpp.o" "gcc" "src/core/CMakeFiles/motune_core.dir/nsga2.cpp.o.d"
  "/root/repo/src/core/pareto.cpp" "src/core/CMakeFiles/motune_core.dir/pareto.cpp.o" "gcc" "src/core/CMakeFiles/motune_core.dir/pareto.cpp.o.d"
  "/root/repo/src/core/random_search.cpp" "src/core/CMakeFiles/motune_core.dir/random_search.cpp.o" "gcc" "src/core/CMakeFiles/motune_core.dir/random_search.cpp.o.d"
  "/root/repo/src/core/roughset.cpp" "src/core/CMakeFiles/motune_core.dir/roughset.cpp.o" "gcc" "src/core/CMakeFiles/motune_core.dir/roughset.cpp.o.d"
  "/root/repo/src/core/rsgde3.cpp" "src/core/CMakeFiles/motune_core.dir/rsgde3.cpp.o" "gcc" "src/core/CMakeFiles/motune_core.dir/rsgde3.cpp.o.d"
  "/root/repo/src/core/testproblems.cpp" "src/core/CMakeFiles/motune_core.dir/testproblems.cpp.o" "gcc" "src/core/CMakeFiles/motune_core.dir/testproblems.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tuning/CMakeFiles/motune_tuning.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/motune_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/motune_support.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/motune_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/analyzer/CMakeFiles/motune_analyzer.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/motune_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/motune_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/motune_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/multiversion/CMakeFiles/motune_multiversion.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/motune_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
