file(REMOVE_RECURSE
  "libmotune_core.a"
)
