file(REMOVE_RECURSE
  "CMakeFiles/motune_core.dir/gde3.cpp.o"
  "CMakeFiles/motune_core.dir/gde3.cpp.o.d"
  "CMakeFiles/motune_core.dir/grid_search.cpp.o"
  "CMakeFiles/motune_core.dir/grid_search.cpp.o.d"
  "CMakeFiles/motune_core.dir/hypervolume.cpp.o"
  "CMakeFiles/motune_core.dir/hypervolume.cpp.o.d"
  "CMakeFiles/motune_core.dir/nsga2.cpp.o"
  "CMakeFiles/motune_core.dir/nsga2.cpp.o.d"
  "CMakeFiles/motune_core.dir/pareto.cpp.o"
  "CMakeFiles/motune_core.dir/pareto.cpp.o.d"
  "CMakeFiles/motune_core.dir/random_search.cpp.o"
  "CMakeFiles/motune_core.dir/random_search.cpp.o.d"
  "CMakeFiles/motune_core.dir/roughset.cpp.o"
  "CMakeFiles/motune_core.dir/roughset.cpp.o.d"
  "CMakeFiles/motune_core.dir/rsgde3.cpp.o"
  "CMakeFiles/motune_core.dir/rsgde3.cpp.o.d"
  "CMakeFiles/motune_core.dir/testproblems.cpp.o"
  "CMakeFiles/motune_core.dir/testproblems.cpp.o.d"
  "libmotune_core.a"
  "libmotune_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motune_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
