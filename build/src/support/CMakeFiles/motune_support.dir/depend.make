# Empty dependencies file for motune_support.
# This may be replaced when dependencies are built.
