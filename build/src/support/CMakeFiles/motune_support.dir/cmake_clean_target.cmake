file(REMOVE_RECURSE
  "libmotune_support.a"
)
