file(REMOVE_RECURSE
  "CMakeFiles/motune_support.dir/json.cpp.o"
  "CMakeFiles/motune_support.dir/json.cpp.o.d"
  "CMakeFiles/motune_support.dir/rng.cpp.o"
  "CMakeFiles/motune_support.dir/rng.cpp.o.d"
  "CMakeFiles/motune_support.dir/stats.cpp.o"
  "CMakeFiles/motune_support.dir/stats.cpp.o.d"
  "CMakeFiles/motune_support.dir/table.cpp.o"
  "CMakeFiles/motune_support.dir/table.cpp.o.d"
  "libmotune_support.a"
  "libmotune_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motune_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
