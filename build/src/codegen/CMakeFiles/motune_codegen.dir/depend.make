# Empty dependencies file for motune_codegen.
# This may be replaced when dependencies are built.
