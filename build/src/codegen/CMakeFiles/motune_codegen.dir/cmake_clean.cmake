file(REMOVE_RECURSE
  "CMakeFiles/motune_codegen.dir/cemit.cpp.o"
  "CMakeFiles/motune_codegen.dir/cemit.cpp.o.d"
  "libmotune_codegen.a"
  "libmotune_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motune_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
