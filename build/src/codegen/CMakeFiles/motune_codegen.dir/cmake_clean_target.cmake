file(REMOVE_RECURSE
  "libmotune_codegen.a"
)
