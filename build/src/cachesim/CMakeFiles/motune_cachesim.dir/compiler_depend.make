# Empty compiler generated dependencies file for motune_cachesim.
# This may be replaced when dependencies are built.
