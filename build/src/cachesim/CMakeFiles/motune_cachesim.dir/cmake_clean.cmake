file(REMOVE_RECURSE
  "CMakeFiles/motune_cachesim.dir/cache.cpp.o"
  "CMakeFiles/motune_cachesim.dir/cache.cpp.o.d"
  "CMakeFiles/motune_cachesim.dir/hierarchy.cpp.o"
  "CMakeFiles/motune_cachesim.dir/hierarchy.cpp.o.d"
  "libmotune_cachesim.a"
  "libmotune_cachesim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motune_cachesim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
