file(REMOVE_RECURSE
  "libmotune_cachesim.a"
)
