file(REMOVE_RECURSE
  "libmotune_autotune.a"
)
