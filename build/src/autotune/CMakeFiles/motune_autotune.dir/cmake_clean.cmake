file(REMOVE_RECURSE
  "CMakeFiles/motune_autotune.dir/artifact.cpp.o"
  "CMakeFiles/motune_autotune.dir/artifact.cpp.o.d"
  "CMakeFiles/motune_autotune.dir/autotuner.cpp.o"
  "CMakeFiles/motune_autotune.dir/autotuner.cpp.o.d"
  "CMakeFiles/motune_autotune.dir/backend.cpp.o"
  "CMakeFiles/motune_autotune.dir/backend.cpp.o.d"
  "libmotune_autotune.a"
  "libmotune_autotune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motune_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
