# Empty compiler generated dependencies file for motune_autotune.
# This may be replaced when dependencies are built.
