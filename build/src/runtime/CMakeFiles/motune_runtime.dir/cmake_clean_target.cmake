file(REMOVE_RECURSE
  "libmotune_runtime.a"
)
