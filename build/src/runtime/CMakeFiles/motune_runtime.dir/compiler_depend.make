# Empty compiler generated dependencies file for motune_runtime.
# This may be replaced when dependencies are built.
