file(REMOVE_RECURSE
  "CMakeFiles/motune_runtime.dir/parallel_for.cpp.o"
  "CMakeFiles/motune_runtime.dir/parallel_for.cpp.o.d"
  "CMakeFiles/motune_runtime.dir/policy.cpp.o"
  "CMakeFiles/motune_runtime.dir/policy.cpp.o.d"
  "CMakeFiles/motune_runtime.dir/region.cpp.o"
  "CMakeFiles/motune_runtime.dir/region.cpp.o.d"
  "CMakeFiles/motune_runtime.dir/scheduler.cpp.o"
  "CMakeFiles/motune_runtime.dir/scheduler.cpp.o.d"
  "CMakeFiles/motune_runtime.dir/thread_pool.cpp.o"
  "CMakeFiles/motune_runtime.dir/thread_pool.cpp.o.d"
  "libmotune_runtime.a"
  "libmotune_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motune_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
