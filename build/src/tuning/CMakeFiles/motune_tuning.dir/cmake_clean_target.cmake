file(REMOVE_RECURSE
  "libmotune_tuning.a"
)
