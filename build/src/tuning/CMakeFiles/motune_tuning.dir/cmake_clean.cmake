file(REMOVE_RECURSE
  "CMakeFiles/motune_tuning.dir/evaluator.cpp.o"
  "CMakeFiles/motune_tuning.dir/evaluator.cpp.o.d"
  "CMakeFiles/motune_tuning.dir/kernel_problem.cpp.o"
  "CMakeFiles/motune_tuning.dir/kernel_problem.cpp.o.d"
  "CMakeFiles/motune_tuning.dir/native_evaluator.cpp.o"
  "CMakeFiles/motune_tuning.dir/native_evaluator.cpp.o.d"
  "CMakeFiles/motune_tuning.dir/search_space.cpp.o"
  "CMakeFiles/motune_tuning.dir/search_space.cpp.o.d"
  "libmotune_tuning.a"
  "libmotune_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motune_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
