
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tuning/evaluator.cpp" "src/tuning/CMakeFiles/motune_tuning.dir/evaluator.cpp.o" "gcc" "src/tuning/CMakeFiles/motune_tuning.dir/evaluator.cpp.o.d"
  "/root/repo/src/tuning/kernel_problem.cpp" "src/tuning/CMakeFiles/motune_tuning.dir/kernel_problem.cpp.o" "gcc" "src/tuning/CMakeFiles/motune_tuning.dir/kernel_problem.cpp.o.d"
  "/root/repo/src/tuning/native_evaluator.cpp" "src/tuning/CMakeFiles/motune_tuning.dir/native_evaluator.cpp.o" "gcc" "src/tuning/CMakeFiles/motune_tuning.dir/native_evaluator.cpp.o.d"
  "/root/repo/src/tuning/search_space.cpp" "src/tuning/CMakeFiles/motune_tuning.dir/search_space.cpp.o" "gcc" "src/tuning/CMakeFiles/motune_tuning.dir/search_space.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analyzer/CMakeFiles/motune_analyzer.dir/DependInfo.cmake"
  "/root/repo/build/src/perfmodel/CMakeFiles/motune_perfmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/motune_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/motune_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/motune_support.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/motune_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/motune_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/multiversion/CMakeFiles/motune_multiversion.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/motune_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
