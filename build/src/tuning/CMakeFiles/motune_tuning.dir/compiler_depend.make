# Empty compiler generated dependencies file for motune_tuning.
# This may be replaced when dependencies are built.
