file(REMOVE_RECURSE
  "libmotune_machine.a"
)
