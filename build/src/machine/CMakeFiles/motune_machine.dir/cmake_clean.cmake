file(REMOVE_RECURSE
  "CMakeFiles/motune_machine.dir/machine.cpp.o"
  "CMakeFiles/motune_machine.dir/machine.cpp.o.d"
  "libmotune_machine.a"
  "libmotune_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motune_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
