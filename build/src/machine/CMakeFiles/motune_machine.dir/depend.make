# Empty dependencies file for motune_machine.
# This may be replaced when dependencies are built.
