# Empty dependencies file for motune_perfmodel.
# This may be replaced when dependencies are built.
