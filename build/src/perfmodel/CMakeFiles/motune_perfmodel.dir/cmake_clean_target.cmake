file(REMOVE_RECURSE
  "libmotune_perfmodel.a"
)
