file(REMOVE_RECURSE
  "CMakeFiles/motune_perfmodel.dir/costmodel.cpp.o"
  "CMakeFiles/motune_perfmodel.dir/costmodel.cpp.o.d"
  "CMakeFiles/motune_perfmodel.dir/footprint.cpp.o"
  "CMakeFiles/motune_perfmodel.dir/footprint.cpp.o.d"
  "libmotune_perfmodel.a"
  "libmotune_perfmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motune_perfmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
