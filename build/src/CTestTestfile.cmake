# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("machine")
subdirs("cachesim")
subdirs("ir")
subdirs("transform")
subdirs("analyzer")
subdirs("codegen")
subdirs("multiversion")
subdirs("runtime")
subdirs("kernels")
subdirs("perfmodel")
subdirs("tuning")
subdirs("core")
subdirs("autotune")
