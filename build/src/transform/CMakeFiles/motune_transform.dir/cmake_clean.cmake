file(REMOVE_RECURSE
  "CMakeFiles/motune_transform.dir/fusion.cpp.o"
  "CMakeFiles/motune_transform.dir/fusion.cpp.o.d"
  "CMakeFiles/motune_transform.dir/transforms.cpp.o"
  "CMakeFiles/motune_transform.dir/transforms.cpp.o.d"
  "libmotune_transform.a"
  "libmotune_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/motune_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
