# Empty dependencies file for motune_transform.
# This may be replaced when dependencies are built.
