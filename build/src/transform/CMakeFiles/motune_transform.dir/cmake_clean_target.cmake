file(REMOVE_RECURSE
  "libmotune_transform.a"
)
