// Source-to-source tour: what the compiler side of the framework does to a
// region, shown as C code at every stage — analysis, tiling + collapsing +
// parallelization, and the final multi-versioned module (paper Fig. 6).
//
//   $ ./codegen_tour
#include "analyzer/dependence.h"
#include "analyzer/region.h"
#include "autotune/autotuner.h"
#include "autotune/backend.h"
#include "codegen/cemit.h"
#include "ir/print.h"
#include "kernels/kernel.h"
#include "machine/machine.h"

#include <iostream>

using namespace motune;

int main() {
  const std::int64_t n = 1024;
  const ir::Program mm = kernels::buildMM(n);

  std::cout << "=== 1. Input region (paper Fig. 7: IJK matrix multiply) ===\n"
            << codegen::emitFunction(mm, "mm_input") << "\n";

  std::cout << "=== 2. Analyzer: dependences and the tileable band ===\n";
  const auto deps = analyzer::computeDependences(mm);
  for (const auto& d : *deps) {
    std::cout << "dependence on '" << d.array << "' with distance (";
    for (std::size_t i = 0; i < d.distance.size(); ++i) {
      if (i) std::cout << ", ";
      if (d.distance[i].isExact())
        std::cout << d.distance[i].value;
      else
        std::cout << "*";
    }
    std::cout << ") over (";
    for (std::size_t i = 0; i < d.loopIvs.size(); ++i)
      std::cout << (i ? ", " : "") << d.loopIvs[i];
    std::cout << ")\n";
  }
  const analyzer::RegionInfo info = analyzer::analyzeRegion(mm);
  std::cout << "tileable band depth: " << info.tileableDepth
            << ", outer loop parallelizable: "
            << (info.outerParallelizable ? "yes" : "no") << "\n\n";

  std::cout << "=== 3. One instantiated transformation skeleton ===\n"
            << "(tiles (64, 128, 16); the thread count is runtime "
               "metadata)\n";
  const auto skeleton = analyzer::TransformationSkeleton::build(mm, 40);
  const ir::Program tiled =
      skeleton.instantiate(std::vector<std::int64_t>{64, 128, 16, 8});
  std::cout << codegen::emitFunction(tiled, "mm_tiled_64_128_16") << "\n";

  std::cout << "=== 4. Tune and emit the multi-versioned module ===\n";
  tuning::KernelTuningProblem problem(kernels::kernelByName("mm"),
                                      machine::westmere(), n);
  autotune::TunerOptions options;
  options.gde3.maxGenerations = 30;
  autotune::AutoTuner tuner(options);
  const autotune::TuningResult result = tuner.tune(problem);
  std::cout << "(" << result.front.size() << " versions from "
            << result.evaluations << " evaluations)\n\n"
            << autotune::emitMultiVersionedC(result, problem);
  return 0;
}
