// Runtime adaptation: a multi-versioned jacobi-2d region inside a server
// whose free core count fluctuates with external load.
//
// This is the scenario the paper defers to the runtime system (§III.A
// label 6): the static optimizer publishes one version per Pareto point,
// and "dynamic or static task schedulers could be extended to exploit this
// additional flexibility". Here a simple scheduler applies a ThreadCapPolicy
// per invocation and we watch which versions it picks over a simulated day.
//
//   $ ./stencil_adaptation
#include "autotune/autotuner.h"
#include "autotune/backend.h"
#include "kernels/kernel.h"
#include "machine/machine.h"
#include "runtime/region.h"
#include "support/table.h"

#include <cmath>
#include <iostream>

using namespace motune;

int main() {
  const machine::MachineModel target = machine::barcelona();
  tuning::KernelTuningProblem problem(kernels::kernelByName("jacobi-2d"),
                                      target);

  autotune::TunerOptions options;
  options.gde3.seed = 7;
  autotune::AutoTuner tuner(options);
  const autotune::TuningResult result = tuner.tune(problem);
  std::cout << "Tuned jacobi-2d on " << target.name << ": "
            << result.front.size() << " Pareto-optimal versions, "
            << result.evaluations << " evaluations.\n\n";

  runtime::ThreadPool pool;
  mv::VersionTable versions =
      autotune::buildVersionTable(result, problem, pool, /*nativeN=*/256);
  runtime::Region region(std::move(versions));

  // A day of load: external jobs occupy cores following a daytime curve;
  // the region gets whatever is left (at least one core).
  const int hours = 24;
  support::TextTable timeline("24h adaptation timeline");
  timeline.setHeader({"hour", "free cores", "chosen version", "threads",
                      "est. time"});
  for (int h = 0; h < hours; ++h) {
    const double daytimeLoad =
        0.5 + 0.45 * std::sin((h - 6) * 3.14159 / 12.0); // peak afternoon
    const int busy = static_cast<int>(daytimeLoad * target.totalCores());
    const int freeCores = std::max(1, target.totalCores() - busy);

    runtime::ThreadCapPolicy policy(freeCores);
    const std::size_t pick = region.invoke(policy);
    const mv::VersionMeta& m = region.table()[pick].meta;
    timeline.addRow({std::to_string(h) + ":00", std::to_string(freeCores),
                     "v" + std::to_string(pick), std::to_string(m.threads),
                     support::fmtSeconds(m.timeSeconds)});
  }
  std::cout << timeline.render() << "\n";

  // Invocation histogram: the monitoring data a scheduler would consume.
  support::TextTable histogram("version usage histogram");
  histogram.setHeader({"version", "threads", "tile", "invocations"});
  for (std::size_t v = 0; v < region.table().size(); ++v) {
    const mv::VersionMeta& m = region.table()[v].meta;
    histogram.addRow({"v" + std::to_string(v), std::to_string(m.threads),
                      "(" + std::to_string(m.tileSizes[0]) + "," +
                          std::to_string(m.tileSizes[1]) + ")",
                      std::to_string(region.invocationCounts()[v])});
  }
  std::cout << histogram.render();

  std::cout << "\nA single-version binary would either waste cores at night "
               "or oversubscribe at noon;\nthe multi-versioned region always "
               "runs the variant tuned for the cores it actually gets.\n";
  return 0;
}
