// Bring-your-own kernel: the framework is not limited to the five paper
// kernels. Any affine loop nest expressed in the IR can be analyzed, tiled
// and tuned — here a 5x5 2-D convolution written from scratch.
//
// This is the compiler-only workflow: analyze -> tune -> emit C. (Executing
// a custom region natively additionally needs a host implementation, as in
// quickstart.cpp; the generated module below can simply be compiled and
// linked instead.)
//
//   $ ./custom_kernel
#include "autotune/autotuner.h"
#include "autotune/backend.h"
#include "codegen/cemit.h"
#include "kernels/kernel.h"
#include "machine/machine.h"
#include "support/table.h"

#include <iostream>

using namespace motune;

/// B[i][j] += A[i+u][j+v] * W[u][v] for a KxK filter: a 4-deep nest whose
/// outer two loops are tileable and parallel.
ir::Program buildConv2d(std::int64_t n, std::int64_t k) {
  using ir::AffineExpr;
  auto v = [](const char* name) { return AffineExpr::var(name); };

  ir::Assign st;
  st.array = "B";
  st.subscripts = {v("i"), v("j")};
  st.rhs = ir::read("A", {v("i") + v("u"), v("j") + v("v")}) *
           ir::read("W", {v("u"), v("v")});
  st.accumulate = true;

  auto mkLoop = [](const char* iv, std::int64_t lo, std::int64_t hi) {
    ir::Loop l;
    l.iv = iv;
    l.lower = AffineExpr::constant(lo);
    l.upper = ir::Bound(AffineExpr::constant(hi));
    return l;
  };

  std::vector<ir::StmtPtr> body;
  body.push_back(ir::Stmt::makeAssign(std::move(st)));

  ir::Loop vL = mkLoop("v", 0, k);
  vL.body = std::move(body);
  ir::Loop uL = mkLoop("u", 0, k);
  uL.body.push_back(ir::Stmt::makeLoop(std::move(vL)));
  ir::Loop jL = mkLoop("j", 0, n - k + 1);
  jL.body.push_back(ir::Stmt::makeLoop(std::move(uL)));
  ir::Loop iL = mkLoop("i", 0, n - k + 1);
  iL.body.push_back(ir::Stmt::makeLoop(std::move(jL)));

  ir::Program p;
  p.name = "conv2d";
  p.arrays = {{"A", {n, n}, 8},
              {"B", {n - k + 1, n - k + 1}, 8},
              {"W", {k, k}, 8}};
  p.body.push_back(ir::Stmt::makeLoop(std::move(iL)));
  return p;
}

int main() {
  const std::int64_t n = 2048;
  const std::int64_t k = 5;

  // Register the custom kernel: only an IR builder is required.
  kernels::KernelSpec spec;
  spec.name = "conv2d-5x5";
  spec.tileDims = 2; // the analyzer will confirm a 2-deep tileable band
  spec.computeComplexity = "O(N^2 K^2)";
  spec.memoryComplexity = "O(N^2)";
  spec.buildIR = [k](std::int64_t size) { return buildConv2d(size, k); };
  spec.paperN = n;
  spec.testN = 32;

  const machine::MachineModel target = machine::westmere();
  tuning::KernelTuningProblem problem(spec, target);

  std::cout << "Custom kernel '" << spec.name << "': the analyzer found a "
            << problem.skeleton().region().tileableDepth
            << "-deep tileable band over (";
  for (std::size_t i = 0; i < problem.skeleton().region().bandIvs.size(); ++i)
    std::cout << (i ? ", " : "") << problem.skeleton().region().bandIvs[i];
  std::cout << ")\n";
  std::cout << "Untiled serial estimate: "
            << support::fmtSeconds(problem.untiledSerialSeconds()) << "\n\n";

  autotune::TunerOptions options;
  options.gde3.seed = 3;
  autotune::AutoTuner tuner(options);
  const autotune::TuningResult result = tuner.tune(problem);

  support::TextTable table("conv2d-5x5 Pareto set on " + target.name);
  table.setHeader({"t_i", "t_j", "threads", "est. time", "resources"});
  for (const mv::VersionMeta& m : result.front)
    table.addRow({std::to_string(m.tileSizes[0]),
                  std::to_string(m.tileSizes[1]), std::to_string(m.threads),
                  support::fmtSeconds(m.timeSeconds),
                  support::fmt(m.resources, 3) + " core-s"});
  std::cout << table.render() << "\n";
  std::cout << "Evaluations: " << result.evaluations << " of "
            << tuning::spaceCardinality(problem.space())
            << " possible configurations (V(S) = "
            << support::fmt(result.hypervolume, 3) << ")\n\n";

  std::cout << "=== generated multi-versioned module (excerpt) ===\n";
  const std::string module = autotune::emitMultiVersionedC(result, problem);
  std::cout << module.substr(0, 2500) << "\n... ("
            << module.size() << " bytes total)\n";
  return 0;
}
