// Energy as a tuning objective (extension): the paper's objective function
// f may quantify "execution time, resource usage, energy consumption, etc."
// (§III.B.1). This example tunes mm for all three at once and shows the
// resulting trade-offs — including the race-to-idle effect (more cores can
// LOWER energy by finishing sooner, until contention wins) that makes
// (time, energy) a genuinely conflicting pair.
//
//   $ ./energy_tradeoff
#include "autotune/autotuner.h"
#include "kernels/kernel.h"
#include "machine/machine.h"
#include "support/table.h"

#include <algorithm>
#include <iostream>

using namespace motune;

int main() {
  const machine::MachineModel m = machine::westmere();
  tuning::KernelTuningProblem problem(
      kernels::kernelByName("mm"), m, 0, {},
      {tuning::Objective::Time, tuning::Objective::Resources,
       tuning::Objective::Energy});

  const perf::Prediction baseline = problem.untiledSerialPrediction();
  std::cout << "Tri-objective tuning of mm on " << m.name
            << " (time, resources, energy)\n"
            << "Untiled serial baseline: "
            << support::fmtSeconds(baseline.seconds) << ", "
            << support::fmt(baseline.joules, 0) << " J\n\n";

  autotune::TunerOptions options;
  options.gde3.seed = 5;
  autotune::AutoTuner tuner(options);
  const autotune::TuningResult result = tuner.tune(problem);

  std::cout << "RS-GDE3: " << result.evaluations << " evaluations, "
            << result.front.size() << " Pareto-optimal versions, "
            << "V(S) = " << support::fmt(result.hypervolume, 3)
            << " (3-D hypervolume)\n\n";

  // Sort by threads to expose the energy valley along the thread axis.
  std::vector<mv::VersionMeta> front = result.front;
  std::sort(front.begin(), front.end(),
            [](const mv::VersionMeta& a, const mv::VersionMeta& b) {
              return a.threads < b.threads;
            });

  support::TextTable table("Pareto set (sorted by thread count)");
  table.setHeader({"threads", "tiles", "time", "resources", "energy",
                   "J vs serial"});
  double bestJoules = 1e300;
  int bestJoulesThreads = 0;
  double serialJoules = 0.0;
  for (const auto& v : front) {
    if (v.threads == 1) serialJoules = std::max(serialJoules, v.joules);
    if (v.joules < bestJoules) {
      bestJoules = v.joules;
      bestJoulesThreads = v.threads;
    }
  }
  for (const auto& v : front) {
    table.addRow({std::to_string(v.threads),
                  "(" + std::to_string(v.tileSizes[0]) + "," +
                      std::to_string(v.tileSizes[1]) + "," +
                      std::to_string(v.tileSizes[2]) + ")",
                  support::fmtSeconds(v.timeSeconds),
                  support::fmt(v.resources, 2) + " core-s",
                  support::fmt(v.joules, 0) + " J",
                  serialJoules > 0
                      ? support::fmtPercent(v.joules / serialJoules - 1.0, 0)
                      : "-"});
  }
  std::cout << table.render() << "\n";

  std::cout << "Minimum-energy version uses " << bestJoulesThreads
            << " threads (" << support::fmt(bestJoules, 0)
            << " J): neither serial (static power accumulates over the "
               "long run)\nnor full-machine (contention and uncore power "
               "dominate) — the knee the tri-objective front exposes.\n";
  return 0;
}
