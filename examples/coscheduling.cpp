// Co-scheduling multi-versioned regions (extension of the paper's §III.A
// outlook): two tuned regions compete for one machine; a scheduler picks
// one version per region so the combined thread demand fits the available
// cores — trading per-region speed against global makespan.
//
// A second act drives the same tuned table through *live* synthetic
// traffic: the core budget shrinks phase by phase (as it would when a
// co-scheduled tenant arrives), and an AdaptivePolicy re-learns the best
// version online from measured costs — with the neighbour's granted
// threads fed in as context pressure via coScheduledPressure().
//
//   $ ./coscheduling
#include "autotune/autotuner.h"
#include "autotune/backend.h"
#include "kernels/kernel.h"
#include "machine/machine.h"
#include "runtime/adaptive.h"
#include "runtime/scheduler.h"
#include "runtime/traffic.h"
#include "support/table.h"

#include <iostream>
#include <string>

using namespace motune;

int main() {
  const machine::MachineModel m = machine::westmere();
  std::cout << "Co-scheduling two tuned regions on " << m.name << " ("
            << m.totalCores() << " cores)\n\n";

  autotune::TunerOptions options;
  options.gde3.seed = 9;
  autotune::AutoTuner tuner(options);
  runtime::ThreadPool pool;

  tuning::KernelTuningProblem mmProblem(kernels::kernelByName("mm"), m);
  const autotune::TuningResult mmResult = tuner.tune(mmProblem);
  mv::VersionTable mmTable =
      autotune::buildVersionTable(mmResult, mmProblem, pool, 96);

  tuning::KernelTuningProblem j2Problem(kernels::kernelByName("jacobi-2d"),
                                        m);
  const autotune::TuningResult j2Result = tuner.tune(j2Problem);
  mv::VersionTable j2Table =
      autotune::buildVersionTable(j2Result, j2Problem, pool, 128);

  std::cout << "region 'mm': " << mmTable.size()
            << " versions; region 'jacobi-2d': " << j2Table.size()
            << " versions\n\n";

  support::TextTable table("assignments under shrinking core budgets "
                           "(goal: minimize makespan)");
  table.setHeader({"budget", "mm threads", "mm est.", "jacobi threads",
                   "jacobi est.", "makespan", "total cores"});
  for (int budget : {40, 24, 12, 6, 2}) {
    runtime::MultiRegionScheduler scheduler({&mmTable, &j2Table}, budget);
    const auto placements = scheduler.schedule();
    table.addRow(
        {std::to_string(budget), std::to_string(placements[0].threads),
         support::fmtSeconds(placements[0].estSeconds),
         std::to_string(placements[1].threads),
         support::fmtSeconds(placements[1].estSeconds),
         support::fmtSeconds(runtime::MultiRegionScheduler::makespan(
             placements)),
         std::to_string(
             runtime::MultiRegionScheduler::totalThreads(placements))});
  }
  std::cout << table.render() << "\n";

  std::cout << "The scheduler spends cores where they buy the most "
               "makespan: the long-running region\n(mm) receives the bulk, "
               "and both regions degrade gracefully as the budget "
               "shrinks\n— exactly the flexibility multi-versioning exists "
               "to provide.\n\n";

  // -------------------------------------------------------------------
  // Act two: the same mm table under live traffic. One phase per budget;
  // each phase hands the region `budget` cores minus the pressure of its
  // co-scheduled neighbour (jacobi's granted threads), and the adaptive
  // policy re-learns the best version online from measured costs.
  runtime::TrafficSpec spec;
  spec.seed = 9;
  spec.defaultThreads = m.totalCores();
  for (int budget : {40, 24, 12, 6, 2}) {
    runtime::MultiRegionScheduler scheduler({&mmTable, &j2Table}, budget);
    const auto placements = scheduler.schedule();
    runtime::TrafficPhase phase;
    phase.name = "budget" + std::to_string(budget);
    phase.invocations = 4000;
    phase.availableThreads = budget;
    phase.pressure = runtime::coScheduledPressure(placements, 0);
    phase.noise = 0.05;
    spec.phases.push_back(phase);
  }

  runtime::AdaptiveOptions adaptiveOptions;
  adaptiveOptions.seed = spec.seed;
  adaptiveOptions.window = 16;
  adaptiveOptions.minDwell = 50;
  runtime::AdaptivePolicy policy(adaptiveOptions);
  const runtime::ReplayOutcome outcome =
      runtime::replayTraffic(spec, mmTable, policy);

  support::TextTable live("region 'mm' under live traffic: adaptive "
                          "selection as the core budget shrinks");
  live.setHeader({"phase", "pressure", "best static", "static cost",
                  "adaptive cost", "ratio"});
  for (std::size_t i = 0; i < outcome.phases.size(); ++i) {
    const runtime::PhaseOutcome& phase = outcome.phases[i];
    const double ratio = phase.adaptiveCost > 0.0
                             ? phase.bestStaticCost / phase.adaptiveCost
                             : 1.0;
    live.addRow({phase.name, std::to_string(spec.phases[i].pressure),
                 "v" + std::to_string(phase.bestStaticArm) + " (" +
                     std::to_string(
                         mmTable[phase.bestStaticArm].meta.threads) +
                     "t)",
                 support::fmt(phase.bestStaticCost, 3),
                 support::fmt(phase.adaptiveCost, 3),
                 support::fmt(ratio, 3)});
  }
  std::cout << live.render() << "\n";

  std::cout << "Overall the adaptive bill lands at "
            << support::fmt(outcome.convergenceRatio(), 3)
            << " of the hindsight-best static schedule (" << outcome.switches
            << " switches, " << outcome.contextShifts
            << " context shifts):\nthe policy follows the budget down "
               "through the table without being told which\nversion fits — "
               "the neighbour's thread demand arrives purely as context "
               "pressure.\n";
  return 0;
}
