// Co-scheduling multi-versioned regions (extension of the paper's §III.A
// outlook): two tuned regions compete for one machine; a scheduler picks
// one version per region so the combined thread demand fits the available
// cores — trading per-region speed against global makespan.
//
//   $ ./coscheduling
#include "autotune/autotuner.h"
#include "autotune/backend.h"
#include "kernels/kernel.h"
#include "machine/machine.h"
#include "runtime/scheduler.h"
#include "support/table.h"

#include <iostream>

using namespace motune;

int main() {
  const machine::MachineModel m = machine::westmere();
  std::cout << "Co-scheduling two tuned regions on " << m.name << " ("
            << m.totalCores() << " cores)\n\n";

  autotune::TunerOptions options;
  options.gde3.seed = 9;
  autotune::AutoTuner tuner(options);
  runtime::ThreadPool pool;

  tuning::KernelTuningProblem mmProblem(kernels::kernelByName("mm"), m);
  const autotune::TuningResult mmResult = tuner.tune(mmProblem);
  mv::VersionTable mmTable =
      autotune::buildVersionTable(mmResult, mmProblem, pool, 96);

  tuning::KernelTuningProblem j2Problem(kernels::kernelByName("jacobi-2d"),
                                        m);
  const autotune::TuningResult j2Result = tuner.tune(j2Problem);
  mv::VersionTable j2Table =
      autotune::buildVersionTable(j2Result, j2Problem, pool, 128);

  std::cout << "region 'mm': " << mmTable.size()
            << " versions; region 'jacobi-2d': " << j2Table.size()
            << " versions\n\n";

  support::TextTable table("assignments under shrinking core budgets "
                           "(goal: minimize makespan)");
  table.setHeader({"budget", "mm threads", "mm est.", "jacobi threads",
                   "jacobi est.", "makespan", "total cores"});
  for (int budget : {40, 24, 12, 6, 2}) {
    runtime::MultiRegionScheduler scheduler({&mmTable, &j2Table}, budget);
    const auto placements = scheduler.schedule();
    table.addRow(
        {std::to_string(budget), std::to_string(placements[0].threads),
         support::fmtSeconds(placements[0].estSeconds),
         std::to_string(placements[1].threads),
         support::fmtSeconds(placements[1].estSeconds),
         support::fmtSeconds(runtime::MultiRegionScheduler::makespan(
             placements)),
         std::to_string(
             runtime::MultiRegionScheduler::totalThreads(placements))});
  }
  std::cout << table.render() << "\n";

  std::cout << "The scheduler spends cores where they buy the most "
               "makespan: the long-running region\n(mm) receives the bulk, "
               "and both regions degrade gracefully as the budget "
               "shrinks\n— exactly the flexibility multi-versioning exists "
               "to provide.\n";
  return 0;
}
