// Quickstart: tune one kernel for two conflicting objectives, inspect the
// Pareto set, and let runtime policies pick versions.
//
// This walks the full pipeline of the paper (Fig. 3): region analysis,
// RS-GDE3 multi-objective search, multi-versioning, and runtime selection.
//
//   $ ./quickstart
#include "autotune/autotuner.h"
#include "autotune/backend.h"
#include "kernels/kernel.h"
#include "machine/machine.h"
#include "runtime/region.h"
#include "support/table.h"

#include <iostream>

using namespace motune;

int main() {
  // 1. Pick a kernel and a target machine. The machine model stands in for
  //    real hardware in this reproduction (see DESIGN.md §1).
  const machine::MachineModel target = machine::westmere();
  tuning::KernelTuningProblem problem(kernels::kernelByName("mm"), target);

  std::cout << "Tuning '" << problem.kernel().name << "' (N = "
            << problem.problemSize() << ") for " << target.name << " ("
            << target.totalCores() << " cores)\n"
            << "Search space: " << problem.space().size() << " parameters, "
            << tuning::spaceCardinality(problem.space())
            << " configurations\n"
            << "Untiled serial baseline: "
            << support::fmtSeconds(problem.untiledSerialSeconds()) << "\n\n";

  // 2. Run the multi-objective static optimizer (RS-GDE3, the paper's
  //    algorithm: GDE3 + rough-set search-space reduction).
  autotune::TunerOptions options; // defaults: RS-GDE3, population 30
  autotune::AutoTuner tuner(options);
  const autotune::TuningResult result = tuner.tune(problem);

  std::cout << "RS-GDE3 finished: " << result.raw.generations
            << " generations, " << result.evaluations
            << " evaluations, hypervolume V(S) = "
            << support::fmt(result.hypervolume, 3) << "\n\n";

  // 3. Inspect the Pareto set: each row is one code version the backend
  //    will generate (the trade-off table of paper Fig. 6).
  support::TextTable table("Pareto-optimal versions (fastest first)");
  table.setHeader({"version", "t_i", "t_j", "t_k", "threads", "est. time",
                   "resources", "vs untiled"});
  for (std::size_t v = 0; v < result.front.size(); ++v) {
    const mv::VersionMeta& m = result.front[v];
    table.addRow({"v" + std::to_string(v), std::to_string(m.tileSizes[0]),
                  std::to_string(m.tileSizes[1]),
                  std::to_string(m.tileSizes[2]), std::to_string(m.threads),
                  support::fmtSeconds(m.timeSeconds),
                  support::fmt(m.resources, 2) + " core-s",
                  support::fmt(result.timeRef / m.timeSeconds, 1) + "x"});
  }
  std::cout << table.render() << "\n";

  // 4. Build the runnable multi-version table (small native instance so
  //    this example executes quickly on any host) and dispatch through the
  //    runtime with different policies.
  runtime::ThreadPool pool;
  mv::VersionTable versions =
      autotune::buildVersionTable(result, problem, pool, /*nativeN=*/128);
  runtime::Region region(std::move(versions));

  struct Scenario {
    const char* description;
    runtime::SelectionPolicy& policy;
  };
  runtime::WeightedSumPolicy fastest(1.0, 0.0);
  runtime::WeightedSumPolicy balanced(0.5, 0.5);
  runtime::WeightedSumPolicy thrifty(0.0, 1.0);
  runtime::ThreadCapPolicy capped(4);
  for (const Scenario& s :
       {Scenario{"all about speed  (w = 1.0/0.0)", fastest},
        Scenario{"balanced         (w = 0.5/0.5)", balanced},
        Scenario{"resource saver   (w = 0.0/1.0)", thrifty},
        Scenario{"only 4 cores free (thread cap)", capped}}) {
    const std::size_t pick = region.invoke(s.policy);
    const mv::VersionMeta& m = region.table()[pick].meta;
    std::cout << s.description << " -> v" << pick << " (threads="
              << m.threads << ", est. "
              << support::fmtSeconds(m.timeSeconds) << ")\n";
  }

  std::cout << "\nRegion ran " << region.totalInvocations()
            << " times; every invocation executed the real tiled kernel "
               "through the runtime's thread pool.\n";
  return 0;
}
