#!/usr/bin/env python3
"""Relative-link checker for the repository's markdown files.

For every inline markdown link in the given files, verifies that relative
targets exist on disk and that `#anchor` fragments (on relative links or
within the same file) match a heading. External links (http/https/mailto)
are not fetched. Run by the CI `docs` job.

Usage: check_links.py README.md docs/*.md ...
"""

import os
import re
import sys

LINK = re.compile(r"(?<!!)\[[^\]]+\]\(([^)\s]+)\)")
HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)


def anchors_of(path):
    """GitHub-style anchor slugs for every heading in a markdown file."""
    with open(path) as handle:
        text = handle.read()
    slugs = set()
    for heading in HEADING.findall(text):
        # Strip inline code/formatting, then slugify the way GitHub does.
        plain = re.sub(r"[`*_]", "", heading)
        plain = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", plain)
        slug = re.sub(r"[^\w\s-]", "", plain.lower(), flags=re.UNICODE)
        slugs.add(re.sub(r"\s+", "-", slug.strip()))
    return slugs


def main():
    files = sys.argv[1:]
    if not files:
        sys.exit(__doc__)

    problems = []
    checked = 0
    for source in files:
        with open(source) as handle:
            text = handle.read()
        base = os.path.dirname(source)
        for target in LINK.findall(text):
            if re.match(r"^[a-z][a-z0-9+.-]*:", target):  # http:, mailto:, ...
                continue
            checked += 1
            path, _, fragment = target.partition("#")
            resolved = os.path.normpath(os.path.join(base, path)) if path \
                else source
            if not os.path.exists(resolved):
                problems.append(f"{source}: broken link -> {target}")
                continue
            if fragment and resolved.endswith(".md"):
                if fragment.lower() not in anchors_of(resolved):
                    problems.append(
                        f"{source}: missing anchor -> {target} "
                        f"(no heading slugs to '{fragment}')")

    if problems:
        print(f"{len(problems)} broken markdown link(s):", file=sys.stderr)
        for problem in problems:
            print(f"  {problem}", file=sys.stderr)
        return 1
    print(f"{checked} relative link(s) across {len(files)} file(s) OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
