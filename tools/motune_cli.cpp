// motune — command-line front end to the auto-tuning framework.
//
//   motune list
//       Built-in kernels and machine models.
//   motune tune (--kernel mm | --source FILE) --machine westmere [--n 1400]
//               [--algorithm rsgde3|gde3|nsga2|random] [--seed 1]
//               [--objectives time,resources[,energy]] [--out FILE]
//               [--trace FILE] [--trace-format jsonl|chrome]
//               [--metrics FILE.json] [--validate 1]
//               [--checkpoint DIR [--checkpoint-every N] | --resume DIR]
//               [--surrogate-keep X] [--warm-start DIR[,DIR...]]
//               [--fault-tolerant 1 [--eval-retries N] [--eval-timeout S]
//                [--eval-backoff S] [--quarantine-after N]]
//       Run the static optimizer on a built-in kernel or a textual kernel
//       (see ir/parse.h for the language); print the Pareto set;
//       optionally save a tuning artifact (JSON).
//       --trace streams the structured run trace (spans, runtime ring
//       events, final metric snapshot); "-" = stdout. --trace-format
//       selects JSON lines (default, the `motune report` input) or Chrome
//       trace-event JSON (load in chrome://tracing or ui.perfetto.dev).
//       --metrics writes the run's metric registry as JSON. --validate 1
//       replays the front through the cache simulator and embeds the
//       model-vs-simulator comparison in the trace.
//       See README "Observability & CI" for the schema.
//   motune report --trace FILE.jsonl [--out FILE.md] [--json FILE.json]
//                 [--top 10] [--stall-epsilon 0.002] [--fail-on-stall 1]
//       Analyze a JSONL trace: span self-time attribution, collapsed
//       stacks, convergence trajectory with stall detection, final Pareto
//       front, memoization hit rate, version-selection histogram, cost
//       model vs. cache simulator deltas. Markdown to stdout (or --out);
//       --json additionally writes the machine-readable report.
//       --fail-on-stall 1 exits 3 when the stall detector fires (CI gate).
//   motune analyze --source FILE
//       Parse a textual kernel, print its dependences, tileable band and
//       normalized form.
//   motune show FILE
//       Print a saved tuning artifact.
//   motune codegen FILE [--out FILE.c]
//       Emit the multi-versioned C module for a saved artifact.
//   motune predict --kernel mm --machine westmere --tiles 64,64,32
//                  --threads 8 [--n 1400]
//       Cost-model breakdown for one configuration.
//   motune fuzz [--seed 1] [--iters 1000] [--time-budget SECONDS]
//               [--no-native] [--out-dir DIR] [--max-steps 3]
//               [--metrics FILE.json] [--trace FILE]
//       Differential correctness fuzzing (see src/verify/): random affine
//       loop nests x random legal transform sequences, checked three ways
//       (original interp, transformed interp, compiled C). On disagreement
//       the case is minimized and written to DIR as a repro file; exit 1.
//       --no-native skips the compile-and-run leg (interpreter-only).
//   motune fuzz --repro FILE [--no-native]
//       Replay a repro file: re-parse the program, re-apply the recorded
//       transform steps, re-run the oracle; exit 1 if it still disagrees.
//   motune serve --dir STATE [--port P] [--workers N] [...]
//       Run the multi-tenant tuning daemon (docs/serve.md): accepts
//       concurrent tuning jobs over a length-prefixed JSON socket
//       protocol, persists every job under STATE/, and resumes in-flight
//       jobs bit-identically after a crash or SIGKILL.
//   motune submit --port P [tune flags] [--priority N] [--no-cache]
//                 [--wait]
//       Submit one tuning job to a running daemon. The job spec uses the
//       same flags as `motune tune` (kernel, machine, n, algorithm, seed,
//       objectives, budget, surrogate-keep). A spec identical to an
//       already-finished job returns that job's id from the daemon's
//       result cache without scheduling anything (--no-cache opts out).
//       Exit 4 when the daemon sheds load (queue full; retry after the
//       printed delay); with --wait, exit 5 when the job failed and 6 when
//       it was cancelled.
//   motune jobs --port P [--id ID | --result ID | --cancel ID | --stats
//                [--format json|prometheus] | --shutdown]
//       Inspect or control a running daemon: list jobs (default), show one
//       job, fetch a finished job's artifact, cancel, dump daemon stats
//       (as JSON or Prometheus text exposition), or ask the daemon to shut
//       down.
//   motune top --port P [--interval S] [--iterations N] [--plain]
//       Live terminal dashboard for a running daemon: queue depth, active
//       jobs, latency quantiles, and a hypervolume sparkline per running
//       job fed by the subscribe stream (docs/serve.md).
#include "analyzer/dependence.h"
#include "analyzer/region.h"
#include "autotune/artifact.h"
#include "autotune/autotuner.h"
#include "autotune/backend.h"
#include "ir/parse.h"
#include "ir/print.h"
#include "kernels/kernel.h"
#include "machine/machine.h"
#include "observe/metrics.h"
#include "observe/report.h"
#include "observe/trace.h"
#include "runtime/adaptive.h"
#include "runtime/traffic.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/job.h"
#include "support/check.h"
#include "support/table.h"
#include "verify/fuzz.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <csignal>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace motune;

namespace {

struct Args {
  std::string command;
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;

  std::string get(const std::string& key, const std::string& fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
  bool has(const std::string& key) const { return options.count(key) > 0; }
};

/// Options that are pure flags (present/absent, no value token).
bool isFlagOption(const std::string& key) {
  return key == "no-native" || key == "help" || key == "wait" ||
         key == "stats" || key == "shutdown" || key == "plain" ||
         key == "list" || key == "no-cache";
}

// ---------------------------------------------------------------------------
// Help. One table drives `motune --help`, `motune CMD --help` and the
// docs-drift check (tools/check_cli_docs.py asserts every flag printed here
// is documented in docs/cli.md).

struct FlagHelp {
  const char* flag;  ///< without the leading "--"
  const char* value; ///< value placeholder; "" for pure flags
  const char* text;
  /// Feature area ("search", "checkpoint", "surrogate", "fault"); flags
  /// sharing a group are printed together under a group heading, "" flags
  /// lead the list. Purely presentational — parsing ignores it.
  const char* group = "";
};

struct CommandHelp {
  const char* name;
  const char* summary; ///< one line for the global listing
  const char* usage;
  std::vector<FlagHelp> flags;
};

const std::vector<CommandHelp>& commandHelp() {
  static const std::vector<CommandHelp> table = {
      {"list", "print the built-in kernels and machine models",
       "motune list", {}},
      {"tune", "run the static optimizer and print the Pareto set",
       "motune tune [--kernel NAME | --source FILE] [options]",
       {
           {"kernel", "NAME", "built-in kernel to tune (default: mm)"},
           {"source", "FILE", "tune a textual kernel instead (ir/parse.h)"},
           {"machine", "NAME", "westmere or barcelona (default: westmere)"},
           {"n", "N", "problem size; 0 = the kernel's paper size"},
           {"objectives", "LIST",
            "comma list of time,resources,energy (default: time,resources)"},
           {"out", "FILE", "save the tuning artifact as JSON"},
           {"trace", "FILE", "stream the structured run trace; - = stdout"},
           {"trace-format", "FMT", "jsonl (default) or chrome"},
           {"metrics", "FILE", "write the final metric registry as JSON"},
           {"validate", "0|1",
            "replay the front through the cache simulator"},
           {"algorithm", "NAME",
            "rsgde3 (default), gde3, nsga2 or random", "search"},
           {"seed", "S", "RNG seed for the search (default: 1)", "search"},
           {"budget", "N", "evaluation budget for --algorithm random",
            "search"},
           {"seed-analytic", "0|1",
            "seed the initial population with cache-capacity-derived "
            "configurations from the performance model (default: 0)",
            "search"},
           {"islands", "N",
            "island-model search: N independent islands exchanging "
            "top-ranked migrants on a ring (default: 1 = off)", "search"},
           {"migrate-every", "N",
            "generations between island migration rounds (default: 5)",
            "search"},
           {"migrants", "M",
            "emigrants per island per migration round (default: 3)",
            "search"},
           {"island-index", "K",
            "worker mode: run only island K against the shared --checkpoint "
            "directory; merge later with --islands N --resume DIR",
            "search"},
           {"checkpoint", "DIR",
            "journal the session to DIR/session.jsonl (crash-safe)",
            "checkpoint"},
           {"checkpoint-every", "N",
            "generations between engine checkpoints (default: 1)",
            "checkpoint"},
           {"resume", "DIR",
            "continue a killed session from DIR (bit-identical)",
            "checkpoint"},
           {"surrogate-keep", "X",
            "fraction (0,1] of each generation sent to full evaluation; "
            "the rest is culled by the online surrogate (default: 1 = off)",
            "surrogate"},
           {"warm-start", "DIRS",
            "comma list of session directories whose journals pre-train "
            "the surrogate (incompatible journals are skipped)",
            "surrogate"},
           {"fault-tolerant", "0|1",
            "retry/quarantine failing evaluations instead of aborting",
            "fault"},
           {"eval-retries", "N",
            "retries per configuration after the first attempt (default: 2)",
            "fault"},
           {"eval-timeout", "S",
            "per-attempt wall-clock limit in seconds; 0 = none", "fault"},
           {"eval-backoff", "S",
            "base backoff between retries, doubled per attempt (default: 0)",
            "fault"},
           {"quarantine-after", "N",
            "exhausted attempts before a configuration is banned "
            "(default: 3)", "fault"},
       }},
      {"report", "analyze a JSONL trace into a Markdown/JSON report",
       "motune report --trace FILE.jsonl [options]",
       {
           {"trace", "FILE", "JSONL trace to analyze (required)"},
           {"out", "FILE", "write the Markdown report here (default: stdout)"},
           {"json", "FILE", "additionally write the machine-readable report"},
           {"top", "N", "rows per ranking section (default: 10)"},
           {"stall-epsilon", "X",
            "relative HV gain below which a generation counts as stalled"},
           {"fail-on-stall", "0|1", "exit 3 when the stall detector fires"},
       }},
      {"analyze", "parse a textual kernel and print its analysis",
       "motune analyze --source FILE",
       {
           {"source", "FILE", "textual kernel to analyze (required)"},
       }},
      {"show", "print a saved tuning artifact",
       "motune show FILE", {}},
      {"codegen", "emit the multi-versioned C module for an artifact",
       "motune codegen FILE [--out FILE.c]",
       {
           {"out", "FILE", "write the C module here (default: stdout)"},
       }},
      {"predict", "cost-model breakdown for one configuration",
       "motune predict --tiles T1,T2[,T3] --threads P [options]",
       {
           {"kernel", "NAME", "built-in kernel (default: mm)"},
           {"machine", "NAME", "westmere or barcelona (default: westmere)"},
           {"n", "N", "problem size; 0 = the kernel's paper size"},
           {"tiles", "LIST", "comma list of tile sizes (required)"},
           {"threads", "P", "thread count (required)"},
       }},
      {"fuzz", "differential correctness fuzzing of the transform/codegen "
               "pipeline",
       "motune fuzz [options] | motune fuzz --repro FILE [--no-native]",
       {
           {"seed", "S", "fuzzer RNG seed (default: 1)"},
           {"iters", "N", "iteration cap (default: 1000)"},
           {"time-budget", "S", "stop after S seconds; 0 = no budget"},
           {"max-steps", "N", "transform steps per case (default: 3)"},
           {"no-native", "", "skip the compile-and-run leg"},
           {"use-bytecode", "0|1",
            "transformed leg runs the bytecode engine (default: 1; 0 = tree "
            "walker)"},
           {"out-dir", "DIR", "where repro files are written (default: .)"},
           {"repro", "FILE", "replay a repro file instead of fuzzing"},
           {"trace", "FILE", "stream the structured run trace; - = stdout"},
           {"trace-format", "FMT", "jsonl (default) or chrome"},
           {"metrics", "FILE", "write the final metric registry as JSON"},
       }},
      {"replay", "drive the adaptive policy through deterministic synthetic "
                 "traffic",
       "motune replay [--scenario NAME | --spec FILE] [options]",
       {
           {"scenario", "NAME",
            "built-in scenario: steady, size-ramp, thread-drop, "
            "pressure-burst or mix (default: mix)"},
           {"spec", "FILE", "replay a traffic spec file instead "
                            "(docs/adaptive.md has the grammar)"},
           {"list", "", "print the built-in scenarios and exit"},
           {"seed", "S",
            "seed for traffic noise and exploration (default: the spec's)"},
           {"invocations", "N",
            "rescale the spec to ~N total invocations; 0 = as declared"},
           {"versions", "N", "arms in the synthetic version table "
                             "(default: 6)"},
           {"window", "N", "sliding-window samples per arm (default: 16)"},
           {"epsilon", "X", "exploration rate (default: 0.03)"},
           {"explore", "KIND", "epsilon-greedy (default) or ucb"},
           {"min-dwell", "N",
            "invocations between committed switches (default: 50)"},
           {"switch-margin", "X",
            "relative gain required to switch (default: 0.05)"},
           {"min-ratio", "X",
            "fail (exit 1) when best-static/adaptive falls below X "
            "(default: 0 = report only)"},
           {"log", "FILE", "write the JSONL selection log here"},
           {"metrics", "FILE", "write the final metric registry as JSON"},
       }},
      {"serve", "run the multi-tenant tuning daemon",
       "motune serve --dir STATE [options]",
       {
           {"dir", "STATE",
            "durable state directory; jobs resume from it after a crash "
            "(required)"},
           {"host", "ADDR", "bind address (default: 127.0.0.1)"},
           {"port", "P", "TCP port; 0 = pick an ephemeral port (default: 0)"},
           {"workers", "N", "concurrent tuning jobs (default: 2)"},
           {"queue-capacity", "N",
            "queued jobs admitted before submits are shed (default: 64)"},
           {"job-threads", "N", "evaluation workers per job (default: 1)"},
           {"checkpoint-every", "N",
            "generations between job checkpoints (default: 1)"},
           {"retry-after", "S",
            "retry hint returned with queue-full rejections (default: 0.5)"},
           {"stream-buffer", "N",
            "frames buffered per subscribe stream before best-effort "
            "drops (default: 256)"},
       }},
      {"submit", "submit one tuning job to a running daemon",
       "motune submit [--port P] [tune flags] [--priority N] [--wait]",
       {
           {"host", "ADDR", "daemon address (default: 127.0.0.1)"},
           {"port", "P", "daemon TCP port (required)"},
           {"kernel", "NAME", "built-in kernel to tune (default: mm)"},
           {"machine", "NAME", "westmere or barcelona (default: westmere)"},
           {"n", "N", "problem size; 0 = the kernel's paper size"},
           {"algorithm", "NAME",
            "rsgde3 (default), gde3, nsga2 or random"},
           {"seed", "S", "RNG seed for the search (default: 1)"},
           {"objectives", "LIST",
            "comma list of time,resources,energy (default: time,resources)"},
           {"budget", "N", "evaluation budget for --algorithm random"},
           {"surrogate-keep", "X",
            "fraction (0,1] of each generation fully evaluated; below 1 "
            "the daemon also warm-starts the surrogate from finished "
            "compatible jobs"},
           {"islands", "N",
            "island-model search with N islands (rsgde3/gde3 only; "
            "default: 1 = off)"},
           {"seed-analytic", "0|1",
            "seed the initial population from the performance model "
            "(rsgde3/gde3 only; default: 0)"},
           {"priority", "N",
            "scheduling priority; higher runs first (default: 0)"},
           {"no-cache",
            "", "force a real run even when an identical spec already "
                "finished (skip the daemon's result cache)"},
           {"wait", "", "block until the job finishes and print the front; "
                        "exits 5 if the job failed, 6 if it was cancelled"},
           {"out", "FILE", "with --wait: save the artifact here"},
       }},
      {"jobs", "inspect or control a running daemon",
       "motune jobs [--port P] [--id ID | --result ID | --cancel ID | "
       "--stats | --shutdown]",
       {
           {"host", "ADDR", "daemon address (default: 127.0.0.1)"},
           {"port", "P", "daemon TCP port (required)"},
           {"id", "ID", "show one job instead of the full listing"},
           {"result", "ID", "fetch a finished job's artifact JSON"},
           {"out", "FILE", "with --result: save the artifact here"},
           {"cancel", "ID", "cancel a queued or running job"},
           {"stats", "", "dump the daemon's metrics snapshot as JSON"},
           {"format", "FMT",
            "with --stats: json (default) or prometheus text exposition"},
           {"shutdown", "", "ask the daemon to shut down gracefully"},
       }},
      {"top", "live dashboard of a running daemon",
       "motune top --port P [--interval S] [--iterations N] [--plain]",
       {
           {"host", "ADDR", "daemon address (default: 127.0.0.1)"},
           {"port", "P", "daemon TCP port (required)"},
           {"interval", "S", "refresh period in seconds (default: 1)"},
           {"iterations", "N",
            "stop after N refreshes; 0 = run until interrupted (default: 0)"},
           {"plain", "",
            "append snapshots instead of redrawing the screen (logs, CI)"},
       }},
  };
  return table;
}

int printGlobalHelp() {
  std::cout << "usage: motune COMMAND [options]\n\n"
               "multi-objective auto-tuning for parallel loop nests "
               "(see README.md)\n\ncommands:\n";
  for (const CommandHelp& c : commandHelp()) {
    std::cout << "  ";
    std::cout.width(10);
    std::cout << std::left << c.name;
    std::cout << c.summary << "\n";
  }
  std::cout << "\nrun `motune COMMAND --help` for the options of one "
               "command;\nfull reference: docs/cli.md\n";
  return 0;
}

int printCommandHelp(const std::string& name) {
  const auto printFlag = [](const FlagHelp& f) {
    std::string head = "--" + std::string(f.flag);
    if (f.value[0] != '\0') head += " " + std::string(f.value);
    std::cout << "  ";
    std::cout.width(24);
    std::cout << std::left << head;
    std::cout << f.text << "\n";
  };
  for (const CommandHelp& c : commandHelp()) {
    if (name != c.name) continue;
    std::cout << "usage: " << c.usage << "\n\n" << c.summary << "\n";
    if (!c.flags.empty()) {
      // Ungrouped flags lead under "options:"; grouped flags follow under
      // one heading per feature area, in first-appearance order.
      std::cout << "\noptions:\n";
      for (const FlagHelp& f : c.flags)
        if (f.group[0] == '\0') printFlag(f);
      std::vector<std::string> groups;
      for (const FlagHelp& f : c.flags) {
        if (f.group[0] == '\0') continue;
        if (std::find(groups.begin(), groups.end(), f.group) == groups.end())
          groups.push_back(f.group);
      }
      for (const std::string& group : groups) {
        std::cout << "\n" << group << " options:\n";
        for (const FlagHelp& f : c.flags)
          if (group == f.group) printFlag(f);
      }
    }
    return 0;
  }
  std::cerr << "unknown command: " << name << "\n";
  return 2;
}

Args parseArgs(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const std::string key = arg.substr(2);
      if (isFlagOption(key)) {
        args.options[key] = "1";
        continue;
      }
      MOTUNE_CHECK_MSG(i + 1 < argc, "missing value for --" + key);
      args.options[key] = argv[++i];
    } else {
      args.positional.push_back(arg);
    }
  }
  return args;
}

machine::MachineModel machineByName(const std::string& name) {
  if (name == "westmere") return machine::westmere();
  if (name == "barcelona") return machine::barcelona();
  MOTUNE_CHECK_MSG(false, "unknown machine: " + name +
                              " (available: westmere, barcelona)");
  return machine::westmere();
}

std::vector<std::int64_t> parseIntList(const std::string& csv) {
  std::vector<std::int64_t> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) out.push_back(std::stoll(item));
  return out;
}

std::vector<tuning::Objective> parseObjectives(const std::string& csv) {
  std::vector<tuning::Objective> out;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (item == "time") out.push_back(tuning::Objective::Time);
    else if (item == "resources") out.push_back(tuning::Objective::Resources);
    else if (item == "energy") out.push_back(tuning::Objective::Energy);
    else MOTUNE_CHECK_MSG(false, "unknown objective: " + item);
  }
  return out;
}

void printFront(const std::vector<mv::VersionMeta>& front) {
  support::TextTable table;
  table.setHeader({"version", "tiles", "threads", "est. time", "resources",
                   "energy"});
  for (std::size_t v = 0; v < front.size(); ++v) {
    const auto& m = front[v];
    std::string tiles = "(";
    for (std::size_t t = 0; t < m.tileSizes.size(); ++t)
      tiles += (t ? "," : "") + std::to_string(m.tileSizes[t]);
    tiles += ")";
    table.addRow({"v" + std::to_string(v), tiles, std::to_string(m.threads),
                  support::fmtSeconds(m.timeSeconds),
                  support::fmt(m.resources, 3) + " core-s",
                  m.joules > 0 ? support::fmt(m.joules, 1) + " J" : "-"});
  }
  std::cout << table.render();
}

int cmdList() {
  std::cout << "kernels:\n";
  support::TextTable kt;
  kt.setHeader({"name", "compute", "memory", "tile dims", "default N"});
  for (const auto& k : kernels::allKernels())
    kt.addRow({k.name, k.computeComplexity, k.memoryComplexity,
               std::to_string(k.tileDims), std::to_string(k.paperN)});
  std::cout << kt.render() << "\nmachines:\n";
  support::TextTable mt;
  mt.setHeader({"name", "cores", "L3/socket", "GHz"});
  for (const auto& m : {machine::westmere(), machine::barcelona()})
    mt.addRow({m.name, std::to_string(m.totalCores()),
               std::to_string(m.caches.back().capacityBytes / 1024 / 1024) +
                   "M",
               support::fmt(m.freqGHz, 1)});
  std::cout << mt.render();
  return 0;
}

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  MOTUNE_CHECK_MSG(in.good(), "cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Builds a KernelSpec from a textual kernel (see ir/parse.h); the problem
/// size is baked into the source, so buildIR ignores its argument.
kernels::KernelSpec specFromSource(const std::string& path) {
  const std::string source = readFile(path);
  const ir::Program probe = ir::parseProgram(source, path);
  const analyzer::RegionInfo info = analyzer::analyzeRegion(probe);
  MOTUNE_CHECK_MSG(info.tileableDepth >= 1 && info.outerParallelizable,
                   "kernel in " + path + " is not tunable (no parallel "
                   "tileable band)");
  kernels::KernelSpec spec;
  spec.name = path;
  spec.tileDims = info.tileableDepth;
  spec.computeComplexity = "user";
  spec.memoryComplexity = "user";
  spec.paperN = info.bandTrips.front();
  spec.testN = info.bandTrips.front();
  spec.buildIR = [source, path](std::int64_t) {
    return ir::parseProgram(source, path);
  };
  return spec;
}

int cmdAnalyze(const Args& args) {
  MOTUNE_CHECK_MSG(args.has("source"),
                   "usage: motune analyze --source FILE");
  const ir::Program p =
      ir::parseProgram(readFile(args.options.at("source")));
  const auto deps = analyzer::computeDependences(p);
  std::cout << "dependences:\n";
  if (deps->empty()) std::cout << "  (none)\n";
  for (const auto& d : *deps) {
    std::cout << "  " << d.array << ": (";
    for (std::size_t i = 0; i < d.distance.size(); ++i) {
      if (i) std::cout << ", ";
      if (d.distance[i].isExact())
        std::cout << d.distance[i].value;
      else
        std::cout << "*";
    }
    std::cout << ")\n";
  }
  const analyzer::RegionInfo info = analyzer::analyzeRegion(p);
  std::cout << "nest depth " << info.nestDepth << ", tileable band "
            << info.tileableDepth << ", outer parallelizable: "
            << (info.outerParallelizable ? "yes" : "no") << "\n\n"
            << "normalized region:\n"
            << ir::toC(p, /*emitPragmas=*/false);
  return 0;
}

/// Attaches the --trace sink (if requested) to the global tracer; shared by
/// the tune and fuzz commands.
void attachTraceSink(const Args& args) {
  if (!args.has("trace")) return;
  const std::string path = args.options.at("trace");
  const std::string format = args.get("trace-format", "jsonl");
  std::shared_ptr<observe::Sink> sink;
  if (format == "chrome")
    sink = path == "-" ? std::make_shared<observe::ChromeTraceSink>(std::cout)
                       : std::make_shared<observe::ChromeTraceSink>(path);
  else if (format == "jsonl")
    sink = path == "-" ? std::make_shared<observe::JsonLinesSink>(std::cout)
                       : std::make_shared<observe::JsonLinesSink>(path);
  else
    MOTUNE_CHECK_MSG(false, "unknown trace format: " + format +
                                " (available: jsonl, chrome)");
  observe::Tracer::global().addSink(std::move(sink));
}

/// Snapshots metrics into the trace, detaches the sink, and writes the
/// --metrics JSON file when requested.
void finishObservability(const Args& args,
                         observe::MetricsRegistry& metrics) {
  observe::Tracer& tracer = observe::Tracer::global();
  if (args.has("trace")) {
    tracer.snapshotMetrics(metrics);
    tracer.clearSinks();
    if (args.options.at("trace") != "-")
      std::cout << "trace written to " << args.options.at("trace") << "\n";
  }
  if (args.has("metrics")) {
    const std::string path = args.options.at("metrics");
    std::ofstream out(path);
    MOTUNE_CHECK_MSG(out.good(), "cannot write " + path);
    out << metrics.toJson().dump(2) << "\n";
    std::cout << "metrics written to " << path << "\n";
  }
}

int cmdTune(const Args& args) {
  const kernels::KernelSpec spec =
      args.has("source") ? specFromSource(args.options.at("source"))
                         : kernels::kernelByName(args.get("kernel", "mm"));
  const machine::MachineModel machine =
      machineByName(args.get("machine", "westmere"));
  const std::int64_t n = std::stoll(args.get("n", "0"));
  const auto objectives =
      parseObjectives(args.get("objectives", "time,resources"));

  tuning::KernelTuningProblem problem(spec, machine, n, {}, objectives);

  autotune::TunerOptions options;
  const std::string algo = args.get("algorithm", "rsgde3");
  if (algo == "rsgde3") options.algorithm = autotune::Algorithm::RSGDE3;
  else if (algo == "gde3") options.algorithm = autotune::Algorithm::PlainGDE3;
  else if (algo == "nsga2") options.algorithm = autotune::Algorithm::NSGA2;
  else if (algo == "random") options.algorithm = autotune::Algorithm::Random;
  else MOTUNE_CHECK_MSG(false, "unknown algorithm: " + algo);
  options.gde3.seed = std::stoull(args.get("seed", "1"));
  options.nsga2.seed = options.gde3.seed;
  options.randomBudget = std::stoull(args.get("budget", "1000"));
  options.validateFront = args.get("validate", "0") != "0";

  // Durable sessions: --resume DIR implies the checkpoint directory.
  if (args.has("resume")) {
    options.session.directory = args.options.at("resume");
    options.session.resume = true;
    MOTUNE_CHECK_MSG(!args.has("checkpoint") ||
                         args.options.at("checkpoint") ==
                             options.session.directory,
                     "--checkpoint and --resume point at different "
                     "directories");
  } else if (args.has("checkpoint")) {
    options.session.directory = args.options.at("checkpoint");
  }
  options.session.checkpointEvery =
      std::stoi(args.get("checkpoint-every", "1"));
  MOTUNE_CHECK_MSG(options.session.checkpointEvery >= 1,
                   "--checkpoint-every must be >= 1");

  // Surrogate-assisted evaluation: either flag turns the surrogate on;
  // culling only happens below keep == 1.
  options.surrogateKeep = std::stod(args.get("surrogate-keep", "1"));
  MOTUNE_CHECK_MSG(options.surrogateKeep > 0.0 &&
                       options.surrogateKeep <= 1.0,
                   "--surrogate-keep must be in (0, 1]");
  options.surrogateEnabled =
      args.has("surrogate-keep") || args.has("warm-start");
  if (args.has("warm-start")) {
    std::stringstream dirs(args.options.at("warm-start"));
    std::string dir;
    while (std::getline(dirs, dir, ','))
      if (!dir.empty()) options.warmStartDirs.push_back(dir);
  }

  // Distributed search: analytic seeding and the island model (validated
  // inside the tuner/island layer — GDE3 family only, islands exclude the
  // surrogate, worker mode needs the shared checkpoint directory).
  options.seedAnalytic = args.get("seed-analytic", "0") != "0";
  options.islands = std::stoi(args.get("islands", "1"));
  options.migrateEvery = std::stoi(args.get("migrate-every", "5"));
  options.islandMigrants = std::stoull(args.get("migrants", "3"));
  if (args.has("island-index"))
    options.islandIndex = std::stoi(args.options.at("island-index"));

  options.fault.enabled = args.get("fault-tolerant", "0") != "0";
  options.fault.maxRetries = std::stoi(args.get("eval-retries", "2"));
  options.fault.timeoutSeconds = std::stod(args.get("eval-timeout", "0"));
  options.fault.backoffSeconds = std::stod(args.get("eval-backoff", "0"));
  options.fault.quarantineAfter =
      std::stoi(args.get("quarantine-after", "3"));

  // Observability: fresh per-run metrics, optional JSONL trace. The final
  // metric snapshot is stitched into the trace so one file carries the
  // full run record (per-generation spans + end-of-run counters).
  observe::MetricsRegistry& metrics = observe::MetricsRegistry::global();
  metrics.reset();
  attachTraceSink(args);

  std::cout << "tuning " << spec.name << " (N=" << problem.problemSize()
            << ") on " << machine.name << " with " << algo << " ...\n";
  autotune::AutoTuner tuner(options);
  const autotune::TuningResult result = tuner.tune(problem);

  finishObservability(args, metrics);

  std::cout << result.evaluations << " evaluations, V(S) = "
            << support::fmt(result.hypervolume, 3) << ", "
            << result.front.size() << " Pareto-optimal versions:\n";
  printFront(result.front);
  if (result.session.has_value())
    std::cout << "session journal " << result.session->journal << " ("
              << result.session->recordedEvaluations << " evaluations, "
              << result.session->checkpoints << " checkpoints, "
              << result.session->resumes << " resumes)\n";

  if (args.has("out")) {
    autotune::saveArtifact(autotune::makeArtifact(result, problem),
                           args.options.at("out"));
    std::cout << "artifact written to " << args.options.at("out") << "\n";
  }
  return 0;
}

int cmdReport(const Args& args) {
  MOTUNE_CHECK_MSG(args.has("trace"),
                   "usage: motune report --trace FILE.jsonl [--out FILE.md] "
                   "[--json FILE.json] [--top N] [--stall-epsilon X] "
                   "[--fail-on-stall 1]");
  observe::ReportOptions options;
  options.topK = std::stoull(args.get("top", "10"));
  options.stallEpsilon = std::stod(args.get("stall-epsilon", "0.002"));
  const auto records =
      observe::parseTraceFile(args.options.at("trace"));
  const observe::Report report = observe::buildReport(records, options);

  const std::string markdown = observe::renderMarkdown(report);
  if (args.has("out")) {
    const std::string path = args.options.at("out");
    std::ofstream out(path);
    MOTUNE_CHECK_MSG(out.good(), "cannot write " + path);
    out << markdown;
    std::cout << "report written to " << path << "\n";
  } else {
    std::cout << markdown;
  }
  if (args.has("json")) {
    const std::string path = args.options.at("json");
    std::ofstream out(path);
    MOTUNE_CHECK_MSG(out.good(), "cannot write " + path);
    out << observe::reportToJson(report).dump(2) << "\n";
    std::cout << "json report written to " << path << "\n";
  }
  if (args.get("fail-on-stall", "0") != "0" && report.stall.stalled) {
    std::cerr << "stall detector fired: " << report.stall.verdict << "\n";
    return 3;
  }
  return 0;
}

int cmdShow(const Args& args) {
  MOTUNE_CHECK_MSG(!args.positional.empty(), "usage: motune show FILE");
  const autotune::TunedArtifact a =
      autotune::loadArtifact(args.positional.front());
  std::cout << "kernel " << a.kernel << ", machine " << a.machineName
            << ", N = " << a.problemSize << "\n"
            << a.evaluations << " evaluations, V(S) = "
            << support::fmt(a.hypervolume, 3)
            << ", untiled serial baseline "
            << support::fmtSeconds(a.untiledSerialSeconds) << "\n";
  if (a.session.has_value())
    std::cout << "session: " << a.session->journal << " ("
              << a.session->checkpoints << " checkpoints, "
              << a.session->resumes << " resumes)\n";
  printFront(a.front);
  return 0;
}

int cmdCodegen(const Args& args) {
  MOTUNE_CHECK_MSG(!args.positional.empty(),
                   "usage: motune codegen FILE [--out FILE.c]");
  const autotune::TunedArtifact a =
      autotune::loadArtifact(args.positional.front());
  tuning::KernelTuningProblem problem(kernels::kernelByName(a.kernel),
                                      machineByName(a.machineName == "Westmere"
                                                        ? "westmere"
                                                        : "barcelona"),
                                      a.problemSize);
  autotune::TuningResult result;
  result.front = a.front;
  const std::string module = autotune::emitMultiVersionedC(result, problem);
  if (args.has("out")) {
    std::ofstream out(args.options.at("out"));
    MOTUNE_CHECK_MSG(out.good(), "cannot write " + args.options.at("out"));
    out << module;
    std::cout << module.size() << " bytes written to "
              << args.options.at("out") << "\n";
  } else {
    std::cout << module;
  }
  return 0;
}

int cmdPredict(const Args& args) {
  const auto& spec = kernels::kernelByName(args.get("kernel", "mm"));
  const machine::MachineModel machine =
      machineByName(args.get("machine", "westmere"));
  const std::int64_t n = std::stoll(args.get("n", "0"));
  tuning::KernelTuningProblem problem(spec, machine, n);

  MOTUNE_CHECK_MSG(args.has("tiles") && args.has("threads"),
                   "predict needs --tiles t1,t2[,t3] and --threads P");
  tuning::Config config = parseIntList(args.options.at("tiles"));
  config.push_back(std::stoll(args.options.at("threads")));

  const perf::Prediction p = problem.predictFull(config);
  support::TextTable table("prediction for " + spec.name + " on " +
                           machine.name);
  table.setHeader({"metric", "value"});
  table.addRow({"wall time", support::fmtSeconds(p.seconds)});
  table.addRow({"resources", support::fmt(p.resources, 3) + " core-s"});
  table.addRow({"energy", support::fmt(p.joules, 1) + " J"});
  table.addRow({"compute", support::fmtSeconds(p.computeSeconds)});
  table.addRow({"memory", support::fmtSeconds(p.memorySeconds)});
  table.addRow({"bandwidth bound", support::fmtSeconds(p.bandwidthSeconds)});
  table.addRow({"imbalance", support::fmt(p.imbalance, 3)});
  table.addRow({"DRAM traffic",
                support::fmt(p.trafficBytes.back() / 1e6, 1) + " MB"});
  std::cout << table.render();
  return 0;
}

int cmdFuzz(const Args& args) {
  observe::MetricsRegistry& metrics = observe::MetricsRegistry::global();
  metrics.reset();
  attachTraceSink(args);

  verify::OracleOptions oracle;
  oracle.runNative = !args.has("no-native");
  oracle.useBytecode = args.get("use-bytecode", "1") != "0";
  if (oracle.runNative && verify::hostCompiler().empty()) {
    std::cout << "no host C compiler found; falling back to --no-native\n";
    oracle.runNative = false;
  }

  if (args.has("repro")) {
    const verify::FuzzCase c =
        verify::parseRepro(readFile(args.options.at("repro")));
    std::cout << "replaying " << args.options.at("repro") << " ("
              << c.steps.size() << " transform step"
              << (c.steps.size() == 1 ? "" : "s") << ")\n";
    for (const auto& step : c.steps) std::cout << "  " << step.str() << "\n";
    const verify::OracleVerdict verdict = verify::replayRepro(c, oracle);
    finishObservability(args, metrics);
    std::cout << verdict.describe() << "\n";
    return verdict.agree ? 0 : 1;
  }

  verify::FuzzOptions options;
  options.seed = std::stoull(args.get("seed", "1"));
  options.iters = std::stoull(args.get("iters", "1000"));
  options.timeBudgetSeconds = std::stod(args.get("time-budget", "0"));
  options.sampler.maxSteps = std::stoi(args.get("max-steps", "3"));
  options.outDir = args.get("out-dir", ".");
  options.oracle = oracle;

  std::cout << "fuzzing: seed " << options.seed << ", up to " << options.iters
            << " iterations"
            << (options.timeBudgetSeconds > 0
                    ? ", " + args.get("time-budget", "0") + "s budget"
                    : std::string())
            << (oracle.runNative ? "" : ", interpreter-only") << " ...\n";
  const verify::FuzzReport report = verify::runFuzz(options);
  finishObservability(args, metrics);

  std::cout << report.iterations << " iterations: " << report.programs
            << " programs, " << report.comparisons << " oracle comparisons ("
            << report.nativeRuns << " native), " << report.rejectedDraws
            << " rejected transform draws\n";
  if (!report.failed) {
    std::cout << "no disagreements found\n";
    return 0;
  }
  std::cerr << "DISAGREEMENT at iteration " << report.failingIteration << ": "
            << report.detail << "\n";
  if (report.minimized) {
    std::cerr << "minimized to " << report.minimized->steps.size()
              << " transform step"
              << (report.minimized->steps.size() == 1 ? "" : "s") << ":\n"
              << verify::serializeRepro(*report.minimized, options.seed,
                                        report.failingIteration);
  }
  if (!report.reproPath.empty())
    std::cerr << "repro written to " << report.reproPath << " (replay with "
              << "`motune fuzz --repro " << report.reproPath << "`)\n";
  return 1;
}

// ---------------------------------------------------------------------------
// Deterministic traffic replay through the adaptive policy
// (docs/adaptive.md).

int cmdReplay(const Args& args) {
  if (args.has("list")) {
    for (const auto& name : runtime::builtinScenarioNames())
      std::cout << name << "\n";
    return 0;
  }

  observe::MetricsRegistry& metrics = observe::MetricsRegistry::global();
  metrics.reset();

  runtime::TrafficSpec spec;
  std::string scenario;
  if (args.has("spec")) {
    MOTUNE_CHECK_MSG(!args.has("scenario"),
                     "--spec and --scenario are mutually exclusive");
    scenario = args.options.at("spec");
    spec = runtime::parseTrafficSpec(readFile(scenario));
    if (args.has("seed")) spec.seed = std::stoull(args.options.at("seed"));
  } else {
    scenario = args.get("scenario", "mix");
    spec = runtime::builtinScenario(scenario,
                                    std::stoull(args.get("seed", "1")));
  }
  const std::uint64_t rescale = std::stoull(args.get("invocations", "0"));
  if (rescale > 0) spec.scaleTo(rescale);

  const std::size_t versions = std::stoull(args.get("versions", "6"));
  const mv::VersionTable table =
      runtime::syntheticTable(versions, spec.seed, spec.defaultThreads);

  runtime::AdaptiveOptions options;
  options.seed = spec.seed;
  options.window = std::stoull(args.get("window", "16"));
  options.epsilon = std::stod(args.get("epsilon", "0.03"));
  options.minDwell = std::stoull(args.get("min-dwell", "50"));
  options.switchMargin = std::stod(args.get("switch-margin", "0.05"));
  const std::string explore = args.get("explore", "epsilon-greedy");
  if (explore == "ucb")
    options.explore = runtime::ExploreKind::Ucb;
  else
    MOTUNE_CHECK_MSG(explore == "epsilon-greedy",
                     "unknown --explore: " + explore +
                         " (available: epsilon-greedy, ucb)");
  runtime::AdaptivePolicy policy(options);

  runtime::ReplayOptions replay;
  replay.scenario = scenario;
  std::ofstream logFile;
  if (args.has("log")) {
    logFile.open(args.options.at("log"));
    MOTUNE_CHECK_MSG(logFile.good(),
                     "cannot write " + args.options.at("log"));
    replay.log = &logFile;
  }

  const runtime::ReplayOutcome outcome =
      runtime::replayTraffic(spec, table, policy, replay);

  support::TextTable phaseTable("replay of " + scenario + " (seed " +
                                std::to_string(spec.seed) + ", " +
                                std::to_string(versions) + " versions)");
  phaseTable.setHeader({"phase", "invocations", "best static", "static cost",
                        "adaptive cost", "ratio", "switches"});
  for (const auto& phase : outcome.phases) {
    const double ratio = phase.adaptiveCost > 0
                             ? phase.bestStaticCost / phase.adaptiveCost
                             : 1.0;
    phaseTable.addRow({phase.name, std::to_string(phase.invocations),
                       "v" + std::to_string(phase.bestStaticArm),
                       support::fmt(phase.bestStaticCost, 3),
                       support::fmt(phase.adaptiveCost, 3),
                       support::fmt(ratio, 3),
                       std::to_string(phase.switches)});
  }
  std::cout << phaseTable.render();

  std::cout << outcome.invocations << " invocations: convergence ratio "
            << support::fmt(outcome.convergenceRatio(), 3) << " (oracle bill "
            << support::fmt(outcome.oracleCost, 3) << "), "
            << outcome.switches << " switches, " << outcome.explorations
            << " explorations, " << outcome.contextShifts
            << " context shifts\n";
  std::cout << "selections:";
  for (std::size_t i = 0; i < outcome.selectionCounts.size(); ++i)
    std::cout << " v" << i << "=" << outcome.selectionCounts[i];
  std::cout << "\n";
  if (args.has("log"))
    std::cout << "selection log written to " << args.options.at("log")
              << "\n";

  finishObservability(args, metrics);

  const double minRatio = std::stod(args.get("min-ratio", "0"));
  if (outcome.convergenceRatio() < minRatio) {
    std::cerr << "FAIL: convergence ratio "
              << support::fmt(outcome.convergenceRatio(), 3) << " < "
              << support::fmt(minRatio, 3) << "\n";
    return 1;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// The tuning daemon (docs/serve.md).

std::atomic<bool> g_interrupted{false};
void onSignal(int) { g_interrupted.store(true); }

int cmdServe(const Args& args) {
  MOTUNE_CHECK_MSG(args.has("dir"), "serve needs --dir STATE");
  serve::DaemonOptions options;
  options.stateDir = args.options.at("dir");
  options.host = args.get("host", "127.0.0.1");
  options.port = std::stoi(args.get("port", "0"));
  options.scheduler.workers =
      static_cast<unsigned>(std::stoul(args.get("workers", "2")));
  options.scheduler.queueCapacity = std::stoull(args.get("queue-capacity",
                                                         "64"));
  options.scheduler.jobThreads =
      static_cast<unsigned>(std::stoul(args.get("job-threads", "1")));
  options.scheduler.checkpointEvery =
      std::stoi(args.get("checkpoint-every", "1"));
  options.scheduler.retryAfterSeconds = std::stod(args.get("retry-after",
                                                           "0.5"));
  options.streamBufferFrames = std::stoull(args.get("stream-buffer", "256"));
  MOTUNE_CHECK_MSG(options.scheduler.checkpointEvery >= 1,
                   "--checkpoint-every must be >= 1");

  serve::Daemon daemon(options);
  daemon.start();
  std::cout << "motune daemon on " << options.host << ":" << daemon.port()
            << ", state dir " << options.stateDir << ", "
            << options.scheduler.workers << " worker"
            << (options.scheduler.workers == 1 ? "" : "s") << "\n"
            << std::flush;

  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  while (!daemon.waitForShutdown(0.1))
    if (g_interrupted.load()) break;
  std::cout << "shutting down (running jobs finish first) ...\n";
  daemon.stop();
  return 0;
}

/// JobSpec from the shared tune-flag vocabulary (`motune submit` accepts
/// exactly the spec flags `motune tune` does).
serve::JobSpec specFromArgs(const Args& args) {
  serve::JobSpec spec;
  spec.kernel = args.get("kernel", "mm");
  spec.machine = args.get("machine", "westmere");
  spec.n = std::stoll(args.get("n", "0"));
  spec.algorithm = args.get("algorithm", "rsgde3");
  spec.seed = std::stoull(args.get("seed", "1"));
  spec.objectives = parseObjectives(args.get("objectives", "time,resources"));
  spec.budget = std::stoull(args.get("budget", "1000"));
  spec.surrogateKeep = std::stod(args.get("surrogate-keep", "1"));
  spec.islands = std::stoi(args.get("islands", "1"));
  spec.seedAnalytic = args.get("seed-analytic", "0") != "0";
  return spec;
}

int cmdSubmit(const Args& args) {
  MOTUNE_CHECK_MSG(args.has("port"), "submit needs --port P");
  serve::Client client(args.get("host", "127.0.0.1"),
                       std::stoi(args.options.at("port")));
  const serve::JobSpec spec = specFromArgs(args);
  const int priority = std::stoi(args.get("priority", "0"));
  const serve::SubmitOutcome outcome =
      client.submit(spec, priority, args.has("no-cache"));
  if (!outcome.accepted) {
    std::cerr << "rejected: " << outcome.error;
    if (outcome.retryAfterSeconds > 0)
      std::cerr << " (retry after " << outcome.retryAfterSeconds << "s)";
    std::cerr << "\n";
    return 4; // distinct exit code: backpressure, not an error in the spec
  }
  std::cout << outcome.id << "\n";
  if (outcome.cached)
    std::cerr << "cached: identical spec already finished as " << outcome.id
              << "\n";
  if (!args.has("wait")) return 0;

  const serve::JobInfo info = client.await(outcome.id);
  if (info.state == serve::JobState::Failed) {
    std::cerr << "job " << info.id << " failed: " << info.error << "\n";
    return 5; // distinct from transport errors (1) and backpressure (4)
  }
  if (info.state == serve::JobState::Cancelled) {
    std::cerr << "job " << info.id << " was cancelled\n";
    return 6;
  }
  std::cout << info.evaluations << " evaluations, V(S) = "
            << support::fmt(info.hypervolume, 3) << ", " << info.frontSize
            << " Pareto-optimal versions ("
            << support::fmt(info.runSeconds, 2) << "s run)\n";
  if (args.has("out")) {
    const support::Json artifact = client.result(info.id);
    std::ofstream out(args.options.at("out"));
    MOTUNE_CHECK_MSG(out.good(), "cannot write " + args.options.at("out"));
    out << artifact.dump(2) << "\n";
    std::cout << "artifact written to " << args.options.at("out") << "\n";
  }
  return 0;
}

int cmdJobs(const Args& args) {
  MOTUNE_CHECK_MSG(args.has("port"), "jobs needs --port P");
  serve::Client client(args.get("host", "127.0.0.1"),
                       std::stoi(args.options.at("port")));

  if (args.has("shutdown")) {
    client.shutdown();
    std::cout << "shutdown requested\n";
    return 0;
  }
  if (args.has("stats")) {
    const std::string format = args.get("format", "json");
    if (format == "prometheus") {
      std::cout << client.statsPrometheus();
    } else {
      MOTUNE_CHECK_MSG(format == "json", "unknown stats format: " + format +
                                             " (available: json, prometheus)");
      std::cout << client.stats().dump(2) << "\n";
    }
    return 0;
  }
  if (args.has("cancel")) {
    std::cout << client.cancel(args.options.at("cancel")) << "\n";
    return 0;
  }
  if (args.has("result")) {
    const support::Json artifact = client.result(args.options.at("result"));
    if (args.has("out")) {
      std::ofstream out(args.options.at("out"));
      MOTUNE_CHECK_MSG(out.good(), "cannot write " + args.options.at("out"));
      out << artifact.dump(2) << "\n";
      std::cout << "artifact written to " << args.options.at("out") << "\n";
    } else {
      std::cout << artifact.dump(2) << "\n";
    }
    return 0;
  }

  const std::vector<serve::JobInfo> jobs =
      args.has("id") ? std::vector<serve::JobInfo>{client.status(
                           args.options.at("id"))}
                     : client.list();
  support::TextTable table;
  table.setHeader({"id", "state", "kernel", "n", "algorithm", "seed", "prio",
                   "queue", "run", "evals", "V(S)"});
  for (const serve::JobInfo& job : jobs) {
    const bool done = job.state == serve::JobState::Done;
    table.addRow({job.id, serve::jobStateName(job.state), job.spec.kernel,
                  std::to_string(job.spec.n), job.spec.algorithm,
                  std::to_string(job.spec.seed),
                  std::to_string(job.priority),
                  support::fmt(job.queueSeconds, 2) + "s",
                  support::fmt(job.runSeconds, 2) + "s",
                  done ? std::to_string(job.evaluations) : "-",
                  done ? support::fmt(job.hypervolume, 3) : "-"});
  }
  std::cout << table.render();
  for (const serve::JobInfo& job : jobs)
    if (job.state == serve::JobState::Failed)
      std::cout << job.id << " error: " << job.error << "\n";
  return 0;
}

// ---------------------------------------------------------------------------
// motune top: a refreshing dashboard over the subscribe stream.

/// Last `width` samples rendered as a unicode sparkline, scaled to the
/// window's own min/max (a flat window renders as all-low).
std::string sparkline(const std::vector<double>& values, std::size_t width) {
  static const char* const levels[] = {"▁", "▂", "▃", "▄", "▅", "▆", "▇",
                                       "█"};
  if (values.empty()) return "";
  const std::size_t start = values.size() > width ? values.size() - width : 0;
  double lo = values[start], hi = values[start];
  for (std::size_t i = start; i < values.size(); ++i) {
    lo = std::min(lo, values[i]);
    hi = std::max(hi, values[i]);
  }
  std::string out;
  for (std::size_t i = start; i < values.size(); ++i) {
    int idx = 0;
    if (hi > lo)
      idx = static_cast<int>((values[i] - lo) / (hi - lo) * 7.0 + 0.5);
    out += levels[idx];
  }
  return out;
}

/// What the watcher threads learn about one job from its subscribe stream.
struct TopJobLive {
  std::vector<double> hv; ///< hypervolume per progress frame
  int generation = -1;
  std::uint64_t evaluations = 0;
  std::uint64_t dropped = 0;
  bool ended = false;
  std::string endState;
};

int cmdTop(const Args& args) {
  MOTUNE_CHECK_MSG(args.has("port"), "top needs --port P");
  const std::string host = args.get("host", "127.0.0.1");
  const int port = std::stoi(args.options.at("port"));
  const double interval = std::stod(args.get("interval", "1"));
  const long iterations = std::stol(args.get("iterations", "0"));
  const bool plain = args.has("plain");
  MOTUNE_CHECK_MSG(interval > 0, "--interval must be > 0");

  serve::Client poll(host, port);
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);

  // One watcher thread (and connection) per non-terminal job: it holds the
  // subscribe stream and folds progress frames into `live`. The polling
  // connection only fetches list/stats snapshots for the frame.
  std::mutex liveMutex;
  std::map<std::string, TopJobLive> live;
  std::vector<std::thread> watchers;
  std::vector<std::shared_ptr<serve::Client>> watcherClients;
  std::map<std::string, bool> watched;

  auto spawnWatcher = [&](const std::string& id) {
    auto sub = std::make_shared<serve::Client>(host, port);
    watcherClients.push_back(sub);
    watchers.emplace_back([sub, id, &liveMutex, &live] {
      try {
        const serve::StreamEnd end =
            sub->subscribe(id, [&](const support::Json& frame) {
              if (!frame.has("stream") ||
                  frame.at("stream").asString() != "progress")
                return;
              std::lock_guard lock(liveMutex);
              TopJobLive& j = live[id];
              j.hv.push_back(frame.at("hypervolume").asNumber());
              j.generation =
                  static_cast<int>(frame.at("generation").asInt());
              j.evaluations =
                  std::stoull(frame.at("evaluations").asString());
            });
        std::lock_guard lock(liveMutex);
        live[id].ended = true;
        live[id].endState = end.state;
        live[id].dropped = end.dropped;
      } catch (const std::exception&) {
        std::lock_guard lock(liveMutex);
        live[id].ended = true; // daemon gone or teardown
      }
    });
  };

  long tick = 0;
  bool daemonGone = false;
  while (!g_interrupted.load() && (iterations <= 0 || tick < iterations)) {
    support::Json stats;
    std::vector<serve::JobInfo> jobs;
    try {
      stats = poll.stats();
      jobs = poll.list();
    } catch (const std::exception&) {
      daemonGone = true;
      break;
    }
    for (const serve::JobInfo& job : jobs) {
      const bool terminal = job.state == serve::JobState::Done ||
                            job.state == serve::JobState::Failed ||
                            job.state == serve::JobState::Cancelled;
      if (!terminal && !watched[job.id]) {
        watched[job.id] = true;
        spawnWatcher(job.id);
      }
    }

    std::ostringstream frame;
    frame << "motune top — " << host << ":" << port << "   queue "
          << stats.at("queue_depth").asInt() << "/"
          << stats.at("queue_capacity").asInt() << "   active "
          << stats.at("active_jobs").asInt() << "/"
          << stats.at("workers").asInt() << "   done "
          << stats.at("completed").asString() << "   failed "
          << stats.at("failed").asString() << "   cancelled "
          << stats.at("cancelled").asString() << "   shed "
          << stats.at("admission_rejects").asString() << "\n"
          << "run seconds p50 "
          << support::fmt(stats.at("run_seconds").at("p50").asNumber(), 3)
          << "  p99 "
          << support::fmt(stats.at("run_seconds").at("p99").asNumber(), 3)
          << "   queue seconds p50 "
          << support::fmt(stats.at("queue_seconds").at("p50").asNumber(), 3)
          << "  p99 "
          << support::fmt(stats.at("queue_seconds").at("p99").asNumber(), 3)
          << "\n";
    support::TextTable table;
    table.setHeader({"id", "state", "kernel", "algorithm", "gen", "evals",
                     "V(S)", "drops", "trend"});
    {
      std::lock_guard lock(liveMutex);
      for (const serve::JobInfo& job : jobs) {
        const TopJobLive& l = live[job.id];
        const double hv = !l.hv.empty() ? l.hv.back() : job.hypervolume;
        const std::uint64_t evals =
            l.evaluations != 0 ? l.evaluations : job.evaluations;
        table.addRow(
            {job.id, serve::jobStateName(job.state), job.spec.kernel,
             job.spec.algorithm,
             l.generation >= 0 ? std::to_string(l.generation) : "-",
             evals != 0 ? std::to_string(evals) : "-",
             hv != 0.0 ? support::fmt(hv, 3) : "-",
             l.dropped != 0 ? std::to_string(l.dropped) : "-",
             sparkline(l.hv, 32)});
      }
    }
    frame << table.render();
    if (!plain) std::cout << "\x1b[H\x1b[2J";
    std::cout << frame.str() << std::flush;
    if (plain) std::cout << "\n";

    ++tick;
    if (iterations > 0 && tick >= iterations) break;
    std::this_thread::sleep_for(std::chrono::duration<double>(interval));
  }

  // Teardown: half-close the watcher sockets so blocked subscribe() calls
  // error out, then join.
  for (const auto& client : watcherClients) client->shutdownConnection();
  for (std::thread& t : watchers)
    if (t.joinable()) t.join();
  if (daemonGone) {
    std::cerr << "daemon is gone\n";
    return 1;
  }
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  try {
    const Args args = parseArgs(argc, argv);
    if (args.command.empty() || args.command == "help" ||
        args.command == "--help" || args.command == "-h") {
      if (args.command == "help" && !args.positional.empty())
        return printCommandHelp(args.positional.front());
      printGlobalHelp();
      return args.command.empty() ? 1 : 0;
    }
    if (args.has("help")) return printCommandHelp(args.command);
    if (args.command == "list") return cmdList();
    if (args.command == "tune") return cmdTune(args);
    if (args.command == "report") return cmdReport(args);
    if (args.command == "analyze") return cmdAnalyze(args);
    if (args.command == "show") return cmdShow(args);
    if (args.command == "codegen") return cmdCodegen(args);
    if (args.command == "predict") return cmdPredict(args);
    if (args.command == "fuzz") return cmdFuzz(args);
    if (args.command == "replay") return cmdReplay(args);
    if (args.command == "serve") return cmdServe(args);
    if (args.command == "submit") return cmdSubmit(args);
    if (args.command == "jobs") return cmdJobs(args);
    if (args.command == "top") return cmdTop(args);
    std::cerr << "unknown command: " << args.command << "\n";
    printGlobalHelp();
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
