#!/usr/bin/env python3
"""Load-test a running `motune serve` daemon over its socket protocol.

Speaks the wire format directly (4-byte big-endian length prefix + JSON) so
it exercises the daemon exactly as an external client would — no C++ client
library involved. Used by the CI `serve-gate` job and runnable by hand:

    motune serve --dir /tmp/state --port 7777 &
    tools/loadtest_serve.py --port 7777 --jobs 200 --threads 8 \
        --baseline bench/baselines/serve_baseline.json

What it checks, beyond the latency/throughput numbers:

  * zero lost results    — every acked job id reaches state "done" and its
                           artifact is retrievable via the result verb
  * zero duplicated      — the daemon never acks the same id twice and the
                           list verb reports each id exactly once (submits
                           carry no_cache so duplicate specs in the burst
                           are really executed, not served from the
                           daemon's exact-spec result cache)
  * determinism          — seeds repeat across the burst; jobs sharing a
                           (spec, seed) must produce byte-identical
                           artifacts (modulo the "session" provenance
                           block), regardless of worker interleaving
  * backpressure         — queue-full rejections are retried after the
                           daemon's advertised retry_after and counted,
                           never treated as failures
  * live streaming       — with --subscribe N, N connections hold live
                           subscribe streams on in-flight jobs for the
                           whole burst; every stream must terminate in an
                           end frame whose state is "done". Dropped frames
                           are allowed (trace/progress streams are
                           best-effort by contract) and reported, but
                           results must still be complete: a subscriber
                           never costs a job

Gate semantics mirror bench_serve: baseline entries whose unit is
"seconds" are ceilings, everything else is a floor, both scaled by
--tolerance.

Phases (for the CI kill-mid-load scenario):
  --phase full    submit + await + verify (default)
  --phase submit  submit the burst, write acked ids to --ids-file, exit
  --phase await   read --ids-file, await + verify those ids only
                  (run after SIGKILLing and restarting the daemon)
"""

import argparse
import json
import os
import socket
import struct
import sys
import threading
import time

MAX_FRAME = 4 << 20


class ProtocolError(RuntimeError):
    pass


class Conn:
    """One synchronous connection speaking length-prefixed JSON frames."""

    def __init__(self, host, port, timeout=30.0):
        self.sock = socket.create_connection((host, port), timeout=timeout)

    def close(self):
        self.sock.close()

    def _recv_exact(self, n):
        buf = b""
        while len(buf) < n:
            chunk = self.sock.recv(n - len(buf))
            if not chunk:
                raise ProtocolError("daemon closed the connection")
            buf += chunk
        return buf

    def recv_obj(self):
        (length,) = struct.unpack(">I", self._recv_exact(4))
        if length > MAX_FRAME:
            raise ProtocolError(f"oversized response frame: {length}")
        return json.loads(self._recv_exact(length))

    def request(self, obj):
        payload = json.dumps(obj, separators=(",", ":")).encode()
        if len(payload) > MAX_FRAME:
            raise ProtocolError("frame too large")
        self.sock.sendall(struct.pack(">I", len(payload)) + payload)
        return self.recv_obj()


def job_spec(args, seed):
    # Mirrors serve::specToJson: u64 fields travel as strings (JSON
    # numbers are doubles and cannot carry a full uint64).
    return {
        "kernel": args.kernel,
        "machine": args.machine,
        "n": args.n,
        "algorithm": args.algorithm,
        "seed": str(seed),
        "objectives": args.objectives.split(","),
        "budget": str(args.budget),
    }


def submit_slice(args, indices, acked, rejects, errors, lock):
    """Submit jobs for `indices` on a private connection, retrying
    queue-full rejections after the daemon's advertised retry_after."""
    try:
        conn = Conn(args.host, args.port)
        for i in indices:
            seed = 1 + (i % args.seeds)
            while True:
                t0 = time.monotonic()
                # no_cache: the burst repeats specs across seeds, and this
                # suite's invariants (every ack a distinct id, every job
                # actually executed) need real runs — without it the
                # daemon's exact-spec result cache would ack the first
                # finished job's id for every duplicate.
                resp = conn.request({"verb": "submit",
                                     "spec": job_spec(args, seed),
                                     "no_cache": True})
                if resp.get("ok"):
                    with lock:
                        acked.append((resp["id"], seed, t0))
                    break
                if "retry_after" in resp:  # backpressure: retry, count it
                    with lock:
                        rejects[0] += 1
                    time.sleep(float(resp["retry_after"]))
                    continue
                raise ProtocolError(f"submit rejected: {resp.get('error')}")
        conn.close()
    except Exception as e:  # surface thread failures to the main thread
        with lock:
            errors.append(str(e))


def subscribe_stream(args, jid, outcome, errors, lock):
    """Holds one live subscribe stream until its end frame and records
    (end_state, dropped, frames_seen) into `outcome[jid]`."""
    try:
        conn = Conn(args.host, args.port, timeout=args.timeout)
        ack = conn.request({"verb": "subscribe", "id": jid})
        if not ack.get("ok"):
            raise ProtocolError(f"subscribe {jid}: {ack.get('error')}")
        frames = 0
        while True:
            frame = conn.recv_obj()
            if frame.get("stream") == "end":
                with lock:
                    outcome[jid] = (frame.get("state"),
                                    int(frame.get("dropped", "0")), frames)
                break
            if frame.get("job") != jid:
                raise ProtocolError(
                    f"stream for {jid} carried a frame for "
                    f"{frame.get('job')}")
            frames += 1
        conn.close()
    except Exception as e:
        with lock:
            errors.append(f"subscriber {jid}: {e}")


def await_all(args, ids_with_t0):
    """Polls the list verb until every id is terminal; returns
    {id: (state, latency_seconds)} with client-side observed latency."""
    conn = Conn(args.host, args.port)
    pending = {jid: t0 for jid, t0 in ids_with_t0}
    done = {}
    deadline = time.monotonic() + args.timeout
    while pending:
        if time.monotonic() > deadline:
            raise ProtocolError(
                f"timeout: {len(pending)} jobs still pending, e.g. "
                + ", ".join(list(pending)[:5]))
        resp = conn.request({"verb": "list"})
        if not resp.get("ok"):
            raise ProtocolError(f"list failed: {resp.get('error')}")
        now = time.monotonic()
        seen = set()
        for job in resp["jobs"]:
            jid = job["id"]
            if jid in seen:
                raise ProtocolError(f"duplicated job in list: {jid}")
            seen.add(jid)
            if jid in pending and job["state"] in (
                    "done", "failed", "cancelled"):
                done[jid] = (job["state"], now - pending.pop(jid))
        if pending:
            time.sleep(args.poll)
    conn.close()
    return done


def fetch_artifact(conn, jid):
    resp = conn.request({"verb": "result", "id": jid})
    if not resp.get("ok"):
        raise ProtocolError(f"result {jid} failed: {resp.get('error')}")
    return resp["artifact"]


def canonical(artifact):
    """Artifact with run-specific provenance removed, for determinism
    comparison across resumed/differently-interleaved runs."""
    return json.dumps({k: v for k, v in artifact.items() if k != "session"},
                      sort_keys=True)


def percentile(sorted_values, q):
    if not sorted_values:
        return 0.0
    idx = min(len(sorted_values) - 1, int(q * len(sorted_values)))
    return sorted_values[idx]


def gate(results, baseline_path, tolerance):
    with open(baseline_path) as f:
        baseline = json.load(f)
    failures = 0
    for entry in baseline["benchmarks"]:
        name, bound = entry["name"], float(entry["value"])
        if name not in results:
            print(f"  {name}: MISSING (baseline {bound})")
            failures += 1
            continue
        value = results[name]
        if entry["unit"] == "seconds":
            ok = value <= bound * (1.0 + tolerance)
        else:
            ok = value >= bound * (1.0 - tolerance)
        status = "ok" if ok else "REGRESSION"
        print(f"  {name}: {value:.4f} vs baseline {bound} -> {status}")
        failures += 0 if ok else 1
    return failures


def main():
    parser = argparse.ArgumentParser(
        description="load-test a motune serve daemon")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--jobs", type=int, default=200)
    parser.add_argument("--threads", type=int, default=8,
                        help="concurrent submitter connections")
    parser.add_argument("--seeds", type=int, default=50,
                        help="distinct seeds; jobs sharing a seed must "
                             "produce identical artifacts")
    parser.add_argument("--kernel", default="mm")
    parser.add_argument("--machine", default="westmere")
    parser.add_argument("--n", type=int, default=64)
    parser.add_argument("--algorithm", default="random")
    parser.add_argument("--objectives", default="time,resources")
    parser.add_argument("--budget", type=int, default=20)
    parser.add_argument("--timeout", type=float, default=300.0,
                        help="await-phase deadline in seconds")
    parser.add_argument("--poll", type=float, default=0.05)
    parser.add_argument("--phase", choices=["full", "submit", "await"],
                        default="full")
    parser.add_argument("--ids-file",
                        help="submit phase writes acked ids here; await "
                             "phase reads them")
    parser.add_argument("--subscribe", type=int, default=0,
                        help="hold N live subscribe streams on in-flight "
                             "jobs while the burst drains")
    parser.add_argument("--baseline",
                        help="gate against this baseline JSON")
    parser.add_argument("--tolerance", type=float, default=0.50)
    parser.add_argument("--out", help="write measured numbers as JSON")
    parser.add_argument("--artifacts-dir",
                        help="save one raw artifact per seed here "
                             "(seed_<seed>.json), for cross-run diffing")
    args = parser.parse_args()

    # ---- submit phase -------------------------------------------------
    acked, errors, rejects = [], [], [0]
    lock = threading.Lock()
    submit_seconds = 0.0
    if args.phase in ("full", "submit"):
        Conn(args.host, args.port).request({"verb": "ping"})  # fail fast
        slices = [range(t, args.jobs, args.threads)
                  for t in range(args.threads)]
        t0 = time.monotonic()
        threads = [threading.Thread(target=submit_slice,
                                    args=(args, s, acked, rejects, errors,
                                          lock))
                   for s in slices if len(s)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        submit_seconds = time.monotonic() - t0
        if errors:
            print("submit errors:\n  " + "\n  ".join(errors))
            return 1
        ids = [jid for jid, _, _ in acked]
        if len(set(ids)) != len(ids):
            print(f"DUPLICATED ack: {len(ids) - len(set(ids))} ids "
                  "acked more than once")
            return 1
        if len(ids) != args.jobs:
            print(f"LOST submits: acked {len(ids)}/{args.jobs}")
            return 1
        print(f"submitted {len(ids)} jobs in {submit_seconds:.3f}s "
              f"({rejects[0]} backpressure retries)")
        if args.phase == "submit":
            if not args.ids_file:
                parser.error("--phase submit requires --ids-file")
            with open(args.ids_file, "w") as f:
                json.dump([[jid, seed] for jid, seed, _ in acked], f)
            return 0

    # ---- await + verify phase ----------------------------------------
    if args.phase == "await":
        if not args.ids_file:
            parser.error("--phase await requires --ids-file")
        with open(args.ids_file) as f:
            pairs = json.load(f)
        now = time.monotonic()
        acked = [(jid, seed, now) for jid, seed in pairs]

    # ---- live subscribers ride along while the burst drains ----------
    stream_outcome, stream_errors = {}, []
    subscribers = []
    if args.subscribe > 0:
        # Watch the most recently acked jobs: they sit at the back of the
        # queue, so their streams stay live for most of the drain.
        watch = [jid for jid, _, _ in acked][-args.subscribe:]
        subscribers = [threading.Thread(
            target=subscribe_stream,
            args=(args, jid, stream_outcome, stream_errors, lock))
            for jid in watch]
        for t in subscribers:
            t.start()

    states = await_all(args, [(jid, t0) for jid, _, t0 in acked])
    bad = {jid: s for jid, (s, _) in states.items() if s != "done"}
    if bad:
        print(f"LOST results: {len(bad)} jobs not done: {bad}")
        return 1
    lost = [jid for jid, _, _ in acked if jid not in states]
    if lost:
        print(f"LOST results: never reached terminal state: {lost}")
        return 1

    # Every artifact must be retrievable, and same-seed jobs identical.
    conn = Conn(args.host, args.port)
    by_seed = {}
    for jid, seed, _ in acked:
        artifact = fetch_artifact(conn, jid)
        body = canonical(artifact)
        if seed in by_seed and by_seed[seed][1] != body:
            print(f"NONDETERMINISM: {jid} and {by_seed[seed][0]} share "
                  f"seed {seed} but their artifacts differ")
            return 1
        if seed not in by_seed and args.artifacts_dir:
            os.makedirs(args.artifacts_dir, exist_ok=True)
            with open(os.path.join(args.artifacts_dir,
                                   f"seed_{seed}.json"), "w") as f:
                json.dump(artifact, f, indent=2, sort_keys=True)
        by_seed.setdefault(seed, (jid, body))
    conn.close()
    print(f"verified {len(acked)} artifacts "
          f"({len(by_seed)} distinct seeds, zero lost/duplicated)")

    if subscribers:
        for t in subscribers:
            t.join()
        if stream_errors:
            print("subscriber errors:\n  " + "\n  ".join(stream_errors))
            return 1
        not_done = {jid: s for jid, (s, _, _) in stream_outcome.items()
                    if s != "done"}
        if not_done:
            print(f"LOST streams: subscriptions ended {not_done}")
            return 1
        dropped = sum(d for _, d, _ in stream_outcome.values())
        frames = sum(f for _, _, f in stream_outcome.values())
        print(f"{len(stream_outcome)} live streams all ended done: "
              f"{frames} frames delivered, {dropped} dropped "
              "(best-effort trace/progress only; results complete)")

    latencies = sorted(lat for _, lat in states.values())
    results = {
        "serve.job.p50_latency": percentile(latencies, 0.50),
        "serve.job.p99_latency": percentile(latencies, 0.99),
    }
    if args.phase == "full":
        results["serve.submit.throughput"] = (
            len(acked) / submit_seconds if submit_seconds > 0 else 0.0)
        total = max(lat for _, lat in states.values())
        results["serve.jobs.throughput"] = (
            len(acked) / total if total > 0 else 0.0)
    for name in sorted(results):
        print(f"  {name}: {results[name]:.4f}")

    if args.out:
        with open(args.out, "w") as f:
            json.dump({"schema": 1,
                       "benchmarks": [{"name": k, "value": v}
                                      for k, v in sorted(results.items())]},
                      f, indent=2)
            f.write("\n")

    if args.baseline:
        failures = gate(results, args.baseline, args.tolerance)
        if failures:
            print(f"{failures} serve gate(s) failed")
            return 1
        print("all serve gates passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
