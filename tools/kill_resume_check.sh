#!/usr/bin/env bash
# Crash-safety check for durable tuning sessions: SIGKILL a checkpointed
# `motune tune` mid-run, resume it, and assert the resumed artifact is
# bit-identical to an uninterrupted golden run (modulo the session
# provenance block, which legitimately records the resume).
#
# Usage: kill_resume_check.sh /path/to/motune [WORKDIR]
#   KILL_AFTER    seconds before the SIGKILL (default 1.2)
#   EVAL_DELAY    injected per-evaluation delay that stretches the victim
#                 run so the kill lands mid-search (default 0.002)
#
# Registered as the ctest `kill_resume_check` and run by the CI
# `kill-resume` job. Deterministic by construction: wherever the kill
# lands — before the first checkpoint, mid-generation, or between
# checkpoints — resume replays the deterministic search over the journaled
# evaluations and must reach the identical front.
set -euo pipefail

MOTUNE="${1:?usage: kill_resume_check.sh /path/to/motune [workdir]}"
WORK="${2:-$(mktemp -d)}"
HERE="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
KILL_AFTER="${KILL_AFTER:-1.2}"
EVAL_DELAY="${EVAL_DELAY:-0.002}"

TUNE_ARGS=(tune --kernel mm --n 600 --seed 7)
mkdir -p "$WORK"
rm -rf "$WORK/session" "$WORK/golden.json" "$WORK/victim.json" "$WORK/resumed.json"

echo "== golden run (uninterrupted, no session)"
"$MOTUNE" "${TUNE_ARGS[@]}" --out "$WORK/golden.json" > /dev/null

echo "== victim run (checkpointed, ${EVAL_DELAY}s injected per evaluation)"
MOTUNE_FAULT_SPEC="delay@*:${EVAL_DELAY}" \
  "$MOTUNE" "${TUNE_ARGS[@]}" --checkpoint "$WORK/session" \
  --out "$WORK/victim.json" > "$WORK/victim.log" 2>&1 &
VICTIM=$!
sleep "$KILL_AFTER"
if kill -KILL "$VICTIM" 2> /dev/null; then
  echo "   SIGKILL delivered after ${KILL_AFTER}s"
fi
wait "$VICTIM" 2> /dev/null || true

if [ -f "$WORK/victim.json" ]; then
  # The run outpaced the kill (slow CI runner warming up, tiny search).
  # Fall back to simulating the crash: drop the finish record, truncate the
  # journal and leave a torn tail — the exact on-disk state a kill produces.
  echo "   run finished before the kill; truncating the journal instead"
  grep -v '"type":"finish"' "$WORK/session/session.jsonl" > "$WORK/session/cut"
  TOTAL=$(wc -l < "$WORK/session/cut")
  head -n "$((TOTAL * 6 / 10))" "$WORK/session/cut" > "$WORK/session/session.jsonl"
  printf '{"type":"eval","config":[9,' >> "$WORK/session/session.jsonl"
  rm -f "$WORK/session/cut" "$WORK/victim.json"
fi

echo "== resume"
"$MOTUNE" "${TUNE_ARGS[@]}" --resume "$WORK/session" \
  --out "$WORK/resumed.json" > /dev/null

echo "== compare (ignoring the session provenance block)"
python3 "$HERE/compare_artifacts.py" "$WORK/golden.json" "$WORK/resumed.json" \
  --ignore session

echo "kill-resume check passed"
