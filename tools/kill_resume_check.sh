#!/usr/bin/env bash
# Crash-safety check for durable tuning sessions: SIGKILL a checkpointed
# run mid-flight, resume it, and assert the resumed artifact is
# bit-identical to an uninterrupted golden run (modulo the session
# provenance block, which legitimately records the resume).
#
# Usage: kill_resume_check.sh /path/to/motune [WORKDIR] [MODE]
#   MODE          "tune" (default): SIGKILL a checkpointed `motune tune`,
#                 resume with --resume, diff against an uninterrupted run.
#                 "serve": SIGKILL a `motune serve` daemon mid-load (a
#                 burst of checkpointed jobs in flight), restart it on the
#                 same state dir, and diff every job's artifact against a
#                 golden uninterrupted daemon run.
#                 "island": run a 2-island search as two worker processes
#                 sharing a session directory, SIGKILL one island mid-run
#                 (its peer keeps polling the shared migrant journal),
#                 resume the victim, merge, and diff the merged front
#                 against an uninterrupted in-process golden run.
#   KILL_AFTER    seconds before the SIGKILL (default 1.2)
#   EVAL_DELAY    injected per-evaluation delay that stretches the victim
#                 run so the kill lands mid-search (default 0.002)
#   SERVE_PORT    fixed port for serve mode (default 7831)
#   SERVE_JOBS    burst size for serve mode (default 12)
#
# Registered as the ctest `kill_resume_check` / `kill_resume_serve_check`
# and run by the CI `kill-resume` and `serve-gate` jobs. Deterministic by
# construction: wherever the kill lands — before the first checkpoint,
# mid-generation, or between checkpoints — resume replays the
# deterministic search over the journaled evaluations and must reach the
# identical front.
set -euo pipefail

MOTUNE="${1:?usage: kill_resume_check.sh /path/to/motune [workdir] [tune|serve]}"
WORK="${2:-$(mktemp -d)}"
MODE="${3:-tune}"
HERE="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
KILL_AFTER="${KILL_AFTER:-1.2}"
EVAL_DELAY="${EVAL_DELAY:-0.002}"
SERVE_PORT="${SERVE_PORT:-7831}"
SERVE_JOBS="${SERVE_JOBS:-12}"

if [ "$MODE" = "serve" ]; then
  mkdir -p "$WORK"
  rm -rf "$WORK/golden_state" "$WORK/victim_state" \
         "$WORK/golden_artifacts" "$WORK/resumed_artifacts" "$WORK/ids.json"
  LOAD=(python3 "$HERE/loadtest_serve.py" --port "$SERVE_PORT"
        --jobs "$SERVE_JOBS" --seeds "$SERVE_JOBS" --threads 4
        --algorithm rsgde3 --timeout 600)

  echo "== golden daemon run (uninterrupted)"
  "$MOTUNE" serve --dir "$WORK/golden_state" --port "$SERVE_PORT" \
    --workers 2 --queue-capacity 64 > "$WORK/golden.log" 2>&1 &
  GOLDEN=$!
  sleep 0.5
  "${LOAD[@]}" --artifacts-dir "$WORK/golden_artifacts"
  "$MOTUNE" jobs --port "$SERVE_PORT" --shutdown > /dev/null
  wait "$GOLDEN" 2> /dev/null || true

  echo "== victim daemon (${EVAL_DELAY}s injected per evaluation)"
  MOTUNE_FAULT_SPEC="delay@*:${EVAL_DELAY}" \
    "$MOTUNE" serve --dir "$WORK/victim_state" --port "$SERVE_PORT" \
    --workers 2 --queue-capacity 64 > "$WORK/victim.log" 2>&1 &
  VICTIM=$!
  sleep 0.5
  "${LOAD[@]}" --phase submit --ids-file "$WORK/ids.json"
  sleep "$KILL_AFTER"
  kill -KILL "$VICTIM" 2> /dev/null && echo "   SIGKILL delivered after ${KILL_AFTER}s"
  wait "$VICTIM" 2> /dev/null || true

  FINISHED=$(find "$WORK/victim_state/jobs" -name artifact.json 2> /dev/null | wc -l)
  echo "   $FINISHED/$SERVE_JOBS jobs had finished at kill time"
  if [ "$FINISHED" -ge "$SERVE_JOBS" ]; then
    echo "ERROR: the burst outpaced the kill; raise EVAL_DELAY or SERVE_JOBS" >&2
    exit 1
  fi

  echo "== restart on the same state dir; in-flight jobs must resume"
  "$MOTUNE" serve --dir "$WORK/victim_state" --port "$SERVE_PORT" \
    --workers 2 --queue-capacity 64 > "$WORK/restart.log" 2>&1 &
  RESTART=$!
  sleep 0.5
  "${LOAD[@]}" --phase await --ids-file "$WORK/ids.json" \
    --artifacts-dir "$WORK/resumed_artifacts"
  "$MOTUNE" jobs --port "$SERVE_PORT" --shutdown > /dev/null
  wait "$RESTART" 2> /dev/null || true

  echo "== compare every job against the golden run"
  for golden in "$WORK/golden_artifacts/"*.json; do
    python3 "$HERE/compare_artifacts.py" "$golden" \
      "$WORK/resumed_artifacts/$(basename "$golden")" --ignore session
  done
  echo "serve kill-resume check passed"
  exit 0
fi

if [ "$MODE" = "island" ]; then
  ISLAND_ARGS=(tune --kernel mm --n 600 --seed 7 --islands 2)
  mkdir -p "$WORK"
  rm -rf "$WORK/session" "$WORK/golden.json" "$WORK/resumed.json"

  echo "== golden run (uninterrupted, in-process islands, no session)"
  "$MOTUNE" "${ISLAND_ARGS[@]}" --out "$WORK/golden.json" > /dev/null

  echo "== two worker processes; island 1 gets ${EVAL_DELAY}s per evaluation"
  "$MOTUNE" "${ISLAND_ARGS[@]}" --island-index 0 \
    --checkpoint "$WORK/session" > "$WORK/island0.log" 2>&1 &
  PEER=$!
  MOTUNE_FAULT_SPEC="delay@*:${EVAL_DELAY}" \
    "$MOTUNE" "${ISLAND_ARGS[@]}" --island-index 1 \
    --checkpoint "$WORK/session" > "$WORK/island1.log" 2>&1 &
  VICTIM=$!
  sleep "$KILL_AFTER"
  if kill -KILL "$VICTIM" 2> /dev/null; then
    echo "   SIGKILL delivered to island 1 after ${KILL_AFTER}s"
  fi
  wait "$VICTIM" 2> /dev/null || true

  VICTIM_JOURNAL="$WORK/session/island-1/session.jsonl"
  if grep -q '"type":"finish"' "$VICTIM_JOURNAL" 2> /dev/null; then
    # The victim outpaced the kill. Simulate the crash instead: drop the
    # finish record, truncate the journal and leave a torn tail — the
    # exact on-disk state a kill produces. The already-published migrant
    # records stay (they are immutable and peers may have read them); the
    # resumed island re-offers those rounds and the journal refuses the
    # duplicates.
    echo "   island 1 finished before the kill; truncating its journal"
    grep -v '"type":"finish"' "$VICTIM_JOURNAL" > "$WORK/session/cut"
    TOTAL=$(wc -l < "$WORK/session/cut")
    head -n "$((TOTAL * 6 / 10))" "$WORK/session/cut" > "$VICTIM_JOURNAL"
    printf '{"type":"eval","config":[9,' >> "$VICTIM_JOURNAL"
    rm -f "$WORK/session/cut"
  fi

  echo "== resume island 1; island 0 unblocks as the replayed rounds land"
  "$MOTUNE" "${ISLAND_ARGS[@]}" --island-index 1 \
    --resume "$WORK/session" > "$WORK/island1_resume.log" 2>&1
  wait "$PEER"

  echo "== merge the finished islands"
  "$MOTUNE" "${ISLAND_ARGS[@]}" --resume "$WORK/session" \
    --out "$WORK/resumed.json" > /dev/null

  echo "== compare (ignoring the session provenance block)"
  python3 "$HERE/compare_artifacts.py" "$WORK/golden.json" \
    "$WORK/resumed.json" --ignore session

  echo "island kill-resume check passed"
  exit 0
fi

TUNE_ARGS=(tune --kernel mm --n 600 --seed 7)
mkdir -p "$WORK"
rm -rf "$WORK/session" "$WORK/golden.json" "$WORK/victim.json" "$WORK/resumed.json"

echo "== golden run (uninterrupted, no session)"
"$MOTUNE" "${TUNE_ARGS[@]}" --out "$WORK/golden.json" > /dev/null

echo "== victim run (checkpointed, ${EVAL_DELAY}s injected per evaluation)"
MOTUNE_FAULT_SPEC="delay@*:${EVAL_DELAY}" \
  "$MOTUNE" "${TUNE_ARGS[@]}" --checkpoint "$WORK/session" \
  --out "$WORK/victim.json" > "$WORK/victim.log" 2>&1 &
VICTIM=$!
sleep "$KILL_AFTER"
if kill -KILL "$VICTIM" 2> /dev/null; then
  echo "   SIGKILL delivered after ${KILL_AFTER}s"
fi
wait "$VICTIM" 2> /dev/null || true

if [ -f "$WORK/victim.json" ]; then
  # The run outpaced the kill (slow CI runner warming up, tiny search).
  # Fall back to simulating the crash: drop the finish record, truncate the
  # journal and leave a torn tail — the exact on-disk state a kill produces.
  echo "   run finished before the kill; truncating the journal instead"
  grep -v '"type":"finish"' "$WORK/session/session.jsonl" > "$WORK/session/cut"
  TOTAL=$(wc -l < "$WORK/session/cut")
  head -n "$((TOTAL * 6 / 10))" "$WORK/session/cut" > "$WORK/session/session.jsonl"
  printf '{"type":"eval","config":[9,' >> "$WORK/session/session.jsonl"
  rm -f "$WORK/session/cut" "$WORK/victim.json"
fi

echo "== resume"
"$MOTUNE" "${TUNE_ARGS[@]}" --resume "$WORK/session" \
  --out "$WORK/resumed.json" > /dev/null

echo "== compare (ignoring the session provenance block)"
python3 "$HERE/compare_artifacts.py" "$WORK/golden.json" "$WORK/resumed.json" \
  --ignore session

echo "kill-resume check passed"
