#!/usr/bin/env python3
"""Validate a Prometheus text-exposition scrape from `motune serve`.

Stdlib-only parser for the text format (version 0.0.4) the daemon's
`stats --format prometheus` verb emits. Used by the CI serve-gate to
prove the exposition stays machine-readable under load and that the
daemon's own accounting agrees with the client's:

  1. every line is either a `# TYPE <name> <counter|gauge|summary>`
     comment or a `<name>[{labels}] <value>` sample;
  2. every sample is preceded by a TYPE declaration for its metric
     family, every metric name starts with `motune_`, counters end in
     `_total`, and values parse as floats (NaN/+Inf/-Inf included);
  3. summaries expose quantile samples only with a matching _sum/_count
     pair, and quantile label values parse as probabilities;
  4. with --expect-jobs-done N, `motune_serve_jobs_done_total` must
     equal N exactly — the scrape agrees with the number of jobs the
     load client saw complete (zero lost, zero phantom);
  5. whenever the exact-spec result-cache family is present,
     motune_serve_cache_hits_total + motune_serve_cache_misses_total
     must equal motune_serve_cache_lookups_total (every lookup resolved
     one way, none double-counted);
  6. with --expect-cache-hits N, motune_serve_cache_hits_total must be
     at least N (a floor, not an exact match: other clients of the same
     daemon may add hits of their own).

Usage: check_prom.py SCRAPE.txt [--expect-jobs-done N]
                                [--expect-cache-hits N]
       ... | check_prom.py - [--expect-jobs-done N]
"""
import re
import sys

SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>[^}]*)\})?'
    r' (?P<value>\S+)$')
TYPE_RE = re.compile(
    r'^# TYPE (?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r' (?P<kind>counter|gauge|summary|histogram|untyped)$')


def parse_value(text):
    if text == "NaN":
        return float("nan")
    if text == "+Inf":
        return float("inf")
    if text == "-Inf":
        return float("-inf")
    return float(text)  # raises ValueError on garbage


def family_of(sample_name):
    """Strips the summary suffixes so samples map to their TYPE family."""
    for suffix in ("_sum", "_count"):
        if sample_name.endswith(suffix):
            return sample_name[: -len(suffix)]
    return sample_name


def main():
    argv = sys.argv[1:]
    expect_done = None
    if "--expect-jobs-done" in argv:
        i = argv.index("--expect-jobs-done")
        if i + 1 >= len(argv):
            print(__doc__, file=sys.stderr)
            return 2
        expect_done = int(argv[i + 1])
        del argv[i:i + 2]
    expect_cache_hits = None
    if "--expect-cache-hits" in argv:
        i = argv.index("--expect-cache-hits")
        if i + 1 >= len(argv):
            print(__doc__, file=sys.stderr)
            return 2
        expect_cache_hits = int(argv[i + 1])
        del argv[i:i + 2]
    if len(argv) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    if argv[0] == "-":
        text = sys.stdin.read()
    else:
        with open(argv[0], encoding="utf-8") as fh:
            text = fh.read()

    types = {}       # family -> kind
    samples = {}     # (name, labels) -> value
    quantiles = set()  # summary families that exposed quantile samples
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            m = TYPE_RE.match(line)
            if not m:
                print(f"line {lineno}: malformed comment: {line!r}",
                      file=sys.stderr)
                return 1
            if m.group("name") in types:
                print(f"line {lineno}: duplicate TYPE for "
                      f"{m.group('name')}", file=sys.stderr)
                return 1
            types[m.group("name")] = m.group("kind")
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            print(f"line {lineno}: malformed sample: {line!r}",
                  file=sys.stderr)
            return 1
        name, labels = m.group("name"), m.group("labels") or ""
        if not name.startswith("motune_"):
            print(f"line {lineno}: sample outside the motune_ namespace: "
                  f"{name}", file=sys.stderr)
            return 1
        family = family_of(name)
        if family not in types:
            print(f"line {lineno}: sample {name} has no TYPE declaration",
                  file=sys.stderr)
            return 1
        if types[family] == "counter" and not name.endswith("_total"):
            print(f"line {lineno}: counter sample {name} lacks _total",
                  file=sys.stderr)
            return 1
        try:
            value = parse_value(m.group("value"))
        except ValueError:
            print(f"line {lineno}: unparsable value: {line!r}",
                  file=sys.stderr)
            return 1
        if "quantile=" in labels:
            q = labels.split('quantile="', 1)[1].split('"', 1)[0]
            if not 0.0 <= float(q) <= 1.0:
                print(f"line {lineno}: quantile out of range: {q}",
                      file=sys.stderr)
                return 1
            quantiles.add(family)
        if (name, labels) in samples:
            print(f"line {lineno}: duplicate sample {name}{{{labels}}}",
                  file=sys.stderr)
            return 1
        samples[(name, labels)] = value

    if not samples:
        print("empty scrape", file=sys.stderr)
        return 1
    for family in quantiles:
        for suffix in ("_sum", "_count"):
            if (family + suffix, "") not in samples:
                print(f"summary {family} has quantiles but no "
                      f"{family}{suffix}", file=sys.stderr)
                return 1

    if expect_done is not None:
        key = ("motune_serve_jobs_done_total", "")
        if key not in samples:
            print("motune_serve_jobs_done_total missing from scrape",
                  file=sys.stderr)
            return 1
        got = samples[key]
        if got != expect_done:
            print(f"motune_serve_jobs_done_total is {got:.0f}, the load "
                  f"client saw {expect_done} jobs complete", file=sys.stderr)
            return 1

    cache = {suffix: samples.get((f"motune_serve_cache_{suffix}_total", ""))
             for suffix in ("lookups", "hits", "misses")}
    if any(v is not None for v in cache.values()):
        # A member the daemon never touched is simply absent: that is a 0.
        cache = {s: v if v is not None else 0.0 for s, v in cache.items()}
        if cache["hits"] + cache["misses"] != cache["lookups"]:
            print(f"cache accounting broken: hits ({cache['hits']:.0f}) + "
                  f"misses ({cache['misses']:.0f}) != lookups "
                  f"({cache['lookups']:.0f})", file=sys.stderr)
            return 1
    if expect_cache_hits is not None:
        if cache["hits"] is None or cache["hits"] < expect_cache_hits:
            got = "missing" if cache["hits"] is None else f"{cache['hits']:.0f}"
            print(f"motune_serve_cache_hits_total is {got}, expected at "
                  f"least {expect_cache_hits}", file=sys.stderr)
            return 1

    kinds = {}
    for kind in types.values():
        kinds[kind] = kinds.get(kind, 0) + 1
    print(f"scrape ok: {len(samples)} samples across {len(types)} families "
          f"({', '.join(f'{n} {k}' for k, n in sorted(kinds.items()))})"
          + (f", serve.jobs.done == {expect_done}"
             if expect_done is not None else "")
          + (f", cache hits >= {expect_cache_hits}"
             if expect_cache_hits is not None else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
