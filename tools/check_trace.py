#!/usr/bin/env python3
"""Validate a motune trace (CI invariant gate).

Checks, over the output of `motune tune --trace FILE`:
  1. every line is a well-formed JSON object with a `type` and `name`;
  2. the per-generation hypervolume sequence (gde3.generation spans,
     attr `hv`) is monotone non-decreasing;
  3. the final `tuning.evaluations.unique` counter equals the number of
     unique configurations the search evaluated — cross-checked against
     the sum of unique evaluations implied by the generation spans'
     parent run span when present (`rsgde3.run` / `gde3.run` attr
     `evaluations`);
  4. every runtime ring record (`rt.*`) and region event carries a
     positive thread id;
  5. when any `rt.*` record is present, the `rt.ring.dropped` counter is
     present too (no silent loss) and its value is reported;
  6. the surrogate / result-cache counter families obey their invariants
     when present: every `tuning.surrogate.*` and `serve.cache.*` counter
     is non-negative, `tuning.surrogate.culled` never exceeds
     `tuning.surrogate.predictions` (every culled trial was scored), and
     for any `<family>.lookups` counter, hits + misses == lookups.

With --chrome FILE, additionally validates a Chrome trace-event JSON
array structurally: tolerant of a truncated tail (per the format spec),
every event needs name/ph/ts/pid/tid, `X` events need a non-negative
`dur`, and `B`/`E` events must balance per (pid, tid).

With --serve JOBS_DIR, validates the per-job traces a `motune serve`
state directory accumulates (`jobs/jNNNNNN/trace.jsonl`) instead of a
single tuning trace:
  1. every line parses and carries `type`/`name`;
  2. every record's `attrs.job` stamp matches the directory it lives in
     (no cross-job bleed through the shared scheduler threads);
  3. span ids are disjoint across jobs (the scheduler seeds each job's
     tracer in its own id range — a collision means two jobs' spans
     could be confused in a merged view);
  4. each trace starts with a `trace.header` and a resumed job has one
     header per run, with the `run` stamp increasing.

With --replay LOG, validates a `motune replay --log LOG` selection log
(format motune-replay-v1) instead:
  1. every line parses, is `type: replay`, and the first record is a
     `replay.header` declaring the format;
  2. phase records appear in ordinal order with invocation offsets that
     match the cumulative phase lengths;
  3. switch records carry strictly increasing invocation indices, move
     between two *different* in-range arms, and their count equals the
     summary's `switches`;
  4. the final record is the one `replay.summary`, its per-arm selection
     counts sum to the invocation total, and its ratio is consistent
     with the logged bills.

With --metrics FILE, validates a metrics-registry JSON dump (the
--metrics output of the benches and the CLI) instead of a trace: every
counter must be non-negative (registry counters are monotone by
construction), plus the rule-6 family invariants above — this is how the
CI gates check `serve.cache.{lookups,hits,misses}` consistency, since
those counters live in the daemon's registry, not in any per-job trace.

Usage: check_trace.py TRACE.jsonl [--chrome TRACE.json]
       check_trace.py --serve STATE_DIR/jobs
       check_trace.py --replay LOG.jsonl
       check_trace.py --metrics METRICS.json
"""
import glob
import json
import os
import sys


def check_chrome(path: str) -> int:
    """Structural validation of a Chrome trace-event array file."""
    with open(path, encoding="utf-8") as fh:
        text = fh.read().strip()
    if not text.startswith("["):
        print(f"{path}: chrome trace must be a JSON array", file=sys.stderr)
        return 1
    try:
        events = json.loads(text)
    except json.JSONDecodeError:
        # The format explicitly tolerates a missing tail: close the array
        # after stripping a trailing comma and retry.
        repaired = text.rstrip().rstrip(",") + "]"
        try:
            events = json.loads(repaired)
        except json.JSONDecodeError as err:
            print(f"{path}: unparsable even after closing the array: {err}",
                  file=sys.stderr)
            return 1
    if not isinstance(events, list) or not events:
        print(f"{path}: empty chrome trace", file=sys.stderr)
        return 1

    begin_depth = {}  # (pid, tid) -> open B count
    for i, ev in enumerate(events):
        for key in ("name", "ph", "ts", "pid", "tid"):
            if key not in ev:
                print(f"{path}: event {i} missing {key}: {ev}",
                      file=sys.stderr)
                return 1
        ph = ev["ph"]
        if ph == "X" and ev.get("dur", -1) < 0:
            print(f"{path}: event {i} ('{ev['name']}') has negative dur",
                  file=sys.stderr)
            return 1
        track = (ev["pid"], ev["tid"])
        if ph == "B":
            begin_depth[track] = begin_depth.get(track, 0) + 1
        elif ph == "E":
            begin_depth[track] = begin_depth.get(track, 0) - 1
            if begin_depth[track] < 0:
                print(f"{path}: unbalanced E on track {track}",
                      file=sys.stderr)
                return 1
    unbalanced = {t: d for t, d in begin_depth.items() if d != 0}
    if unbalanced:
        print(f"{path}: unbalanced B/E events: {unbalanced}", file=sys.stderr)
        return 1
    phases = sorted({ev["ph"] for ev in events})
    print(f"chrome trace ok: {len(events)} events, phases {phases}")
    return 0


def load_jsonl(path: str):
    """Parses a trace.jsonl; returns (records, error_string_or_None)."""
    records = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as err:
                return None, f"{path}:{lineno}: invalid JSON: {err}"
            if "type" not in record or "name" not in record:
                return None, f"{path}:{lineno}: missing type/name"
            records.append(record)
    return records, None


def check_serve(jobs_dir: str) -> int:
    """Validate every per-job trace under a serve state dir's jobs/."""
    paths = sorted(glob.glob(os.path.join(jobs_dir, "j*", "trace.jsonl")))
    if not paths:
        print(f"{jobs_dir}: no jobs/*/trace.jsonl found", file=sys.stderr)
        return 1

    span_owner = {}  # span/event id -> job id, to prove disjointness
    total_records = 0
    resumed = 0
    for path in paths:
        job_id = os.path.basename(os.path.dirname(path))
        records, err = load_jsonl(path)
        if err:
            print(err, file=sys.stderr)
            return 1
        if not records:
            print(f"{path}: empty trace", file=sys.stderr)
            return 1
        if records[0]["name"] != "trace.header":
            print(f"{path}: first record is {records[0]['name']!r}, "
                  "expected trace.header", file=sys.stderr)
            return 1

        headers = [r for r in records if r["name"] == "trace.header"]
        runs = [r.get("attrs", {}).get("run") for r in headers]
        if runs != sorted(runs) or len(set(runs)) != len(runs):
            print(f"{path}: run stamps on headers not strictly increasing: "
                  f"{runs}", file=sys.stderr)
            return 1
        if len(headers) > 1:
            resumed += 1

        for r in records:
            attrs = r.get("attrs", {})
            if attrs.get("job") != job_id:
                print(f"{path}: record {r['name']!r} stamped "
                      f"job={attrs.get('job')!r}, expected {job_id!r}",
                      file=sys.stderr)
                return 1
            if "run" not in attrs:
                print(f"{path}: record {r['name']!r} has no run stamp",
                      file=sys.stderr)
                return 1
            rid = r.get("id")
            if rid is None or rid == 0:
                continue
            owner = span_owner.setdefault(rid, job_id)
            if owner != job_id:
                print(f"{path}: span id {rid} also appears in {owner} — "
                      "per-job id ranges must be disjoint", file=sys.stderr)
                return 1
        total_records += len(records)

    print(f"serve traces ok: {len(paths)} jobs, {total_records} records, "
          f"{len(span_owner)} distinct span ids, {resumed} resumed")
    return 0


def counter_family_error(counters):
    """Invariants shared by the trace mode and --metrics mode (rule 6 of
    the module docstring); returns an error string or None."""
    for name in sorted(counters):
        if (name.startswith("tuning.surrogate.")
                or name.startswith("serve.cache.")) and counters[name] < 0:
            return f"counter {name} is negative: {counters[name]}"
    culled = counters.get("tuning.surrogate.culled")
    predictions = counters.get("tuning.surrogate.predictions")
    if culled is not None and predictions is not None and culled > predictions:
        return (f"tuning.surrogate.culled ({culled}) exceeds "
                f"tuning.surrogate.predictions ({predictions}) — every "
                "culled trial must have been scored first")
    for name in sorted(counters):
        if not name.endswith(".lookups"):
            continue
        family = name[: -len(".lookups")]
        hits = counters.get(family + ".hits", 0)
        misses = counters.get(family + ".misses", 0)
        if hits + misses != counters[name]:
            return (f"{family}: hits ({hits}) + misses ({misses}) != "
                    f"lookups ({counters[name]})")
    return None


def check_metrics(path: str) -> int:
    """Validate a metrics-registry JSON dump (bench/CLI --metrics)."""
    with open(path, encoding="utf-8") as fh:
        try:
            doc = json.load(fh)
        except json.JSONDecodeError as err:
            print(f"{path}: invalid JSON: {err}", file=sys.stderr)
            return 1
    counters = doc.get("counters")
    if not isinstance(counters, dict):
        print(f"{path}: no counters object", file=sys.stderr)
        return 1
    negative = {n: v for n, v in counters.items() if v < 0}
    if negative:
        print(f"{path}: negative counters: {negative}", file=sys.stderr)
        return 1
    err = counter_family_error(counters)
    if err:
        print(f"{path}: {err}", file=sys.stderr)
        return 1
    families = sorted({n.rsplit(".", 1)[0] for n in counters})
    print(f"metrics ok: {len(counters)} counters over families "
          f"{families}")
    return 0


def check_replay(path: str) -> int:
    """Validate a `motune replay --log` selection log."""
    records, err = load_jsonl(path)
    if err:
        print(err, file=sys.stderr)
        return 1
    if not records:
        print(f"{path}: empty replay log", file=sys.stderr)
        return 1

    for i, r in enumerate(records):
        if r["type"] != "replay":
            print(f"{path}: record {i} has type {r['type']!r}, expected "
                  "'replay'", file=sys.stderr)
            return 1

    header = records[0]
    if header["name"] != "replay.header":
        print(f"{path}: first record is {header['name']!r}, expected "
              "replay.header", file=sys.stderr)
        return 1
    fmt = header.get("attrs", {}).get("format")
    if fmt != "motune-replay-v1":
        print(f"{path}: header declares format {fmt!r}, expected "
              "motune-replay-v1", file=sys.stderr)
        return 1
    versions = header["attrs"]["versions"]
    declared = header["attrs"]["invocations"]

    summaries = [r for r in records if r["name"] == "replay.summary"]
    if len(summaries) != 1 or records[-1]["name"] != "replay.summary":
        print(f"{path}: expected exactly one replay.summary as the last "
              f"record (found {len(summaries)})", file=sys.stderr)
        return 1
    summary = summaries[0]["attrs"]
    if summary["invocations"] != declared:
        print(f"{path}: summary covers {summary['invocations']} invocations "
              f"but the header declared {declared}", file=sys.stderr)
        return 1
    counts = summary["counts"]
    if len(counts) != versions or sum(counts) != declared:
        print(f"{path}: selection counts {counts} do not sum to "
              f"{declared} over {versions} arms", file=sys.stderr)
        return 1
    if summary["adaptive_cost"] > 0:
        implied = summary["best_static_cost"] / summary["adaptive_cost"]
        if abs(implied - summary["ratio"]) > 1e-9 * max(1.0, abs(implied)):
            print(f"{path}: summary ratio {summary['ratio']} inconsistent "
                  f"with bills (implied {implied})", file=sys.stderr)
            return 1

    phases = [r for r in records if r["name"] == "replay.phase"]
    if not phases:
        print(f"{path}: no replay.phase records", file=sys.stderr)
        return 1
    offset = 0
    for ordinal, r in enumerate(phases):
        attrs = r["attrs"]
        if attrs["phase"] != ordinal:
            print(f"{path}: phase ordinal {attrs['phase']} out of order "
                  f"(expected {ordinal})", file=sys.stderr)
            return 1
        if attrs["invocation"] != offset:
            print(f"{path}: phase {ordinal} starts at {attrs['invocation']}, "
                  f"expected cumulative offset {offset}", file=sys.stderr)
            return 1
        offset += attrs["invocations"]
    if offset != declared:
        print(f"{path}: phase lengths sum to {offset}, header declared "
              f"{declared}", file=sys.stderr)
        return 1

    switches = [r for r in records if r["name"] == "replay.switch"]
    last_invocation = -1
    for r in switches:
        attrs = r["attrs"]
        if attrs["invocation"] <= last_invocation:
            print(f"{path}: switch invocations not strictly increasing at "
                  f"{attrs['invocation']}", file=sys.stderr)
            return 1
        last_invocation = attrs["invocation"]
        if attrs["from"] == attrs["to"]:
            print(f"{path}: switch at {attrs['invocation']} does not move "
                  f"(arm {attrs['from']})", file=sys.stderr)
            return 1
        for key in ("from", "to"):
            if not 0 <= attrs[key] < versions:
                print(f"{path}: switch at {attrs['invocation']} has "
                      f"{key}={attrs[key]} outside [0, {versions})",
                      file=sys.stderr)
                return 1
    if len(switches) != summary["switches"]:
        print(f"{path}: {len(switches)} switch records but the summary "
              f"claims {summary['switches']}", file=sys.stderr)
        return 1

    names = {r["name"] for r in records}
    known = {"replay.header", "replay.phase", "replay.switch",
             "replay.summary"}
    if not names <= known:
        print(f"{path}: unknown record names {sorted(names - known)}",
              file=sys.stderr)
        return 1

    print(f"replay log ok: {declared} invocations over {len(phases)} phases, "
          f"{len(switches)} switches, ratio {summary['ratio']:.3f}")
    return 0


def main() -> int:
    args = sys.argv[1:]
    if args and args[0] == "--replay":
        if len(args) != 2:
            print(__doc__, file=sys.stderr)
            return 2
        return check_replay(args[1])
    if args and args[0] == "--serve":
        if len(args) != 2:
            print(__doc__, file=sys.stderr)
            return 2
        return check_serve(args[1])
    if args and args[0] == "--metrics":
        if len(args) != 2:
            print(__doc__, file=sys.stderr)
            return 2
        return check_metrics(args[1])
    chrome_path = None
    if "--chrome" in args:
        i = args.index("--chrome")
        if i + 1 >= len(args):
            print(__doc__, file=sys.stderr)
            return 2
        chrome_path = args[i + 1]
        del args[i:i + 2]
    if len(args) != 1:
        print(__doc__, file=sys.stderr)
        return 2
    records = []
    with open(args[0], encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as err:
                print(f"line {lineno}: invalid JSON: {err}", file=sys.stderr)
                return 1
            if "type" not in record or "name" not in record:
                print(f"line {lineno}: missing type/name", file=sys.stderr)
                return 1
            records.append(record)
    if not records:
        print("empty trace", file=sys.stderr)
        return 1

    generations = [r for r in records
                   if r["type"] == "span" and r["name"] == "gde3.generation"]
    if not generations:
        print("no gde3.generation spans in trace", file=sys.stderr)
        return 1
    hvs = [g["attrs"]["hv"] for g in generations]
    for a, b in zip(hvs, hvs[1:]):
        if b < a:
            print(f"hypervolume not monotone: {a} -> {b}", file=sys.stderr)
            return 1

    counters = {r["name"]: r["attrs"]["value"] for r in records
                if r["type"] == "counter"}
    if "tuning.evaluations.unique" not in counters:
        print("missing tuning.evaluations.unique counter", file=sys.stderr)
        return 1
    unique = counters["tuning.evaluations.unique"]

    err = counter_family_error(counters)
    if err:
        print(err, file=sys.stderr)
        return 1

    run_spans = [r for r in records if r["type"] == "span"
                 and r["name"] in ("rsgde3.run", "gde3.run")]
    for span in run_spans:
        declared = span["attrs"].get("evaluations")
        if declared is not None and declared != unique:
            print(f"{span['name']} declares {declared} evaluations but the "
                  f"unique counter is {unique}", file=sys.stderr)
            return 1

    # Runtime ring records: thread attribution and no silent loss.
    runtime = [r for r in records if r["name"].startswith("rt.")
               and r["type"] == "span"]
    for r in runtime + [r for r in records if r["name"] == "region.select"]:
        if r.get("tid", 0) <= 0:
            print(f"runtime record without thread id: {r}", file=sys.stderr)
            return 1
    drops = None
    if runtime:
        if "rt.ring.dropped" not in counters:
            print("rt.* records present but rt.ring.dropped counter missing "
                  "(ring loss would be silent)", file=sys.stderr)
            return 1
        drops = counters["rt.ring.dropped"]
        threads = len({r["tid"] for r in runtime})
    else:
        threads = 0

    summary = (f"trace ok: {len(records)} records, {len(generations)} "
               f"generations, hv {hvs[0]:.4f} -> {hvs[-1]:.4f}, "
               f"{unique} unique evaluations")
    if runtime:
        summary += (f", {len(runtime)} runtime events on {threads} threads "
                    f"({drops} dropped)")
    print(summary)

    if chrome_path is not None:
        return check_chrome(chrome_path)
    return 0


if __name__ == "__main__":
    sys.exit(main())
