#!/usr/bin/env python3
"""Validate a motune JSONL trace (CI invariant gate).

Checks, over the output of `motune tune --trace FILE`:
  1. every line is a well-formed JSON object with a `type` and `name`;
  2. the per-generation hypervolume sequence (gde3.generation spans,
     attr `hv`) is monotone non-decreasing;
  3. the final `tuning.evaluations.unique` counter equals the number of
     unique configurations the search evaluated — cross-checked against
     the sum of unique evaluations implied by the generation spans'
     parent run span when present (`rsgde3.run` / `gde3.run` attr
     `evaluations`).

Usage: check_trace.py TRACE.jsonl
"""
import json
import sys


def main() -> int:
    if len(sys.argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    records = []
    with open(sys.argv[1], encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, 1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as err:
                print(f"line {lineno}: invalid JSON: {err}", file=sys.stderr)
                return 1
            if "type" not in record or "name" not in record:
                print(f"line {lineno}: missing type/name", file=sys.stderr)
                return 1
            records.append(record)
    if not records:
        print("empty trace", file=sys.stderr)
        return 1

    generations = [r for r in records
                   if r["type"] == "span" and r["name"] == "gde3.generation"]
    if not generations:
        print("no gde3.generation spans in trace", file=sys.stderr)
        return 1
    hvs = [g["attrs"]["hv"] for g in generations]
    for a, b in zip(hvs, hvs[1:]):
        if b < a:
            print(f"hypervolume not monotone: {a} -> {b}", file=sys.stderr)
            return 1

    counters = {r["name"]: r["attrs"]["value"] for r in records
                if r["type"] == "counter"}
    if "tuning.evaluations.unique" not in counters:
        print("missing tuning.evaluations.unique counter", file=sys.stderr)
        return 1
    unique = counters["tuning.evaluations.unique"]

    run_spans = [r for r in records if r["type"] == "span"
                 and r["name"] in ("rsgde3.run", "gde3.run")]
    for span in run_spans:
        declared = span["attrs"].get("evaluations")
        if declared is not None and declared != unique:
            print(f"{span['name']} declares {declared} evaluations but the "
                  f"unique counter is {unique}", file=sys.stderr)
            return 1

    print(f"trace ok: {len(records)} records, {len(generations)} generations, "
          f"hv {hvs[0]:.4f} -> {hvs[-1]:.4f}, {unique} unique evaluations")
    return 0


if __name__ == "__main__":
    sys.exit(main())
