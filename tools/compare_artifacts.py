#!/usr/bin/env python3
"""Compare two motune tuning artifacts for exact equality.

Used by the kill-resume checks (ctest + CI): a SIGKILLed-and-resumed run
must produce an artifact identical to the uninterrupted golden run, except
for the top-level keys named with --ignore (the "session" provenance block
differs by construction: journal path, resume count).

Exit 0 when equal, 1 with a field-level diff when not.
"""

import argparse
import json
import sys


def diff(a, b, path="$"):
    """Yields human-readable differences between two JSON values."""
    if type(a) is not type(b):
        yield f"{path}: type {type(a).__name__} != {type(b).__name__}"
        return
    if isinstance(a, dict):
        for key in sorted(set(a) | set(b)):
            if key not in a:
                yield f"{path}.{key}: only in second"
            elif key not in b:
                yield f"{path}.{key}: only in first"
            else:
                yield from diff(a[key], b[key], f"{path}.{key}")
    elif isinstance(a, list):
        if len(a) != len(b):
            yield f"{path}: length {len(a)} != {len(b)}"
            return
        for i, (x, y) in enumerate(zip(a, b)):
            yield from diff(x, y, f"{path}[{i}]")
    elif a != b:
        yield f"{path}: {a!r} != {b!r}"


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("first")
    parser.add_argument("second")
    parser.add_argument(
        "--ignore",
        action="append",
        default=[],
        metavar="KEY",
        help="top-level key to drop from both artifacts before comparing "
        "(repeatable; typically: session)",
    )
    args = parser.parse_args()

    artifacts = []
    for path in (args.first, args.second):
        with open(path) as handle:
            artifact = json.load(handle)
        for key in args.ignore:
            artifact.pop(key, None)
        artifacts.append(artifact)

    differences = list(diff(artifacts[0], artifacts[1]))
    if not differences:
        print(f"artifacts identical ({args.first} == {args.second}"
              + (f", ignoring {', '.join(args.ignore)}" if args.ignore else "")
              + ")")
        return 0
    print(f"artifacts differ ({len(differences)} field(s)):", file=sys.stderr)
    for line in differences[:40]:
        print(f"  {line}", file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
