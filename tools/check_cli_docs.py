#!/usr/bin/env python3
"""Docs-drift gate for the motune CLI.

Runs `motune --help` to discover the subcommands, then `motune CMD --help`
for each, and asserts that every subcommand and every `--flag` the binary
prints is mentioned in docs/cli.md. Run by the CI `docs` job, so a new flag
cannot land without its documentation.

Usage: check_cli_docs.py /path/to/motune [docs/cli.md]
"""

import re
import subprocess
import sys


def run_help(motune, *args):
    result = subprocess.run(
        [motune, *args], capture_output=True, text=True, timeout=60
    )
    if result.returncode != 0:
        sys.exit(f"`{motune} {' '.join(args)}` exited {result.returncode}:\n"
                 f"{result.stderr}")
    return result.stdout


def main():
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    motune = sys.argv[1]
    doc_path = sys.argv[2] if len(sys.argv) > 2 else "docs/cli.md"
    with open(doc_path) as handle:
        doc = handle.read()

    global_help = run_help(motune, "--help")
    # Command lines look like "  tune      run the static optimizer ...".
    commands = re.findall(r"^  (\w+)\s{2,}\S", global_help, re.MULTILINE)
    if not commands:
        sys.exit("could not parse any commands out of `motune --help`")

    missing = []
    for command in commands:
        if f"`motune {command}`" not in doc and f"motune {command}" not in doc:
            missing.append(f"command `{command}` (from `motune --help`)")
        help_text = run_help(motune, command, "--help")
        for flag in sorted(set(re.findall(r"--[\w-]+", help_text))):
            if flag == "--help":
                continue
            if flag not in doc:
                missing.append(f"flag `{flag}` (from `motune {command} --help`)")

    if missing:
        print(f"{doc_path} is missing {len(missing)} item(s) the binary "
              "documents in --help:", file=sys.stderr)
        for item in missing:
            print(f"  {item}", file=sys.stderr)
        return 1
    print(f"{doc_path} covers all {len(commands)} commands and their flags")
    return 0


if __name__ == "__main__":
    sys.exit(main())
