#include "observe/metrics.h"
#include "observe/trace.h"

#include "core/gde3.h"
#include "core/testproblems.h"
#include "runtime/thread_pool.h"
#include "support/json.h"
#include "tuning/evaluator.h"

#include <gtest/gtest.h>

#include <sstream>

namespace motune {
namespace {

using observe::MemorySink;
using observe::MetricsRegistry;
using observe::TraceRecord;
using observe::Tracer;

std::vector<TraceRecord> byName(const std::vector<TraceRecord>& records,
                                const std::string& name) {
  std::vector<TraceRecord> out;
  for (const auto& r : records)
    if (r.name == name) out.push_back(r);
  return out;
}

TEST(Tracer, DisabledWithoutSinks) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  observe::Span span = tracer.span("noop");
  EXPECT_FALSE(span.active());
  span.end(); // harmless on an inactive span
  tracer.event("also-noop");
}

TEST(Tracer, SpanNesting) {
  Tracer tracer;
  auto sink = std::make_shared<MemorySink>();
  tracer.addSink(sink);

  {
    observe::Span root = tracer.span("root");
    ASSERT_TRUE(root.active());
    {
      observe::Span child = tracer.span("child");
      observe::Span grandchild = tracer.span("grandchild");
      EXPECT_EQ(grandchild.id(), child.id() + 1);
      grandchild.end();
      tracer.event("note"); // after grandchild ended -> parent is child
    }
    root.setAttr("k", support::Json("v"));
  }

  const auto records = sink->records();
  ASSERT_EQ(records.size(), 4u); // grandchild, note, child, root (end order)

  const auto root = byName(records, "root");
  const auto child = byName(records, "child");
  const auto grandchild = byName(records, "grandchild");
  const auto note = byName(records, "note");
  ASSERT_EQ(root.size(), 1u);
  ASSERT_EQ(child.size(), 1u);
  ASSERT_EQ(grandchild.size(), 1u);
  ASSERT_EQ(note.size(), 1u);

  EXPECT_EQ(root[0].parent, 0u);
  EXPECT_EQ(child[0].parent, root[0].id);
  EXPECT_EQ(grandchild[0].parent, child[0].id);
  EXPECT_EQ(note[0].parent, child[0].id);
  EXPECT_GE(child[0].duration, grandchild[0].duration);
  EXPECT_EQ(root[0].attrs.at("k").asString(), "v");
}

TEST(Tracer, IndependentTracersDoNotAdoptEachOthersSpans) {
  Tracer a, b;
  auto sinkA = std::make_shared<MemorySink>();
  auto sinkB = std::make_shared<MemorySink>();
  a.addSink(sinkA);
  b.addSink(sinkB);

  observe::Span outer = a.span("outer-a");
  observe::Span inner = b.span("inner-b"); // different tracer -> root span
  inner.end();
  outer.end();

  ASSERT_EQ(sinkB->records().size(), 1u);
  EXPECT_EQ(sinkB->records()[0].parent, 0u);
  ASSERT_EQ(sinkA->records().size(), 1u);
  EXPECT_EQ(sinkA->records()[0].parent, 0u);
}

TEST(Tracer, JsonLinesRoundTrip) {
  Tracer tracer;
  std::ostringstream out;
  tracer.addSink(std::make_shared<observe::JsonLinesSink>(out));

  {
    observe::Span span = tracer.span(
        "work", {{"answer", support::Json(42)}, {"ok", support::Json(true)}});
    tracer.event("ping", {{"x", support::Json(1.5)}});
  }
  MetricsRegistry registry;
  registry.counter("c").add(7);
  registry.gauge("g").set(2.5);
  registry.histogram("h").observe(3.0);
  tracer.snapshotMetrics(registry);
  tracer.flush();

  std::vector<support::Json> lines;
  std::istringstream in(out.str());
  std::string line;
  while (std::getline(in, line)) lines.push_back(support::Json::parse(line));
  ASSERT_EQ(lines.size(), 5u); // ping, work, c, g, h

  EXPECT_EQ(lines[0].at("type").asString(), "event");
  EXPECT_EQ(lines[0].at("name").asString(), "ping");
  EXPECT_DOUBLE_EQ(lines[0].at("attrs").at("x").asNumber(), 1.5);

  EXPECT_EQ(lines[1].at("type").asString(), "span");
  EXPECT_EQ(lines[1].at("name").asString(), "work");
  EXPECT_EQ(lines[1].at("attrs").at("answer").asInt(), 42);
  EXPECT_TRUE(lines[1].at("attrs").at("ok").asBool());
  EXPECT_GE(lines[1].at("dur").asNumber(), 0.0);

  EXPECT_EQ(lines[2].at("type").asString(), "counter");
  EXPECT_EQ(lines[2].at("attrs").at("value").asInt(), 7);
  EXPECT_EQ(lines[3].at("type").asString(), "gauge");
  EXPECT_DOUBLE_EQ(lines[3].at("attrs").at("value").asNumber(), 2.5);
  EXPECT_EQ(lines[4].at("type").asString(), "histogram");
  EXPECT_EQ(lines[4].at("attrs").at("count").asInt(), 1);
  EXPECT_DOUBLE_EQ(lines[4].at("attrs").at("mean").asNumber(), 3.0);
}

TEST(Tracer, TableSinkRendersRecords) {
  Tracer tracer;
  std::ostringstream out;
  tracer.addSink(std::make_shared<observe::TableSink>(out));
  { observe::Span span = tracer.span("phase", {{"k", support::Json(1)}}); }
  tracer.event("tick");
  tracer.clearSinks(); // flush renders the table
  const std::string text = out.str();
  EXPECT_NE(text.find("phase"), std::string::npos);
  EXPECT_NE(text.find("tick"), std::string::npos);
  EXPECT_NE(text.find("k=1"), std::string::npos);
}

TEST(Metrics, CounterAtomicityUnderThreadPool) {
  MetricsRegistry registry;
  observe::Counter& counter = registry.counter("hits");
  observe::Histogram& histogram = registry.histogram("lat");

  runtime::ThreadPool pool(4);
  constexpr int kTasks = 64;
  constexpr int kIncrementsPerTask = 10000;
  for (int t = 0; t < kTasks; ++t) {
    pool.submit([&] {
      for (int i = 0; i < kIncrementsPerTask; ++i) counter.add();
      histogram.observe(1.0);
    });
  }
  pool.wait();

  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kTasks) * kIncrementsPerTask);
  const observe::Histogram::Snapshot s = histogram.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kTasks));
  EXPECT_DOUBLE_EQ(s.sum, static_cast<double>(kTasks));
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 1.0);
}

TEST(Metrics, RegistryJsonAndTable) {
  MetricsRegistry registry;
  registry.counter("a.count").add(3);
  registry.gauge("b.gauge").set(0.5);
  registry.histogram("c.hist").observe(2.0);
  registry.histogram("c.hist").observe(4.0);

  const support::Json json = registry.toJson();
  EXPECT_EQ(json.at("counters").at("a.count").asInt(), 3);
  EXPECT_DOUBLE_EQ(json.at("gauges").at("b.gauge").asNumber(), 0.5);
  EXPECT_EQ(json.at("histograms").at("c.hist").at("count").asInt(), 2);
  EXPECT_DOUBLE_EQ(json.at("histograms").at("c.hist").at("mean").asNumber(),
                   3.0);

  const std::string table = registry.renderTable();
  EXPECT_NE(table.find("a.count"), std::string::npos);
  EXPECT_NE(table.find("c.hist"), std::string::npos);

  registry.reset();
  EXPECT_EQ(registry.counter("a.count").value(), 0u);
  EXPECT_EQ(registry.histogram("c.hist").snapshot().count, 0u);
}

TEST(Metrics, CountingEvaluatorMemoHitRate) {
  MetricsRegistry::global().reset();
  opt::SyntheticProblem problem = opt::makeSchaffer();
  tuning::CountingEvaluator counting(problem);

  const tuning::Config config{1234};
  const tuning::Objectives first = counting.evaluate(config);
  for (int i = 0; i < 9; ++i)
    EXPECT_EQ(counting.evaluate(config), first); // memoized, bit-identical
  counting.evaluate({777});

  EXPECT_EQ(counting.evaluations(), 2u);
  EXPECT_EQ(counting.memoHits(), 9u);
  EXPECT_EQ(MetricsRegistry::global()
                .counter("tuning.evaluations.unique")
                .value(),
            2u);
  EXPECT_EQ(MetricsRegistry::global()
                .counter("tuning.evaluations.memo_hits")
                .value(),
            9u);

  counting.reset();
  EXPECT_EQ(counting.evaluations(), 0u);
  EXPECT_EQ(counting.memoHits(), 0u);
}

// The acceptance invariant of the observability layer, pinned as a test:
// a traced optimizer run emits per-generation spans whose `hv` sequence is
// monotone non-decreasing, and the final unique-evaluation counter matches
// CountingEvaluator::evaluations() (i.e. GDE3::evaluations()) exactly.
TEST(Observability, TracedOptimizerRunInvariants) {
  MetricsRegistry::global().reset();
  auto sink = std::make_shared<MemorySink>();
  Tracer::global().addSink(sink);

  opt::SyntheticProblem problem = opt::makeSchaffer();
  runtime::ThreadPool pool(2);
  opt::GDE3Options options;
  options.maxGenerations = 12;
  options.seed = 3;
  opt::GDE3 engine(problem, pool, options);
  const opt::OptResult result = engine.run();

  Tracer::global().snapshotMetrics(MetricsRegistry::global());
  Tracer::global().clearSinks();

  const auto records = sink->records();
  const auto generations = byName(records, "gde3.generation");
  ASSERT_GT(generations.size(), 0u);
  double lastHv = 0.0;
  for (const auto& g : generations) {
    const double hv = g.attrs.at("hv").asNumber();
    EXPECT_GE(hv, lastHv) << "per-generation hv must be monotone";
    lastHv = hv;
    EXPECT_GE(g.attrs.at("boundary_volume").asNumber(), 1.0);
    EXPECT_GE(g.attrs.at("front_size").asInt(), 1);
  }

  const auto runSpans = byName(records, "gde3.run");
  ASSERT_EQ(runSpans.size(), 1u);
  EXPECT_EQ(runSpans[0].attrs.at("generations").asInt(), result.generations);

  const auto counters = byName(records, "tuning.evaluations.unique");
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(static_cast<std::uint64_t>(
                counters[0].attrs.at("value").asInt()),
            engine.evaluations())
      << "trace counter must match CountingEvaluator::evaluations()";
  EXPECT_EQ(engine.evaluations(), result.evaluations);
}

} // namespace
} // namespace motune
