#include "observe/expose.h"
#include "observe/metrics.h"
#include "observe/ring.h"
#include "observe/trace.h"

#include "core/gde3.h"
#include "core/testproblems.h"
#include "runtime/thread_pool.h"
#include "support/json.h"
#include "tuning/evaluator.h"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>

namespace motune {
namespace {

using observe::MemorySink;
using observe::MetricsRegistry;
using observe::TraceRecord;
using observe::Tracer;

std::vector<TraceRecord> byName(const std::vector<TraceRecord>& records,
                                const std::string& name) {
  std::vector<TraceRecord> out;
  for (const auto& r : records)
    if (r.name == name) out.push_back(r);
  return out;
}

TEST(Tracer, DisabledWithoutSinks) {
  Tracer tracer;
  EXPECT_FALSE(tracer.enabled());
  observe::Span span = tracer.span("noop");
  EXPECT_FALSE(span.active());
  span.end(); // harmless on an inactive span
  tracer.event("also-noop");
}

TEST(Tracer, SpanNesting) {
  Tracer tracer;
  auto sink = std::make_shared<MemorySink>();
  tracer.addSink(sink);

  {
    observe::Span root = tracer.span("root");
    ASSERT_TRUE(root.active());
    {
      observe::Span child = tracer.span("child");
      observe::Span grandchild = tracer.span("grandchild");
      EXPECT_EQ(grandchild.id(), child.id() + 1);
      grandchild.end();
      tracer.event("note"); // after grandchild ended -> parent is child
    }
    root.setAttr("k", support::Json("v"));
  }

  const auto records = sink->records();
  // header, then grandchild, note, child, root (span end order).
  ASSERT_EQ(records.size(), 5u);
  EXPECT_EQ(records[0].name, "trace.header");
  EXPECT_GT(records[0].attrs.at("wall_epoch_unix").asNumber(), 0.0);

  const auto root = byName(records, "root");
  const auto child = byName(records, "child");
  const auto grandchild = byName(records, "grandchild");
  const auto note = byName(records, "note");
  ASSERT_EQ(root.size(), 1u);
  ASSERT_EQ(child.size(), 1u);
  ASSERT_EQ(grandchild.size(), 1u);
  ASSERT_EQ(note.size(), 1u);

  EXPECT_EQ(root[0].parent, 0u);
  EXPECT_EQ(child[0].parent, root[0].id);
  EXPECT_EQ(grandchild[0].parent, child[0].id);
  EXPECT_EQ(note[0].parent, child[0].id);
  EXPECT_GE(child[0].duration, grandchild[0].duration);
  EXPECT_EQ(root[0].attrs.at("k").asString(), "v");
}

TEST(Tracer, IndependentTracersDoNotAdoptEachOthersSpans) {
  Tracer a, b;
  auto sinkA = std::make_shared<MemorySink>();
  auto sinkB = std::make_shared<MemorySink>();
  a.addSink(sinkA);
  b.addSink(sinkB);

  observe::Span outer = a.span("outer-a");
  observe::Span inner = b.span("inner-b"); // different tracer -> root span
  inner.end();
  outer.end();

  const auto spansA = byName(sinkA->records(), "outer-a");
  const auto spansB = byName(sinkB->records(), "inner-b");
  ASSERT_EQ(spansB.size(), 1u);
  EXPECT_EQ(spansB[0].parent, 0u);
  ASSERT_EQ(spansA.size(), 1u);
  EXPECT_EQ(spansA[0].parent, 0u);
}

TEST(Tracer, JsonLinesRoundTrip) {
  Tracer tracer;
  std::ostringstream out;
  tracer.addSink(std::make_shared<observe::JsonLinesSink>(out));

  {
    observe::Span span = tracer.span(
        "work", {{"answer", support::Json(42)}, {"ok", support::Json(true)}});
    tracer.event("ping", {{"x", support::Json(1.5)}});
  }
  MetricsRegistry registry;
  registry.counter("c").add(7);
  registry.gauge("g").set(2.5);
  registry.histogram("h").observe(3.0);
  tracer.snapshotMetrics(registry);
  tracer.flush();

  std::vector<support::Json> lines;
  std::istringstream in(out.str());
  std::string line;
  while (std::getline(in, line)) lines.push_back(support::Json::parse(line));
  ASSERT_EQ(lines.size(), 6u); // header, ping, work, c, g, h

  EXPECT_EQ(lines[0].at("type").asString(), "event");
  EXPECT_EQ(lines[0].at("name").asString(), "trace.header");
  EXPECT_EQ(lines[0].at("attrs").at("clock").asString(), "steady");
  EXPECT_GT(lines[0].at("attrs").at("wall_epoch_unix").asNumber(), 0.0);

  EXPECT_EQ(lines[1].at("type").asString(), "event");
  EXPECT_EQ(lines[1].at("name").asString(), "ping");
  EXPECT_DOUBLE_EQ(lines[1].at("attrs").at("x").asNumber(), 1.5);
  EXPECT_GT(lines[1].at("tid").asInt(), 0);

  EXPECT_EQ(lines[2].at("type").asString(), "span");
  EXPECT_EQ(lines[2].at("name").asString(), "work");
  EXPECT_EQ(lines[2].at("attrs").at("answer").asInt(), 42);
  EXPECT_TRUE(lines[2].at("attrs").at("ok").asBool());
  EXPECT_GE(lines[2].at("dur").asNumber(), 0.0);

  EXPECT_EQ(lines[3].at("type").asString(), "counter");
  EXPECT_EQ(lines[3].at("attrs").at("value").asInt(), 7);
  EXPECT_EQ(lines[4].at("type").asString(), "gauge");
  EXPECT_DOUBLE_EQ(lines[4].at("attrs").at("value").asNumber(), 2.5);
  EXPECT_EQ(lines[5].at("type").asString(), "histogram");
  EXPECT_EQ(lines[5].at("attrs").at("count").asInt(), 1);
  EXPECT_DOUBLE_EQ(lines[5].at("attrs").at("mean").asNumber(), 3.0);
  EXPECT_DOUBLE_EQ(lines[5].at("attrs").at("p50").asNumber(), 3.0);
}

TEST(Tracer, TableSinkRendersRecords) {
  Tracer tracer;
  std::ostringstream out;
  tracer.addSink(std::make_shared<observe::TableSink>(out));
  { observe::Span span = tracer.span("phase", {{"k", support::Json(1)}}); }
  tracer.event("tick");
  tracer.clearSinks(); // flush renders the table
  const std::string text = out.str();
  EXPECT_NE(text.find("phase"), std::string::npos);
  EXPECT_NE(text.find("tick"), std::string::npos);
  EXPECT_NE(text.find("k=1"), std::string::npos);
}

TEST(EventRing, KeepsEveryRecordBelowCapacityUnderContention) {
  // Producer pushes fewer events than the ring holds while the consumer
  // drains concurrently: nothing may be lost, torn, or reordered.
  constexpr std::uint64_t kEvents = 2000;
  observe::EventRing ring(/*tid=*/7, /*capacity=*/2048);
  ASSERT_GE(ring.capacity(), kEvents);

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kEvents; ++i) {
      observe::RuntimeEvent e;
      e.kind = observe::RuntimeEvent::Kind::Chunk;
      e.start = static_cast<double>(i);
      e.duration = 0.5;
      e.arg0 = static_cast<std::int64_t>(i);
      e.arg1 = -static_cast<std::int64_t>(i);
      ASSERT_TRUE(ring.tryPush(e));
    }
  });

  std::vector<observe::RuntimeEvent> received;
  while (received.size() < kEvents) ring.drain(received);
  producer.join();
  ring.drain(received);

  ASSERT_EQ(received.size(), kEvents);
  EXPECT_EQ(ring.drops(), 0u);
  for (std::uint64_t i = 0; i < kEvents; ++i) {
    // Torn records would break the arg0 == -arg1 pairing or the order.
    EXPECT_EQ(received[i].arg0, static_cast<std::int64_t>(i));
    EXPECT_EQ(received[i].arg1, -static_cast<std::int64_t>(i));
    EXPECT_DOUBLE_EQ(received[i].start, static_cast<double>(i));
    EXPECT_EQ(received[i].kind, observe::RuntimeEvent::Kind::Chunk);
  }
}

TEST(EventRing, CountsDropsAboveCapacityExactly) {
  observe::EventRing ring(/*tid=*/1, /*capacity=*/8);
  observe::RuntimeEvent e;
  for (int i = 0; i < 20; ++i) ring.tryPush(e);
  EXPECT_EQ(ring.drops(), 12u); // 8 kept, the rest counted, none blocked

  std::vector<observe::RuntimeEvent> out;
  ring.drain(out);
  EXPECT_EQ(out.size(), 8u);
  // Space reclaimed: pushes succeed again and the counter stays put.
  EXPECT_TRUE(ring.tryPush(e));
  EXPECT_EQ(ring.drops(), 12u);
}

TEST(ChromeTraceSink, EmitsParsableTraceEventArray) {
  Tracer tracer;
  std::ostringstream out;
  tracer.addSink(std::make_shared<observe::ChromeTraceSink>(out));
  {
    observe::Span span = tracer.span("work", {{"k", support::Json(1)}});
    tracer.event("tick");
  }
  MetricsRegistry registry;
  registry.counter("evals").add(3);
  tracer.snapshotMetrics(registry);
  tracer.clearSinks(); // drops the sink -> the closing "]" is written

  const support::Json doc = support::Json::parse(out.str());
  ASSERT_EQ(doc.kind(), support::Json::Kind::Array);
  ASSERT_EQ(doc.size(), 4u); // header, tick, work, evals

  EXPECT_EQ(doc[0].at("name").asString(), "trace.header");
  EXPECT_EQ(doc[0].at("ph").asString(), "i");

  EXPECT_EQ(doc[1].at("name").asString(), "tick");
  EXPECT_EQ(doc[1].at("ph").asString(), "i");
  EXPECT_GT(doc[1].at("tid").asInt(), 0);

  EXPECT_EQ(doc[2].at("name").asString(), "work");
  EXPECT_EQ(doc[2].at("ph").asString(), "X"); // complete event
  EXPECT_EQ(doc[2].at("pid").asInt(), 1);
  EXPECT_GE(doc[2].at("dur").asNumber(), 0.0); // microseconds
  EXPECT_EQ(doc[2].at("args").at("k").asInt(), 1);

  EXPECT_EQ(doc[3].at("name").asString(), "evals");
  EXPECT_EQ(doc[3].at("ph").asString(), "C"); // counter track
  EXPECT_EQ(doc[3].at("args").at("value").asInt(), 3);
}

TEST(Metrics, HistogramQuantilesPinnedOnKnownDistribution) {
  MetricsRegistry registry;
  observe::Histogram& h = registry.histogram("lat");
  for (int i = 1; i <= 1000; ++i) h.observe(static_cast<double>(i));

  const observe::Histogram::Snapshot s = h.snapshot();
  ASSERT_EQ(s.count, 1000u);
  // The log-bucketed sketch guarantees ~2% relative error (gamma = 1.04).
  EXPECT_NEAR(s.quantile(0.50), 500.0, 0.025 * 500.0);
  EXPECT_NEAR(s.p50(), s.quantile(0.50), 1e-12);
  EXPECT_NEAR(s.p90(), 900.0, 0.025 * 900.0);
  EXPECT_NEAR(s.p99(), 990.0, 0.025 * 990.0);
  // Extremes clamp to the exactly-tracked min/max.
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 1000.0);
}

TEST(Metrics, HistogramQuantileHandlesNonPositiveValues) {
  MetricsRegistry registry;
  observe::Histogram& h = registry.histogram("mixed");
  h.observe(0.0);
  h.observe(0.0);
  h.observe(10.0);
  h.observe(10.0);
  const observe::Histogram::Snapshot s = h.snapshot();
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.0);  // non-positive ranks -> min
  EXPECT_NEAR(s.quantile(0.9), 10.0, 0.25);
}

TEST(RuntimeLog, DrainsRingEventsWithThreadIdsAndDropCounter) {
  auto sink = std::make_shared<MemorySink>();
  Tracer::global().addSink(sink);

  runtime::ThreadPool pool(2);
  for (int i = 0; i < 8; ++i) pool.submit([] {});
  pool.wait();
  Tracer::global().clearSinks(); // drains the rings into the sink

  const auto records = sink->records();
  const auto tasks = byName(records, "rt.task");
  ASSERT_GE(tasks.size(), 8u);
  for (const auto& t : tasks) {
    EXPECT_GT(t.tid, 0u) << "ring records must carry the producing thread";
    EXPECT_GE(t.duration, 0.0);
  }
  const auto drops = byName(records, "rt.ring.dropped");
  ASSERT_EQ(drops.size(), 1u) << "drop counter must be reported every drain";
  EXPECT_EQ(drops[0].attrs.at("value").asInt(), 0);
}

TEST(Metrics, CounterAtomicityUnderThreadPool) {
  MetricsRegistry registry;
  observe::Counter& counter = registry.counter("hits");
  observe::Histogram& histogram = registry.histogram("lat");

  runtime::ThreadPool pool(4);
  constexpr int kTasks = 64;
  constexpr int kIncrementsPerTask = 10000;
  for (int t = 0; t < kTasks; ++t) {
    pool.submit([&] {
      for (int i = 0; i < kIncrementsPerTask; ++i) counter.add();
      histogram.observe(1.0);
    });
  }
  pool.wait();

  EXPECT_EQ(counter.value(),
            static_cast<std::uint64_t>(kTasks) * kIncrementsPerTask);
  const observe::Histogram::Snapshot s = histogram.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kTasks));
  EXPECT_DOUBLE_EQ(s.sum, static_cast<double>(kTasks));
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 1.0);
}

TEST(Metrics, RegistryJsonAndTable) {
  MetricsRegistry registry;
  registry.counter("a.count").add(3);
  registry.gauge("b.gauge").set(0.5);
  registry.histogram("c.hist").observe(2.0);
  registry.histogram("c.hist").observe(4.0);

  const support::Json json = registry.toJson();
  EXPECT_EQ(json.at("counters").at("a.count").asInt(), 3);
  EXPECT_DOUBLE_EQ(json.at("gauges").at("b.gauge").asNumber(), 0.5);
  EXPECT_EQ(json.at("histograms").at("c.hist").at("count").asInt(), 2);
  EXPECT_DOUBLE_EQ(json.at("histograms").at("c.hist").at("mean").asNumber(),
                   3.0);

  const std::string table = registry.renderTable();
  EXPECT_NE(table.find("a.count"), std::string::npos);
  EXPECT_NE(table.find("c.hist"), std::string::npos);

  registry.reset();
  EXPECT_EQ(registry.counter("a.count").value(), 0u);
  EXPECT_EQ(registry.histogram("c.hist").snapshot().count, 0u);
}

TEST(Metrics, CountingEvaluatorMemoHitRate) {
  MetricsRegistry::global().reset();
  opt::SyntheticProblem problem = opt::makeSchaffer();
  tuning::CountingEvaluator counting(problem);

  const tuning::Config config{1234};
  const tuning::Objectives first = counting.evaluate(config);
  for (int i = 0; i < 9; ++i)
    EXPECT_EQ(counting.evaluate(config), first); // memoized, bit-identical
  counting.evaluate({777});

  EXPECT_EQ(counting.evaluations(), 2u);
  EXPECT_EQ(counting.memoHits(), 9u);
  EXPECT_EQ(MetricsRegistry::global()
                .counter("tuning.evaluations.unique")
                .value(),
            2u);
  EXPECT_EQ(MetricsRegistry::global()
                .counter("tuning.evaluations.memo_hits")
                .value(),
            9u);

  counting.reset();
  EXPECT_EQ(counting.evaluations(), 0u);
  EXPECT_EQ(counting.memoHits(), 0u);
}

// The acceptance invariant of the observability layer, pinned as a test:
// a traced optimizer run emits per-generation spans whose `hv` sequence is
// monotone non-decreasing, and the final unique-evaluation counter matches
// CountingEvaluator::evaluations() (i.e. GDE3::evaluations()) exactly.
TEST(Observability, TracedOptimizerRunInvariants) {
  MetricsRegistry::global().reset();
  auto sink = std::make_shared<MemorySink>();
  Tracer::global().addSink(sink);

  opt::SyntheticProblem problem = opt::makeSchaffer();
  runtime::ThreadPool pool(2);
  opt::GDE3Options options;
  options.maxGenerations = 12;
  options.seed = 3;
  opt::GDE3 engine(problem, pool, options);
  const opt::OptResult result = engine.run();

  Tracer::global().snapshotMetrics(MetricsRegistry::global());
  Tracer::global().clearSinks();

  const auto records = sink->records();
  const auto generations = byName(records, "gde3.generation");
  ASSERT_GT(generations.size(), 0u);
  double lastHv = 0.0;
  for (const auto& g : generations) {
    const double hv = g.attrs.at("hv").asNumber();
    EXPECT_GE(hv, lastHv) << "per-generation hv must be monotone";
    lastHv = hv;
    EXPECT_GE(g.attrs.at("boundary_volume").asNumber(), 1.0);
    EXPECT_GE(g.attrs.at("front_size").asInt(), 1);
  }

  const auto runSpans = byName(records, "gde3.run");
  ASSERT_EQ(runSpans.size(), 1u);
  EXPECT_EQ(runSpans[0].attrs.at("generations").asInt(), result.generations);

  const auto counters = byName(records, "tuning.evaluations.unique");
  ASSERT_EQ(counters.size(), 1u);
  EXPECT_EQ(static_cast<std::uint64_t>(
                counters[0].attrs.at("value").asInt()),
            engine.evaluations())
      << "trace counter must match CountingEvaluator::evaluations()";
  EXPECT_EQ(engine.evaluations(), result.evaluations);
}


// ---------------------------------------------------------------------------
// Prometheus exposition (observe/expose.h)

TEST(Exposition, PrometheusNameSanitization) {
  EXPECT_EQ(observe::prometheusName("serve.jobs.done"),
            "motune_serve_jobs_done");
  EXPECT_EQ(observe::prometheusName("already_fine:ok"),
            "motune_already_fine:ok");
  EXPECT_EQ(observe::prometheusName("weird-chars @here"),
            "motune_weird_chars__here");
}

TEST(Exposition, RenderPrometheusFormatsAllInstrumentKinds) {
  MetricsRegistry registry;
  registry.counter("serve.jobs.done").add(3);
  registry.gauge("serve.stream.subscribers").set(2.0);
  observe::Histogram& hist = registry.histogram("serve.job.run_seconds");
  for (int i = 1; i <= 100; ++i) hist.observe(static_cast<double>(i));

  const std::string text = observe::renderPrometheus(registry);

  // Counter: TYPE line and the _total suffix convention.
  EXPECT_NE(text.find("# TYPE motune_serve_jobs_done_total counter\n"),
            std::string::npos);
  EXPECT_NE(text.find("motune_serve_jobs_done_total 3\n"), std::string::npos);

  // Gauge: plain name, no _total.
  EXPECT_NE(text.find("# TYPE motune_serve_stream_subscribers gauge\n"),
            std::string::npos);
  EXPECT_NE(text.find("motune_serve_stream_subscribers 2\n"),
            std::string::npos);
  EXPECT_EQ(text.find("motune_serve_stream_subscribers_total"),
            std::string::npos);

  // Histogram: exposed as a summary with the three pinned quantiles.
  EXPECT_NE(text.find("# TYPE motune_serve_job_run_seconds summary\n"),
            std::string::npos);
  EXPECT_NE(text.find("motune_serve_job_run_seconds{quantile=\"0.5\"} "),
            std::string::npos);
  EXPECT_NE(text.find("motune_serve_job_run_seconds{quantile=\"0.9\"} "),
            std::string::npos);
  EXPECT_NE(text.find("motune_serve_job_run_seconds{quantile=\"0.99\"} "),
            std::string::npos);
  EXPECT_NE(text.find("motune_serve_job_run_seconds_count 100\n"),
            std::string::npos);
  EXPECT_NE(text.find("motune_serve_job_run_seconds_sum 5050\n"),
            std::string::npos);

  // Every non-comment line is "<name...> <value>"; every comment is # TYPE.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') {
      EXPECT_EQ(line.rfind("# TYPE motune_", 0), 0u) << line;
      continue;
    }
    EXPECT_EQ(line.rfind("motune_", 0), 0u) << line;
    const auto space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_NO_THROW(std::stod(line.substr(space + 1))) << line;
  }
}

TEST(Exposition, EmptyHistogramOmitsQuantilesKeepsSumCount) {
  MetricsRegistry registry;
  registry.histogram("idle.hist");
  const std::string text = observe::renderPrometheus(registry);
  EXPECT_EQ(text.find("quantile"), std::string::npos);
  EXPECT_NE(text.find("motune_idle_hist_count 0\n"), std::string::npos);
  EXPECT_NE(text.find("motune_idle_hist_sum 0\n"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Per-job tracer plumbing: stamps, seeded ids, the scoped override, and the
// evaluator.reset marker the serve scheduler relies on for resumed traces.

TEST(Tracer, StampIsMergedIntoEveryRecord) {
  Tracer tracer;
  auto sink = std::make_shared<MemorySink>();
  // Stamp first, as the serve scheduler does: the trace.header that addSink
  // emits must carry the job/run attrs too.
  tracer.setStamp({{"job", support::Json("j000042")},
                   {"run", support::Json(1)}});
  tracer.addSink(sink);

  { observe::Span span = tracer.span("stamped"); }
  tracer.event("also-stamped");

  const auto records = sink->records();
  ASSERT_GE(records.size(), 3u); // header + span + event
  for (const auto& r : records) {
    ASSERT_TRUE(r.attrs.count("job")) << r.name;
    EXPECT_EQ(r.attrs.at("job").asString(), "j000042") << r.name;
    EXPECT_EQ(r.attrs.at("run").asNumber(), 1.0) << r.name;
  }
}

TEST(Tracer, SeededIdsKeepConcurrentTracersDisjoint) {
  // The serve scheduler seeds each job's tracer at (jobNum << 32) so span
  // ids never collide across jobs; two seeded tracers must hand out ids in
  // disjoint ranges.
  Tracer a, b;
  a.addSink(std::make_shared<MemorySink>());
  b.addSink(std::make_shared<MemorySink>());
  a.seedIds((1ull << 32) | 1);
  b.seedIds((2ull << 32) | 1);

  observe::Span spanA = a.span("a");
  observe::Span spanB = b.span("b");
  EXPECT_GE(spanA.id(), 1ull << 32);
  EXPECT_LT(spanA.id(), 2ull << 32);
  EXPECT_GE(spanB.id(), 2ull << 32);
}

TEST(Tracer, ScopedOverrideRoutesEvaluatorResetEvent) {
  Tracer tracer;
  auto sink = std::make_shared<MemorySink>();
  tracer.addSink(sink);

  opt::SyntheticProblem problem = opt::makeSchaffer();
  tuning::CountingEvaluator counting(problem);
  counting.evaluate({42});

  {
    observe::ScopedTracer scope(&tracer);
    counting.reset(); // emits the trace marker through Tracer::global()
  }
  counting.reset(); // outside the scope: must NOT land in our sink

  const auto resets = byName(sink->records(), "evaluator.reset");
  ASSERT_EQ(resets.size(), 1u)
      << "exactly the reset inside the scoped override is captured";
  EXPECT_TRUE(resets[0].attrs.count("unique"));
  EXPECT_TRUE(resets[0].attrs.count("memo_hits"));
}

} // namespace
} // namespace motune
