// Surrogate-assisted evaluation (src/tuning/surrogate.h): the feature map
// and ridge fit are pure functions of the observation sequence, a keep
// fraction of 1.0 leaves the search byte-identical to a surrogate-free
// run, culling actually saves evaluations while staying deterministic
// across thread-pool sizes, and checkpoint/restore rebuilds the model by
// replaying the engine's archive.
#include "core/gde3.h"
#include "core/testproblems.h"
#include "runtime/thread_pool.h"
#include "support/json.h"
#include "tuning/surrogate.h"

#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <string>
#include <utility>
#include <vector>

using namespace motune;

namespace {

bool bitEqual(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

bool bitEqual(double a, double b) {
  return std::memcmp(&a, &b, sizeof a) == 0;
}

std::multiset<std::pair<tuning::Config, tuning::Objectives>>
canonicalFront(const std::vector<opt::Individual>& front) {
  std::multiset<std::pair<tuning::Config, tuning::Objectives>> out;
  for (const auto& ind : front) out.emplace(ind.config, ind.objectives);
  return out;
}

/// Deterministic space-filling sequence of valid configurations — wide
/// enough spread for the ridge fit to be well conditioned, no RNG
/// involved so every run of the test sees the same sequence.
tuning::Config probeConfig(const std::vector<tuning::ParamSpec>& space,
                           std::size_t i) {
  tuning::Config config(space.size());
  for (std::size_t d = 0; d < space.size(); ++d) {
    const auto span =
        static_cast<std::uint64_t>(space[d].hi - space[d].lo + 1);
    config[d] = space[d].lo +
                static_cast<std::int64_t>((i * 7919 + (d + 1) * 104729) %
                                          span);
  }
  return config;
}

/// Small-sample surrogate so culling activates within a short test run.
tuning::SurrogateOptions eagerSurrogate() {
  tuning::SurrogateOptions options;
  options.minSamples = 40;
  options.refitEvery = 8;
  return options;
}

} // namespace

TEST(Surrogate, FeatureMapIsDeterministicAndFixedOrder) {
  opt::SyntheticProblem problem = opt::makeFonseca();
  tuning::Surrogate a(problem.space(), problem.numObjectives());
  tuning::Surrogate b(problem.space(), problem.numObjectives());
  for (std::size_t i = 0; i < 32; ++i) {
    const tuning::Config config = probeConfig(problem.space(), i);
    const std::vector<double> features = a.features(config);
    EXPECT_EQ(features.size(), a.featureCount());
    EXPECT_TRUE(bitEqual(features, a.features(config))) << "config " << i;
    EXPECT_TRUE(bitEqual(features, b.features(config))) << "config " << i;
  }
}

TEST(Surrogate, PredictionsArePureFunctionOfTheObservationSequence) {
  // Two independently constructed models fed the identical observation
  // sequence agree bit for bit on every later prediction and score — the
  // determinism contract the session warm-start and checkpoint-restore
  // paths rely on.
  opt::SyntheticProblem problem = opt::makeFonseca();
  tuning::Surrogate a(problem.space(), problem.numObjectives(),
                      eagerSurrogate());
  tuning::Surrogate b(problem.space(), problem.numObjectives(),
                      eagerSurrogate());
  for (std::size_t i = 0; i < 96; ++i) {
    const tuning::Config config = probeConfig(problem.space(), i);
    const tuning::Objectives objectives = problem.evaluate(config);
    a.observe(config, objectives);
    b.observe(config, objectives);
  }
  ASSERT_TRUE(a.ready());
  ASSERT_TRUE(b.ready());
  EXPECT_EQ(a.fits(), b.fits());
  EXPECT_TRUE(bitEqual(a.rankCorrelation(), b.rankCorrelation()));
  for (std::size_t i = 200; i < 232; ++i) {
    const tuning::Config config = probeConfig(problem.space(), i);
    EXPECT_TRUE(bitEqual(a.predict(config), b.predict(config))) << i;
    EXPECT_TRUE(bitEqual(a.score(config), b.score(config))) << i;
  }
  EXPECT_EQ(a.predictions(), b.predictions());
}

TEST(Surrogate, ResetToPreloadedDropsEverythingObservedAfterTheMark) {
  // markPreloaded()/resetToPreloaded() is the restore-replay primitive:
  // after a reset, re-observing the same tail must land the model in the
  // same state as a straight-through run.
  opt::SyntheticProblem problem = opt::makeFonseca();
  tuning::Surrogate replayed(problem.space(), problem.numObjectives(),
                             eagerSurrogate());
  tuning::Surrogate straight(problem.space(), problem.numObjectives(),
                             eagerSurrogate());

  const std::size_t base = 48, tail = 48;
  for (std::size_t i = 0; i < base; ++i) {
    const tuning::Config config = probeConfig(problem.space(), i);
    const tuning::Objectives objectives = problem.evaluate(config);
    replayed.observe(config, objectives);
    straight.observe(config, objectives);
  }
  replayed.markPreloaded();

  // Detour: observations that must leave no trace after the reset.
  for (std::size_t i = 500; i < 520; ++i) {
    const tuning::Config config = probeConfig(problem.space(), i);
    replayed.observe(config, problem.evaluate(config));
  }
  replayed.resetToPreloaded();
  EXPECT_EQ(replayed.observations(), base);

  for (std::size_t i = base; i < base + tail; ++i) {
    const tuning::Config config = probeConfig(problem.space(), i);
    const tuning::Objectives objectives = problem.evaluate(config);
    replayed.observe(config, objectives);
    straight.observe(config, objectives);
  }
  EXPECT_EQ(replayed.observations(), straight.observations());
  for (std::size_t i = 300; i < 316; ++i) {
    const tuning::Config config = probeConfig(problem.space(), i);
    EXPECT_TRUE(bitEqual(replayed.predict(config), straight.predict(config)))
        << i;
  }
}

TEST(Surrogate, ResetToPreloadedOffTheRefitGridKeepsTheStraightRunSchedule) {
  // A warm-start corpus rarely lands exactly on the minSamples +
  // k*refitEvery threshold grid (here: 50 observations against a 40+8k
  // grid, so the last preload fit is at 48). resetToPreloaded() must
  // restore the fit taken at the mark — not refit over all 50 — or the
  // resumed run's refit schedule (56, 64, ...) shifts to (58, 66, ...)
  // and every later prediction diverges from the uninterrupted run's.
  opt::SyntheticProblem problem = opt::makeFonseca();
  tuning::Surrogate replayed(problem.space(), problem.numObjectives(),
                             eagerSurrogate());
  tuning::Surrogate straight(problem.space(), problem.numObjectives(),
                             eagerSurrogate());

  const std::size_t base = 50, tail = 48; // base off the 40+8k fit grid
  for (std::size_t i = 0; i < base; ++i) {
    const tuning::Config config = probeConfig(problem.space(), i);
    const tuning::Objectives objectives = problem.evaluate(config);
    replayed.observe(config, objectives);
    straight.observe(config, objectives);
  }
  replayed.markPreloaded();
  const std::uint64_t fitsAtMark = replayed.fits();

  for (std::size_t i = 500; i < 520; ++i) {
    const tuning::Config config = probeConfig(problem.space(), i);
    replayed.observe(config, problem.evaluate(config));
  }
  replayed.resetToPreloaded();
  EXPECT_EQ(replayed.observations(), base);
  EXPECT_EQ(replayed.fits(), fitsAtMark);
  EXPECT_TRUE(bitEqual(replayed.rankCorrelation(),
                       straight.rankCorrelation()));

  for (std::size_t i = base; i < base + tail; ++i) {
    const tuning::Config config = probeConfig(problem.space(), i);
    const tuning::Objectives objectives = problem.evaluate(config);
    replayed.observe(config, objectives);
    straight.observe(config, objectives);
  }
  EXPECT_EQ(replayed.fits(), straight.fits());
  EXPECT_TRUE(bitEqual(replayed.rankCorrelation(),
                       straight.rankCorrelation()));
  for (std::size_t i = 300; i < 316; ++i) {
    const tuning::Config config = probeConfig(problem.space(), i);
    EXPECT_TRUE(bitEqual(replayed.predict(config), straight.predict(config)))
        << i;
    EXPECT_TRUE(bitEqual(replayed.score(config), straight.score(config)))
        << i;
  }
}

TEST(Surrogate, KeepOneIsByteIdenticalToSurrogateFree) {
  // The acceptance bar for the observability mode: with surrogateKeep ==
  // 1.0 the surrogate watches every evaluation but culls nothing, so the
  // evaluation count, Pareto front and hypervolume trajectory match a
  // surrogate-free run bit for bit — at any pool size.
  for (const unsigned workers : {1u, 4u}) {
    SCOPED_TRACE("pool size " + std::to_string(workers));
    opt::GDE3Options options;
    options.seed = 5;
    options.maxGenerations = 10;

    opt::SyntheticProblem plainProblem = opt::makeFonseca();
    runtime::ThreadPool plainPool(workers);
    opt::GDE3 plain(plainProblem, plainPool, options);
    const opt::OptResult plainResult = plain.run();

    opt::SyntheticProblem observedProblem = opt::makeFonseca();
    runtime::ThreadPool observedPool(workers);
    tuning::Surrogate surrogate(observedProblem.space(),
                                observedProblem.numObjectives(),
                                eagerSurrogate());
    opt::GDE3Options withSurrogate = options;
    withSurrogate.surrogate = &surrogate;
    withSurrogate.surrogateKeep = 1.0;
    opt::GDE3 observed(observedProblem, observedPool, withSurrogate);
    const opt::OptResult observedResult = observed.run();

    EXPECT_EQ(observedResult.evaluations, plainResult.evaluations);
    EXPECT_EQ(observedResult.generations, plainResult.generations);
    EXPECT_EQ(canonicalFront(observedResult.front),
              canonicalFront(plainResult.front));
    EXPECT_TRUE(bitEqual(observedResult.hvHistory, plainResult.hvHistory));
    EXPECT_GT(surrogate.observations(), 0u);
  }
}

TEST(Surrogate, CullingSavesEvaluationsDeterministicallyAcrossPools) {
  // With keep < 1 the engine sends fewer trials to the full evaluation
  // once the model is ready — and because the cull is driven by the
  // deterministic surrogate, pool sizes 1 and 4 still produce the same
  // search bit for bit.
  opt::GDE3Options options;
  options.seed = 5;
  options.maxGenerations = 20;
  options.noImproveLimit = 100; // fixed-length run: budgets comparable

  opt::SyntheticProblem plainProblem = opt::makeFonseca();
  runtime::ThreadPool plainPool(1);
  opt::GDE3 plain(plainProblem, plainPool, options);
  const opt::OptResult plainResult = plain.run();

  std::vector<opt::OptResult> culledResults;
  std::vector<std::uint64_t> observations;
  for (const unsigned workers : {1u, 4u}) {
    SCOPED_TRACE("pool size " + std::to_string(workers));
    opt::SyntheticProblem problem = opt::makeFonseca();
    runtime::ThreadPool pool(workers);
    tuning::Surrogate surrogate(problem.space(), problem.numObjectives(),
                                eagerSurrogate());
    opt::GDE3Options culled = options;
    culled.surrogate = &surrogate;
    culled.surrogateKeep = 0.5;
    opt::GDE3 engine(problem, pool, culled);
    culledResults.push_back(engine.run());
    observations.push_back(surrogate.observations());
    ASSERT_FALSE(culledResults.back().front.empty());
  }

  EXPECT_LT(culledResults[0].evaluations, plainResult.evaluations);
  EXPECT_EQ(culledResults[0].evaluations, culledResults[1].evaluations);
  EXPECT_EQ(culledResults[0].generations, culledResults[1].generations);
  EXPECT_EQ(canonicalFront(culledResults[0].front),
            canonicalFront(culledResults[1].front));
  EXPECT_TRUE(bitEqual(culledResults[0].hvHistory,
                       culledResults[1].hvHistory));
  EXPECT_EQ(observations[0], observations[1]);
}

TEST(Surrogate, RestoreRebuildsTheModelByReplayingTheArchive) {
  // Serialize a mid-search engine with an active culling surrogate,
  // restore into a fresh engine with a fresh surrogate, and continue
  // both: restore() replays the archive into the new model, so the
  // remaining generations — cull decisions included — match bit for bit.
  // The restored run uses a different pool size to pin thread-count
  // independence through the replay path too.
  opt::GDE3Options options;
  options.seed = 5;
  options.maxGenerations = 20;
  options.noImproveLimit = 100;

  opt::SyntheticProblem problemA = opt::makeFonseca();
  opt::SyntheticProblem problemB = opt::makeFonseca();
  runtime::ThreadPool poolA(1), poolB(4);
  tuning::Surrogate surrogateA(problemA.space(), problemA.numObjectives(),
                               eagerSurrogate());
  tuning::Surrogate surrogateB(problemB.space(), problemB.numObjectives(),
                               eagerSurrogate());
  opt::GDE3Options optionsA = options;
  optionsA.surrogate = &surrogateA;
  optionsA.surrogateKeep = 0.5;
  opt::GDE3Options optionsB = options;
  optionsB.surrogate = &surrogateB;
  optionsB.surrogateKeep = 0.5;

  opt::GDE3 a(problemA, poolA, optionsA);
  a.initialize();
  for (int g = 0; g < 4; ++g) a.step();
  ASSERT_TRUE(surrogateA.ready());
  const support::Json state = support::Json::parse(a.serialize().dump(-1));

  opt::GDE3 b(problemB, poolB, optionsB);
  b.restore(state);
  EXPECT_EQ(b.generationsDone(), a.generationsDone());
  EXPECT_EQ(surrogateB.observations(), surrogateA.observations());
  EXPECT_TRUE(surrogateB.ready());

  for (int g = 0; g < 6; ++g) {
    const bool improvedA = a.step();
    const bool improvedB = b.step();
    EXPECT_EQ(improvedA, improvedB) << "generation " << g;
  }
  // No evaluation-count comparison: the restored engine's memo counter
  // starts empty (the session layer pre-seeds it separately on resume);
  // the bitwise contract is on the search trajectory itself.
  const opt::OptResult ra = a.snapshot();
  const opt::OptResult rb = b.snapshot();
  EXPECT_EQ(canonicalFront(rb.front), canonicalFront(ra.front));
  EXPECT_TRUE(bitEqual(rb.hvHistory, ra.hvHistory));
  EXPECT_EQ(surrogateB.observations(), surrogateA.observations());
}
