#include "ir/interp.h"
#include "ir/parse.h"
#include "ir/print.h"
#include "ir/simplify.h"
#include "kernels/kernel.h"
#include "kernels/native.h"
#include "support/check.h"

#include <gtest/gtest.h>

namespace motune::ir {
namespace {

// --- parser -----------------------------------------------------------------

TEST(Parse, MinimalProgram) {
  const Program p = parseProgram("array A[4]\n"
                                 "for i = 0 .. 4 { A[i] = 1.5; }");
  ASSERT_EQ(p.arrays.size(), 1u);
  EXPECT_EQ(p.arrays[0].dims, (std::vector<std::int64_t>{4}));
  const Loop& loop = p.rootLoop();
  EXPECT_EQ(loop.iv, "i");
  Env env;
  EXPECT_EQ(loop.upper.eval(env), 4);
}

TEST(Parse, ParsedMmMatchesBuiltinSemantics) {
  const std::int64_t n = 8;
  const std::string src = R"(
    # matrix multiplication, IJK
    array A[8][8]
    array B[8][8]
    array C[8][8]
    for i = 0 .. 8 {
      for j = 0 .. 8 {
        for k = 0 .. 8 {
          C[i][j] += A[i][k] * B[k][j];
        }
      }
    }
  )";
  Interpreter parsed(parseProgram(src));
  Interpreter builtin(kernels::buildMM(n));
  std::vector<double> a(n * n), b(n * n);
  kernels::fillDeterministic(a, 1);
  kernels::fillDeterministic(b, 2);
  parsed.array("A") = a;
  parsed.array("B") = b;
  builtin.array("A") = a;
  builtin.array("B") = b;
  parsed.run();
  builtin.run();
  EXPECT_EQ(parsed.array("C"), builtin.array("C"));
}

TEST(Parse, StencilWithNegativeOffsetsAndScaling) {
  const std::string src = R"(
    array A[16][16]
    array B[16][16]
    for i = 1 .. 15 {
      for j = 1 .. 15 {
        B[i][j] = 0.2 * (A[i][j] + A[i-1][j] + A[i+1][j]
                         + A[i][j-1] + A[i][j+1]);
      }
    }
  )";
  Interpreter parsed(parseProgram(src));
  Interpreter builtin(kernels::buildJacobi2d(16));
  std::vector<double> a(16 * 16);
  kernels::fillDeterministic(a, 5);
  parsed.array("A") = a;
  builtin.array("A") = a;
  parsed.run();
  builtin.run();
  EXPECT_EQ(parsed.array("B"), builtin.array("B"));
}

TEST(Parse, FunctionsAndUnaryMinus) {
  const Program p = parseProgram(R"(
    array X[4]
    array Y[4]
    for i = 0 .. 4 {
      Y[i] = sqrt(abs(-X[i])) + min(X[i], 2.0) - max(X[i], -1.0);
    }
  )");
  Interpreter interp(p);
  interp.array("X") = {4.0, -9.0, 0.25, 1.0};
  interp.run();
  const auto& y = interp.array("Y");
  EXPECT_DOUBLE_EQ(y[0], 2.0 + 2.0 - 4.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0 + (-9.0) - (-1.0));
}

TEST(Parse, AffineBoundsAndSubscripts) {
  // Triangular-ish bound referencing the outer iv, and 2*i subscripts.
  const Program p = parseProgram(R"(
    array A[8][16]
    for i = 0 .. 8 {
      for j = i .. 8 {
        A[i][2*j - i] = 1.0;
      }
    }
  )");
  Interpreter interp(p);
  interp.run();
  // Element (0, 0) set (i=0, j=0); element (1, 1) set (i=1, j=1).
  EXPECT_DOUBLE_EQ(interp.array("A")[0], 1.0);
  EXPECT_DOUBLE_EQ(interp.array("A")[16 + 1], 1.0);
}

TEST(Parse, RoundTripThroughPrinter) {
  // Parsed program, printed, reparsed: identical semantics.
  const std::string src = R"(
    array A[6][6]
    array B[6][6]
    for i = 1 .. 5 {
      for j = 1 .. 5 {
        B[i][j] = A[i][j] * 2.0 + A[i-1][j-1];
      }
    }
  )";
  const Program p = parseProgram(src);
  const std::string printed = toC(p, /*emitPragmas=*/false);
  EXPECT_NE(printed.find("for (long i = 1; i < 5; i += 1)"),
            std::string::npos);
}

TEST(Parse, PrintSourceRoundTripsBuiltinKernels) {
  // printSource must be an exact inverse of parseProgram on every built-in
  // kernel IR — the fuzzer's repro files depend on this identity.
  for (const auto& spec : kernels::allKernels()) {
    const Program p = spec.buildIR(spec.testN);
    const std::string source = printSource(p);
    Program reparsed;
    ASSERT_NO_THROW(reparsed = parseProgram(source))
        << spec.name << ":\n" << source;
    EXPECT_TRUE(structurallyEqual(p, reparsed))
        << spec.name << ":\n" << source;
  }
}

TEST(Parse, PrintSourceRoundTripsAwkwardConstants) {
  // Constants that are not exactly representable need all 17 digits; the
  // sign must fold back into the literal, not a unary negation node.
  const Program p = parseProgram(
      "array A[2]\n"
      "for i = 0 .. 2 { A[i] = (0.1 + -1.8444801241839572) * 3.0; }");
  const Program reparsed = parseProgram(printSource(p));
  EXPECT_TRUE(structurallyEqual(p, reparsed)) << printSource(p);
}

TEST(Parse, PrintSourceRejectsTransformedPrograms) {
  Program p = parseProgram("array A[4]\nfor i = 0 .. 4 { A[i] = 1.0; }");
  p.rootLoop().parallel = true; // not representable in the source language
  EXPECT_THROW(printSource(p), support::CheckError);
}

struct BadSource {
  const char* label;
  const char* src;
};

class ParseErrors : public ::testing::TestWithParam<BadSource> {};

TEST_P(ParseErrors, Rejected) {
  EXPECT_THROW(parseProgram(GetParam().src), support::CheckError)
      << GetParam().label;
}

INSTANTIATE_TEST_SUITE_P(
    Grammar, ParseErrors,
    ::testing::Values(
        BadSource{"empty", ""},
        BadSource{"no loops", "array A[4]"},
        BadSource{"unknown array", "array A[4]\nfor i = 0 .. 4 { B[i] = 1; }"},
        BadSource{"rank mismatch",
                  "array A[4][4]\nfor i = 0 .. 4 { A[i] = 1; }"},
        BadSource{"non-affine subscript",
                  "array A[4]\nfor i = 0 .. 4 { A[i*i] = 1; }"},
        BadSource{"duplicate iv",
                  "array A[4]\nfor i = 0 .. 4 { for i = 0 .. 4 { A[i] = 1; } }"},
        BadSource{"missing semicolon",
                  "array A[4]\nfor i = 0 .. 4 { A[i] = 1 }"},
        BadSource{"unclosed brace", "array A[4]\nfor i = 0 .. 4 { A[i] = 1;"},
        BadSource{"duplicate array",
                  "array A[4]\narray A[4]\nfor i = 0 .. 4 { A[i] = 1; }"},
        BadSource{"unknown identifier",
                  "array A[4]\nfor i = 0 .. 4 { A[i] = q + 1; }"},
        BadSource{"fractional dimension",
                  "array A[4.5]\nfor i = 0 .. 4 { A[i] = 1; }"},
        BadSource{"empty body", "array A[4]\nfor i = 0 .. 4 { }"}));

TEST(Parse, ErrorsCarryLocation) {
  try {
    parseProgram("array A[4]\nfor i = 0 .. 4 { A[i] = ; }");
    FAIL() << "should have thrown";
  } catch (const support::CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

// --- simplifier --------------------------------------------------------------

double evalConst(const ExprPtr& e) {
  MOTUNE_CHECK(e->kind == Expr::Kind::Const);
  return e->constant;
}

TEST(Simplify, ConstantFolding) {
  const ExprPtr e = (constant(2.0) + constant(3.0)) * constant(4.0);
  EXPECT_DOUBLE_EQ(evalConst(simplify(e)), 20.0);
  EXPECT_DOUBLE_EQ(evalConst(simplify(sqrtOf(constant(16.0)))), 4.0);
  EXPECT_DOUBLE_EQ(
      evalConst(simplify(binary(BinOp::Min, constant(2.0), constant(-1.0)))),
      -1.0);
}

TEST(Simplify, Identities) {
  const ExprPtr x = read("A", {AffineExpr::var("i")});
  EXPECT_EQ(simplify(x + constant(0.0)), x);
  EXPECT_EQ(simplify(constant(0.0) + x), x);
  EXPECT_EQ(simplify(x * constant(1.0)), x);
  EXPECT_EQ(simplify(x / constant(1.0)), x);
  EXPECT_DOUBLE_EQ(evalConst(simplify(x * constant(0.0))), 0.0);
  EXPECT_EQ(simplify(unary(UnOp::Neg, unary(UnOp::Neg, x))), x);
}

TEST(Simplify, PreservesSemanticsOnKernel) {
  // Wrap a kernel rhs in identity noise; simplification must restore the
  // exact numeric behavior.
  Program noisy = parseProgram(R"(
    array A[8][8]
    array B[8][8]
    for i = 1 .. 7 {
      for j = 1 .. 7 {
        B[i][j] = (A[i][j] * 1.0 + 0.0) * (2.0 + 3.0) / 1.0;
      }
    }
  )");
  Program clean = parseProgram(R"(
    array A[8][8]
    array B[8][8]
    for i = 1 .. 7 {
      for j = 1 .. 7 {
        B[i][j] = A[i][j] * 5.0;
      }
    }
  )");
  simplify(noisy);
  Interpreter a(noisy), b(clean);
  std::vector<double> data(64);
  kernels::fillDeterministic(data, 9);
  a.array("A") = data;
  b.array("A") = data;
  a.run();
  b.run();
  EXPECT_EQ(a.array("B"), b.array("B"));
}

TEST(Simplify, NoUnsafeFloatRules) {
  // x - x and x / x must NOT fold (NaN/Inf semantics).
  const ExprPtr x = read("A", {AffineExpr::var("i")});
  EXPECT_NE(simplify(x - x)->kind, Expr::Kind::Const);
  EXPECT_NE(simplify(x / x)->kind, Expr::Kind::Const);
  // sqrt of a negative constant must not fold either.
  EXPECT_NE(simplify(sqrtOf(constant(-1.0)))->kind, Expr::Kind::Const);
}

} // namespace
} // namespace motune::ir
