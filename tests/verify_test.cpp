// Tests for the differential correctness harness (src/verify/): generator
// validity, transform sampling, the three-way oracle, the shrinker and the
// fuzzing driver with its repro files.
#include "verify/fuzz.h"
#include "verify/generator.h"
#include "verify/oracle.h"
#include "verify/sampler.h"
#include "verify/shrinker.h"

#include "ir/bytecode.h"
#include "ir/interp.h"
#include "ir/parse.h"
#include "ir/print.h"
#include "kernels/kernel.h"
#include "observe/metrics.h"
#include "support/check.h"
#include "support/rng.h"

#include <gtest/gtest.h>

#include <cstring>

using namespace motune;
using namespace motune::verify;

namespace {

std::size_t countKind(const std::vector<ir::StmtPtr>& body,
                      ir::Stmt::Kind kind) {
  std::size_t n = 0;
  for (const auto& s : body) {
    if (s->kind == kind) ++n;
    if (s->kind == ir::Stmt::Kind::Loop)
      n += countKind(s->loop.body, kind);
  }
  return n;
}

} // namespace

TEST(Generator, ProgramsAreValidAndExecutable) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    support::Rng rng(seed);
    const ir::Program p = randomProgram(rng);
    ASSERT_FALSE(p.arrays.empty()) << "seed " << seed;
    ASSERT_FALSE(p.body.empty()) << "seed " << seed;

    // Source-language shape: unit steps, cap-free bounds, no parallel
    // markers (printSource relies on this).
    ir::walk(p, [&](const ir::Stmt& s, const auto&) {
      if (s.kind != ir::Stmt::Kind::Loop) return;
      EXPECT_EQ(s.loop.step, 1);
      EXPECT_FALSE(s.loop.upper.cap.has_value());
      EXPECT_FALSE(s.loop.parallel);
    });

    // In-bounds by construction: the interpreter's checked indexing must
    // never trap.
    ir::Interpreter interp(p);
    for (std::size_t a = 0; a < p.arrays.size(); ++a) {
      auto& data = interp.array(p.arrays[a].name);
      for (std::size_t i = 0; i < data.size(); ++i)
        data[i] = fillValue(a, i);
    }
    EXPECT_NO_THROW(interp.run()) << "seed " << seed;
  }
}

TEST(Generator, DeterministicInSeed) {
  support::Rng a(99), b(99);
  EXPECT_TRUE(ir::structurallyEqual(randomProgram(a), randomProgram(b)));
}

TEST(PrintSource, RoundTripsGeneratedPrograms) {
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    support::Rng rng(seed * 7919 + 1);
    const ir::Program p = randomProgram(rng);
    const std::string source = ir::printSource(p);
    ir::Program reparsed;
    ASSERT_NO_THROW(reparsed = ir::parseProgram(source))
        << "seed " << seed << "\n" << source;
    EXPECT_TRUE(ir::structurallyEqual(p, reparsed))
        << "seed " << seed << "\n" << source;
  }
}

TEST(Sampler, SequencesAreLegalAndDeterministic) {
  std::size_t nonEmpty = 0;
  for (std::uint64_t seed = 0; seed < 100; ++seed) {
    support::Rng rng(seed);
    const ir::Program p = randomProgram(rng);
    support::Rng sa = rng; // sampling is deterministic in the rng state
    support::Rng sb = rng;
    const auto steps = sampleSequence(p, sa);
    const auto again = sampleSequence(p, sb);
    ASSERT_EQ(steps, again) << "seed " << seed;
    if (!steps.empty()) ++nonEmpty;
    // Every sampled sequence must apply cleanly to its program.
    EXPECT_NO_THROW(applySequence(p, steps)) << "seed " << seed;
  }
  // The sampler should find applicable transforms for a fair share of
  // generated programs, or the fuzzer checks nothing.
  EXPECT_GE(nonEmpty, 10u);
}

TEST(Sampler, StepTextRoundTrips) {
  const std::vector<TransformStep> steps = {
      {TransformStep::Kind::Tile, {8, 4}},
      {TransformStep::Kind::Interchange, {1, 0}},
      {TransformStep::Kind::Unroll, {2}},
      {TransformStep::Kind::Parallelize, {2}},
      {TransformStep::Kind::Fuse, {}},
      {TransformStep::Kind::Distribute, {}},
      {TransformStep::Kind::Skeleton, {8, 16, 4, 2, 3}},
  };
  for (const auto& step : steps) {
    const auto parsed = TransformStep::parse(step.str());
    ASSERT_TRUE(parsed.has_value()) << step.str();
    EXPECT_EQ(*parsed, step);
  }
  EXPECT_FALSE(TransformStep::parse("warp 3").has_value());
  EXPECT_FALSE(TransformStep::parse("tile 4 x").has_value());
  EXPECT_FALSE(TransformStep::parse("").has_value());
}

TEST(Sampler, RejectsIllegalSteps) {
  // jacobi has a loop-carried pattern only at the outer level of the
  // in-place variant; here just check structural rejections.
  const ir::Program p = ir::parseProgram(R"(
    array A[8]
    for i = 0 .. 8 { A[i] = 1.0; }
  )");
  EXPECT_THROW(applyStep(p, {TransformStep::Kind::Tile, {4, 4}}),
               support::CheckError); // band deeper than the nest
  EXPECT_THROW(applyStep(p, {TransformStep::Kind::Parallelize, {2}}),
               support::CheckError); // collapse deeper than the nest
  EXPECT_THROW(applyStep(p, {TransformStep::Kind::Fuse, {1}}),
               support::CheckError); // fuse takes no arguments
}

TEST(Oracle, AgreesOnBuiltinKernelsUnderSampledTransforms) {
  for (const auto& spec : kernels::allKernels()) {
    const ir::Program p = spec.buildIR(spec.testN);
    for (std::uint64_t s = 0; s < 3; ++s) {
      support::Rng rng(1000 * s + 17);
      const auto steps = sampleSequence(p, rng);
      const ir::Program transformed = applySequence(p, steps);
      OracleOptions opts;
      // One native (compile + run) leg per kernel keeps the test fast; the
      // other sequences exercise the interpreter comparison.
      opts.runNative = (s == 0);
      const OracleVerdict verdict = checkEquivalence(p, transformed, opts);
      EXPECT_TRUE(verdict.agree)
          << spec.name << " seq " << s << ": " << verdict.describe();
      if (s == 0 && !hostCompiler().empty())
        EXPECT_TRUE(verdict.nativeRan) << spec.name;
    }
  }
}

TEST(Oracle, BytecodeEngineMatchesTreeWalkerOnRandomPrograms) {
  // The bytecode engine is the oracle's transformed-program executor; pin
  // its bit-exactness against the tree walker directly, over generated
  // programs and their sampled transforms.
  for (std::uint64_t seed = 0; seed < 50; ++seed) {
    support::Rng rng(seed * 31 + 5);
    const ir::Program p = randomProgram(rng);
    const ir::Program transformed = applySequence(p, sampleSequence(p, rng));
    for (const ir::Program* exec : {&p, &transformed}) {
      ir::Interpreter tree(*exec);
      ir::CompiledProgram flat(*exec);
      for (std::size_t a = 0; a < exec->arrays.size(); ++a) {
        auto& t = tree.array(exec->arrays[a].name);
        auto& f = flat.array(exec->arrays[a].name);
        for (std::size_t i = 0; i < t.size(); ++i)
          t[i] = f[i] = fillValue(a, i);
      }
      tree.run();
      flat.run();
      EXPECT_EQ(tree.statementsExecuted(), flat.statementsExecuted())
          << "seed " << seed;
      for (const auto& decl : exec->arrays) {
        const auto& expect = tree.array(decl.name);
        const auto& got = flat.array(decl.name);
        ASSERT_EQ(expect.size(), got.size());
        for (std::size_t i = 0; i < expect.size(); ++i) {
          const bool same =
              std::memcmp(&expect[i], &got[i], sizeof(double)) == 0 ||
              (expect[i] != expect[i] && got[i] != got[i]);
          EXPECT_TRUE(same) << "seed " << seed << " " << decl.name << "["
                            << i << "]: " << expect[i] << " vs " << got[i];
        }
      }
    }
  }
}

TEST(Oracle, TreeWalkerLegStillAvailable) {
  // useBytecode = false reverts the transformed leg to the tree walker —
  // the escape hatch for bisecting a suspected bytecode bug.
  const ir::Program p = kernels::buildMM(4);
  support::Rng rng(12);
  const ir::Program transformed = applySequence(p, sampleSequence(p, rng));
  OracleOptions opts;
  opts.runNative = false;
  opts.useBytecode = false;
  const OracleVerdict verdict = checkEquivalence(p, transformed, opts);
  EXPECT_TRUE(verdict.agree) << verdict.describe();
}

TEST(Oracle, DetectsSemanticDivergence) {
  // A "transformed" program that drops the last iteration — the shape of
  // an off-by-one tiling bug.
  const ir::Program original = ir::parseProgram(R"(
    array A[8]
    for i = 0 .. 8 { A[i] = 2.0 * A[i]; }
  )");
  const ir::Program buggy = ir::parseProgram(R"(
    array A[8]
    for i = 0 .. 7 { A[i] = 2.0 * A[i]; }
  )");
  OracleOptions opts;
  opts.runNative = false;
  const OracleVerdict verdict = checkEquivalence(original, buggy, opts);
  ASSERT_FALSE(verdict.agree);
  ASSERT_TRUE(verdict.mismatch.has_value());
  EXPECT_EQ(verdict.mismatch->stage, "interp");
  EXPECT_EQ(verdict.mismatch->array, "A");
  EXPECT_EQ(verdict.mismatch->index, 7u);
}

TEST(Oracle, FillValueIsDeterministicAndTame) {
  EXPECT_EQ(fillValue(0, 0), fillValue(0, 0));
  EXPECT_NE(fillValue(0, 1), fillValue(1, 0));
  for (std::size_t a = 0; a < 4; ++a)
    for (std::size_t i = 0; i < 64; ++i) {
      const double v = fillValue(a, i);
      EXPECT_GE(v, 1.0);
      EXPECT_LT(v, 2.0);
    }
}

TEST(Shrinker, ConvergesToMinimalCase) {
  // A deep generated program with a multi-step sequence; the "failure" is
  // any case that still tiles and still writes its first array. The
  // shrinker should strip everything else.
  support::Rng rng(5);
  GeneratorOptions gen;
  gen.maxTopLoops = 2;
  gen.maxDepth = 3;
  ir::Program p;
  std::vector<TransformStep> steps;
  for (std::uint64_t seed = 5; steps.empty(); ++seed) {
    support::Rng r(seed);
    p = randomProgram(r, gen);
    steps = sampleSequence(p, r);
  }
  const std::string target = p.arrays.front().name;

  FuzzCase failing{p.clone(), steps};
  const StillFails predicate = [&](const FuzzCase& c) {
    if (c.steps.empty()) return false;
    bool writesTarget = false;
    ir::walk(c.program, [&](const ir::Stmt& s, const auto&) {
      if (s.kind == ir::Stmt::Kind::Assign && s.assign.array == target)
        writesTarget = true;
    });
    return writesTarget;
  };
  ASSERT_TRUE(predicate(failing));

  ShrinkStats stats;
  const FuzzCase minimal = shrink(failing, predicate, 2000, &stats);
  EXPECT_TRUE(predicate(minimal));
  EXPECT_EQ(minimal.steps.size(), 1u);
  EXPECT_LE(countKind(minimal.program.body, ir::Stmt::Kind::Loop), 1u);
  EXPECT_EQ(countKind(minimal.program.body, ir::Stmt::Kind::Assign), 1u);
  EXPECT_GT(stats.attempts, 0u);
  EXPECT_GT(stats.accepted, 0u);
}

TEST(Shrinker, ShrinksStepArguments) {
  const ir::Program p = ir::parseProgram(R"(
    array A[16][16]
    for i = 0 .. 16 { for j = 0 .. 16 { A[i][j] = 1.0; } }
  )");
  FuzzCase failing{p.clone(), {{TransformStep::Kind::Tile, {8, 8}}}};
  // Any case that still has a tile step "fails"; sizes should collapse.
  const StillFails predicate = [](const FuzzCase& c) {
    return !c.steps.empty() &&
           c.steps.front().kind == TransformStep::Kind::Tile;
  };
  const FuzzCase minimal = shrink(failing, predicate);
  ASSERT_EQ(minimal.steps.size(), 1u);
  EXPECT_EQ(minimal.steps.front().args, std::vector<std::int64_t>{1});
}

TEST(Repro, SerializeParseRoundTrip) {
  support::Rng rng(23);
  ir::Program p;
  std::vector<TransformStep> steps;
  for (std::uint64_t seed = 23; steps.empty(); ++seed) {
    support::Rng r(seed);
    p = randomProgram(r);
    steps = sampleSequence(p, r);
  }
  const FuzzCase c{p.clone(), steps};
  const std::string text = serializeRepro(c, 23, 4);
  const FuzzCase parsed = parseRepro(text);
  EXPECT_TRUE(ir::structurallyEqual(c.program, parsed.program)) << text;
  EXPECT_EQ(c.steps, parsed.steps);

  OracleOptions opts;
  opts.runNative = false;
  EXPECT_TRUE(replayRepro(parsed, opts).agree);
}

TEST(Repro, RejectsMalformedTransformLines) {
  EXPECT_THROW(parseRepro("#@ transform warp 9\narray A[4]\n"
                          "for i = 0 .. 4 { A[i] = 1.0; }\n"),
               support::CheckError);
}

TEST(Fuzz, CleanRunFindsNoDisagreements) {
  FuzzOptions opts;
  opts.seed = 11;
  opts.iters = 40;
  opts.oracle.runNative = false; // keep the unit test fast and hermetic
  const auto& before =
      observe::MetricsRegistry::global().counter("verify.fuzz.programs")
          .value();
  const FuzzReport report = runFuzz(opts);
  EXPECT_FALSE(report.failed) << report.detail;
  EXPECT_EQ(report.iterations, 40u);
  EXPECT_EQ(report.programs, 40u);
  EXPECT_GT(report.comparisons, 0u);
  EXPECT_EQ(report.nativeRuns, 0u);
  EXPECT_EQ(observe::MetricsRegistry::global()
                .counter("verify.fuzz.programs")
                .value(),
            before + 40);
}

TEST(Fuzz, IterationsAreIndependentOfLoopPosition) {
  // The same (seed, iter) pair must produce the same case regardless of
  // how many iterations ran before it — that is what makes repro files
  // stable. Emulate by running disjoint single-iteration windows.
  FuzzOptions a;
  a.seed = 3;
  a.iters = 25;
  a.oracle.runNative = false;
  const FuzzReport ra = runFuzz(a);
  const FuzzReport rb = runFuzz(a);
  EXPECT_EQ(ra.comparisons, rb.comparisons);
  EXPECT_EQ(ra.rejectedDraws, rb.rejectedDraws);
  EXPECT_EQ(ra.failed, rb.failed);
}
