#include "autotune/artifact.h"
#include "autotune/backend.h"
#include "kernels/kernel.h"
#include "machine/machine.h"
#include "runtime/region.h"
#include "support/check.h"
#include "support/json.h"

#include <gtest/gtest.h>

#include <cstdio>

namespace motune {
namespace {

using support::Json;
using support::JsonArray;
using support::JsonObject;

// --- JSON ---------------------------------------------------------------

TEST(Json, ScalarRoundTrips) {
  EXPECT_EQ(Json(nullptr).dump(), "null");
  EXPECT_EQ(Json(true).dump(), "true");
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(2.5).dump(), "2.5");
  EXPECT_EQ(Json("hi").dump(), "\"hi\"");
}

TEST(Json, ParseScalars) {
  EXPECT_TRUE(Json::parse("null").isNull());
  EXPECT_EQ(Json::parse("true").asBool(), true);
  EXPECT_EQ(Json::parse("-17").asInt(), -17);
  EXPECT_DOUBLE_EQ(Json::parse("6.25e2").asNumber(), 625.0);
  EXPECT_EQ(Json::parse("\"a b\"").asString(), "a b");
}

TEST(Json, StringEscapes) {
  const std::string raw = "line1\nline2\t\"quoted\" back\\slash";
  const Json j(raw);
  EXPECT_EQ(Json::parse(j.dump()).asString(), raw);
}

TEST(Json, NestedStructuresRoundTrip) {
  const Json j(JsonObject{
      {"name", "mm"},
      {"sizes", JsonArray{Json(1), Json(2), Json(3)}},
      {"nested", JsonObject{{"flag", true}, {"x", 1.5}}},
  });
  for (int indent : {-1, 0, 2, 4}) {
    const Json back = Json::parse(j.dump(indent));
    EXPECT_EQ(back.at("name").asString(), "mm");
    ASSERT_EQ(back.at("sizes").size(), 3u);
    EXPECT_EQ(back.at("sizes")[2].asInt(), 3);
    EXPECT_TRUE(back.at("nested").at("flag").asBool());
    EXPECT_DOUBLE_EQ(back.at("nested").at("x").asNumber(), 1.5);
  }
}

TEST(Json, WhitespaceTolerant) {
  const Json j = Json::parse("  {\n \"a\" : [ 1 , 2 ] \t}\n");
  EXPECT_EQ(j.at("a").size(), 2u);
}

TEST(Json, RejectsMalformedInput) {
  EXPECT_THROW(Json::parse(""), support::CheckError);
  EXPECT_THROW(Json::parse("{"), support::CheckError);
  EXPECT_THROW(Json::parse("[1,]2"), support::CheckError);
  EXPECT_THROW(Json::parse("{\"a\":1} trailing"), support::CheckError);
  EXPECT_THROW(Json::parse("\"unterminated"), support::CheckError);
  EXPECT_THROW(Json::parse("nul"), support::CheckError);
}

TEST(Json, TypeMismatchThrows) {
  const Json j = Json::parse("{\"a\": 1}");
  EXPECT_THROW(j.at("a").asString(), support::CheckError);
  EXPECT_THROW(j.at("missing"), support::CheckError);
  EXPECT_THROW(j[0], support::CheckError);
}

// --- tuning artifacts -----------------------------------------------------

autotune::TuningResult smallTuning(tuning::KernelTuningProblem& problem) {
  autotune::TunerOptions options;
  options.gde3.population = 12;
  options.gde3.maxGenerations = 8;
  options.gde3.seed = 3;
  options.evaluationWorkers = 2;
  autotune::AutoTuner tuner(options);
  return tuner.tune(problem);
}

TEST(Artifact, RoundTripPreservesEverything) {
  tuning::KernelTuningProblem problem(kernels::kernelByName("mm"),
                                      machine::westmere(), 128);
  const autotune::TuningResult result = smallTuning(problem);
  const autotune::TunedArtifact a = autotune::makeArtifact(result, problem);

  const autotune::TunedArtifact b =
      autotune::deserializeArtifact(autotune::serializeArtifact(a));
  EXPECT_EQ(b.kernel, "mm");
  EXPECT_EQ(b.machineName, "Westmere");
  EXPECT_EQ(b.problemSize, 128);
  EXPECT_EQ(b.evaluations, a.evaluations);
  EXPECT_DOUBLE_EQ(b.hypervolume, a.hypervolume);
  ASSERT_EQ(b.front.size(), a.front.size());
  for (std::size_t i = 0; i < a.front.size(); ++i) {
    EXPECT_EQ(b.front[i].configuration, a.front[i].configuration);
    EXPECT_EQ(b.front[i].tileSizes, a.front[i].tileSizes);
    EXPECT_EQ(b.front[i].threads, a.front[i].threads);
    EXPECT_DOUBLE_EQ(b.front[i].timeSeconds, a.front[i].timeSeconds);
    EXPECT_DOUBLE_EQ(b.front[i].resources, a.front[i].resources);
  }
}

TEST(Artifact, FileRoundTripAndTableReconstruction) {
  tuning::KernelTuningProblem problem(kernels::kernelByName("jacobi-2d"),
                                      machine::barcelona(), 128);
  const autotune::TuningResult result = smallTuning(problem);
  const autotune::TunedArtifact a = autotune::makeArtifact(result, problem);

  const std::string path = ::testing::TempDir() + "/motune_artifact.json";
  autotune::saveArtifact(a, path);
  const autotune::TunedArtifact b = autotune::loadArtifact(path);
  ASSERT_EQ(b.front.size(), a.front.size());

  // A runnable version table can be rebuilt purely from the artifact.
  runtime::ThreadPool pool(2);
  mv::VersionTable table =
      autotune::buildVersionTableFromMetas(b.kernel, 64, b.front, pool);
  ASSERT_EQ(table.size(), b.front.size());
  runtime::Region region(std::move(table));
  runtime::WeightedSumPolicy fastestPolicy(1.0, 0.0);
  region.invoke(fastestPolicy);
  EXPECT_EQ(region.totalInvocations(), 1u);
  std::remove(path.c_str());
}

TEST(Artifact, RejectsForeignJson) {
  EXPECT_THROW(autotune::deserializeArtifact("{\"format\": \"other\"}"),
               support::CheckError);
  EXPECT_THROW(autotune::deserializeArtifact("[1,2,3]"),
               support::CheckError);
  EXPECT_THROW(autotune::loadArtifact("/nonexistent/path.json"),
               support::CheckError);
}

} // namespace
} // namespace motune
