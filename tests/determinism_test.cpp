// Determinism guarantees of the optimization pipeline: a fixed seed must
// produce identical results regardless of evaluation parallelism or thread
// pool size. Everything the paper reports (fronts, evaluation counts,
// hypervolume trajectories) relies on this for reproducibility.
#include "core/gde3.h"
#include "core/rsgde3.h"
#include "core/testproblems.h"
#include "runtime/thread_pool.h"
#include "support/rng.h"
#include "tuning/evaluator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <map>
#include <mutex>
#include <set>
#include <thread>

using namespace motune;

namespace {

/// Canonical, order-insensitive rendering of a front for comparison:
/// configs with bit-exact objective values.
std::multiset<std::pair<tuning::Config, tuning::Objectives>>
canonicalFront(const std::vector<opt::Individual>& front) {
  std::multiset<std::pair<tuning::Config, tuning::Objectives>> out;
  for (const auto& ind : front) out.emplace(ind.config, ind.objectives);
  return out;
}

struct RunOutcome {
  std::multiset<std::pair<tuning::Config, tuning::Objectives>> front;
  std::uint64_t evaluations = 0;
  int generations = 0;
  std::vector<double> hvHistory;

  bool operator==(const RunOutcome&) const = default;
};

RunOutcome runGDE3(unsigned poolWorkers, bool parallelEvaluation,
                   std::uint64_t seed) {
  opt::SyntheticProblem problem = opt::makeSchaffer();
  runtime::ThreadPool pool(poolWorkers);
  opt::GDE3Options options;
  options.seed = seed;
  options.maxGenerations = 12; // bounded, identical across runs
  options.parallelEvaluation = parallelEvaluation;
  opt::GDE3 engine(problem, pool, options);
  const opt::OptResult result = engine.run();
  return {canonicalFront(result.front), result.evaluations,
          result.generations, result.hvHistory};
}

RunOutcome runRSGDE3(unsigned poolWorkers, bool parallelEvaluation,
                     std::uint64_t seed) {
  opt::SyntheticProblem problem = opt::makeFonseca();
  runtime::ThreadPool pool(poolWorkers);
  opt::RSGDE3Options options;
  options.gde3.seed = seed;
  options.gde3.maxGenerations = 10;
  options.gde3.parallelEvaluation = parallelEvaluation;
  opt::RSGDE3 engine(problem, pool, options);
  const opt::OptResult result = engine.run();
  return {canonicalFront(result.front), result.evaluations,
          result.generations, result.hvHistory};
}

/// Objective function that records how often each configuration reaches
/// the inner evaluation and sleeps long enough that concurrent duplicates
/// overlap in time — the probe for the memo's single-flight guarantee.
class SlowProbe final : public tuning::ObjectiveFunction {
public:
  SlowProbe() : space_{{"x", 0, 1000}} {}

  std::size_t numObjectives() const override { return 2; }
  const std::vector<tuning::ParamSpec>& space() const override {
    return space_;
  }

  tuning::Objectives evaluate(const tuning::Config& config) override {
    {
      std::lock_guard lock(mutex_);
      ++evalCount_[config];
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    const double x = static_cast<double>(config.front());
    return {x * x, (x - 2.0) * (x - 2.0)};
  }

  std::map<tuning::Config, int> counts() const {
    std::lock_guard lock(mutex_);
    return evalCount_;
  }

private:
  std::vector<tuning::ParamSpec> space_;
  mutable std::mutex mutex_;
  std::map<tuning::Config, int> evalCount_;
};

} // namespace

TEST(Determinism, SingleFlightEvaluatesConcurrentDuplicatesExactlyOnce) {
  SlowProbe probe;
  tuning::CountingEvaluator counting(probe);

  // Each config appears 8 times back-to-back, so the 4 pool workers pick
  // up duplicates of the same config while its first evaluation is still
  // sleeping inside SlowProbe — the duplicates must wait for that one
  // in-flight evaluation, not start their own.
  const std::vector<std::int64_t> xs{3, 14, 159, 265};
  std::vector<tuning::Config> configs;
  for (const std::int64_t x : xs)
    for (int dup = 0; dup < 8; ++dup) configs.push_back({x});

  runtime::ThreadPool pool(4);
  tuning::BatchEvaluator batch(counting, pool, /*parallel=*/true);
  const auto results = batch.evaluateAll(configs);

  for (const auto& [config, times] : probe.counts())
    EXPECT_EQ(times, 1) << "config " << config.front()
                        << " reached the inner evaluation more than once";
  EXPECT_EQ(counting.evaluations(), xs.size());
  EXPECT_EQ(counting.memoHits(), configs.size() - xs.size());

  // The published results are bit-identical to a serial evaluation.
  SlowProbe serialProbe;
  tuning::CountingEvaluator serial(serialProbe);
  ASSERT_EQ(results.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const tuning::Objectives expected = serial.evaluate(configs[i]);
    ASSERT_EQ(results[i].size(), expected.size()) << "config " << i;
    for (std::size_t k = 0; k < expected.size(); ++k)
      EXPECT_EQ(std::memcmp(&results[i][k], &expected[k], sizeof(double)), 0)
          << "config " << i << " objective " << k;
  }
}

TEST(Determinism, GDE3IdenticalAcrossPoolSizesAndEvaluationModes) {
  const RunOutcome reference = runGDE3(1, false, 42);
  EXPECT_FALSE(reference.front.empty());
  EXPECT_GT(reference.evaluations, 0u);
  for (unsigned workers : {1u, 2u, 4u})
    for (bool parallel : {false, true}) {
      const RunOutcome outcome = runGDE3(workers, parallel, 42);
      EXPECT_EQ(outcome, reference)
          << workers << " workers, parallelEvaluation=" << parallel;
    }
}

TEST(Determinism, GDE3DifferentSeedsDiverge) {
  // Sanity check that the comparison above is not vacuous.
  EXPECT_NE(runGDE3(1, false, 42), runGDE3(1, false, 43));
}

TEST(Determinism, RSGDE3IdenticalAcrossPoolSizesAndEvaluationModes) {
  const RunOutcome reference = runRSGDE3(1, false, 7);
  EXPECT_FALSE(reference.front.empty());
  for (unsigned workers : {1u, 2u, 4u})
    for (bool parallel : {false, true}) {
      const RunOutcome outcome = runRSGDE3(workers, parallel, 7);
      EXPECT_EQ(outcome, reference)
          << workers << " workers, parallelEvaluation=" << parallel;
    }
}

TEST(Determinism, BatchEvaluatorParallelMatchesSerialBitExactly) {
  opt::SyntheticProblem problem = opt::makeZDT1();
  support::Rng rng(123);
  std::vector<tuning::Config> configs;
  for (int i = 0; i < 64; ++i) {
    tuning::Config c;
    for (const auto& spec : problem.space())
      c.push_back(rng.uniformInt(spec.lo, spec.hi));
    configs.push_back(std::move(c));
  }

  runtime::ThreadPool pool(4);
  tuning::BatchEvaluator serial(problem, pool, /*parallel=*/false);
  tuning::BatchEvaluator parallel(problem, pool, /*parallel=*/true);
  const auto a = serial.evaluateAll(configs);
  const auto b = parallel.evaluateAll(configs);
  ASSERT_EQ(a.size(), configs.size());
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size()) << "config " << i;
    for (std::size_t k = 0; k < a[i].size(); ++k)
      EXPECT_EQ(std::memcmp(&a[i][k], &b[i][k], sizeof(double)), 0)
          << "config " << i << " objective " << k << ": " << a[i][k]
          << " vs " << b[i][k];
  }
}

TEST(Determinism, CountingEvaluatorMemoConsistentUnderConcurrentBatches) {
  opt::SyntheticProblem problem = opt::makeSchaffer();
  tuning::CountingEvaluator counting(problem);

  // A batch with heavy duplication, evaluated concurrently: the memo must
  // end with exactly the unique configurations and serve every duplicate
  // the same (bit-identical) objectives.
  std::vector<tuning::Config> configs;
  std::set<tuning::Config> unique;
  support::Rng rng(7);
  for (int i = 0; i < 16; ++i) {
    tuning::Config c{rng.uniformInt(problem.space().front().lo,
                                    problem.space().front().hi)};
    for (int dup = 0; dup < 8; ++dup) configs.push_back(c);
    unique.insert(c);
  }

  runtime::ThreadPool pool(4);
  tuning::BatchEvaluator batch(counting, pool, /*parallel=*/true);
  const auto first = batch.evaluateAll(configs);
  EXPECT_EQ(counting.evaluations(), unique.size());

  // Re-evaluating the identical batch is served fully from the memo.
  const auto hitsBefore = counting.memoHits();
  const auto second = batch.evaluateAll(configs);
  EXPECT_EQ(counting.evaluations(), unique.size());
  EXPECT_EQ(counting.memoHits(), hitsBefore + configs.size());
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i)
    EXPECT_EQ(first[i], second[i]) << "config " << i;

  // Duplicates within the first batch already agreed with each other.
  std::map<tuning::Config, tuning::Objectives> seen;
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto [it, inserted] = seen.emplace(configs[i], first[i]);
    if (!inserted) EXPECT_EQ(it->second, first[i]) << "config " << i;
  }
}
