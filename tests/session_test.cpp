// Durable tuning sessions (src/session/): journal round-trips with
// crash-truncated tails, RNG-stream serialization, GDE3 checkpoint/restore
// mid-search, and the end-to-end guarantee the subsystem exists for — a
// killed `--checkpoint` run resumed with `--resume` produces a Pareto
// front and evaluation count bit-identical to the uninterrupted run.
#include "autotune/autotuner.h"
#include "core/gde3.h"
#include "core/testproblems.h"
#include "session/journal.h"
#include "session/session.h"
#include "support/check.h"
#include "support/rng.h"
#include "tuning/surrogate.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

using namespace motune;
namespace fs = std::filesystem;

namespace {

/// Fresh per-test directory under the gtest temp root.
std::string freshDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::multiset<std::pair<tuning::Config, tuning::Objectives>>
canonicalFront(const std::vector<opt::Individual>& front) {
  std::multiset<std::pair<tuning::Config, tuning::Objectives>> out;
  for (const auto& ind : front) out.emplace(ind.config, ind.objectives);
  return out;
}

/// Bitwise comparison of two double sequences (NaN-safe, sign-of-zero
/// exact) — "bit-identical" means memcmp-equal, not operator==.
bool bitEqual(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

} // namespace

TEST(Journal, WriteReadRoundTrip) {
  const std::string dir = freshDir("journal-roundtrip");
  const std::string path = session::journalPath(dir);
  {
    session::JournalWriter writer(path, session::JournalWriter::Mode::Truncate);
    writer.write(support::JsonObject{{"type", "a"}, {"x", 1}});
    writer.write(support::JsonObject{{"type", "b"}, {"y", 2.5}});
    EXPECT_EQ(writer.recordsWritten(), 2u);
  }
  const auto records = session::readJournal(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[0].at("type").asString(), "a");
  EXPECT_EQ(records[1].at("y").asNumber(), 2.5);
}

TEST(Journal, ToleratesExactlyOneTruncatedTailLine) {
  const std::string dir = freshDir("journal-tail");
  const std::string path = session::journalPath(dir);
  {
    session::JournalWriter writer(path, session::JournalWriter::Mode::Truncate);
    writer.write(support::JsonObject{{"type", "a"}});
    writer.write(support::JsonObject{{"type", "b"}});
  }
  // Crash model: the process died mid-write, leaving a partial final line.
  {
    std::ofstream out(path, std::ios::app);
    out << R"({"type":"ev)"; // no closing brace, no newline
  }
  const auto records = session::readJournal(path);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].at("type").asString(), "b");
}

TEST(Journal, RejectsMidFileCorruption) {
  const std::string dir = freshDir("journal-corrupt");
  const std::string path = session::journalPath(dir);
  {
    std::ofstream out(path);
    out << R"({"type":"a"})" << "\n"
        << "GARBAGE NOT JSON\n"
        << R"({"type":"b"})" << "\n";
  }
  EXPECT_THROW(session::readJournal(path), support::CheckError);
}

TEST(Journal, RefusesToOverwriteExistingJournal) {
  const std::string dir = freshDir("journal-overwrite");
  const std::string path = session::journalPath(dir);
  {
    session::JournalWriter writer(path, session::JournalWriter::Mode::Truncate);
    writer.write(support::JsonObject{{"type", "a"}});
  }
  EXPECT_THROW(session::JournalWriter(path,
                                      session::JournalWriter::Mode::Truncate),
               support::CheckError);
  // Append to a missing journal is equally invalid.
  EXPECT_THROW(session::JournalWriter(session::journalPath(
                                          freshDir("journal-absent")),
                                      session::JournalWriter::Mode::Append),
               support::CheckError);
}

TEST(RngState, MidStreamRoundTripReproducesDrawsBitwise) {
  support::Rng rng(99);
  for (int i = 0; i < 37; ++i) rng.uniform(); // advance mid-stream

  const support::Rng::State saved = rng.state();
  std::vector<double> expected;
  for (int i = 0; i < 64; ++i) expected.push_back(rng.uniform(0.0, 10.0));

  support::Rng other(1); // different seed; state transplant must win
  other.setState(saved);
  std::vector<double> actual;
  for (int i = 0; i < 64; ++i) actual.push_back(other.uniform(0.0, 10.0));
  EXPECT_TRUE(bitEqual(expected, actual));
}

TEST(RngState, GaussianCarryPersists) {
  // Marsaglia polar generates pairs; capture the state while one value of
  // the pair is still cached — restore must reproduce the cached value,
  // not restart the pair.
  support::Rng rng(7);
  rng.gaussian(); // first of a pair: the second is now cached

  const support::Rng::State saved = rng.state();
  EXPECT_TRUE(saved.hasCachedGaussian);
  const double expectedCached = rng.gaussian();
  const double expectedNext = rng.gaussian();

  support::Rng other(1234);
  other.setState(saved);
  EXPECT_EQ(other.gaussian(), expectedCached);
  EXPECT_EQ(other.gaussian(), expectedNext);
}

TEST(GDE3Checkpoint, SerializeRestoreMidSearchIsBitIdentical) {
  // The RNG-stream satellite: serialize() a mid-search engine, restore()
  // into a fresh one, and the continued differential-evolution draws —
  // hence populations, fronts and hypervolumes — match bit for bit over
  // the remaining generations, at pool sizes 1 and 4. The state goes
  // through a dump()/parse() text round-trip, exactly as the journal
  // stores it.
  for (const unsigned workers : {1u, 4u}) {
    SCOPED_TRACE("pool size " + std::to_string(workers));
    opt::SyntheticProblem problemA = opt::makeFonseca();
    opt::SyntheticProblem problemB = opt::makeFonseca();
    runtime::ThreadPool poolA(workers), poolB(workers);
    opt::GDE3Options options;
    options.seed = 5;
    options.maxGenerations = 7;

    opt::GDE3 a(problemA, poolA, options);
    a.initialize();
    a.step();
    a.step();
    const support::Json state =
        support::Json::parse(a.serialize().dump(-1));

    opt::GDE3 b(problemB, poolB, options);
    b.restore(state);
    EXPECT_EQ(b.generationsDone(), a.generationsDone());

    for (int g = 0; g < 5; ++g) {
      const bool improvedA = a.step();
      const bool improvedB = b.step();
      EXPECT_EQ(improvedA, improvedB) << "generation " << g;
    }
    const opt::OptResult ra = a.snapshot();
    const opt::OptResult rb = b.snapshot();
    EXPECT_EQ(canonicalFront(ra.front), canonicalFront(rb.front));
    EXPECT_TRUE(bitEqual(ra.hvHistory, rb.hvHistory));
    for (std::size_t i = 0; i < ra.population.size(); ++i) {
      ASSERT_LT(i, rb.population.size());
      EXPECT_EQ(ra.population[i].config, rb.population[i].config) << i;
      EXPECT_TRUE(bitEqual(ra.population[i].objectives,
                           rb.population[i].objectives))
          << i;
    }
  }
}

TEST(SessionHeader, RoundTripAndCompatibility) {
  session::SessionHeader h;
  h.problem = "mm/Westmere/n1400/time/resources";
  h.algorithm = "rsgde3";
  h.seed = 0xdeadbeefcafebabeull; // > 2^53: must survive JSON round-trip
  h.objectives = 2;
  h.space = {{"t_i", 1, 300}, {"threads", 1, 12}};
  h.algorithmOptions = support::JsonObject{{"population", 30}};

  const session::SessionHeader back = session::headerFromJson(
      support::Json::parse(session::headerToJson(h).dump(-1)));
  EXPECT_EQ(back.seed, h.seed);
  EXPECT_NO_THROW(session::checkCompatible(back, h));

  session::SessionHeader wrongSeed = h;
  wrongSeed.seed = 2;
  EXPECT_THROW(session::checkCompatible(h, wrongSeed), support::CheckError);
  session::SessionHeader wrongSpace = h;
  wrongSpace.space[0].hi = 301;
  EXPECT_THROW(session::checkCompatible(h, wrongSpace), support::CheckError);
  session::SessionHeader wrongOpts = h;
  wrongOpts.algorithmOptions = support::JsonObject{{"population", 31}};
  EXPECT_THROW(session::checkCompatible(h, wrongOpts), support::CheckError);
}

TEST(CountingEvaluator, PreloadSeedsMemoAndCountsAsUnique) {
  opt::SyntheticProblem problem = opt::makeSchaffer();
  tuning::CountingEvaluator counting(problem);

  int listenerCalls = 0;
  counting.setListener(
      [&listenerCalls](const tuning::Config&, const tuning::Objectives&) {
        ++listenerCalls;
      });

  const tuning::Config config{42};
  const tuning::Objectives canned{1.25, -3.5};
  EXPECT_TRUE(counting.preload(config, canned));
  EXPECT_FALSE(counting.preload(config, canned)) << "second preload is a dup";
  EXPECT_EQ(counting.evaluations(), 1u);
  EXPECT_EQ(listenerCalls, 0) << "preloads must not reach the listener";

  // A lookup serves the preloaded value without evaluating the problem.
  EXPECT_EQ(counting.evaluate(config), canned);
  EXPECT_EQ(counting.evaluations(), 1u);
  EXPECT_EQ(listenerCalls, 0) << "memo hits must not reach the listener";

  // A genuinely new evaluation fires the listener once.
  counting.evaluate(tuning::Config{7});
  counting.evaluate(tuning::Config{7});
  EXPECT_EQ(listenerCalls, 1);
  EXPECT_EQ(counting.evaluations(), 2u);
}

namespace {

autotune::TunerOptions sessionlessOptions() {
  autotune::TunerOptions options;
  options.algorithm = autotune::Algorithm::RSGDE3;
  options.gde3.seed = 3;
  options.gde3.maxGenerations = 12;
  options.evaluationWorkers = 4;
  return options;
}

/// Simulates a SIGKILL: keeps `keepLines` journal lines and appends a
/// torn partial record, exactly what an interrupted write leaves behind.
void cloneTruncated(const std::string& fromDir, const std::string& toDir,
                    std::size_t keepLines) {
  std::ifstream in(session::journalPath(fromDir));
  ASSERT_TRUE(in.good());
  std::ofstream out(session::journalPath(toDir));
  std::string line;
  for (std::size_t i = 0; i < keepLines && std::getline(in, line); ++i)
    out << line << "\n";
  out << R"({"type":"eval","config":[1,)"; // torn tail, no newline
}

} // namespace

TEST(SessionResume, KilledRunResumesBitIdentically) {
  // Golden: the uninterrupted, session-less search.
  opt::SyntheticProblem golden = opt::makeSchaffer();
  autotune::AutoTuner goldenTuner(sessionlessOptions());
  const opt::OptResult goldenResult = goldenTuner.optimize(golden);
  ASSERT_FALSE(goldenResult.front.empty());

  // Full run under a session: journaling must not perturb the search.
  const std::string fullDir = freshDir("session-full");
  autotune::TunerOptions withSession = sessionlessOptions();
  withSession.session.directory = fullDir;
  opt::SyntheticProblem fullProblem = opt::makeSchaffer();
  const opt::OptResult fullResult =
      autotune::AutoTuner(withSession).optimize(fullProblem);
  EXPECT_EQ(canonicalFront(fullResult.front),
            canonicalFront(goldenResult.front));
  EXPECT_EQ(fullResult.evaluations, goldenResult.evaluations);
  EXPECT_TRUE(bitEqual(fullResult.hvHistory, goldenResult.hvHistory));

  // Kill the run at several points — early (before much progress), midway,
  // and near the end — and resume each. Every resume must reproduce the
  // golden front, evaluation count and hypervolume trajectory bit for bit.
  std::size_t totalLines = 0;
  {
    std::ifstream in(session::journalPath(fullDir));
    std::string line;
    while (std::getline(in, line)) ++totalLines;
  }
  ASSERT_GT(totalLines, 10u);

  int cut = 0;
  for (const double fraction : {0.15, 0.55, 0.95}) {
    SCOPED_TRACE("kill at " + std::to_string(fraction));
    const std::string dir =
        freshDir("session-cut-" + std::to_string(cut++));
    cloneTruncated(fullDir, dir,
                   static_cast<std::size_t>(
                       static_cast<double>(totalLines) * fraction));

    autotune::TunerOptions resume = sessionlessOptions();
    resume.session.directory = dir;
    resume.session.resume = true;
    opt::SyntheticProblem problem = opt::makeSchaffer();
    const opt::OptResult resumed =
        autotune::AutoTuner(resume).optimize(problem);

    EXPECT_EQ(canonicalFront(resumed.front),
              canonicalFront(goldenResult.front));
    EXPECT_EQ(resumed.evaluations, goldenResult.evaluations);
    EXPECT_TRUE(bitEqual(resumed.hvHistory, goldenResult.hvHistory));

    // The resumed journal now carries the complete record.
    const session::ResumeState state = session::loadSession(dir);
    EXPECT_TRUE(state.finished);
    EXPECT_EQ(state.resumes, 1);
    EXPECT_EQ(state.evaluations.size(), goldenResult.evaluations);
  }
}

TEST(SessionResume, RefusesMismatchedSearch) {
  const std::string dir = freshDir("session-mismatch");
  autotune::TunerOptions options = sessionlessOptions();
  options.gde3.maxGenerations = 4;
  options.session.directory = dir;
  opt::SyntheticProblem problem = opt::makeSchaffer();
  autotune::AutoTuner(options).optimize(problem);

  // A finished session cannot be resumed ...
  options.session.resume = true;
  opt::SyntheticProblem again = opt::makeSchaffer();
  EXPECT_THROW(autotune::AutoTuner(options).optimize(again),
               support::CheckError);

  // ... and a crashed one only by the same search: un-finish the journal,
  // then try to resume with a different seed.
  {
    std::vector<std::string> lines;
    std::ifstream in(session::journalPath(dir));
    std::string line;
    while (std::getline(in, line))
      if (line.find("\"finish\"") == std::string::npos) lines.push_back(line);
    std::ofstream out(session::journalPath(dir));
    for (const auto& l : lines) out << l << "\n";
  }
  options.gde3.seed = 999;
  opt::SyntheticProblem other = opt::makeSchaffer();
  EXPECT_THROW(autotune::AutoTuner(options).optimize(other),
               support::CheckError);
}

// ---------------------------------------------------------------------------
// Journal → surrogate warm-start property.

TEST(SessionSurrogate, JournalFeatureVectorsRoundTripBitIdentically) {
  // The warm-start path trains a surrogate from loadSession()'d eval
  // records. Property: the recorded evaluation sequence — and therefore
  // every derived feature vector — is bit-identical no matter how many
  // evaluation workers wrote the journal, and a crash-truncated journal
  // reloads as an exact prefix with the same features and predictions.
  std::vector<session::ResumeState> states;
  std::vector<std::string> dirs;
  for (const unsigned workers : {1u, 4u}) {
    const std::string dir =
        freshDir("surrogate-journal-" + std::to_string(workers));
    autotune::TunerOptions options = sessionlessOptions();
    options.evaluationWorkers = workers;
    options.session.directory = dir;
    opt::SyntheticProblem problem = opt::makeSchaffer();
    (void)autotune::AutoTuner(options).optimize(problem);
    dirs.push_back(dir);
    states.push_back(session::loadSession(dir));
  }

  ASSERT_EQ(states[0].evaluations.size(), states[1].evaluations.size());
  ASSERT_FALSE(states[0].evaluations.empty());
  tuning::Surrogate model(states[0].header.space,
                          states[0].header.objectives);
  for (std::size_t i = 0; i < states[0].evaluations.size(); ++i) {
    const session::EvalRecord& a = states[0].evaluations[i];
    const session::EvalRecord& b = states[1].evaluations[i];
    EXPECT_EQ(a.config, b.config) << i;
    EXPECT_TRUE(bitEqual(a.objectives, b.objectives)) << i;
    EXPECT_TRUE(bitEqual(model.features(a.config), model.features(b.config)))
        << i;
  }

  // A torn tail (SIGKILL mid-record) must reload as an exact prefix.
  std::size_t totalLines = 0;
  {
    std::ifstream in(session::journalPath(dirs[0]));
    std::string line;
    while (std::getline(in, line)) ++totalLines;
  }
  const std::string torn = freshDir("surrogate-journal-torn");
  cloneTruncated(dirs[0], torn, totalLines / 2);
  const session::ResumeState tornState = session::loadSession(torn);
  ASSERT_FALSE(tornState.evaluations.empty());
  ASSERT_LE(tornState.evaluations.size(), states[0].evaluations.size());
  for (std::size_t i = 0; i < tornState.evaluations.size(); ++i) {
    EXPECT_EQ(tornState.evaluations[i].config,
              states[0].evaluations[i].config)
        << i;
    EXPECT_TRUE(bitEqual(tornState.evaluations[i].objectives,
                         states[0].evaluations[i].objectives))
        << i;
  }

  // Training on the reloaded prefix reproduces the same model bit for bit
  // as training on the same prefix of the intact journal.
  tuning::SurrogateOptions eager;
  eager.minSamples = 20;
  eager.refitEvery = 8;
  tuning::Surrogate fromTorn(tornState.header.space,
                             tornState.header.objectives, eager);
  tuning::Surrogate fromFull(states[0].header.space,
                             states[0].header.objectives, eager);
  for (std::size_t i = 0; i < tornState.evaluations.size(); ++i) {
    fromTorn.observe(tornState.evaluations[i].config,
                     tornState.evaluations[i].objectives);
    fromFull.observe(states[0].evaluations[i].config,
                     states[0].evaluations[i].objectives);
  }
  ASSERT_TRUE(fromTorn.ready());
  for (const session::EvalRecord& record : tornState.evaluations)
    EXPECT_TRUE(bitEqual(fromTorn.predict(record.config),
                         fromFull.predict(record.config)));
}

TEST(SessionResume, RequiresCheckpointableAlgorithm) {
  autotune::TunerOptions options = sessionlessOptions();
  options.algorithm = autotune::Algorithm::Random;
  options.session.directory = freshDir("session-random");
  opt::SyntheticProblem problem = opt::makeSchaffer();
  EXPECT_THROW(autotune::AutoTuner(options).optimize(problem),
               support::CheckError);
}
