#include "analyzer/access.h"
#include "analyzer/dependence.h"
#include "analyzer/region.h"
#include "kernels/kernel.h"
#include "support/check.h"

#include <gtest/gtest.h>

namespace motune::analyzer {
namespace {

TEST(Access, CollectsReadsAndWrites) {
  const ir::Program mm = kernels::buildMM(4);
  const auto accesses = collectAccesses(mm);
  // A read, B read, C read (accumulate), C write.
  ASSERT_EQ(accesses.size(), 4u);
  int writes = 0;
  for (const auto& a : accesses) {
    EXPECT_EQ(a.loops.size(), 3u);
    if (a.isWrite) {
      ++writes;
      EXPECT_EQ(a.array, "C");
    }
  }
  EXPECT_EQ(writes, 1);
}

TEST(Dependence, MmReductionCarriedByK) {
  const ir::Program mm = kernels::buildMM(8);
  const auto deps = computeDependences(mm);
  ASSERT_TRUE(deps.has_value());
  ASSERT_FALSE(deps->empty());
  for (const auto& d : *deps) EXPECT_EQ(d.array, "C");

  EXPECT_TRUE(isParallelizable(*deps, 0));  // i
  EXPECT_TRUE(isParallelizable(*deps, 1));  // j
  EXPECT_FALSE(isParallelizable(*deps, 2)); // k carries the reduction
  EXPECT_EQ(tileableBandDepth(*deps, 3), 3u);
}

TEST(Dependence, PingPongStencilFullyParallel) {
  const ir::Program j2 = kernels::buildJacobi2d(8);
  const auto deps = computeDependences(j2);
  ASSERT_TRUE(deps.has_value());
  EXPECT_TRUE(deps->empty()); // reads A, writes B: independent
  EXPECT_TRUE(isParallelizable(*deps, 0));
  EXPECT_TRUE(isParallelizable(*deps, 1));
  EXPECT_EQ(tileableBandDepth(*deps, 2), 2u);
}

TEST(Dependence, NBodyReductionOnlyOuterParallel) {
  const ir::Program nb = kernels::buildNBody(8);
  const auto deps = computeDependences(nb);
  ASSERT_TRUE(deps.has_value());
  EXPECT_TRUE(isParallelizable(*deps, 0));  // i
  EXPECT_FALSE(isParallelizable(*deps, 1)); // j accumulates forces
  EXPECT_EQ(tileableBandDepth(*deps, 2), 2u);
}

// A loop with a genuine negative-direction dependence must not be fully
// tiled: for i: for j: A[i][j] = A[i-1][j+1] has distance (1, -1).
TEST(Dependence, AntiDiagonalDependenceLimitsBand) {
  ir::Program p;
  p.name = "skew";
  p.arrays = {{"A", {8, 8}, 8}};
  ir::Assign st;
  st.array = "A";
  st.subscripts = {ir::AffineExpr::var("i"), ir::AffineExpr::var("j")};
  st.rhs = ir::read("A", {ir::AffineExpr::var("i") - 1,
                          ir::AffineExpr::var("j") + 1});
  ir::Loop jLoop;
  jLoop.iv = "j";
  jLoop.lower = ir::AffineExpr::constant(1);
  jLoop.upper = ir::Bound(ir::AffineExpr::constant(7));
  jLoop.body.push_back(ir::Stmt::makeAssign(std::move(st)));
  ir::Loop iLoop;
  iLoop.iv = "i";
  iLoop.lower = ir::AffineExpr::constant(1);
  iLoop.upper = ir::Bound(ir::AffineExpr::constant(8));
  iLoop.body.push_back(ir::Stmt::makeLoop(std::move(jLoop)));
  p.body.push_back(ir::Stmt::makeLoop(std::move(iLoop)));

  const auto deps = computeDependences(p);
  ASSERT_TRUE(deps.has_value());
  ASSERT_FALSE(deps->empty());
  EXPECT_FALSE(isParallelizable(*deps, 0));
  EXPECT_EQ(tileableBandDepth(*deps, 2), 1u); // (1,-1) blocks 2-D tiling
}

// Same-array accesses with distinct constant offsets in a dimension with no
// loop variable are independent (GCD / constant test).
TEST(Dependence, ConstantOffsetIndependence) {
  ir::Program p;
  p.name = "rows";
  p.arrays = {{"A", {4, 8}, 8}};
  ir::Assign st;
  st.array = "A";
  st.subscripts = {ir::AffineExpr::constant(0), ir::AffineExpr::var("i")};
  st.rhs = ir::read("A", {ir::AffineExpr::constant(1), ir::AffineExpr::var("i")});
  ir::Loop loop;
  loop.iv = "i";
  loop.lower = ir::AffineExpr::constant(0);
  loop.upper = ir::Bound(ir::AffineExpr::constant(8));
  loop.body.push_back(ir::Stmt::makeAssign(std::move(st)));
  p.body.push_back(ir::Stmt::makeLoop(std::move(loop)));

  const auto deps = computeDependences(p);
  ASSERT_TRUE(deps.has_value());
  EXPECT_TRUE(deps->empty());
  EXPECT_TRUE(isParallelizable(*deps, 0));
}

TEST(Region, MmRegionInfo) {
  const RegionInfo info = analyzeRegion(kernels::buildMM(16));
  EXPECT_EQ(info.nestDepth, 3u);
  EXPECT_EQ(info.tileableDepth, 3u);
  EXPECT_TRUE(info.outerParallelizable);
  ASSERT_EQ(info.bandTrips.size(), 3u);
  EXPECT_EQ(info.bandTrips[0], 16);
  ASSERT_EQ(info.parallelizable.size(), 3u);
  EXPECT_TRUE(info.parallelizable[1]);
  EXPECT_FALSE(info.parallelizable[2]);
}

TEST(Region, SkeletonParamsMatchPaperSetup) {
  // Upper tile bound N/2, plus the thread-count parameter (paper §V.B.3).
  const auto sk =
      analyzer::TransformationSkeleton::build(kernels::buildMM(100), 40);
  ASSERT_EQ(sk.params().size(), 4u);
  EXPECT_EQ(sk.params()[0].name, "t_i");
  EXPECT_EQ(sk.params()[0].lo, 1);
  EXPECT_EQ(sk.params()[0].hi, 50);
  EXPECT_EQ(sk.params()[3].name, "threads");
  EXPECT_EQ(sk.params()[3].hi, 40);
}

TEST(Region, SkeletonInstantiationValidatesRange) {
  const auto sk =
      analyzer::TransformationSkeleton::build(kernels::buildMM(100), 4);
  EXPECT_NO_THROW(sk.instantiate(std::vector<std::int64_t>{8, 8, 8, 2}));
  EXPECT_THROW(sk.instantiate(std::vector<std::int64_t>{0, 8, 8, 2}),
               support::CheckError);
  EXPECT_THROW(sk.instantiate(std::vector<std::int64_t>{8, 8, 8, 9}),
               support::CheckError);
  EXPECT_THROW(sk.instantiate(std::vector<std::int64_t>{8, 8, 8}),
               support::CheckError);
}

TEST(Region, MmSkeletonCollapsesTwoLoops) {
  const auto sk =
      analyzer::TransformationSkeleton::build(kernels::buildMM(32), 4);
  const ir::Program tiled =
      sk.instantiate(std::vector<std::int64_t>{4, 4, 4, 2});
  const ir::Loop& root = tiled.rootLoop();
  EXPECT_TRUE(root.parallel);
  EXPECT_EQ(root.collapse, 2);
}

TEST(Region, NBodySkeletonCollapsesOnlyOne) {
  // j carries the force reduction; collapsing (it, jt) would parallelize it.
  const auto sk =
      analyzer::TransformationSkeleton::build(kernels::buildNBody(64), 4);
  const ir::Program tiled = sk.instantiate(std::vector<std::int64_t>{8, 8, 2});
  const ir::Loop& root = tiled.rootLoop();
  EXPECT_TRUE(root.parallel);
  EXPECT_EQ(root.collapse, 1);
}

} // namespace
} // namespace motune::analyzer
