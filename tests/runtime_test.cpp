#include "multiversion/version_table.h"
#include "runtime/parallel_for.h"
#include "runtime/policy.h"
#include "runtime/region.h"
#include "runtime/thread_pool.h"
#include "support/check.h"
#include "support/rng.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <numeric>

namespace motune::runtime {
namespace {

TEST(ThreadPool, ExecutesSubmittedTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) pool.submit([&] { ++counter; });
  pool.wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPool, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.submit([&] { ++counter; });
  pool.wait();
  EXPECT_EQ(counter.load(), 1);
  pool.submit([&] { ++counter; });
  pool.wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ParallelFor, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  const std::int64_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  parallelFor(pool, 0, n, 7, [&](std::int64_t i) { ++hits[i]; });
  for (std::int64_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelFor, EmptyAndSingletonRanges) {
  ThreadPool pool(2);
  int calls = 0;
  parallelFor(pool, 5, 5, 4, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  parallelFor(pool, 5, 6, 4, [&](std::int64_t i) {
    EXPECT_EQ(i, 5);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ParallelFor, BlockedChunksAreContiguousAndDisjoint) {
  ThreadPool pool(4);
  std::mutex m;
  std::vector<std::pair<std::int64_t, std::int64_t>> chunks;
  parallelForBlocked(pool, 0, 100, 7,
                     [&](std::int64_t lo, std::int64_t hi) {
                       std::lock_guard lock(m);
                       chunks.emplace_back(lo, hi);
                     });
  std::sort(chunks.begin(), chunks.end());
  ASSERT_EQ(chunks.size(), 7u);
  EXPECT_EQ(chunks.front().first, 0);
  EXPECT_EQ(chunks.back().second, 100);
  for (std::size_t i = 1; i < chunks.size(); ++i)
    EXPECT_EQ(chunks[i].first, chunks[i - 1].second);
}

TEST(ParallelFor, MoreThreadsThanIterations) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  parallelFor(pool, 0, 3, 16, [&](std::int64_t) { ++calls; });
  EXPECT_EQ(calls.load(), 3);
}

TEST(ParallelFor, NestedParallelismDoesNotDeadlock) {
  ThreadPool pool(1); // worst case: a single worker
  std::atomic<int> total{0};
  parallelFor(pool, 0, 4, 4, [&](std::int64_t) {
    parallelFor(pool, 0, 8, 4, [&](std::int64_t) { ++total; });
  });
  EXPECT_EQ(total.load(), 32);
}

mv::VersionTable makeTable() {
  // Mimics a Pareto front: faster versions use more threads/resources.
  mv::VersionTable table("region");
  struct Row {
    double time;
    int threads;
  };
  for (const Row r : {Row{0.10, 40}, Row{0.20, 20}, Row{0.55, 10},
                      Row{1.00, 1}}) {
    mv::CodeVersion v;
    v.meta.threads = r.threads;
    v.meta.timeSeconds = r.time;
    v.meta.resources = r.time * r.threads;
    v.meta.tileSizes = {8, 8, 8};
    v.run = [](int) {};
    table.add(std::move(v));
  }
  return table;
}

TEST(VersionTable, SortedByTimeAndRanges) {
  const mv::VersionTable t = makeTable();
  ASSERT_EQ(t.size(), 4u);
  EXPECT_DOUBLE_EQ(t[0].meta.timeSeconds, 0.10);
  EXPECT_DOUBLE_EQ(t[3].meta.timeSeconds, 1.00);
  EXPECT_EQ(t.fastest(), 0u);
  EXPECT_EQ(t.mostEfficient(), 3u); // serial: resources == 1.0 < others
  EXPECT_DOUBLE_EQ(t.timeRange().first, 0.10);
  EXPECT_DOUBLE_EQ(t.resourceRange().second, 5.5);
}

TEST(Policy, WeightedSumExtremes) {
  const mv::VersionTable t = makeTable();
  EXPECT_EQ(WeightedSumPolicy(1.0, 0.0).select(t), t.fastest());
  EXPECT_EQ(WeightedSumPolicy(0.0, 1.0).select(t), t.mostEfficient());
}

TEST(Policy, WeightedSumMinimizesNormalizedScore) {
  const mv::VersionTable t = makeTable();
  const double wT = 0.5, wR = 0.5;
  const std::size_t pick = WeightedSumPolicy(wT, wR).select(t);
  // Recompute the normalized weighted score and verify minimality.
  const auto [tLo, tHi] = t.timeRange();
  const auto [rLo, rHi] = t.resourceRange();
  auto score = [&](std::size_t i) {
    return wT * (t[i].meta.timeSeconds - tLo) / (tHi - tLo) +
           wR * (t[i].meta.resources - rLo) / (rHi - rLo);
  };
  for (std::size_t i = 0; i < t.size(); ++i)
    EXPECT_LE(score(pick), score(i) + 1e-12);
}

TEST(Policy, TimeBudgetPicksMostEfficientWithinBudget) {
  const mv::VersionTable t = makeTable();
  // Budget 0.6 s: versions 0.10/0.20/0.55 qualify; 0.55s@10t has the
  // lowest resource usage (5.5 < 4.0? no: 0.2*20=4.0, 0.1*40=4.0, 0.55*10=5.5)
  // -> 0.20s@20t and 0.10s@40t tie at 4.0; the scan keeps the first found.
  const std::size_t pick = TimeBudgetPolicy(0.6).select(t);
  EXPECT_LE(t[pick].meta.timeSeconds, 0.6);
  EXPECT_LE(t[pick].meta.resources, 4.0);
}

TEST(Policy, TimeBudgetFallsBackToFastest) {
  const mv::VersionTable t = makeTable();
  EXPECT_EQ(TimeBudgetPolicy(0.01).select(t), t.fastest());
}

TEST(Policy, EfficiencyFloorSelectsFastestEfficientVersion) {
  const mv::VersionTable t = makeTable();
  // serial reference = 1.0 s. Efficiencies: 1.0/4.0=0.25 (40t),
  // 1.0/4.0=0.25 (20t), 1.0/5.5=0.18 (10t), 1.0 (1t).
  EXPECT_EQ(EfficiencyFloorPolicy(0.9).select(t), 3u);
  const std::size_t pick = EfficiencyFloorPolicy(0.2).select(t);
  EXPECT_LE(t[pick].meta.timeSeconds, 0.2 + 1e-12);
}

TEST(Policy, ThreadCapRespectsAvailableCores) {
  const mv::VersionTable t = makeTable();
  EXPECT_EQ(t[ThreadCapPolicy(10).select(t)].meta.threads, 10);
  EXPECT_EQ(t[ThreadCapPolicy(1).select(t)].meta.threads, 1);
  EXPECT_EQ(t[ThreadCapPolicy(100).select(t)].meta.threads, 40);
}

// --- Property tests over degenerate and randomized tables (ISSUE 8) ------

mv::VersionTable singleVersionTable() {
  mv::VersionTable t("solo");
  mv::CodeVersion v;
  v.meta.threads = 8;
  v.meta.timeSeconds = 0.3;
  v.meta.resources = 2.4;
  v.run = [](int) {};
  t.add(std::move(v));
  return t;
}

mv::VersionTable allEqualTable(std::size_t n) {
  mv::VersionTable t("flat");
  for (std::size_t i = 0; i < n; ++i) {
    mv::CodeVersion v;
    v.meta.threads = 4;
    v.meta.timeSeconds = 0.5; // identical objectives: both ranges collapse
    v.meta.resources = 2.0;
    v.run = [](int) {};
    t.add(std::move(v));
  }
  return t;
}

TEST(PolicyProperty, WeightedSumSingleVersionDoesNotDivideByZero) {
  // A one-row table collapses both min-max ranges to zero width; the
  // normalization must degrade gracefully instead of producing NaN.
  const mv::VersionTable t = singleVersionTable();
  for (const auto& [wT, wR] :
       {std::pair{1.0, 0.0}, {0.0, 1.0}, {0.5, 0.5}, {3.0, 7.0}}) {
    EXPECT_EQ(WeightedSumPolicy(wT, wR).select(t), 0u);
  }
}

TEST(PolicyProperty, WeightedSumAllEqualObjectivesPicksAValidIndex) {
  const mv::VersionTable t = allEqualTable(5);
  for (const auto& [wT, wR] :
       {std::pair{1.0, 0.0}, {0.0, 1.0}, {0.25, 0.75}}) {
    const std::size_t pick = WeightedSumPolicy(wT, wR).select(t);
    EXPECT_LT(pick, t.size());
  }
}

TEST(PolicyProperty, WeightedSumPickMinimizesScoreOnRandomTables) {
  support::Rng rng(2024);
  for (int trial = 0; trial < 100; ++trial) {
    mv::VersionTable t("random");
    const int n = static_cast<int>(rng.uniformInt(1, 8));
    for (int i = 0; i < n; ++i) {
      mv::CodeVersion v;
      v.meta.threads = static_cast<int>(rng.uniformInt(1, 64));
      v.meta.timeSeconds = rng.uniform(0.01, 2.0);
      v.meta.resources = v.meta.timeSeconds * v.meta.threads;
      v.run = [](int) {};
      t.add(std::move(v));
    }
    const double wT = rng.uniform();
    const double wR = rng.uniform();
    const std::size_t pick = WeightedSumPolicy(wT, wR).select(t);
    ASSERT_LT(pick, t.size());
    const auto [tLo, tHi] = t.timeRange();
    const auto [rLo, rHi] = t.resourceRange();
    const double tSpan = tHi > tLo ? tHi - tLo : 1.0;
    const double rSpan = rHi > rLo ? rHi - rLo : 1.0;
    auto score = [&](std::size_t i) {
      return wT * (t[i].meta.timeSeconds - tLo) / tSpan +
             wR * (t[i].meta.resources - rLo) / rSpan;
    };
    for (std::size_t i = 0; i < t.size(); ++i) {
      EXPECT_LE(score(pick), score(i) + 1e-12)
          << "trial " << trial << ": index " << i << " beats pick " << pick;
      EXPECT_FALSE(std::isnan(score(i)));
    }
  }
}

TEST(PolicyProperty, TimeBudgetFallbackAndFeasibilityOnRandomTables) {
  // Whenever any version meets the budget the pick must meet it too;
  // when none does, the pick must be the fastest version.
  support::Rng rng(4711);
  for (int trial = 0; trial < 100; ++trial) {
    mv::VersionTable t("random");
    const int n = static_cast<int>(rng.uniformInt(1, 8));
    for (int i = 0; i < n; ++i) {
      mv::CodeVersion v;
      v.meta.threads = static_cast<int>(rng.uniformInt(1, 64));
      v.meta.timeSeconds = rng.uniform(0.01, 2.0);
      v.meta.resources = v.meta.timeSeconds * v.meta.threads;
      v.run = [](int) {};
      t.add(std::move(v));
    }
    const double budget = rng.uniform(0.0, 2.5);
    const std::size_t pick = TimeBudgetPolicy(budget).select(t);
    ASSERT_LT(pick, t.size());
    const bool feasible = t[t.fastest()].meta.timeSeconds <= budget;
    if (feasible) {
      EXPECT_LE(t[pick].meta.timeSeconds, budget);
    } else {
      EXPECT_EQ(pick, t.fastest());
    }
  }
}

TEST(PolicyProperty, SingleVersionTableIsAFixedPointForEveryPolicy) {
  const mv::VersionTable t = singleVersionTable();
  EXPECT_EQ(TimeBudgetPolicy(0.001).select(t), 0u); // fallback path
  EXPECT_EQ(TimeBudgetPolicy(10.0).select(t), 0u);
  EXPECT_EQ(EfficiencyFloorPolicy(0.99).select(t), 0u);
  EXPECT_EQ(ThreadCapPolicy(1).select(t), 0u);
  EXPECT_EQ(ThreadCapPolicy(100).select(t), 0u);
}

TEST(Region, InvokeRunsSelectedVersionAndCounts) {
  mv::VersionTable table("r");
  std::vector<int> runs(2, 0);
  // A genuine trade-off: the fast version costs more resources.
  for (int v = 0; v < 2; ++v) {
    mv::CodeVersion cv;
    cv.meta.threads = v == 0 ? 4 : 1;
    cv.meta.timeSeconds = v == 0 ? 0.1 : 1.0;
    cv.meta.resources = v == 0 ? 0.4 : 0.2;
    cv.run = [&runs, v](int threads) {
      EXPECT_EQ(threads, v == 0 ? 4 : 1);
      ++runs[v];
    };
    table.add(std::move(cv));
  }
  Region region(std::move(table));
  WeightedSumPolicy fastestPolicy(1.0, 0.0);
  const std::size_t fast = region.invoke(fastestPolicy);
  EXPECT_EQ(fast, 0u);
  WeightedSumPolicy thriftyPolicy(0.0, 1.0);
  region.invoke(thriftyPolicy);
  EXPECT_EQ(runs[0], 1);
  EXPECT_EQ(runs[1], 1);
  EXPECT_EQ(region.totalInvocations(), 2u);
  EXPECT_EQ(region.invocationCounts()[0], 1u);
}

TEST(VersionTable, RejectsNonPositiveTime) {
  mv::VersionTable table("r");
  mv::CodeVersion v;
  v.meta.timeSeconds = 0.0;
  EXPECT_THROW(table.add(std::move(v)), support::CheckError);
}

} // namespace
} // namespace motune::runtime
