#include "core/gde3.h"
#include "core/grid_search.h"
#include "core/hypervolume.h"
#include "core/nsga2.h"
#include "core/pareto.h"
#include "core/random_search.h"
#include "core/roughset.h"
#include "core/rsgde3.h"
#include "core/testproblems.h"
#include "support/check.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace motune::opt {
namespace {

runtime::ThreadPool& pool() {
  static runtime::ThreadPool p(4);
  return p;
}

// --- dominance / sorting -----------------------------------------------------

TEST(Pareto, DominanceDefinition) {
  EXPECT_TRUE(dominates({1, 1}, {2, 2}));
  EXPECT_TRUE(dominates({1, 2}, {2, 2}));
  EXPECT_FALSE(dominates({2, 2}, {2, 2})); // equal: not strictly better
  EXPECT_FALSE(dominates({1, 3}, {2, 2})); // trade-off
  EXPECT_FALSE(dominates({2, 2}, {1, 3}));
}

TEST(Pareto, DominanceIsAntisymmetricAndTransitive) {
  support::Rng rng(1);
  for (int trial = 0; trial < 200; ++trial) {
    const Objectives a{rng.uniform(), rng.uniform()};
    const Objectives b{rng.uniform(), rng.uniform()};
    const Objectives c{rng.uniform(), rng.uniform()};
    EXPECT_FALSE(dominates(a, b) && dominates(b, a));
    if (dominates(a, b) && dominates(b, c)) {
      EXPECT_TRUE(dominates(a, c));
    }
  }
}

std::vector<Individual> makePop(std::initializer_list<Objectives> objs) {
  std::vector<Individual> pop;
  std::int64_t id = 0;
  for (const auto& o : objs) pop.push_back({{}, {id++}, o});
  return pop;
}

TEST(Pareto, FrontExtraction) {
  const auto pop = makePop({{1, 4}, {2, 3}, {3, 3}, {4, 1}, {2, 5}});
  const auto front = paretoFront(pop);
  ASSERT_EQ(front.size(), 3u);
  std::set<std::int64_t> ids;
  for (const auto& ind : front) ids.insert(ind.config[0]);
  EXPECT_EQ(ids, (std::set<std::int64_t>{0, 1, 3}));
}

TEST(Pareto, FrontDeduplicatesConfigs) {
  std::vector<Individual> pop;
  pop.push_back({{}, {7}, {1, 2}});
  pop.push_back({{}, {7}, {1, 2}});
  EXPECT_EQ(paretoFront(pop).size(), 1u);
}

TEST(Pareto, NonDominatedSortRanks) {
  const auto pop = makePop({{1, 4}, {4, 1}, {2, 5}, {5, 2}, {3, 6}});
  const auto fronts = nonDominatedSort(pop);
  ASSERT_GE(fronts.size(), 2u);
  EXPECT_EQ(fronts[0].size(), 2u); // (1,4) and (4,1)
  // Every member of front k+1 is dominated by someone in front <= k.
  for (std::size_t f = 1; f < fronts.size(); ++f)
    for (std::size_t i : fronts[f]) {
      bool dominated = false;
      for (std::size_t g = 0; g < f && !dominated; ++g)
        for (std::size_t j : fronts[g])
          if (dominates(pop[j].objectives, pop[i].objectives)) {
            dominated = true;
            break;
          }
      EXPECT_TRUE(dominated);
    }
}

TEST(Pareto, CrowdingBoundariesInfinite) {
  const auto pop = makePop({{1, 5}, {2, 3}, {3, 2}, {5, 1}});
  const std::vector<std::size_t> front{0, 1, 2, 3};
  const auto d = crowdingDistance(pop, front);
  EXPECT_TRUE(std::isinf(d[0]));
  EXPECT_TRUE(std::isinf(d[3]));
  EXPECT_FALSE(std::isinf(d[1]));
  EXPECT_FALSE(std::isinf(d[2]));
}

TEST(Pareto, TruncationKeepsBestRanks) {
  auto pop = makePop({{1, 4}, {4, 1}, {2, 5}, {5, 2}, {3, 6}, {6, 3}});
  truncateByRankAndCrowding(pop, 2);
  ASSERT_EQ(pop.size(), 2u);
  std::set<std::int64_t> ids;
  for (const auto& ind : pop) ids.insert(ind.config[0]);
  EXPECT_EQ(ids, (std::set<std::int64_t>{0, 1}));
}

TEST(Pareto, TruncationPrefersSpreadWithinFront) {
  // One big front on a line; truncation must keep the two extremes.
  auto pop = makePop({{1, 9}, {2, 8}, {3, 7}, {5, 5}, {9, 1}});
  truncateByRankAndCrowding(pop, 3);
  std::set<std::int64_t> ids;
  for (const auto& ind : pop) ids.insert(ind.config[0]);
  EXPECT_TRUE(ids.count(0));
  EXPECT_TRUE(ids.count(4));
}

// --- hypervolume --------------------------------------------------------------

TEST(Hypervolume, SinglePointRectangle) {
  EXPECT_DOUBLE_EQ(hypervolume2d({{0.25, 0.5}}, {1.0, 1.0}), 0.75 * 0.5);
}

TEST(Hypervolume, DominatedPointAddsNothing) {
  const double v1 = hypervolume2d({{0.2, 0.2}}, {1.0, 1.0});
  const double v2 = hypervolume2d({{0.2, 0.2}, {0.5, 0.5}}, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(v1, v2);
}

TEST(Hypervolume, TwoPointStaircase) {
  // (0.2, 0.6) and (0.6, 0.2): union of two rectangles minus overlap.
  const double v =
      hypervolume2d({{0.2, 0.6}, {0.6, 0.2}}, {1.0, 1.0});
  EXPECT_DOUBLE_EQ(v, 0.8 * 0.4 + 0.4 * (0.8 - 0.4));
}

TEST(Hypervolume, PointsOutsideReferenceClipped) {
  EXPECT_DOUBLE_EQ(hypervolume2d({{2.0, 0.1}}, {1.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(hypervolume2d({{-1.0, 0.5}}, {1.0, 1.0}), 0.5);
}

TEST(Hypervolume, NdMatches2dOnDegenerateThird) {
  // Lift the 2-D staircase into 3-D with z = 0: volume is identical.
  const double v2 =
      hypervolume2d({{0.2, 0.6}, {0.6, 0.2}}, {1.0, 1.0});
  const double v3 = hypervolumeNd({{0.2, 0.6, 0.0}, {0.6, 0.2, 0.0}},
                                  {1.0, 1.0, 1.0});
  EXPECT_NEAR(v2, v3, 1e-12);
}

TEST(Hypervolume, NdCube) {
  EXPECT_NEAR(hypervolumeNd({{0.5, 0.5, 0.5}}, {1.0, 1.0, 1.0}), 0.125,
              1e-12);
}

TEST(Hypervolume, MetricNormalizes) {
  const HypervolumeMetric metric({2.0, 4.0});
  EXPECT_DOUBLE_EQ(metric({{1.0, 2.0}}), 0.25); // (0.5, 0.5) in unit box
}

TEST(Hypervolume, IdealFrontValuesMatchClosedForms) {
  EXPECT_NEAR(idealHypervolume("schaffer"), 5.0 / 6.0, 1e-4);
  EXPECT_NEAR(idealHypervolume("zdt1"), 2.0 / 3.0, 1e-4);
  EXPECT_NEAR(idealHypervolume("zdt2"), 1.0 / 3.0, 1e-4);
  EXPECT_GT(idealHypervolume("fonseca"), 0.2);
  EXPECT_GT(idealHypervolume("zdt6"), 0.2);
}

// --- rough-set reduction -------------------------------------------------------

TEST(RoughSet, BoundsFromDominatedWitnesses) {
  // 1-D: non-dominated at x=5; dominated at 2 and 8 -> boundary [2, 8].
  std::vector<Individual> pop;
  pop.push_back({{}, {5}, {1.0, 1.0}});  // non-dominated
  pop.push_back({{}, {2}, {2.0, 2.0}});  // dominated, below
  pop.push_back({{}, {8}, {3.0, 3.0}});  // dominated, above
  tuning::Boundary full;
  full.lo = {0.0};
  full.hi = {10.0};
  const tuning::Boundary reduced = roughSetReduce(pop, full);
  EXPECT_DOUBLE_EQ(reduced.lo[0], 2.0);
  EXPECT_DOUBLE_EQ(reduced.hi[0], 8.0);
}

TEST(RoughSet, EnclosesAllNonDominated) {
  support::Rng rng(3);
  tuning::Boundary full;
  full.lo = {0.0, 0.0};
  full.hi = {100.0, 100.0};
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<Individual> pop;
    for (int i = 0; i < 30; ++i) {
      const Config c{rng.uniformInt(0, 100), rng.uniformInt(0, 100)};
      pop.push_back({{}, c,
                     {rng.uniform(0.0, 10.0), rng.uniform(0.0, 10.0)}});
    }
    const tuning::Boundary reduced = roughSetReduce(pop, full);
    for (std::size_t i : nonDominatedIndices(pop))
      EXPECT_TRUE(reduced.contains(pop[i].config));
    for (std::size_t d = 0; d < 2; ++d) {
      EXPECT_GE(reduced.lo[d], full.lo[d]);
      EXPECT_LE(reduced.hi[d], full.hi[d]);
    }
  }
}

TEST(RoughSet, AllNonDominatedKeepsFullSpace) {
  std::vector<Individual> pop;
  pop.push_back({{}, {1}, {1.0, 2.0}});
  pop.push_back({{}, {9}, {2.0, 1.0}});
  tuning::Boundary full;
  full.lo = {0.0};
  full.hi = {10.0};
  const tuning::Boundary reduced = roughSetReduce(pop, full);
  EXPECT_DOUBLE_EQ(reduced.lo[0], 0.0);
  EXPECT_DOUBLE_EQ(reduced.hi[0], 10.0);
}

// --- search algorithms on known-front problems ---------------------------------

void expectConverges(SyntheticProblem problem, double hvTarget,
                     double fraction) {
  GDE3Options opt;
  opt.population = 40;
  opt.maxGenerations = 120;
  opt.noImproveLimit = 10;
  opt.seed = 17;
  RSGDE3 engine(problem, pool(), {opt, true});
  const OptResult res = engine.run();
  ASSERT_FALSE(res.front.empty());

  std::vector<Objectives> pts;
  for (const auto& ind : res.front) pts.push_back(ind.objectives);
  double hv;
  if (problem.name() == "schaffer") {
    for (auto& p : pts) {
      p[0] /= 4.0;
      p[1] /= 4.0;
    }
    hv = hypervolume2d(pts, {1.0, 1.0});
  } else {
    hv = hypervolume2d(pts, {1.0, 1.0});
  }
  EXPECT_GE(hv, fraction * hvTarget)
      << problem.name() << ": hv=" << hv << " target=" << hvTarget;
}

TEST(RSGDE3, ConvergesOnSchaffer) {
  expectConverges(makeSchaffer(), idealHypervolume("schaffer"), 0.98);
}

TEST(RSGDE3, ConvergesOnFonseca) {
  expectConverges(makeFonseca(), idealHypervolume("fonseca"), 0.92);
}

TEST(RSGDE3, ConvergesOnZDT1) {
  expectConverges(makeZDT1(), idealHypervolume("zdt1"), 0.80);
}

TEST(RSGDE3, ConvergesOnZDT2) {
  expectConverges(makeZDT2(), idealHypervolume("zdt2"), 0.60);
}

TEST(GDE3, FrontIsMutuallyNonDominated) {
  SyntheticProblem problem = makeZDT1();
  GDE3Options opt;
  opt.maxGenerations = 20;
  opt.seed = 5;
  GDE3 engine(problem, pool(), opt);
  const OptResult res = engine.run();
  for (std::size_t i = 0; i < res.front.size(); ++i)
    for (std::size_t j = 0; j < res.front.size(); ++j)
      EXPECT_FALSE(i != j && dominates(res.front[i].objectives,
                                       res.front[j].objectives));
}

TEST(GDE3, PopulationSizeInvariant) {
  SyntheticProblem problem = makeKursawe();
  GDE3Options opt;
  opt.population = 24;
  opt.maxGenerations = 15;
  opt.noImproveLimit = 100; // force full generations
  GDE3 engine(problem, pool(), opt);
  engine.initialize();
  for (int g = 0; g < 15; ++g) {
    engine.step();
    EXPECT_EQ(engine.population().size(), 24u);
  }
}

TEST(GDE3, DeterministicGivenSeed) {
  auto runOnce = [] {
    SyntheticProblem problem = makeFonseca();
    GDE3Options opt;
    opt.maxGenerations = 10;
    opt.noImproveLimit = 100;
    opt.seed = 99;
    opt.parallelEvaluation = false;
    GDE3 engine(problem, pool(), opt);
    return engine.run();
  };
  const OptResult a = runOnce();
  const OptResult b = runOnce();
  ASSERT_EQ(a.front.size(), b.front.size());
  for (std::size_t i = 0; i < a.front.size(); ++i)
    EXPECT_EQ(a.front[i].config, b.front[i].config);
  EXPECT_EQ(a.evaluations, b.evaluations);
}

TEST(GDE3, TerminatesOnNoImprovement) {
  SyntheticProblem problem = makeSchaffer(); // easy: converges quickly
  GDE3Options opt;
  opt.maxGenerations = 1000;
  opt.noImproveLimit = 3;
  opt.seed = 2;
  GDE3 engine(problem, pool(), opt);
  const OptResult res = engine.run();
  EXPECT_LT(res.generations, 200); // must stop well before the cap
}

TEST(GDE3, RespectsExternalBoundary) {
  SyntheticProblem problem = makeSchaffer();
  GDE3Options opt;
  opt.maxGenerations = 5;
  opt.noImproveLimit = 100;
  GDE3 engine(problem, pool(), opt);
  engine.initialize();
  tuning::Boundary tight;
  tight.lo = {4000.0}; // decodes to x in [~-2, ...] on the integer grid
  tight.hi = {6000.0};
  engine.setBoundary(tight);
  for (int g = 0; g < 5; ++g) engine.step();
  // All *new* members come from the boundary; the invariant we can check
  // cheaply is that the final population is valid and non-empty.
  EXPECT_EQ(engine.population().size(), opt.population);
}

TEST(RSGDE3, ReductionUsesFewerOrEqualEvaluations) {
  // Not a strict theorem, but on the smooth ZDT1 the reduced search should
  // not be wildly more expensive; mainly this exercises the reduction path.
  SyntheticProblem p1 = makeZDT1();
  SyntheticProblem p2 = makeZDT1();
  GDE3Options opt;
  opt.maxGenerations = 30;
  opt.seed = 7;
  RSGDE3 with(p1, pool(), {opt, true});
  RSGDE3 without(p2, pool(), {opt, false});
  const OptResult a = with.run();
  const OptResult b = without.run();
  EXPECT_GT(a.evaluations, 0u);
  EXPECT_GT(b.evaluations, 0u);
  EXPECT_LT(a.evaluations, 10000u);
}

TEST(RandomSearch, RespectsBudgetAndReturnsFront) {
  SyntheticProblem problem = makeZDT1();
  RandomSearch rs(problem, pool(), {500, 3, true});
  const OptResult res = rs.run();
  EXPECT_EQ(res.evaluations, 500u);
  ASSERT_FALSE(res.front.empty());
  for (std::size_t i = 0; i < res.front.size(); ++i)
    for (std::size_t j = 0; j < res.front.size(); ++j)
      EXPECT_FALSE(i != j && dominates(res.front[i].objectives,
                                       res.front[j].objectives));
}

TEST(RandomSearch, MuchWorseThanRSGDE3AtEqualBudget) {
  // The paper's qualitative claim (Fig. 9 / Table VI): random search "is
  // very far off the quality achieved by the other techniques".
  SyntheticProblem p1 = makeZDT1();
  GDE3Options opt;
  opt.maxGenerations = 60;
  opt.noImproveLimit = 8;
  opt.seed = 21;
  RSGDE3 engine(p1, pool(), {opt, true});
  const OptResult rsRes = engine.run();

  SyntheticProblem p2 = makeZDT1();
  RandomSearch rand(p2, pool(), {rsRes.evaluations, 21, true});
  const OptResult randRes = rand.run();

  auto hv = [](const OptResult& r) {
    std::vector<Objectives> pts;
    for (const auto& ind : r.front) pts.push_back(ind.objectives);
    return hypervolume2d(pts, {1.0, 1.0});
  };
  EXPECT_GT(hv(rsRes), 1.5 * hv(randRes));
}

TEST(GridSearch, EnumeratesFullCartesianProduct) {
  SyntheticProblem problem = makeSchaffer();
  GridSpec spec;
  spec.values = {{0, 2500, 5000, 7500, 10000}};
  GridSearch grid(problem, pool(), spec);
  const OptResult res = grid.run();
  EXPECT_EQ(res.evaluations, 5u);
  EXPECT_EQ(res.population.size(), 5u);
  ASSERT_FALSE(res.front.empty());
}

TEST(GridSearch, GeometricValuesCoverRange) {
  const auto vals = geometricValues(1, 700, 24);
  EXPECT_EQ(vals.front(), 1);
  EXPECT_EQ(vals.back(), 700);
  EXPECT_GE(vals.size(), 20u);
  for (std::size_t i = 1; i < vals.size(); ++i)
    EXPECT_GT(vals[i], vals[i - 1]);
}

TEST(NSGA2, ConvergesOnSchaffer) {
  SyntheticProblem problem = makeSchaffer();
  NSGA2Options opt;
  opt.population = 40;
  opt.maxGenerations = 80;
  opt.noImproveLimit = 10;
  opt.seed = 4;
  NSGA2 engine(problem, pool(), opt);
  const OptResult res = engine.run();
  std::vector<Objectives> pts;
  for (const auto& ind : res.front)
    pts.push_back({ind.objectives[0] / 4.0, ind.objectives[1] / 4.0});
  EXPECT_GE(hypervolume2d(pts, {1.0, 1.0}),
            0.95 * idealHypervolume("schaffer"));
}

TEST(SyntheticProblems, DecodeRoundTrip) {
  SyntheticProblem p = makeFonseca();
  const auto x = p.decode({0, 5000, 10000});
  EXPECT_DOUBLE_EQ(x[0], -4.0);
  EXPECT_DOUBLE_EQ(x[1], 0.0);
  EXPECT_DOUBLE_EQ(x[2], 4.0);
}

} // namespace
} // namespace motune::opt
