#include "cachesim/cache.h"
#include "cachesim/hierarchy.h"
#include "machine/machine.h"
#include "support/mem_access.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

namespace motune::cachesim {
namespace {

TEST(Cache, GeometryDerivedFromCapacity) {
  SetAssocCache c(32 * 1024, 64, 8);
  EXPECT_EQ(c.numSets(), 64);
  EXPECT_EQ(c.associativity(), 8);
}

TEST(Cache, FullyAssociativeOption) {
  SetAssocCache c(1024, 64, 0);
  EXPECT_EQ(c.numSets(), 1);
  EXPECT_EQ(c.associativity(), 16);
}

TEST(Cache, HitAfterMiss) {
  SetAssocCache c(1024, 64, 2);
  EXPECT_FALSE(c.access(5, false));
  EXPECT_TRUE(c.access(5, false));
  EXPECT_EQ(c.stats().misses, 1u);
  EXPECT_EQ(c.stats().hits, 1u);
}

TEST(Cache, LruEvictsLeastRecentlyUsed) {
  // 2-way, map lines 0, 16, 32 to the same set (16 sets).
  SetAssocCache c(2048, 64, 2);
  ASSERT_EQ(c.numSets(), 16);
  c.access(0, false);
  c.access(16, false);
  c.access(0, false);  // refresh 0; LRU is now 16
  c.access(32, false); // evicts 16
  EXPECT_TRUE(c.contains(0));
  EXPECT_FALSE(c.contains(16));
  EXPECT_TRUE(c.contains(32));
}

TEST(Cache, WritebackOnDirtyEviction) {
  SetAssocCache c(2048, 64, 2);
  bool dirty = false;
  c.access(0, true);
  c.access(16, false);
  c.access(32, false, &dirty); // evicts dirty line 0
  EXPECT_TRUE(dirty);
  EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, CapacitySweepShowsCliff) {
  // Working set of 64 lines: a 32-line cache misses every access on a
  // cyclic sweep (LRU pathological), a 64-line cache hits after warmup.
  SetAssocCache small(32 * 64, 64, 0);
  SetAssocCache big(64 * 64, 64, 0);
  for (int rep = 0; rep < 10; ++rep)
    for (Addr line = 0; line < 64; ++line) {
      small.access(line, false);
      big.access(line, false);
    }
  EXPECT_EQ(small.stats().hits, 0u);
  EXPECT_EQ(big.stats().misses, 64u); // compulsory only
}

TEST(Cache, ResetClearsState) {
  SetAssocCache c(1024, 64, 2);
  c.access(1, true);
  c.reset();
  EXPECT_FALSE(c.contains(1));
  EXPECT_EQ(c.stats().accesses, 0u);
}

TEST(Hierarchy, ForwardsMissesDownTheLevels) {
  Hierarchy h(machine::westmere(), 1);
  ASSERT_EQ(h.levels(), 3u);
  h.access(0, 8, false); // cold: misses L1, L2, L3
  EXPECT_EQ(h.level(0).stats().misses, 1u);
  EXPECT_EQ(h.level(1).stats().misses, 1u);
  EXPECT_EQ(h.level(2).stats().misses, 1u);
  EXPECT_EQ(h.dramLines(), 1u);

  h.access(0, 8, false); // L1 hit: lower levels untouched
  EXPECT_EQ(h.level(0).stats().hits, 1u);
  EXPECT_EQ(h.level(1).stats().accesses, 1u);
}

TEST(Hierarchy, MultiLineAccessSplit) {
  Hierarchy h(machine::westmere(), 1);
  h.access(60, 8, false); // straddles two 64B lines
  EXPECT_EQ(h.level(0).stats().accesses, 2u);
}

TEST(Hierarchy, BatchedAccessMatchesScalarExactly) {
  // The batched entry point must leave the hierarchy in the same state as
  // replaying the records one by one — including line splits and write
  // flags — at every level.
  std::vector<support::MemAccess> stream;
  std::uint64_t state = 99;
  for (int i = 0; i < 4096; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    stream.push_back({(state >> 16) % (4u << 20),
                      i % 7 == 0 ? 12 : 8, // some straddle a line boundary
                      i % 3 == 0});
  }

  Hierarchy scalar(machine::westmere(), 1);
  for (const auto& a : stream) scalar.access(a.addr, a.bytes, a.isWrite);

  Hierarchy batched(machine::westmere(), 1);
  // Uneven chunks, so batch boundaries land mid-pattern.
  std::size_t pos = 0, chunk = 1;
  while (pos < stream.size()) {
    const std::size_t n = std::min(chunk, stream.size() - pos);
    batched.access(std::span<const support::MemAccess>(&stream[pos], n));
    pos += n;
    chunk = chunk * 2 + 1;
  }

  for (std::size_t level = 0; level < 3; ++level) {
    EXPECT_EQ(scalar.level(level).stats().accesses,
              batched.level(level).stats().accesses)
        << "level " << level;
    EXPECT_EQ(scalar.level(level).stats().hits,
              batched.level(level).stats().hits)
        << "level " << level;
    EXPECT_EQ(scalar.level(level).stats().misses,
              batched.level(level).stats().misses)
        << "level " << level;
  }
  EXPECT_EQ(scalar.dramBytes(), batched.dramBytes());
  EXPECT_DOUBLE_EQ(scalar.totalCycles(), batched.totalCycles());
}

TEST(Cache, NonPowerOfTwoSetCountStillCorrect) {
  // 3 sets: the set index falls back to modulo instead of the pow2 mask.
  SetAssocCache c(3 * 2 * 64, 64, 2);
  EXPECT_EQ(c.numSets(), 3);
  EXPECT_FALSE(c.access(0, false)); // set 0
  EXPECT_FALSE(c.access(1, false)); // set 1
  EXPECT_FALSE(c.access(2, false)); // set 2
  EXPECT_FALSE(c.access(3, false)); // set 0 again, second way
  EXPECT_TRUE(c.access(0, false));  // still resident
  EXPECT_TRUE(c.access(3, false));
  EXPECT_FALSE(c.access(6, false)); // set 0, evicts LRU line 0
  EXPECT_FALSE(c.access(0, false));
  EXPECT_TRUE(c.access(1, false)); // other sets untouched
  EXPECT_TRUE(c.access(2, false));
}

TEST(Hierarchy, SharedL3SliceShrinksWithThreads) {
  Hierarchy one(machine::westmere(), 1);
  Hierarchy ten(machine::westmere(), 10);
  EXPECT_GT(one.level(2).capacityBytes(), ten.level(2).capacityBytes());
  EXPECT_LE(ten.level(2).capacityBytes(), 3 * 1024 * 1024);
}

TEST(Hierarchy, TotalCyclesGrowWithMisses) {
  Hierarchy h(machine::westmere(), 1);
  h.access(0, 8, false);
  const double cold = h.totalCycles();
  h.access(0, 8, false);
  const double warm = h.totalCycles() - cold;
  EXPECT_GT(cold, warm); // a hit costs far less than the cold miss
}

} // namespace
} // namespace motune::cachesim
