// Paper-shape regression tests: the qualitative results of the paper's
// evaluation section, pinned as assertions so model or optimizer changes
// cannot silently break the reproduction. Each test names the table/figure
// it guards; the bench binaries print the full data.
#include "autotune/autotuner.h"
#include "core/grid_search.h"
#include "core/random_search.h"
#include "kernels/kernel.h"
#include "machine/machine.h"
#include "tuning/kernel_problem.h"

#include <gtest/gtest.h>

#include <limits>

namespace motune {
namespace {

/// Best time over a coarse tile grid for a fixed thread count.
double bestTimeAt(tuning::KernelTuningProblem& problem, int threads,
                  std::size_t perDim = 10) {
  const auto& space = problem.space();
  const std::size_t dims = problem.skeleton().tileDepth();
  std::vector<std::vector<std::int64_t>> values;
  for (std::size_t d = 0; d < dims; ++d)
    values.push_back(opt::geometricValues(space[d].lo, space[d].hi, perDim));
  double best = std::numeric_limits<double>::max();
  std::vector<std::size_t> idx(dims, 0);
  bool done = false;
  while (!done) {
    tuning::Config c;
    for (std::size_t d = 0; d < dims; ++d) c.push_back(values[d][idx[d]]);
    c.push_back(threads);
    best = std::min(best, problem.evaluate(c)[0]);
    std::size_t d = dims;
    for (;;) {
      if (d == 0) {
        done = true;
        break;
      }
      --d;
      if (++idx[d] < values[d].size()) break;
      idx[d] = 0;
    }
  }
  return best;
}

TEST(PaperShapes, TableII_TilingVastlyBeatsUntiled) {
  // "the well known, enormous potential of tiling": on both machines the
  // untiled serial mm is many times slower than the tuned serial variant.
  for (const auto& m : {machine::westmere(), machine::barcelona()}) {
    tuning::KernelTuningProblem problem(kernels::kernelByName("mm"), m);
    const double tuned = bestTimeAt(problem, 1);
    const double untiled = problem.untiledSerialSeconds();
    EXPECT_GT(untiled / tuned, 5.0) << m.name;
    EXPECT_LT(untiled / tuned, 100.0) << m.name; // sanity: not absurd
  }
}

TEST(PaperShapes, TableIII_WestmereSpeedupLadder) {
  // Paper: speedups 4.83 / 9.26 / 16.78 / 26.36 at 5/10/20/40 threads.
  // Require the reproduced ladder within ±20% of each step.
  tuning::KernelTuningProblem problem(kernels::kernelByName("mm"),
                                      machine::westmere());
  const double serial = bestTimeAt(problem, 1);
  const double paper[] = {4.83, 9.26, 16.78, 26.36};
  const int counts[] = {5, 10, 20, 40};
  for (int i = 0; i < 4; ++i) {
    const double s = serial / bestTimeAt(problem, counts[i]);
    EXPECT_GT(s, paper[i] * 0.8) << counts[i] << " threads";
    EXPECT_LT(s, paper[i] * 1.2) << counts[i] << " threads";
  }
}

TEST(PaperShapes, TableIII_BarcelonaEfficiencyCollapse) {
  // Paper: efficiency 0.45 at 32 threads on Barcelona (vs 0.66 at 40 on
  // Westmere) — the weaker machine must lose efficiency faster.
  tuning::KernelTuningProblem wp(kernels::kernelByName("mm"),
                                 machine::westmere());
  tuning::KernelTuningProblem bp(kernels::kernelByName("mm"),
                                 machine::barcelona());
  const double effW = bestTimeAt(wp, 1) / (40.0 * bestTimeAt(wp, 40));
  const double effB = bestTimeAt(bp, 1) / (32.0 * bestTimeAt(bp, 32));
  EXPECT_GT(effW, 0.50);
  EXPECT_LT(effW, 0.75);
  EXPECT_GT(effB, 0.35);
  EXPECT_LT(effB, 0.60);
  EXPECT_LT(effB, effW);
}

TEST(PaperShapes, Fig2_OptimalTilesDependOnThreadCount) {
  // The motivating observation: the per-thread-count optimal tile vector
  // differs between serial and full-machine execution.
  tuning::KernelTuningProblem problem(kernels::kernelByName("mm"),
                                      machine::westmere());
  auto argBest = [&](int threads) {
    const auto vals = opt::geometricValues(4, 700, 10);
    tuning::Config best;
    double bestT = std::numeric_limits<double>::max();
    for (auto ti : vals)
      for (auto tj : vals)
        for (auto tk : vals) {
          const double t = problem.evaluate({ti, tj, tk, threads})[0];
          if (t < bestT) {
            bestT = t;
            best = {ti, tj, tk};
          }
        }
    return best;
  };
  EXPECT_NE(argBest(1), argBest(40));
}

TEST(PaperShapes, TableII_CrossThreadLossIsReal) {
  // Running serial-optimal tiles with all cores costs measurably (paper:
  // 15.1% on Westmere, 18% on Barcelona; require >5% and <60%).
  for (const auto& m : {machine::westmere(), machine::barcelona()}) {
    tuning::KernelTuningProblem problem(kernels::kernelByName("mm"), m);
    // 14 values/dim: coarse grids can miss the per-thread-count optima
    // separation entirely (the effect the paper measures).
    const auto vals = opt::geometricValues(4, 700, 14);
    tuning::Config bestSerial;
    double bestSerialT = std::numeric_limits<double>::max();
    double bestParT = std::numeric_limits<double>::max();
    const int maxP = m.totalCores();
    for (auto ti : vals)
      for (auto tj : vals)
        for (auto tk : vals) {
          const double ts = problem.evaluate({ti, tj, tk, 1})[0];
          if (ts < bestSerialT) {
            bestSerialT = ts;
            bestSerial = {ti, tj, tk};
          }
          bestParT =
              std::min(bestParT, problem.evaluate({ti, tj, tk, maxP})[0]);
        }
    tuning::Config serialAtMax = bestSerial;
    serialAtMax.push_back(maxP);
    const double loss = problem.evaluate(serialAtMax)[0] / bestParT - 1.0;
    EXPECT_GT(loss, 0.05) << m.name;
    EXPECT_LT(loss, 0.60) << m.name;
  }
}

TEST(PaperShapes, TableV_NBodyThreadInsensitiveOnWestmere) {
  // Paper §V.C: on Westmere the n-body set fits the (shared) L3, so the
  // tile sizes tuned for ONE thread count remain near-optimal at every
  // other — "almost no variation". The tile landscape itself may vary
  // (L1/L2 slice effects); what must be flat is the cross-thread-count
  // penalty.
  tuning::KernelTuningProblem problem(kernels::kernelByName("n-body"),
                                      machine::westmere());
  const auto vals = opt::geometricValues(64, 100000, 10);
  tuning::Config bestSerial;
  double bestSerialT = std::numeric_limits<double>::max();
  double bestParT = std::numeric_limits<double>::max();
  for (auto ti : vals)
    for (auto tj : vals) {
      const double ts = problem.evaluate({ti, tj, 1})[0];
      if (ts < bestSerialT) {
        bestSerialT = ts;
        bestSerial = {ti, tj};
      }
      bestParT = std::min(bestParT, problem.evaluate({ti, tj, 40})[0]);
    }
  tuning::Config serialAt40 = bestSerial;
  serialAt40.push_back(40);
  const double loss = problem.evaluate(serialAt40)[0] / bestParT - 1.0;
  EXPECT_LT(loss, 0.10); // paper: ~0%
}

TEST(PaperShapes, TableVI_RsGde3BudgetAndQuality) {
  // "between 99% and 90% lower [evaluations] than brute force" with
  // comparable hypervolume, and clearly better than random search.
  tuning::KernelTuningProblem problem(kernels::kernelByName("mm"),
                                      machine::barcelona());
  runtime::ThreadPool pool(2);

  opt::RSGDE3Options rsOptions;
  rsOptions.gde3.seed = 2;
  opt::RSGDE3 rsEngine(problem, pool, rsOptions);
  opt::OptResult rs = rsEngine.run();
  autotune::threadSweepRefinement(problem, rs);

  // The paper-scale grid has ~73k points; require <10% of that.
  EXPECT_LT(rs.evaluations, 7300u);
  EXPECT_GE(rs.front.size(), 6u);

  opt::RandomSearch random(problem, pool, {rs.evaluations, 7, true});
  const opt::OptResult rnd = random.run();
  const double timeRef = problem.untiledSerialSeconds();
  const double vRs =
      autotune::scoreHypervolume(rs.front, timeRef, 2 * timeRef);
  const double vRnd =
      autotune::scoreHypervolume(rnd.front, timeRef, 2 * timeRef);
  EXPECT_GT(vRs, vRnd);
}

TEST(PaperShapes, EnergyObjective_RaceToIdleValley) {
  // Extension sanity: minimal energy sits strictly between serial and
  // full-machine thread counts (static power vs. contention).
  tuning::KernelTuningProblem problem(
      kernels::kernelByName("mm"), machine::westmere(), 0, {},
      {tuning::Objective::Time, tuning::Objective::Energy});
  auto joules = [&](int p) { return problem.evaluate({96, 48, 32, p})[1]; };
  const double serial = joules(1);
  const double full = joules(40);
  double bestMid = std::numeric_limits<double>::max();
  for (int p : {4, 8, 10, 12, 16}) bestMid = std::min(bestMid, joules(p));
  EXPECT_LT(bestMid, serial);
  EXPECT_LT(bestMid, full);
}

} // namespace
} // namespace motune
