#include "support/check.h"
#include "support/rng.h"
#include "support/stats.h"
#include "support/table.h"

#include <gtest/gtest.h>

#include <set>

namespace motune::support {
namespace {

TEST(Check, ThrowsWithMessage) {
  EXPECT_NO_THROW(MOTUNE_CHECK(1 + 1 == 2));
  try {
    MOTUNE_CHECK_MSG(false, "context here");
    FAIL() << "should have thrown";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("context here"), std::string::npos);
  }
}

TEST(Rng, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a() == b()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double lo = 1.0, hi = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.uniformInt(-2, 3);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(Rng, UniformIntMeanUnbiased) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i)
    sum += static_cast<double>(rng.uniformInt(0, 9));
  EXPECT_NEAR(sum / n, 4.5, 0.05);
}

TEST(Rng, GaussianMoments) {
  Rng rng(5);
  std::vector<double> xs(20000);
  for (auto& x : xs) x = rng.gaussian();
  EXPECT_NEAR(mean(xs), 0.0, 0.05);
  EXPECT_NEAR(stddev(xs), 1.0, 0.05);
}

TEST(Rng, SplitStreamsIndependentish) {
  Rng a(9);
  Rng b = a.split();
  EXPECT_NE(a(), b());
}

TEST(Stats, MedianOddEven) {
  EXPECT_DOUBLE_EQ(median(std::vector<double>{3, 1, 2}), 2.0);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{4, 1, 3, 2}), 2.5);
  EXPECT_DOUBLE_EQ(median(std::vector<double>{7}), 7.0);
}

TEST(Stats, MeanStddev) {
  const std::vector<double> xs{2, 4, 4, 4, 5, 5, 7, 9};
  EXPECT_DOUBLE_EQ(mean(xs), 5.0);
  EXPECT_NEAR(stddev(xs), 2.138, 1e-3);
}

TEST(Stats, Percentile) {
  const std::vector<double> xs{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100), 5.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 25), 2.0);
}

TEST(Stats, SummaryMatchesPieces) {
  const std::vector<double> xs{1, 5, 3};
  const Summary s = summarize(xs);
  EXPECT_EQ(s.n, 3u);
  EXPECT_DOUBLE_EQ(s.mean, 3.0);
  EXPECT_DOUBLE_EQ(s.median, 3.0);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 5.0);
}

TEST(Stats, EmptyInputRejected) {
  EXPECT_THROW(mean(std::vector<double>{}), CheckError);
  EXPECT_THROW(median(std::vector<double>{}), CheckError);
}

TEST(Table, RendersAlignedColumns) {
  TextTable t("Title");
  t.setHeader({"name", "value"});
  t.addRow({"a", "1"});
  t.addRow({"long-name", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("Title"), std::string::npos);
  EXPECT_NE(out.find("| a         | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| long-name | 22    |"), std::string::npos);
}

TEST(Table, RowWidthMismatchRejected) {
  TextTable t;
  t.setHeader({"a", "b"});
  EXPECT_THROW(t.addRow({"only-one"}), CheckError);
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmtPercent(0.151, 1), "15.1%");
  EXPECT_EQ(fmtSeconds(1.5), "1.500 s");
  EXPECT_EQ(fmtSeconds(0.0015), "1.500 ms");
  EXPECT_EQ(fmtSeconds(0.0000015), "1.500 us");
}

} // namespace
} // namespace motune::support
