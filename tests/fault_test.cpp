// Fault-tolerant evaluation (src/tuning/fault.h): spec parsing, the
// deterministic injector, retry/backoff, timeouts, quarantine, graceful
// degradation to a fallback evaluator, and the fault.* metrics — plus an
// end-to-end search that survives injected faults without aborting.
#include "autotune/autotuner.h"
#include "core/testproblems.h"
#include "observe/metrics.h"
#include "support/check.h"
#include "tuning/fault.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <thread>

using namespace motune;

namespace {

/// Two-objective probe with scriptable behavior per configuration.
class Probe final : public tuning::ObjectiveFunction {
public:
  Probe() : space_{{"x", 0, 1000}} {}

  std::size_t numObjectives() const override { return 2; }
  const std::vector<tuning::ParamSpec>& space() const override {
    return space_;
  }

  tuning::Objectives evaluate(const tuning::Config& config) override {
    ++calls_;
    const std::int64_t x = config.front();
    if (x == kAlwaysFails)
      throw tuning::EvaluationFault("probe: configured failure");
    if (x == kHangs)
      std::this_thread::sleep_for(std::chrono::milliseconds(300));
    if (x == kFlaky && flakyRemaining_ > 0) {
      --flakyRemaining_;
      throw tuning::EvaluationFault("probe: transient failure");
    }
    return {static_cast<double>(x), static_cast<double>(1000 - x)};
  }

  static constexpr std::int64_t kAlwaysFails = 13;
  static constexpr std::int64_t kHangs = 14;
  static constexpr std::int64_t kFlaky = 15;

  int calls() const { return calls_; }
  void setFlakyFailures(int n) { flakyRemaining_ = n; }

private:
  std::vector<tuning::ParamSpec> space_;
  std::atomic<int> calls_{0};
  std::atomic<int> flakyRemaining_{0};
};

/// Always-working stand-in for the analytical model (degradation target).
class Fallback final : public tuning::ObjectiveFunction {
public:
  Fallback() : space_{{"x", 0, 1000}} {}
  std::size_t numObjectives() const override { return 2; }
  const std::vector<tuning::ParamSpec>& space() const override {
    return space_;
  }
  tuning::Objectives evaluate(const tuning::Config& config) override {
    ++calls_;
    return {static_cast<double>(config.front()) + 0.5, 99.0};
  }
  int calls() const { return calls_; }

private:
  std::vector<tuning::ParamSpec> space_;
  std::atomic<int> calls_{0};
};

std::uint64_t metric(const std::string& name) {
  return observe::MetricsRegistry::global().counter(name).value();
}

} // namespace

TEST(FaultSpec, ParsesTheDocumentedGrammar) {
  const tuning::FaultSpec spec =
      tuning::FaultSpec::parse("fail@17x2,hang@40:0.5,delay@*:0.004");
  ASSERT_EQ(spec.rules.size(), 3u);

  EXPECT_EQ(spec.rules[0].action, tuning::FaultRule::Action::Fail);
  EXPECT_EQ(spec.rules[0].first, 17u);
  EXPECT_EQ(spec.rules[0].count, 2u);
  EXPECT_TRUE(spec.rules[0].matches(17));
  EXPECT_TRUE(spec.rules[0].matches(18));
  EXPECT_FALSE(spec.rules[0].matches(19));

  EXPECT_EQ(spec.rules[1].action, tuning::FaultRule::Action::Hang);
  EXPECT_EQ(spec.rules[1].first, 40u);
  EXPECT_EQ(spec.rules[1].seconds, 0.5);
  EXPECT_FALSE(spec.rules[1].matches(39));

  EXPECT_EQ(spec.rules[2].action, tuning::FaultRule::Action::Delay);
  EXPECT_EQ(spec.rules[2].first, 0u) << "* = every call";
  EXPECT_TRUE(spec.rules[2].matches(1));
  EXPECT_TRUE(spec.rules[2].matches(123456));

  EXPECT_TRUE(tuning::FaultSpec::parse("").empty());
}

TEST(FaultSpec, RejectsMalformedRules) {
  EXPECT_THROW(tuning::FaultSpec::parse("explode@3"), support::CheckError);
  EXPECT_THROW(tuning::FaultSpec::parse("fail3"), support::CheckError);
  EXPECT_THROW(tuning::FaultSpec::parse("hang@5"), support::CheckError)
      << "hang needs a duration";
  EXPECT_THROW(tuning::FaultSpec::parse("fail@0"), support::CheckError)
      << "indices are 1-based";
}

TEST(FaultSpec, ReadsTheEnvironmentHook) {
  ::unsetenv("MOTUNE_FAULT_SPEC");
  EXPECT_FALSE(tuning::FaultSpec::fromEnv().has_value());
  ::setenv("MOTUNE_FAULT_SPEC", "fail@2", 1);
  const auto spec = tuning::FaultSpec::fromEnv();
  ::unsetenv("MOTUNE_FAULT_SPEC");
  ASSERT_TRUE(spec.has_value());
  EXPECT_EQ(spec->rules.size(), 1u);
}

TEST(FaultInjection, FailsExactlyTheDesignatedCalls) {
  Probe probe;
  tuning::FaultInjectingEvaluator inject(probe,
                                         tuning::FaultSpec::parse("fail@2x2"));
  EXPECT_NO_THROW(inject.evaluate({1}));
  EXPECT_THROW(inject.evaluate({2}), tuning::EvaluationFault);
  EXPECT_THROW(inject.evaluate({3}), tuning::EvaluationFault);
  EXPECT_NO_THROW(inject.evaluate({4}));
  EXPECT_EQ(inject.calls(), 4u);
  EXPECT_EQ(probe.calls(), 2) << "failed calls never reach the inner fn";
}

TEST(FaultTolerant, RetriesTransientFailuresWithBackoff) {
  observe::MetricsRegistry::global().reset();
  Probe probe;
  probe.setFlakyFailures(2);
  tuning::FaultPolicy policy;
  policy.enabled = true;
  policy.maxRetries = 2;
  policy.backoffSeconds = 0.001;
  tuning::FaultTolerantEvaluator tolerant(probe, policy);

  // "fail eval twice": attempts 1 and 2 throw, attempt 3 (second retry)
  // succeeds — no exception escapes, and the real value comes back.
  const tuning::Objectives result = tolerant.evaluate({Probe::kFlaky});
  EXPECT_EQ(result.front(), static_cast<double>(Probe::kFlaky));
  EXPECT_EQ(probe.calls(), 3);
  EXPECT_EQ(metric("fault.failures"), 2u);
  EXPECT_EQ(metric("fault.retries"), 2u);
  EXPECT_EQ(metric("fault.fallbacks"), 0u);
  EXPECT_EQ(tolerant.quarantinedCount(), 0u);
}

TEST(FaultTolerant, ExhaustionWithoutFallbackRethrows) {
  observe::MetricsRegistry::global().reset();
  Probe probe;
  tuning::FaultPolicy policy;
  policy.enabled = true;
  policy.maxRetries = 1;
  tuning::FaultTolerantEvaluator tolerant(probe, policy);
  EXPECT_THROW(tolerant.evaluate({Probe::kAlwaysFails}),
               tuning::EvaluationFault);
  EXPECT_EQ(probe.calls(), 2) << "one attempt + one retry";
  EXPECT_EQ(metric("fault.failures"), 2u);
}

TEST(FaultTolerant, DegradesToFallbackAndQuarantines) {
  observe::MetricsRegistry::global().reset();
  Probe probe;
  Fallback fallback;
  tuning::FaultPolicy policy;
  policy.enabled = true;
  policy.maxRetries = 0;
  policy.quarantineAfter = 2;
  tuning::FaultTolerantEvaluator tolerant(probe, policy, &fallback);

  // First two exhausted calls degrade to the fallback; the second one
  // crosses quarantineAfter.
  const tuning::Config bad{Probe::kAlwaysFails};
  EXPECT_EQ(tolerant.evaluate(bad).back(), 99.0);
  EXPECT_FALSE(tolerant.isQuarantined(bad));
  EXPECT_EQ(tolerant.evaluate(bad).back(), 99.0);
  EXPECT_TRUE(tolerant.isQuarantined(bad));
  EXPECT_EQ(tolerant.quarantinedCount(), 1u);
  EXPECT_EQ(metric("fault.quarantined"), 1u);

  // Quarantined configurations skip the primary entirely.
  const int primaryCalls = probe.calls();
  EXPECT_EQ(tolerant.evaluate(bad).back(), 99.0);
  EXPECT_EQ(probe.calls(), primaryCalls);
  EXPECT_EQ(metric("fault.quarantine_hits"), 1u);
  EXPECT_EQ(metric("fault.fallbacks"), 3u);

  // Healthy configurations are untouched by all of this.
  EXPECT_EQ(tolerant.evaluate({5}).front(), 5.0);
  EXPECT_EQ(fallback.calls(), 3);
}

TEST(FaultTolerant, TimeoutAbandonsHangingEvaluation) {
  observe::MetricsRegistry::global().reset();
  Probe probe;
  Fallback fallback;
  tuning::FaultPolicy policy;
  policy.enabled = true;
  policy.maxRetries = 0;
  policy.quarantineAfter = 1;
  policy.timeoutSeconds = 0.02; // the hanging probe sleeps 300 ms
  const auto start = std::chrono::steady_clock::now();
  {
    tuning::FaultTolerantEvaluator tolerant(probe, policy, &fallback);
    EXPECT_EQ(tolerant.evaluate({Probe::kHangs}).back(), 99.0);
    const double waited =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    EXPECT_LT(waited, 0.25) << "the caller must not wait out the hang";
    EXPECT_EQ(metric("fault.timeouts"), 1u);
    EXPECT_TRUE(tolerant.isQuarantined({Probe::kHangs}));
    // Fast evaluations under a timeout pay only the async dispatch.
    EXPECT_EQ(tolerant.evaluate({3}).front(), 3.0);
  } // destructor joins the abandoned attempt
  EXPECT_GE(probe.calls(), 2);
}

TEST(FaultTolerant, SearchSurvivesInjectedFaults) {
  // End to end: RS-GDE3 over a synthetic problem with the environment
  // fault hook failing three early evaluations — the run completes, the
  // failures are retried, and the outcome equals the fault-free run (the
  // retries succeed, so the same values flow back into the search).
  observe::MetricsRegistry::global().reset();
  autotune::TunerOptions options;
  options.gde3.seed = 11;
  options.gde3.maxGenerations = 6;

  opt::SyntheticProblem clean = opt::makeSchaffer();
  const opt::OptResult goldenResult =
      autotune::AutoTuner(options).optimize(clean);

  options.fault.enabled = true;
  options.fault.maxRetries = 2;
  ::setenv("MOTUNE_FAULT_SPEC", "fail@3,fail@10,fail@25", 1);
  opt::SyntheticProblem faulty = opt::makeSchaffer();
  const opt::OptResult survived =
      autotune::AutoTuner(options).optimize(faulty);
  ::unsetenv("MOTUNE_FAULT_SPEC");

  EXPECT_FALSE(survived.front.empty());
  EXPECT_EQ(survived.evaluations, goldenResult.evaluations);
  EXPECT_EQ(survived.generations, goldenResult.generations);
  EXPECT_GE(metric("fault.failures"), 3u);
  EXPECT_GE(metric("fault.retries"), 3u);
  EXPECT_EQ(metric("fault.quarantined"), 0u);
}

TEST(FaultTolerant, ThreadSafeUnderParallelEvaluation) {
  // The wrapper sits under the parallel BatchEvaluator in real runs; hammer
  // it from the pool with a mix of healthy and flaky configurations.
  observe::MetricsRegistry::global().reset();
  Probe probe;
  Fallback fallback;
  tuning::FaultPolicy policy;
  policy.enabled = true;
  policy.maxRetries = 0;
  policy.quarantineAfter = 1;
  tuning::FaultTolerantEvaluator tolerant(probe, policy, &fallback);

  runtime::ThreadPool pool(4);
  tuning::BatchEvaluator batch(tolerant, pool, /*parallel=*/true);
  std::vector<tuning::Config> configs;
  for (int round = 0; round < 8; ++round) {
    for (std::int64_t x = 1; x <= 8; ++x) configs.push_back({x});
    configs.push_back({Probe::kAlwaysFails});
  }
  const auto results = batch.evaluateAll(configs);
  ASSERT_EQ(results.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const double expected = configs[i].front() == Probe::kAlwaysFails
                                ? 99.0
                                : static_cast<double>(1000 -
                                                      configs[i].front());
    EXPECT_EQ(results[i].back(), expected) << i;
  }
  EXPECT_TRUE(tolerant.isQuarantined({Probe::kAlwaysFails}));
}
