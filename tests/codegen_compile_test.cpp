// Codegen hygiene: the C the backend emits must compile warning-free under
// -Wall -Wextra -Werror with the host compiler, for every built-in kernel,
// for transformed (tiled + parallelized) variants, and for the
// multi-versioned region module. Skips cleanly when no host C compiler is
// available.
#include "analyzer/region.h"
#include "codegen/cemit.h"
#include "kernels/kernel.h"
#include "verify/oracle.h" // hostCompiler()

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>

using namespace motune;
namespace fs = std::filesystem;

namespace {

class CodegenCompile : public ::testing::Test {
protected:
  void SetUp() override {
    if (verify::hostCompiler().empty())
      GTEST_SKIP() << "no host C compiler found";
    dir_ = fs::temp_directory_path() / "motune-codegen-compile-test";
    fs::create_directories(dir_);
  }

  /// Writes `code` and compiles it to an object file with the strict flag
  /// set. -fopenmp is required: -Wall turns on -Wunknown-pragmas and the
  /// emitted parallel loops carry omp pragmas.
  ::testing::AssertionResult compiles(const std::string& code,
                                      const std::string& tag) {
    const fs::path src = dir_ / (tag + ".c");
    const fs::path obj = dir_ / (tag + ".o");
    const fs::path err = dir_ / (tag + ".err");
    {
      std::ofstream out(src);
      out << code;
    }
    const std::string cmd = verify::hostCompiler() +
                            " -std=c11 -Wall -Wextra -Werror -fopenmp -c -o \"" +
                            obj.string() + "\" \"" + src.string() +
                            "\" 2> \"" + err.string() + "\"";
    if (std::system(cmd.c_str()) == 0) return ::testing::AssertionSuccess();
    std::ifstream in(err);
    std::string diagnostics((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    return ::testing::AssertionFailure()
           << tag << " failed to compile:\n" << diagnostics << "\n" << code;
  }

  fs::path dir_;
};

std::string sanitized(std::string name) {
  for (char& c : name)
    if (c == '-') c = '_';
  return name;
}

} // namespace

TEST_F(CodegenCompile, EveryBuiltinKernelCompilesWarningFree) {
  for (const auto& spec : kernels::allKernels()) {
    const ir::Program p = spec.buildIR(spec.testN);
    const std::string code =
        codegen::emitFunction(p, "kernel_" + sanitized(spec.name), true);
    EXPECT_TRUE(compiles(code, sanitized(spec.name)));
  }
}

TEST_F(CodegenCompile, TransformedVariantsCompileWarningFree) {
  // The tuner's own pathway: skeleton-instantiated (tiled + collapsed
  // parallel) versions of each kernel, pragmas on.
  for (const auto& spec : kernels::allKernels()) {
    const ir::Program p = spec.buildIR(spec.testN);
    const auto skeleton = analyzer::TransformationSkeleton::build(p, 4);
    std::vector<std::int64_t> values;
    for (const auto& param : skeleton.params())
      values.push_back(std::max<std::int64_t>(param.lo,
                                              std::min<std::int64_t>(2, param.hi)));
    const ir::Program tiled = skeleton.instantiate(values);
    const std::string code = codegen::emitFunction(
        tiled, "tiled_" + sanitized(spec.name), true);
    EXPECT_TRUE(compiles(code, "tiled_" + sanitized(spec.name)));
  }
}

TEST_F(CodegenCompile, MultiVersionModuleCompilesWarningFree) {
  const auto& spec = kernels::kernelByName("mm");
  const ir::Program p = spec.buildIR(spec.testN);
  const auto skeleton = analyzer::TransformationSkeleton::build(p, 4);
  std::vector<codegen::VersionDescriptor> versions;
  for (std::int64_t tile : {2, 4}) {
    codegen::VersionDescriptor v;
    std::vector<std::int64_t> values;
    for (const auto& param : skeleton.params())
      values.push_back(std::max<std::int64_t>(param.lo,
                                              std::min<std::int64_t>(tile, param.hi)));
    v.program = skeleton.instantiate(values);
    v.tileSizes.assign(values.begin(), values.end() - 1);
    v.threads = static_cast<int>(values.back());
    v.estTimeSeconds = 1.0;
    v.estResources = static_cast<double>(v.threads);
    versions.push_back(std::move(v));
  }
  const std::string module = codegen::emitMultiVersionModule("mm", versions);
  EXPECT_TRUE(compiles(module, "mm_module"));
}
