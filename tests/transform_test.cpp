#include "ir/interp.h"
#include "ir/print.h"
#include "kernels/kernel.h"
#include "support/check.h"
#include "support/rng.h"
#include "transform/transforms.h"

#include <gtest/gtest.h>

namespace motune::transform {
namespace {

/// Runs `program`, seeding every input array deterministically, and returns
/// the contents of `outputArray`.
std::vector<double> runProgram(const ir::Program& program,
                               const std::string& outputArray) {
  ir::Interpreter interp(program);
  std::uint64_t seed = 1;
  for (const auto& decl : program.arrays) {
    auto& data = interp.array(decl.name);
    support::Rng rng(seed++);
    for (auto& x : data) x = rng.uniform(-1.0, 1.0);
  }
  interp.run();
  return interp.array(outputArray);
}

/// The central legality property: a transformed program computes exactly
/// the same output as the original.
void expectSameSemantics(const ir::Program& original,
                         const ir::Program& transformed,
                         const std::string& outputArray) {
  const auto a = runProgram(original, outputArray);
  const auto b = runProgram(transformed, outputArray);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    ASSERT_DOUBLE_EQ(a[i], b[i]) << "element " << i;
}

TEST(Tile, StructureOfTiledNest) {
  const ir::Program mm = kernels::buildMM(10);
  const std::int64_t sizes[] = {4, 3, 5};
  const ir::Program tiled = tile(mm, sizes);
  const auto nest = perfectNest(tiled);
  ASSERT_EQ(nest.size(), 6u);
  EXPECT_EQ(nest[0]->iv, "i_t");
  EXPECT_EQ(nest[1]->iv, "j_t");
  EXPECT_EQ(nest[2]->iv, "k_t");
  EXPECT_EQ(nest[3]->iv, "i");
  EXPECT_EQ(nest[0]->step, 4);
  EXPECT_EQ(nest[1]->step, 3);
  EXPECT_TRUE(nest[3]->upper.cap.has_value()); // min(i_t + 4, 10)
}

struct TileCase {
  std::int64_t n;
  std::int64_t ti, tj, tk;
};

class MmTilingProperty : public ::testing::TestWithParam<TileCase> {};

TEST_P(MmTilingProperty, PreservesSemantics) {
  const auto [n, ti, tj, tk] = GetParam();
  const ir::Program mm = kernels::buildMM(n);
  const std::int64_t sizes[] = {ti, tj, tk};
  expectSameSemantics(mm, tile(mm, sizes), "C");
}

INSTANTIATE_TEST_SUITE_P(
    TileSizeSweep, MmTilingProperty,
    ::testing::Values(TileCase{7, 1, 1, 1}, TileCase{7, 2, 3, 4},
                      TileCase{7, 7, 7, 7}, TileCase{7, 9, 9, 9},
                      TileCase{12, 4, 4, 4}, TileCase{12, 5, 7, 11},
                      TileCase{13, 3, 13, 2}, TileCase{16, 8, 2, 16}));

class KernelTilingProperty
    : public ::testing::TestWithParam<std::pair<const char*, std::int64_t>> {};

TEST_P(KernelTilingProperty, AllKernelsTileCorrectly) {
  const auto [name, tileSize] = GetParam();
  const kernels::KernelSpec& spec = kernels::kernelByName(name);
  const ir::Program base = spec.buildIR(spec.testN);
  std::vector<std::int64_t> sizes(spec.tileDims, tileSize);
  const std::string output =
      spec.name == "mm" || spec.name == "dsyrk"
          ? "C"
          : (spec.name == "n-body" ? "FX" : "B");
  expectSameSemantics(base, tile(base, sizes), output);
}

INSTANTIATE_TEST_SUITE_P(
    AllKernels, KernelTilingProperty,
    ::testing::Values(std::make_pair("mm", 3), std::make_pair("mm", 5),
                      std::make_pair("dsyrk", 4), std::make_pair("dsyrk", 7),
                      std::make_pair("jacobi-2d", 3),
                      std::make_pair("jacobi-2d", 8),
                      std::make_pair("3d-stencil", 2),
                      std::make_pair("3d-stencil", 5),
                      std::make_pair("n-body", 4),
                      std::make_pair("n-body", 16)));

TEST(Tile, RandomizedPropertySweep) {
  support::Rng rng(2024);
  for (int trial = 0; trial < 20; ++trial) {
    const std::int64_t n = rng.uniformInt(3, 14);
    const ir::Program mm = kernels::buildMM(n);
    const std::int64_t sizes[] = {rng.uniformInt(1, n + 2),
                                  rng.uniformInt(1, n + 2),
                                  rng.uniformInt(1, n + 2)};
    expectSameSemantics(mm, tile(mm, sizes), "C");
  }
}

TEST(Tile, RejectsOversizedBand) {
  const ir::Program j2 = kernels::buildJacobi2d(8); // depth 2
  const std::int64_t sizes[] = {2, 2, 2};
  EXPECT_THROW(tile(j2, sizes), support::CheckError);
}

TEST(Tile, RejectsDoubleTiling) {
  const ir::Program mm = kernels::buildMM(8);
  const std::int64_t sizes[] = {2, 2, 2};
  const ir::Program tiled = tile(mm, sizes);
  EXPECT_THROW(tile(tiled, sizes), support::CheckError);
}

TEST(Tile, RejectsNonPositiveSizes) {
  const ir::Program mm = kernels::buildMM(8);
  const std::int64_t sizes[] = {2, 0, 2};
  EXPECT_THROW(tile(mm, sizes), support::CheckError);
}

TEST(Interchange, SwapLoopsPreservesMm) {
  const ir::Program mm = kernels::buildMM(9);
  const int perm[] = {1, 0, 2}; // JIK
  expectSameSemantics(mm, interchange(mm, perm), "C");
}

TEST(Interchange, FullReversalPreservesMm) {
  const ir::Program mm = kernels::buildMM(8);
  const int perm[] = {2, 1, 0}; // KJI
  const ir::Program kji = interchange(mm, perm);
  EXPECT_EQ(perfectNest(kji)[0]->iv, "k");
  expectSameSemantics(mm, kji, "C");
}

TEST(Interchange, RejectsInvalidPermutation) {
  const ir::Program mm = kernels::buildMM(8);
  const int perm[] = {0, 0, 2};
  EXPECT_THROW(interchange(mm, perm), support::CheckError);
}

class UnrollProperty : public ::testing::TestWithParam<int> {};

TEST_P(UnrollProperty, PreservesSemanticsWithRemainder) {
  const int factor = GetParam();
  const ir::Program mm = kernels::buildMM(10); // 10 % {2,3,4,7} != 0 mostly
  expectSameSemantics(mm, unrollInnermost(mm, factor), "C");
}

INSTANTIATE_TEST_SUITE_P(Factors, UnrollProperty,
                         ::testing::Values(1, 2, 3, 4, 7, 10, 13));

TEST(Unroll, ReplicatesBody) {
  const ir::Program mm = kernels::buildMM(8);
  const ir::Program unrolled = unrollInnermost(mm, 4);
  // The innermost loop's parent now holds main + remainder loops.
  const auto nest = perfectNest(unrolled);
  ASSERT_EQ(nest.size(), 2u); // nest breaks at the split point
  const ir::Loop& j = *nest.back();
  ASSERT_EQ(j.body.size(), 2u);
  EXPECT_EQ(j.body[0]->loop.step, 4);
  EXPECT_EQ(j.body[0]->loop.body.size(), 4u);
  EXPECT_EQ(j.body[1]->loop.step, 1);
}

TEST(Parallelize, MarksOuterLoop) {
  const ir::Program mm = kernels::buildMM(8);
  const std::int64_t sizes[] = {2, 2, 2};
  const ir::Program par = parallelizeOuter(tile(mm, sizes), 2);
  EXPECT_TRUE(par.rootLoop().parallel);
  EXPECT_EQ(par.rootLoop().collapse, 2);
  // Parallel markers don't change sequential semantics.
  expectSameSemantics(mm, par, "C");
}

TEST(PerfectNest, DepthComputation) {
  EXPECT_EQ(perfectNestDepth(kernels::buildMM(4)), 3u);
  EXPECT_EQ(perfectNestDepth(kernels::buildJacobi2d(5)), 2u);
  EXPECT_EQ(perfectNestDepth(kernels::buildNBody(4)), 2u);
  EXPECT_EQ(perfectNestDepth(kernels::buildStencil3d(5)), 3u);
}

} // namespace
} // namespace motune::transform
