#include "cachesim/hierarchy.h"
#include "ir/interp.h"
#include "kernels/kernel.h"
#include "machine/machine.h"
#include "perfmodel/costmodel.h"
#include "perfmodel/footprint.h"
#include "transform/transforms.h"

#include <gtest/gtest.h>

namespace motune::perf {
namespace {

using machine::barcelona;
using machine::westmere;

ir::Program tiledMM(std::int64_t n, std::int64_t ti, std::int64_t tj,
                    std::int64_t tk) {
  const std::int64_t sizes[] = {ti, tj, tk};
  return transform::parallelizeOuter(
      transform::tile(kernels::buildMM(n), sizes), 2);
}

TEST(NestAnalysis, TripCountsExactForTiledLoops) {
  // N = 10, tiles (4, 3, 5): tile trips = (3, 4, 2); avg point trips =
  // 10/3, 10/4, 5.
  const ir::Program prog = tiledMM(10, 4, 3, 5);
  const NestAnalysis na = analyzeNest(prog);
  ASSERT_EQ(na.loops.size(), 6u);
  EXPECT_DOUBLE_EQ(na.loops[0].avgTrip, 3.0);
  EXPECT_DOUBLE_EQ(na.loops[1].avgTrip, 4.0);
  EXPECT_DOUBLE_EQ(na.loops[2].avgTrip, 2.0);
  EXPECT_DOUBLE_EQ(na.loops[3].avgTrip, 10.0 / 3.0);
  EXPECT_DOUBLE_EQ(na.loops[4].avgTrip, 10.0 / 4.0);
  EXPECT_DOUBLE_EQ(na.loops[5].avgTrip, 5.0);
  // Product of avgTrips = exact iteration count.
  EXPECT_NEAR(na.leafIterations(), 1000.0, 1e-9);
}

TEST(NestAnalysis, OperationCounts) {
  const NestAnalysis na = analyzeNest(kernels::buildMM(8));
  EXPECT_DOUBLE_EQ(na.flopsPerIter, 2.0);      // multiply + accumulate
  EXPECT_DOUBLE_EQ(na.heavyOpsPerIter, 0.0);
  EXPECT_DOUBLE_EQ(na.memAccessesPerIter, 4.0); // A, B, C read, C write

  const NestAnalysis nb = analyzeNest(kernels::buildNBody(8));
  EXPECT_GT(nb.heavyOpsPerIter, 0.0); // sqrt + divide
}

TEST(NestAnalysis, VectorizabilityDetection) {
  // mm IJK: B[k][j] is strided in the innermost k loop -> not unit-stride.
  EXPECT_FALSE(analyzeNest(kernels::buildMM(8)).innermostUnitStride);
  // jacobi-2d: innermost j accesses are all stride 0/1 -> vectorizable.
  EXPECT_TRUE(analyzeNest(kernels::buildJacobi2d(8)).innermostUnitStride);
}

TEST(Footprint, UntiledMmExactValues) {
  const ir::Program mm = kernels::buildMM(100);
  const NestAnalysis na = analyzeNest(mm);
  // Leaf (level 3): one line each of A, B, C.
  EXPECT_DOUBLE_EQ(totalFootprintBytes(na, 3, 64), 3 * 64.0);
  // Level 2 (k varies): A row (100*8 = 800B), B column (100 lines), C line.
  EXPECT_DOUBLE_EQ(footprintBytes(na, 0, 2, 64), 832.0); // A: ceil(800/64)*64
  EXPECT_DOUBLE_EQ(footprintBytes(na, 1, 2, 64), 6400.0); // B: 100 * 64
  EXPECT_DOUBLE_EQ(footprintBytes(na, 2, 2, 64), 64.0);   // C: one line
  // Level 0: everything = all three arrays.
  EXPECT_NEAR(totalFootprintBytes(na, 0, 64), 3 * 100 * 100 * 8.0, 3 * 6400.0);
}

TEST(Footprint, TiledMmTileTriple) {
  // Tiles (8, 8, 8) on N=64: at the first point-loop level (i, j, k vary),
  // footprint = A tile 8x8 + B tile 8x8 + C tile 8x8, line-granular.
  const ir::Program prog = tiledMM(64, 8, 8, 8);
  const NestAnalysis na = analyzeNest(prog);
  const double fp = totalFootprintBytes(na, 3, 64);
  EXPECT_DOUBLE_EQ(fp, 3 * 8 * 64.0); // 3 tiles of 8 rows x one 64B line
}

TEST(Footprint, StencilHaloCounted) {
  const ir::Program j2 = kernels::buildJacobi2d(66);
  const std::int64_t sizes[] = {8, 8};
  const ir::Program tiled = transform::tile(j2, sizes);
  const NestAnalysis na = analyzeNest(tiled);
  // At the point level, A's footprint covers (8+2) rows of the halo'd tile.
  const double a = footprintBytes(na, 0, 2, 64);
  const double b = footprintBytes(na, 1, 2, 64);
  EXPECT_DOUBLE_EQ(a, 10 * 128.0); // 10 rows x (10*8B -> 2 lines)
  EXPECT_DOUBLE_EQ(b, 8 * 64.0);   // 8 rows x (8*8B -> 1 line)
}

TEST(Footprint, ClampedToArraySize) {
  const ir::Program nb = kernels::buildNBody(128);
  const NestAnalysis na = analyzeNest(nb);
  // X is read as X[i] and X[j]; the union never exceeds the array itself.
  EXPECT_LE(footprintBytes(na, 0, 0, 64), 128 * 8.0 + 64.0);
}

TEST(CostModel, TilingBeatsUntiledSerial) {
  const CostModel model(westmere());
  const double untiled = model.predict(kernels::buildMM(1400), 1).seconds;
  const double tiled = model.predict(tiledMM(1400, 64, 48, 32), 1).seconds;
  EXPECT_GT(untiled, 3.0 * tiled); // the paper's "enormous potential"
}

TEST(CostModel, SpeedupSaturatesAndEfficiencyDrops) {
  const CostModel model(westmere());
  const ir::Program prog = tiledMM(1400, 96, 48, 32);
  const NestAnalysis na = analyzeNest(prog);
  double prevTime = 1e30;
  double prevEff = 2.0;
  const double t1 = model.predictAnalyzed(na, 1).seconds;
  for (int p : {1, 5, 10, 20, 40}) {
    const Prediction pred = model.predictAnalyzed(na, p);
    EXPECT_LT(pred.seconds, prevTime); // more threads still help...
    const double eff = t1 / (p * pred.seconds);
    EXPECT_LT(eff, prevEff + 1e-12); // ...but efficiency never improves
    prevTime = pred.seconds;
    prevEff = eff;
  }
  // At full machine scale the efficiency loss is substantial (Table III).
  EXPECT_LT(prevEff, 0.85);
  EXPECT_GT(prevEff, 0.35);
}

TEST(CostModel, OptimalTileDependsOnThreadCount) {
  // The paper's central observation (Fig. 2): sweep a small tile grid at
  // p=1 and p=32 on Barcelona and require distinct optima.
  const CostModel model(barcelona());
  auto bestTile = [&](int threads) {
    double best = 1e300;
    std::vector<std::int64_t> arg;
    for (std::int64_t ti : {16, 32, 64, 128, 256, 512})
      for (std::int64_t tj : {16, 32, 64, 128, 256, 512})
        for (std::int64_t tk : {16, 32, 64}) {
          const double t =
              model.predict(tiledMM(1400, ti, tj, tk), threads).seconds;
          if (t < best) {
            best = t;
            arg = {ti, tj, tk};
          }
        }
    return arg;
  };
  EXPECT_NE(bestTile(1), bestTile(32));
}

TEST(CostModel, SharedCacheShrinksWithThreadsRaisesDramTraffic) {
  const CostModel model(barcelona());
  const ir::Program prog = tiledMM(1400, 256, 256, 32);
  const NestAnalysis na = analyzeNest(prog);
  const auto t1 = model.predictAnalyzed(na, 1);
  const auto t4 = model.predictAnalyzed(na, 4);
  // Machine-wide DRAM traffic grows when four threads split the 2MB L3.
  EXPECT_GT(t4.trafficBytes.back(), t1.trafficBytes.back() * 1.2);
}

TEST(CostModel, ImbalancePenalizesHugeTiles) {
  const CostModel model(westmere());
  // Tiles of 700 on N=1400 leave a 2x2 chunk grid for 40 threads.
  const Prediction pred = model.predict(tiledMM(1400, 700, 700, 64), 40);
  EXPECT_DOUBLE_EQ(pred.imbalance, 1.0); // 4 chunks on 4 effective threads
  const Prediction pred2 = model.predict(tiledMM(1400, 200, 200, 64), 40);
  EXPECT_GE(pred2.imbalance, 1.0);
  // But the huge-tile version must be much slower overall at p=40.
  EXPECT_GT(pred.seconds, pred2.seconds);
}

TEST(CostModel, ResourcesEqualThreadsTimesSeconds) {
  const CostModel model(westmere());
  const Prediction pred = model.predict(tiledMM(256, 16, 16, 16), 8);
  EXPECT_DOUBLE_EQ(pred.resources, 8.0 * pred.seconds);
}

TEST(CostModel, DeterministicNoiseIsBounded) {
  CostParams params;
  params.noiseAmplitude = 0.05;
  const CostModel noisy(westmere(), params);
  const CostModel clean(westmere());
  const ir::Program prog = tiledMM(256, 16, 16, 16);
  const double a = noisy.predict(prog, 4).seconds;
  const double b = noisy.predict(prog, 4).seconds;
  const double ref = clean.predict(prog, 4).seconds;
  EXPECT_DOUBLE_EQ(a, b); // deterministic
  EXPECT_NEAR(a, ref, 0.05 * ref + 1e-12);
}

/// Cross-validation against the trace-driven simulator: the analytical
/// model's DRAM-traffic ordering between a good and a bad tiling must match
/// the simulated miss counts on a miniature machine/problem.
TEST(CostModel, AgreesWithCacheSimulatorOnTileOrdering) {
  // The mini machine's last level must be smaller than one array of the
  // mini problem (48x48x8B = 18K), so the bad tiling genuinely thrashes.
  machine::MachineModel mini = westmere();
  mini.caches[0].capacityBytes = 1 * 1024;
  mini.caches[1].capacityBytes = 4 * 1024;
  mini.caches[2].capacityBytes = 8 * 1024;
  mini.caches[2].associativity = 16; // keep lines divisible by ways

  const std::int64_t n = 48;
  auto simulatedDram = [&](std::int64_t t) {
    const std::int64_t sizes[] = {t, t, t};
    const ir::Program prog = transform::tile(kernels::buildMM(n), sizes);
    ir::Interpreter interp(prog);
    cachesim::Hierarchy hierarchy(mini, 1);
    interp.setTrace([&](std::uint64_t addr, int bytes, bool w) {
      hierarchy.access(addr, bytes, w);
    });
    interp.run();
    return hierarchy.dramBytes();
  };
  auto modeledDram = [&](std::int64_t t) {
    const CostModel model(mini);
    const std::int64_t sizes[] = {t, t, t};
    const ir::Program prog = transform::tile(kernels::buildMM(n), sizes);
    return model.predict(prog, 1).trafficBytes.back();
  };

  // A well-chosen tile (fits the mini L3) vs. a terrible one.
  const double simGood = static_cast<double>(simulatedDram(8));
  const double simBad = static_cast<double>(simulatedDram(48));
  const double modGood = modeledDram(8);
  const double modBad = modeledDram(48);
  EXPECT_LT(simGood, simBad);
  EXPECT_LT(modGood, modBad);
  // Magnitudes agree within an order of magnitude (the model is
  // conservative about the usable cache fraction).
  EXPECT_LT(modGood / simGood, 8.0);
  EXPECT_GT(modGood / simGood, 0.125);
}

} // namespace
} // namespace motune::perf
