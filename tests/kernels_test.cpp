#include "ir/interp.h"
#include "kernels/kernel.h"
#include "kernels/native.h"
#include "runtime/thread_pool.h"
#include "support/check.h"

#include <gtest/gtest.h>

#include <cmath>

namespace motune::kernels {
namespace {

runtime::ThreadPool& pool() {
  static runtime::ThreadPool p(4);
  return p;
}

struct NativeCase {
  std::int64_t ti, tj, tk;
  int threads;
};

class MmNative : public ::testing::TestWithParam<NativeCase> {};

TEST_P(MmNative, TiledMatchesReferenceBitExact) {
  const auto [ti, tj, tk, threads] = GetParam();
  const std::int64_t n = 33;
  std::vector<double> a(n * n), b(n * n), cRef(n * n, 0.0), cTiled(n * n, 0.0);
  fillDeterministic(a, 1);
  fillDeterministic(b, 2);
  mmReference(a.data(), b.data(), cRef.data(), n);
  mmTiled(a.data(), b.data(), cTiled.data(), n, {ti, tj, tk}, threads, pool());
  for (std::size_t i = 0; i < cRef.size(); ++i)
    ASSERT_EQ(cRef[i], cTiled[i]) << "element " << i;
}

INSTANTIATE_TEST_SUITE_P(
    TileAndThreadSweep, MmNative,
    ::testing::Values(NativeCase{1, 1, 1, 1}, NativeCase{8, 8, 8, 1},
                      NativeCase{33, 33, 33, 1}, NativeCase{40, 40, 40, 2},
                      NativeCase{5, 7, 11, 3}, NativeCase{16, 4, 32, 4},
                      NativeCase{2, 33, 3, 8}));

class DsyrkNative : public ::testing::TestWithParam<NativeCase> {};

TEST_P(DsyrkNative, TiledMatchesReferenceBitExact) {
  const auto [ti, tj, tk, threads] = GetParam();
  const std::int64_t n = 29;
  std::vector<double> a(n * n), cRef(n * n, 0.0), cTiled(n * n, 0.0);
  fillDeterministic(a, 3);
  dsyrkReference(a.data(), cRef.data(), n);
  dsyrkTiled(a.data(), cTiled.data(), n, {ti, tj, tk}, threads, pool());
  for (std::size_t i = 0; i < cRef.size(); ++i)
    ASSERT_EQ(cRef[i], cTiled[i]);
}

INSTANTIATE_TEST_SUITE_P(TileAndThreadSweep, DsyrkNative,
                         ::testing::Values(NativeCase{4, 4, 4, 1},
                                           NativeCase{29, 29, 29, 2},
                                           NativeCase{3, 10, 7, 4}));

class Jacobi2dNative
    : public ::testing::TestWithParam<std::pair<Tile2, int>> {};

TEST_P(Jacobi2dNative, TiledMatchesReferenceBitExact) {
  const auto [tile, threads] = GetParam();
  const std::int64_t n = 41;
  std::vector<double> a(n * n), bRef(n * n, 0.0), bTiled(n * n, 0.0);
  fillDeterministic(a, 4);
  jacobi2dReference(a.data(), bRef.data(), n);
  jacobi2dTiled(a.data(), bTiled.data(), n, tile, threads, pool());
  for (std::size_t i = 0; i < bRef.size(); ++i)
    ASSERT_EQ(bRef[i], bTiled[i]);
}

INSTANTIATE_TEST_SUITE_P(
    TileAndThreadSweep, Jacobi2dNative,
    ::testing::Values(std::make_pair(Tile2{1, 1}, 1),
                      std::make_pair(Tile2{8, 8}, 2),
                      std::make_pair(Tile2{39, 39}, 1),
                      std::make_pair(Tile2{5, 13}, 4),
                      std::make_pair(Tile2{64, 3}, 3)));

TEST(Stencil3dNative, TiledMatchesReferenceBitExact) {
  const std::int64_t n = 17;
  std::vector<double> a(n * n * n), bRef(n * n * n, 0.0),
      bTiled(n * n * n, 0.0);
  fillDeterministic(a, 5);
  stencil3dReference(a.data(), bRef.data(), n);
  for (const Tile3 t : {Tile3{1, 1, 1}, Tile3{4, 4, 4}, Tile3{15, 2, 7}}) {
    std::fill(bTiled.begin(), bTiled.end(), 0.0);
    stencil3dTiled(a.data(), bTiled.data(), n, t, 3, pool());
    for (std::size_t i = 0; i < bRef.size(); ++i)
      ASSERT_EQ(bRef[i], bTiled[i]);
  }
}

TEST(NBodyNative, TiledMatchesReferenceBitExact) {
  const std::size_t n = 150;
  Bodies ref(n), tiled(n);
  fillDeterministic(ref.x, 1);
  fillDeterministic(ref.y, 2);
  fillDeterministic(ref.z, 3);
  tiled.x = ref.x;
  tiled.y = ref.y;
  tiled.z = ref.z;
  nbodyReference(ref);
  for (const Tile2 t : {Tile2{1, 1}, Tile2{16, 16}, Tile2{150, 7}}) {
    std::fill(tiled.fx.begin(), tiled.fx.end(), 0.0);
    std::fill(tiled.fy.begin(), tiled.fy.end(), 0.0);
    std::fill(tiled.fz.begin(), tiled.fz.end(), 0.0);
    nbodyTiled(tiled, t, 4, pool());
    for (std::size_t i = 0; i < n; ++i) {
      ASSERT_EQ(ref.fx[i], tiled.fx[i]);
      ASSERT_EQ(ref.fy[i], tiled.fy[i]);
      ASSERT_EQ(ref.fz[i], tiled.fz[i]);
    }
  }
}

TEST(NBodyNative, ForcesAreFinite) {
  const std::size_t n = 32;
  Bodies bodies(n);
  fillDeterministic(bodies.x, 7);
  fillDeterministic(bodies.y, 8);
  fillDeterministic(bodies.z, 9);
  nbodyReference(bodies);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_TRUE(std::isfinite(bodies.fx[i]));
    EXPECT_TRUE(std::isfinite(bodies.fy[i]));
    EXPECT_TRUE(std::isfinite(bodies.fz[i]));
  }
}

/// The IR builders and the native references describe the same computation.
TEST(IrVsNative, MmAgree) {
  const std::int64_t n = 9;
  ir::Interpreter interp(buildMM(n));
  std::vector<double> a(n * n), b(n * n), c(n * n, 0.0);
  fillDeterministic(a, 1);
  fillDeterministic(b, 2);
  interp.array("A") = a;
  interp.array("B") = b;
  interp.run();
  mmReference(a.data(), b.data(), c.data(), n);
  const auto& cIr = interp.array("C");
  for (std::size_t i = 0; i < c.size(); ++i) ASSERT_EQ(c[i], cIr[i]);
}

TEST(IrVsNative, Jacobi2dAgree) {
  const std::int64_t n = 12;
  ir::Interpreter interp(buildJacobi2d(n));
  std::vector<double> a(n * n), b(n * n, 0.0);
  fillDeterministic(a, 6);
  interp.array("A") = a;
  interp.run();
  jacobi2dReference(a.data(), b.data(), n);
  const auto& bIr = interp.array("B");
  for (std::size_t i = 0; i < b.size(); ++i) ASSERT_EQ(b[i], bIr[i]);
}

TEST(IrVsNative, Stencil3dAgree) {
  const std::int64_t n = 8;
  ir::Interpreter interp(buildStencil3d(n));
  std::vector<double> a(n * n * n), b(n * n * n, 0.0);
  fillDeterministic(a, 7);
  interp.array("A") = a;
  interp.run();
  stencil3dReference(a.data(), b.data(), n);
  const auto& bIr = interp.array("B");
  for (std::size_t i = 0; i < b.size(); ++i)
    ASSERT_NEAR(b[i], bIr[i], 1e-12); // summation order differs slightly
}

TEST(IrVsNative, NBodyAgree) {
  const std::size_t n = 40;
  ir::Interpreter interp(buildNBody(static_cast<std::int64_t>(n)));
  Bodies bodies(n);
  fillDeterministic(bodies.x, 1);
  fillDeterministic(bodies.y, 2);
  fillDeterministic(bodies.z, 3);
  interp.array("X") = bodies.x;
  interp.array("Y") = bodies.y;
  interp.array("Z") = bodies.z;
  interp.run();
  nbodyReference(bodies);
  const auto& fx = interp.array("FX");
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_NEAR(bodies.fx[i], fx[i], 1e-9 * std::abs(bodies.fx[i]) + 1e-15);
}

TEST(Registry, FiveKernelsWithTableIVComplexities) {
  const auto& all = allKernels();
  ASSERT_EQ(all.size(), 5u);
  EXPECT_EQ(all[0].name, "mm");
  EXPECT_EQ(all[0].computeComplexity, "O(N^3)");
  EXPECT_EQ(all[0].memoryComplexity, "O(N^2)");
  EXPECT_EQ(kernelByName("n-body").memoryComplexity, "O(N)");
  EXPECT_EQ(kernelByName("3d-stencil").tileDims, 3u);
  EXPECT_EQ(kernelByName("jacobi-2d").tileDims, 2u);
  EXPECT_THROW(kernelByName("does-not-exist"), support::CheckError);
}

TEST(Registry, PaperProblemSizes) {
  EXPECT_EQ(kernelByName("mm").paperN, 1400);
  EXPECT_EQ(kernelByName("dsyrk").paperN, 1400);
  // n-body working set must straddle the two machines' L3 sizes
  // (fits 30 MB Westmere, exceeds 2 MB Barcelona — paper §V.C).
  const std::int64_t bytes = 6 * 8 * kernelByName("n-body").paperN;
  EXPECT_LT(bytes, 30 * 1024 * 1024);
  EXPECT_GT(bytes, 2 * 1024 * 1024);
}

} // namespace
} // namespace motune::kernels
