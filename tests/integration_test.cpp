// End-to-end tests across the full pipeline (paper Fig. 3, labels 1-6):
// kernel IR -> analysis -> RS-GDE3 tuning on the machine model -> Pareto
// set -> multi-version table -> runtime policy selection -> execution of
// the real tiled kernels.
#include "autotune/autotuner.h"
#include "autotune/backend.h"
#include "kernels/kernel.h"
#include "kernels/native.h"
#include "machine/machine.h"
#include "runtime/region.h"

#include <gtest/gtest.h>

namespace motune {
namespace {

autotune::TuningResult tuneSmallMM(autotune::Algorithm algo,
                                   tuning::KernelTuningProblem& problem) {
  autotune::TunerOptions options;
  options.algorithm = algo;
  options.gde3.population = 30; // the paper's population size
  options.gde3.maxGenerations = 40;
  options.gde3.noImproveLimit = 4;
  options.gde3.seed = 12;
  options.randomBudget = 400;
  options.evaluationWorkers = 2;
  autotune::AutoTuner tuner(options);
  return tuner.tune(problem);
}

TEST(EndToEnd, RsGde3ProducesUsableParetoSet) {
  tuning::KernelTuningProblem problem(kernels::kernelByName("mm"),
                                      machine::westmere());
  const autotune::TuningResult result =
      tuneSmallMM(autotune::Algorithm::RSGDE3, problem);

  ASSERT_GE(result.front.size(), 3u); // multiple trade-off points
  EXPECT_GT(result.evaluations, 0u);
  EXPECT_GT(result.hypervolume, 0.3);
  EXPECT_LE(result.hypervolume, 1.0);

  // Front sorted by time, mutually non-dominated, and spanning thread
  // counts (the whole point of parallelism-aware multi-versioning).
  for (std::size_t i = 1; i < result.front.size(); ++i) {
    EXPECT_LE(result.front[i - 1].timeSeconds, result.front[i].timeSeconds);
    EXPECT_GE(result.front[i].threads, 1);
  }
  EXPECT_GT(result.front.front().threads, result.front.back().threads);

  // Versions beat the untiled serial baseline on time.
  EXPECT_LT(result.front.front().timeSeconds, result.timeRef);
}

TEST(EndToEnd, EvaluationBudgetFarBelowBruteForce) {
  tuning::KernelTuningProblem problem(kernels::kernelByName("mm"),
                                      machine::westmere());
  const autotune::TuningResult result =
      tuneSmallMM(autotune::Algorithm::RSGDE3, problem);
  // Paper Table VI: RS-GDE3 evaluates ~1% of the brute-force grid (~70k).
  EXPECT_LT(result.evaluations, 5000u);
}

TEST(EndToEnd, RsGde3BeatsRandomAtEqualBudget) {
  tuning::KernelTuningProblem p1(kernels::kernelByName("mm"),
                                 machine::westmere());
  const autotune::TuningResult rs =
      tuneSmallMM(autotune::Algorithm::RSGDE3, p1);

  tuning::KernelTuningProblem p2(kernels::kernelByName("mm"),
                                 machine::westmere());
  autotune::TunerOptions options;
  options.algorithm = autotune::Algorithm::Random;
  options.randomBudget = rs.evaluations;
  options.evaluationWorkers = 2;
  autotune::AutoTuner tuner(options);
  const autotune::TuningResult rand = tuner.tune(p2);

  EXPECT_GT(rs.hypervolume, rand.hypervolume);
}

TEST(EndToEnd, VersionTableExecutesRealKernels) {
  tuning::KernelTuningProblem problem(kernels::kernelByName("mm"),
                                      machine::westmere(), 96);
  const autotune::TuningResult result =
      tuneSmallMM(autotune::Algorithm::RSGDE3, problem);

  runtime::ThreadPool pool(2);
  mv::VersionTable table =
      autotune::buildVersionTable(result, problem, pool, /*nativeN=*/48);
  ASSERT_EQ(table.size(), result.front.size());

  runtime::Region region(table);
  runtime::WeightedSumPolicy fastestPolicy(1, 0);
  runtime::WeightedSumPolicy thriftyPolicy(0, 1);
  const std::size_t fast = region.invoke(fastestPolicy);
  const std::size_t thrifty = region.invoke(thriftyPolicy);
  EXPECT_EQ(region.totalInvocations(), 2u);
  EXPECT_LE(table[fast].meta.timeSeconds, table[thrifty].meta.timeSeconds);
}

TEST(EndToEnd, VersionTableResultsCorrectAcrossVersions) {
  // Every version of the table must compute the same C as the reference.
  const std::int64_t n = 40;
  tuning::KernelTuningProblem problem(kernels::kernelByName("mm"),
                                      machine::westmere(), 96);
  const autotune::TuningResult result =
      tuneSmallMM(autotune::Algorithm::RSGDE3, problem);

  std::vector<double> a(n * n), b(n * n), cRef(n * n, 0.0);
  kernels::fillDeterministic(a, 1);
  kernels::fillDeterministic(b, 2);
  kernels::mmReference(a.data(), b.data(), cRef.data(), n);

  runtime::ThreadPool pool(2);
  for (const mv::VersionMeta& meta : result.front) {
    std::vector<double> c(n * n, 0.0);
    const auto t = [&](std::size_t i) {
      return std::min<std::int64_t>(std::max<std::int64_t>(
                                        meta.tileSizes[i], 1),
                                    n);
    };
    kernels::mmTiled(a.data(), b.data(), c.data(), n, {t(0), t(1), t(2)},
                     meta.threads, pool);
    for (std::size_t i = 0; i < cRef.size(); ++i) ASSERT_EQ(cRef[i], c[i]);
  }
}

TEST(EndToEnd, MultiVersionedCModuleEmitted) {
  tuning::KernelTuningProblem problem(kernels::kernelByName("mm"),
                                      machine::westmere(), 128);
  const autotune::TuningResult result =
      tuneSmallMM(autotune::Algorithm::RSGDE3, problem);
  const std::string module = autotune::emitMultiVersionedC(result, problem);
  EXPECT_NE(module.find("mm_versions[]"), std::string::npos);
  EXPECT_NE(module.find("#pragma omp parallel for collapse(2)"),
            std::string::npos);
  EXPECT_NE(module.find("num_threads"), std::string::npos);
  // One function per Pareto point.
  std::size_t count = 0;
  for (std::size_t pos = module.find("static void mm_v");
       pos != std::string::npos;
       pos = module.find("static void mm_v", pos + 1))
    ++count;
  EXPECT_EQ(count, result.front.size());
}

TEST(EndToEnd, AllFiveKernelsTuneSuccessfully) {
  for (const auto& spec : kernels::allKernels()) {
    // Small instances keep this test quick; jacobi-2d needs N >= 6 so the
    // interior trip count supports tiling.
    const std::int64_t n = spec.name == "n-body" ? 256 : 64;
    tuning::KernelTuningProblem problem(spec, machine::barcelona(), n);
    autotune::TunerOptions options;
    options.gde3.population = 12;
    options.gde3.maxGenerations = 10;
    options.gde3.noImproveLimit = 3;
    options.evaluationWorkers = 2;
    autotune::AutoTuner tuner(options);
    const autotune::TuningResult result = tuner.tune(problem);
    EXPECT_FALSE(result.front.empty()) << spec.name;
    EXPECT_GT(result.hypervolume, 0.0) << spec.name;
  }
}

TEST(EndToEnd, ThreadCapPolicyAdaptsToLoad) {
  // The runtime scenario of the paper's §III.A label 6: a scheduler caps
  // the region's thread usage as external load arrives.
  tuning::KernelTuningProblem problem(kernels::kernelByName("mm"),
                                      machine::westmere());
  const autotune::TuningResult result =
      tuneSmallMM(autotune::Algorithm::RSGDE3, problem);
  runtime::ThreadPool pool(2);
  mv::VersionTable table =
      autotune::buildVersionTable(result, problem, pool, 48);

  int lastThreads = 1 << 30;
  for (int cap : {40, 10, 2, 1}) {
    const std::size_t pick = runtime::ThreadCapPolicy(cap).select(table);
    EXPECT_LE(table[pick].meta.threads, std::max(cap, lastThreads));
    lastThreads = table[pick].meta.threads;
  }
}

} // namespace
} // namespace motune
