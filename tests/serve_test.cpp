// The tuning daemon (src/serve/): protocol framing (partial reads,
// pipelining, malformed and oversized frames), the durable job store's
// crash classification, admission control under load, cancel semantics,
// scheduling priority, concurrent-submit determinism (same seeds produce
// bitwise-same artifacts regardless of worker count and dequeue order),
// and the headline guarantee — a daemon restarted on the state dir of a
// killed one resumes every in-flight job and finishes with artifacts
// identical to an uninterrupted run.
#include "autotune/artifact.h"
#include "autotune/autotuner.h"
#include "observe/report.h"
#include "observe/trace.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/job.h"
#include "serve/protocol.h"
#include "serve/scheduler.h"
#include "serve/store.h"
#include "serve/stream.h"
#include "session/session.h"
#include "support/check.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

using namespace motune;
namespace fs = std::filesystem;

namespace {

/// Fresh per-test directory under the gtest temp root.
std::string freshDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

/// Every evaluation sleeps, so scheduler tests can observe running/queued
/// states; removed again so the other tests stay fast. Jobs read the spec
/// when their AutoTuner starts, i.e. when a worker dequeues them.
struct SlowEvals {
  explicit SlowEvals(const char* spec) { ::setenv("MOTUNE_FAULT_SPEC", spec, 1); }
  ~SlowEvals() { ::unsetenv("MOTUNE_FAULT_SPEC"); }
};

serve::JobSpec fastSpec(std::uint64_t seed) {
  serve::JobSpec spec;
  spec.kernel = "mm";
  spec.n = 64;
  spec.algorithm = "random";
  spec.budget = 50;
  spec.seed = seed;
  return spec;
}

serve::JobSpec gde3Spec(std::uint64_t seed) {
  serve::JobSpec spec;
  spec.kernel = "mm";
  spec.n = 64;
  spec.algorithm = "rsgde3";
  spec.seed = seed;
  return spec;
}

serve::DaemonOptions daemonOptions(const std::string& stateDir,
                                   unsigned workers,
                                   std::size_t queueCapacity = 64) {
  serve::DaemonOptions options;
  options.stateDir = stateDir;
  options.scheduler.workers = workers;
  options.scheduler.queueCapacity = queueCapacity;
  return options;
}

/// Artifact comparison modulo provenance: the session block carries the
/// journal path (state-dir specific) and the resume count, which are
/// expected to differ between an interrupted and an uninterrupted run of
/// the same spec. Everything else must match byte for byte.
std::string canonicalArtifact(autotune::TunedArtifact artifact) {
  artifact.session.reset();
  return autotune::serializeArtifact(artifact);
}

} // namespace

// ---------------------------------------------------------------------------
// Protocol framing.

TEST(Protocol, EncodeDecodeRoundTrip) {
  const support::Json msg = support::JsonObject{
      {"verb", "submit"}, {"n", 64}, {"nested", support::JsonArray{1, 2, 3}}};
  const std::string frame = serve::encodeFrame(msg);
  serve::FrameReader reader;
  reader.feed(frame.data(), frame.size());
  const auto decoded = reader.next();
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->dump(-1), msg.dump(-1));
  EXPECT_FALSE(reader.next().has_value());
}

TEST(Protocol, PartialReadsReassemble) {
  const support::Json msg =
      support::JsonObject{{"verb", "status"}, {"id", "j000042"}};
  const std::string frame = serve::encodeFrame(msg);
  serve::FrameReader reader;
  // One byte at a time: no prefix of the frame may yield a message.
  for (std::size_t i = 0; i + 1 < frame.size(); ++i) {
    reader.feed(frame.data() + i, 1);
    EXPECT_FALSE(reader.next().has_value()) << "premature frame at byte " << i;
  }
  reader.feed(frame.data() + frame.size() - 1, 1);
  const auto decoded = reader.next();
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->at("id").asString(), "j000042");
}

TEST(Protocol, PipelinedFramesInOneChunk) {
  const std::string chunk =
      serve::encodeFrame(support::JsonObject{{"seq", 1}}) +
      serve::encodeFrame(support::JsonObject{{"seq", 2}});
  serve::FrameReader reader;
  reader.feed(chunk.data(), chunk.size());
  const auto first = reader.next();
  const auto second = reader.next();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->at("seq").asInt(), 1);
  EXPECT_EQ(second->at("seq").asInt(), 2);
  EXPECT_FALSE(reader.next().has_value());
}

TEST(Protocol, OversizedFrameIsRejected) {
  // Header advertising one byte past the limit; the reader must reject on
  // the header alone, before any payload arrives (no buffering 4 MiB of
  // attacker-controlled length).
  const std::uint32_t size = serve::kMaxFrameBytes + 1;
  const unsigned char header[4] = {
      static_cast<unsigned char>(size >> 24),
      static_cast<unsigned char>(size >> 16),
      static_cast<unsigned char>(size >> 8),
      static_cast<unsigned char>(size)};
  serve::FrameReader reader;
  EXPECT_THROW(
      {
        reader.feed(reinterpret_cast<const char*>(header), 4);
        reader.next();
      },
      serve::ProtocolError);
}

TEST(Protocol, MalformedPayloadIsRejected) {
  const std::string payload = "{not json";
  std::string frame;
  const std::uint32_t size = static_cast<std::uint32_t>(payload.size());
  frame.push_back(static_cast<char>(size >> 24));
  frame.push_back(static_cast<char>(size >> 16));
  frame.push_back(static_cast<char>(size >> 8));
  frame.push_back(static_cast<char>(size));
  frame += payload;
  serve::FrameReader reader;
  reader.feed(frame.data(), frame.size());
  EXPECT_THROW(reader.next(), serve::ProtocolError);
}

// ---------------------------------------------------------------------------
// Job model.

TEST(JobModel, SpecAndInfoRoundTrip) {
  serve::JobSpec spec;
  spec.kernel = "jacobi-2d";
  spec.machine = "barcelona";
  spec.n = 1234;
  spec.algorithm = "gde3";
  spec.seed = 0xdeadbeefcafeULL; // exceeds double precision if mis-serialized
  spec.objectives = {tuning::Objective::Time, tuning::Objective::Energy};
  spec.budget = (1ULL << 53) + 1;
  const serve::JobSpec back = serve::specFromJson(serve::specToJson(spec));
  EXPECT_EQ(back.kernel, spec.kernel);
  EXPECT_EQ(back.machine, spec.machine);
  EXPECT_EQ(back.n, spec.n);
  EXPECT_EQ(back.algorithm, spec.algorithm);
  EXPECT_EQ(back.seed, spec.seed);
  EXPECT_EQ(back.objectives, spec.objectives);
  EXPECT_EQ(back.budget, spec.budget);

  serve::JobInfo info;
  info.id = "j000007";
  info.state = serve::JobState::Failed;
  info.spec = spec;
  info.error = "boom";
  info.evaluations = (1ULL << 53) + 3;
  const serve::JobInfo infoBack = serve::infoFromJson(serve::infoToJson(info));
  EXPECT_EQ(infoBack.id, info.id);
  EXPECT_EQ(infoBack.state, serve::JobState::Failed);
  EXPECT_EQ(infoBack.error, "boom");
  EXPECT_EQ(infoBack.evaluations, info.evaluations);
}

TEST(JobModel, ValidateRejectsBadSpecs) {
  serve::JobSpec spec = fastSpec(1);
  spec.kernel = "no-such-kernel";
  EXPECT_THROW(serve::validateSpec(spec), support::CheckError);
  spec = fastSpec(1);
  spec.machine = "cray-1";
  EXPECT_THROW(serve::validateSpec(spec), support::CheckError);
  spec = fastSpec(1);
  spec.algorithm = "simulated-annealing";
  EXPECT_THROW(serve::validateSpec(spec), support::CheckError);
  EXPECT_NO_THROW(serve::validateSpec(fastSpec(1)));
}

// ---------------------------------------------------------------------------
// Durable store: crash classification.

TEST(JobStore, RecoverClassifiesJobDirs) {
  const std::string dir = freshDir("store-classify");
  serve::JobStore store(dir);
  const std::string done = store.persistNewJob(fastSpec(1), 0, 1.0);
  const std::string failed = store.persistNewJob(fastSpec(2), 0, 2.0);
  const std::string cancelled = store.persistNewJob(fastSpec(3), 0, 3.0);
  const std::string queued = store.persistNewJob(fastSpec(4), 5, 4.0);

  // Done: a real (tiny but valid) artifact.
  {
    std::ofstream out(store.artifactPath(done));
    out << support::Json(support::JsonObject{
               {"format", "motune-artifact-v1"},
               {"kernel", "mm"},
               {"evaluations", 50},
               {"hypervolume", 0.5},
               {"versions", support::JsonArray{}},
           })
               .dump(2);
  }
  store.markFailed(failed, "search exploded");
  store.markCancelled(cancelled);

  // A crash between mkdir and the job.json rename: never acknowledged,
  // must not resurface as a job.
  fs::create_directories(fs::path(dir) / "jobs" / "j000099");

  serve::JobStore reopened(dir);
  const std::vector<serve::RecoveredJob> jobs = reopened.recover();
  ASSERT_EQ(jobs.size(), 4u);
  EXPECT_EQ(jobs[0].id, done);
  EXPECT_EQ(jobs[0].state, serve::JobState::Done);
  EXPECT_EQ(jobs[0].doneInfo.evaluations, 50u);
  EXPECT_EQ(jobs[1].state, serve::JobState::Failed);
  EXPECT_EQ(jobs[1].error, "search exploded");
  EXPECT_EQ(jobs[2].state, serve::JobState::Cancelled);
  EXPECT_EQ(jobs[3].state, serve::JobState::Queued);
  EXPECT_EQ(jobs[3].priority, 5);

  // The id allocator continues past everything on disk.
  EXPECT_EQ(reopened.persistNewJob(fastSpec(9), 0, 9.0), "j000005");
}

TEST(JobStore, TornArtifactIsDroppedAndRequeued) {
  const std::string dir = freshDir("store-torn");
  serve::JobStore store(dir);
  const std::string id = store.persistNewJob(fastSpec(1), 0, 1.0);
  {
    std::ofstream out(store.artifactPath(id));
    out << "{\"format\": \"motune-art"; // killed mid-write
  }
  serve::JobStore reopened(dir);
  const auto jobs = reopened.recover();
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].state, serve::JobState::Queued);
  EXPECT_FALSE(fs::exists(store.artifactPath(id)));
}

// ---------------------------------------------------------------------------
// Daemon protocol behavior over a live socket.

TEST(Daemon, VerbsAndErrors) {
  serve::Daemon daemon(daemonOptions(freshDir("daemon-verbs"), 1));
  daemon.start();
  serve::Client client("127.0.0.1", daemon.port());
  EXPECT_NO_THROW(client.ping());

  // Unknown verb and unknown ids are responses, not dropped connections.
  const support::Json bogus =
      client.request(support::JsonObject{{"verb", "bogus"}});
  EXPECT_FALSE(bogus.at("ok").asBool());
  EXPECT_THROW(client.status("j999999"), support::CheckError);
  EXPECT_THROW(client.cancel("j999999"), support::CheckError);

  // An invalid spec is rejected at admission, with the validation message.
  serve::JobSpec bad = fastSpec(1);
  bad.algorithm = "bogus";
  const serve::SubmitOutcome outcome = client.submit(bad);
  EXPECT_FALSE(outcome.accepted);
  EXPECT_NE(outcome.error.find("unknown algorithm"), std::string::npos);

  // result on a job that is not done reports its state instead.
  const serve::SubmitOutcome ok = client.submit(fastSpec(1));
  ASSERT_TRUE(ok.accepted);
  client.await(ok.id, 60.0);
  EXPECT_NO_THROW(client.result(ok.id));
  daemon.stop();
}

TEST(Daemon, MalformedFrameDropsOnlyThatConnection) {
  serve::Daemon daemon(daemonOptions(freshDir("daemon-malformed"), 1));
  daemon.start();

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(daemon.port()));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  // Oversized length prefix: the daemon must drop this connection.
  const unsigned char evil[4] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(::send(fd, evil, 4, 0), 4);
  char buf[8];
  EXPECT_EQ(::recv(fd, buf, sizeof buf, 0), 0); // peer closed
  ::close(fd);

  // The daemon itself survives and serves new connections.
  serve::Client client("127.0.0.1", daemon.port());
  EXPECT_NO_THROW(client.ping());
  daemon.stop();
}

// ---------------------------------------------------------------------------
// Scheduling: admission control, cancel, priority.

TEST(Scheduler, QueueFullShedsLoadWithRetryAfter) {
  SlowEvals slow("delay@*:0.002");
  serve::Daemon daemon(
      daemonOptions(freshDir("sched-admission"), 1, /*queueCapacity=*/2));
  daemon.start();
  serve::Client client("127.0.0.1", daemon.port());

  // One running + two queued fills the queue; the next submit is shed.
  std::vector<std::string> accepted;
  serve::SubmitOutcome rejected;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const serve::SubmitOutcome outcome = client.submit(fastSpec(seed));
    if (!outcome.accepted) {
      rejected = outcome;
      break;
    }
    accepted.push_back(outcome.id);
  }
  ASSERT_FALSE(rejected.error.empty()) << "queue never filled";
  EXPECT_NE(rejected.error.find("queue full"), std::string::npos);
  EXPECT_GT(rejected.retryAfterSeconds, 0.0);
  EXPECT_LE(accepted.size(), 3u); // 1 running + queueCapacity

  // Shedding is backpressure, not loss: what was acked still completes.
  ASSERT_TRUE(daemon.scheduler().drain(120.0));
  for (const std::string& id : accepted)
    EXPECT_EQ(client.status(id).state, serve::JobState::Done) << id;
  const support::Json stats = client.stats();
  EXPECT_GE(std::stoull(stats.at("admission_rejects").asString()), 1u);
  daemon.stop();
}

TEST(Scheduler, CancelQueuedJobIsImmediateAndDurable) {
  SlowEvals slow("delay@*:0.002");
  const std::string dir = freshDir("sched-cancel");
  serve::Daemon daemon(daemonOptions(dir, 1));
  daemon.start();
  serve::Client client("127.0.0.1", daemon.port());

  // The gde3 job occupies the single worker; the fast job stays queued.
  const serve::SubmitOutcome running = client.submit(gde3Spec(1));
  const serve::SubmitOutcome queued = client.submit(fastSpec(2));
  ASSERT_TRUE(running.accepted);
  ASSERT_TRUE(queued.accepted);

  EXPECT_EQ(client.cancel(queued.id), "cancelled");
  EXPECT_EQ(client.status(queued.id).state, serve::JobState::Cancelled);
  EXPECT_TRUE(
      fs::exists(fs::path(dir) / "jobs" / queued.id / "cancelled"));
  client.await(running.id, 120.0); // the worker was never disturbed
  EXPECT_EQ(client.status(running.id).state, serve::JobState::Done);
  daemon.stop();
}

TEST(Scheduler, CancelRunningJobStopsCooperatively) {
  SlowEvals slow("delay@*:0.002");
  const std::string dir = freshDir("sched-cancel-running");
  serve::Daemon daemon(daemonOptions(dir, 1));
  daemon.start();
  serve::Client client("127.0.0.1", daemon.port());

  const serve::SubmitOutcome job = client.submit(gde3Spec(1));
  ASSERT_TRUE(job.accepted);
  // Wait for the worker to pick it up, then cancel mid-search.
  for (int i = 0; i < 2000; ++i) {
    if (client.status(job.id).state == serve::JobState::Running) break;
    ::usleep(2000);
  }
  ASSERT_EQ(client.status(job.id).state, serve::JobState::Running);
  EXPECT_EQ(client.cancel(job.id), "cancelling");

  const serve::JobInfo info = client.await(job.id, 60.0);
  EXPECT_EQ(info.state, serve::JobState::Cancelled);
  EXPECT_FALSE(fs::exists(fs::path(dir) / "jobs" / job.id / "artifact.json"));
  EXPECT_TRUE(fs::exists(fs::path(dir) / "jobs" / job.id / "cancelled"));
  EXPECT_THROW(client.cancel(job.id), support::CheckError); // already terminal
  daemon.stop();
}

TEST(Scheduler, HigherPriorityDequeuesFirst) {
  SlowEvals slow("delay@*:0.002");
  const std::string dir = freshDir("sched-priority");
  serve::Daemon daemon(daemonOptions(dir, 1));
  daemon.start();
  serve::Client client("127.0.0.1", daemon.port());

  const serve::SubmitOutcome blocker = client.submit(fastSpec(1));
  const serve::SubmitOutcome low = client.submit(fastSpec(2), 0);
  const serve::SubmitOutcome high = client.submit(fastSpec(3), 5);
  ASSERT_TRUE(blocker.accepted && low.accepted && high.accepted);
  ASSERT_TRUE(daemon.scheduler().drain(120.0));

  // The high-priority job must have started before the low-priority one
  // submitted ahead of it; the per-job event logs carry the start stamps.
  auto startedAt = [&](const std::string& id) {
    std::ifstream in((fs::path(dir) / "jobs" / id / "events.jsonl").string());
    std::string line;
    while (std::getline(in, line)) {
      const support::Json event = support::Json::parse(line);
      if (event.at("event").asString() == "started")
        return event.at("t_unix").asNumber();
    }
    ADD_FAILURE() << "no started event for " << id;
    return 0.0;
  };
  EXPECT_LT(startedAt(high.id), startedAt(low.id));
  daemon.stop();
}

// ---------------------------------------------------------------------------
// Determinism: same seeds, bitwise-same artifacts, any scheduling order.

TEST(Determinism, ConcurrentSubmitsMatchSerialBitwise) {
  const std::vector<std::uint64_t> seeds{1, 2, 3, 4};

  serve::Daemon parallelDaemon(
      daemonOptions(freshDir("det-parallel"), /*workers=*/4));
  serve::Daemon serialDaemon(
      daemonOptions(freshDir("det-serial"), /*workers=*/1));
  parallelDaemon.start();
  serialDaemon.start();
  serve::Client parallelClient("127.0.0.1", parallelDaemon.port());
  serve::Client serialClient("127.0.0.1", serialDaemon.port());

  std::vector<std::string> parallelIds, serialIds;
  for (std::uint64_t seed : seeds) {
    parallelIds.push_back(parallelClient.submit(gde3Spec(seed)).id);
    serialIds.push_back(serialClient.submit(gde3Spec(seed)).id);
  }
  ASSERT_TRUE(parallelDaemon.scheduler().drain(300.0));
  ASSERT_TRUE(serialDaemon.scheduler().drain(300.0));

  for (std::size_t i = 0; i < seeds.size(); ++i) {
    const serve::JobInfo p = parallelClient.status(parallelIds[i]);
    const serve::JobInfo s = serialClient.status(serialIds[i]);
    ASSERT_EQ(p.state, serve::JobState::Done) << "seed " << seeds[i];
    ASSERT_EQ(s.state, serve::JobState::Done) << "seed " << seeds[i];
    EXPECT_EQ(canonicalArtifact(autotune::loadArtifact(p.artifactPath)),
              canonicalArtifact(autotune::loadArtifact(s.artifactPath)))
        << "seed " << seeds[i]
        << ": artifact depends on worker count / dequeue order";
  }
  parallelDaemon.stop();
  serialDaemon.stop();
}

// ---------------------------------------------------------------------------
// Crash-restart resume.

TEST(Resume, RestartFinishesInterruptedJobBitIdentically) {
  // Golden: the same spec run uninterrupted (no daemon involved).
  const serve::JobSpec spec = gde3Spec(42);
  std::string golden;
  {
    tuning::KernelTuningProblem problem = serve::problemFromSpec(spec);
    autotune::AutoTuner tuner(serve::tunerOptionsFromSpec(
        spec, freshDir("resume-golden") + "/session", 1, 1));
    golden = canonicalArtifact(autotune::makeArtifact(tuner.tune(problem),
                                                      problem));
  }

  // Simulate a daemon killed mid-job: persist the job, then run its search
  // with a stop request that fires after the first generation — the
  // journal is left checkpointed but unfinished, exactly as a SIGKILL
  // between checkpoints leaves it (no artifact, no terminal marker).
  const std::string dir = freshDir("resume-state");
  std::string id;
  {
    serve::JobStore store(dir);
    id = store.persistNewJob(spec, 0, 1.0);
    tuning::KernelTuningProblem problem = serve::problemFromSpec(spec);
    autotune::TunerOptions options =
        serve::tunerOptionsFromSpec(spec, store.sessionDir(id), 1, 1);
    options.stopRequested = [] { return true; };
    autotune::AutoTuner tuner(std::move(options));
    (void)tuner.tune(problem);
    ASSERT_TRUE(session::sessionExists(store.sessionDir(id)));
  }

  // Restart: the daemon recovers the job, resumes its session and
  // completes it with the identical artifact.
  serve::Daemon daemon(daemonOptions(dir, 1));
  daemon.start();
  serve::Client client("127.0.0.1", daemon.port());
  const serve::JobInfo info = client.await(id, 120.0);
  EXPECT_EQ(info.state, serve::JobState::Done);
  EXPECT_GE(info.resumes, 1);
  EXPECT_EQ(canonicalArtifact(autotune::loadArtifact(info.artifactPath)),
            golden);
  daemon.stop();
}

TEST(Resume, RecoveredDoneJobsServeResultsWithoutRerun) {
  const std::string dir = freshDir("resume-done");
  std::string id;
  {
    serve::Daemon daemon(daemonOptions(dir, 1));
    daemon.start();
    serve::Client client("127.0.0.1", daemon.port());
    id = client.submit(fastSpec(7)).id;
    client.await(id, 60.0);
    daemon.stop();
  }
  serve::Daemon daemon(daemonOptions(dir, 1));
  daemon.start();
  serve::Client client("127.0.0.1", daemon.port());
  const serve::JobInfo info = client.status(id);
  EXPECT_EQ(info.state, serve::JobState::Done);
  EXPECT_GT(info.evaluations, 0u);
  EXPECT_NO_THROW(client.result(id));
  daemon.stop();
}

// ---------------------------------------------------------------------------
// Exact-spec result cache: resubmitting a finished spec returns the
// existing artifact without scheduling anything.

TEST(SpecCache, ResubmitReturnsCachedJobWithoutRerun) {
  serve::Daemon daemon(daemonOptions(freshDir("cache-resubmit"), 1));
  daemon.start();
  serve::Client client("127.0.0.1", daemon.port());

  const serve::SubmitOutcome first = client.submit(fastSpec(7));
  ASSERT_TRUE(first.accepted);
  EXPECT_FALSE(first.cached);
  const serve::JobInfo done = client.await(first.id, 60.0);
  ASSERT_EQ(done.state, serve::JobState::Done);

  // Identical spec: same id back, no new job, marked as a cache hit.
  const serve::SubmitOutcome again = client.submit(fastSpec(7));
  EXPECT_TRUE(again.accepted);
  EXPECT_TRUE(again.cached);
  EXPECT_EQ(again.id, first.id);
  EXPECT_EQ(client.list().size(), 1u);
  EXPECT_NO_THROW(client.result(again.id));

  // A different spec (seed differs) is a miss and runs for real.
  const serve::SubmitOutcome other = client.submit(fastSpec(8));
  EXPECT_TRUE(other.accepted);
  EXPECT_FALSE(other.cached);
  EXPECT_NE(other.id, first.id);
  client.await(other.id, 60.0);
  daemon.stop();
}

TEST(SpecCache, NoCacheOptOutForcesAFreshRun) {
  serve::Daemon daemon(daemonOptions(freshDir("cache-opt-out"), 1));
  daemon.start();
  serve::Client client("127.0.0.1", daemon.port());

  const serve::SubmitOutcome first = client.submit(fastSpec(7));
  ASSERT_TRUE(first.accepted);
  client.await(first.id, 60.0);

  const serve::SubmitOutcome fresh =
      client.submit(fastSpec(7), /*priority=*/0, /*noCache=*/true);
  EXPECT_TRUE(fresh.accepted);
  EXPECT_FALSE(fresh.cached);
  EXPECT_NE(fresh.id, first.id);
  const serve::JobInfo done = client.await(fresh.id, 60.0);
  EXPECT_EQ(done.state, serve::JobState::Done);
  // Determinism makes the fresh run's artifact identical anyway.
  EXPECT_EQ(canonicalArtifact(autotune::loadArtifact(done.artifactPath)),
            canonicalArtifact(
                autotune::loadArtifact(client.status(first.id).artifactPath)));
  daemon.stop();
}

TEST(SpecCache, RestartRebuildsTheIndexFromDisk) {
  const std::string dir = freshDir("cache-restart");
  std::string id;
  {
    serve::Daemon daemon(daemonOptions(dir, 1));
    daemon.start();
    serve::Client client("127.0.0.1", daemon.port());
    id = client.submit(fastSpec(7)).id;
    client.await(id, 60.0);
    daemon.stop();
  }
  // The index is durable: one file per finished spec under jobs/by-spec/.
  EXPECT_TRUE(
      fs::exists(fs::path(dir) / "jobs" / "by-spec" / serve::specHash(fastSpec(7))));

  serve::Daemon daemon(daemonOptions(dir, 1));
  daemon.start();
  serve::Client client("127.0.0.1", daemon.port());
  const serve::SubmitOutcome again = client.submit(fastSpec(7));
  EXPECT_TRUE(again.accepted);
  EXPECT_TRUE(again.cached);
  EXPECT_EQ(again.id, id);
  daemon.stop();
}

TEST(SpecCache, WarmStartedSpecsNeverUseTheCache) {
  // A surrogate_keep < 1 job's artifact depends on the warm-start corpus
  // — the compatible jobs finished in this store when it first ran — not
  // just on the spec, so such specs are excluded from the result cache
  // entirely: a byte-identical resubmission runs for real, and neither
  // submission moves the serve.cache.* counters (the metrics registry is
  // process-global, so compare deltas).
  serve::Daemon daemon(daemonOptions(freshDir("cache-surrogate"), 1));
  daemon.start();
  serve::Client client("127.0.0.1", daemon.port());

  serve::JobSpec spec = gde3Spec(7);
  spec.surrogateKeep = 0.5;
  ASSERT_FALSE(serve::cacheableSpec(spec));
  EXPECT_TRUE(serve::cacheableSpec(gde3Spec(7)));

  const std::string lookupsBefore =
      client.stats().at("cache_lookups").asString();
  const serve::SubmitOutcome first = client.submit(spec);
  ASSERT_TRUE(first.accepted);
  EXPECT_FALSE(first.cached);
  ASSERT_EQ(client.await(first.id, 120.0).state, serve::JobState::Done);

  const serve::SubmitOutcome again = client.submit(spec);
  EXPECT_TRUE(again.accepted);
  EXPECT_FALSE(again.cached);
  EXPECT_NE(again.id, first.id);
  EXPECT_EQ(client.stats().at("cache_lookups").asString(), lookupsBefore);
  ASSERT_EQ(client.await(again.id, 120.0).state, serve::JobState::Done);
  daemon.stop();
}

TEST(SpecCache, HashIsStableUnderDefaultedFields) {
  // The hash covers the canonical spec JSON: equal specs collide, any
  // semantic difference — including the surrogate keep fraction — does
  // not.
  EXPECT_EQ(serve::specHash(fastSpec(7)), serve::specHash(fastSpec(7)));
  EXPECT_NE(serve::specHash(fastSpec(7)), serve::specHash(fastSpec(8)));
  serve::JobSpec tuned = fastSpec(7);
  tuned.surrogateKeep = 0.5;
  EXPECT_NE(serve::specHash(tuned), serve::specHash(fastSpec(7)));
  const std::string hash = serve::specHash(fastSpec(7));
  EXPECT_EQ(hash.size(), 16u);
  EXPECT_EQ(hash.find_first_not_of("0123456789abcdef"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Live streaming: the subscribe verb and its buffering contract.

namespace {

int rawConnect(int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0);
  return fd;
}

} // namespace

TEST(Stream, SubscribeDeliversProgressTraceAndEnd) {
  serve::Daemon daemon(daemonOptions(freshDir("stream-subscribe"), 1));
  daemon.start();
  serve::Client submitter("127.0.0.1", daemon.port());
  const serve::SubmitOutcome job = submitter.submit(gde3Spec(1));
  ASSERT_TRUE(job.accepted);

  serve::Client watcher("127.0.0.1", daemon.port());
  std::size_t progressFrames = 0, traceFrames = 0;
  int lastGen = 0;
  double lastHv = 0.0;
  const serve::StreamEnd end =
      watcher.subscribe(job.id, [&](const support::Json& frame) {
        ASSERT_TRUE(frame.has("stream"));
        ASSERT_TRUE(frame.has("job"));
        EXPECT_EQ(frame.at("job").asString(), job.id);
        const std::string stream = frame.at("stream").asString();
        if (stream == "progress") {
          ++progressFrames;
          const int gen = static_cast<int>(frame.at("generation").asInt());
          EXPECT_GT(gen, lastGen); // generations arrive in order
          lastGen = gen;
          lastHv = frame.at("hypervolume").asNumber();
          EXPECT_GE(frame.at("front_size").asInt(), 1);
        } else if (stream == "trace") {
          ++traceFrames;
          EXPECT_TRUE(frame.at("record").has("name"));
        }
      });

  EXPECT_EQ(end.state, "done");
  EXPECT_GT(progressFrames, 0u) << "no per-generation progress frames";
  EXPECT_GT(traceFrames, 0u) << "no trace records streamed";
  EXPECT_GT(lastHv, 0.0);

  // The finished job's hypervolume (recomputed over the final front) can
  // only improve on what the last streamed generation reported.
  const serve::JobInfo info = submitter.status(job.id);
  EXPECT_EQ(info.state, serve::JobState::Done);
  EXPECT_GE(info.hypervolume, lastHv - 1e-9);

  // The connection is request/response again after the end frame.
  EXPECT_NO_THROW(watcher.ping());
  daemon.stop();
}

TEST(Stream, SubscribeUnknownJobIsAnErrorNotAStream) {
  serve::Daemon daemon(daemonOptions(freshDir("stream-unknown"), 1));
  daemon.start();
  serve::Client client("127.0.0.1", daemon.port());
  EXPECT_THROW(client.subscribe("j999999", nullptr), support::CheckError);
  EXPECT_NO_THROW(client.ping()); // connection survives the error
  daemon.stop();
}

TEST(Stream, SubscribeFinishedJobEndsImmediately) {
  serve::Daemon daemon(daemonOptions(freshDir("stream-finished"), 1));
  daemon.start();
  serve::Client client("127.0.0.1", daemon.port());
  const serve::SubmitOutcome job = client.submit(fastSpec(1));
  ASSERT_TRUE(job.accepted);
  client.await(job.id, 60.0);

  std::size_t frames = 0;
  const serve::StreamEnd end = client.subscribe(
      job.id, [&](const support::Json&) { ++frames; });
  EXPECT_EQ(end.state, "done");
  EXPECT_EQ(end.dropped, 0u);
  EXPECT_EQ(frames, 0u) << "a finished job must not replay frames";
  daemon.stop();
}

TEST(Stream, BoundedBufferDropsBestEffortNeverControl) {
  serve::StreamHub hub(/*bufferFrames=*/2);
  auto sub = hub.subscribe("j000001");
  for (int i = 0; i < 10; ++i)
    hub.publishBestEffort("j000001",
                          support::Json(support::JsonObject{{"i", i}}));
  // Control frames enqueue even with the buffer full.
  hub.publishControl("j000001", support::Json(support::JsonObject{
                                    {"stream", "control"}}));
  EXPECT_EQ(sub->dropped(), 8u);

  std::size_t drained = 0;
  bool sawControl = false;
  while (auto frame = sub->next(0.0)) {
    ++drained;
    if (frame->has("stream")) sawControl = true;
  }
  EXPECT_EQ(drained, 3u); // 2 best-effort + 1 control
  EXPECT_TRUE(sawControl);
  EXPECT_FALSE(sub->finished());

  hub.publishEnd("j000001", support::Json(support::JsonObject{
                                {"stream", "control"}}));
  EXPECT_TRUE(sub->next(0.0).has_value()); // the terminal control frame
  EXPECT_TRUE(sub->finished());
  EXPECT_EQ(hub.subscriberCount(), 0u);

  // Publishing to a job with no subscribers is a no-op, not an error.
  hub.publishBestEffort("j000001",
                        support::Json(support::JsonObject{{"late", true}}));
}

TEST(Stream, DropAccountingIsExactPerSubscriber) {
  // Two subscribers to the same job, one drained promptly and one never
  // read: each must carry its own exact drop arithmetic — not a shared or
  // approximate figure.
  serve::StreamHub hub(/*bufferFrames=*/3);
  auto prompt = hub.subscribe("j000002");
  auto stalled = hub.subscribe("j000002");

  for (int i = 0; i < 3; ++i)
    hub.publishBestEffort("j000002",
                          support::Json(support::JsonObject{{"i", i}}));
  // Drain the prompt subscriber; the stalled one sits on a full buffer.
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(prompt->next(0.0).has_value());
  for (int i = 3; i < 8; ++i)
    hub.publishBestEffort("j000002",
                          support::Json(support::JsonObject{{"i", i}}));
  EXPECT_EQ(prompt->dropped(), 2u);  // 3 drained + 3 buffered, 2 over
  EXPECT_EQ(stalled->dropped(), 5u); // 3 buffered, 5 over
  hub.publishEnd("j000002",
                 support::Json(support::JsonObject{{"stream", "end"}}));
  EXPECT_EQ(prompt->dropped(), 2u); // the end frame never drops
  EXPECT_EQ(stalled->dropped(), 5u);
}

TEST(Stream, ControlFramesSurviveAFullBufferAndDropsStayExact) {
  // A deliberately unread subscriber with a 2-frame buffer: every control
  // frame must still arrive, in order, while the drop counter tracks the
  // exact number of discarded best-effort frames through the end frame.
  serve::StreamHub hub(/*bufferFrames=*/2);
  auto sub = hub.subscribe("j000003");

  for (int i = 0; i < 6; ++i) // 2 buffered, 4 dropped
    hub.publishBestEffort("j000003",
                          support::Json(support::JsonObject{{"i", i}}));
  for (int c = 0; c < 3; ++c) // beyond capacity, but control: all enqueue
    hub.publishControl("j000003",
                       support::Json(support::JsonObject{{"control", c}}));
  for (int i = 6; i < 10; ++i) // buffer over capacity: 4 more dropped
    hub.publishBestEffort("j000003",
                          support::Json(support::JsonObject{{"i", i}}));
  hub.publishEnd("j000003", support::Json(support::JsonObject{
                                {"stream", "end"}}));
  EXPECT_EQ(sub->dropped(), 8u);

  // Drained frames: the 2 surviving best-effort, all 3 controls in publish
  // order, then the end frame.
  std::vector<std::string> kinds;
  std::vector<int> controls;
  while (auto frame = sub->next(0.0)) {
    if (frame->has("control")) {
      kinds.push_back("control");
      controls.push_back(static_cast<int>(frame->at("control").asInt()));
    } else if (frame->has("stream")) {
      kinds.push_back("end");
    } else {
      kinds.push_back("best-effort");
    }
  }
  EXPECT_EQ(kinds, (std::vector<std::string>{"best-effort", "best-effort",
                                             "control", "control", "control",
                                             "end"}));
  EXPECT_EQ(controls, (std::vector<int>{0, 1, 2}));
  EXPECT_TRUE(sub->finished());

  // The stream is over: late publishes are no-ops and the exact count
  // reported with the end frame can never move again.
  hub.publishBestEffort("j000003",
                        support::Json(support::JsonObject{{"late", 1}}));
  hub.publishControl("j000003",
                     support::Json(support::JsonObject{{"late", 2}}));
  EXPECT_EQ(sub->dropped(), 8u);
}

TEST(Stream, SlowSubscriberNeverBlocksTheScheduler) {
  // A subscriber that stops reading must not stall job completion: frames
  // past its buffer are dropped (best-effort) while control frames and the
  // end frame still arrive once it drains.
  serve::DaemonOptions options = daemonOptions(freshDir("stream-slow"), 2);
  options.streamBufferFrames = 4;
  serve::Daemon daemon(options);
  daemon.start();
  serve::Client client("127.0.0.1", daemon.port());

  std::vector<std::string> ids;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    const serve::SubmitOutcome job = client.submit(gde3Spec(seed));
    ASSERT_TRUE(job.accepted);
    ids.push_back(job.id);
  }

  // Subscribe to the last queued job and then read NOTHING while the whole
  // burst drains.
  const int fd = rawConnect(daemon.port());
  serve::sendFrame(fd, support::JsonObject{{"verb", "subscribe"},
                                           {"id", ids.back()}});
  ASSERT_TRUE(daemon.scheduler().drain(300.0))
      << "a non-reading subscriber stalled the scheduler";

  // Now drain the stream: ack, then frames, then the end frame.
  serve::FrameReader reader;
  std::optional<support::Json> ack = serve::recvFrame(fd, reader);
  ASSERT_TRUE(ack.has_value());
  EXPECT_TRUE(ack->at("ok").asBool());
  std::uint64_t dropped = 0;
  for (;;) {
    std::optional<support::Json> frame = serve::recvFrame(fd, reader);
    ASSERT_TRUE(frame.has_value()) << "stream ended without an end frame";
    if (frame->has("stream") && frame->at("stream").asString() == "end") {
      EXPECT_EQ(frame->at("state").asString(), "done");
      dropped = std::stoull(frame->at("dropped").asString());
      break;
    }
  }
  EXPECT_GT(dropped, 0u) << "tiny buffer + unread stream must drop frames";
  ::close(fd);

  for (const std::string& id : ids)
    EXPECT_EQ(client.status(id).state, serve::JobState::Done) << id;
  daemon.stop();
}

TEST(Stream, MidStreamDisconnectCleansUpSubscriber) {
  SlowEvals slow("delay@*:0.002");
  serve::Daemon daemon(daemonOptions(freshDir("stream-disconnect"), 1));
  daemon.start();
  serve::Client client("127.0.0.1", daemon.port());
  const serve::SubmitOutcome job = client.submit(gde3Spec(1));
  ASSERT_TRUE(job.accepted);

  // Subscribe, read the ack and one frame, then vanish.
  const int fd = rawConnect(daemon.port());
  serve::sendFrame(fd, support::JsonObject{{"verb", "subscribe"},
                                           {"id", job.id}});
  serve::FrameReader reader;
  ASSERT_TRUE(serve::recvFrame(fd, reader).has_value()); // ack
  ::close(fd);

  // The daemon notices within its idle tick and unsubscribes: the
  // subscriber gauge returns to zero while the job is still running.
  bool cleaned = false;
  for (int i = 0; i < 500 && !cleaned; ++i) {
    const std::string text = client.statsPrometheus();
    cleaned = text.find("motune_serve_stream_subscribers 0") !=
              std::string::npos;
    if (!cleaned) ::usleep(20000);
  }
  EXPECT_TRUE(cleaned) << "disconnected subscriber was not reaped";

  // The job is unaffected.
  EXPECT_EQ(client.await(job.id, 120.0).state, serve::JobState::Done);
  daemon.stop();
}

TEST(Stream, ShutdownWithLiveSubscribersUnblocksThem) {
  SlowEvals slow("delay@*:0.002");
  serve::Daemon daemon(daemonOptions(freshDir("stream-shutdown"), 1));
  daemon.start();
  serve::Client client("127.0.0.1", daemon.port());
  // One running job (the worker holds it) and one that stays queued.
  const serve::SubmitOutcome running = client.submit(gde3Spec(1));
  const serve::SubmitOutcome queued = client.submit(gde3Spec(2));
  ASSERT_TRUE(running.accepted && queued.accepted);

  // A subscriber on the queued job blocks until the daemon stops: the job
  // will never run (stop() only finishes the running one).
  std::atomic<bool> returned{false};
  std::thread watcher([&] {
    try {
      serve::Client sub("127.0.0.1", daemon.port());
      (void)sub.subscribe(queued.id, nullptr);
    } catch (const std::exception&) {
      // Torn down mid-stream: also a clean unblock.
    }
    returned.store(true);
  });

  ::usleep(100000); // let the subscription register
  daemon.stop();    // must close the stream, not hang on the watcher
  watcher.join();
  EXPECT_TRUE(returned.load());
}

// ---------------------------------------------------------------------------
// Per-job traces: stamping, id disjointness, append across restarts.

namespace {

/// Parses a job's trace.jsonl into records.
std::vector<support::Json> traceLines(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "no trace at " << path;
  std::vector<support::Json> out;
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) out.push_back(support::Json::parse(line));
  return out;
}

} // namespace

TEST(Trace, PerJobTracesAreStampedAndSpanIdsDisjoint) {
  const std::string dir = freshDir("trace-stamp");
  serve::Daemon daemon(daemonOptions(dir, 2));
  daemon.start();
  serve::Client client("127.0.0.1", daemon.port());
  const serve::SubmitOutcome a = client.submit(gde3Spec(1));
  const serve::SubmitOutcome b = client.submit(gde3Spec(2));
  ASSERT_TRUE(a.accepted && b.accepted);
  ASSERT_TRUE(daemon.scheduler().drain(300.0));
  daemon.stop();

  std::set<std::uint64_t> idsA, idsB;
  for (const std::string& id : {a.id, b.id}) {
    serve::JobStore store(dir);
    const auto records = traceLines(store.tracePath(id));
    ASSERT_FALSE(records.empty()) << id;
    for (const support::Json& r : records) {
      // Every record carries the job stamp.
      ASSERT_TRUE(r.has("attrs")) << r.dump(-1);
      ASSERT_TRUE(r.at("attrs").has("job")) << r.dump(-1);
      EXPECT_EQ(r.at("attrs").at("job").asString(), id);
      EXPECT_EQ(static_cast<int>(r.at("attrs").at("run").asInt()), 0);
      if (r.has("id")) {
        const auto spanId = static_cast<std::uint64_t>(r.at("id").asInt());
        if (spanId != 0) (id == a.id ? idsA : idsB).insert(spanId);
      }
    }
  }
  ASSERT_FALSE(idsA.empty());
  ASSERT_FALSE(idsB.empty());
  for (std::uint64_t id : idsA)
    EXPECT_EQ(idsB.count(id), 0u) << "span id " << id
                                  << " appears in both jobs' traces";
}

TEST(Trace, AppendAcrossRestartYieldsFullConvergenceCurve) {
  const serve::JobSpec spec = gde3Spec(42);
  const std::string dir = freshDir("trace-append");
  std::string id;
  {
    // Interrupted first run, traced exactly as the scheduler traces it:
    // per-job tracer, job/run stamp, append-mode sink. The stop request
    // fires after the first generation, like a SIGKILL between
    // checkpoints (journal left resumable, no artifact).
    serve::JobStore store(dir);
    id = store.persistNewJob(spec, 0, 1.0);
    ASSERT_EQ(store.traceRunCount(id), 0);
    observe::Tracer tracer;
    tracer.seedIds(1ull << 32 | 1);
    tracer.setStamp({{"job", support::Json(id)}, {"run", support::Json(0)}});
    tracer.addSink(std::make_shared<observe::JsonLinesSink>(
        store.tracePath(id), observe::JsonLinesSink::Mode::Append));
    observe::ScopedTracer scope(&tracer);
    tuning::KernelTuningProblem problem = serve::problemFromSpec(spec);
    autotune::TunerOptions options =
        serve::tunerOptionsFromSpec(spec, store.sessionDir(id), 1, 1);
    options.stopRequested = [] { return true; };
    autotune::AutoTuner tuner(std::move(options));
    (void)tuner.tune(problem);
    tracer.clearSinks();
    ASSERT_TRUE(session::sessionExists(store.sessionDir(id)));
    ASSERT_EQ(store.traceRunCount(id), 1);
  }

  // Restart: the daemon resumes the job and appends run 1 to the trace.
  serve::Daemon daemon(daemonOptions(dir, 1));
  daemon.start();
  serve::Client client("127.0.0.1", daemon.port());
  EXPECT_EQ(client.await(id, 120.0).state, serve::JobState::Done);
  daemon.stop();

  serve::JobStore store(dir);
  EXPECT_EQ(store.traceRunCount(id), 2) << "resume must append, not truncate";

  // The stitched trace renders one contiguous convergence curve: the
  // report layer sorts generations across runs and keeps the resumed
  // run's version of any generation recorded twice.
  const auto records = observe::parseTraceFile(store.tracePath(id));
  const observe::Report report = observe::buildReport(records, {});
  ASSERT_GT(report.convergence.size(), 1u);
  for (std::size_t i = 0; i < report.convergence.size(); ++i)
    EXPECT_EQ(report.convergence[i].gen, static_cast<int>(i) + 1)
        << "convergence curve has gaps or duplicates";
  // Both runs contributed generations.
  bool sawRun0 = false, sawRun1 = false;
  for (const support::Json& r : traceLines(store.tracePath(id))) {
    if (!r.has("attrs") || !r.at("attrs").has("run")) continue;
    const int run = static_cast<int>(r.at("attrs").at("run").asInt());
    if (run == 0) sawRun0 = true;
    if (run == 1) sawRun1 = true;
  }
  EXPECT_TRUE(sawRun0);
  EXPECT_TRUE(sawRun1);
}

TEST(Trace, TornTraceTailIsSealedOnAppend) {
  const std::string dir = freshDir("trace-torn");
  const std::string path = dir + "/trace.jsonl";
  {
    std::ofstream out(path, std::ios::binary);
    out << "{\"name\":\"ok\"}\n{\"name\":\"torn"; // no trailing newline
  }
  {
    observe::JsonLinesSink sink(path, observe::JsonLinesSink::Mode::Append);
    observe::Tracer tracer;
    tracer.addSink(std::make_shared<observe::JsonLinesSink>(
        path, observe::JsonLinesSink::Mode::Append));
    tracer.event("after.crash");
    tracer.clearSinks();
  }
  std::ifstream in(path);
  std::string line;
  std::size_t parsed = 0, torn = 0;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    try {
      (void)support::Json::parse(line);
      ++parsed;
    } catch (const support::CheckError&) {
      ++torn;
    }
  }
  EXPECT_GE(parsed, 2u); // the intact line + the post-crash records
  EXPECT_EQ(torn, 1u);   // the torn line is isolated, not concatenated
}
