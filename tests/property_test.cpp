// Cross-module property tests: invariants that must hold for ALL kernels,
// machines, tile sizes and optimizer states — parameterized sweeps rather
// than single examples.
#include "core/hypervolume.h"
#include "ir/interp.h"
#include "core/pareto.h"
#include "kernels/kernel.h"
#include "machine/machine.h"
#include "perfmodel/costmodel.h"
#include "perfmodel/footprint.h"
#include "support/rng.h"
#include "transform/transforms.h"
#include "tuning/kernel_problem.h"

#include <gtest/gtest.h>

#include <cmath>

namespace motune {
namespace {

// --- model invariants over every (kernel, machine) pair --------------------

struct Case {
  const char* kernel;
  const char* machine;
};

machine::MachineModel machineOf(const Case& c) {
  return std::string(c.machine) == "W" ? machine::westmere()
                                       : machine::barcelona();
}

class ModelInvariants : public ::testing::TestWithParam<Case> {};

TEST_P(ModelInvariants, PredictionsArePositiveFiniteAndConsistent) {
  const auto& spec = kernels::kernelByName(GetParam().kernel);
  tuning::KernelTuningProblem problem(spec, machineOf(GetParam()));
  support::Rng rng(42);
  const auto& space = problem.space();
  for (int trial = 0; trial < 40; ++trial) {
    tuning::Config c;
    for (const auto& p : space) c.push_back(rng.uniformInt(p.lo, p.hi));
    const perf::Prediction pred = problem.predictFull(c);
    ASSERT_TRUE(std::isfinite(pred.seconds)) << spec.name;
    ASSERT_GT(pred.seconds, 0.0);
    ASSERT_DOUBLE_EQ(pred.resources,
                     static_cast<double>(c.back()) * pred.seconds);
    ASSERT_GT(pred.joules, 0.0);
    ASSERT_GE(pred.imbalance, 1.0);
    ASSERT_GE(pred.trafficBytes.back(), 0.0);
    // Compulsory DRAM traffic cannot exceed the model's line-granular
    // every-access-misses bound but must cover each array at least once
    // for single-sweep kernels; just require a sane positive value.
    ASSERT_TRUE(std::isfinite(pred.trafficBytes.back()));
  }
}

TEST_P(ModelInvariants, MoreThreadsNeverSlowerAtModestCounts) {
  // With fixed reasonable tiles, going 1 -> 2 -> 4 threads must not hurt
  // (beyond that, contention may legitimately invert on tiny problems).
  const auto& spec = kernels::kernelByName(GetParam().kernel);
  tuning::KernelTuningProblem problem(spec, machineOf(GetParam()));
  tuning::Config base;
  for (std::size_t d = 0; d < problem.skeleton().tileDepth(); ++d)
    base.push_back(std::min<std::int64_t>(32, problem.space()[d].hi));
  double prev = std::numeric_limits<double>::infinity();
  for (int p : {1, 2, 4}) {
    tuning::Config c = base;
    c.push_back(p);
    const double t = problem.evaluate(c)[0];
    EXPECT_LT(t, prev * 1.001) << spec.name << " p=" << p;
    prev = t;
  }
}

TEST_P(ModelInvariants, SerialEnergyScalesWithTime) {
  // For a fixed machine, serial energy is dominated by power x time: a
  // config that doubles the time should cost roughly more energy.
  const auto& spec = kernels::kernelByName(GetParam().kernel);
  tuning::KernelTuningProblem problem(
      spec, machineOf(GetParam()), 0, {},
      {tuning::Objective::Time, tuning::Objective::Energy});
  tuning::Config fast, slow;
  for (std::size_t d = 0; d < problem.skeleton().tileDepth(); ++d) {
    fast.push_back(std::min<std::int64_t>(32, problem.space()[d].hi));
    slow.push_back(1);
  }
  fast.push_back(1);
  slow.push_back(1);
  const auto f = problem.evaluate(fast);
  const auto s = problem.evaluate(slow);
  if (s[0] > 1.5 * f[0]) {
    EXPECT_GT(s[1], f[1]);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKernelsBothMachines, ModelInvariants,
    ::testing::Values(Case{"mm", "W"}, Case{"mm", "B"}, Case{"dsyrk", "W"},
                      Case{"dsyrk", "B"}, Case{"jacobi-2d", "W"},
                      Case{"jacobi-2d", "B"}, Case{"3d-stencil", "W"},
                      Case{"3d-stencil", "B"}, Case{"n-body", "W"},
                      Case{"n-body", "B"}),
    [](const ::testing::TestParamInfo<Case>& info) {
      std::string name = info.param.kernel;
      for (auto& ch : name)
        if (ch == '-') ch = '_';
      return name + "_" + info.param.machine;
    });

// --- footprint invariants ----------------------------------------------------

TEST(FootprintProperties, MonotoneInLevelForAllKernels) {
  // Outer levels enclose inner ones: footprints never grow with the level
  // index (deeper = fewer varying loops = smaller footprint).
  for (const auto& spec : kernels::allKernels()) {
    const ir::Program base = spec.buildIR(spec.testN * 2);
    std::vector<std::int64_t> sizes(spec.tileDims, 4);
    const ir::Program tiled = transform::tile(base, sizes);
    const perf::NestAnalysis na = perf::analyzeNest(tiled);
    for (std::size_t a = 0; a < na.arrays.size(); ++a) {
      double prev = std::numeric_limits<double>::infinity();
      for (std::size_t lvl = 0; lvl <= na.loops.size(); ++lvl) {
        const double fp = perf::footprintBytes(na, a, lvl, 64);
        ASSERT_LE(fp, prev * (1.0 + 1e-12))
            << spec.name << " array " << a << " level " << lvl;
        prev = fp;
      }
    }
  }
}

TEST(FootprintProperties, LeafIterationsMatchInterpreterCounts) {
  // The analytic iteration count must equal the exact executed statement
  // count (per leaf statement) for tiled programs with boundary tiles.
  support::Rng rng(7);
  for (int trial = 0; trial < 10; ++trial) {
    const std::int64_t n = rng.uniformInt(5, 14);
    const ir::Program mm = kernels::buildMM(n);
    const std::int64_t sizes[] = {rng.uniformInt(1, n), rng.uniformInt(1, n),
                                  rng.uniformInt(1, n)};
    const ir::Program tiled = transform::tile(mm, sizes);
    const perf::NestAnalysis na = perf::analyzeNest(tiled);
    ir::Interpreter interp(tiled);
    interp.run();
    ASSERT_NEAR(na.leafIterations(),
                static_cast<double>(interp.statementsExecuted()), 1e-6);
  }
}

// --- hypervolume properties ---------------------------------------------------

TEST(HypervolumeProperties, DominatedPointsNeverChangeVolume) {
  support::Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<tuning::Objectives> pts;
    for (int i = 0; i < 8; ++i)
      pts.push_back({rng.uniform(0.0, 0.9), rng.uniform(0.0, 0.9)});
    const double before = opt::hypervolume2d(pts, {1.0, 1.0});
    // Add a point dominated by pts[0].
    auto withDominated = pts;
    withDominated.push_back({pts[0][0] + 0.05, pts[0][1] + 0.05});
    EXPECT_NEAR(opt::hypervolume2d(withDominated, {1.0, 1.0}), before,
                1e-12);
  }
}

TEST(HypervolumeProperties, AddingPointsNeverDecreasesVolume) {
  support::Rng rng(13);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<tuning::Objectives> pts;
    double prev = 0.0;
    for (int i = 0; i < 10; ++i) {
      pts.push_back({rng.uniform(), rng.uniform()});
      const double hv = opt::hypervolume2d(pts, {1.0, 1.0});
      ASSERT_GE(hv, prev - 1e-12);
      prev = hv;
    }
  }
}

TEST(HypervolumeProperties, BoundedByUnitBox) {
  support::Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<tuning::Objectives> pts;
    for (int i = 0; i < 30; ++i)
      pts.push_back({rng.uniform(-0.2, 1.2), rng.uniform(-0.2, 1.2)});
    const double hv = opt::hypervolume2d(pts, {1.0, 1.0});
    EXPECT_GE(hv, 0.0);
    EXPECT_LE(hv, 1.0 + 1e-12); // clipping keeps it inside the box
  }
}

TEST(HypervolumeProperties, NdAgreesWith2dOnRandomFronts) {
  support::Rng rng(19);
  for (int trial = 0; trial < 20; ++trial) {
    std::vector<tuning::Objectives> p2, p3;
    for (int i = 0; i < 12; ++i) {
      const double a = rng.uniform();
      const double b = rng.uniform();
      p2.push_back({a, b});
      p3.push_back({a, b, 0.0});
    }
    EXPECT_NEAR(opt::hypervolume2d(p2, {1.0, 1.0}),
                opt::hypervolumeNd(p3, {1.0, 1.0, 1.0}), 1e-10);
  }
}

// --- Pareto properties ---------------------------------------------------------

TEST(ParetoProperties, FrontOfFrontIsIdempotent) {
  support::Rng rng(23);
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<opt::Individual> pop;
    for (int i = 0; i < 40; ++i)
      pop.push_back({{},
                     {static_cast<std::int64_t>(i)},
                     {rng.uniform(), rng.uniform()}});
    const auto front = opt::paretoFront(pop);
    const auto again = opt::paretoFront(front);
    EXPECT_EQ(front.size(), again.size());
  }
}

TEST(ParetoProperties, SortPartitionsEverything) {
  support::Rng rng(29);
  std::vector<opt::Individual> pop;
  for (int i = 0; i < 60; ++i)
    pop.push_back({{},
                   {static_cast<std::int64_t>(i)},
                   {rng.uniform(), rng.uniform()}});
  const auto fronts = opt::nonDominatedSort(pop);
  std::size_t total = 0;
  std::vector<bool> seen(pop.size(), false);
  for (const auto& f : fronts) {
    total += f.size();
    for (std::size_t i : f) {
      EXPECT_FALSE(seen[i]);
      seen[i] = true;
    }
  }
  EXPECT_EQ(total, pop.size());
}

} // namespace
} // namespace motune
