#include "machine/machine.h"

#include <gtest/gtest.h>

namespace motune::machine {
namespace {

TEST(Machine, WestmereMatchesPaperTableI) {
  const MachineModel m = westmere();
  EXPECT_EQ(m.sockets, 4);
  EXPECT_EQ(m.coresPerSocket, 10);
  EXPECT_EQ(m.totalCores(), 40);
  ASSERT_EQ(m.caches.size(), 3u);
  EXPECT_EQ(m.caches[0].capacityBytes, 32 * 1024);
  EXPECT_EQ(m.caches[1].capacityBytes, 256 * 1024);
  EXPECT_EQ(m.caches[2].capacityBytes, 30 * 1024 * 1024);
  EXPECT_FALSE(m.caches[0].sharedPerSocket);
  EXPECT_FALSE(m.caches[1].sharedPerSocket);
  EXPECT_TRUE(m.caches[2].sharedPerSocket);
}

TEST(Machine, BarcelonaMatchesPaperTableI) {
  const MachineModel m = barcelona();
  EXPECT_EQ(m.sockets, 8);
  EXPECT_EQ(m.coresPerSocket, 4);
  EXPECT_EQ(m.totalCores(), 32);
  EXPECT_EQ(m.caches[0].capacityBytes, 64 * 1024);
  EXPECT_EQ(m.caches[1].capacityBytes, 512 * 1024);
  EXPECT_EQ(m.caches[2].capacityBytes, 2 * 1024 * 1024);
}

TEST(Machine, FillFirstPlacement) {
  const MachineModel m = westmere();
  EXPECT_EQ(m.socketsUsed(1), 1);
  EXPECT_EQ(m.socketsUsed(10), 1);
  EXPECT_EQ(m.socketsUsed(11), 2);
  EXPECT_EQ(m.socketsUsed(40), 4);
  EXPECT_EQ(m.maxThreadsOnOneSocket(1), 1);
  EXPECT_EQ(m.maxThreadsOnOneSocket(7), 7);
  EXPECT_EQ(m.maxThreadsOnOneSocket(25), 10);
}

TEST(Machine, SharedL3DividedAmongCoLocatedThreads) {
  const MachineModel m = westmere();
  const double full = m.effectiveCapacityPerThread(2, 1);
  EXPECT_DOUBLE_EQ(full, 30.0 * 1024 * 1024);
  EXPECT_DOUBLE_EQ(m.effectiveCapacityPerThread(2, 10), full / 10);
  // Beyond one socket the per-thread share stays at the full-socket split.
  EXPECT_DOUBLE_EQ(m.effectiveCapacityPerThread(2, 40), full / 10);
}

TEST(Machine, PrivateCachesNotDivided) {
  const MachineModel m = westmere();
  EXPECT_DOUBLE_EQ(m.effectiveCapacityPerThread(0, 40), 32.0 * 1024);
  EXPECT_DOUBLE_EQ(m.effectiveCapacityPerThread(1, 40), 256.0 * 1024);
}

TEST(Machine, BandwidthScalesWithOccupiedSockets) {
  const MachineModel m = barcelona();
  EXPECT_DOUBLE_EQ(m.aggregateDramBandwidthGBs(4), m.dramBandwidthGBs);
  EXPECT_DOUBLE_EQ(m.aggregateDramBandwidthGBs(32),
                   8 * m.dramBandwidthGBs);
}

TEST(Machine, ContentionFactorMonotone) {
  for (const MachineModel& m : {westmere(), barcelona()}) {
    EXPECT_DOUBLE_EQ(m.memContentionFactor(1), 1.0);
    double prev = 1.0;
    for (int p = 2; p <= m.totalCores(); ++p) {
      const double f = m.memContentionFactor(p);
      EXPECT_GE(f, prev) << "p=" << p << " on " << m.name;
      prev = f;
    }
    EXPECT_GT(prev, 1.3); // full machine pays substantial friction
  }
}

TEST(Machine, EvaluatedThreadCountsMatchPaper) {
  EXPECT_EQ(evaluatedThreadCounts(westmere()),
            (std::vector<int>{1, 5, 10, 20, 40}));
  EXPECT_EQ(evaluatedThreadCounts(barcelona()),
            (std::vector<int>{1, 2, 4, 8, 16, 32}));
}

} // namespace
} // namespace motune::machine
