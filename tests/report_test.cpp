#include "observe/report.h"

#include "support/check.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>

namespace motune::observe {
namespace {

std::string dataPath(const std::string& name) {
  return std::string(MOTUNE_TEST_DATA_DIR) + "/" + name;
}

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(Report, BuildsEverySectionFromMiniTrace) {
  const auto records = parseTraceFile(dataPath("mini_trace.jsonl"));
  ASSERT_EQ(records.size(), 20u);
  const Report report = buildReport(records);

  EXPECT_DOUBLE_EQ(report.wallEpochUnix, 1754000000.0);

  // Self-time attribution: autotune.tune (0.1) minus rsgde3.run (0.08)
  // leaves 0.02 self; rsgde3.run minus its three generations likewise.
  double tuneSelf = -1.0, runSelf = -1.0, genSelf = -1.0;
  for (const auto& s : report.hotSpans) {
    if (s.name == "autotune.tune") tuneSelf = s.selfSeconds;
    if (s.name == "rsgde3.run") runSelf = s.selfSeconds;
    if (s.name == "gde3.generation") genSelf = s.selfSeconds;
  }
  EXPECT_NEAR(tuneSelf, 0.02, 1e-12);
  EXPECT_NEAR(runSelf, 0.02, 1e-12);
  EXPECT_NEAR(genSelf, 0.06, 1e-12); // 3 generations x 0.02, all leaf time

  // Collapsed stacks carry full root-to-leaf paths in microseconds.
  EXPECT_NE(report.collapsedStacks.find(
                "autotune.tune;rsgde3.run;gde3.generation 60000"),
            std::string::npos);
  EXPECT_NE(report.collapsedStacks.find("rt.region 24000"),
            std::string::npos);

  // Convergence: hv 0.5 -> 0.6 is an 20% gain, far above the 0.2% stall
  // threshold.
  ASSERT_EQ(report.convergence.size(), 3u);
  EXPECT_EQ(report.convergence.front().gen, 0);
  EXPECT_DOUBLE_EQ(report.convergence.back().bestHv, 0.6);
  EXPECT_EQ(report.convergence.back().immigrants, 5);
  EXPECT_FALSE(report.stall.stalled);
  EXPECT_NEAR(report.stall.totalImprovement, 0.2, 1e-12);
  EXPECT_EQ(report.stall.flatTail, 0);

  // Front, evaluator, selection, validation, thread sections.
  ASSERT_EQ(report.front.size(), 2u);
  EXPECT_EQ(report.front[0].at("tiles").asString(), "16x16x8");
  EXPECT_EQ(report.uniqueEvaluations, 100u);
  EXPECT_EQ(report.memoHits, 50u);
  EXPECT_NEAR(report.memoHitRate, 50.0 / 150.0, 1e-12);
  EXPECT_DOUBLE_EQ(report.evalLatency.at("p90").asNumber(), 0.002);
  ASSERT_EQ(report.selectionsByPolicy.size(), 1u);
  EXPECT_EQ(report.selectionsByPolicy.at("weighted(0.7,0.3)").at(0), 2u);
  EXPECT_EQ(report.invocations.at(0), 2u);
  ASSERT_EQ(report.validations.size(), 1u);
  EXPECT_DOUBLE_EQ(report.validations[0].at("dram_ratio").asNumber(), 1.25);
  ASSERT_EQ(report.threads.size(), 2u); // tids 2 and 3
  EXPECT_EQ(report.threads[0].tid, 2u);
  EXPECT_EQ(report.threads[0].regions, 2u);
  EXPECT_NEAR(report.threads[0].busySeconds, 0.024, 1e-12);
  EXPECT_EQ(report.threads[1].tasks, 1u);
  EXPECT_EQ(report.threads[1].chunks, 1u);
  EXPECT_NEAR(report.threads[1].idleSeconds, 0.002, 1e-12);
  EXPECT_TRUE(report.sawRingDropCounter);
  EXPECT_EQ(report.ringDrops, 0u);
}

TEST(Report, StallDetectorFiresOnFlatTrajectoryOnly) {
  auto generation = [](std::int64_t gen, double hv) {
    TraceRecord r;
    r.kind = TraceRecord::Kind::Span;
    r.name = "gde3.generation";
    r.id = static_cast<std::uint64_t>(gen) + 1;
    r.attrs = {{"gen", support::Json(gen)}, {"hv", support::Json(hv)}};
    return r;
  };

  // Flat run: 0.1% total gain over 8 generations -> stalled.
  std::vector<TraceRecord> flat;
  for (int g = 0; g < 8; ++g)
    flat.push_back(generation(g, 0.5 + 0.0000625 * g));
  const Report stalled = buildReport(flat);
  EXPECT_TRUE(stalled.stall.stalled);
  EXPECT_NE(stalled.stall.verdict.find("STALLED"), std::string::npos);

  // Healthy run ending in a flat tail (GDE3's no-improvement termination
  // means every good run ends flat) must NOT trip the detector.
  std::vector<TraceRecord> healthy;
  for (int g = 0; g < 8; ++g)
    healthy.push_back(generation(g, g < 3 ? 0.4 + 0.1 * g : 0.6));
  const Report converged = buildReport(healthy);
  EXPECT_FALSE(converged.stall.stalled);
  EXPECT_EQ(converged.stall.flatTail, 5);
}

TEST(Report, JsonRenderingRoundTrips) {
  const auto records = parseTraceFile(dataPath("mini_trace.jsonl"));
  const Report report = buildReport(records);
  const support::Json json = reportToJson(report);
  // dump + parse round trip, then spot-check the sections.
  const support::Json parsed = support::Json::parse(json.dump(2));
  EXPECT_EQ(parsed.at("records").asInt(), 20);
  EXPECT_FALSE(parsed.at("stall").at("stalled").asBool());
  EXPECT_EQ(parsed.at("evaluator").at("unique").asInt(), 100);
  EXPECT_EQ(parsed.at("front").size(), 2u);
  EXPECT_EQ(parsed.at("selections").at("weighted(0.7,0.3)").at("v0").asInt(),
            2);
  EXPECT_EQ(parsed.at("ring_drops").asInt(), 0);
}

// Golden-output test: the markdown for the checked-in miniature trace is
// pinned byte-for-byte. Regenerate deliberately after format changes with
//   MOTUNE_REGEN_GOLDEN=1 ./report_test
TEST(Report, MarkdownMatchesGolden) {
  const auto records = parseTraceFile(dataPath("mini_trace.jsonl"));
  const std::string markdown = renderMarkdown(buildReport(records));
  const std::string goldenPath = dataPath("mini_trace_report.md");
  if (std::getenv("MOTUNE_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(goldenPath);
    out << markdown;
    GTEST_SKIP() << "golden regenerated at " << goldenPath;
  }
  EXPECT_EQ(markdown, readFile(goldenPath));
}

TEST(Report, AdaptiveCountersRenderOnlyWhenPresent) {
  // The tuning-only mini trace has no rt.adaptive.* counters: neither the
  // markdown section nor the JSON key may appear (golden stability).
  const auto records = parseTraceFile(dataPath("mini_trace.jsonl"));
  const Report without = buildReport(records);
  EXPECT_TRUE(without.adaptiveCounters.empty());
  EXPECT_EQ(renderMarkdown(without).find("adaptive counter"),
            std::string::npos);
  EXPECT_FALSE(reportToJson(without).has("adaptive"));

  auto counter = [](const std::string& name, std::int64_t value) {
    TraceRecord r;
    r.kind = TraceRecord::Kind::Counter;
    r.name = name;
    r.attrs = {{"value", support::Json(value)}};
    return r;
  };
  auto augmented = records;
  augmented.push_back(counter("rt.adaptive.invocations", 30000));
  augmented.push_back(counter("rt.adaptive.switches", 3));
  augmented.push_back(counter("rt.adaptive.explorations", 857));
  augmented.push_back(counter("rt.adaptive.context_shifts", 8));

  const Report with = buildReport(augmented);
  ASSERT_EQ(with.adaptiveCounters.size(), 4u);
  EXPECT_EQ(with.adaptiveCounters.at("rt.adaptive.invocations"), 30000u);
  EXPECT_EQ(with.adaptiveCounters.at("rt.adaptive.switches"), 3u);

  const std::string markdown = renderMarkdown(with);
  EXPECT_NE(markdown.find("adaptive counter"), std::string::npos);
  EXPECT_NE(markdown.find("rt.adaptive.context_shifts | 8"),
            std::string::npos);

  const support::Json json =
      support::Json::parse(reportToJson(with).dump(2));
  EXPECT_EQ(json.at("adaptive").at("rt.adaptive.explorations").asInt(), 857);
}

TEST(Report, RejectsMalformedTraceWithLineNumber) {
  std::istringstream in("{\"type\":\"event\",\"name\":\"ok\",\"t\":0}\n"
                        "this is not json\n");
  try {
    parseTraceJsonl(in);
    FAIL() << "expected CheckError";
  } catch (const std::exception& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

} // namespace
} // namespace motune::observe
