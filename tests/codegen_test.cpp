#include "codegen/cemit.h"
#include "kernels/kernel.h"
#include "transform/transforms.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>

namespace motune::codegen {
namespace {

TEST(Emit, FunctionSignatureAndCasts) {
  const std::string c = emitFunction(kernels::buildMM(16), "mm_kernel");
  EXPECT_NE(c.find("void mm_kernel(double* restrict A_arg, "
                   "double* restrict B_arg, double* restrict C_arg)"),
            std::string::npos);
  EXPECT_NE(c.find("double (*A)[16] = (double (*)[16])A_arg;"),
            std::string::npos);
  EXPECT_NE(c.find("C[i][j] += (A[i][k] * B[k][j]);"), std::string::npos);
}

TEST(Emit, OneDimensionalArraysStayFlat) {
  const std::string c = emitFunction(kernels::buildNBody(8), "nbody_kernel");
  EXPECT_NE(c.find("double* X = X_arg;"), std::string::npos);
  EXPECT_EQ(c.find("double (*X)"), std::string::npos);
}

TEST(Emit, TiledLoopUsesTernaryMin) {
  const ir::Program mm = kernels::buildMM(10);
  const std::int64_t sizes[] = {4, 4, 4};
  const std::string c = emitFunction(transform::tile(mm, sizes), "mm_tiled");
  EXPECT_NE(c.find("i_t + 4"), std::string::npos);
  EXPECT_NE(c.find("?"), std::string::npos); // the min() cap
}

TEST(Emit, ParallelLoopGetsOmpPragma) {
  const ir::Program mm = kernels::buildMM(10);
  const std::int64_t sizes[] = {4, 4, 4};
  const ir::Program par =
      transform::parallelizeOuter(transform::tile(mm, sizes), 2);
  const std::string c = emitFunction(par, "mm_par");
  EXPECT_NE(c.find("#pragma omp parallel for collapse(2) schedule(static)"),
            std::string::npos);
}

TEST(MultiVersion, ModuleContainsTableAndMetadata) {
  std::vector<VersionDescriptor> versions;
  for (int v = 0; v < 3; ++v) {
    VersionDescriptor d;
    d.program = kernels::buildMM(8);
    d.tileSizes = {2 + v, 4, 8};
    d.threads = 1 << v;
    d.estTimeSeconds = 1.0 / (v + 1);
    d.estResources = 1.0;
    versions.push_back(std::move(d));
  }
  const std::string c = emitMultiVersionModule("mm", versions);
  EXPECT_NE(c.find("static void mm_v0"), std::string::npos);
  EXPECT_NE(c.find("static void mm_v2"), std::string::npos);
  EXPECT_NE(c.find("mm_version_t mm_versions[]"), std::string::npos);
  EXPECT_NE(c.find("const int mm_version_count = 3;"), std::string::npos);
  EXPECT_NE(c.find("{2, 4, 8}, 1,"), std::string::npos);
  EXPECT_NE(c.find("num_threads"), std::string::npos);
}

/// End-to-end: the emitted C must be accepted by the system C compiler.
/// (The driver that exercises the compiled code lives in integration_test.)
TEST(Emit, GeneratedCodeCompilesWithSystemCompiler) {
  if (std::system("command -v cc >/dev/null 2>&1") != 0)
    GTEST_SKIP() << "no system C compiler available";

  const ir::Program mm = kernels::buildMM(12);
  const std::int64_t sizes[] = {4, 5, 6};
  const ir::Program par =
      transform::parallelizeOuter(transform::tile(mm, sizes), 2);

  std::vector<VersionDescriptor> versions;
  VersionDescriptor d;
  d.program = par.clone();
  d.tileSizes = {4, 5, 6};
  d.threads = 2;
  d.estTimeSeconds = 0.5;
  d.estResources = 1.0;
  versions.push_back(std::move(d));

  const std::string module = emitMultiVersionModule("mm", versions);
  const std::string dir = ::testing::TempDir();
  const std::string srcPath = dir + "/motune_emit_test.c";
  {
    std::ofstream out(srcPath);
    out << module;
  }
  const std::string cmd = "cc -std=c99 -O1 -fopenmp -c '" + srcPath +
                          "' -o '" + dir + "/motune_emit_test.o' 2>&1";
  EXPECT_EQ(std::system(cmd.c_str()), 0) << "emitted module:\n" << module;
}

} // namespace
} // namespace motune::codegen
