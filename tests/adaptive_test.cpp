// Scenario suite for online adaptive version selection (ISSUE 8).
//
// Drives AdaptivePolicy through the deterministic traffic generator and
// asserts the three properties the gate cares about:
//   1. convergence — on every phase-changing scenario the adaptive bill
//      lands within 10% of the hindsight-best static arm per phase;
//   2. stability — the committed-switch count stays bounded by the
//      hysteresis settings;
//   3. reproducibility — the selection log is byte-identical across
//      reruns and across thread-pool sizes.

#include "multiversion/observed.h"
#include "observe/metrics.h"
#include "runtime/adaptive.h"
#include "runtime/parallel_for.h"
#include "runtime/region.h"
#include "runtime/scheduler.h"
#include "runtime/thread_pool.h"
#include "runtime/traffic.h"
#include "support/check.h"
#include "support/json.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <memory>
#include <sstream>

namespace motune::runtime {
namespace {

// ---------------------------------------------------------------------------
// ObservedCost (multiversion/observed.h)

TEST(ObservedCost, WindowedMeanTracksRecentSamples) {
  mv::ObservedCost w(4);
  EXPECT_TRUE(w.empty());
  w.push(1.0);
  w.push(2.0);
  w.push(3.0);
  EXPECT_EQ(w.count(), 3u);
  EXPECT_DOUBLE_EQ(w.mean(), 2.0);
  EXPECT_DOUBLE_EQ(w.last(), 3.0);
  w.push(4.0);
  w.push(5.0); // evicts the 1.0
  EXPECT_EQ(w.count(), 4u);
  EXPECT_EQ(w.pushes(), 5u);
  EXPECT_DOUBLE_EQ(w.mean(), (2.0 + 3.0 + 4.0 + 5.0) / 4.0);
  EXPECT_DOUBLE_EQ(w.min(), 2.0);
}

TEST(ObservedCost, LongStreamDoesNotDriftTheMean) {
  mv::ObservedCost w(8);
  for (int i = 0; i < 1000000; ++i) w.push(0.1);
  EXPECT_DOUBLE_EQ(w.mean(), 0.1);
}

TEST(ObservedCost, ClearEmptiesTheWindowButKeepsLifetimePushes) {
  mv::ObservedCost w(4);
  w.push(1.0);
  w.push(2.0);
  w.clear();
  EXPECT_TRUE(w.empty());
  EXPECT_EQ(w.pushes(), 2u);
  EXPECT_THROW(w.mean(), support::CheckError);
}

TEST(ObservedCost, RejectsZeroCapacity) {
  EXPECT_THROW(mv::ObservedCost(0), support::CheckError);
}

// ---------------------------------------------------------------------------
// AdaptivePolicy mechanics

AdaptiveOptions fastOptions() {
  AdaptiveOptions o;
  o.seed = 7;
  o.window = 16;
  o.epsilon = 0.05;
  o.minDwell = 20;
  o.switchMargin = 0.05;
  return o;
}

TEST(Adaptive, WarmupMeasuresEveryArmBeforeExploiting) {
  mv::VersionTable table = syntheticTable(5, 1);
  AdaptivePolicy policy(fastOptions());
  std::vector<bool> seen(table.size(), false);
  for (std::size_t i = 0; i < table.size(); ++i) {
    const std::size_t arm = policy.select(table);
    EXPECT_EQ(policy.lastReason(), SelectReason::Warmup);
    EXPECT_FALSE(seen[arm]) << "warmup measured arm " << arm << " twice";
    seen[arm] = true;
    policy.onMeasured(arm, 1.0 + static_cast<double>(arm));
  }
  const std::size_t next = policy.select(table);
  EXPECT_NE(policy.lastReason(), SelectReason::Warmup);
  policy.onMeasured(next, 1.0);
}

TEST(Adaptive, ConvergesToTheCheapestArm) {
  mv::VersionTable table = syntheticTable(6, 2);
  AdaptivePolicy policy(fastOptions());
  // Arm 3 is secretly cheap; everything else is 10x worse.
  for (int i = 0; i < 500; ++i) {
    const std::size_t arm = policy.select(table);
    policy.onMeasured(arm, arm == 3 ? 0.01 : 0.1);
  }
  EXPECT_EQ(policy.committedArm(), 3u);
}

TEST(Adaptive, HysteresisHoldsAgainstNoiseWithinTheMargin) {
  mv::VersionTable table = syntheticTable(4, 3);
  AdaptiveOptions o = fastOptions();
  o.epsilon = 0.2; // explore a lot so every arm stays sampled
  AdaptivePolicy policy(o);
  support::Rng noise(99);
  // All arms genuinely equal: 1.0 +- 2% — inside the 5% switch margin, so
  // after warmup the committed arm must never move.
  for (int i = 0; i < 2000; ++i) {
    const std::size_t arm = policy.select(table);
    policy.onMeasured(arm, 1.0 + 0.02 * (2.0 * noise.uniform() - 1.0));
  }
  EXPECT_EQ(policy.switches(), 0u);
}

TEST(Adaptive, MinDwellDelaysEvenAClearSwitch) {
  mv::VersionTable table = syntheticTable(2, 4);
  AdaptiveOptions o = fastOptions();
  o.epsilon = 0.3;
  o.minDwell = 100;
  AdaptivePolicy policy(o);
  // Arm 1 becomes 5x cheaper right after warmup; the switch must still
  // wait out the dwell.
  std::uint64_t decisionsAtSwitch = 0;
  for (int i = 0; i < 400 && policy.switches() == 0; ++i) {
    const std::size_t arm = policy.select(table);
    policy.onMeasured(arm, arm == 1 ? 0.2 : 1.0);
    decisionsAtSwitch = policy.decisions();
  }
  if (policy.committedArm() == 1 && policy.switches() > 0) {
    EXPECT_GE(decisionsAtSwitch, o.minDwell);
  }
}

TEST(Adaptive, ExplorationsAreCountedAndDoNotMoveTheCommittedArm) {
  mv::VersionTable table = syntheticTable(4, 5);
  AdaptiveOptions o = fastOptions();
  o.epsilon = 0.25;
  o.switchMargin = 10.0; // absurd margin: switching is impossible
  AdaptivePolicy policy(o);
  for (int i = 0; i < 1000; ++i) {
    const std::size_t arm = policy.select(table);
    policy.onMeasured(arm, 1.0 + static_cast<double>(arm));
  }
  EXPECT_GT(policy.explorations(), 100u); // ~25% of 1000
  EXPECT_LT(policy.explorations(), 400u);
  EXPECT_EQ(policy.switches(), 0u);
}

TEST(Adaptive, EpsilonZeroNeverExplores) {
  mv::VersionTable table = syntheticTable(4, 6);
  AdaptiveOptions o = fastOptions();
  o.epsilon = 0.0;
  AdaptivePolicy policy(o);
  for (int i = 0; i < 500; ++i) {
    const std::size_t arm = policy.select(table);
    policy.onMeasured(arm, 1.0 + static_cast<double>(arm));
  }
  EXPECT_EQ(policy.explorations(), 0u);
}

TEST(Adaptive, ContextShiftReentersWarmupAndReturningContextResumes) {
  mv::VersionTable table = syntheticTable(3, 7);
  AdaptivePolicy policy(fastOptions());
  AdaptiveContext home;
  home.sizeBucket = 12;
  home.availableThreads = 16;
  policy.setContext(home);
  for (int i = 0; i < 100; ++i) {
    const std::size_t arm = policy.select(table);
    policy.onMeasured(arm, arm == 0 ? 0.1 : 1.0);
  }
  const std::vector<ArmSnapshot> homeStats = policy.armStats();
  EXPECT_EQ(policy.committedArm(), 0u);

  AdaptiveContext starved = home;
  starved.availableThreads = 2;
  policy.setContext(starved);
  EXPECT_EQ(policy.contextShifts(), 1u);
  // Unseen context: warmup restarts from scratch.
  const std::size_t first = policy.select(table);
  EXPECT_EQ(policy.lastReason(), SelectReason::Warmup);
  policy.onMeasured(first, 1.0);

  // Returning home resumes the learned statistics instantly.
  policy.setContext(home);
  EXPECT_EQ(policy.contextShifts(), 2u);
  EXPECT_EQ(policy.committedArm(), 0u);
  const std::vector<ArmSnapshot> resumed = policy.armStats();
  ASSERT_EQ(resumed.size(), homeStats.size());
  for (std::size_t i = 0; i < resumed.size(); ++i)
    EXPECT_EQ(resumed[i].pulls, homeStats[i].pulls);
}

TEST(Adaptive, UcbModeAlsoConverges) {
  mv::VersionTable table = syntheticTable(5, 8);
  AdaptiveOptions o = fastOptions();
  o.explore = ExploreKind::Ucb;
  o.ucbC = 0.4;
  AdaptivePolicy policy(o);
  for (int i = 0; i < 1000; ++i) {
    const std::size_t arm = policy.select(table);
    policy.onMeasured(arm, arm == 2 ? 0.05 : 0.5);
  }
  EXPECT_EQ(policy.committedArm(), 2u);
}

TEST(Adaptive, RejectsDegenerateOptions) {
  AdaptiveOptions o;
  o.window = 0;
  EXPECT_THROW(AdaptivePolicy{o}, support::CheckError);
  o = AdaptiveOptions{};
  o.epsilon = 1.0;
  EXPECT_THROW(AdaptivePolicy{o}, support::CheckError);
  o = AdaptiveOptions{};
  o.warmupPulls = 0;
  EXPECT_THROW(AdaptivePolicy{o}, support::CheckError);
}

TEST(Adaptive, RegionInvokeFeedsMeasurementsBack) {
  mv::VersionTable table("adaptive-region");
  for (int v = 0; v < 3; ++v) {
    mv::VersionMeta meta;
    meta.threads = v == 0 ? 4 : (v == 1 ? 2 : 1);
    meta.timeSeconds = 0.1 * (v + 1);
    meta.resources = meta.timeSeconds * meta.threads;
    table.add({meta, [](int) {}});
  }
  Region region(std::move(table));
  AdaptiveOptions o = fastOptions();
  o.epsilon = 0.0;
  AdaptivePolicy policy(o);
  for (int i = 0; i < 50; ++i) region.invoke(policy);
  // Every invocation's wall time reached the policy's windows.
  std::uint64_t pulls = 0;
  for (const ArmSnapshot& arm : policy.armStats()) pulls += arm.pulls;
  EXPECT_EQ(pulls, 50u);
  EXPECT_EQ(region.totalInvocations(), 50u);
}

TEST(Adaptive, CoScheduledPressureSumsOtherRegionsThreads) {
  std::vector<Placement> placements;
  placements.push_back({0, 0, 8, 0.1});
  placements.push_back({1, 2, 4, 0.2});
  placements.push_back({2, 1, 2, 0.3});
  EXPECT_EQ(coScheduledPressure(placements, 1), 10);
  EXPECT_EQ(coScheduledPressure(placements, 0), 6);
  EXPECT_EQ(coScheduledPressure({}, 0), 0);
}

TEST(Adaptive, SizeBucketIsFloorLog2) {
  EXPECT_EQ(sizeBucketOf(0), 0);
  EXPECT_EQ(sizeBucketOf(1), 0);
  EXPECT_EQ(sizeBucketOf(2), 1);
  EXPECT_EQ(sizeBucketOf(1023), 9);
  EXPECT_EQ(sizeBucketOf(1024), 10);
  EXPECT_EQ(sizeBucketOf(1025), 10);
}

// ---------------------------------------------------------------------------
// Traffic spec grammar

TEST(Traffic, SpecParsesAndRoundTrips) {
  const std::string text = "seed 42\n"
                           "ref-size 2048\n"
                           "fork-cost 0.002\n"
                           "oversub-penalty 1.5\n"
                           "work-exponent 1.25\n"
                           "default-threads 8\n"
                           "phase name=warm invocations=100 size=2048\n"
                           "phase name=ramp invocations=200 size=2048..64 "
                           "threads=4 pressure=2 noise=0.1\n";
  const TrafficSpec spec = parseTrafficSpec(text);
  EXPECT_EQ(spec.seed, 42u);
  EXPECT_EQ(spec.refSize, 2048);
  EXPECT_EQ(spec.defaultThreads, 8);
  ASSERT_EQ(spec.phases.size(), 2u);
  EXPECT_EQ(spec.phases[1].name, "ramp");
  EXPECT_EQ(spec.phases[1].sizeLo, 2048);
  EXPECT_EQ(spec.phases[1].sizeHi, 64);
  EXPECT_EQ(spec.phases[1].availableThreads, 4);
  EXPECT_EQ(spec.phases[1].pressure, 2);
  EXPECT_DOUBLE_EQ(spec.phases[1].noise, 0.1);
  EXPECT_EQ(spec.totalInvocations(), 300u);
  // print -> parse is the identity.
  EXPECT_EQ(parseTrafficSpec(printTrafficSpec(spec)), spec);
}

TEST(Traffic, SpecParserRejectsGarbage) {
  EXPECT_THROW(parseTrafficSpec(""), support::CheckError);
  EXPECT_THROW(parseTrafficSpec("bogus 1\n"), support::CheckError);
  EXPECT_THROW(parseTrafficSpec("phase name=x invocations=abc\n"),
               support::CheckError);
  EXPECT_THROW(parseTrafficSpec("phase name=x unknown=1\n"),
               support::CheckError);
  EXPECT_THROW(parseTrafficSpec("seed\n"), support::CheckError);
}

TEST(Traffic, CommentsAndBlankLinesAreIgnored) {
  const TrafficSpec spec = parseTrafficSpec(
      "# a comment\n\nseed 5 # trailing\nphase name=p invocations=10\n");
  EXPECT_EQ(spec.seed, 5u);
  ASSERT_EQ(spec.phases.size(), 1u);
}

TEST(Traffic, BuiltinScenariosAreWellFormed) {
  for (const std::string& name : builtinScenarioNames()) {
    const TrafficSpec spec = builtinScenario(name, 11);
    EXPECT_EQ(spec.seed, 11u) << name;
    EXPECT_FALSE(spec.phases.empty()) << name;
    EXPECT_GT(spec.totalInvocations(), 0u) << name;
  }
  EXPECT_THROW(builtinScenario("nope", 1), support::CheckError);
}

TEST(Traffic, ScaleToPreservesPhaseShares) {
  TrafficSpec spec = builtinScenario("mix", 1);
  const std::size_t phases = spec.phases.size();
  spec.scaleTo(100000);
  EXPECT_EQ(spec.phases.size(), phases);
  const std::uint64_t total = spec.totalInvocations();
  EXPECT_GT(total, 90000u);
  EXPECT_LT(total, 110000u);
}

TEST(Traffic, GeneratorDecodesPhaseBoundariesAndRamps) {
  const TrafficSpec spec = parseTrafficSpec(
      "phase name=a invocations=10 size=1024\n"
      "phase name=b invocations=10 size=1024..64 threads=4 pressure=1\n");
  const TrafficGenerator gen(spec);
  EXPECT_EQ(gen.total(), 20u);
  EXPECT_EQ(gen.at(0).phase, 0u);
  EXPECT_EQ(gen.at(9).phase, 0u);
  EXPECT_EQ(gen.at(10).phase, 1u);
  EXPECT_EQ(gen.at(10).size, 1024);
  EXPECT_EQ(gen.at(19).size, 64);
  EXPECT_EQ(gen.at(10).availableThreads, 4);
  EXPECT_EQ(gen.at(10).pressure, 1);
  EXPECT_EQ(gen.at(0).availableThreads, spec.defaultThreads);
  // Monotone (non-increasing) geometric ramp.
  for (std::uint64_t i = 11; i < 20; ++i)
    EXPECT_LE(gen.at(i).size, gen.at(i - 1).size);
  EXPECT_THROW(gen.at(20), support::CheckError);
}

TEST(Traffic, CostModelPrefersParallelWhenWideAndSerialWhenStarved) {
  const TrafficSpec spec =
      parseTrafficSpec("fork-cost 2e-3\nphase name=p invocations=1\n");
  const TrafficGenerator gen(spec);
  mv::VersionMeta wide;
  wide.threads = 16;
  wide.timeSeconds = 0.1; // 1.6s of work across 16 threads
  mv::VersionMeta serial;
  serial.threads = 1;
  serial.timeSeconds = 1.0;

  TrafficPoint roomy = gen.at(0); // 16 threads available
  EXPECT_LT(gen.trueCost(wide, roomy), gen.trueCost(serial, roomy));

  TrafficPoint starved = roomy;
  starved.availableThreads = 2;
  EXPECT_GT(gen.trueCost(wide, starved), gen.trueCost(serial, starved));
}

TEST(Traffic, ObservedNoiseIsSelectionIndependentAndBounded) {
  TrafficSpec spec =
      parseTrafficSpec("phase name=p invocations=100 noise=0.2\n");
  spec.seed = 31;
  const TrafficGenerator gen(spec);
  mv::VersionMeta meta;
  meta.threads = 4;
  meta.timeSeconds = 0.25;
  const TrafficPoint point = gen.at(17);
  const double a = gen.observedCost(meta, point, 2);
  const double b = gen.observedCost(meta, point, 2);
  EXPECT_DOUBLE_EQ(a, b); // pure function of (seed, index, arm)
  const double truth = gen.trueCost(meta, point);
  EXPECT_GE(a, truth * 0.8 - 1e-12);
  EXPECT_LE(a, truth * 1.2 + 1e-12);
  // A different arm at the same invocation sees different noise.
  EXPECT_NE(a, gen.observedCost(meta, point, 3));
}

// ---------------------------------------------------------------------------
// Scenario suite: convergence + bounded switching (acceptance criteria)

struct ScenarioResult {
  ReplayOutcome outcome;
  std::string log;
};

ScenarioResult runScenario(const std::string& name, std::uint64_t seed) {
  const TrafficSpec spec = builtinScenario(name, seed);
  mv::VersionTable table = syntheticTable(6, seed, 16);
  AdaptiveOptions o;
  o.seed = seed;
  o.window = 16;
  o.epsilon = 0.03;
  o.minDwell = 50;
  o.switchMargin = 0.05;
  AdaptivePolicy policy(o);
  std::ostringstream log;
  ReplayOptions ro;
  ro.log = &log;
  ro.scenario = name;
  ScenarioResult r;
  r.outcome = replayTraffic(spec, table, policy, ro);
  r.log = log.str();
  return r;
}

class AdaptiveScenario : public ::testing::TestWithParam<const char*> {};

TEST_P(AdaptiveScenario, CumulativeCostWithinTenPercentOfHindsightBest) {
  const ScenarioResult r = runScenario(GetParam(), 1234);
  // bestStatic / adaptive >= 0.9 <=> adaptive <= bestStatic / 0.9 (+11%).
  EXPECT_GE(r.outcome.convergenceRatio(), 0.9)
      << "adaptive bill " << r.outcome.adaptiveCost
      << " vs hindsight best static " << r.outcome.bestStaticCost;
  // Sanity: the hindsight-best static schedule can never beat the oracle.
  EXPECT_GE(r.outcome.bestStaticCost, r.outcome.oracleCost * (1.0 - 1e-12));
}

TEST_P(AdaptiveScenario, SwitchCountBoundedByHysteresis) {
  const ScenarioResult r = runScenario(GetParam(), 1234);
  // Each committed switch costs at least minDwell invocations of dwell in
  // its context; context shifts add fresh contexts (each with its own
  // committed arm) but never reset dwell.
  const std::uint64_t bound =
      r.outcome.invocations / 50 + r.outcome.contextShifts + 1;
  EXPECT_LE(r.outcome.switches, bound);
}

TEST_P(AdaptiveScenario, SelectionLogIsBitIdenticalAcrossReruns) {
  const ScenarioResult a = runScenario(GetParam(), 77);
  const ScenarioResult b = runScenario(GetParam(), 77);
  EXPECT_EQ(a.log, b.log);
  EXPECT_EQ(a.outcome.selectionCounts, b.outcome.selectionCounts);
  EXPECT_EQ(a.outcome.switches, b.outcome.switches);
  // And a different seed genuinely changes the run (no hidden constants).
  const ScenarioResult c = runScenario(GetParam(), 78);
  EXPECT_NE(a.log, c.log);
}

INSTANTIATE_TEST_SUITE_P(Scenarios, AdaptiveScenario,
                         ::testing::Values("steady", "size-ramp",
                                           "thread-drop", "pressure-burst",
                                           "mix"),
                         [](const auto& paramInfo) {
                           std::string label = paramInfo.param;
                           for (char& c : label)
                             if (c == '-') c = '_';
                           return label;
                         });

TEST(Replay, PhaseChangingScenariosActuallyChangeTheWinningVersion) {
  // The suite would be vacuous if one arm dominated every phase: prove the
  // phase structure forces different hindsight-best arms, and that the
  // policy noticed (phase boundaries shift the observed context, and the
  // adaptive bill lands near the per-phase winner on both sides).
  const ScenarioResult r = runScenario("thread-drop", 5);
  ASSERT_EQ(r.outcome.phases.size(), 3u);
  EXPECT_NE(r.outcome.phases[0].bestStaticArm,
            r.outcome.phases[1].bestStaticArm);
  EXPECT_GE(r.outcome.contextShifts, 2u);
  for (const PhaseOutcome& phase : r.outcome.phases)
    EXPECT_LE(phase.adaptiveCost, phase.bestStaticCost * 1.25)
        << "phase " << phase.name << " never adapted";
}

TEST(Adaptive, EnvironmentDriftWithinOneContextForcesACommittedSwitch) {
  // No context change at all — the world just drifts under the policy's
  // feet: arm 0 is cheap for 400 invocations, then turns expensive while
  // arm 1 becomes the winner.  Exploration must notice and hysteresis must
  // commit exactly the switch the drift justifies.
  mv::VersionTable table = syntheticTable(3, 10);
  AdaptiveOptions o;
  o.seed = 17;
  o.window = 8;
  o.epsilon = 0.1;
  o.minDwell = 20;
  o.switchMargin = 0.05;
  AdaptivePolicy policy(o);
  for (int i = 0; i < 1200; ++i) {
    const bool drifted = i >= 400;
    const std::size_t arm = policy.select(table);
    double cost = 0.5;
    if (arm == 0) cost = drifted ? 1.0 : 0.1;
    if (arm == 1) cost = drifted ? 0.1 : 0.6;
    policy.onMeasured(arm, cost);
  }
  EXPECT_EQ(policy.committedArm(), 1u);
  EXPECT_GE(policy.switches(), 1u);
  EXPECT_LE(policy.switches(), 1200u / 20 + 1);
}

TEST(Replay, SelectionCountsSumToInvocations) {
  const ScenarioResult r = runScenario("mix", 9);
  std::uint64_t sum = 0;
  for (std::uint64_t c : r.outcome.selectionCounts) sum += c;
  EXPECT_EQ(sum, r.outcome.invocations);
  EXPECT_EQ(r.outcome.invocations,
            builtinScenario("mix", 9).totalInvocations());
}

TEST(Replay, LogRecordsAreWellFormedJsonWithHeaderAndSummary) {
  const ScenarioResult r = runScenario("size-ramp", 21);
  std::istringstream in(r.log);
  std::string line;
  std::vector<support::Json> records;
  while (std::getline(in, line))
    records.push_back(support::Json::parse(line));
  ASSERT_GE(records.size(), 2u);
  EXPECT_EQ(records.front().at("name").asString(), "replay.header");
  EXPECT_EQ(records.front().at("attrs").at("format").asString(),
            "motune-replay-v1");
  EXPECT_EQ(records.back().at("name").asString(), "replay.summary");
  const support::Json& summary = records.back().at("attrs");
  EXPECT_EQ(static_cast<std::uint64_t>(summary.at("invocations").asNumber()),
            r.outcome.invocations);
  std::uint64_t switches = 0;
  for (const support::Json& rec : records)
    if (rec.at("name").asString() == "replay.switch") ++switches;
  EXPECT_EQ(switches, r.outcome.switches);
}

TEST(Replay, ExecuteModeRunsTheRealBodiesWithoutChangingTheLog) {
  const TrafficSpec spec = parseTrafficSpec(
      "fork-cost 2e-3\nphase name=p invocations=400 size=4096 noise=0.05\n");
  mv::VersionTable table("exec");
  std::atomic<std::uint64_t> executed{0};
  for (int v = 0; v < 3; ++v) {
    mv::VersionMeta meta;
    meta.threads = v == 0 ? 8 : (v == 1 ? 2 : 1);
    meta.timeSeconds = 0.2 + 0.2 * v;
    meta.resources = meta.timeSeconds * meta.threads;
    table.add({meta, [&executed](int) { ++executed; }});
  }
  AdaptiveOptions o;
  o.seed = 3;
  auto run = [&](bool execute) {
    AdaptivePolicy policy(o);
    std::ostringstream log;
    ReplayOptions ro;
    ro.log = &log;
    ro.execute = execute;
    replayTraffic(spec, table, policy, ro);
    return log.str();
  };
  const std::string without = run(false);
  executed = 0;
  const std::string with = run(true);
  EXPECT_EQ(executed.load(), 400u);
  EXPECT_EQ(without, with);
}

// The satellite determinism gate: identical logs across ThreadPool sizes.
// The version bodies do real parallel work on pools of different widths;
// selection decisions are driven purely by the modelled costs, so the
// replay log must not change by a byte.
TEST(Replay, SelectionLogIsBitIdenticalAcrossThreadPoolSizes) {
  const TrafficSpec spec = builtinScenario("mix", 99);
  std::vector<std::string> logs;
  for (int workers : {1, 2, 4}) {
    ThreadPool pool(static_cast<std::size_t>(workers));
    mv::VersionTable table("pooled");
    for (int v = 0; v < 4; ++v) {
      mv::VersionMeta meta;
      meta.threads = 1 << (3 - v);
      meta.timeSeconds = 0.1 * (v + 1);
      meta.resources = meta.timeSeconds * meta.threads;
      auto sink = std::make_shared<std::atomic<std::int64_t>>(0);
      table.add({meta, [&pool, sink](int threads) {
                   parallelFor(pool, 0, 64, threads,
                               [&sink](std::int64_t i) { *sink += i; });
                 }});
    }
    AdaptiveOptions o;
    o.seed = 99;
    AdaptivePolicy policy(o);
    std::ostringstream log;
    ReplayOptions ro;
    ro.log = &log;
    ro.execute = true;
    ro.scenario = "mix";
    TrafficSpec scaled = spec;
    scaled.scaleTo(3000); // keep the executing variant quick
    replayTraffic(scaled, table, policy, ro);
    logs.push_back(log.str());
  }
  ASSERT_EQ(logs.size(), 3u);
  EXPECT_EQ(logs[0], logs[1]);
  EXPECT_EQ(logs[1], logs[2]);
}

TEST(Replay, AdaptiveCountersLandInTheGlobalRegistry) {
  // Counters are process-global and cumulative; measure the delta.
  auto& registry = observe::MetricsRegistry::global();
  const auto invocationsBefore =
      registry.counter("rt.adaptive.invocations").value();
  const auto shiftsBefore =
      registry.counter("rt.adaptive.context_shifts").value();
  const ScenarioResult r = runScenario("thread-drop", 55);
  EXPECT_EQ(registry.counter("rt.adaptive.invocations").value() -
                invocationsBefore,
            r.outcome.invocations);
  EXPECT_EQ(registry.counter("rt.adaptive.context_shifts").value() -
                shiftsBefore,
            r.outcome.contextShifts);
}

} // namespace
} // namespace motune::runtime
