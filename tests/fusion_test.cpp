#include "ir/interp.h"
#include "ir/parse.h"
#include "kernels/native.h"
#include "support/check.h"
#include "transform/fusion.h"
#include "transform/transforms.h"

#include <gtest/gtest.h>

namespace motune::transform {
namespace {

std::vector<double> runAndGet(const ir::Program& p,
                              const std::string& output,
                              std::uint64_t seed = 3) {
  ir::Interpreter interp(p);
  for (const auto& decl : p.arrays) {
    std::vector<double> data(static_cast<std::size_t>(decl.elements()));
    kernels::fillDeterministic(data, seed++);
    interp.array(decl.name) = data;
  }
  interp.run();
  return interp.array(output);
}

TEST(Fusion, CandidateDetection) {
  const ir::Program two = ir::parseProgram(R"(
    array A[8]
    array B[8]
    for i = 0 .. 8 { A[i] = 1.0; }
    for j = 0 .. 8 { B[j] = 2.0; }
  )");
  EXPECT_TRUE(fusionCandidate(two));

  const ir::Program mismatched = ir::parseProgram(R"(
    array A[8]
    array B[8]
    for i = 0 .. 8 { A[i] = 1.0; }
    for j = 0 .. 7 { B[j] = 2.0; }
  )");
  EXPECT_FALSE(fusionCandidate(mismatched));
}

TEST(Fusion, IndependentLoopsFuseAndPreserveSemantics) {
  const ir::Program p = ir::parseProgram(R"(
    array X[32]
    array Y[32]
    array S[32]
    array D[32]
    for i = 0 .. 32 { S[i] = X[i] + Y[i]; }
    for j = 0 .. 32 { D[j] = X[j] - Y[j]; }
  )");
  const ir::Program fused = fuse(p);
  EXPECT_EQ(fused.body.size(), 1u);
  EXPECT_EQ(fused.rootLoop().body.size(), 2u);
  EXPECT_EQ(runAndGet(p, "S"), runAndGet(fused, "S"));
  EXPECT_EQ(runAndGet(p, "D"), runAndGet(fused, "D"));
}

TEST(Fusion, ProducerConsumerSameIterationIsLegal) {
  // Second loop reads what the first wrote at the SAME iteration: legal.
  const ir::Program p = ir::parseProgram(R"(
    array A[16]
    array B[16]
    array C[16]
    for i = 0 .. 16 { B[i] = A[i] * 2.0; }
    for j = 0 .. 16 { C[j] = B[j] + 1.0; }
  )");
  const ir::Program fused = fuse(p);
  EXPECT_EQ(runAndGet(p, "C"), runAndGet(fused, "C"));
}

TEST(Fusion, ForwardShiftedConsumerIsLegal) {
  // Second loop reads B[j-1], produced by an EARLIER iteration of the
  // first loop: still legal after fusion (delta < 0).
  const ir::Program p = ir::parseProgram(R"(
    array A[16]
    array B[16]
    array C[16]
    for i = 0 .. 16 { B[i] = A[i]; }
    for j = 1 .. 16 { C[j] = B[j-1]; }
  )");
  // Headers differ (1..16 vs 0..16) -> not a candidate; align them first.
  const ir::Program aligned = ir::parseProgram(R"(
    array A[16]
    array B[16]
    array C[16]
    for i = 1 .. 16 { B[i] = A[i]; }
    for j = 1 .. 16 { C[j] = B[j-1]; }
  )");
  const ir::Program fused = fuse(aligned);
  EXPECT_EQ(runAndGet(aligned, "C"), runAndGet(fused, "C"));
  (void)p;
}

TEST(Fusion, BackwardDependenceRejected) {
  // Second loop reads B[j+1], which the first loop writes at a LATER
  // iteration: fusion would read the value too early.
  const ir::Program p = ir::parseProgram(R"(
    array A[16]
    array B[16]
    array C[16]
    for i = 0 .. 15 { B[i] = A[i]; }
    for j = 0 .. 15 { C[j] = B[j+1]; }
  )");
  EXPECT_THROW(fuse(p), support::CheckError);
}

TEST(Fusion, WriteWriteConflictRejected) {
  // Both loops write B with a shift: fusing reorders the final values.
  const ir::Program p = ir::parseProgram(R"(
    array A[16]
    array B[16]
    for i = 0 .. 15 { B[i] = A[i]; }
    for j = 0 .. 15 { B[j+1] = A[j] * 2.0; }
  )");
  EXPECT_THROW(fuse(p), support::CheckError);
}

TEST(Distribute, SplitsIndependentStatements) {
  const ir::Program p = ir::parseProgram(R"(
    array A[32]
    array S[32]
    array D[32]
    for i = 0 .. 32 {
      S[i] = A[i] + 1.0;
      D[i] = A[i] - 1.0;
    }
  )");
  const ir::Program dist = distribute(p);
  ASSERT_EQ(dist.body.size(), 2u);
  EXPECT_EQ(runAndGet(p, "S"), runAndGet(dist, "S"));
  EXPECT_EQ(runAndGet(p, "D"), runAndGet(dist, "D"));
}

TEST(Distribute, SameIterationChainIsLegal) {
  // S2 consumes S1's value of the same iteration; distribution preserves
  // that (all S1 complete before S2 starts).
  const ir::Program p = ir::parseProgram(R"(
    array A[16]
    array B[16]
    array C[16]
    for i = 0 .. 16 {
      B[i] = A[i] * 2.0;
      C[i] = B[i] + 1.0;
    }
  )");
  const ir::Program dist = distribute(p);
  EXPECT_EQ(runAndGet(p, "C"), runAndGet(dist, "C"));
}

TEST(Distribute, BackwardCarriedDependenceRejected) {
  // S1 reads B[i] which S2 wrote at iteration i-1 (B[j+1] at j = i-1):
  // after distribution S1 would run before ANY S2 write.
  const ir::Program p = ir::parseProgram(R"(
    array A[16]
    array B[16]
    array C[16]
    for i = 1 .. 15 {
      C[i] = B[i];
      B[i+1] = A[i];
    }
  )");
  EXPECT_THROW(distribute(p), support::CheckError);
}

TEST(Distribute, ThenFuseRoundTrips) {
  // distribute and fuse are inverses on an independent 2-statement loop.
  const ir::Program p = ir::parseProgram(R"(
    array A[24]
    array S[24]
    array D[24]
    for i = 0 .. 24 {
      S[i] = A[i] * 3.0;
      D[i] = A[i] * 7.0;
    }
  )");
  const ir::Program roundTrip = fuse(distribute(p));
  EXPECT_EQ(runAndGet(p, "S"), runAndGet(roundTrip, "S"));
  EXPECT_EQ(runAndGet(p, "D"), runAndGet(roundTrip, "D"));
  EXPECT_EQ(perfectNestDepth(roundTrip), 1u);
}

TEST(Distribute, NBodyBodySplits) {
  // The three force accumulations of n-body touch disjoint F arrays:
  // distribution of the inner statements at the j level must be legal.
  const ir::Program p = ir::parseProgram(R"(
    array X[32]
    array FX[32]
    array FY[32]
    for j = 0 .. 32 {
      FX[0] += X[j];
      FY[0] += X[j] * 2.0;
    }
  )");
  const ir::Program dist = distribute(p);
  EXPECT_EQ(runAndGet(p, "FX"), runAndGet(dist, "FX"));
  EXPECT_EQ(runAndGet(p, "FY"), runAndGet(dist, "FY"));
}

} // namespace
} // namespace motune::transform
