#include "ir/affine.h"
#include "ir/bytecode.h"
#include "ir/interp.h"
#include "ir/print.h"
#include "ir/program.h"
#include "kernels/kernel.h"
#include "support/check.h"
#include "support/mem_access.h"

#include <gtest/gtest.h>

#include <cstring>
#include <tuple>
#include <vector>

namespace motune::ir {
namespace {

TEST(Affine, ArithmeticAndEval) {
  const AffineExpr e = AffineExpr::var("i", 2) + AffineExpr::var("j") - 3;
  Env env;
  env.set("i", 5);
  env.set("j", 7);
  EXPECT_EQ(e.eval(env), 2 * 5 + 7 - 3);
  EXPECT_EQ(e.coeffOf("i"), 2);
  EXPECT_EQ(e.coeffOf("k"), 0);
  EXPECT_TRUE(e.dependsOn("j"));
  EXPECT_FALSE(e.dependsOn("k"));
}

TEST(Affine, TermsCancel) {
  const AffineExpr e = AffineExpr::var("i") - AffineExpr::var("i");
  EXPECT_TRUE(e.isConstant());
  EXPECT_EQ(e.constantTerm(), 0);
}

TEST(Affine, Substitute) {
  const AffineExpr e = AffineExpr::var("i", 3) + 1;
  const AffineExpr r = e.substitute("i", AffineExpr::var("i_t") + 4);
  Env env;
  env.set("i_t", 2);
  EXPECT_EQ(r.eval(env), 3 * (2 + 4) + 1);
  EXPECT_FALSE(r.dependsOn("i"));
}

TEST(Affine, ScalarMultiply) {
  const AffineExpr e = (AffineExpr::var("i") + 2) * -3;
  EXPECT_EQ(e.coeffOf("i"), -3);
  EXPECT_EQ(e.constantTerm(), -6);
}

TEST(Affine, StrReadable) {
  EXPECT_EQ(AffineExpr::constant(5).str(), "5");
  EXPECT_EQ(AffineExpr::var("i").str(), "i");
  EXPECT_EQ((AffineExpr::var("i", 2) + 1).str(), "2*i + 1");
}

TEST(Bound, MinCapEvaluation) {
  const Bound b(AffineExpr::var("it") + 8, AffineExpr::constant(10));
  Env env;
  env.set("it", 0);
  EXPECT_EQ(b.eval(env), 8);
  env.set("it", 5);
  EXPECT_EQ(b.eval(env), 10);
}

TEST(Env, UnboundThrows) {
  Env env;
  EXPECT_THROW(env.get("nope"), support::CheckError);
  env.set("x", 1);
  env.set("x", 2);
  EXPECT_EQ(env.get("x"), 2);
}

TEST(Program, CloneIsDeep) {
  Program mm = kernels::buildMM(4);
  Program copy = mm.clone();
  // Mutating the copy's loop bound must not affect the original.
  copy.rootLoop().upper = Bound(AffineExpr::constant(2));
  Env env;
  EXPECT_EQ(mm.rootLoop().upper.eval(env), 4);
  EXPECT_EQ(copy.rootLoop().upper.eval(env), 2);
}

TEST(Program, FindArray) {
  const Program mm = kernels::buildMM(4);
  ASSERT_NE(mm.findArray("A"), nullptr);
  EXPECT_EQ(mm.findArray("A")->bytes(), 4 * 4 * 8);
  EXPECT_EQ(mm.findArray("nope"), nullptr);
}

TEST(Program, WalkVisitsEverything) {
  const Program mm = kernels::buildMM(4);
  int loops = 0, assigns = 0;
  std::size_t maxDepth = 0;
  walk(mm, [&](const Stmt& s, const std::vector<const Loop*>& stack) {
    maxDepth = std::max(maxDepth, stack.size());
    (s.kind == Stmt::Kind::Loop ? loops : assigns)++;
  });
  EXPECT_EQ(loops, 3);
  EXPECT_EQ(assigns, 1);
  EXPECT_EQ(maxDepth, 3u); // assignment sits under 3 loops
}

TEST(Interp, MatrixMultiplyMatchesManual) {
  const std::int64_t n = 5;
  const Program mm = kernels::buildMM(n);
  Interpreter interp(mm);
  auto& a = interp.array("A");
  auto& b = interp.array("B");
  for (std::int64_t i = 0; i < n * n; ++i) {
    a[static_cast<std::size_t>(i)] = static_cast<double>(i % 7) - 3.0;
    b[static_cast<std::size_t>(i)] = static_cast<double>(i % 5) + 1.0;
  }
  interp.run();
  const auto& c = interp.array("C");
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (std::int64_t k = 0; k < n; ++k)
        acc += a[static_cast<std::size_t>(i * n + k)] *
               b[static_cast<std::size_t>(k * n + j)];
      EXPECT_DOUBLE_EQ(c[static_cast<std::size_t>(i * n + j)], acc);
    }
  EXPECT_EQ(interp.statementsExecuted(), static_cast<std::uint64_t>(n * n * n));
}

TEST(Interp, OutOfBoundsAccessRejected) {
  Program p;
  p.name = "oob";
  p.arrays = {{"A", {4}, 8}};
  Loop l;
  l.iv = "i";
  l.lower = AffineExpr::constant(0);
  l.upper = Bound(AffineExpr::constant(5)); // one past the end
  Assign st;
  st.array = "A";
  st.subscripts = {AffineExpr::var("i")};
  st.rhs = constant(1.0);
  l.body.push_back(Stmt::makeAssign(std::move(st)));
  p.body.push_back(Stmt::makeLoop(std::move(l)));

  Interpreter interp(p);
  EXPECT_THROW(interp.run(), support::CheckError);
}

TEST(Interp, TraceSeesEveryAccess) {
  const Program mm = kernels::buildMM(3);
  Interpreter interp(mm);
  std::uint64_t reads = 0, writes = 0;
  interp.setTrace([&](std::uint64_t, int bytes, bool isWrite) {
    EXPECT_EQ(bytes, 8);
    (isWrite ? writes : reads)++;
  });
  interp.run();
  // Per iteration: reads of A, B and the accumulated C, one write of C.
  EXPECT_EQ(reads, 27u * 3u);
  EXPECT_EQ(writes, 27u);
}

TEST(Interp, TraceAddressesDisjointAcrossArrays) {
  const Program mm = kernels::buildMM(3);
  Interpreter interp(mm);
  std::uint64_t lo = ~0ull, hi = 0;
  interp.setTrace([&](std::uint64_t addr, int, bool) {
    lo = std::min(lo, addr);
    hi = std::max(hi, addr);
  });
  interp.run();
  EXPECT_GE(lo, 4096u);              // arrays start above the null page
  EXPECT_GT(hi, lo + 2 * 4096);      // three arrays on separate pages
}

TEST(Bytecode, MatrixMultiplyMatchesTreeWalkerBitExactly) {
  const std::int64_t n = 6;
  const Program mm = kernels::buildMM(n);
  Interpreter tree(mm);
  CompiledProgram flat(mm);
  for (const char* name : {"A", "B"}) {
    auto& t = tree.array(name);
    auto& f = flat.array(name);
    ASSERT_EQ(t.size(), f.size());
    for (std::size_t i = 0; i < t.size(); ++i)
      t[i] = f[i] = 0.25 * static_cast<double>(i % 11) - 1.0;
  }
  tree.run();
  flat.run();
  EXPECT_EQ(tree.statementsExecuted(), flat.statementsExecuted());
  const auto& ct = tree.array("C");
  const auto& cf = flat.array("C");
  ASSERT_EQ(ct.size(), cf.size());
  for (std::size_t i = 0; i < ct.size(); ++i)
    EXPECT_EQ(std::memcmp(&ct[i], &cf[i], sizeof(double)), 0) << "C[" << i
                                                              << "]";
}

TEST(Bytecode, TraceSequenceIdenticalToTreeWalker) {
  // Not just the same set of accesses — the same accesses in the same
  // order with the same addresses, so the cache simulator sees an
  // indistinguishable stream from either engine.
  using Access = std::tuple<std::uint64_t, int, bool>;
  const Program mm = kernels::buildMM(4);
  std::vector<Access> fromTree, fromFlat;
  Interpreter tree(mm);
  tree.setTrace([&](std::uint64_t addr, int bytes, bool isWrite) {
    fromTree.emplace_back(addr, bytes, isWrite);
  });
  tree.run();
  CompiledProgram flat(mm);
  flat.setTrace([&](std::uint64_t addr, int bytes, bool isWrite) {
    fromFlat.emplace_back(addr, bytes, isWrite);
  });
  flat.run();
  ASSERT_EQ(fromTree.size(), fromFlat.size());
  for (std::size_t i = 0; i < fromTree.size(); ++i)
    EXPECT_EQ(fromTree[i], fromFlat[i]) << "access " << i;
}

TEST(Bytecode, BatchTraceConcatenationMatchesPerAccessTrace) {
  using Access = std::tuple<std::uint64_t, int, bool>;
  const Program mm = kernels::buildMM(5);
  std::vector<Access> perAccess;
  {
    CompiledProgram exec(mm);
    exec.setTrace([&](std::uint64_t addr, int bytes, bool isWrite) {
      perAccess.emplace_back(addr, bytes, isWrite);
    });
    exec.run();
  }
  std::vector<Access> batched;
  std::size_t deliveries = 0;
  {
    CompiledProgram exec(mm);
    exec.setBatchTrace([&](std::span<const support::MemAccess> batch) {
      ++deliveries;
      EXPECT_LE(batch.size(), CompiledProgram::kTraceBatch);
      for (const auto& a : batch)
        batched.emplace_back(a.addr, a.bytes, a.isWrite);
    });
    exec.run();
  }
  // 5^3 iterations x 4 accesses = 500 records: one full batch would hold
  // them all, so at least one delivery; concatenation preserves order.
  EXPECT_GE(deliveries, 1u);
  ASSERT_EQ(batched.size(), perAccess.size());
  for (std::size_t i = 0; i < batched.size(); ++i)
    EXPECT_EQ(batched[i], perAccess[i]) << "access " << i;
}

TEST(Bytecode, OutOfBoundsAccessRejected) {
  Program p;
  p.name = "oob";
  p.arrays = {{"A", {4}, 8}};
  Loop l;
  l.iv = "i";
  l.lower = AffineExpr::constant(0);
  l.upper = Bound(AffineExpr::constant(5)); // one past the end
  Assign st;
  st.array = "A";
  st.subscripts = {AffineExpr::var("i")};
  st.rhs = constant(1.0);
  l.body.push_back(Stmt::makeAssign(std::move(st)));
  p.body.push_back(Stmt::makeLoop(std::move(l)));

  CompiledProgram exec(p);
  EXPECT_THROW(exec.run(), support::CheckError);
}

TEST(Print, EmitsCompilableLookingC) {
  const Program mm = kernels::buildMM(8);
  const std::string c = toC(mm);
  EXPECT_NE(c.find("for (long i = 0; i < 8; i += 1)"), std::string::npos);
  EXPECT_NE(c.find("C[i][j] += (A[i][k] * B[k][j]);"), std::string::npos);
}

TEST(Print, StencilUsesNegativeOffsets) {
  const Program j2 = kernels::buildJacobi2d(8);
  const std::string c = toC(j2);
  EXPECT_NE(c.find("A[i - 1][j]"), std::string::npos);
  EXPECT_NE(c.find("A[i + 1][j]"), std::string::npos);
}

} // namespace
} // namespace motune::ir
