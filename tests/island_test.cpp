// Island-model distributed search (src/tuning/island.h): the migrant
// journal's crash edge cases — a lagging reader catching up mid-write, a
// torn record skipped without poisoning later reads, a resumed island
// republishing its rounds exactly once — plus the determinism contract of
// the merged front (bit-identical across pool sizes and exchange media)
// and the analytic seeder (src/tuning/seed.h).
#include "core/testproblems.h"
#include "kernels/kernel.h"
#include "machine/machine.h"
#include "session/journal.h"
#include "session/session.h"
#include "support/check.h"
#include "tuning/island.h"
#include "tuning/seed.h"

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <thread>
#include <vector>

using namespace motune;
namespace fs = std::filesystem;

namespace {

/// Fresh per-test directory under the gtest temp root.
std::string freshDir(const std::string& name) {
  const fs::path dir = fs::path(::testing::TempDir()) / name;
  fs::remove_all(dir);
  fs::create_directories(dir);
  return dir.string();
}

std::multiset<std::pair<tuning::Config, tuning::Objectives>>
canonicalFront(const std::vector<opt::Individual>& front) {
  std::multiset<std::pair<tuning::Config, tuning::Objectives>> out;
  for (const auto& ind : front) out.emplace(ind.config, ind.objectives);
  return out;
}

bool bitEqual(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

/// Distinct synthetic migrants for round `round` (content does not matter
/// to the exchange; distinctness lets the tests prove which round a fetch
/// actually served).
std::vector<opt::Individual> fakeMigrants(int round, std::size_t count) {
  std::vector<opt::Individual> out;
  for (std::size_t i = 0; i < count; ++i) {
    opt::Individual ind;
    ind.genome = {0.5, static_cast<double>(round)};
    ind.config = {static_cast<std::int64_t>(round * 100 + i), 2};
    ind.objectives = {static_cast<double>(round), static_cast<double>(i)};
    out.push_back(std::move(ind));
  }
  return out;
}

void expectSameIndividuals(const std::vector<opt::Individual>& a,
                           const std::vector<opt::Individual>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].config, b[i].config) << i;
    EXPECT_TRUE(bitEqual(a[i].objectives, b[i].objectives)) << i;
    EXPECT_TRUE(bitEqual(a[i].genome, b[i].genome)) << i;
  }
}

tuning::JournalExchange makeExchange(const std::string& dir) {
  return tuning::JournalExchange(dir, /*islands=*/2, /*migrateEvery=*/5,
                                 /*migrants=*/3, /*seed=*/9);
}

} // namespace

TEST(JournalExchange, LaggingReaderCatchesUp) {
  const std::string dir = freshDir("island-lagging");
  fs::create_directories(tuning::islandDirectory(dir, 0));
  tuning::JournalExchange exchange = makeExchange(dir);

  // Peer journal does not exist yet (worker process still starting up).
  EXPECT_EQ(exchange.tryFetch(1, 1), std::nullopt);

  // Header written but no round-1 record yet: still lagging, not an error.
  exchange.attach(0, /*resume=*/false);
  EXPECT_EQ(exchange.tryFetch(0, 1), std::nullopt);

  // The record lands; the reader's next poll serves it verbatim.
  const std::vector<opt::Individual> sent = fakeMigrants(1, 3);
  EXPECT_TRUE(exchange.publish(0, 1, 5, sent));
  const auto got = exchange.tryFetch(0, 1);
  ASSERT_TRUE(got.has_value());
  expectSameIndividuals(*got, sent);

  // Reads are repeatable (fetch() may poll the same round many times) and
  // later rounds stay invisible until published.
  expectSameIndividuals(*exchange.tryFetch(0, 1), sent);
  EXPECT_EQ(exchange.tryFetch(0, 2), std::nullopt);

  // A blocking fetch under a cancelled run returns empty instead of
  // spinning forever.
  EXPECT_TRUE(exchange.fetch(0, 2, [] { return true; }).empty());
}

TEST(JournalExchange, TornRecordSkippedWithoutPoisoningLaterReads) {
  const std::string dir = freshDir("island-torn");
  fs::create_directories(tuning::islandDirectory(dir, 0));
  const std::vector<opt::Individual> round1 = fakeMigrants(1, 2);
  {
    tuning::JournalExchange exchange = makeExchange(dir);
    exchange.attach(0, /*resume=*/false);
    EXPECT_TRUE(exchange.publish(0, 1, 5, round1));
  }
  // Crash model: the writer died mid-append, leaving a partial round-2
  // record with no newline at the journal tail.
  {
    std::ofstream out(tuning::migrantJournalPath(dir, 0), std::ios::app);
    out << R"({"type":"migrants","island":0,"round":2,"indiv)";
  }

  // Readers treat the torn tail as not-yet-written: the complete round-1
  // record is still served, round 2 reads as lagging — never an error.
  tuning::JournalExchange reader = makeExchange(dir);
  const auto got = reader.tryFetch(0, 1);
  ASSERT_TRUE(got.has_value());
  expectSameIndividuals(*got, round1);
  EXPECT_EQ(reader.tryFetch(0, 2), std::nullopt);

  // The resumed writer trims the torn tail and republishes round 2 whole;
  // the reader then sees exactly one intact round-2 record.
  tuning::JournalExchange resumed = makeExchange(dir);
  resumed.attach(0, /*resume=*/true);
  const std::vector<opt::Individual> round2 = fakeMigrants(2, 2);
  EXPECT_TRUE(resumed.publish(0, 2, 10, round2));
  const auto after = reader.tryFetch(0, 2);
  ASSERT_TRUE(after.has_value());
  expectSameIndividuals(*after, round2);
}

TEST(JournalExchange, ResumeRepublishesExactlyOnce) {
  const std::string dir = freshDir("island-once");
  fs::create_directories(tuning::islandDirectory(dir, 0));
  {
    tuning::JournalExchange exchange = makeExchange(dir);
    exchange.attach(0, /*resume=*/false);
    EXPECT_TRUE(exchange.publish(0, 1, 5, fakeMigrants(1, 2)));
    EXPECT_TRUE(exchange.publish(0, 2, 10, fakeMigrants(2, 2)));
  }

  // The resumed island replays generations 1..10 from its checkpoint and
  // re-offers rounds 1 and 2: both must be refused (the original records
  // stand), while the first genuinely new round appends.
  tuning::JournalExchange resumed = makeExchange(dir);
  resumed.attach(0, /*resume=*/true);
  EXPECT_FALSE(resumed.publish(0, 1, 5, fakeMigrants(1, 2)));
  EXPECT_FALSE(resumed.publish(0, 2, 10, fakeMigrants(2, 2)));
  EXPECT_TRUE(resumed.publish(0, 3, 15, fakeMigrants(3, 2)));
  resumed.retire(0, 3, 15, 123);
  resumed.retire(0, 3, 15, 123); // idempotent

  // One header, one migrants record per round, one retire — no duplicates.
  const auto records =
      session::readJournal(tuning::migrantJournalPath(dir, 0));
  std::multiset<int> rounds;
  int headers = 0, retires = 0;
  for (const support::Json& r : records) {
    const std::string type = r.at("type").asString();
    if (type == "header") ++headers;
    if (type == "migrants")
      rounds.insert(static_cast<int>(r.at("round").asInt()));
    if (type == "retire") ++retires;
  }
  EXPECT_EQ(headers, 1);
  EXPECT_EQ(retires, 1);
  EXPECT_EQ(rounds, (std::multiset<int>{1, 2, 3}));
}

TEST(JournalExchange, ResumeRejectsForeignJournal) {
  const std::string dir = freshDir("island-foreign");
  fs::create_directories(tuning::islandDirectory(dir, 0));
  {
    tuning::JournalExchange exchange = makeExchange(dir);
    exchange.attach(0, /*resume=*/false);
  }
  // Same directory, different run parameters: the header check refuses.
  tuning::JournalExchange other(dir, /*islands=*/2, /*migrateEvery=*/5,
                                /*migrants=*/3, /*seed=*/10);
  EXPECT_THROW(other.attach(0, /*resume=*/true), support::CheckError);
}

TEST(JournalExchange, RetiredPeerResolvesLaterRoundsEmpty) {
  const std::string dir = freshDir("island-retire");
  fs::create_directories(tuning::islandDirectory(dir, 0));
  tuning::JournalExchange exchange = makeExchange(dir);
  exchange.attach(0, /*resume=*/false);
  const std::vector<opt::Individual> sent = fakeMigrants(1, 2);
  EXPECT_TRUE(exchange.publish(0, 1, 5, sent));
  exchange.retire(0, 1, 7, 321);

  // Earlier rounds stay readable; rounds past the retirement resolve to
  // empty immediately (a faster peer must not block on a finished one).
  expectSameIndividuals(*exchange.tryFetch(0, 1), sent);
  const auto later = exchange.tryFetch(0, 2);
  ASSERT_TRUE(later.has_value());
  EXPECT_TRUE(later->empty());
}

TEST(MemoryExchange, SameProtocolAsJournal) {
  tuning::MemoryExchange exchange;
  const std::vector<opt::Individual> sent = fakeMigrants(1, 3);
  EXPECT_TRUE(exchange.publish(0, 1, 5, sent));
  EXPECT_FALSE(exchange.publish(0, 1, 5, fakeMigrants(9, 1)))
      << "a round is immutable once published";
  expectSameIndividuals(exchange.fetch(0, 1, nullptr), sent);
  exchange.retire(0, 1, 7, 11);
  EXPECT_TRUE(exchange.fetch(0, 2, nullptr).empty());
  EXPECT_TRUE(exchange.fetch(1, 1, [] { return true; }).empty())
      << "stop unblocks a fetch from a never-published island";
}

namespace {

tuning::IslandOptions fonsecaIslands(opt::SyntheticProblem& problem) {
  tuning::IslandOptions io;
  io.islands = 2;
  io.migrateEvery = 3;
  io.migrants = 2;
  io.gde3.seed = 11;
  io.gde3.maxGenerations = 12;
  io.makeHeader = [&problem](int island, std::uint64_t seed) {
    session::SessionHeader h;
    h.problem = "fonseca/island-" + std::to_string(island);
    h.algorithm = "rsgde3";
    h.seed = seed;
    h.objectives = problem.numObjectives();
    h.space = problem.space();
    h.algorithmOptions = support::JsonObject{{"population", 30}};
    return h;
  };
  return io;
}

} // namespace

TEST(Islands, MergedFrontIdenticalAcrossPoolSizesAndMedia) {
  // The determinism contract: the merged front, evaluation count and
  // hypervolume trajectory are a pure function of (problem, options,
  // island count) — identical whether the islands share a thread pool of
  // 1 or 4 workers, and whether migrants travel in memory or through
  // journals on disk.
  std::vector<tuning::IslandRun> runs;
  for (const unsigned workers : {1u, 4u}) {
    opt::SyntheticProblem problem = opt::makeFonseca();
    runtime::ThreadPool pool(workers);
    runs.push_back(runIslands(problem, pool, fonsecaIslands(problem)));
  }
  {
    opt::SyntheticProblem problem = opt::makeFonseca();
    runtime::ThreadPool pool(4);
    tuning::IslandOptions io = fonsecaIslands(problem);
    io.directory = freshDir("island-journal-medium");
    runs.push_back(runIslands(problem, pool, io));
  }

  ASSERT_FALSE(runs[0].merged.front.empty());
  for (std::size_t i = 1; i < runs.size(); ++i) {
    SCOPED_TRACE("run " + std::to_string(i));
    EXPECT_EQ(canonicalFront(runs[i].merged.front),
              canonicalFront(runs[0].merged.front));
    EXPECT_EQ(runs[i].merged.evaluations, runs[0].merged.evaluations);
    EXPECT_TRUE(bitEqual(runs[i].merged.hvHistory,
                         runs[0].merged.hvHistory));
  }

  // The journal-backed run left a resumable session per island.
  const tuning::IslandRun& journalled = runs.back();
  EXPECT_FALSE(journalled.journal.empty());
  EXPECT_GT(journalled.checkpoints, 0u);
  EXPECT_GT(journalled.recordedEvaluations, 0u);
}

TEST(Islands, MergeInvocationReconstructsFinishedWorkers) {
  // Worker mode: each island runs in its own invocation against the shared
  // directory. The invocations must overlap in time — the synchronous ring
  // blocks each round on the neighbour's record — so the test runs them on
  // two threads, as the CLI runs them as two processes. A later merge
  // invocation then rebuilds the combined front without re-running
  // anything.
  const std::string dir = freshDir("island-workers");
  opt::SyntheticProblem problem = opt::makeFonseca();

  tuning::IslandRun inProcess;
  {
    opt::SyntheticProblem golden = opt::makeFonseca();
    runtime::ThreadPool pool(2);
    tuning::IslandOptions io = fonsecaIslands(golden);
    io.directory = freshDir("island-workers-golden");
    inProcess = runIslands(golden, pool, io);
  }

  std::vector<std::thread> workers;
  for (const int k : {0, 1}) {
    workers.emplace_back([&dir, k] {
      opt::SyntheticProblem worker = opt::makeFonseca();
      runtime::ThreadPool pool(2);
      tuning::IslandOptions io = fonsecaIslands(worker);
      io.directory = dir;
      io.islandIndex = k;
      const tuning::IslandRun partial = runIslands(worker, pool, io);
      EXPECT_FALSE(partial.merged.front.empty());
    });
  }
  for (std::thread& t : workers) t.join();

  runtime::ThreadPool pool(2);
  tuning::IslandOptions io = fonsecaIslands(problem);
  io.directory = dir;
  io.resume = true;
  const tuning::IslandRun merged = runIslands(problem, pool, io);
  EXPECT_EQ(canonicalFront(merged.merged.front),
            canonicalFront(inProcess.merged.front));
  EXPECT_EQ(merged.merged.evaluations, inProcess.merged.evaluations);
  // Reconstruction replays the journals without appending anything: no
  // resume records, and the recorded evaluations are exactly the workers'.
  EXPECT_EQ(merged.resumes, 0);
  EXPECT_EQ(merged.recordedEvaluations, merged.merged.evaluations);
}

TEST(AnalyticSeeds, DeterministicInBoundsAndCapped) {
  const machine::MachineModel machine = machine::westmere();
  tuning::KernelTuningProblem problem(kernels::kernelByName("mm"), machine);
  const std::vector<tuning::Config> seeds = tuning::analyticSeeds(problem);

  ASSERT_FALSE(seeds.empty());
  EXPECT_LE(seeds.size(), tuning::SeedOptions{}.maxSeeds);
  const std::vector<tuning::ParamSpec>& space = problem.space();
  std::set<tuning::Config> distinct;
  for (const tuning::Config& seed : seeds) {
    ASSERT_EQ(seed.size(), space.size());
    for (std::size_t d = 0; d < seed.size(); ++d) {
      EXPECT_GE(seed[d], space[d].lo) << space[d].name;
      EXPECT_LE(seed[d], space[d].hi) << space[d].name;
    }
    distinct.insert(seed);
  }
  EXPECT_EQ(distinct.size(), seeds.size()) << "seeds are deduplicated";
  EXPECT_EQ(tuning::analyticSeeds(problem), seeds) << "bit-reproducible";
}
