#include "kernels/kernel.h"
#include "machine/machine.h"
#include "observe/metrics.h"
#include "support/check.h"
#include "tuning/evaluator.h"
#include "tuning/kernel_problem.h"
#include "tuning/native_evaluator.h"
#include "tuning/search_space.h"
#include "tuning/validation.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>

namespace motune::tuning {
namespace {

TEST(Boundary, ClosestToClampsAndRounds) {
  Boundary b;
  b.lo = {1.0, 1.0};
  b.hi = {10.0, 5.0};
  EXPECT_EQ(b.closestTo({3.4, 2.6}), (Config{3, 3}));
  EXPECT_EQ(b.closestTo({-4.0, 99.0}), (Config{1, 5}));
  EXPECT_EQ(b.closestTo({10.49, 0.51}), (Config{10, 1}));
}

TEST(Boundary, FractionalBoundsNeverEscape) {
  Boundary b;
  b.lo = {2.6};
  b.hi = {2.8};
  // Rounding 2.7 would give 3, outside [2.6, 2.8]; re-clamp to floor(hi)...
  // which is below lo — the integer projection picks the nearest valid int.
  const Config c = b.closestTo({2.7});
  EXPECT_GE(static_cast<double>(c[0]), 2.0);
  EXPECT_LE(static_cast<double>(c[0]), 3.0);
}

TEST(Boundary, ContainsAndIntersect) {
  Boundary a;
  a.lo = {0.0, 0.0};
  a.hi = {10.0, 10.0};
  Boundary b;
  b.lo = {5.0, -5.0};
  b.hi = {15.0, 5.0};
  const Boundary c = a.intersect(b);
  EXPECT_DOUBLE_EQ(c.lo[0], 5.0);
  EXPECT_DOUBLE_EQ(c.hi[0], 10.0);
  EXPECT_DOUBLE_EQ(c.lo[1], 0.0);
  EXPECT_DOUBLE_EQ(c.hi[1], 5.0);
  EXPECT_TRUE(c.contains({7, 3}));
  EXPECT_FALSE(c.contains({4, 3}));
}

TEST(Boundary, FromSpaceAndCardinality) {
  const std::vector<ParamSpec> space{{"a", 1, 4}, {"b", 0, 9}};
  const Boundary b = Boundary::fromSpace(space);
  EXPECT_DOUBLE_EQ(b.lo[0], 1.0);
  EXPECT_DOUBLE_EQ(b.hi[1], 9.0);
  EXPECT_DOUBLE_EQ(spaceCardinality(space), 40.0);
}

/// Toy objective function used by evaluator tests: f = (x, 10 - x).
class ToyFn final : public ObjectiveFunction {
public:
  std::size_t numObjectives() const override { return 2; }
  const std::vector<ParamSpec>& space() const override { return space_; }
  Objectives evaluate(const Config& c) override {
    ++calls;
    return {static_cast<double>(c[0]), 10.0 - static_cast<double>(c[0])};
  }
  std::atomic<int> calls{0};

private:
  std::vector<ParamSpec> space_{{"x", 0, 10}};
};

TEST(CountingEvaluator, CountsUniqueOnly) {
  ToyFn fn;
  CountingEvaluator counter(fn);
  counter.evaluate({3});
  counter.evaluate({3});
  counter.evaluate({4});
  EXPECT_EQ(counter.evaluations(), 2u);
  EXPECT_EQ(fn.calls.load(), 2);
  counter.reset();
  EXPECT_EQ(counter.evaluations(), 0u);
  counter.evaluate({3});
  EXPECT_EQ(fn.calls.load(), 3);
}

TEST(CountingEvaluator, ResetClearsMetricCounterMirrors) {
  auto& metrics = observe::MetricsRegistry::global();
  metrics.reset();
  ToyFn fn;
  CountingEvaluator counter(fn);
  counter.evaluate({3});
  counter.evaluate({3});
  counter.evaluate({4});
  EXPECT_EQ(metrics.counter("tuning.evaluations.unique").value(), 2u);
  EXPECT_EQ(metrics.counter("tuning.evaluations.memo_hits").value(), 1u);

  // reset() must zero the process-wide mirrors along with the local
  // counts, or a second run in the same process reports cumulative
  // tuning.evaluations.* values.
  counter.reset();
  EXPECT_EQ(counter.evaluations(), 0u);
  EXPECT_EQ(counter.memoHits(), 0u);
  EXPECT_EQ(metrics.counter("tuning.evaluations.unique").value(), 0u);
  EXPECT_EQ(metrics.counter("tuning.evaluations.memo_hits").value(), 0u);

  counter.evaluate({3});
  counter.evaluate({3});
  EXPECT_EQ(counter.evaluations(), 1u);
  EXPECT_EQ(counter.memoHits(), 1u);
  EXPECT_EQ(metrics.counter("tuning.evaluations.unique").value(), 1u);
  EXPECT_EQ(metrics.counter("tuning.evaluations.memo_hits").value(), 1u);
}

TEST(BatchEvaluator, PreservesOrderParallel) {
  ToyFn fn;
  runtime::ThreadPool pool(4);
  BatchEvaluator batch(fn, pool, /*parallel=*/true);
  std::vector<Config> configs;
  for (std::int64_t i = 0; i <= 10; ++i) configs.push_back({i});
  const auto out = batch.evaluateAll(configs);
  ASSERT_EQ(out.size(), 11u);
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_DOUBLE_EQ(out[i][0], static_cast<double>(i));
}

TEST(KernelProblem, SpaceMatchesPaperSetup) {
  KernelTuningProblem prob(kernels::kernelByName("mm"),
                           machine::westmere());
  const auto& space = prob.space();
  ASSERT_EQ(space.size(), 4u);
  EXPECT_EQ(space[0].hi, 700); // N/2
  EXPECT_EQ(space[3].name, "threads");
  EXPECT_EQ(space[3].hi, 40);
  EXPECT_EQ(prob.numObjectives(), 2u);
}

TEST(KernelProblem, ObjectivesConsistent) {
  KernelTuningProblem prob(kernels::kernelByName("mm"),
                           machine::westmere());
  const Objectives o = prob.evaluate({64, 64, 32, 10});
  ASSERT_EQ(o.size(), 2u);
  EXPECT_GT(o[0], 0.0);
  EXPECT_DOUBLE_EQ(o[1], 10.0 * o[0]);
  // Deterministic.
  EXPECT_EQ(prob.evaluate({64, 64, 32, 10}), o);
}

TEST(KernelProblem, MoreThreadsFasterButCostlier) {
  KernelTuningProblem prob(kernels::kernelByName("mm"),
                           machine::westmere());
  const Objectives serial = prob.evaluate({96, 48, 32, 1});
  const Objectives parallel = prob.evaluate({96, 48, 32, 40});
  EXPECT_LT(parallel[0], serial[0]);
  EXPECT_GT(parallel[1], serial[1]);
}

TEST(KernelProblem, UntiledSerialIsTheWorstReasonableTime) {
  KernelTuningProblem prob(kernels::kernelByName("mm"),
                           machine::westmere(), 512);
  const double untiled = prob.untiledSerialSeconds();
  EXPECT_GT(untiled, prob.evaluate({64, 32, 32, 1})[0]);
}

TEST(KernelProblem, SmallProblemOverride) {
  KernelTuningProblem prob(kernels::kernelByName("jacobi-2d"),
                           machine::barcelona(), 128);
  EXPECT_EQ(prob.problemSize(), 128);
  EXPECT_EQ(prob.space()[0].hi, 63); // (N-2)/2 interior trip halved
  const Objectives o = prob.evaluate({8, 8, 4});
  EXPECT_GT(o[0], 0.0);
}

TEST(KernelProblem, InstantiateProducesParallelTiledProgram) {
  KernelTuningProblem prob(kernels::kernelByName("mm"),
                           machine::westmere(), 64);
  const ir::Program p = prob.instantiate({8, 8, 8, 4});
  EXPECT_TRUE(p.rootLoop().parallel);
  EXPECT_EQ(p.rootLoop().iv, "i_t");
}

TEST(KernelProblem, VariantCacheClockEvictionPrefersRecentlyUsed) {
  KernelTuningProblem problem(kernels::kernelByName("mm"),
                              machine::westmere(), 64);
  problem.setVariantCacheCapacity(3);
  const Config a{2, 2, 2, 1}, b{4, 4, 4, 1}, c{8, 8, 8, 1};
  const Config d{16, 16, 16, 1}, e{32, 32, 32, 1};
  problem.evaluate(a);
  problem.evaluate(b);
  problem.evaluate(c);
  EXPECT_EQ(problem.variantCacheSize(), 3u);
  EXPECT_TRUE(problem.variantCached(a));
  EXPECT_TRUE(problem.variantCached(b));
  EXPECT_TRUE(problem.variantCached(c));
  EXPECT_EQ(problem.variantEvictions(), 0u);

  // Cache full: the insert sweeps the hand over the (all-referenced)
  // slots, clears their second-chance bits, and evicts the oldest entry —
  // never the whole cache.
  problem.evaluate(d);
  EXPECT_EQ(problem.variantCacheSize(), 3u);
  EXPECT_EQ(problem.variantEvictions(), 1u);
  EXPECT_FALSE(problem.variantCached(a));
  EXPECT_TRUE(problem.variantCached(b));
  EXPECT_TRUE(problem.variantCached(c));
  EXPECT_TRUE(problem.variantCached(d));

  // A hit re-arms b's second-chance bit, so the next eviction passes b
  // over and takes c, the least recently touched entry.
  problem.evaluate(b);
  problem.evaluate(e);
  EXPECT_EQ(problem.variantEvictions(), 2u);
  EXPECT_TRUE(problem.variantCached(b));
  EXPECT_FALSE(problem.variantCached(c));
  EXPECT_TRUE(problem.variantCached(d));
  EXPECT_TRUE(problem.variantCached(e));

  // Evicted tiles rebuild on demand and re-enter the cache.
  problem.evaluate(a);
  EXPECT_TRUE(problem.variantCached(a));
  EXPECT_EQ(problem.variantEvictions(), 3u);

  // Different thread counts over the same tiles share one variant: no
  // growth, no eviction.
  const auto evictionsBefore = problem.variantEvictions();
  for (std::int64_t threads : {1, 2, 4, 8})
    problem.evaluate({32, 32, 32, threads});
  EXPECT_EQ(problem.variantEvictions(), evictionsBefore);
  EXPECT_EQ(problem.variantCacheSize(), 3u);
}

TEST(KernelProblem, RejectsMalformedConfigs) {
  KernelTuningProblem prob(kernels::kernelByName("mm"),
                           machine::westmere(), 64);
  EXPECT_THROW(prob.evaluate({8, 8, 8}), support::CheckError);
  EXPECT_THROW(prob.evaluate({0, 8, 8, 4}), support::CheckError);
}

TEST(NativeEvaluator, MeasuresRealExecution) {
  runtime::ThreadPool pool(2);
  NativeKernelEvaluator eval(kernels::kernelByName("mm"), 64, 2, pool,
                             /*repetitions=*/3);
  const Objectives o = eval.evaluate({16, 16, 16, 1});
  ASSERT_EQ(o.size(), 2u);
  EXPECT_GT(o[0], 0.0);
  EXPECT_LT(o[0], 5.0); // a 64^3 mm takes far less than 5 s
  EXPECT_DOUBLE_EQ(o[1], o[0]);
  const Objectives o2 = eval.evaluate({16, 16, 16, 2});
  EXPECT_DOUBLE_EQ(o2[1], 2.0 * o2[0]);
}

TEST(Validation, ModelAgreesWithSimulatorWithinOrderOfMagnitude) {
  const auto& mm = kernels::kernelByName("mm");
  // Paper-size configs: tiles are clamped into the miniature space and
  // threads pinned to 1.
  const std::vector<Config> configs{{4, 12, 6, 2}, {8, 8, 8, 1},
                                    {512, 512, 512, 40}};
  const auto samples = validateAgainstCachesim(mm, machine::westmere(),
                                               configs, {8, 0});
  ASSERT_EQ(samples.size(), 3u);
  for (const auto& s : samples) {
    EXPECT_EQ(s.n, mm.testN);
    EXPECT_EQ(s.config.back(), 1);
    EXPECT_GT(s.simDramBytes, 0.0);
    EXPECT_GT(s.modelDramBytes, 0.0);
    EXPECT_GT(s.modelSeconds, 0.0);
    EXPECT_GT(s.simSeconds, 0.0);
    // The analytical model and the simulator must agree on DRAM traffic
    // within an order of magnitude at the miniature size.
    EXPECT_LT(s.dramRatio, 10.0);
    EXPECT_GT(s.dramRatio, 0.1);
  }
}

TEST(Validation, DeduplicatesClampedConfigsAndHonorsCap) {
  const auto& mm = kernels::kernelByName("mm");
  // Both clamp to the miniature space maximum -> one sample.
  const std::vector<Config> same{{512, 512, 512, 40}, {600, 600, 600, 8}};
  EXPECT_EQ(validateAgainstCachesim(mm, machine::westmere(), same, {8, 0})
                .size(),
            1u);
  const std::vector<Config> many{{4, 4, 4, 1}, {6, 6, 6, 1}, {8, 8, 8, 1}};
  EXPECT_EQ(validateAgainstCachesim(mm, machine::westmere(), many, {2, 0})
                .size(),
            2u);
}

/// Objective function whose evaluate() blocks until released — lets tests
/// freeze a leader mid-evaluation and race reset()/preload() against its
/// publish step deterministically.
class GatedFn final : public ObjectiveFunction {
public:
  std::size_t numObjectives() const override { return 2; }
  const std::vector<ParamSpec>& space() const override { return space_; }
  Objectives evaluate(const Config& c) override {
    {
      std::unique_lock lock(mutex_);
      ++entered_;
      enteredCv_.notify_all();
      releaseCv_.wait(lock, [this] { return released_; });
    }
    return {static_cast<double>(c[0]), 10.0 - static_cast<double>(c[0])};
  }
  void waitForEntry(int n) {
    std::unique_lock lock(mutex_);
    enteredCv_.wait(lock, [&] { return entered_ >= n; });
  }
  void release() {
    std::lock_guard lock(mutex_);
    released_ = true;
    releaseCv_.notify_all();
  }

private:
  std::vector<ParamSpec> space_{{"x", 0, 10}};
  std::mutex mutex_;
  std::condition_variable enteredCv_, releaseCv_;
  int entered_ = 0;
  bool released_ = false;
};

TEST(CountingEvaluator, ResetRacingLeaderPublishDoesNotInflateCounts) {
  GatedFn fn;
  CountingEvaluator counter(fn);
  std::atomic<int> listenerCalls{0};
  counter.setListener([&](const Config&, const Objectives&) {
    listenerCalls.fetch_add(1);
  });

  // Leader blocks inside fn.evaluate({3}); reset() clears the memo while
  // the evaluation is in flight. The leader still returns its value to its
  // caller, but the result no longer belongs to the (new) memo epoch: it
  // must be neither counted as a unique evaluation nor journaled —
  // otherwise a resumed session replays a phantom eval record and E drifts
  // from the uninterrupted run.
  std::thread leader([&] {
    const Objectives obj = counter.evaluate({3});
    EXPECT_DOUBLE_EQ(obj[0], 3.0);
  });
  fn.waitForEntry(1);
  counter.reset();
  fn.release();
  leader.join();

  EXPECT_EQ(counter.evaluations(), 0u)
      << "stale leader publish counted after reset()";
  EXPECT_EQ(listenerCalls.load(), 0)
      << "stale leader publish reached the journal listener";

  // The next evaluation of the same config is a fresh unique eval.
  counter.evaluate({3});
  EXPECT_EQ(counter.evaluations(), 1u);
  EXPECT_EQ(listenerCalls.load(), 1);
}

TEST(CountingEvaluator, PreloadLosesToInFlightEvaluation) {
  GatedFn fn;
  CountingEvaluator counter(fn);

  std::thread leader([&] {
    const Objectives obj = counter.evaluate({4});
    EXPECT_DOUBLE_EQ(obj[1], 6.0);
  });
  fn.waitForEntry(1);
  // A daemon-restart preload racing a live evaluation of the same config
  // must not clobber the pending slot: the leader's identical result wins
  // and the preload reports "already known".
  EXPECT_FALSE(counter.preload({4}, {99.0, 99.0}));
  fn.release();
  leader.join();

  EXPECT_EQ(counter.evaluations(), 1u);
  const Objectives cached = counter.evaluate({4});
  EXPECT_DOUBLE_EQ(cached[0], 4.0) << "preload overwrote the live result";
  EXPECT_EQ(counter.evaluations(), 1u);
}

TEST(CountingEvaluator, IndependentInstancesAreIsolated) {
  // The serve daemon runs one evaluator per job; their memo, counters and
  // listeners must not bleed into each other even over the same inner fn.
  ToyFn fn;
  CountingEvaluator a(fn);
  CountingEvaluator b(fn);
  a.evaluate({3});
  a.evaluate({5});
  b.evaluate({3});
  EXPECT_EQ(a.evaluations(), 2u);
  EXPECT_EQ(b.evaluations(), 1u);
  EXPECT_TRUE(b.preload({7}, {7.0, 3.0}));
  EXPECT_EQ(b.evaluations(), 2u);
  EXPECT_EQ(a.evaluations(), 2u) << "preload leaked across instances";
  a.reset();
  EXPECT_EQ(b.evaluations(), 2u) << "reset leaked across instances";
}

} // namespace
} // namespace motune::tuning
