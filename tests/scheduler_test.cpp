#include "runtime/scheduler.h"
#include "support/check.h"

#include <gtest/gtest.h>

namespace motune::runtime {
namespace {

/// A synthetic Pareto front with the canonical shape: time ~ serial/p * f,
/// resources grow with p (efficiency decays).
mv::VersionTable makeFront(double serialSeconds, std::vector<int> threads) {
  mv::VersionTable table("r");
  for (int p : threads) {
    mv::CodeVersion v;
    v.meta.threads = p;
    const double eff = 1.0 / (1.0 + 0.02 * (p - 1)); // mild decay
    v.meta.timeSeconds = serialSeconds / (p * eff);
    v.meta.resources = v.meta.timeSeconds * p;
    v.run = [](int) {};
    table.add(std::move(v));
  }
  return table;
}

TEST(Scheduler, SingleRegionGetsAllCoresUnderMakespanGoal) {
  const mv::VersionTable t = makeFront(10.0, {1, 2, 4, 8, 16});
  MultiRegionScheduler sched({&t}, 16, SchedulingGoal::MinimizeMakespan);
  const auto placements = sched.schedule();
  ASSERT_EQ(placements.size(), 1u);
  EXPECT_EQ(placements[0].threads, 16);
}

TEST(Scheduler, RespectsCoreBudget) {
  const mv::VersionTable a = makeFront(10.0, {1, 2, 4, 8, 16});
  const mv::VersionTable b = makeFront(6.0, {1, 2, 4, 8, 16});
  const mv::VersionTable c = makeFront(3.0, {1, 2, 4, 8, 16});
  MultiRegionScheduler sched({&a, &b, &c}, 16);
  const auto placements = sched.schedule();
  ASSERT_EQ(placements.size(), 3u);
  EXPECT_LE(MultiRegionScheduler::totalThreads(placements), 16);
  for (const auto& p : placements) EXPECT_GE(p.threads, 1);
}

TEST(Scheduler, MakespanGoalFavorsTheLongestRegion) {
  // Region a is 5x the work of region b: with a tight budget, a should
  // receive (at least) as many cores as b.
  const mv::VersionTable a = makeFront(50.0, {1, 2, 4, 8});
  const mv::VersionTable b = makeFront(10.0, {1, 2, 4, 8});
  MultiRegionScheduler sched({&a, &b}, 8,
                             SchedulingGoal::MinimizeMakespan);
  const auto placements = sched.schedule();
  EXPECT_GE(placements[0].threads, placements[1].threads);
  // And the resulting makespan beats the all-serial assignment.
  EXPECT_LT(MultiRegionScheduler::makespan(placements), 50.0);
}

TEST(Scheduler, ResourceGoalStaysThrifty) {
  // With efficiency-decaying fronts, upgrades always cost resources, so
  // the resource-minimizing goal keeps every region at its cheapest point.
  const mv::VersionTable a = makeFront(10.0, {1, 2, 4, 8});
  const mv::VersionTable b = makeFront(10.0, {1, 2, 4, 8});
  MultiRegionScheduler sched({&a, &b}, 16,
                             SchedulingGoal::MinimizeTotalResources);
  const auto placements = sched.schedule();
  for (const auto& p : placements) EXPECT_EQ(p.threads, 1);
}

TEST(Scheduler, TightBudgetAdmitsEveryRegionSerially) {
  const mv::VersionTable a = makeFront(10.0, {1, 4, 16});
  const mv::VersionTable b = makeFront(10.0, {1, 4, 16});
  const mv::VersionTable c = makeFront(10.0, {1, 4, 16});
  MultiRegionScheduler sched({&a, &b, &c}, 3);
  const auto placements = sched.schedule();
  ASSERT_EQ(placements.size(), 3u);
  for (const auto& p : placements) EXPECT_EQ(p.threads, 1);
}

TEST(Scheduler, MoreBudgetNeverHurtsMakespan) {
  const mv::VersionTable a = makeFront(20.0, {1, 2, 4, 8, 16});
  const mv::VersionTable b = makeFront(12.0, {1, 2, 4, 8, 16});
  double prev = 1e300;
  for (int budget : {2, 4, 8, 16, 32}) {
    MultiRegionScheduler sched({&a, &b}, budget);
    const double ms = MultiRegionScheduler::makespan(sched.schedule());
    EXPECT_LE(ms, prev + 1e-12) << "budget " << budget;
    prev = ms;
  }
}

TEST(Scheduler, DeterministicAssignment) {
  const mv::VersionTable a = makeFront(10.0, {1, 2, 4, 8});
  const mv::VersionTable b = makeFront(7.0, {1, 2, 4, 8});
  MultiRegionScheduler sched({&a, &b}, 10);
  const auto p1 = sched.schedule();
  const auto p2 = sched.schedule();
  ASSERT_EQ(p1.size(), p2.size());
  for (std::size_t i = 0; i < p1.size(); ++i) {
    EXPECT_EQ(p1[i].versionIndex, p2[i].versionIndex);
    EXPECT_EQ(p1[i].threads, p2[i].threads);
  }
}

TEST(Scheduler, RejectsEmptyTablesAndBadBudget) {
  const mv::VersionTable a = makeFront(1.0, {1});
  mv::VersionTable empty("e");
  EXPECT_THROW(MultiRegionScheduler({&a, &empty}, 4),
               support::CheckError);
  EXPECT_THROW(MultiRegionScheduler({&a}, 0), support::CheckError);
}

} // namespace
} // namespace motune::runtime
