// CI smoke gate: runs the full RS-GDE3 pipeline on two kernels, emits the
// tuning-quality metrics (final hypervolume, evaluation count, front size —
// the columns of paper Table VI) as machine-readable JSON, and optionally
// diffs them against a checked-in baseline with a tolerance. A hypervolume
// regression > tolerance or an evaluation-budget blowup fails the process,
// turning Table VI into a regression gate.
//
//   bench_smoke [--out metrics.json]
//               [--baseline bench/baselines/smoke_baseline.json]
//               [--tolerance 0.05]
#include "bench/common.h"

#include "observe/metrics.h"
#include "support/check.h"
#include "support/json.h"

#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

using namespace motune;

namespace {

struct Entry {
  std::string kernel;
  std::string machine;
  std::uint64_t seed = 1;
  double hypervolume = 0.0;
  std::uint64_t evaluations = 0;       ///< E incl. thread-sweep refinement
  std::uint64_t uniqueEvaluations = 0; ///< search-phase unique evaluations
  std::uint64_t memoHits = 0;
  std::size_t frontSize = 0;

  support::Json toJson() const {
    return support::Json(support::JsonObject{
        {"kernel", support::Json(kernel)},
        {"machine", support::Json(machine)},
        {"seed", support::Json(seed)},
        {"hypervolume", support::Json(hypervolume)},
        {"evaluations", support::Json(evaluations)},
        {"unique_evaluations", support::Json(uniqueEvaluations)},
        {"memo_hits", support::Json(memoHits)},
        {"front_size", support::Json(frontSize)}});
  }

  static Entry fromJson(const support::Json& json) {
    Entry e;
    e.kernel = json.at("kernel").asString();
    e.machine = json.at("machine").asString();
    e.seed = static_cast<std::uint64_t>(json.at("seed").asInt());
    e.hypervolume = json.at("hypervolume").asNumber();
    e.evaluations = static_cast<std::uint64_t>(json.at("evaluations").asInt());
    if (json.has("unique_evaluations"))
      e.uniqueEvaluations =
          static_cast<std::uint64_t>(json.at("unique_evaluations").asInt());
    if (json.has("memo_hits"))
      e.memoHits = static_cast<std::uint64_t>(json.at("memo_hits").asInt());
    e.frontSize = static_cast<std::size_t>(json.at("front_size").asInt());
    return e;
  }
};

Entry runEntry(const std::string& kernelName, std::uint64_t seed) {
  auto& metrics = observe::MetricsRegistry::global();
  metrics.reset();

  tuning::KernelTuningProblem problem(kernels::kernelByName(kernelName),
                                      machine::westmere());
  autotune::TunerOptions options;
  options.gde3.seed = seed;
  autotune::AutoTuner tuner(options);
  const autotune::TuningResult result = tuner.tune(problem);

  Entry e;
  e.kernel = kernelName;
  e.machine = problem.machine().name;
  e.seed = seed;
  e.hypervolume = result.hypervolume;
  e.evaluations = result.evaluations;
  e.uniqueEvaluations = metrics.counter("tuning.evaluations.unique").value();
  e.memoHits = metrics.counter("tuning.evaluations.memo_hits").value();
  e.frontSize = result.front.size();
  return e;
}

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  MOTUNE_CHECK_MSG(in.good(), "cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Gates `current` against `baseline`. The hypervolume may regress by at
/// most `tolerance` (relative); the evaluation budget may grow by at most
/// 50% (search stochasticity headroom — a blowup signals a convergence
/// regression, not noise).
int compare(const std::vector<Entry>& current,
            const std::vector<Entry>& baseline, double tolerance) {
  std::map<std::string, const Entry*> byKey;
  for (const auto& b : baseline) byKey[b.kernel + "/" + b.machine] = &b;

  support::TextTable table("metrics vs. baseline (tolerance " +
                           support::fmtPercent(tolerance) + ")");
  table.setHeader({"kernel", "V(S)", "base V(S)", "E", "base E", "|S|",
                   "status"});
  int failures = 0;
  for (const auto& c : current) {
    const auto it = byKey.find(c.kernel + "/" + c.machine);
    if (it == byKey.end()) {
      table.addRow({c.kernel, support::fmt(c.hypervolume, 4), "-",
                    std::to_string(c.evaluations), "-",
                    std::to_string(c.frontSize), "NO BASELINE"});
      ++failures;
      continue;
    }
    const Entry& b = *it->second;
    std::string status = "ok";
    if (c.hypervolume < b.hypervolume * (1.0 - tolerance)) {
      status = "HV REGRESSION";
      ++failures;
    } else if (static_cast<double>(c.evaluations) >
               static_cast<double>(b.evaluations) * 1.5) {
      status = "EVAL BLOWUP";
      ++failures;
    }
    table.addRow({c.kernel, support::fmt(c.hypervolume, 4),
                  support::fmt(b.hypervolume, 4),
                  std::to_string(c.evaluations),
                  std::to_string(b.evaluations), std::to_string(c.frontSize),
                  status});
  }
  std::cout << table.render();
  return failures;
}

} // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> options;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string key = argv[i];
    MOTUNE_CHECK_MSG(key.rfind("--", 0) == 0, "unknown argument: " + key);
    options[key.substr(2)] = argv[i + 1];
  }
  const double tolerance =
      options.count("tolerance") ? std::stod(options.at("tolerance")) : 0.05;

  std::cout << "=== metrics smoke: RS-GDE3 tuning-quality gate ===\n";
  std::vector<Entry> entries;
  for (const std::string kernel : {"mm", "jacobi-2d"})
    entries.push_back(runEntry(kernel, /*seed=*/1));

  support::JsonArray jsonEntries;
  for (const auto& e : entries) jsonEntries.push_back(e.toJson());
  const support::Json doc(support::JsonObject{
      {"schema", support::Json(1)},
      {"entries", support::Json(std::move(jsonEntries))}});

  if (options.count("out")) {
    std::ofstream out(options.at("out"));
    MOTUNE_CHECK_MSG(out.good(), "cannot write " + options.at("out"));
    out << doc.dump(2) << "\n";
    std::cout << "metrics written to " << options.at("out") << "\n";
  }

  if (!options.count("baseline")) {
    std::cout << doc.dump(2) << "\n";
    return 0;
  }

  const support::Json baselineDoc =
      support::Json::parse(readFile(options.at("baseline")));
  std::vector<Entry> baseline;
  for (std::size_t i = 0; i < baselineDoc.at("entries").size(); ++i)
    baseline.push_back(Entry::fromJson(baselineDoc.at("entries")[i]));

  const int failures = compare(entries, baseline, tolerance);
  if (failures > 0) {
    std::cerr << failures << " metric gate(s) failed\n";
    return 1;
  }
  std::cout << "all metric gates passed\n";
  return 0;
}
