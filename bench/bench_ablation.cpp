// Ablation studies with a committed baseline gate.
//
// Default mode — surrogate pre-ranking ablation (the CI surrogate gate):
// for each of three kernels (mm, dsyrk, jacobi-2d on the Westmere model)
// runs RS-GDE3 three ways with the same seed:
//   * plain          — no surrogate at all (the reference),
//   * identity       — surrogate attached at keep = 1.0 (observe + score,
//                      cull nothing): must be byte-identical to plain,
//   * surrogate      — keep = 0.5: half of every generation's offspring is
//                      culled by the online ridge surrogate.
// Each run records a per-generation {generation, evaluations, hypervolume}
// curve via RunHooks::onGeneration (the same HV normalization per kernel:
// the metric is fixed by the seed-identical initial population). The gated
// quantity is evaluations-to-target savings, averaged over a band of
// targets for robustness: for each quality level q in {50%, 55%, ..., 90%}
// of the hypervolume gain both runs achieve (target = hv_gen1 + q *
// (min(final HVs) - hv_gen1); generation 1 precedes the surrogate's
// minSamples threshold, so hv_gen1 is common to both runs), divide the
// surrogate run's evaluations-to-target by the plain run's, and average. A
// kernel passes when the surrogate run needs >= 25% fewer evaluations on
// this band average. A single 0.95x-final threshold is degenerate here —
// the seed-identical initial population already lands within a few percent
// of the final hypervolume, so the band over the *gain* is what separates
// the curves.
//
// The same mode also gates analytic seeding (tune --seed-analytic): for
// each kernel a fourth run plants the perfmodel-derived seeds
// (src/tuning/seed.h) into the initial population, and its band-averaged
// evaluations-to-target savings over the unseeded run must clear a
// per-kernel floor.
//
// Gated rows (floors, checked with --tolerance, default 0):
//   ablation.surrogate_kernels_passing  >= 2 (of 3)
//   ablation.identity                   == 1 (keep=1.0 bit-identical)
//   ablation.seed_kernels_passing       >= 3 (of 3)
//   ablation.<kernel>.seed_evals_saved  per-kernel floors
// Per-kernel surrogate-savings rows ride along ungated, and the full
// curves (plain/surrogate/seeded) are embedded under "curves" in the
// --out JSON for offline plotting.
//
//   bench_ablation [--keep 0.5] [--seed 3] [--out BENCH_ablation.json]
//                  [--baseline bench/baselines/ablation_baseline.json]
//                  [--tolerance 0] [--metrics FILE] [--full 1] [--island 1]
//
// --island 1 instead runs the island-model ablation
// (bench/baselines/island_baseline.json): the merged front of a 4-island
// run (tune --islands 4) must reach at least the single search's
// hypervolume under joint normalization, and a rerun must reproduce it
// exactly (rows ablation.island.{hv_ratio,deterministic}).
//
// --full 1 instead runs the original algorithm-variant study (RS-GDE3 vs
// plain GDE3 vs NSGA-II, population sweep; beyond the paper, ungated).
#include "bench/common.h"

#include "core/nsga2.h"
#include "observe/metrics.h"
#include "support/check.h"
#include "support/stats.h"
#include "tuning/island.h"
#include "tuning/seed.h"
#include "tuning/surrogate.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

using namespace motune;

namespace {

struct Result {
  std::string name;
  double value = 0.0;
  std::string unit;
};

struct CurvePoint {
  int generation = 0;
  std::uint64_t evaluations = 0;
  double hypervolume = 0.0;
};

struct SearchRun {
  std::vector<CurvePoint> curve;
  opt::OptResult result;
};

/// One RS-GDE3 search with the paper configuration, optionally with the
/// surrogate attached or the initial population analytically seeded,
/// recording the per-generation trajectory.
SearchRun runSearch(tuning::KernelTuningProblem& problem,
                    runtime::ThreadPool& pool, std::uint64_t seed,
                    tuning::Surrogate* surrogate, double keep,
                    const std::vector<tuning::Config>& initialSeeds = {}) {
  opt::RSGDE3Options options;
  options.gde3.seed = seed;
  options.gde3.initialSeeds = initialSeeds;
  if (surrogate != nullptr) {
    options.gde3.surrogate = surrogate;
    options.gde3.surrogateKeep = keep;
  }
  opt::RSGDE3 engine(problem, pool, options);

  SearchRun run;
  opt::RunHooks hooks;
  hooks.onGeneration = [&run](const opt::GenerationProgress& p) {
    run.curve.push_back({p.generation, p.evaluations, p.hypervolume});
  };
  run.result = engine.run(&hooks);
  return run;
}

/// Full evaluations spent when the trajectory first reaches `target` HV;
/// 0 when it never does (treated as a gate failure by the caller).
std::uint64_t evalsToTarget(const std::vector<CurvePoint>& curve,
                            double target) {
  for (const CurvePoint& p : curve)
    if (p.hypervolume >= target) return p.evaluations;
  return 0;
}

/// Band-averaged evaluations savings (see the file comment): mean over
/// quality levels 50%..90% of the common hypervolume gain of
/// 1 - surrogate_evals_to_target / plain_evals_to_target. Every target lies
/// strictly below both final hypervolumes, so both monotone curves reach
/// all of them.
double bandSavings(const std::vector<CurvePoint>& plain,
                   const std::vector<CurvePoint>& culled) {
  const double hv0 = plain.front().hypervolume;
  const double ref =
      std::min(plain.back().hypervolume, culled.back().hypervolume);
  if (ref <= hv0) return 0.0; // no gain to measure: nothing saved
  double ratioSum = 0.0;
  const int steps = 9;
  for (int i = 0; i < steps; ++i) {
    const double q = 0.5 + 0.05 * i;
    const double target = hv0 + q * (ref - hv0);
    const std::uint64_t plainEvals = evalsToTarget(plain, target);
    const std::uint64_t surrogateEvals = evalsToTarget(culled, target);
    MOTUNE_CHECK(plainEvals > 0 && surrogateEvals > 0);
    ratioSum += static_cast<double>(surrogateEvals) /
                static_cast<double>(plainEvals);
  }
  return 1.0 - ratioSum / steps;
}

bool sameFront(const std::vector<opt::Individual>& a,
               const std::vector<opt::Individual>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i)
    if (a[i].config != b[i].config || a[i].objectives != b[i].objectives)
      return false;
  return true;
}

support::Json curveToJson(const std::vector<CurvePoint>& curve) {
  support::JsonArray points;
  for (const CurvePoint& p : curve)
    points.push_back(support::Json(support::JsonObject{
        {"generation", support::Json(p.generation)},
        {"evaluations",
         support::Json(static_cast<std::int64_t>(p.evaluations))},
        {"hypervolume", support::Json(p.hypervolume)}}));
  return support::Json(std::move(points));
}

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  MOTUNE_CHECK_MSG(in.good(), "cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Every gated row is a floor: current >= floor * (1 - tolerance).
int compare(const std::vector<Result>& current, const support::Json& baseline,
            double tolerance) {
  std::map<std::string, Result> currentByName;
  for (const auto& r : current) currentByName[r.name] = r;

  support::TextTable table("surrogate ablation vs. baseline (tolerance " +
                           support::fmtPercent(tolerance) + ")");
  table.setHeader({"benchmark", "current", "floor", "status"});
  int failures = 0;
  const support::Json& entries = baseline.at("benchmarks");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const std::string name = entries[i].at("name").asString();
    const double floor = entries[i].at("value").asNumber();
    const auto it = currentByName.find(name);
    if (it == currentByName.end()) {
      table.addRow({name, "-", support::fmt(floor, 3), "MISSING"});
      ++failures;
      continue;
    }
    const bool ok = it->second.value >= floor * (1.0 - tolerance);
    if (!ok) ++failures;
    table.addRow({name, support::fmt(it->second.value, 3),
                  support::fmt(floor, 3), ok ? "ok" : "REGRESSION"});
  }
  std::cout << table.render();
  return failures;
}

int runSurrogateAblation(const std::map<std::string, std::string>& options) {
  const double keep =
      options.count("keep") ? std::stod(options.at("keep")) : 0.5;
  const std::uint64_t seed =
      options.count("seed") ? std::stoull(options.at("seed")) : 3;
  const double tolerance =
      options.count("tolerance") ? std::stod(options.at("tolerance")) : 0.0;
  const std::vector<std::string> kernels = {"mm", "dsyrk", "jacobi-2d"};
  const machine::MachineModel machine = bench::paperMachines().front();

  std::cout << "=== Surrogate ablation: evaluations-to-target savings, "
               "band-averaged over 50-90% of the HV gain (keep "
            << support::fmt(keep, 2) << ", seed " << seed << ", "
            << machine.name << ") ===\n";

  support::TextTable table;
  table.setHeader({"kernel", "E plain", "E surrogate", "final HV plain",
                   "final HV surr", "saved", "status"});

  runtime::ThreadPool pool;
  std::vector<Result> results;
  support::JsonObject curves;
  int passing = 0;
  int seedPassing = 0;
  bool identityOk = true;
  support::TextTable seedTable;
  seedTable.setHeader({"kernel", "seeds", "E plain", "E seeded",
                       "final HV plain", "final HV seeded", "saved",
                       "status"});

  for (const std::string& name : kernels) {
    tuning::KernelTuningProblem problem(kernels::kernelByName(name), machine);

    const SearchRun plain = runSearch(problem, pool, seed, nullptr, 1.0);

    // keep = 1.0: the surrogate observes and scores but culls nothing — the
    // whole run must be byte-identical to the surrogate-free one.
    tuning::Surrogate identitySurrogate(problem.space(),
                                        problem.numObjectives());
    const SearchRun identity =
        runSearch(problem, pool, seed, &identitySurrogate, 1.0);
    const bool identical =
        identity.result.evaluations == plain.result.evaluations &&
        sameFront(identity.result.front, plain.result.front);
    if (!identical) {
      identityOk = false;
      std::cout << "  " << name << ": keep=1.0 run DIVERGED from plain ("
                << identity.result.evaluations << " vs "
                << plain.result.evaluations << " evaluations)\n";
    }

    tuning::Surrogate surrogate(problem.space(), problem.numObjectives());
    const SearchRun culled = runSearch(problem, pool, seed, &surrogate, keep);

    MOTUNE_CHECK_MSG(!plain.curve.empty() && !culled.curve.empty(),
                     name + ": empty trajectory");
    const double saved = bandSavings(plain.curve, culled.curve);
    const bool pass = saved >= 0.25;
    if (pass) ++passing;

    table.addRow({name, std::to_string(plain.result.evaluations),
                  std::to_string(culled.result.evaluations),
                  support::fmt(plain.curve.back().hypervolume, 4),
                  support::fmt(culled.curve.back().hypervolume, 4),
                  support::fmtPercent(saved), pass ? "pass" : "FAIL"});

    results.push_back({"ablation." + name + ".evals_saved",
                       saved, "ratio"});

    // Analytic seeding ablation: the same search with the perfmodel-derived
    // seeds planted in the initial population (tune --seed-analytic),
    // measured by the same evaluations-to-target band. Passing = the seeds
    // save evaluations at all; the per-kernel savings are gated as floors.
    const std::vector<tuning::Config> analytic = tuning::analyticSeeds(problem);
    const SearchRun seeded =
        runSearch(problem, pool, seed, nullptr, 1.0, analytic);
    MOTUNE_CHECK_MSG(!seeded.curve.empty(), name + ": empty seeded trajectory");
    const double seedSaved = bandSavings(plain.curve, seeded.curve);
    const bool seedPass = seedSaved > 0.0;
    if (seedPass) ++seedPassing;
    seedTable.addRow({name, std::to_string(analytic.size()),
                      std::to_string(plain.result.evaluations),
                      std::to_string(seeded.result.evaluations),
                      support::fmt(plain.curve.back().hypervolume, 4),
                      support::fmt(seeded.curve.back().hypervolume, 4),
                      support::fmtPercent(seedSaved),
                      seedPass ? "pass" : "FAIL"});
    results.push_back({"ablation." + name + ".seed_evals_saved",
                       seedSaved, "ratio"});

    curves.emplace(name,
                   support::Json(support::JsonObject{
                       {"plain", curveToJson(plain.curve)},
                       {"surrogate", curveToJson(culled.curve)},
                       {"seeded", curveToJson(seeded.curve)}}));
  }

  std::cout << table.render();
  std::cout << "  identity (keep=1.0 byte-identical): "
            << (identityOk ? "ok" : "FAILED") << "\n";
  std::cout << "=== Analytic seeding: evaluations-to-target savings over "
               "the unseeded run (same band) ===\n";
  std::cout << seedTable.render();

  results.push_back({"ablation.surrogate_kernels_passing",
                     static_cast<double>(passing), "kernels"});
  results.push_back({"ablation.seed_kernels_passing",
                     static_cast<double>(seedPassing), "kernels"});
  results.push_back({"ablation.identity", identityOk ? 1.0 : 0.0, "ok"});

  auto& metrics = observe::MetricsRegistry::global();
  metrics.gauge("bench.ablation.surrogate_kernels_passing")
      .set(static_cast<double>(passing));
  metrics.gauge("bench.ablation.seed_kernels_passing")
      .set(static_cast<double>(seedPassing));
  metrics.gauge("bench.ablation.identity").set(identityOk ? 1.0 : 0.0);

  support::JsonArray benchmarks;
  for (const auto& r : results)
    benchmarks.push_back(support::Json(support::JsonObject{
        {"name", support::Json(r.name)},
        {"value", support::Json(r.value)},
        {"unit", support::Json(r.unit)}}));
  const support::Json doc(support::JsonObject{
      {"schema", support::Json(1)},
      {"benchmarks", support::Json(std::move(benchmarks))},
      {"curves", support::Json(std::move(curves))}});

  if (options.count("out")) {
    std::ofstream out(options.at("out"));
    MOTUNE_CHECK_MSG(out.good(), "cannot write " + options.at("out"));
    out << doc.dump(2) << "\n";
    std::cout << "results written to " << options.at("out") << "\n";
  }
  if (options.count("metrics")) {
    std::ofstream out(options.at("metrics"));
    MOTUNE_CHECK_MSG(out.good(), "cannot write " + options.at("metrics"));
    out << metrics.toJson().dump(2) << "\n";
  }

  if (!options.count("baseline")) {
    std::cout << doc.dump(2) << "\n";
    return 0;
  }
  const int failures = compare(
      results, support::Json::parse(readFile(options.at("baseline"))),
      tolerance);
  if (failures > 0) {
    std::cerr << failures << " ablation gate(s) failed\n";
    return 1;
  }
  std::cout << "all ablation gates passed\n";
  return 0;
}

// --- island-model ablation (--island 1), gated like the surrogate mode ---

int runIslandAblation(const std::map<std::string, std::string>& options) {
  const std::uint64_t seed =
      options.count("seed") ? std::stoull(options.at("seed")) : 3;
  const int islands =
      options.count("islands") ? std::stoi(options.at("islands")) : 4;
  const double tolerance =
      options.count("tolerance") ? std::stod(options.at("tolerance")) : 0.0;
  const machine::MachineModel machine = bench::paperMachines().front();

  std::cout << "=== Island ablation: " << islands
            << "-island merged front vs the single search (mm, seed " << seed
            << ", " << machine.name << ") ===\n";

  tuning::KernelTuningProblem problem(kernels::kernelByName("mm"), machine);
  runtime::ThreadPool pool;

  // The single-island reference stops itself on stagnation, so its final
  // front is its best at any evaluation budget — comparing the merged
  // front against it is the equal-total-evaluations comparison.
  const SearchRun single = runSearch(problem, pool, seed, nullptr, 1.0);

  auto runIslandModel = [&] {
    tuning::IslandOptions io;
    io.islands = islands;
    io.gde3.seed = seed;
    return tuning::runIslands(problem, pool, io);
  };
  const tuning::IslandRun first = runIslandModel();
  const tuning::IslandRun second = runIslandModel();
  const bool deterministic =
      sameFront(first.merged.front, second.merged.front) &&
      first.merged.evaluations == second.merged.evaluations;

  // Joint normalization so the two hypervolumes are comparable.
  const std::vector<double> scores = bench::scoreFrontsJointly(
      {&single.result.front, &first.merged.front});
  const double hvRatio = scores[0] > 0.0 ? scores[1] / scores[0] : 0.0;

  support::TextTable table;
  table.setHeader({"variant", "E", "|S|", "V(S)"});
  table.addRow({"single island", std::to_string(single.result.evaluations),
                std::to_string(single.result.front.size()),
                support::fmt(scores[0], 4)});
  table.addRow({std::to_string(islands) + " islands (merged)",
                std::to_string(first.merged.evaluations),
                std::to_string(first.merged.front.size()),
                support::fmt(scores[1], 4)});
  std::cout << table.render();
  std::cout << "  merged/single hypervolume ratio: "
            << support::fmt(hvRatio, 4) << "\n"
            << "  rerun determinism: " << (deterministic ? "ok" : "FAILED")
            << "\n";

  const std::vector<Result> results = {
      {"ablation.island.hv_ratio", hvRatio, "ratio"},
      {"ablation.island.deterministic", deterministic ? 1.0 : 0.0, "ok"},
      {"ablation.island.front_size",
       static_cast<double>(first.merged.front.size()), "configs"},
  };

  auto& metrics = observe::MetricsRegistry::global();
  metrics.gauge("bench.ablation.island_hv_ratio").set(hvRatio);
  metrics.gauge("bench.ablation.island_deterministic")
      .set(deterministic ? 1.0 : 0.0);

  support::JsonArray benchmarks;
  for (const auto& r : results)
    benchmarks.push_back(support::Json(support::JsonObject{
        {"name", support::Json(r.name)},
        {"value", support::Json(r.value)},
        {"unit", support::Json(r.unit)}}));
  const support::Json doc(support::JsonObject{
      {"schema", support::Json(1)},
      {"benchmarks", support::Json(std::move(benchmarks))}});

  if (options.count("out")) {
    std::ofstream out(options.at("out"));
    MOTUNE_CHECK_MSG(out.good(), "cannot write " + options.at("out"));
    out << doc.dump(2) << "\n";
    std::cout << "results written to " << options.at("out") << "\n";
  }
  if (options.count("metrics")) {
    std::ofstream out(options.at("metrics"));
    MOTUNE_CHECK_MSG(out.good(), "cannot write " + options.at("metrics"));
    out << metrics.toJson().dump(2) << "\n";
  }

  if (!options.count("baseline")) {
    std::cout << doc.dump(2) << "\n";
    return 0;
  }
  const int failures = compare(
      results, support::Json::parse(readFile(options.at("baseline"))),
      tolerance);
  if (failures > 0) {
    std::cerr << failures << " island gate(s) failed\n";
    return 1;
  }
  std::cout << "all island gates passed\n";
  return 0;
}

// --- legacy algorithm-variant study (--full 1), unchanged and ungated ---

struct Variant {
  std::string label;
  std::vector<opt::OptResult> runs;
};

int runFullStudy() {
  std::cout << "=== Ablation: RS-GDE3 vs plain GDE3 vs NSGA-II, and "
               "population-size sensitivity (mm) ===\n";

  for (const auto& m : bench::paperMachines()) {
    tuning::KernelTuningProblem problem(kernels::kernelByName("mm"), m);
    runtime::ThreadPool pool;

    std::cout << "\n--- " << m.name << " (means of 5 runs) ---\n";
    support::TextTable table;
    table.setHeader({"variant", "E", "|S|", "V(S)"});

    std::vector<Variant> variants;
    // Every variant gets the same parallelism-aware refinement (counted in
    // E) so the comparison isolates the search strategy itself.
    auto sweep = [&](const char* label, auto makeAndRun) {
      Variant v;
      v.label = label;
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        opt::OptResult r = makeAndRun(seed);
        autotune::threadSweepRefinement(problem, r);
        v.runs.push_back(std::move(r));
      }
      variants.push_back(std::move(v));
    };

    sweep("RS-GDE3 (paper)", [&](std::uint64_t seed) {
      opt::RSGDE3Options o;
      o.gde3.seed = seed;
      return opt::RSGDE3(problem, pool, o).run();
    });
    sweep("GDE3, no reduction", [&](std::uint64_t seed) {
      opt::RSGDE3Options o;
      o.gde3.seed = seed;
      o.reductionEnabled = false;
      return opt::RSGDE3(problem, pool, o).run();
    });
    sweep("NSGA-II", [&](std::uint64_t seed) {
      opt::NSGA2Options o;
      o.seed = seed;
      o.noImproveLimit = 6;
      return opt::NSGA2(problem, pool, o).run();
    });
    sweep("RS-GDE3, pop 10", [&](std::uint64_t seed) {
      opt::RSGDE3Options o;
      o.gde3.seed = seed;
      o.gde3.population = 10;
      return opt::RSGDE3(problem, pool, o).run();
    });
    sweep("RS-GDE3, pop 60", [&](std::uint64_t seed) {
      opt::RSGDE3Options o;
      o.gde3.seed = seed;
      o.gde3.population = 60;
      return opt::RSGDE3(problem, pool, o).run();
    });
    sweep("RS-GDE3, no immigrants", [&](std::uint64_t seed) {
      opt::RSGDE3Options o;
      o.gde3.seed = seed;
      o.gde3.immigrantsOnStagnation = 0;
      return opt::RSGDE3(problem, pool, o).run();
    });
    sweep("RS-GDE3, strict paper stop (3)", [&](std::uint64_t seed) {
      opt::RSGDE3Options o;
      o.gde3.seed = seed;
      o.gde3.noImproveLimit = 3;
      return opt::RSGDE3(problem, pool, o).run();
    });

    // Joint normalization across every run of every variant.
    std::vector<const std::vector<opt::Individual>*> allFronts;
    for (const auto& v : variants)
      for (const auto& r : v.runs) allFronts.push_back(&r.front);
    const auto scores = bench::scoreFrontsJointly(allFronts);

    std::size_t idx = 0;
    for (const auto& v : variants) {
      std::vector<double> es, ss, vs;
      for (const auto& r : v.runs) {
        es.push_back(static_cast<double>(r.evaluations));
        ss.push_back(static_cast<double>(r.front.size()));
        vs.push_back(scores[idx++]);
      }
      table.addRow({v.label, support::fmt(support::mean(es), 0),
                    support::fmt(support::mean(ss), 1),
                    support::fmt(support::mean(vs), 3)});
    }
    std::cout << table.render();
  }

  std::cout << "\nReading: the reduction mainly buys evaluation efficiency; "
               "the elite-transfer immigrants buy front coverage; "
               "population 30 (the paper's choice) balances both.\n";
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> options;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string key = argv[i];
    MOTUNE_CHECK_MSG(key.rfind("--", 0) == 0, "unknown argument: " + key);
    options[key.substr(2)] = argv[i + 1];
  }
  if (options.count("full") && options.at("full") != "0") return runFullStudy();
  if (options.count("island") && options.at("island") != "0")
    return runIslandAblation(options);
  return runSurrogateAblation(options);
}
