// Ablation study (beyond the paper): which parts of RS-GDE3's design
// matter? Compares, on the mm tuning problem for both machines:
//   * RS-GDE3 (the paper's algorithm)
//   * plain GDE3 (rough-set reduction disabled)
//   * NSGA-II (different evolutionary machinery, same budget regime)
// and sweeps the population size (the paper fixes 30 citing prior work).
#include "bench/common.h"

#include "core/nsga2.h"
#include "support/stats.h"

#include <iostream>

using namespace motune;

namespace {

struct Variant {
  std::string label;
  std::vector<opt::OptResult> runs;
};

} // namespace

int main() {
  std::cout << "=== Ablation: RS-GDE3 vs plain GDE3 vs NSGA-II, and "
               "population-size sensitivity (mm) ===\n";

  for (const auto& m : bench::paperMachines()) {
    tuning::KernelTuningProblem problem(kernels::kernelByName("mm"), m);
    runtime::ThreadPool pool;

    std::cout << "\n--- " << m.name << " (means of 5 runs) ---\n";
    support::TextTable table;
    table.setHeader({"variant", "E", "|S|", "V(S)"});

    std::vector<Variant> variants;
    // Every variant gets the same parallelism-aware refinement (counted in
    // E) so the comparison isolates the search strategy itself.
    auto sweep = [&](const char* label, auto makeAndRun) {
      Variant v;
      v.label = label;
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        opt::OptResult r = makeAndRun(seed);
        autotune::threadSweepRefinement(problem, r);
        v.runs.push_back(std::move(r));
      }
      variants.push_back(std::move(v));
    };

    sweep("RS-GDE3 (paper)", [&](std::uint64_t seed) {
      opt::RSGDE3Options o;
      o.gde3.seed = seed;
      return opt::RSGDE3(problem, pool, o).run();
    });
    sweep("GDE3, no reduction", [&](std::uint64_t seed) {
      opt::RSGDE3Options o;
      o.gde3.seed = seed;
      o.reductionEnabled = false;
      return opt::RSGDE3(problem, pool, o).run();
    });
    sweep("NSGA-II", [&](std::uint64_t seed) {
      opt::NSGA2Options o;
      o.seed = seed;
      o.noImproveLimit = 6;
      return opt::NSGA2(problem, pool, o).run();
    });
    sweep("RS-GDE3, pop 10", [&](std::uint64_t seed) {
      opt::RSGDE3Options o;
      o.gde3.seed = seed;
      o.gde3.population = 10;
      return opt::RSGDE3(problem, pool, o).run();
    });
    sweep("RS-GDE3, pop 60", [&](std::uint64_t seed) {
      opt::RSGDE3Options o;
      o.gde3.seed = seed;
      o.gde3.population = 60;
      return opt::RSGDE3(problem, pool, o).run();
    });
    sweep("RS-GDE3, no immigrants", [&](std::uint64_t seed) {
      opt::RSGDE3Options o;
      o.gde3.seed = seed;
      o.gde3.immigrantsOnStagnation = 0;
      return opt::RSGDE3(problem, pool, o).run();
    });
    sweep("RS-GDE3, strict paper stop (3)", [&](std::uint64_t seed) {
      opt::RSGDE3Options o;
      o.gde3.seed = seed;
      o.gde3.noImproveLimit = 3;
      return opt::RSGDE3(problem, pool, o).run();
    });

    // Joint normalization across every run of every variant.
    std::vector<const std::vector<opt::Individual>*> allFronts;
    for (const auto& v : variants)
      for (const auto& r : v.runs) allFronts.push_back(&r.front);
    const auto scores = bench::scoreFrontsJointly(allFronts);

    std::size_t idx = 0;
    for (const auto& v : variants) {
      std::vector<double> es, ss, vs;
      for (const auto& r : v.runs) {
        es.push_back(static_cast<double>(r.evaluations));
        ss.push_back(static_cast<double>(r.front.size()));
        vs.push_back(scores[idx++]);
      }
      table.addRow({v.label, support::fmt(support::mean(es), 0),
                    support::fmt(support::mean(ss), 1),
                    support::fmt(support::mean(vs), 3)});
    }
    std::cout << table.render();
  }

  std::cout << "\nReading: the reduction mainly buys evaluation efficiency; "
               "the elite-transfer immigrants buy front coverage; "
               "population 30 (the paper's choice) balances both.\n";
  return 0;
}
