// Reproduces paper Table I: the experimental platforms. In this
// reproduction the platforms are machine models consumed by the analytical
// performance simulator (DESIGN.md §1); this binary prints their exact
// parameterization so every other experiment's context is on record.
#include "bench/common.h"

#include <iostream>

using namespace motune;

int main() {
  std::cout << "=== Table I: experimental setup (modeled machines) ===\n\n";
  support::TextTable table;
  table.setHeader({"System", "Sockets/Cores", "L1d", "L2", "L3 (shared)",
                   "GHz", "GB/s per socket"});
  for (const auto& m : bench::paperMachines()) {
    auto kb = [](std::int64_t b) { return std::to_string(b / 1024) + "K"; };
    auto mb = [](std::int64_t b) {
      return std::to_string(b / 1024 / 1024) + "M";
    };
    table.addRow({m.name,
                  std::to_string(m.sockets) + "/" +
                      std::to_string(m.totalCores()),
                  kb(m.caches[0].capacityBytes), kb(m.caches[1].capacityBytes),
                  mb(m.caches[2].capacityBytes), support::fmt(m.freqGHz, 1),
                  support::fmt(m.dramBandwidthGBs, 1)});
  }
  std::cout << table.render() << "\n";

  support::TextTable detail("Model calibration (not in the paper's table; "
                            "documented for reproducibility)");
  detail.setHeader({"System", "lat L1/L2/L3/DRAM (cycles)", "flops/cycle",
                    "contention/thread", "contention/socket"});
  for (const auto& m : bench::paperMachines()) {
    detail.addRow({m.name,
                   std::to_string(m.caches[0].latencyCycles) + "/" +
                       std::to_string(m.caches[1].latencyCycles) + "/" +
                       std::to_string(m.caches[2].latencyCycles) + "/" +
                       std::to_string(m.dramLatencyCycles),
                   support::fmt(m.flopsPerCyclePerCore, 0),
                   support::fmt(m.memContentionPerThread, 4),
                   support::fmt(m.memContentionPerSocket, 2)});
  }
  std::cout << detail.render();
  return 0;
}
