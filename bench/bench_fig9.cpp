// Reproduces paper Fig. 9: the Pareto fronts obtained by brute force,
// random search (equal budget to RS-GDE3) and RS-GDE3 on the mm kernel,
// for both machines — including an ASCII rendering of the fronts in
// (time, resources) space.
#include "bench/common.h"

#include <algorithm>
#include <cmath>
#include <iostream>

using namespace motune;

namespace {

void plotFronts(const std::vector<std::pair<char, const std::vector<opt::Individual>*>>& fronts,
                double tMax, double rMin, double rMax) {
  const int W = 72, H = 24;
  std::vector<std::string> canvas(H, std::string(W, ' '));
  for (const auto& [mark, front] : fronts) {
    for (const auto& ind : *front) {
      const double t = ind.objectives[0];
      const double r = ind.objectives[1];
      if (t > tMax || r > rMax) continue;
      const int x = std::min(W - 1, static_cast<int>(t / tMax * (W - 1)));
      const int y =
          std::min(H - 1, static_cast<int>((r - rMin) / (rMax - rMin) *
                                           (H - 1)));
      canvas[static_cast<std::size_t>(H - 1 - y)][static_cast<std::size_t>(
          x)] = mark;
    }
  }
  printf("resources\n");
  for (int row = 0; row < H; ++row) {
    const double r = rMax - (rMax - rMin) * row / (H - 1);
    printf("%7.2f |%s\n", r, canvas[static_cast<std::size_t>(row)].c_str());
  }
  printf("        +%s> time (0 .. %.2fs)\n", std::string(W, '-').c_str(),
         tMax);
}

} // namespace

int main() {
  std::cout << "=== Fig. 9: Pareto fronts computed by different "
               "optimization algorithms (mm) ===\n";

  for (const auto& m : bench::paperMachines()) {
    tuning::KernelTuningProblem problem(kernels::kernelByName("mm"), m);
    runtime::ThreadPool pool;

    opt::GridSearch grid(problem, pool, bench::paperGrid(problem));
    const opt::OptResult bf = grid.run();

    const opt::OptResult rs = bench::runRSGDE3(problem, pool, /*seed=*/11);

    opt::RandomSearch random(problem, pool, {rs.evaluations, 11, true});
    const opt::OptResult rnd = random.run();

    std::cout << "\n--- " << m.name << " ---\n";
    support::TextTable table;
    table.setHeader({"strategy", "E", "|S|", "V(S)", "fastest",
                     "most efficient"});
    const auto scores =
        bench::scoreFrontsJointly({&bf.front, &rnd.front, &rs.front});
    auto addRow = [&](const char* name, const opt::OptResult& r,
                      double score) {
      double tBest = std::numeric_limits<double>::infinity();
      double rBest = std::numeric_limits<double>::infinity();
      for (const auto& ind : r.front) {
        tBest = std::min(tBest, ind.objectives[0]);
        rBest = std::min(rBest, ind.objectives[1]);
      }
      table.addRow({name, std::to_string(r.evaluations),
                    std::to_string(r.front.size()),
                    support::fmt(score, 3), support::fmtSeconds(tBest),
                    support::fmt(rBest, 3) + " core-s"});
    };
    addRow("brute force", bf, scores[0]);
    addRow("random", rnd, scores[1]);
    addRow("RS-GDE3", rs, scores[2]);
    std::cout << table.render();

    // Plot window sized by the union of brute-force and random fronts.
    double tMax = 0.0, rMin = 1e300, rMax = 0.0;
    for (const auto* res : {&bf, &rnd, &rs}) {
      for (const auto& ind : res->front) {
        tMax = std::max(tMax, ind.objectives[0]);
        rMin = std::min(rMin, ind.objectives[1]);
        rMax = std::max(rMax, ind.objectives[1]);
      }
    }
    std::cout << "front plot: B = brute force, R = random, G = RS-GDE3 "
                 "(later marks overdraw earlier)\n";
    plotFronts({{'B', &bf.front}, {'R', &rnd.front}, {'G', &rs.front}},
               tMax * 1.05, rMin * 0.95, rMax * 1.05);
  }

  std::cout << "\nPaper reference: RS-GDE3 matches or exceeds brute force "
               "(up to 13% faster points on Westmere) while random search "
               "at equal budget 'is very far off'.\n";
  return 0;
}
