#include "bench/common.h"

#include "support/check.h"

#include <algorithm>
#include <limits>
#include <sstream>

namespace motune::bench {

opt::GridSpec paperGrid(const tuning::KernelTuningProblem& problem) {
  const auto& space = problem.space();
  const std::size_t tileDims = problem.skeleton().tileDepth();
  // 3-D tiling: ~24 values/dim (mm: 24^3 * 5 = 69120 vs. the paper's
  // 71290); 2-D tiling: 69 values/dim (jacobi-2d: 69^2 * 5 = 23805,
  // exactly the paper's count); the small 3d-stencil space uses 13/dim.
  std::size_t perDim = 24;
  if (tileDims == 2) perDim = 69;
  if (problem.kernel().name == "3d-stencil") perDim = 13;
  if (problem.kernel().name == "n-body") perDim = 72;

  opt::GridSpec spec;
  for (std::size_t d = 0; d < tileDims; ++d)
    spec.values.push_back(
        opt::geometricValues(space[d].lo, space[d].hi, perDim));
  std::vector<std::int64_t> threads;
  for (int t : machine::evaluatedThreadCounts(problem.machine()))
    threads.push_back(t);
  spec.values.push_back(std::move(threads));
  return spec;
}

std::vector<PerThreadBest> perThreadOptima(const opt::OptResult& result,
                                           const std::vector<int>& counts) {
  std::vector<PerThreadBest> best(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i) {
    best[i].threads = counts[i];
    best[i].seconds = std::numeric_limits<double>::infinity();
  }
  for (const opt::Individual& ind : result.population) {
    const auto threads = static_cast<int>(ind.config.back());
    for (std::size_t i = 0; i < counts.size(); ++i) {
      if (counts[i] == threads && ind.objectives[0] < best[i].seconds) {
        best[i].seconds = ind.objectives[0];
        best[i].config = ind.config;
      }
    }
  }
  for (const auto& b : best)
    MOTUNE_CHECK_MSG(!b.config.empty(),
                     "no configuration evaluated for a thread count");
  return best;
}

std::vector<std::vector<double>>
crossLossMatrix(tuning::KernelTuningProblem& problem,
                const std::vector<PerThreadBest>& best,
                const std::vector<int>& counts) {
  std::vector<std::vector<double>> loss(
      best.size(), std::vector<double>(counts.size(), 0.0));
  for (std::size_t i = 0; i < best.size(); ++i) {
    for (std::size_t j = 0; j < counts.size(); ++j) {
      tuning::Config config = best[i].config;   // tiles tuned for counts[i]
      config.back() = counts[j];                // ... run with counts[j]
      const double t = problem.evaluate(config)[0];
      loss[i][j] = t / best[j].seconds - 1.0;
    }
  }
  return loss;
}

double averageOffDiagonal(const std::vector<double>& row, std::size_t self) {
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t j = 0; j < row.size(); ++j) {
    if (j == self) continue;
    sum += row[j];
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

opt::OptResult runRSGDE3(tuning::KernelTuningProblem& problem,
                         runtime::ThreadPool& pool, std::uint64_t seed) {
  opt::RSGDE3Options options;
  options.gde3.seed = seed;
  opt::RSGDE3 engine(problem, pool, options);
  opt::OptResult result = engine.run();
  autotune::threadSweepRefinement(problem, result); // counted in E
  return result;
}

double scoreFront(const std::vector<opt::Individual>& front,
                  tuning::KernelTuningProblem& problem) {
  const double timeRef = problem.untiledSerialSeconds();
  return autotune::scoreHypervolume(front, timeRef, 2.0 * timeRef);
}

std::vector<double> scoreFrontsJointly(
    const std::vector<const std::vector<opt::Individual>*>& fronts) {
  MOTUNE_CHECK(!fronts.empty());
  // Ideal / nadir over the union of all front points.
  tuning::Objectives ideal, nadir;
  for (const auto* front : fronts) {
    for (const auto& ind : *front) {
      if (ideal.empty()) {
        ideal = ind.objectives;
        nadir = ind.objectives;
        continue;
      }
      for (std::size_t d = 0; d < ideal.size(); ++d) {
        ideal[d] = std::min(ideal[d], ind.objectives[d]);
        nadir[d] = std::max(nadir[d], ind.objectives[d]);
      }
    }
  }
  MOTUNE_CHECK(!ideal.empty());
  for (std::size_t d = 0; d < ideal.size(); ++d)
    if (nadir[d] <= ideal[d]) nadir[d] = ideal[d] + 1.0;

  const tuning::Objectives ref(ideal.size(), 1.1);
  std::vector<double> scores;
  const double full = opt::hypervolume2d({{0.0, 0.0}}, ref); // 1.21
  for (const auto* front : fronts) {
    std::vector<tuning::Objectives> pts;
    for (const auto& ind : *front) {
      tuning::Objectives q(ideal.size());
      for (std::size_t d = 0; d < ideal.size(); ++d)
        q[d] = (ind.objectives[d] - ideal[d]) / (nadir[d] - ideal[d]);
      pts.push_back(std::move(q));
    }
    scores.push_back(opt::hypervolume2d(std::move(pts), ref) / full);
  }
  return scores;
}

std::string tilesStr(const tuning::Config& config, std::size_t tileDims) {
  std::ostringstream os;
  os << "(";
  for (std::size_t d = 0; d < tileDims; ++d) {
    if (d) os << ", ";
    os << config[d];
  }
  os << ")";
  return os.str();
}

std::vector<machine::MachineModel> paperMachines() {
  return {machine::westmere(), machine::barcelona()};
}

} // namespace motune::bench
