// Reproduces paper Fig. 8: execution time vs. resource usage of all
// brute-force-evaluated mm configurations, grouped by thread count. Each
// thread count forms one trajectory; the globally non-dominated tips of
// the trajectories form the Pareto front the static optimizer targets.
#include "bench/common.h"

#include <algorithm>
#include <iostream>

using namespace motune;

int main() {
  std::cout << "=== Fig. 8: execution time vs. resource usage per thread "
               "count (mm, brute force) ===\n";

  for (const auto& m : bench::paperMachines()) {
    tuning::KernelTuningProblem problem(kernels::kernelByName("mm"), m);
    const auto counts = machine::evaluatedThreadCounts(m);

    runtime::ThreadPool pool;
    opt::GridSearch grid(problem, pool, bench::paperGrid(problem));
    const opt::OptResult bf = grid.run();

    std::cout << "\n--- " << m.name << " ---\n";
    support::TextTable table;
    table.setHeader({"threads", "min time", "median time", "max time",
                     "min resources", "resources@min-time", "tip on front?"});

    // The Pareto front over everything (the "globally non-dominated tips").
    const auto front = bf.front;
    auto onFront = [&](double seconds, int threads) {
      for (const auto& ind : front)
        if (static_cast<int>(ind.config.back()) == threads &&
            ind.objectives[0] <= seconds * (1.0 + 1e-12))
          return true;
      return false;
    };

    for (int p : counts) {
      std::vector<double> times;
      double minRes = std::numeric_limits<double>::infinity();
      for (const auto& ind : bf.population) {
        if (static_cast<int>(ind.config.back()) != p) continue;
        times.push_back(ind.objectives[0]);
        minRes = std::min(minRes, ind.objectives[1]);
      }
      std::sort(times.begin(), times.end());
      const double tMin = times.front();
      table.addRow({std::to_string(p), support::fmtSeconds(tMin),
                    support::fmtSeconds(times[times.size() / 2]),
                    support::fmtSeconds(times.back()),
                    support::fmt(minRes, 3) + " core-s",
                    support::fmt(tMin * p, 3) + " core-s",
                    onFront(tMin, p) ? "yes" : "no"});
    }
    std::cout << table.render();

    std::cout << "Pareto front (the tips, time-sorted):\n";
    std::vector<opt::Individual> sorted = front;
    std::sort(sorted.begin(), sorted.end(),
              [](const auto& a, const auto& b) {
                return a.objectives[0] < b.objectives[0];
              });
    for (const auto& ind : sorted)
      std::cout << "  p=" << ind.config.back() << " tiles="
                << bench::tilesStr(ind.config, 3) << "  time="
                << support::fmtSeconds(ind.objectives[0]) << "  resources="
                << support::fmt(ind.objectives[1], 3) << " core-s\n";
  }
  std::cout << "\nAs in the paper: every evaluated thread count contributes "
               "its fastest variant as one tip of the front; higher thread "
               "counts buy time for resources.\n";
  return 0;
}
