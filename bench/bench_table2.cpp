// Reproduces paper Table II: optimal tiling parameters per thread count
// (from the restricted brute-force search) and the relative performance
// loss when a configuration tuned for one thread count runs with another,
// plus the untiled "GCC -O3" baseline row.
#include "bench/common.h"

#include <iostream>

using namespace motune;

int main() {
  std::cout << "=== Table II: optimal tiling parameters for different "
               "numbers of threads (mm, N = 1400) ===\n";

  for (const auto& m : bench::paperMachines()) {
    tuning::KernelTuningProblem problem(kernels::kernelByName("mm"), m);
    const auto counts = machine::evaluatedThreadCounts(m);

    runtime::ThreadPool pool;
    opt::GridSearch grid(problem, pool, bench::paperGrid(problem));
    const opt::OptResult bf = grid.run();

    const auto best = bench::perThreadOptima(bf, counts);
    const auto loss = bench::crossLossMatrix(problem, best, counts);

    std::cout << "\n--- " << m.name << " (brute force: " << bf.evaluations
              << " evaluations; paper: "
              << (m.name == "Westmere" ? "71290" : "85548") << ") ---\n";

    support::TextTable table;
    std::vector<std::string> header{"tuned for", "opt. tiles", "time"};
    for (int c : counts) header.push_back("@" + std::to_string(c));
    header.push_back("Avg.");
    table.setHeader(header);

    for (std::size_t i = 0; i < best.size(); ++i) {
      std::vector<std::string> row{
          std::to_string(best[i].threads) + (best[i].threads == 1 ? " core"
                                                                  : " cores"),
          bench::tilesStr(best[i].config, problem.skeleton().tileDepth()),
          support::fmtSeconds(best[i].seconds)};
      for (std::size_t j = 0; j < counts.size(); ++j)
        row.push_back(i == j ? "-" : support::fmtPercent(loss[i][j], 1));
      row.push_back(
          support::fmtPercent(bench::averageOffDiagonal(loss[i], i), 1));
      table.addRow(row);
    }

    // Untiled serial baseline ("GCC -O3" analog): how much slower than the
    // per-thread-count tuned variants.
    table.addSeparator();
    const double untiled = problem.untiledSerialSeconds();
    std::vector<std::string> baseRow{"untiled -O3", "(no tiling)",
                                     support::fmtSeconds(untiled)};
    for (std::size_t j = 0; j < counts.size(); ++j) {
      tuning::Config c = best[j].config; // measure untiled at each count:
      (void)c; // the untiled region is serial; report slowdown vs. tuned
      baseRow.push_back(
          support::fmt(untiled / best[j].seconds, 1) + "x");
    }
    baseRow.push_back("");
    table.addRow(baseRow);
    std::cout << table.render();

    std::cout << "paper reference (" << m.name << "): 1-thread tiles run at "
              << (m.name == "Westmere" ? "15.1%" : "18.0%")
              << " loss on all cores; worst cross-thread loss "
              << (m.name == "Westmere" ? "15.1%" : "30.1%") << ".\n";
  }
  return 0;
}
