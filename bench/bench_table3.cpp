// Reproduces paper Table III: speedup, efficiency, relative time and
// relative resource investment of the per-thread-count optimal mm variants
// — the concrete numbers behind the speedup/efficiency trade-off (the
// Pareto points the multi-objective optimizer must expose).
#include "bench/common.h"

#include <iostream>

using namespace motune;

int main() {
  std::cout << "=== Table III: impact of the number of threads on speedup "
               "and efficiency (mm, N = 1400) ===\n";

  struct PaperRef {
    const char* name;
    std::vector<double> speedup;
  };
  const PaperRef refs[] = {
      {"Westmere", {1.0, 4.82873, 9.26091, 16.77778, 26.35799}},
      {"Barcelona", {1.0, 1.92067, 3.65286, 6.53208, 10.65231, 14.53095}},
  };

  for (std::size_t mi = 0; mi < 2; ++mi) {
    const machine::MachineModel m = bench::paperMachines()[mi];
    tuning::KernelTuningProblem problem(kernels::kernelByName("mm"), m);
    const auto counts = machine::evaluatedThreadCounts(m);

    runtime::ThreadPool pool;
    opt::GridSearch grid(problem, pool, bench::paperGrid(problem));
    const auto best = bench::perThreadOptima(grid.run(), counts);
    const double serial = best.front().seconds; // fastest tiled sequential

    std::cout << "\n--- " << m.name << " ---\n";
    support::TextTable table;
    table.setHeader({"cores", "speedup", "efficiency", "rel. time",
                     "rel. resources", "paper speedup"});
    for (std::size_t i = 0; i < best.size(); ++i) {
      const double s = serial / best[i].seconds;
      const double e = s / best[i].threads;
      table.addRow({std::to_string(best[i].threads), support::fmt(s, 5),
                    support::fmt(e, 5),
                    support::fmtPercent(best[i].seconds / serial, 0),
                    support::fmtPercent(1.0 / e, 0),
                    support::fmt(refs[mi].speedup[i], 5)});
    }
    std::cout << table.render();
    std::cout << "(every row is non-dominated in (time, resources): each "
                 "thread count contributes one Pareto point, as in the "
                 "paper)\n";
  }
  return 0;
}
