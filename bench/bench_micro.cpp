// Microbenchmarks (google-benchmark) of the framework's building blocks:
// the per-component costs behind one auto-tuning run — dominance checks,
// non-dominated sorting, hypervolume, configuration evaluation through the
// performance model, DE generation steps, cache-simulator throughput, and
// the runtime's parallel_for dispatch.
#include "bench/common.h"

#include "cachesim/hierarchy.h"
#include "core/gde3.h"
#include "core/hypervolume.h"
#include "core/testproblems.h"
#include "ir/bytecode.h"
#include "ir/interp.h"
#include "kernels/native.h"
#include "perfmodel/costmodel.h"
#include "perfmodel/footprint.h"
#include "runtime/parallel_for.h"
#include "support/rng.h"
#include "transform/transforms.h"

#include <benchmark/benchmark.h>

namespace {

using namespace motune;

std::vector<opt::Individual> randomPop(std::size_t n, std::uint64_t seed) {
  support::Rng rng(seed);
  std::vector<opt::Individual> pop;
  for (std::size_t i = 0; i < n; ++i)
    pop.push_back({{},
                   {static_cast<std::int64_t>(i)},
                   {rng.uniform(), rng.uniform()}});
  return pop;
}

void BM_Dominates(benchmark::State& state) {
  const tuning::Objectives a{0.3, 0.7}, b{0.5, 0.5};
  for (auto _ : state) benchmark::DoNotOptimize(opt::dominates(a, b));
}
BENCHMARK(BM_Dominates);

void BM_NonDominatedSort(benchmark::State& state) {
  const auto pop = randomPop(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) benchmark::DoNotOptimize(opt::nonDominatedSort(pop));
}
BENCHMARK(BM_NonDominatedSort)->Arg(30)->Arg(200);

void BM_Hypervolume2d(benchmark::State& state) {
  support::Rng rng(3);
  std::vector<tuning::Objectives> pts;
  for (int i = 0; i < state.range(0); ++i)
    pts.push_back({rng.uniform(), rng.uniform()});
  for (auto _ : state) {
    auto copy = pts;
    benchmark::DoNotOptimize(opt::hypervolume2d(std::move(copy), {1, 1}));
  }
}
BENCHMARK(BM_Hypervolume2d)->Arg(10)->Arg(100)->Arg(1000);

void BM_TileTransform(benchmark::State& state) {
  const ir::Program mm = kernels::buildMM(1400);
  const std::int64_t sizes[] = {64, 64, 64};
  for (auto _ : state)
    benchmark::DoNotOptimize(transform::tile(mm, sizes));
}
BENCHMARK(BM_TileTransform);

void BM_NestAnalysis(benchmark::State& state) {
  const ir::Program mm = kernels::buildMM(1400);
  const std::int64_t sizes[] = {64, 64, 64};
  const ir::Program tiled = transform::tile(mm, sizes);
  for (auto _ : state)
    benchmark::DoNotOptimize(perf::analyzeNest(tiled));
}
BENCHMARK(BM_NestAnalysis);

void BM_ConfigEvaluation(benchmark::State& state) {
  // One full configuration evaluation (cached variant): what each of the
  // optimizer's E evaluations costs against the machine model.
  tuning::KernelTuningProblem problem(kernels::kernelByName("mm"),
                                      machine::westmere());
  problem.evaluate({64, 64, 64, 8}); // warm the variant cache
  std::int64_t threads = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        problem.evaluate({64, 64, 64, 1 + threads % 40}));
    ++threads;
  }
}
BENCHMARK(BM_ConfigEvaluation);

void BM_ConfigEvaluationColdTiles(benchmark::State& state) {
  tuning::KernelTuningProblem problem(kernels::kernelByName("mm"),
                                      machine::westmere());
  std::int64_t t = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(problem.evaluate({1 + t % 700, 64, 64, 8}));
    ++t;
  }
}
BENCHMARK(BM_ConfigEvaluationColdTiles);

void BM_Gde3Generation(benchmark::State& state) {
  auto problem = opt::makeZDT1();
  runtime::ThreadPool pool(1);
  opt::GDE3Options options;
  options.parallelEvaluation = false;
  opt::GDE3 engine(problem, pool, options);
  engine.initialize();
  for (auto _ : state) benchmark::DoNotOptimize(engine.step());
}
BENCHMARK(BM_Gde3Generation);

void BM_CacheSimAccess(benchmark::State& state) {
  cachesim::Hierarchy hierarchy(machine::westmere(), 1);
  std::uint64_t addr = 0;
  for (auto _ : state) {
    hierarchy.access(addr, 8, false);
    addr = (addr + 8) % (1 << 22);
  }
}
BENCHMARK(BM_CacheSimAccess);

void BM_InterpreterMm(benchmark::State& state) {
  const ir::Program mm = kernels::buildMM(24);
  for (auto _ : state) {
    ir::Interpreter interp(mm);
    interp.run();
    benchmark::DoNotOptimize(interp.array("C").data());
  }
}
BENCHMARK(BM_InterpreterMm);

void BM_BytecodeMm(benchmark::State& state) {
  // Same program as BM_InterpreterMm through the flat-bytecode engine
  // (compile + run per iteration, matching how the pipeline uses it).
  const ir::Program mm = kernels::buildMM(24);
  for (auto _ : state) {
    ir::CompiledProgram exec(mm);
    exec.run();
    benchmark::DoNotOptimize(exec.array("C").data());
  }
}
BENCHMARK(BM_BytecodeMm);

void BM_ParallelForDispatch(benchmark::State& state) {
  runtime::ThreadPool pool(2);
  for (auto _ : state) {
    std::int64_t sum = 0;
    runtime::parallelForBlocked(pool, 0, 1024, 2,
                                [&](std::int64_t lo, std::int64_t hi) {
                                  benchmark::DoNotOptimize(lo + hi);
                                });
    benchmark::DoNotOptimize(sum);
  }
}
BENCHMARK(BM_ParallelForDispatch);

void BM_NativeMmTiled(benchmark::State& state) {
  const std::int64_t n = 128;
  std::vector<double> a(n * n), b(n * n), c(n * n, 0.0);
  kernels::fillDeterministic(a, 1);
  kernels::fillDeterministic(b, 2);
  runtime::ThreadPool pool(1);
  for (auto _ : state) {
    kernels::mmTiled(a.data(), b.data(), c.data(), n,
                     {static_cast<std::int64_t>(state.range(0)),
                      static_cast<std::int64_t>(state.range(0)), 32},
                     1, pool);
    benchmark::DoNotOptimize(c.data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_NativeMmTiled)->Arg(8)->Arg(32)->Arg(128);

} // namespace

BENCHMARK_MAIN();
