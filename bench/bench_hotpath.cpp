// Hot-path microbenchmark suite with a committed baseline gate.
//
// Times the four paths the tuning pipeline spends its cycles in — the
// memoizing evaluator (serial and under thread contention), skeleton
// instantiation + nest analysis, IR execution (tree walker vs. the flat
// bytecode engine), and batched cache simulation — and emits the
// throughputs as machine-readable JSON. With --baseline the process fails
// when any throughput drops more than the tolerance below its committed
// floor, so order-of-magnitude hot-path regressions fail CI without the
// gate flaking on runner speed (the floors are deliberately conservative).
//
// Every value is a rate (higher is better): lookups/s, variants/s,
// statements/s, accesses/s — plus derived "ratio" entries
// (interp.bytecode_speedup, memo.mt4_speedup) that are machine-independent
// and therefore gated tightly.
//
//   bench_hotpath [--out BENCH_hotpath.json]
//                 [--baseline bench/baselines/hotpath_baseline.json]
//                 [--tolerance 0.30] [--min-time 0.3] [--metrics FILE]
#include "analyzer/region.h"
#include "cachesim/hierarchy.h"
#include "core/testproblems.h"
#include "ir/bytecode.h"
#include "ir/interp.h"
#include "kernels/kernel.h"
#include "machine/machine.h"
#include "observe/metrics.h"
#include "perfmodel/footprint.h"
#include "runtime/adaptive.h"
#include "runtime/traffic.h"
#include "support/check.h"
#include "support/json.h"
#include "support/mem_access.h"
#include "support/table.h"
#include "tuning/evaluator.h"

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

using namespace motune;

namespace {

/// Keeps a computed value alive past the optimizer.
inline void escape(const void* p) { asm volatile("" : : "g"(p) : "memory"); }

struct Result {
  std::string name;
  double value = 0.0;
  std::string unit;
};

/// Repeats `fn` (which returns the number of items it processed) until
/// `minSeconds` of wall time have elapsed; returns items per second. One
/// untimed warm-up call precedes the measurement.
template <typename Fn> double throughput(double minSeconds, Fn&& fn) {
  using clock = std::chrono::steady_clock;
  fn(); // warm-up: populate caches/memos, fault in pages
  double items = 0.0;
  const auto start = clock::now();
  double elapsed = 0.0;
  do {
    items += static_cast<double>(fn());
    elapsed = std::chrono::duration<double>(clock::now() - start).count();
  } while (elapsed < minSeconds);
  return items / elapsed;
}

/// Deterministic config set over a problem's space (includes repeats once
/// the space is exhausted, like a converging search re-visiting points).
std::vector<tuning::Config> makeConfigs(const tuning::ObjectiveFunction& fn,
                                        std::size_t count) {
  const auto& space = fn.space();
  std::vector<tuning::Config> configs;
  configs.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    tuning::Config c(space.size());
    for (std::size_t d = 0; d < space.size(); ++d) {
      const std::int64_t range = space[d].hi - space[d].lo + 1;
      c[d] = space[d].lo +
             static_cast<std::int64_t>((i * 2654435761u + d * 97) %
                                       static_cast<std::uint64_t>(range));
    }
    configs.push_back(std::move(c));
  }
  return configs;
}

/// Memo-hit throughput: `threads` workers hammer one shared
/// CountingEvaluator with an already-memoized config set; the aggregate
/// lookup rate measures shard/lock scalability, not evaluation cost.
double memoLookupRate(int threads, double minSeconds) {
  opt::SyntheticProblem problem = opt::makeSchaffer();
  tuning::CountingEvaluator counting(problem);
  const auto configs = makeConfigs(counting, 512);
  for (const auto& c : configs) counting.evaluate(c); // warm the memo

  constexpr int kPasses = 16; // amortize thread spawn over the round
  const auto hammer = [&] {
    double acc = 0.0;
    for (int p = 0; p < kPasses; ++p)
      for (const auto& c : configs) acc += counting.evaluate(c)[0];
    escape(&acc);
  };

  if (threads <= 1)
    return throughput(minSeconds, [&] {
      hammer();
      return kPasses * configs.size();
    });

  return throughput(minSeconds, [&] {
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) workers.emplace_back(hammer);
    for (auto& w : workers) w.join();
    return static_cast<std::size_t>(threads) * kPasses * configs.size();
  });
}

/// Variant construction: skeleton instantiation plus the nest analysis the
/// cost model runs on every new variant (what KernelTuningProblem does on a
/// variant-cache miss).
double variantRate(double minSeconds) {
  const ir::Program program = kernels::buildMM(64);
  const auto skeleton = analyzer::TransformationSkeleton::build(program, 8);
  const auto& params = skeleton.params();
  constexpr std::size_t kBatch = 4;
  std::size_t tick = 0;
  return throughput(minSeconds, [&] {
    for (std::size_t b = 0; b < kBatch; ++b, ++tick) {
      std::vector<std::int64_t> values(params.size());
      for (std::size_t d = 0; d < params.size(); ++d) {
        const std::int64_t range = params[d].hi - params[d].lo + 1;
        values[d] = params[d].lo +
                    static_cast<std::int64_t>((tick * 7 + d * 3) %
                                              static_cast<std::uint64_t>(range));
      }
      const ir::Program variant = skeleton.instantiate(values);
      const perf::NestAnalysis analysis = perf::analyzeNest(variant);
      escape(&analysis);
    }
    return kBatch;
  });
}

/// Statements per second executing matrix multiply (N = 24, matching
/// bench_micro's BM_InterpreterMm) through either engine. Construction is
/// inside the timed region — the tuning pipeline rebuilds the executor per
/// simulated variant, so that cost is part of the path.
double interpRate(bool bytecode, double minSeconds) {
  const ir::Program mm = kernels::buildMM(24);
  return throughput(minSeconds, [&] {
    if (bytecode) {
      ir::CompiledProgram exec(mm);
      exec.run();
      escape(&exec.array("C"));
      return exec.statementsExecuted();
    }
    ir::Interpreter exec(mm);
    exec.run();
    escape(&exec.array("C"));
    return exec.statementsExecuted();
  });
}

/// Batched cache-hierarchy throughput on a deterministic read/write stream
/// mixing strided sweeps with scattered lines (hits and misses both on the
/// path).
double cachesimRate(double minSeconds) {
  std::vector<support::MemAccess> stream;
  stream.reserve(1 << 16);
  std::uint64_t state = 0x243f6a8885a308d3ull;
  for (std::size_t i = 0; i < (1u << 16); ++i) {
    support::MemAccess a;
    if (i % 4 == 3) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      a.addr = (state >> 20) % (64ull << 20); // scattered within 64 MB
    } else {
      a.addr = (i * 8) % (8ull << 20); // strided sweep within 8 MB
    }
    a.bytes = 8;
    a.isWrite = i % 8 == 0;
    stream.push_back(a);
  }
  cachesim::Hierarchy hierarchy(machine::westmere(), 1);
  return throughput(minSeconds, [&] {
    hierarchy.access(std::span<const support::MemAccess>(stream));
    escape(&hierarchy);
    return stream.size();
  });
}

/// Adaptive dispatch: one steady-state select() + onMeasured() cycle on a
/// warmed policy — the overhead the adaptive runtime adds to every region
/// invocation. Healthy is tens of nanoseconds, i.e. tens of millions of
/// selections per second.
double adaptiveDispatchRate(double minSeconds) {
  const mv::VersionTable table = runtime::syntheticTable(6, 1, 16);
  runtime::AdaptiveOptions options;
  options.window = 16;
  runtime::AdaptivePolicy policy(options);
  runtime::AdaptiveContext context;
  context.sizeBucket = 12;
  context.availableThreads = 16;
  policy.setContext(context);
  for (int i = 0; i < 64; ++i) // get past warmup: measure the Hold path
    policy.onMeasured(policy.select(table), 1e-3);
  constexpr std::size_t kBatch = 1024;
  return throughput(minSeconds, [&] {
    for (std::size_t i = 0; i < kBatch; ++i) {
      const std::size_t arm = policy.select(table);
      policy.onMeasured(arm, 1e-3 + 1e-6 * static_cast<double>(arm));
    }
    escape(&policy);
    return kBatch;
  });
}

support::Json toJson(const std::vector<Result>& results) {
  support::JsonArray benchmarks;
  for (const auto& r : results)
    benchmarks.push_back(support::Json(support::JsonObject{
        {"name", support::Json(r.name)},
        {"value", support::Json(r.value)},
        {"unit", support::Json(r.unit)}}));
  return support::Json(support::JsonObject{
      {"schema", support::Json(1)},
      {"benchmarks", support::Json(std::move(benchmarks))}});
}

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  MOTUNE_CHECK_MSG(in.good(), "cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Gate: every baseline entry must exist in `current` with
/// value >= baseline * (1 - tolerance). Extra current entries (new
/// benchmarks not yet in the baseline) pass with a note.
int compare(const std::vector<Result>& current, const support::Json& baseline,
            double tolerance) {
  std::map<std::string, double> currentByName;
  for (const auto& r : current) currentByName[r.name] = r.value;

  support::TextTable table("hot-path throughput vs. baseline floor "
                           "(tolerance " + support::fmtPercent(tolerance) +
                           ")");
  table.setHeader({"benchmark", "current", "floor", "status"});
  int failures = 0;
  const support::Json& entries = baseline.at("benchmarks");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const std::string name = entries[i].at("name").asString();
    const double floor = entries[i].at("value").asNumber();
    const auto it = currentByName.find(name);
    if (it == currentByName.end()) {
      table.addRow({name, "-", support::fmt(floor, 3), "MISSING"});
      ++failures;
      continue;
    }
    const bool ok = it->second >= floor * (1.0 - tolerance);
    if (!ok) ++failures;
    table.addRow({name, support::fmt(it->second, 3), support::fmt(floor, 3),
                  ok ? "ok" : "REGRESSION"});
  }
  std::cout << table.render();
  return failures;
}

} // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> options;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string key = argv[i];
    MOTUNE_CHECK_MSG(key.rfind("--", 0) == 0, "unknown argument: " + key);
    options[key.substr(2)] = argv[i + 1];
  }
  const double tolerance =
      options.count("tolerance") ? std::stod(options.at("tolerance")) : 0.30;
  const double minTime =
      options.count("min-time") ? std::stod(options.at("min-time")) : 0.3;

  std::cout << "=== hot-path microbenchmarks ===\n";
  std::vector<Result> results;
  const auto add = [&](std::string name, double value, std::string unit) {
    std::cout << "  " << name << ": " << support::fmt(value, 3) << " " << unit
              << "\n";
    results.push_back({std::move(name), value, std::move(unit)});
  };

  const double memoSerial = memoLookupRate(1, minTime);
  add("memo.lookup.serial", memoSerial, "lookups/s");
  const double memoMt2 = memoLookupRate(2, minTime);
  add("memo.lookup.mt2", memoMt2, "lookups/s");
  const double memoMt4 = memoLookupRate(4, minTime);
  add("memo.lookup.mt4", memoMt4, "lookups/s");
  add("variant.instantiate_analyze", variantRate(minTime), "variants/s");
  const double tree = interpRate(/*bytecode=*/false, minTime);
  add("interp.tree", tree, "statements/s");
  const double bytecode = interpRate(/*bytecode=*/true, minTime);
  add("interp.bytecode", bytecode, "statements/s");
  add("cachesim.batch", cachesimRate(minTime), "accesses/s");
  add("dispatch.adaptive_select", adaptiveDispatchRate(minTime),
      "selections/s");
  // Machine-independent ratios: gated tighter than the absolute floors.
  add("interp.bytecode_speedup", tree > 0.0 ? bytecode / tree : 0.0, "ratio");
  add("memo.mt4_speedup", memoSerial > 0.0 ? memoMt4 / memoSerial : 0.0,
      "ratio");

  auto& metrics = observe::MetricsRegistry::global();
  for (const auto& r : results)
    metrics.gauge("bench.hotpath." + r.name).set(r.value);

  const support::Json doc = toJson(results);
  if (options.count("out")) {
    std::ofstream out(options.at("out"));
    MOTUNE_CHECK_MSG(out.good(), "cannot write " + options.at("out"));
    out << doc.dump(2) << "\n";
    std::cout << "results written to " << options.at("out") << "\n";
  }
  if (options.count("metrics")) {
    std::ofstream out(options.at("metrics"));
    MOTUNE_CHECK_MSG(out.good(), "cannot write " + options.at("metrics"));
    out << metrics.toJson().dump(2) << "\n";
  }

  if (!options.count("baseline")) {
    std::cout << doc.dump(2) << "\n";
    return 0;
  }
  const support::Json baselineDoc =
      support::Json::parse(readFile(options.at("baseline")));
  const int failures = compare(results, baselineDoc, tolerance);
  if (failures > 0) {
    std::cerr << failures << " hot-path gate(s) failed\n";
    return 1;
  }
  std::cout << "all hot-path gates passed\n";
  return 0;
}
