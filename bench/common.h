// Shared helpers for the experiment harness: paper-matched brute-force
// grids, per-thread-count optimum extraction, cross-application loss
// matrices, and uniformly configured optimizer runs.
#pragma once

#include "autotune/autotuner.h"
#include "core/grid_search.h"
#include "core/random_search.h"
#include "core/rsgde3.h"
#include "kernels/kernel.h"
#include "machine/machine.h"
#include "runtime/thread_pool.h"
#include "support/table.h"
#include "tuning/kernel_problem.h"

#include <string>
#include <vector>

namespace motune::bench {

/// The restricted brute-force grid of the paper's §V: ~24 geometric tile
/// values per dimension for 3-D kernels (~14k combinations), ~69 for 2-D
/// kernels, times the machine's evaluated thread counts — reproducing the
/// paper's per-kernel evaluation counts E (Table VI) to within a few
/// percent.
opt::GridSpec paperGrid(const tuning::KernelTuningProblem& problem);

/// The best configuration per evaluated thread count within a brute-force
/// population (the rows of paper Table II).
struct PerThreadBest {
  int threads = 0;
  tuning::Config config;
  double seconds = 0.0;
};
std::vector<PerThreadBest> perThreadOptima(const opt::OptResult& result,
                                           const std::vector<int>& counts);

/// loss[i][j]: relative slowdown (fraction, e.g. 0.151 for 15.1%) when the
/// tile sizes tuned for counts[i] run with counts[j] threads, versus the
/// configuration tuned for counts[j] (paper Table II's right-hand block).
std::vector<std::vector<double>>
crossLossMatrix(tuning::KernelTuningProblem& problem,
                const std::vector<PerThreadBest>& best,
                const std::vector<int>& counts);

/// Mean of a row excluding the diagonal (Table II's "Avg." column).
double averageOffDiagonal(const std::vector<double>& row, std::size_t self);

/// One RS-GDE3 run with the paper's configuration (population 30,
/// CR = F = 0.5).
opt::OptResult runRSGDE3(tuning::KernelTuningProblem& problem,
                         runtime::ThreadPool& pool, std::uint64_t seed);

/// V(S) under the per-(kernel, machine) normalization shared by all
/// strategies (see autotune::scoreHypervolume).
double scoreFront(const std::vector<opt::Individual>& front,
                  tuning::KernelTuningProblem& problem);

/// V(S) for several fronts under a JOINT normalization: ideal and nadir
/// points are taken over the union of the fronts, each objective is mapped
/// to [0, 1], and the hypervolume is computed against (1.1, 1.1) (a small
/// margin so nadir points still contribute). This is the scoring used for
/// the Table VI / Fig. 9 comparisons — differences between strategies stay
/// visible instead of being compressed by a distant reference corner.
std::vector<double>
scoreFrontsJointly(const std::vector<const std::vector<opt::Individual>*>& fronts);

/// "(t_i, t_j, t_k)" style rendering of the tile part of a configuration.
std::string tilesStr(const tuning::Config& config, std::size_t tileDims);

/// Both paper machines, in paper order.
std::vector<machine::MachineModel> paperMachines();

} // namespace motune::bench
