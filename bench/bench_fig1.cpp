// Reproduces paper Fig. 1: the efficiency/speedup trade-off of the mm
// kernel on Westmere — per thread count, the best-tiled variant's speedup
// rises sub-linearly while efficiency falls, motivating multi-objective
// tuning. (Series printed as data + an ASCII chart.)
#include "bench/common.h"

#include <cmath>
#include <iostream>

using namespace motune;

int main() {
  const machine::MachineModel m = machine::westmere();
  tuning::KernelTuningProblem problem(kernels::kernelByName("mm"), m);

  std::cout << "=== Fig. 1: efficiency and speedup trade-off, mm on "
            << m.name << " (N = " << problem.problemSize() << ") ===\n\n";

  // Sweep every thread count 1..40 with a moderate per-count tile search
  // (best of a 10^3 geometric grid — Fig. 1 needs the trend, not the exact
  // per-count optimum).
  const auto& space = problem.space();
  const auto tileVals = opt::geometricValues(space[0].lo, space[0].hi, 10);

  auto bestTime = [&](int threads) {
    double best = std::numeric_limits<double>::infinity();
    for (auto ti : tileVals)
      for (auto tj : tileVals)
        for (auto tk : tileVals)
          best = std::min(best, problem.evaluate({ti, tj, tk, threads})[0]);
    return best;
  };

  const double serial = bestTime(1);
  support::TextTable table;
  table.setHeader({"threads", "time", "speedup", "efficiency"});
  std::vector<double> speedups, efficiencies;
  std::vector<int> counts;
  for (int p = 1; p <= m.totalCores(); ++p) {
    const double t = bestTime(p);
    const double s = serial / t;
    const double e = s / p;
    counts.push_back(p);
    speedups.push_back(s);
    efficiencies.push_back(e);
    if (p == 1 || p % 4 == 0 || p == m.totalCores())
      table.addRow({std::to_string(p), support::fmtSeconds(t),
                    support::fmt(s, 2), support::fmt(e, 3)});
  }
  std::cout << table.render() << "\n";

  // ASCII rendering: speedup (*) against the ideal diagonal, efficiency (o).
  std::cout << "speedup '*' (left axis, ideal = diagonal '.'), "
               "efficiency 'o' (right axis 0..1)\n";
  const int rows = 20;
  const double sMax = static_cast<double>(m.totalCores());
  for (int r = rows; r >= 0; --r) {
    const double level = sMax * r / rows;
    std::string line(static_cast<std::size_t>(m.totalCores()) + 1, ' ');
    for (std::size_t i = 0; i < counts.size(); ++i) {
      const auto col = static_cast<std::size_t>(counts[i]);
      if (std::abs(static_cast<double>(counts[i]) - level) <= sMax / rows / 2)
        line[col] = '.';
      if (std::abs(speedups[i] - level) <= sMax / rows / 2) line[col] = '*';
      if (std::abs(efficiencies[i] * sMax - level) <= sMax / rows / 2)
        line[col] = 'o';
    }
    printf("%5.1f |%s\n", level, line.c_str());
  }
  std::cout << "      +" << std::string(m.totalCores(), '-')
            << "> threads\n\n";
  std::cout << "Paper reference (Westmere, Table III): speedup 4.83 @ 5, "
               "9.26 @ 10, 16.78 @ 20, 26.36 @ 40;\nefficiency 0.97, 0.93, "
               "0.84, 0.66 — the reproduced curve must bend the same way.\n";
  return 0;
}
