// Reproduces paper Table VI: the comparison of search strategies — brute
// force, random search, RS-GDE3 — on all five kernels and both machines,
// by the three metrics E (evaluations), |S| (solution-set size) and V(S)
// (normalized hypervolume). Stochastic strategies are averaged over 5
// seeded runs, as in the paper.
#include "bench/common.h"

#include "support/stats.h"

#include <iostream>

using namespace motune;

int main() {
  std::cout << "=== Table VI: brute force vs. random search vs. RS-GDE3 "
               "(means of 5 runs for stochastic strategies) ===\n";

  for (const auto& m : bench::paperMachines()) {
    std::cout << "\n--- " << m.name << " ---\n";
    support::TextTable table;
    table.setHeader({"benchmark", "BF E", "BF |S|", "BF V", "Rnd E",
                     "Rnd |S|", "Rnd V", "RS-GDE3 E", "RS-GDE3 |S|",
                     "RS-GDE3 V"});

    for (const auto& spec : kernels::allKernels()) {
      tuning::KernelTuningProblem problem(spec, m);
      runtime::ThreadPool pool;

      opt::GridSearch grid(problem, pool, bench::paperGrid(problem));
      const opt::OptResult bf = grid.run();

      std::vector<double> bfVs, rsE, rsS, rsV, rndE, rndS, rndV;
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        const opt::OptResult rs = bench::runRSGDE3(problem, pool, seed);
        // Random search at the budget this RS-GDE3 run used (paper setup).
        opt::RandomSearch random(problem, pool,
                                 {rs.evaluations, seed + 100, true});
        const opt::OptResult rnd = random.run();

        const auto scores =
            bench::scoreFrontsJointly({&bf.front, &rnd.front, &rs.front});
        bfVs.push_back(scores[0]);
        rndE.push_back(static_cast<double>(rnd.evaluations));
        rndS.push_back(static_cast<double>(rnd.front.size()));
        rndV.push_back(scores[1]);
        rsE.push_back(static_cast<double>(rs.evaluations));
        rsS.push_back(static_cast<double>(rs.front.size()));
        rsV.push_back(scores[2]);
      }

      table.addRow({spec.name, std::to_string(bf.evaluations),
                    std::to_string(bf.front.size()),
                    support::fmt(support::mean(bfVs), 2),
                    support::fmt(support::mean(rndE), 0),
                    support::fmt(support::mean(rndS), 1),
                    support::fmt(support::mean(rndV), 2),
                    support::fmt(support::mean(rsE), 0),
                    support::fmt(support::mean(rsS), 1),
                    support::fmt(support::mean(rsV), 2)});
    }
    std::cout << table.render();
  }

  std::cout
      << "\nPaper reference (shape): RS-GDE3 evaluates 90-99% fewer points "
         "than brute force,\nfinds more solutions than both baselines, "
         "reaches brute-force-level hypervolume,\nand random search at "
         "equal budget falls far behind (e.g. V = 0.03 vs 0.88, mm/W).\n";
  return 0;
}
