# Benchmark harness: one binary per paper table/figure, plus ablation and
# microbenchmark binaries. All binaries land in ${CMAKE_BINARY_DIR}/bench.

add_library(motune_bench_common STATIC
  ${CMAKE_SOURCE_DIR}/bench/common.cpp)
target_link_libraries(motune_bench_common PUBLIC motune)
target_include_directories(motune_bench_common PUBLIC ${CMAKE_SOURCE_DIR})

function(motune_bench name)
  add_executable(${name} ${CMAKE_SOURCE_DIR}/bench/${name}.cpp)
  target_link_libraries(${name} PRIVATE motune_bench_common)
  set_target_properties(${name} PROPERTIES
    RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
endfunction()

motune_bench(bench_table1)
motune_bench(bench_fig1)
motune_bench(bench_fig2)
motune_bench(bench_table2)
motune_bench(bench_table3)
motune_bench(bench_fig8)
motune_bench(bench_fig9)
motune_bench(bench_table4)
motune_bench(bench_table5)
motune_bench(bench_table6)
# Surrogate ablation gate: per-generation evaluations-to-target-hypervolume
# curves for plain vs surrogate-culled RS-GDE3 (plus the keep=1.0 identity
# check), gated against bench/baselines/ablation_baseline.json; --full 1
# runs the ungated algorithm-variant study instead.
motune_bench(bench_ablation)
# CI smoke gate: emits metrics.json and diffs it against
# bench/baselines/smoke_baseline.json (see .github/workflows/ci.yml).
motune_bench(bench_smoke)
# Self-timed hot-path throughput suite; emits BENCH_hotpath.json and gates
# against bench/baselines/hotpath_baseline.json (conservative floors).
motune_bench(bench_hotpath)
# Adaptive-selection gate: deterministic per-scenario convergence ratios
# (tight machine-independent floors) plus replay throughput, gated against
# bench/baselines/adaptive_baseline.json.
motune_bench(bench_adaptive)
# Daemon load harness: boots an in-process `motune serve`, pushes a burst of
# small jobs, reports submit throughput and p50/p99 job latency, and gates
# against bench/baselines/serve_baseline.json (floors for rates, ceilings
# for latencies).
motune_bench(bench_serve)

# google-benchmark microbenchmarks of the framework's building blocks.
add_executable(bench_micro ${CMAKE_SOURCE_DIR}/bench/bench_micro.cpp)
target_link_libraries(bench_micro PRIVATE motune_bench_common
                                          benchmark::benchmark)
set_target_properties(bench_micro PROPERTIES
  RUNTIME_OUTPUT_DIRECTORY ${CMAKE_BINARY_DIR}/bench)
