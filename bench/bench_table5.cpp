// Reproduces paper Table V: the impact of thread-specific tile-size
// optimization across all five kernels and both machines — the average
// performance loss when the tiles tuned for one thread count run at the
// others, the overall average (avg), and the worst loss from tuning only
// for serial execution (1tmax).
#include "bench/common.h"

#include <algorithm>
#include <iostream>

using namespace motune;

int main() {
  std::cout << "=== Table V: average performance loss from non-matching "
               "thread-specific optimization ===\n";

  // Paper reference values (avg / 1tmax, %) for the qualitative check.
  struct Ref {
    const char* kernel;
    double avgW, maxW1t, avgB, maxB1t;
  };
  const Ref refs[] = {
      {"mm", 4.3, 15.1, 8.7, 18.0},     // Table II aggregates
      {"jacobi-2d", 11.8, 0, 28.7, 89.2},
      {"3d-stencil", 24.6, 0, 14.7, 0},
      {"n-body", 0.0, 0, 70.7, 293.0},
  };
  (void)refs;

  for (const auto& m : bench::paperMachines()) {
    std::cout << "\n--- " << m.name << " ---\n";
    support::TextTable table;
    const auto counts = machine::evaluatedThreadCounts(m);
    std::vector<std::string> header{"kernel"};
    for (int c : counts) header.push_back("tuned@" + std::to_string(c));
    header.push_back("avg");
    header.push_back("1tmax");
    table.setHeader(header);

    for (const auto& spec : kernels::allKernels()) {
      tuning::KernelTuningProblem problem(spec, m);
      runtime::ThreadPool pool;
      opt::GridSearch grid(problem, pool, bench::paperGrid(problem));
      const opt::OptResult bf = grid.run();
      const auto best = bench::perThreadOptima(bf, counts);
      const auto loss = bench::crossLossMatrix(problem, best, counts);

      std::vector<std::string> row{spec.name};
      double total = 0.0;
      for (std::size_t i = 0; i < counts.size(); ++i) {
        const double avg = bench::averageOffDiagonal(loss[i], i);
        total += avg;
        row.push_back(support::fmtPercent(avg, 1));
      }
      row.push_back(support::fmtPercent(
          total / static_cast<double>(counts.size()), 1));
      // 1tmax: worst loss across thread counts when using serial tiles.
      double oneTMax = 0.0;
      for (std::size_t j = 0; j < counts.size(); ++j)
        oneTMax = std::max(oneTMax, loss[0][j]);
      row.push_back(support::fmtPercent(oneTMax, 1));
      table.addRow(row);
    }
    std::cout << table.render();
  }

  std::cout << "\nPaper reference: jacobi-2d 11.8% (W) / 28.7% (B) avg; "
               "3d-stencil 24.6% / 14.7%; n-body ~0% on Westmere (fits the "
               "30M L3) but 70.7% avg and 293% 1tmax on Barcelona (2M L3) — "
               "the Westmere-vs-Barcelona n-body contrast is the key shape "
               "to reproduce.\n";
  return 0;
}
