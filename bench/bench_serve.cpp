// Serve-path load benchmark with a committed baseline gate.
//
// Boots an in-process tuning daemon (src/serve/) on an ephemeral port,
// pushes a burst of small tuning jobs through the real socket protocol,
// and reports what the CI serve gate cares about: submit round-trip
// throughput, end-to-end job throughput, and the p50/p99 job latency
// (admission -> artifact, as the scheduler's histograms see it). The jobs
// are tiny on purpose — the benchmark measures the daemon (framing,
// scheduling, store I/O, contention), not the search.
//
// Gate semantics differ by unit: "*/s" and "ratio" entries are floors
// (current >= floor * (1 - tolerance)), "seconds" entries are ceilings
// (current <= ceiling * (1 + tolerance)) — latency regressions and
// throughput regressions both fail.
//
//   bench_serve [--jobs 200] [--workers 4] [--min-time 0]
//               [--out BENCH_serve.json]
//               [--baseline bench/baselines/serve_baseline.json]
//               [--tolerance 0.50] [--metrics FILE]
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/job.h"
#include "observe/metrics.h"
#include "support/check.h"
#include "support/json.h"
#include "support/table.h"

#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

using namespace motune;
namespace fs = std::filesystem;

namespace {

struct Result {
  std::string name;
  double value = 0.0;
  std::string unit;
};

support::Json toJson(const std::vector<Result>& results) {
  support::JsonArray benchmarks;
  for (const auto& r : results)
    benchmarks.push_back(support::Json(support::JsonObject{
        {"name", support::Json(r.name)},
        {"value", support::Json(r.value)},
        {"unit", support::Json(r.unit)}}));
  return support::Json(support::JsonObject{
      {"schema", support::Json(1)},
      {"benchmarks", support::Json(std::move(benchmarks))}});
}

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  MOTUNE_CHECK_MSG(in.good(), "cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Floors for rates/ratios, ceilings for seconds (see file comment).
int compare(const std::vector<Result>& current, const support::Json& baseline,
            double tolerance) {
  std::map<std::string, Result> currentByName;
  for (const auto& r : current) currentByName[r.name] = r;

  support::TextTable table("serve load vs. baseline (tolerance " +
                           support::fmtPercent(tolerance) + ")");
  table.setHeader({"benchmark", "current", "baseline", "status"});
  int failures = 0;
  const support::Json& entries = baseline.at("benchmarks");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const std::string name = entries[i].at("name").asString();
    const double bound = entries[i].at("value").asNumber();
    const auto it = currentByName.find(name);
    if (it == currentByName.end()) {
      table.addRow({name, "-", support::fmt(bound, 3), "MISSING"});
      ++failures;
      continue;
    }
    const bool isCeiling = it->second.unit == "seconds";
    const bool ok = isCeiling
                        ? it->second.value <= bound * (1.0 + tolerance)
                        : it->second.value >= bound * (1.0 - tolerance);
    if (!ok) ++failures;
    table.addRow({name, support::fmt(it->second.value, 4),
                  support::fmt(bound, 4), ok ? "ok" : "REGRESSION"});
  }
  std::cout << table.render();
  return failures;
}

serve::JobSpec tinyJob(std::uint64_t seed) {
  serve::JobSpec spec;
  spec.kernel = "mm";
  spec.n = 64;
  spec.algorithm = "random";
  spec.budget = 20;
  spec.seed = seed;
  return spec;
}

} // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> options;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string key = argv[i];
    MOTUNE_CHECK_MSG(key.rfind("--", 0) == 0, "unknown argument: " + key);
    options[key.substr(2)] = argv[i + 1];
  }
  const std::size_t jobs =
      options.count("jobs") ? std::stoull(options.at("jobs")) : 200;
  const unsigned workers = options.count("workers")
                               ? static_cast<unsigned>(
                                     std::stoul(options.at("workers")))
                               : 4;
  const double tolerance =
      options.count("tolerance") ? std::stod(options.at("tolerance")) : 0.50;

  const fs::path stateDir =
      fs::temp_directory_path() /
      ("motune-bench-serve-" + std::to_string(::getpid()));
  fs::remove_all(stateDir);

  serve::DaemonOptions daemonOptions;
  daemonOptions.stateDir = stateDir.string();
  daemonOptions.scheduler.workers = workers;
  daemonOptions.scheduler.queueCapacity = jobs + 8; // the burst must fit
  serve::Daemon daemon(daemonOptions);
  daemon.start();

  std::cout << "=== serve load: " << jobs << " jobs, " << workers
            << " workers ===\n";
  using clock = std::chrono::steady_clock;

  // Submit burst: round-trip latency of the submit verb, one connection,
  // one request at a time (the client library's synchronous pattern).
  serve::Client client("127.0.0.1", daemon.port());
  std::vector<std::string> ids;
  ids.reserve(jobs);
  const auto submitStart = clock::now();
  for (std::size_t i = 0; i < jobs; ++i) {
    const serve::SubmitOutcome outcome = client.submit(tinyJob(i + 1));
    MOTUNE_CHECK_MSG(outcome.accepted, "submit shed at " + std::to_string(i) +
                                           ": " + outcome.error);
    ids.push_back(outcome.id);
  }
  const double submitSeconds =
      std::chrono::duration<double>(clock::now() - submitStart).count();

  // One live subscriber rides along for the rest of the burst: the gate
  // measures job latency with the streaming plane active, pinning the
  // contract that a subscriber never slows the scheduler. It watches the
  // last acked job, so it stays subscribed for most of the drain.
  std::uint64_t subscriberFrames = 0;
  std::thread subscriber([&daemon, watchId = ids.back(),
                          &subscriberFrames] {
    serve::Client sub("127.0.0.1", daemon.port());
    const serve::StreamEnd end = sub.subscribe(
        watchId, [&subscriberFrames](const support::Json&) {
          ++subscriberFrames;
        });
    MOTUNE_CHECK_MSG(end.state == "done",
                     "subscribed job ended " + end.state);
  });

  // Drain: end-to-end completion of the whole burst.
  MOTUNE_CHECK_MSG(daemon.scheduler().drain(600.0),
                   "burst did not drain in 600s");
  subscriber.join();
  const double wallSeconds =
      std::chrono::duration<double>(clock::now() - submitStart).count();

  // Zero lost, zero duplicated: every acked id is done exactly once.
  std::size_t done = 0;
  for (const serve::JobInfo& info : client.list())
    if (info.state == serve::JobState::Done) ++done;
  MOTUNE_CHECK_MSG(done == jobs, "lost results: " + std::to_string(done) +
                                     "/" + std::to_string(jobs) + " done");
  std::cout << "  live subscriber saw " << subscriberFrames
            << " stream frames\n";

  // Warm resubmit: every spec already finished, so resubmitting the same
  // burst must hit the exact-spec result cache — each ack names the
  // original job, nothing is scheduled. Measures cache-lookup round-trip
  // throughput (a pure protocol + index path, no job execution).
  const auto resubmitStart = clock::now();
  for (std::size_t i = 0; i < jobs; ++i) {
    const serve::SubmitOutcome outcome = client.submit(tinyJob(i + 1));
    MOTUNE_CHECK_MSG(outcome.accepted && outcome.cached &&
                         outcome.id == ids[i],
                     "warm resubmit " + std::to_string(i) +
                         " missed the spec cache (got " + outcome.id + ")");
  }
  const double resubmitSeconds =
      std::chrono::duration<double>(clock::now() - resubmitStart).count();

  const support::Json stats = client.stats();
  const double p50 = stats.at("total_seconds").at("p50").asNumber();
  const double p99 = stats.at("total_seconds").at("p99").asNumber();

  std::vector<Result> results;
  const auto add = [&](std::string name, double value, std::string unit) {
    std::cout << "  " << name << ": " << support::fmt(value, 4) << " " << unit
              << "\n";
    results.push_back({std::move(name), value, std::move(unit)});
  };
  add("serve.submit.throughput",
      submitSeconds > 0 ? static_cast<double>(jobs) / submitSeconds : 0.0,
      "submits/s");
  add("serve.jobs.throughput",
      wallSeconds > 0 ? static_cast<double>(jobs) / wallSeconds : 0.0,
      "jobs/s");
  add("serve.job.p50_latency", p50, "seconds");
  add("serve.job.p99_latency", p99, "seconds");
  add("serve.cache.resubmit_throughput",
      resubmitSeconds > 0 ? static_cast<double>(jobs) / resubmitSeconds : 0.0,
      "submits/s");

  daemon.stop();
  fs::remove_all(stateDir);

  auto& metrics = observe::MetricsRegistry::global();
  for (const auto& r : results)
    metrics.gauge("bench.serve." + r.name).set(r.value);

  const support::Json doc = toJson(results);
  if (options.count("out")) {
    std::ofstream out(options.at("out"));
    MOTUNE_CHECK_MSG(out.good(), "cannot write " + options.at("out"));
    out << doc.dump(2) << "\n";
    std::cout << "results written to " << options.at("out") << "\n";
  }
  if (options.count("metrics")) {
    std::ofstream out(options.at("metrics"));
    MOTUNE_CHECK_MSG(out.good(), "cannot write " + options.at("metrics"));
    out << metrics.toJson().dump(2) << "\n";
  }

  if (!options.count("baseline")) {
    std::cout << doc.dump(2) << "\n";
    return 0;
  }
  const int failures = compare(
      results, support::Json::parse(readFile(options.at("baseline"))),
      tolerance);
  if (failures > 0) {
    std::cerr << failures << " serve gate(s) failed\n";
    return 1;
  }
  std::cout << "all serve gates passed\n";
  return 0;
}
