// Reproduces paper Table IV: computation and memory complexity of the
// evaluation kernels — augmented with per-iteration operation counts
// measured directly from each kernel's IR by the nest analyzer.
#include "bench/common.h"

#include "perfmodel/footprint.h"

#include <iostream>

using namespace motune;

int main() {
  std::cout << "=== Table IV: evaluation kernel characteristics ===\n\n";
  support::TextTable table;
  table.setHeader({"kernel", "compute", "memory", "tile dims", "N (paper)",
                   "flops/iter", "heavy/iter", "mem refs/iter",
                   "unit-stride inner"});
  for (const auto& spec : kernels::allKernels()) {
    const ir::Program prog = spec.buildIR(spec.paperN);
    const perf::NestAnalysis na = perf::analyzeNest(prog);
    table.addRow({spec.name, spec.computeComplexity, spec.memoryComplexity,
                  std::to_string(spec.tileDims),
                  std::to_string(spec.paperN),
                  support::fmt(na.flopsPerIter, 0),
                  support::fmt(na.heavyOpsPerIter, 0),
                  support::fmt(na.memAccessesPerIter, 0),
                  na.innermostUnitStride ? "yes" : "no"});
  }
  std::cout << table.render();
  std::cout << "\nmm and dsyrk share complexity but differ in access "
               "pattern (dsyrk's on-the-fly transposition removes the "
               "unaligned B access — both operands of its product are "
               "row-major unit-stride), matching the paper's remark.\n";
  return 0;
}
