// Reproduces paper Fig. 2: relative execution time of (t_i, t_j) tile-size
// combinations (t_k fixed) for different thread counts — the heat maps
// showing that the optimal tile region MOVES with the thread count, the
// observation motivating parallelism-aware multi-versioning.
#include "bench/common.h"

#include <iostream>
#include <limits>

using namespace motune;

int main() {
  const machine::MachineModel m = machine::westmere();
  tuning::KernelTuningProblem problem(kernels::kernelByName("mm"), m);
  const std::int64_t tk = 8; // fixed, as in the paper's figure

  std::cout << "=== Fig. 2: relative execution time over (t_i, t_j), "
               "t_k = "
            << tk << ", mm on " << m.name
            << " ===\n(darker = faster; '@' fastest decile ... ' ' slowest; "
               "'#' marks the minimum)\n";

  const auto vals = opt::geometricValues(4, 700, 18);
  const char shades[] = {'@', '%', '+', '=', '-', ':', '.', ' '};

  for (int threads : {1, 10, 40}) {
    std::vector<std::vector<double>> t(vals.size(),
                                       std::vector<double>(vals.size()));
    double tMin = std::numeric_limits<double>::infinity();
    double tMax = 0.0;
    std::size_t bi = 0, bj = 0;
    for (std::size_t i = 0; i < vals.size(); ++i)
      for (std::size_t j = 0; j < vals.size(); ++j) {
        t[i][j] = problem.evaluate({vals[i], vals[j], tk, threads})[0];
        if (t[i][j] < tMin) {
          tMin = t[i][j];
          bi = i;
          bj = j;
        }
        tMax = std::max(tMax, t[i][j]);
      }

    std::cout << "\n--- " << threads << " thread(s): fastest " << tMin
              << " s at (t_i, t_j) = (" << vals[bi] << ", " << vals[bj]
              << "), slowest " << support::fmt(tMax / tMin, 1)
              << "x slower ---\n";
    std::cout << "     t_j:";
    for (std::size_t j = 0; j < vals.size(); j += 3)
      printf("%5ld", static_cast<long>(vals[j]));
    std::cout << "\n";
    for (std::size_t i = 0; i < vals.size(); ++i) {
      printf("t_i %4ld |", static_cast<long>(vals[i]));
      for (std::size_t j = 0; j < vals.size(); ++j) {
        // Shade by time relative to this map's own min (log-ish bands).
        const double rel = t[i][j] / tMin;
        std::size_t band =
            rel < 1.05 ? 0
            : rel < 1.15 ? 1
            : rel < 1.3  ? 2
            : rel < 1.6  ? 3
            : rel < 2.2  ? 4
            : rel < 3.5  ? 5
            : rel < 6.0  ? 6
                         : 7;
        char c = shades[band];
        if (i == bi && j == bj) c = '#';
        std::cout << c;
      }
      std::cout << "|\n";
    }
  }

  std::cout << "\nThe fast ('@') region shifts and shrinks as threads grow "
               "(shared L3 per thread shrinks)\n— the same qualitative "
               "pattern as the paper's heat maps.\n";
  return 0;
}
