// Adaptive-selection benchmark with a committed baseline gate.
//
// Two families of numbers, one binary:
//
//  1. Scenario quality (machine-independent, deterministic). Every
//     built-in traffic scenario is replayed through AdaptivePolicy and its
//     convergence ratio — the hindsight-best static bill divided by the
//     adaptive bill — is emitted as `scenario.NAME.ratio`. These are pure
//     functions of (spec, seed), identical on every machine, so the
//     committed floors are tight: a policy change that degrades adaptation
//     shows up as an exact, reproducible drop.
//
//  2. Replay throughput (machine-dependent). `replay.throughput` measures
//     invocations pushed through the full generator + policy + accounting
//     loop per second; its floor is conservative, like bench_hotpath's.
//
// With --baseline the process fails when any value drops more than the
// tolerance below its committed floor.
//
//   bench_adaptive [--out BENCH_adaptive.json]
//                  [--baseline bench/baselines/adaptive_baseline.json]
//                  [--tolerance 0.05] [--min-time 0.3] [--metrics FILE]
#include "observe/metrics.h"
#include "runtime/adaptive.h"
#include "runtime/traffic.h"
#include "support/check.h"
#include "support/json.h"
#include "support/table.h"

#include <chrono>
#include <cstdint>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

using namespace motune;

namespace {

struct Result {
  std::string name;
  double value = 0.0;
  std::string unit;
};

runtime::AdaptiveOptions tunedOptions(std::uint64_t seed) {
  runtime::AdaptiveOptions options;
  options.seed = seed;
  options.window = 16;
  options.epsilon = 0.03;
  options.minDwell = 50;
  options.switchMargin = 0.05;
  return options;
}

/// One deterministic replay of a built-in scenario (the adaptive_test
/// gate's configuration: 6 arms, 16 threads, seed 1).
runtime::ReplayOutcome runScenario(const std::string& name) {
  constexpr std::uint64_t kSeed = 1;
  const runtime::TrafficSpec spec = runtime::builtinScenario(name, kSeed);
  const mv::VersionTable table = runtime::syntheticTable(6, kSeed, 16);
  runtime::AdaptivePolicy policy(tunedOptions(kSeed));
  return runtime::replayTraffic(spec, table, policy);
}

/// Invocations per second through the full replay loop (generator decode,
/// select, per-arm cost accounting, onMeasured). Machine-dependent.
double replayThroughput(double minSeconds) {
  using clock = std::chrono::steady_clock;
  const runtime::TrafficSpec spec = runtime::builtinScenario("mix", 1);
  const mv::VersionTable table = runtime::syntheticTable(6, 1, 16);
  {
    runtime::AdaptivePolicy warm(tunedOptions(1)); // warm-up pass
    runtime::replayTraffic(spec, table, warm);
  }
  double invocations = 0.0;
  const auto start = clock::now();
  double elapsed = 0.0;
  do {
    runtime::AdaptivePolicy policy(tunedOptions(1));
    const runtime::ReplayOutcome outcome =
        runtime::replayTraffic(spec, table, policy);
    invocations += static_cast<double>(outcome.invocations);
    elapsed = std::chrono::duration<double>(clock::now() - start).count();
  } while (elapsed < minSeconds);
  return invocations / elapsed;
}

support::Json toJson(const std::vector<Result>& results) {
  support::JsonArray benchmarks;
  for (const auto& r : results)
    benchmarks.push_back(support::Json(support::JsonObject{
        {"name", support::Json(r.name)},
        {"value", support::Json(r.value)},
        {"unit", support::Json(r.unit)}}));
  return support::Json(support::JsonObject{
      {"schema", support::Json(1)},
      {"benchmarks", support::Json(std::move(benchmarks))}});
}

std::string readFile(const std::string& path) {
  std::ifstream in(path);
  MOTUNE_CHECK_MSG(in.good(), "cannot open: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Gate: every baseline entry must exist in `current` with
/// value >= floor * (1 - tolerance).
int compare(const std::vector<Result>& current, const support::Json& baseline,
            double tolerance) {
  std::map<std::string, double> currentByName;
  for (const auto& r : current) currentByName[r.name] = r.value;

  support::TextTable table("adaptive selection vs. baseline floor "
                           "(tolerance " + support::fmtPercent(tolerance) +
                           ")");
  table.setHeader({"benchmark", "current", "floor", "status"});
  int failures = 0;
  const support::Json& entries = baseline.at("benchmarks");
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const std::string name = entries[i].at("name").asString();
    const double floor = entries[i].at("value").asNumber();
    const auto it = currentByName.find(name);
    if (it == currentByName.end()) {
      table.addRow({name, "-", support::fmt(floor, 3), "MISSING"});
      ++failures;
      continue;
    }
    const bool ok = it->second >= floor * (1.0 - tolerance);
    if (!ok) ++failures;
    table.addRow({name, support::fmt(it->second, 3), support::fmt(floor, 3),
                  ok ? "ok" : "REGRESSION"});
  }
  std::cout << table.render();
  return failures;
}

} // namespace

int main(int argc, char** argv) {
  std::map<std::string, std::string> options;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string key = argv[i];
    MOTUNE_CHECK_MSG(key.rfind("--", 0) == 0, "unknown argument: " + key);
    options[key.substr(2)] = argv[i + 1];
  }
  const double tolerance =
      options.count("tolerance") ? std::stod(options.at("tolerance")) : 0.05;
  const double minTime =
      options.count("min-time") ? std::stod(options.at("min-time")) : 0.3;

  std::cout << "=== adaptive selection benchmarks ===\n";
  std::vector<Result> results;
  const auto add = [&](std::string name, double value, std::string unit) {
    std::cout << "  " << name << ": " << support::fmt(value, 3) << " " << unit
              << "\n";
    results.push_back({std::move(name), value, std::move(unit)});
  };

  for (const std::string& scenario : runtime::builtinScenarioNames()) {
    const runtime::ReplayOutcome outcome = runScenario(scenario);
    add("scenario." + scenario + ".ratio", outcome.convergenceRatio(),
        "ratio");
    // Oracle ratio: the per-invocation lower bound. Also deterministic.
    add("scenario." + scenario + ".oracle_ratio",
        outcome.adaptiveCost > 0.0
            ? outcome.oracleCost / outcome.adaptiveCost
            : 0.0,
        "ratio");
  }
  add("replay.throughput", replayThroughput(minTime), "invocations/s");

  auto& metrics = observe::MetricsRegistry::global();
  for (const auto& r : results)
    metrics.gauge("bench.adaptive." + r.name).set(r.value);

  const support::Json doc = toJson(results);
  if (options.count("out")) {
    std::ofstream out(options.at("out"));
    MOTUNE_CHECK_MSG(out.good(), "cannot write " + options.at("out"));
    out << doc.dump(2) << "\n";
    std::cout << "results written to " << options.at("out") << "\n";
  }
  if (options.count("metrics")) {
    std::ofstream out(options.at("metrics"));
    MOTUNE_CHECK_MSG(out.good(), "cannot write " + options.at("metrics"));
    out << metrics.toJson().dump(2) << "\n";
  }

  if (!options.count("baseline")) {
    std::cout << doc.dump(2) << "\n";
    return 0;
  }
  const support::Json baselineDoc =
      support::Json::parse(readFile(options.at("baseline")));
  const int failures = compare(results, baselineDoc, tolerance);
  if (failures > 0) {
    std::cerr << failures << " adaptive gate(s) failed\n";
    return 1;
  }
  std::cout << "all adaptive gates passed\n";
  return 0;
}
