#include "verify/oracle.h"

#include "codegen/cemit.h"
#include "ir/bytecode.h"
#include "ir/interp.h"
#include "support/check.h"

#include <array>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>

#ifndef _WIN32
#include <unistd.h>
#endif

namespace motune::verify {

namespace fs = std::filesystem;

double fillValue(std::size_t arrayIndex, std::size_t elementIndex) {
  // splitmix64-style scramble; must stay in lockstep with the C copy the
  // native harness embeds (emitHarness below).
  std::uint64_t x = (static_cast<std::uint64_t>(arrayIndex) + 1) *
                        0x9e3779b97f4a7c15ull ^
                    (static_cast<std::uint64_t>(elementIndex) + 1) *
                        0xbf58476d1ce4e5b9ull;
  x ^= x >> 31;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 27;
  return 1.0 + static_cast<double>(x >> 11) * 0x1.0p-53;
}

namespace {

std::size_t elementCount(const ir::ArrayDecl& decl) {
  std::size_t n = 1;
  for (std::int64_t d : decl.dims) n *= static_cast<std::size_t>(d);
  return n;
}

// Works for both executors (ir::Interpreter and ir::CompiledProgram share
// the array()/run() surface).
template <typename Exec>
void fillArrays(Exec& exec, const ir::Program& p) {
  for (std::size_t a = 0; a < p.arrays.size(); ++a) {
    auto& data = exec.array(p.arrays[a].name);
    for (std::size_t i = 0; i < data.size(); ++i)
      data[i] = fillValue(a, i);
  }
}

/// Equality that tolerates signed zeros colliding (fmin/fmax may pick
/// either) and treats two NaNs as agreeing; everything else is exact.
bool sameValue(double a, double b) {
  if (a == b) return true;
  return a != a && b != b; // both NaN
}

template <typename Exec>
std::optional<Mismatch> compareArrays(const ir::Program& p,
                                      const ir::Interpreter& ref,
                                      const Exec& got,
                                      const std::string& stage) {
  for (const auto& decl : p.arrays) {
    const auto& expected = ref.array(decl.name);
    const auto& actual = got.array(decl.name);
    MOTUNE_CHECK_MSG(expected.size() == actual.size(),
                     "oracle: array size diverged for " + decl.name);
    for (std::size_t i = 0; i < expected.size(); ++i)
      if (!sameValue(expected[i], actual[i]))
        return Mismatch{stage, decl.name, i, expected[i], actual[i]};
  }
  return std::nullopt;
}

/// Self-contained C translation unit: the emitted kernel plus a main that
/// reproduces fillValue, runs the kernel, and prints every element as a %a
/// hex float (one per line, arrays in declaration order) so the comparison
/// sees the exact bits.
std::string emitHarness(const ir::Program& p, const OracleOptions& opts) {
  std::ostringstream os;
  os << codegen::emitFunction(p, "motune_fuzz_kernel", opts.emitPragmas);
  os << "\n#include <stdio.h>\n#include <stdlib.h>\n#include <stdint.h>\n\n";
  os << "static double motune_fill(uint64_t a, uint64_t i) {\n"
     << "  uint64_t x = (a + 1) * 0x9e3779b97f4a7c15ull ^"
     << " (i + 1) * 0xbf58476d1ce4e5b9ull;\n"
     << "  x ^= x >> 31;\n"
     << "  x *= 0x94d049bb133111ebull;\n"
     << "  x ^= x >> 27;\n"
     << "  return 1.0 + (double)(x >> 11) * 0x1.0p-53;\n"
     << "}\n\n";
  os << "int main(void) {\n";
  for (std::size_t a = 0; a < p.arrays.size(); ++a) {
    const auto& decl = p.arrays[a];
    const std::size_t n = elementCount(decl);
    os << "  double* " << decl.name << " = malloc(" << n
       << " * sizeof(double));\n"
       << "  if (!" << decl.name << ") return 2;\n"
       << "  for (uint64_t i = 0; i < " << n << "ull; ++i) " << decl.name
       << "[i] = motune_fill(" << a << "ull, i);\n";
  }
  os << "  motune_fuzz_kernel(";
  for (std::size_t a = 0; a < p.arrays.size(); ++a)
    os << (a ? ", " : "") << p.arrays[a].name;
  os << ");\n";
  for (const auto& decl : p.arrays) {
    os << "  for (uint64_t i = 0; i < " << elementCount(decl)
       << "ull; ++i) printf(\"%a\\n\", " << decl.name << "[i]);\n";
  }
  os << "  return 0;\n}\n";
  return os.str();
}

/// Runs `cmd`, capturing stdout into `outPath` and stderr into `errPath`.
int runCommand(const std::string& cmd, const fs::path& outPath,
               const fs::path& errPath) {
  const std::string full = cmd + " > \"" + outPath.string() + "\" 2> \"" +
                           errPath.string() + "\"";
  return std::system(full.c_str());
}

std::string slurp(const fs::path& path, std::size_t limit = 4096) {
  std::ifstream in(path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  if (text.size() > limit) text.resize(limit);
  return text;
}

const fs::path& processWorkDir() {
  static const fs::path dir = [] {
    fs::path d = fs::temp_directory_path() /
                 ("motune-fuzz-" + std::to_string(
#ifdef _WIN32
                                       0
#else
                                       static_cast<long>(::getpid())
#endif
                                       ));
    fs::create_directories(d);
    return d;
  }();
  return dir;
}

} // namespace

const std::string& hostCompiler() {
  static const std::string compiler = [] {
    for (const char* candidate : {"cc", "gcc", "clang"}) {
      const std::string probe = std::string(candidate) +
                                " --version > /dev/null 2> /dev/null";
      if (std::system(probe.c_str()) == 0) return std::string(candidate);
    }
    return std::string();
  }();
  return compiler;
}

std::string OracleVerdict::describe() const {
  if (agree) return nativeRan ? "agree (3-way)" : "agree (interp only)";
  std::ostringstream os;
  if (mismatch) {
    char exp[64], got[64];
    std::snprintf(exp, sizeof exp, "%a", mismatch->expected);
    std::snprintf(got, sizeof got, "%a", mismatch->got);
    os << mismatch->stage << " mismatch at " << mismatch->array << "["
       << mismatch->index << "]: expected " << exp << ", got " << got;
  } else {
    os << "failure";
  }
  if (!detail.empty()) os << "\n" << detail;
  return os.str();
}

OracleVerdict checkEquivalence(const ir::Program& original,
                               const ir::Program& transformed,
                               const OracleOptions& opts) {
  MOTUNE_CHECK_MSG(original.arrays.size() == transformed.arrays.size(),
                   "oracle: programs declare different arrays");
  for (std::size_t a = 0; a < original.arrays.size(); ++a)
    MOTUNE_CHECK_MSG(original.arrays[a].name == transformed.arrays[a].name &&
                         original.arrays[a].dims == transformed.arrays[a].dims,
                     "oracle: array shapes diverged");

  OracleVerdict verdict;

  // Path 1: reference execution of the original.
  ir::Interpreter ref(original);
  fillArrays(ref, original);
  ref.run();

  // Path 2: the transformed program through the flat-bytecode engine (the
  // default — every oracle run thus also differentially validates the
  // bytecode engine against the tree walker) or the tree walker itself.
  std::optional<Mismatch> m;
  if (opts.useBytecode) {
    ir::CompiledProgram alt(transformed);
    fillArrays(alt, transformed);
    alt.run();
    m = compareArrays(original, ref, alt, "interp");
  } else {
    ir::Interpreter alt(transformed);
    fillArrays(alt, transformed);
    alt.run();
    m = compareArrays(original, ref, alt, "interp");
  }
  if (m) {
    verdict.agree = false;
    verdict.mismatch = std::move(m);
    return verdict;
  }

  if (!opts.runNative) return verdict;
  const std::string compiler =
      opts.compiler.empty() ? hostCompiler() : opts.compiler;
  if (compiler.empty()) return verdict; // interp-only when no compiler found

  // Path 3: compile and run the emitted C for the transformed program.
  // Serialize: the fixed file names in the shared work dir would collide.
  static std::mutex nativeMutex;
  std::lock_guard<std::mutex> lock(nativeMutex);

  const fs::path dir =
      opts.workDir.empty() ? processWorkDir() : fs::path(opts.workDir);
  fs::create_directories(dir);
  const fs::path src = dir / "harness.c";
  const fs::path bin = dir / "harness.bin";
  const fs::path out = dir / "harness.out";
  const fs::path err = dir / "harness.err";
  {
    std::ofstream file(src);
    file << emitHarness(transformed, opts);
  }

  // -O0 -ffp-contract=off keeps the compiled arithmetic the same IEEE
  // operation sequence as the interpreter (no FMA fusion, no reordering).
  const std::string compileCmd = compiler +
                                 " -std=c11 -O0 -ffp-contract=off -o \"" +
                                 bin.string() + "\" \"" + src.string() +
                                 "\" -lm";
  if (runCommand(compileCmd, out, err) != 0) {
    verdict.agree = false;
    verdict.mismatch = Mismatch{"native-compile", "", 0, 0.0, 0.0};
    verdict.detail = slurp(err);
    return verdict;
  }

  if (runCommand("\"" + bin.string() + "\"", out, err) != 0) {
    verdict.agree = false;
    verdict.mismatch = Mismatch{"native-run", "", 0, 0.0, 0.0};
    verdict.detail = slurp(err);
    return verdict;
  }
  verdict.nativeRan = true;

  std::ifstream results(out);
  std::string line;
  for (const auto& decl : original.arrays) {
    const auto& expected = ref.array(decl.name);
    for (std::size_t i = 0; i < expected.size(); ++i) {
      if (!std::getline(results, line)) {
        verdict.agree = false;
        verdict.mismatch = Mismatch{"native-run", decl.name, i, expected[i], 0.0};
        verdict.detail = "native output truncated";
        return verdict;
      }
      const double got = std::strtod(line.c_str(), nullptr);
      if (!sameValue(expected[i], got)) {
        verdict.agree = false;
        verdict.mismatch = Mismatch{"native", decl.name, i, expected[i], got};
        return verdict;
      }
    }
  }
  return verdict;
}

} // namespace motune::verify
