#include "verify/shrinker.h"

#include "support/check.h"

#include <algorithm>
#include <exception>
#include <set>
#include <utility>

namespace motune::verify {

namespace {

using Path = std::vector<std::size_t>; ///< body indices from the root

void collectPaths(const std::vector<ir::StmtPtr>& body, Path& prefix,
                  std::vector<Path>& stmts, std::vector<Path>& loops) {
  for (std::size_t i = 0; i < body.size(); ++i) {
    prefix.push_back(i);
    stmts.push_back(prefix);
    if (body[i]->kind == ir::Stmt::Kind::Loop) {
      loops.push_back(prefix);
      collectPaths(body[i]->loop.body, prefix, stmts, loops);
    }
    prefix.pop_back();
  }
}

/// Removes the statement at `path`; parent loops emptied by the removal are
/// removed as well. Returns false for stale paths.
bool removeAt(std::vector<ir::StmtPtr>& body, const Path& path,
              std::size_t depth) {
  const std::size_t idx = path[depth];
  if (idx >= body.size()) return false;
  if (depth + 1 == path.size()) {
    body.erase(body.begin() + static_cast<std::ptrdiff_t>(idx));
    return true;
  }
  if (body[idx]->kind != ir::Stmt::Kind::Loop) return false;
  if (!removeAt(body[idx]->loop.body, path, depth + 1)) return false;
  if (body[idx]->loop.body.empty())
    body.erase(body.begin() + static_cast<std::ptrdiff_t>(idx));
  return true;
}

/// Replaces the loop at `path` with its body, the induction variable
/// substituted by the lower bound (a single-iteration specialization).
bool collapseAt(std::vector<ir::StmtPtr>& body, const Path& path,
                std::size_t depth) {
  const std::size_t idx = path[depth];
  if (idx >= body.size() || body[idx]->kind != ir::Stmt::Kind::Loop)
    return false;
  ir::Loop& loop = body[idx]->loop;
  if (depth + 1 < path.size()) return collapseAt(loop.body, path, depth + 1);
  std::vector<ir::StmtPtr> replacement;
  for (const auto& s : loop.body)
    replacement.push_back(ir::substituteIv(*s, loop.iv, loop.lower));
  body.erase(body.begin() + static_cast<std::ptrdiff_t>(idx));
  body.insert(body.begin() + static_cast<std::ptrdiff_t>(idx),
              std::make_move_iterator(replacement.begin()),
              std::make_move_iterator(replacement.end()));
  return true;
}

/// Halves the constant extent of the loop at `path` (toward 1).
bool halveExtentAt(std::vector<ir::StmtPtr>& body, const Path& path,
                   std::size_t depth) {
  const std::size_t idx = path[depth];
  if (idx >= body.size() || body[idx]->kind != ir::Stmt::Kind::Loop)
    return false;
  ir::Loop& loop = body[idx]->loop;
  if (depth + 1 < path.size()) return halveExtentAt(loop.body, path, depth + 1);
  if (loop.upper.cap.has_value()) return false;
  const ir::AffineExpr extentExpr = loop.upper.base - loop.lower;
  if (!extentExpr.isConstant()) return false;
  const std::int64_t extent = extentExpr.constantTerm();
  const std::int64_t next = std::max<std::int64_t>(1, extent / 2);
  if (next >= extent) return false;
  loop.upper = ir::Bound(loop.lower + next);
  return true;
}

void collectUsedArrays(const ir::Expr& e, std::set<std::string>& used) {
  if (e.kind == ir::Expr::Kind::Read) used.insert(e.array);
  if (e.lhs) collectUsedArrays(*e.lhs, used);
  if (e.rhs) collectUsedArrays(*e.rhs, used);
}

void collectUsedArrays(const std::vector<ir::StmtPtr>& body,
                       std::set<std::string>& used) {
  for (const auto& s : body) {
    if (s->kind == ir::Stmt::Kind::Loop) {
      collectUsedArrays(s->loop.body, used);
    } else {
      used.insert(s->assign.array);
      if (s->assign.rhs) collectUsedArrays(*s->assign.rhs, used);
    }
  }
}

} // namespace

FuzzCase shrink(const FuzzCase& failing, const StillFails& stillFails,
                int maxAttempts, ShrinkStats* stats) {
  FuzzCase current = failing.clone();
  int attempts = 0;

  const auto tryCandidate = [&](FuzzCase cand) {
    if (attempts >= maxAttempts) return false;
    ++attempts;
    if (stats != nullptr) ++stats->attempts;
    bool keeps = false;
    try {
      keeps = stillFails(cand);
    } catch (const std::exception&) {
      keeps = false; // an un-evaluable candidate is simply not accepted
    }
    if (keeps) {
      current = std::move(cand);
      if (stats != nullptr) ++stats->accepted;
    }
    return keeps;
  };

  // Each pass re-enumerates candidates from the freshly shrunk case after
  // every acceptance and runs to its own fixpoint.
  const auto runPass = [&](const auto& makeCandidates) {
    bool any = false;
    bool again = true;
    while (again && attempts < maxAttempts) {
      again = false;
      for (auto& cand : makeCandidates(current)) {
        if (tryCandidate(std::move(cand))) {
          any = true;
          again = true;
          break;
        }
        if (attempts >= maxAttempts) break;
      }
    }
    return any;
  };

  const auto dropSteps = [](const FuzzCase& c) {
    std::vector<FuzzCase> cands;
    for (std::size_t s = 0; s < c.steps.size(); ++s) {
      FuzzCase cand = c.clone();
      cand.steps.erase(cand.steps.begin() + static_cast<std::ptrdiff_t>(s));
      cands.push_back(std::move(cand));
    }
    return cands;
  };

  const auto dropStmts = [](const FuzzCase& c) {
    std::vector<Path> stmts, loops;
    Path prefix;
    collectPaths(c.program.body, prefix, stmts, loops);
    std::vector<FuzzCase> cands;
    for (const auto& path : stmts) {
      FuzzCase cand = c.clone();
      if (removeAt(cand.program.body, path, 0) && !cand.program.body.empty())
        cands.push_back(std::move(cand));
    }
    return cands;
  };

  const auto collapseLoops = [](const FuzzCase& c) {
    std::vector<Path> stmts, loops;
    Path prefix;
    collectPaths(c.program.body, prefix, stmts, loops);
    std::vector<FuzzCase> cands;
    for (const auto& path : loops) {
      FuzzCase cand = c.clone();
      if (collapseAt(cand.program.body, path, 0))
        cands.push_back(std::move(cand));
    }
    return cands;
  };

  const auto halveExtents = [](const FuzzCase& c) {
    std::vector<Path> stmts, loops;
    Path prefix;
    collectPaths(c.program.body, prefix, stmts, loops);
    std::vector<FuzzCase> cands;
    for (const auto& path : loops) {
      FuzzCase cand = c.clone();
      if (halveExtentAt(cand.program.body, path, 0))
        cands.push_back(std::move(cand));
    }
    return cands;
  };

  const auto shrinkStepArgs = [](const FuzzCase& c) {
    std::vector<FuzzCase> cands;
    for (std::size_t s = 0; s < c.steps.size(); ++s) {
      // A shorter tile band is a strictly simpler step.
      if (c.steps[s].kind == TransformStep::Kind::Tile &&
          c.steps[s].args.size() > 1) {
        FuzzCase cand = c.clone();
        cand.steps[s].args.pop_back();
        cands.push_back(std::move(cand));
      }
      for (std::size_t a = 0; a < c.steps[s].args.size(); ++a) {
        const std::int64_t v = c.steps[s].args[a];
        if (v <= 1) continue;
        FuzzCase cand = c.clone();
        cand.steps[s].args[a] = 1 + (v - 1) / 2;
        cands.push_back(std::move(cand));
      }
    }
    return cands;
  };

  const auto trimArrays = [](const FuzzCase& c) {
    std::set<std::string> used;
    collectUsedArrays(c.program.body, used);
    std::vector<FuzzCase> cands;
    if (used.size() < c.program.arrays.size()) {
      FuzzCase cand = c.clone();
      std::erase_if(cand.program.arrays, [&](const ir::ArrayDecl& d) {
        return used.count(d.name) == 0;
      });
      cands.push_back(std::move(cand));
    }
    return cands;
  };

  bool progress = true;
  while (progress && attempts < maxAttempts) {
    progress = false;
    progress |= runPass(dropSteps);
    progress |= runPass(dropStmts);
    progress |= runPass(collapseLoops);
    progress |= runPass(halveExtents);
    progress |= runPass(shrinkStepArgs);
    progress |= runPass(trimArrays);
  }
  return current;
}

} // namespace motune::verify
