// Differential fuzzing driver: generate → transform → oracle → shrink.
//
// Each iteration draws a random program (generator.h) and a random legal
// transform sequence (sampler.h), then runs the three-way oracle
// (oracle.h). The first disagreement stops the run, is minimized by the
// shrinker, and is written to a self-contained repro file that replays the
// exact case:
//
//     #@ motune-fuzz-repro seed=7 iter=42
//     #@ transform tile 4 2
//     #@ transform parallelize 1
//     array A[8][8]
//     for i = 0 .. 8 { ... }
//
// The body is printSource() text (so `motune fuzz --repro FILE` and the
// parser agree on it); the `#@ transform` lines ride in comments the parser
// ignores. Iterations derive their rng from (seed, iteration index), so a
// repro is independent of how many iterations preceded it.
#pragma once

#include "verify/generator.h"
#include "verify/oracle.h"
#include "verify/sampler.h"
#include "verify/shrinker.h"

#include <cstdint>
#include <optional>
#include <string>

namespace motune::verify {

struct FuzzOptions {
  std::uint64_t seed = 1;
  std::uint64_t iters = 1000;
  double timeBudgetSeconds = 0.0; ///< stop after this long; 0 = no budget
  bool shrinkFailures = true;
  int maxShrinkAttempts = 2000;
  std::string outDir; ///< where repro files land; "" = current directory
  GeneratorOptions generator;
  SamplerOptions sampler;
  OracleOptions oracle;
};

struct FuzzReport {
  std::uint64_t iterations = 0;    ///< iterations actually run
  std::uint64_t programs = 0;      ///< programs generated
  std::uint64_t comparisons = 0;   ///< oracle invocations
  std::uint64_t nativeRuns = 0;    ///< comparisons that included native
  std::uint64_t rejectedDraws = 0; ///< illegal transform draws discarded
  bool failed = false;
  std::uint64_t failingIteration = 0;
  std::string reproPath; ///< written repro file ("" when in-memory only)
  std::string detail;    ///< oracle verdict description of the failure
  std::optional<FuzzCase> minimized;
};

/// Runs the fuzzing loop. Never throws for oracle disagreements (those are
/// the product); feeds the verify.fuzz.* metrics and a verify.fuzz span.
FuzzReport runFuzz(const FuzzOptions& opts = {});

/// Repro file text for a case (optionally stamped with its origin).
std::string serializeRepro(const FuzzCase& c, std::uint64_t seed = 0,
                           std::uint64_t iter = 0);

/// Parses a repro file; throws support::CheckError on malformed input.
FuzzCase parseRepro(const std::string& text);

/// Re-runs the oracle on a parsed repro (applies the recorded steps first).
OracleVerdict replayRepro(const FuzzCase& c, const OracleOptions& opts = {});

} // namespace motune::verify
