// Seeded random affine loop-nest generator.
//
// Produces valid ir::Programs spanning the structural space the paper's
// kernels live in — perfect and imperfect nests, multiple statements per
// body, reductions (+=), rectangular and parametric (outer-iv-dependent)
// bounds — for the differential correctness harness (oracle.h). Every
// generated program is:
//   * in-bounds: array extents are derived from interval analysis of the
//     subscripts over the iteration domain, so the interpreter never traps;
//   * expressible in the textual kernel language (unit steps, cap-free
//     bounds), so printSource/parseProgram round-trips and repro files work;
//   * numerically tame: divisions only by constants bounded away from zero,
//     sqrt only of abs(), so no NaN/Inf muddies output comparison.
#pragma once

#include "ir/program.h"
#include "support/rng.h"

namespace motune::verify {

struct GeneratorOptions {
  int maxTopLoops = 2;      ///< top-level loop nests (enables fusion shapes)
  int maxDepth = 3;         ///< maximum loop nesting depth
  int maxBodyStmts = 2;     ///< extra assignments per loop body
  int maxArrays = 3;
  int maxRank = 3;
  std::int64_t minExtent = 3;
  std::int64_t maxExtent = 8;
  int maxExprDepth = 2;     ///< depth of random right-hand-side trees
  bool allowReductions = true;
  bool allowParametricBounds = true; ///< bounds referencing outer ivs
};

/// Draws one random program from `rng`. Deterministic: the same rng state
/// and options always produce the same program.
ir::Program randomProgram(support::Rng& rng,
                          const GeneratorOptions& opts = {});

} // namespace motune::verify
