#include "verify/fuzz.h"

#include "ir/parse.h"
#include "ir/print.h"
#include "observe/metrics.h"
#include "observe/trace.h"
#include "support/check.h"

#include <chrono>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace motune::verify {

namespace {

/// Independent rng for iteration `iter` of a run seeded with `seed`:
/// repros name (seed, iter) and replay regardless of loop order.
support::Rng iterationRng(std::uint64_t seed, std::uint64_t iter) {
  return support::Rng(seed * 0x9e3779b97f4a7c15ull ^
                      (iter + 1) * 0xbf58476d1ce4e5b9ull);
}

constexpr const char* kReproHeader = "#@ motune-fuzz-repro";
constexpr const char* kTransformPrefix = "#@ transform ";

} // namespace

std::string serializeRepro(const FuzzCase& c, std::uint64_t seed,
                           std::uint64_t iter) {
  std::ostringstream os;
  os << kReproHeader << " seed=" << seed << " iter=" << iter << "\n";
  for (const auto& step : c.steps)
    os << kTransformPrefix << step.str() << "\n";
  os << ir::printSource(c.program);
  return os.str();
}

FuzzCase parseRepro(const std::string& text) {
  FuzzCase c;
  std::istringstream is(text);
  std::string line;
  while (std::getline(is, line)) {
    if (line.rfind(kTransformPrefix, 0) != 0) continue;
    const auto step = TransformStep::parse(line.substr(
        std::string(kTransformPrefix).size()));
    MOTUNE_CHECK_MSG(step.has_value(), "repro: bad transform line: " + line);
    c.steps.push_back(*step);
  }
  // The parser treats every '#' line (including the #@ ones) as a comment,
  // so the whole file is also a valid kernel source.
  c.program = ir::parseProgram(text, "repro");
  return c;
}

OracleVerdict replayRepro(const FuzzCase& c, const OracleOptions& opts) {
  return checkEquivalence(c.program, applySequence(c.program, c.steps), opts);
}

FuzzReport runFuzz(const FuzzOptions& opts) {
  namespace fs = std::filesystem;
  auto& metrics = observe::MetricsRegistry::global();
  auto& programsCtr = metrics.counter("verify.fuzz.programs");
  auto& rejectedCtr = metrics.counter("verify.fuzz.sequences.rejected");
  auto& comparisonsCtr = metrics.counter("verify.fuzz.oracle.comparisons");
  auto& nativeCtr = metrics.counter("verify.fuzz.oracle.native_runs");
  auto& mismatchCtr = metrics.counter("verify.fuzz.mismatches");
  auto& shrinkAttemptsCtr = metrics.counter("verify.fuzz.shrink.attempts");
  auto& shrinkAcceptedCtr = metrics.counter("verify.fuzz.shrink.accepted");

  auto span = observe::Tracer::global().span(
      "verify.fuzz",
      {{"seed", support::Json(static_cast<double>(opts.seed))},
       {"iters", support::Json(static_cast<double>(opts.iters))}});

  FuzzReport report;
  const auto start = std::chrono::steady_clock::now();
  const auto overBudget = [&] {
    if (opts.timeBudgetSeconds <= 0.0) return false;
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    return elapsed.count() >= opts.timeBudgetSeconds;
  };

  for (std::uint64_t iter = 0; iter < opts.iters; ++iter) {
    if (overBudget()) break;
    ++report.iterations;

    support::Rng rng = iterationRng(opts.seed, iter);
    FuzzCase c;
    c.program = randomProgram(rng, opts.generator);
    ++report.programs;
    programsCtr.add();

    std::uint64_t rejected = 0;
    c.steps = sampleSequence(c.program, rng, opts.sampler, &rejected);
    report.rejectedDraws += rejected;
    rejectedCtr.add(rejected);
    if (c.steps.empty()) continue; // nothing to check against

    OracleVerdict verdict;
    try {
      verdict = replayRepro(c, opts.oracle);
    } catch (const support::CheckError& e) {
      // An execution trap (e.g. out-of-bounds after a transform) is a
      // failure of the same severity as a value mismatch.
      verdict.agree = false;
      verdict.detail = e.what();
    }
    ++report.comparisons;
    comparisonsCtr.add();
    if (verdict.nativeRan) {
      ++report.nativeRuns;
      nativeCtr.add();
    }
    if (verdict.agree) continue;

    // First failure: record, minimize, write the repro, stop.
    mismatchCtr.add();
    report.failed = true;
    report.failingIteration = iter;
    report.detail = verdict.describe();

    FuzzCase minimized = c.clone();
    if (opts.shrinkFailures) {
      ShrinkStats stats;
      const StillFails predicate = [&](const FuzzCase& cand) {
        if (cand.steps.empty()) return false;
        ir::Program transformed;
        try {
          transformed = applySequence(cand.program, cand.steps);
        } catch (const support::CheckError&) {
          return false; // steps no longer legal on the shrunk program
        }
        try {
          return !checkEquivalence(cand.program, transformed, opts.oracle)
                      .agree;
        } catch (const support::CheckError&) {
          return true; // still traps at execution — same failure class
        }
      };
      minimized = shrink(c, predicate, opts.maxShrinkAttempts, &stats);
      shrinkAttemptsCtr.add(stats.attempts);
      shrinkAcceptedCtr.add(stats.accepted);
    }

    const fs::path dir = opts.outDir.empty() ? fs::path(".")
                                             : fs::path(opts.outDir);
    std::error_code ec;
    fs::create_directories(dir, ec);
    const fs::path repro =
        dir / ("fuzz-repro-seed" + std::to_string(opts.seed) + "-iter" +
               std::to_string(iter) + ".kernel");
    std::ofstream out(repro);
    if (out) {
      out << serializeRepro(minimized, opts.seed, iter);
      report.reproPath = repro.string();
    }
    report.minimized = std::move(minimized);
    break;
  }

  span.setAttr("iterations",
               support::Json(static_cast<double>(report.iterations)));
  span.setAttr("failed", support::Json(report.failed));
  return report;
}

} // namespace motune::verify
