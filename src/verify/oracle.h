// Three-way differential correctness oracle.
//
// For a (program, transformed-program) pair the oracle executes:
//   1. the original IR through ir::Interpreter  (the reference),
//   2. the transformed IR through the flat-bytecode engine
//      (ir::CompiledProgram; the tree walker via useBytecode = false),
//   3. the C emitted for the transformed IR (codegen::emitFunction),
//      compiled with the host compiler and run in a subprocess,
// all from the same deterministic input filler, and compares every array
// element. Legal transforms preserve each element's operation order, so
// paths 1 and 2 must agree bit-for-bit — which also makes every fuzz
// iteration a differential test of the bytecode engine against the tree
// walker; the native path is compiled with -ffp-contract=off so the
// compiled arithmetic is the same IEEE operation sequence and must match
// too (values are exchanged as %a hex floats, so no decimal rounding
// enters the comparison).
#pragma once

#include "ir/program.h"

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>

namespace motune::verify {

/// Deterministic input value for element `elementIndex` of the
/// `arrayIndex`-th array: a hash mapped into [1, 2), bounded away from
/// zero so generated divisions and subtractions stay tame. The native
/// harness embeds C code computing the identical value.
double fillValue(std::size_t arrayIndex, std::size_t elementIndex);

struct OracleOptions {
  bool runNative = true;  ///< false = interpreter-only (sandboxed runs)
  bool useBytecode = true; ///< transformed leg: bytecode engine vs tree walker
  std::string compiler;   ///< "" = auto-detect via hostCompiler()
  std::string workDir;    ///< "" = per-process temp dir; reused across calls
  bool emitPragmas = true;
};

struct Mismatch {
  std::string stage; ///< "interp", "native", "native-compile", "native-run"
  std::string array;
  std::size_t index = 0;
  double expected = 0.0;
  double got = 0.0;
};

struct OracleVerdict {
  bool agree = true;
  bool nativeRan = false;
  std::optional<Mismatch> mismatch;
  std::string detail; ///< compiler/runtime diagnostics on failure

  std::string describe() const;
};

/// Best-effort host C compiler discovery (cc, gcc, clang — first that
/// answers --version). Cached after the first call; empty when none found.
const std::string& hostCompiler();

/// Runs the three-way check. Throws support::CheckError only for invalid
/// inputs (e.g. the programs declare different arrays or an execution traps
/// out of bounds); a disagreement is reported in the verdict, not thrown.
OracleVerdict checkEquivalence(const ir::Program& original,
                               const ir::Program& transformed,
                               const OracleOptions& opts = {});

} // namespace motune::verify
