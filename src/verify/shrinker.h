// Minimizer for failing (program, transform-sequence) pairs.
//
// Greedy fixpoint reduction: repeatedly tries structural simplifications —
// dropping transform steps, deleting statements, collapsing loops to a
// single iteration, halving loop extents and transform parameters — and
// keeps any candidate for which the caller's predicate still reports the
// failure. The result is typically a handful of loops and one or two
// transform steps, small enough to read and file verbatim.
#pragma once

#include "ir/program.h"
#include "verify/sampler.h"

#include <cstdint>
#include <functional>
#include <vector>

namespace motune::verify {

/// One fuzz case: a generated program plus the transform sequence under
/// test.
struct FuzzCase {
  ir::Program program;
  std::vector<TransformStep> steps;

  FuzzCase clone() const {
    return FuzzCase{program.clone(), steps};
  }
};

/// Returns true when the candidate still exhibits the original failure.
/// Must return false — not throw — for candidates it cannot evaluate;
/// wrap oracle calls in try/catch.
using StillFails = std::function<bool(const FuzzCase&)>;

struct ShrinkStats {
  std::uint64_t attempts = 0; ///< candidate evaluations
  std::uint64_t accepted = 0; ///< candidates that kept the failure
};

/// Shrinks `failing` to a locally minimal case for which `stillFails` holds.
/// `failing` itself must satisfy the predicate. Deterministic; bounded by
/// `maxAttempts` predicate evaluations.
FuzzCase shrink(const FuzzCase& failing, const StillFails& stillFails,
                int maxAttempts = 2000, ShrinkStats* stats = nullptr);

} // namespace motune::verify
