// Random legal transform sequences for the differential harness.
//
// A TransformStep names one transformation with concrete parameters; a
// sequence is applied left to right, each step re-checked for legality on
// the program it receives (the analyzer's dependence test for tile /
// interchange / parallelize, the transforms' own structural and dependence
// checks for unroll / fuse / distribute). Steps have a stable one-line
// textual form so the fuzzer's repro files can carry them.
//
// Parameters are drawn from the same analyzer::ParamSpec machinery the
// tuner uses: the Skeleton step literally runs
// TransformationSkeleton::build(...).instantiate(...) — the exact pathway
// KernelTuningProblem exercises — and granular tile steps draw sizes from
// per-loop ParamSpecs built the same way (lo = 1, hi = trip count).
#pragma once

#include "ir/program.h"
#include "support/rng.h"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace motune::verify {

struct TransformStep {
  enum class Kind {
    Tile,        ///< args = tile sizes for the outer band
    Interchange, ///< args = permutation of the outer band
    Unroll,      ///< args = {factor}
    Parallelize, ///< args = {collapse depth}
    Fuse,        ///< args empty; fuses the first two top-level loops
    Distribute,  ///< args empty; fissions the root loop
    Skeleton,    ///< args = {maxThreads, tile sizes..., threads}
  };
  Kind kind = Kind::Tile;
  std::vector<std::int64_t> args;

  bool operator==(const TransformStep&) const = default;

  /// One-line textual form, e.g. "tile 8 4" or "skeleton 8 16 4 2 3".
  std::string str() const;

  /// Inverse of str(); std::nullopt on malformed input.
  static std::optional<TransformStep> parse(const std::string& line);
};

/// Applies one step, checking legality; throws support::CheckError when the
/// step is illegal or structurally inapplicable to `p`.
ir::Program applyStep(const ir::Program& p, const TransformStep& step);

/// Applies a whole sequence left to right (throws on the first illegal
/// step).
ir::Program applySequence(const ir::Program& p,
                          const std::vector<TransformStep>& steps);

struct SamplerOptions {
  int maxSteps = 3;
  int maxThreads = 8;
  int maxUnroll = 4;
  int maxDrawsPerStep = 8; ///< rejected-draw retries before giving up a slot
};

/// Draws a random sequence that is legal on `p` (possibly empty when no
/// transform applies). Every drawn-but-illegal candidate increments
/// `*rejectedDraws` (and the verify.fuzz.sequences.rejected counter is the
/// caller's to feed). Deterministic in the rng state.
std::vector<TransformStep> sampleSequence(const ir::Program& p,
                                          support::Rng& rng,
                                          const SamplerOptions& opts = {},
                                          std::uint64_t* rejectedDraws = nullptr);

} // namespace motune::verify
