#include "verify/generator.h"

#include "support/check.h"

#include <algorithm>
#include <string>
#include <vector>

namespace motune::verify {

namespace {

using ir::AffineExpr;

/// Conservative value interval of an induction variable over the whole
/// iteration domain (bounds may reference outer ivs, so intervals are
/// propagated outside-in).
struct IvRange {
  std::string name;
  std::int64_t min = 0;
  std::int64_t max = 0; ///< inclusive
};

/// Interval of an affine expression given the enclosing iv ranges.
std::pair<std::int64_t, std::int64_t>
affineInterval(const AffineExpr& e, const std::vector<IvRange>& ivs) {
  std::int64_t lo = e.constantTerm();
  std::int64_t hi = e.constantTerm();
  for (const auto& [name, coeff] : e.terms()) {
    const auto it = std::find_if(ivs.begin(), ivs.end(),
                                 [&](const IvRange& r) { return r.name == name; });
    MOTUNE_CHECK_MSG(it != ivs.end(), "unbound iv in generated bound: " + name);
    if (coeff >= 0) {
      lo += coeff * it->min;
      hi += coeff * it->max;
    } else {
      lo += coeff * it->max;
      hi += coeff * it->min;
    }
  }
  return {lo, hi};
}

class Generator {
public:
  Generator(support::Rng& rng, const GeneratorOptions& opts)
      : rng_(rng), opts_(opts) {}

  ir::Program run() {
    chooseArrays();
    ir::Program p;
    p.name = "fuzz";
    const int topLoops = static_cast<int>(
        rng_.uniformInt(1, std::max(1, opts_.maxTopLoops)));
    for (int t = 0; t < topLoops; ++t) {
      // A sibling with an identical header makes the program a fusion
      // candidate; clone the previous header with useful probability.
      if (t > 0 && rng_.bernoulli(0.5) &&
          p.body.back()->kind == ir::Stmt::Kind::Loop) {
        const ir::Loop& prev = p.body.back()->loop;
        p.body.push_back(makeLoop(prev.lower, prev.upper.base, 1));
      } else {
        p.body.push_back(randomLoop(1));
      }
    }
    finalizeArrayDims(p);
    return p;
  }

private:
  struct ArrayInfo {
    std::string name;
    std::size_t rank;
    std::vector<std::int64_t> requiredDims; ///< max index + 1 seen per dim
    bool used = false;
  };

  void chooseArrays() {
    const int count = static_cast<int>(
        rng_.uniformInt(1, std::max(1, opts_.maxArrays)));
    static const char* names[] = {"A", "B", "C", "D", "E", "F"};
    for (int a = 0; a < count; ++a) {
      ArrayInfo info;
      info.name = names[a];
      info.rank = static_cast<std::size_t>(
          rng_.uniformInt(1, std::max(1, opts_.maxRank)));
      info.requiredDims.assign(info.rank, 1);
      arrays_.push_back(std::move(info));
    }
  }

  std::string freshIv() {
    static const char* ivNames[] = {"i", "j", "k", "l", "m", "p", "q", "r"};
    const std::size_t n = ivCount_++;
    if (n < std::size(ivNames)) return ivNames[n];
    return "v" + std::to_string(n);
  }

  /// Builds a loop header with the given bounds and generates its body.
  ir::StmtPtr makeLoop(const AffineExpr& lower, const AffineExpr& upper,
                       int depth) {
    ir::Loop loop;
    loop.iv = freshIv();
    loop.lower = lower;
    loop.upper = ir::Bound(upper);
    loop.step = 1;

    const auto [lowLo, lowHi] = affineInterval(lower, ivs_);
    const auto [upLo, upHi] = affineInterval(upper, ivs_);
    (void)lowHi;
    (void)upLo;
    ivs_.push_back({loop.iv, lowLo, std::max(lowLo, upHi - 1)});
    loop.body = randomBody(depth);
    ivs_.pop_back();
    return ir::Stmt::makeLoop(std::move(loop));
  }

  ir::StmtPtr randomLoop(int depth) {
    // Lower bound: usually a small constant; sometimes an outer iv
    // (parametric). Upper = lower + extent keeps every instance non-empty.
    AffineExpr lower = AffineExpr::constant(rng_.uniformInt(0, 2));
    if (opts_.allowParametricBounds && !ivs_.empty() && rng_.bernoulli(0.3)) {
      const auto& outer = ivs_[static_cast<std::size_t>(
          rng_.uniformInt(0, static_cast<std::int64_t>(ivs_.size()) - 1))];
      lower = AffineExpr::var(outer.name) + rng_.uniformInt(0, 1);
    }
    const std::int64_t extent =
        rng_.uniformInt(opts_.minExtent, opts_.maxExtent);
    return makeLoop(lower, lower + extent, depth);
  }

  std::vector<ir::StmtPtr> randomBody(int depth) {
    std::vector<ir::StmtPtr> body;
    const bool nest = depth < opts_.maxDepth && rng_.bernoulli(0.75);
    const int extraStmts = static_cast<int>(
        rng_.uniformInt(nest ? 0 : 1, std::max(1, opts_.maxBodyStmts)));
    // Imperfect nests: assignments may come before and/or after the child
    // loop.
    const int before = nest ? static_cast<int>(rng_.uniformInt(0, extraStmts))
                            : extraStmts;
    for (int s = 0; s < before; ++s) body.push_back(randomAssign());
    if (nest) body.push_back(randomLoop(depth + 1));
    for (int s = before; s < extraStmts; ++s) body.push_back(randomAssign());
    MOTUNE_CHECK(!body.empty());
    return body;
  }

  /// Random in-bounds affine subscript for dimension `dim` of `array`;
  /// shifts the expression so its interval minimum is zero and records the
  /// required extent.
  AffineExpr randomSubscript(ArrayInfo& array, std::size_t dim,
                             bool preferIv) {
    AffineExpr sub;
    const double roll = rng_.uniform();
    if (ivs_.empty() || (!preferIv && roll < 0.15)) {
      sub = AffineExpr::constant(rng_.uniformInt(0, 2));
    } else {
      const auto& iv = ivs_[static_cast<std::size_t>(
          rng_.uniformInt(0, static_cast<std::int64_t>(ivs_.size()) - 1))];
      const std::int64_t coeff = rng_.bernoulli(0.12) ? 2 : 1;
      sub = AffineExpr::var(iv.name, coeff) + rng_.uniformInt(-2, 2);
      if (ivs_.size() >= 2 && rng_.bernoulli(0.15)) {
        const auto& other = ivs_[static_cast<std::size_t>(
            rng_.uniformInt(0, static_cast<std::int64_t>(ivs_.size()) - 1))];
        if (other.name != iv.name) sub = sub + AffineExpr::var(other.name);
      }
    }
    auto [lo, hi] = affineInterval(sub, ivs_);
    if (lo < 0) {
      sub = sub + (-lo);
      hi -= lo;
    }
    array.requiredDims[dim] = std::max(array.requiredDims[dim], hi + 1);
    return sub;
  }

  std::vector<AffineExpr> randomSubscripts(ArrayInfo& array, bool preferIv) {
    std::vector<AffineExpr> subs;
    for (std::size_t d = 0; d < array.rank; ++d)
      subs.push_back(randomSubscript(array, d, preferIv));
    array.used = true;
    return subs;
  }

  ArrayInfo& randomArray() {
    return arrays_[static_cast<std::size_t>(
        rng_.uniformInt(0, static_cast<std::int64_t>(arrays_.size()) - 1))];
  }

  ir::ExprPtr randomExpr(int depth) {
    if (depth >= opts_.maxExprDepth || rng_.bernoulli(0.35)) {
      const double roll = rng_.uniform();
      if (roll < 0.55) {
        ArrayInfo& a = randomArray();
        return ir::read(a.name, randomSubscripts(a, /*preferIv=*/true));
      }
      if (roll < 0.75 && !ivs_.empty()) {
        const auto& iv = ivs_[static_cast<std::size_t>(rng_.uniformInt(
            0, static_cast<std::int64_t>(ivs_.size()) - 1))];
        return ir::ivRef(iv.name);
      }
      // Constants bounded away from zero keep divisions well-defined.
      return ir::constant(rng_.uniform(0.5, 2.0));
    }
    const double roll = rng_.uniform();
    if (roll < 0.30)
      return randomExpr(depth + 1) + randomExpr(depth + 1);
    if (roll < 0.50)
      return randomExpr(depth + 1) - randomExpr(depth + 1);
    if (roll < 0.70)
      return randomExpr(depth + 1) * randomExpr(depth + 1);
    if (roll < 0.78) // division only by a positive constant
      return randomExpr(depth + 1) / ir::constant(rng_.uniform(1.0, 2.0));
    if (roll < 0.86)
      return ir::binary(rng_.bernoulli(0.5) ? ir::BinOp::Min : ir::BinOp::Max,
                        randomExpr(depth + 1), randomExpr(depth + 1));
    if (roll < 0.93) {
      ir::ExprPtr inner = randomExpr(depth + 1);
      // "-c" and Neg(Const c) share one spelling; the parser resolves it
      // to a negative constant, so generate that form directly and the
      // printSource round-trip stays an identity.
      if (inner->kind == ir::Expr::Kind::Const)
        return ir::constant(-inner->constant);
      return ir::unary(ir::UnOp::Neg, std::move(inner));
    }
    // sqrt over abs stays real for any argument sign.
    return ir::sqrtOf(ir::unary(ir::UnOp::Abs, randomExpr(depth + 1)));
  }

  ir::StmtPtr randomAssign() {
    ir::Assign a;
    ArrayInfo& target = randomArray();
    a.array = target.name;
    a.subscripts = randomSubscripts(target, /*preferIv=*/true);
    a.rhs = randomExpr(0);
    a.accumulate = opts_.allowReductions && rng_.bernoulli(0.3);
    return ir::Stmt::makeAssign(std::move(a));
  }

  void finalizeArrayDims(ir::Program& p) {
    for (const auto& info : arrays_) {
      if (!info.used) continue; // statements always write, so >= 1 is used
      ir::ArrayDecl decl;
      decl.name = info.name;
      decl.dims = info.requiredDims;
      p.arrays.push_back(std::move(decl));
    }
    MOTUNE_CHECK(!p.arrays.empty());
  }

  support::Rng& rng_;
  const GeneratorOptions& opts_;
  std::vector<ArrayInfo> arrays_;
  std::vector<IvRange> ivs_;
  std::size_t ivCount_ = 0;
};

} // namespace

ir::Program randomProgram(support::Rng& rng, const GeneratorOptions& opts) {
  return Generator(rng, opts).run();
}

} // namespace motune::verify
