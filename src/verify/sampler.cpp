#include "verify/sampler.h"

#include "analyzer/dependence.h"
#include "analyzer/region.h"
#include "support/check.h"
#include "transform/fusion.h"
#include "transform/transforms.h"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace motune::verify {

namespace {

const char* kindName(TransformStep::Kind kind) {
  switch (kind) {
  case TransformStep::Kind::Tile: return "tile";
  case TransformStep::Kind::Interchange: return "interchange";
  case TransformStep::Kind::Unroll: return "unroll";
  case TransformStep::Kind::Parallelize: return "parallelize";
  case TransformStep::Kind::Fuse: return "fuse";
  case TransformStep::Kind::Distribute: return "distribute";
  case TransformStep::Kind::Skeleton: return "skeleton";
  }
  return "?";
}

std::optional<TransformStep::Kind> kindFromName(const std::string& name) {
  for (auto kind :
       {TransformStep::Kind::Tile, TransformStep::Kind::Interchange,
        TransformStep::Kind::Unroll, TransformStep::Kind::Parallelize,
        TransformStep::Kind::Fuse, TransformStep::Kind::Distribute,
        TransformStep::Kind::Skeleton})
    if (name == kindName(kind)) return kind;
  return std::nullopt;
}

/// What the analyzer can certify about the current program's outer band.
struct BandFacts {
  std::size_t nestDepth = 0;     ///< perfect-nest depth
  std::size_t rectDepth = 0;     ///< structurally tileable prefix
  std::size_t legalTileDepth = 0;///< min(rectDepth, dependence-legal band)
  std::vector<std::int64_t> trips; ///< trip counts of the rect prefix
  bool analyzable = false;
  std::vector<bool> parallelizable; ///< per nest level, when analyzable
};

BandFacts bandFacts(const ir::Program& p) {
  BandFacts facts;
  const auto nest = transform::perfectNest(p);
  facts.nestDepth = nest.size();

  // Structurally tileable prefix: unit step, cap-free, constant bounds
  // (the nest is at the program root, so any iv dependence would be on a
  // band iv — exactly what tile() forbids).
  ir::Env env;
  for (const auto* loop : nest) {
    if (loop->step != 1 || loop->upper.cap.has_value() ||
        !loop->lower.isConstant() || !loop->upper.base.isConstant())
      break;
    ++facts.rectDepth;
    facts.trips.push_back(ir::tripCount(*loop, env));
  }

  try {
    const auto deps = analyzer::computeDependences(p);
    if (deps.has_value()) {
      facts.analyzable = true;
      facts.legalTileDepth = std::min(
          facts.rectDepth,
          analyzer::tileableBandDepth(*deps, facts.nestDepth));
      for (std::size_t l = 0; l < facts.nestDepth; ++l)
        facts.parallelizable.push_back(analyzer::isParallelizable(*deps, l));
    }
  } catch (const support::CheckError&) {
    facts.analyzable = false;
  }
  return facts;
}

} // namespace

std::string TransformStep::str() const {
  std::ostringstream os;
  os << kindName(kind);
  for (std::int64_t a : args) os << " " << a;
  return os.str();
}

std::optional<TransformStep> TransformStep::parse(const std::string& line) {
  std::istringstream is(line);
  std::string name;
  if (!(is >> name)) return std::nullopt;
  const auto kind = kindFromName(name);
  if (!kind) return std::nullopt;
  TransformStep step;
  step.kind = *kind;
  std::int64_t v = 0;
  while (is >> v) step.args.push_back(v);
  if (!is.eof()) return std::nullopt; // trailing garbage
  return step;
}

ir::Program applyStep(const ir::Program& p, const TransformStep& step) {
  switch (step.kind) {
  case TransformStep::Kind::Tile: {
    const BandFacts facts = bandFacts(p);
    MOTUNE_CHECK_MSG(facts.analyzable, "tile: region not analyzable");
    MOTUNE_CHECK_MSG(!step.args.empty() &&
                         step.args.size() <= facts.legalTileDepth,
                     "tile: band exceeds the legal tileable depth");
    return transform::tile(p, step.args);
  }
  case TransformStep::Kind::Interchange: {
    const BandFacts facts = bandFacts(p);
    MOTUNE_CHECK_MSG(facts.analyzable, "interchange: region not analyzable");
    // A fully permutable band admits any permutation of its loops.
    MOTUNE_CHECK_MSG(step.args.size() >= 2 &&
                         step.args.size() <= facts.legalTileDepth,
                     "interchange: permutation exceeds the permutable band");
    std::vector<int> perm;
    for (std::int64_t v : step.args) perm.push_back(static_cast<int>(v));
    return transform::interchange(p, perm);
  }
  case TransformStep::Kind::Unroll: {
    MOTUNE_CHECK_MSG(step.args.size() == 1, "unroll: needs one factor");
    // Semantics-preserving for any loop; unrollInnermost enforces its own
    // structural preconditions (unit step, constant bounds, assign body).
    return transform::unrollInnermost(p, static_cast<int>(step.args[0]));
  }
  case TransformStep::Kind::Parallelize: {
    MOTUNE_CHECK_MSG(step.args.size() == 1, "parallelize: needs a collapse");
    const auto collapse = static_cast<std::size_t>(step.args[0]);
    const BandFacts facts = bandFacts(p);
    MOTUNE_CHECK_MSG(facts.analyzable, "parallelize: region not analyzable");
    MOTUNE_CHECK_MSG(collapse >= 1 && collapse <= facts.nestDepth,
                     "parallelize: collapse exceeds the nest depth");
    for (std::size_t l = 0; l < collapse; ++l)
      MOTUNE_CHECK_MSG(l < facts.parallelizable.size() &&
                           facts.parallelizable[l],
                       "parallelize: level carries a dependence");
    return transform::parallelizeOuter(p, static_cast<int>(collapse));
  }
  case TransformStep::Kind::Fuse:
    MOTUNE_CHECK_MSG(step.args.empty(), "fuse: takes no arguments");
    return transform::fuse(p); // checks structure + dependences internally
  case TransformStep::Kind::Distribute:
    MOTUNE_CHECK_MSG(step.args.empty(), "distribute: takes no arguments");
    return transform::distribute(p); // checks dependences internally
  case TransformStep::Kind::Skeleton: {
    MOTUNE_CHECK_MSG(step.args.size() >= 2, "skeleton: needs maxThreads + values");
    const int maxThreads = static_cast<int>(step.args[0]);
    const auto skeleton = analyzer::TransformationSkeleton::build(p, maxThreads);
    const std::vector<std::int64_t> values(step.args.begin() + 1,
                                           step.args.end());
    return skeleton.instantiate(values);
  }
  }
  MOTUNE_CHECK_MSG(false, "unreachable transform kind");
  return p.clone();
}

ir::Program applySequence(const ir::Program& p,
                          const std::vector<TransformStep>& steps) {
  ir::Program current = p.clone();
  for (const auto& step : steps) current = applyStep(current, step);
  return current;
}

std::vector<TransformStep> sampleSequence(const ir::Program& p,
                                          support::Rng& rng,
                                          const SamplerOptions& opts,
                                          std::uint64_t* rejectedDraws) {
  std::vector<TransformStep> steps;
  ir::Program current = p.clone();
  const int target = static_cast<int>(
      rng.uniformInt(1, std::max(1, opts.maxSteps)));

  for (int slot = 0; slot < target; ++slot) {
    bool placed = false;
    for (int attempt = 0; attempt < opts.maxDrawsPerStep && !placed;
         ++attempt) {
      const BandFacts facts = bandFacts(current);
      TransformStep step;
      switch (rng.uniformInt(0, 6)) {
      case 0: { // tile, sizes from per-loop ParamSpecs (lo=1, hi=trip)
        if (facts.legalTileDepth == 0) break;
        const auto band = static_cast<std::size_t>(
            rng.uniformInt(1, static_cast<std::int64_t>(facts.legalTileDepth)));
        step.kind = TransformStep::Kind::Tile;
        for (std::size_t l = 0; l < band; ++l) {
          const analyzer::ParamSpec spec{
              "t" + std::to_string(l), 1,
              std::max<std::int64_t>(1, facts.trips[l])};
          step.args.push_back(rng.uniformInt(spec.lo, spec.hi));
        }
        break;
      }
      case 1: { // interchange a random permutation of the permutable band
        if (facts.legalTileDepth < 2) break;
        const auto band = static_cast<std::size_t>(
            rng.uniformInt(2, static_cast<std::int64_t>(facts.legalTileDepth)));
        std::vector<std::int64_t> perm(band);
        std::iota(perm.begin(), perm.end(), 0);
        for (std::size_t i = band - 1; i > 0; --i)
          std::swap(perm[i], perm[static_cast<std::size_t>(
                                rng.uniformInt(0, static_cast<std::int64_t>(i)))]);
        step.kind = TransformStep::Kind::Interchange;
        step.args = std::move(perm);
        break;
      }
      case 2:
        step.kind = TransformStep::Kind::Unroll;
        step.args = {rng.uniformInt(2, std::max(2, opts.maxUnroll))};
        break;
      case 3:
        step.kind = TransformStep::Kind::Parallelize;
        step.args = {rng.uniformInt(
            1, std::max<std::int64_t>(
                   1, static_cast<std::int64_t>(facts.nestDepth)))};
        break;
      case 4:
        step.kind = TransformStep::Kind::Fuse;
        break;
      case 5:
        step.kind = TransformStep::Kind::Distribute;
        break;
      case 6: { // the tuner's actual pathway, params from its ParamSpecs
        if (!steps.empty()) break; // skeletons start from untransformed code
        try {
          const auto skeleton =
              analyzer::TransformationSkeleton::build(current, opts.maxThreads);
          step.kind = TransformStep::Kind::Skeleton;
          step.args = {opts.maxThreads};
          for (const auto& spec : skeleton.params())
            step.args.push_back(rng.uniformInt(spec.lo, spec.hi));
        } catch (const support::CheckError&) {
          step.args.clear(); // not skeletonizable; counts as a rejected draw
        }
        break;
      }
      }

      if (step.args.empty() && step.kind != TransformStep::Kind::Fuse &&
          step.kind != TransformStep::Kind::Distribute) {
        if (rejectedDraws != nullptr) ++*rejectedDraws;
        continue;
      }
      try {
        current = applyStep(current, step);
        steps.push_back(std::move(step));
        placed = true;
      } catch (const support::CheckError&) {
        if (rejectedDraws != nullptr) ++*rejectedDraws;
      }
    }
  }
  return steps;
}

} // namespace motune::verify
