// Region analysis and transformation skeletons (paper Fig. 3, labels 1-2).
//
// The analyzer "searches for nested loops and performs a dependency test
// ... to determine the largest subset of loops which can be tiled and
// optionally collapsed, without sacrificing the possibility of
// parallelizing the resulting loop" (paper §IV). The result is a
// TransformationSkeleton: a generic transformation sequence with unbound
// parameters (tile sizes, thread count) that the optimizer instantiates
// into concrete code variants.
#pragma once

#include "analyzer/dependence.h"
#include "ir/program.h"

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace motune::analyzer {

/// Static facts about a tunable region.
struct RegionInfo {
  std::size_t nestDepth = 0;      ///< perfect-nest depth at the root
  std::size_t tileableDepth = 0;  ///< outer fully-permutable band
  bool outerParallelizable = false;
  std::vector<bool> parallelizable; ///< per band level: loop carries no dep
  std::vector<std::string> bandIvs;
  std::vector<std::int64_t> bandTrips; ///< trip counts of the band loops
};

/// Analyzes a region (single loop nest program).
RegionInfo analyzeRegion(const ir::Program& program);

/// Bounds for one unbound skeleton parameter (inclusive).
struct ParamSpec {
  std::string name;
  std::int64_t lo = 1;
  std::int64_t hi = 1;
};

/// A generic, legality-checked transformation sequence with unbound
/// parameters: tile the band with sizes (t_0..t_{d-1}), collapse the two
/// outermost tile loops, parallelize the result. The trailing parameter is
/// always the thread count (consumed by the runtime, not the code
/// transformation), mirroring the paper's combined search problem.
class TransformationSkeleton {
public:
  /// Builds the skeleton for a region on a machine with `maxThreads`
  /// hardware threads. Tile-size upper bounds default to trip/2 — larger
  /// tiles "clearly have little potential to dominate smaller tile sizes"
  /// (paper §V.B.3).
  static TransformationSkeleton build(const ir::Program& program,
                                      int maxThreads);

  /// Parameter specifications: d tile sizes followed by "threads".
  const std::vector<ParamSpec>& params() const { return params_; }

  /// Tile-band depth d (number of tile-size parameters).
  std::size_t tileDepth() const { return params_.size() - 1; }

  /// Instantiates the transformation with concrete parameter values
  /// (tile sizes then thread count; thread count only selects parallel
  /// metadata — the emitted loop structure is thread-count independent).
  ir::Program instantiate(std::span<const std::int64_t> values) const;

  const RegionInfo& region() const { return info_; }
  const ir::Program& base() const { return base_; }

private:
  ir::Program base_;
  RegionInfo info_;
  std::vector<ParamSpec> params_;
  int collapseDepth_ = 1;
};

} // namespace motune::analyzer
