#include "analyzer/access.h"

namespace motune::analyzer {

namespace {

void collectFromExpr(const ir::Expr& e,
                     const std::vector<const ir::Loop*>& loops,
                     std::vector<Access>& out) {
  switch (e.kind) {
  case ir::Expr::Kind::Read:
    out.push_back({e.array, e.subscripts, /*isWrite=*/false, loops});
    return;
  case ir::Expr::Kind::Binary:
    collectFromExpr(*e.lhs, loops, out);
    collectFromExpr(*e.rhs, loops, out);
    return;
  case ir::Expr::Kind::Unary:
    collectFromExpr(*e.lhs, loops, out);
    return;
  case ir::Expr::Kind::Const:
  case ir::Expr::Kind::IvRef:
    return;
  }
}

} // namespace

std::vector<Access> collectAccesses(const ir::Program& program) {
  std::vector<Access> out;
  ir::walk(program, [&](const ir::Stmt& s,
                        const std::vector<const ir::Loop*>& loops) {
    if (s.kind != ir::Stmt::Kind::Assign) return;
    const ir::Assign& a = s.assign;
    collectFromExpr(*a.rhs, loops, out);
    if (a.accumulate)
      out.push_back({a.array, a.subscripts, /*isWrite=*/false, loops});
    out.push_back({a.array, a.subscripts, /*isWrite=*/true, loops});
  });
  return out;
}

} // namespace motune::analyzer
