// Data-dependence analysis over affine loop nests.
//
// This is the paper's dependency test ("based on the polyhedral model",
// §IV): it determines the largest outer loop band that can be tiled and
// whether the outermost loop can be parallelized. We implement a
// separability-based distance-vector test: exact for the (very common)
// case of uniformly generated references whose subscript dimensions each
// involve a single induction variable, and conservative otherwise.
#pragma once

#include "analyzer/access.h"
#include "ir/program.h"

#include <optional>
#include <string>
#include <vector>

namespace motune::analyzer {

/// One component of a dependence distance vector.
struct DistanceEntry {
  enum class Kind {
    Exact, ///< the distance is exactly `value`
    Free,  ///< any value is possible (subject to lexicographic positivity)
  };
  Kind kind = Kind::Free;
  std::int64_t value = 0;

  static DistanceEntry exact(std::int64_t v) {
    return {Kind::Exact, v};
  }
  static DistanceEntry free() { return {Kind::Free, 0}; }
  bool isExact() const { return kind == Kind::Exact; }
};

/// A (possibly conservative) dependence between two references of `array`,
/// expressed as a distance vector over the loops common to both accesses
/// (outermost first).
struct Dependence {
  std::string array;
  std::vector<std::string> loopIvs;
  std::vector<DistanceEntry> distance;
  bool writeToWrite = false;
};

/// Computes all loop-carried and loop-independent dependences of a program
/// whose body is a single perfect or imperfect loop nest. Returns
/// std::nullopt when the subscripts fall outside the analyzable affine
/// subset (callers must then assume the worst).
std::optional<std::vector<Dependence>>
computeDependences(const ir::Program& program);

/// True if loop level `level` (0 = outermost) of the common nest can be
/// executed in parallel: no dependence is carried at that level.
bool isParallelizable(const std::vector<Dependence>& deps, std::size_t level);

/// Largest `depth` such that the outermost `depth` loops form a fully
/// permutable (hence tileable) band: every realizable dependence has
/// non-negative distance in each band dimension.
std::size_t tileableBandDepth(const std::vector<Dependence>& deps,
                              std::size_t nestDepth);

} // namespace motune::analyzer
