#include "analyzer/dependence.h"

#include "support/check.h"

#include <algorithm>

namespace motune::analyzer {

namespace {

/// Longest common prefix of the two loop stacks (pointer identity).
std::vector<const ir::Loop*>
commonLoops(const std::vector<const ir::Loop*>& a,
            const std::vector<const ir::Loop*>& b) {
  std::vector<const ir::Loop*> out;
  for (std::size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
    if (a[i] != b[i]) break;
    out.push_back(a[i]);
  }
  return out;
}

bool ivInLoops(const std::string& iv,
               const std::vector<const ir::Loop*>& loops) {
  return std::any_of(loops.begin(), loops.end(),
                     [&](const ir::Loop* l) { return l->iv == iv; });
}

/// Returns false if the pair provably has no dependence; otherwise fills
/// `entries` (indexed like `common`) with the distance information.
bool solveDistance(const Access& a, const Access& b,
                   const std::vector<const ir::Loop*>& common,
                   std::vector<DistanceEntry>& entries) {
  entries.assign(common.size(), DistanceEntry::free());

  auto indexOfIv = [&](const std::string& iv) -> std::ptrdiff_t {
    for (std::size_t i = 0; i < common.size(); ++i)
      if (common[i]->iv == iv) return static_cast<std::ptrdiff_t>(i);
    return -1;
  };

  MOTUNE_CHECK(a.subscripts.size() == b.subscripts.size());
  for (std::size_t d = 0; d < a.subscripts.size(); ++d) {
    const ir::AffineExpr& fa = a.subscripts[d];
    const ir::AffineExpr& fb = b.subscripts[d];

    // Restrict attention to common induction variables; a dimension that
    // references a non-common iv yields no usable constraint (its value
    // range is re-swept by the private loop), so skip it conservatively.
    bool referencesPrivateIv = false;
    for (const auto& iv : fa.variables())
      if (!ivInLoops(iv, common)) referencesPrivateIv = true;
    for (const auto& iv : fb.variables())
      if (!ivInLoops(iv, common)) referencesPrivateIv = true;
    if (referencesPrivateIv) continue;

    // Uniformly generated? (identical linear parts over the common ivs)
    bool uniform = true;
    std::vector<std::pair<std::string, std::int64_t>> linear;
    for (const auto* loop : common) {
      const std::int64_t ca = fa.coeffOf(loop->iv);
      const std::int64_t cb = fb.coeffOf(loop->iv);
      if (ca != cb) uniform = false;
      if (ca != 0) linear.emplace_back(loop->iv, ca);
    }
    if (!uniform) {
      // Non-uniform references (e.g. A[i][k] vs A[j][k]): no exact distance
      // information; every involved common iv stays Free.
      continue;
    }

    const std::int64_t residual = fa.constantTerm() - fb.constantTerm();
    if (linear.empty()) {
      if (residual != 0) return false; // e.g. A[0] vs A[1]: independent
      continue;
    }
    if (linear.size() == 1) {
      const auto& [iv, coeff] = linear.front();
      if (residual % coeff != 0) return false; // GCD test: no solution
      const std::int64_t delta = residual / coeff;
      const std::ptrdiff_t pos = indexOfIv(iv);
      MOTUNE_CHECK(pos >= 0);
      DistanceEntry& e = entries[static_cast<std::size_t>(pos)];
      if (e.isExact() && e.value != delta) return false; // inconsistent dims
      e = DistanceEntry::exact(delta);
      continue;
    }
    // Multiple ivs in one dimension (e.g. collapsed subscripts): leave the
    // involved entries Free — conservative but safe.
  }
  return true;
}

/// Number of band positions [0, depth) this dependence permits in a fully
/// permutable band. A band is safe iff every realizable distance vector
/// (any lex-positive completion of the entries, in either pair order) has
/// non-negative components inside the band.
///
/// Sound decision rules over the full vector's "active" positions P (Free
/// or Exact non-zero):
///  * P empty: loop-independent, any depth.
///  * |P| == 1: the single carrier can always be sign-normalized positive
///    (the reversed access pair covers the other sign), any depth.
///  * all entries Exact: the realizable orientation is the lex-positive
///    one; the band may extend until the first component that is negative
///    under it.
///  * otherwise (>= 2 active positions, at least one Free): conservative —
///    the band must exclude every active position (a Free entry elsewhere
///    makes both signs of an in-band carrier realizable).
std::size_t permutableDepth(const Dependence& dep, std::size_t nestDepth) {
  const std::size_t n = std::min(dep.distance.size(), nestDepth);
  std::vector<std::size_t> active;
  bool anyFree = false;
  for (std::size_t p = 0; p < dep.distance.size(); ++p) {
    const DistanceEntry& e = dep.distance[p];
    if (!e.isExact()) {
      active.push_back(p);
      anyFree = true;
    } else if (e.value != 0) {
      active.push_back(p);
    }
  }

  if (active.empty() || active.size() == 1) return n;

  if (!anyFree) {
    // All exact: normalize to the lex-positive orientation.
    std::int64_t sign = 0;
    for (const auto& e : dep.distance) {
      if (e.value != 0) {
        sign = e.value > 0 ? 1 : -1;
        break;
      }
    }
    for (std::size_t p = 0; p < n; ++p)
      if (dep.distance[p].value * sign < 0) return p;
    return n;
  }

  return std::min(n, active.front());
}

} // namespace

std::optional<std::vector<Dependence>>
computeDependences(const ir::Program& program) {
  const std::vector<Access> accesses = collectAccesses(program);
  std::vector<Dependence> deps;

  for (std::size_t i = 0; i < accesses.size(); ++i) {
    for (std::size_t j = i; j < accesses.size(); ++j) {
      const Access& a = accesses[i];
      const Access& b = accesses[j];
      if (a.array != b.array) continue;
      if (!a.isWrite && !b.isWrite) continue;
      if (i == j && !a.isWrite) continue;

      const auto common = commonLoops(a.loops, b.loops);
      std::vector<DistanceEntry> entries;
      if (!solveDistance(a, b, common, entries)) continue; // independent

      // A self-pair with an all-zero exact vector is just the access itself.
      if (i == j) {
        const bool allZero = std::all_of(
            entries.begin(), entries.end(),
            [](const DistanceEntry& e) { return e.isExact() && e.value == 0; });
        if (allZero) continue;
      }

      Dependence dep;
      dep.array = a.array;
      for (const auto* loop : common) dep.loopIvs.push_back(loop->iv);
      dep.distance = std::move(entries);
      dep.writeToWrite = a.isWrite && b.isWrite;
      deps.push_back(std::move(dep));
    }
  }
  return deps;
}

bool isParallelizable(const std::vector<Dependence>& deps, std::size_t level) {
  for (const Dependence& dep : deps) {
    if (level >= dep.distance.size()) continue; // level below the common nest
    // Carried at `level` iff the prefix can be all-zero and the entry at
    // `level` can be non-zero.
    bool prefixCanBeZero = true;
    for (std::size_t p = 0; p < level; ++p) {
      const DistanceEntry& e = dep.distance[p];
      if (e.isExact() && e.value != 0) {
        prefixCanBeZero = false;
        break;
      }
    }
    if (!prefixCanBeZero) continue;
    const DistanceEntry& at = dep.distance[level];
    if (!at.isExact() || at.value != 0) return false; // carried here
  }
  return true;
}

std::size_t tileableBandDepth(const std::vector<Dependence>& deps,
                              std::size_t nestDepth) {
  std::size_t depth = nestDepth;
  for (const Dependence& dep : deps)
    depth = std::min(depth, std::max(permutableDepth(dep, nestDepth),
                                     std::size_t{0}));
  return depth;
}

} // namespace motune::analyzer
