// Array-access collection: the raw material for dependence analysis and the
// footprint-based performance model.
#pragma once

#include "ir/program.h"

#include <string>
#include <vector>

namespace motune::analyzer {

/// One static array reference together with its enclosing loop nest.
struct Access {
  std::string array;
  std::vector<ir::AffineExpr> subscripts;
  bool isWrite = false;
  std::vector<const ir::Loop*> loops; ///< enclosing loops, outermost first
};

/// Collects every array read and write in the program, in program order.
/// An accumulate assignment (a += b) contributes both a read and a write
/// of the target.
std::vector<Access> collectAccesses(const ir::Program& program);

} // namespace motune::analyzer
