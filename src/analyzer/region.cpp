#include "analyzer/region.h"

#include "support/check.h"
#include "transform/transforms.h"

#include <algorithm>

namespace motune::analyzer {

RegionInfo analyzeRegion(const ir::Program& program) {
  RegionInfo info;
  const auto nest = transform::perfectNest(program);
  info.nestDepth = nest.size();
  if (nest.empty()) return info;

  const auto deps = computeDependences(program);
  MOTUNE_CHECK_MSG(deps.has_value(), "region is not analyzable");

  info.tileableDepth = tileableBandDepth(*deps, info.nestDepth);
  info.outerParallelizable = isParallelizable(*deps, 0);

  ir::Env env;
  for (std::size_t l = 0; l < info.tileableDepth; ++l) {
    info.bandIvs.push_back(nest[l]->iv);
    info.bandTrips.push_back(ir::tripCount(*nest[l], env));
    info.parallelizable.push_back(isParallelizable(*deps, l));
  }
  return info;
}

TransformationSkeleton TransformationSkeleton::build(
    const ir::Program& program, int maxThreads) {
  MOTUNE_CHECK(maxThreads >= 1);
  TransformationSkeleton sk;
  sk.base_ = program.clone();
  sk.info_ = analyzeRegion(program);
  MOTUNE_CHECK_MSG(sk.info_.tileableDepth >= 1,
                   "region has no tileable band");
  MOTUNE_CHECK_MSG(sk.info_.outerParallelizable,
                   "region's outer loop cannot be parallelized");

  for (std::size_t l = 0; l < sk.info_.tileableDepth; ++l) {
    ParamSpec spec;
    spec.name = "t_" + sk.info_.bandIvs[l];
    spec.lo = 1;
    spec.hi = std::max<std::int64_t>(1, sk.info_.bandTrips[l] / 2);
    sk.params_.push_back(std::move(spec));
  }
  sk.params_.push_back({"threads", 1, maxThreads});

  // Collapse the two outermost tile loops when the band allows it — needed
  // because large tiles leave too few parallel iterations otherwise (paper
  // §IV and §V.B: "collapsing the two outermost tiling loops"). Collapsing
  // is only legal when the second band loop is itself parallelizable
  // (collapsed iterations are distributed jointly).
  sk.collapseDepth_ = (sk.info_.tileableDepth >= 2 &&
                       sk.info_.parallelizable.size() >= 2 &&
                       sk.info_.parallelizable[1])
                          ? 2
                          : 1;
  return sk;
}

ir::Program TransformationSkeleton::instantiate(
    std::span<const std::int64_t> values) const {
  MOTUNE_CHECK_MSG(values.size() == params_.size(),
                   "parameter count mismatch");
  for (std::size_t i = 0; i < values.size(); ++i)
    MOTUNE_CHECK_MSG(values[i] >= params_[i].lo && values[i] <= params_[i].hi,
                     "parameter out of range: " + params_[i].name);

  const std::span<const std::int64_t> tiles =
      values.subspan(0, tileDepth());
  ir::Program tiled = transform::tile(base_, tiles);
  return transform::parallelizeOuter(tiled, collapseDepth_);
}

} // namespace motune::analyzer
