// Multi-level cache hierarchy driven by byte-granular memory traces.
#pragma once

#include "cachesim/cache.h"
#include "machine/machine.h"
#include "support/mem_access.h"

#include <memory>
#include <span>
#include <vector>

namespace motune::cachesim {

/// Inclusive-fetch multi-level hierarchy: an access that misses level l is
/// forwarded to level l+1; a final-level miss counts as DRAM traffic.
class Hierarchy {
public:
  /// Builds one private hierarchy slice as seen by a single thread on
  /// `machine` when `threads` threads are running: shared levels are
  /// modeled by a proportionally smaller per-thread slice (same
  /// associativity, fewer sets — capacity rounded to keep power-of-two
  /// set counts where possible).
  Hierarchy(const machine::MachineModel& machine, int threads);

  /// Accesses `sizeBytes` bytes starting at `addr` (split into lines).
  void access(Addr addr, std::int64_t sizeBytes, bool isWrite);

  /// Batched entry point: processes a whole span of trace records in one
  /// call, so trace-driven validation pays one call per batch instead of a
  /// callback dispatch per access. Equivalent to calling the scalar
  /// access() for each record in order.
  void access(std::span<const support::MemAccess> batch);

  std::size_t levels() const { return caches_.size(); }
  const SetAssocCache& level(std::size_t i) const { return *caches_[i]; }

  /// Misses of the last cache level, i.e. lines fetched from DRAM.
  std::uint64_t dramLines() const;
  std::uint64_t dramBytes() const;

  /// Total simulated access cost in cycles (hit latencies plus DRAM).
  double totalCycles() const;

  void reset();

private:
  std::vector<std::unique_ptr<SetAssocCache>> caches_;
  std::vector<int> hitLatency_;
  std::int64_t lineBytes_;
  int dramLatency_;
};

} // namespace motune::cachesim
