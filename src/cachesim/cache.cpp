#include "cachesim/cache.h"

#include "support/check.h"

#include <algorithm>
#include <limits>

namespace motune::cachesim {

namespace {
constexpr std::uint8_t kValid = 1;
constexpr std::uint8_t kDirty = 2;

bool isPow2(std::int64_t x) { return x > 0 && (x & (x - 1)) == 0; }
} // namespace

SetAssocCache::SetAssocCache(std::int64_t capacityBytes,
                             std::int64_t lineBytes, int associativity)
    : capacityBytes_(capacityBytes), lineBytes_(lineBytes) {
  MOTUNE_CHECK(capacityBytes > 0);
  MOTUNE_CHECK(isPow2(lineBytes));
  const std::int64_t numLines = capacityBytes / lineBytes;
  MOTUNE_CHECK_MSG(numLines * lineBytes == capacityBytes,
                   "capacity must be a multiple of the line size");
  ways_ = associativity <= 0 ? static_cast<int>(numLines) : associativity;
  MOTUNE_CHECK(numLines % ways_ == 0);
  sets_ = static_cast<std::size_t>(numLines / ways_);
  setMask_ = isPow2(static_cast<std::int64_t>(sets_)) ? sets_ - 1 : 0;
  const std::size_t total = sets_ * static_cast<std::size_t>(ways_);
  tags_.assign(total, 0);
  lastUse_.assign(total, 0);
  flags_.assign(total, 0);
}

bool SetAssocCache::access(Addr lineAddr, bool isWrite, bool* evictedDirty) {
  ++clock_;
  ++stats_.accesses;
  if (evictedDirty) *evictedDirty = false;

  const std::size_t base = setOf(lineAddr) * static_cast<std::size_t>(ways_);
  const Addr* tags = tags_.data() + base;
  std::uint8_t* flags = flags_.data() + base;

  std::size_t lru = 0;
  std::uint64_t lruUse = std::numeric_limits<std::uint64_t>::max();
  for (int w = 0; w < ways_; ++w) {
    if ((flags[w] & kValid) && tags[w] == lineAddr) {
      lastUse_[base + w] = clock_;
      flags[w] |= isWrite ? kDirty : 0;
      ++stats_.hits;
      return true;
    }
    if (!(flags[w] & kValid)) {
      lru = static_cast<std::size_t>(w);
      lruUse = 0;
    } else if (lastUse_[base + w] < lruUse) {
      lru = static_cast<std::size_t>(w);
      lruUse = lastUse_[base + w];
    }
  }

  ++stats_.misses;
  const std::size_t victim = base + lru;
  if (flags_[victim] & kValid) {
    ++stats_.evictions;
    if (flags_[victim] & kDirty) {
      ++stats_.writebacks;
      if (evictedDirty) *evictedDirty = true;
    }
  }
  tags_[victim] = lineAddr;
  lastUse_[victim] = clock_;
  flags_[victim] = static_cast<std::uint8_t>(kValid | (isWrite ? kDirty : 0));
  return false;
}

bool SetAssocCache::contains(Addr lineAddr) const {
  const std::size_t base = setOf(lineAddr) * static_cast<std::size_t>(ways_);
  for (int w = 0; w < ways_; ++w)
    if ((flags_[base + w] & kValid) && tags_[base + w] == lineAddr)
      return true;
  return false;
}

void SetAssocCache::reset() {
  std::fill(tags_.begin(), tags_.end(), 0);
  std::fill(lastUse_.begin(), lastUse_.end(), 0);
  std::fill(flags_.begin(), flags_.end(), 0);
  clock_ = 0;
  stats_ = CacheStats{};
}

} // namespace motune::cachesim
