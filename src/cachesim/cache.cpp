#include "cachesim/cache.h"

#include "support/check.h"

#include <limits>

namespace motune::cachesim {

namespace {
bool isPow2(std::int64_t x) { return x > 0 && (x & (x - 1)) == 0; }
} // namespace

SetAssocCache::SetAssocCache(std::int64_t capacityBytes,
                             std::int64_t lineBytes, int associativity)
    : capacityBytes_(capacityBytes), lineBytes_(lineBytes) {
  MOTUNE_CHECK(capacityBytes > 0);
  MOTUNE_CHECK(isPow2(lineBytes));
  const std::int64_t numLines = capacityBytes / lineBytes;
  MOTUNE_CHECK_MSG(numLines * lineBytes == capacityBytes,
                   "capacity must be a multiple of the line size");
  ways_ = associativity <= 0 ? static_cast<int>(numLines) : associativity;
  MOTUNE_CHECK(numLines % ways_ == 0);
  sets_ = static_cast<std::size_t>(numLines / ways_);
  lines_.resize(sets_ * static_cast<std::size_t>(ways_));
}

bool SetAssocCache::access(Addr lineAddr, bool isWrite, bool* evictedDirty) {
  ++clock_;
  ++stats_.accesses;
  if (evictedDirty) *evictedDirty = false;

  const std::size_t set = static_cast<std::size_t>(lineAddr) % sets_;
  Way* begin = &lines_[set * static_cast<std::size_t>(ways_)];

  Way* lru = begin;
  std::uint64_t lruUse = std::numeric_limits<std::uint64_t>::max();
  for (int w = 0; w < ways_; ++w) {
    Way& way = begin[w];
    if (way.valid && way.tag == lineAddr) {
      way.lastUse = clock_;
      way.dirty = way.dirty || isWrite;
      ++stats_.hits;
      return true;
    }
    const std::uint64_t use = way.valid ? way.lastUse : 0;
    if (!way.valid) {
      lru = &way;
      lruUse = 0;
    } else if (use < lruUse) {
      lru = &way;
      lruUse = use;
    }
  }

  ++stats_.misses;
  if (lru->valid) {
    ++stats_.evictions;
    if (lru->dirty) {
      ++stats_.writebacks;
      if (evictedDirty) *evictedDirty = true;
    }
  }
  lru->valid = true;
  lru->tag = lineAddr;
  lru->lastUse = clock_;
  lru->dirty = isWrite;
  return false;
}

bool SetAssocCache::contains(Addr lineAddr) const {
  const std::size_t set = static_cast<std::size_t>(lineAddr) % sets_;
  const Way* begin = &lines_[set * static_cast<std::size_t>(ways_)];
  for (int w = 0; w < ways_; ++w)
    if (begin[w].valid && begin[w].tag == lineAddr) return true;
  return false;
}

void SetAssocCache::reset() {
  for (auto& w : lines_) w = Way{};
  clock_ = 0;
  stats_ = CacheStats{};
}

} // namespace motune::cachesim
