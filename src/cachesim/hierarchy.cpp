#include "cachesim/hierarchy.h"

#include "support/check.h"

#include <algorithm>

namespace motune::cachesim {

Hierarchy::Hierarchy(const machine::MachineModel& machine, int threads) {
  MOTUNE_CHECK(!machine.caches.empty());
  MOTUNE_CHECK(threads >= 1);
  lineBytes_ = machine.caches.front().lineBytes;
  dramLatency_ = machine.dramLatencyCycles;
  for (const auto& spec : machine.caches) {
    std::int64_t capacity = spec.capacityBytes;
    if (spec.sharedPerSocket) {
      // Per-thread slice of the shared level, rounded down to a whole
      // number of sets (line count must stay a multiple of the ways).
      const int sharers = machine.maxThreadsOnOneSocket(threads);
      const std::int64_t ways =
          spec.associativity > 0 ? spec.associativity : 1;
      std::int64_t lines = capacity / spec.lineBytes / sharers;
      lines = std::max<std::int64_t>(ways, lines - lines % ways);
      capacity = lines * spec.lineBytes;
    }
    caches_.push_back(std::make_unique<SetAssocCache>(capacity, spec.lineBytes,
                                                      spec.associativity));
    hitLatency_.push_back(spec.latencyCycles);
  }
}

void Hierarchy::access(Addr addr, std::int64_t sizeBytes, bool isWrite) {
  MOTUNE_CHECK(sizeBytes > 0);
  const Addr first = addr / static_cast<Addr>(lineBytes_);
  const Addr last =
      (addr + static_cast<Addr>(sizeBytes) - 1) / static_cast<Addr>(lineBytes_);
  for (Addr line = first; line <= last; ++line) {
    for (auto& cache : caches_) {
      if (cache->access(line, isWrite)) break; // hit: stop forwarding
    }
  }
}

void Hierarchy::access(std::span<const support::MemAccess> batch) {
  const auto line = static_cast<Addr>(lineBytes_);
  for (const support::MemAccess& a : batch) {
    MOTUNE_CHECK(a.bytes > 0);
    const Addr first = a.addr / line;
    const Addr last = (a.addr + static_cast<Addr>(a.bytes) - 1) / line;
    for (Addr l = first; l <= last; ++l) {
      for (auto& cache : caches_) {
        if (cache->access(l, a.isWrite)) break; // hit: stop forwarding
      }
    }
  }
}

std::uint64_t Hierarchy::dramLines() const {
  return caches_.back()->stats().misses;
}

std::uint64_t Hierarchy::dramBytes() const {
  return dramLines() * static_cast<std::uint64_t>(lineBytes_);
}

double Hierarchy::totalCycles() const {
  double cycles = 0.0;
  for (std::size_t l = 0; l < caches_.size(); ++l) {
    // Every access that reaches level l pays its hit latency.
    cycles += static_cast<double>(caches_[l]->stats().accesses) *
              hitLatency_[l];
  }
  cycles += static_cast<double>(dramLines()) * dramLatency_;
  return cycles;
}

void Hierarchy::reset() {
  for (auto& c : caches_) c->reset();
}

} // namespace motune::cachesim
