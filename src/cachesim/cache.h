// Trace-driven set-associative cache with true-LRU replacement.
//
// The simulator validates the analytical performance model (src/perfmodel)
// on miniaturized kernels: both are fed the same loop nests, and tests
// assert that the model's predicted traffic tracks the simulated miss
// counts. It models a write-allocate, write-back cache.
//
// Storage is structure-of-arrays: the hot tag-match loop scans a dense
// tag array (one cache line of tags covers 8 ways) instead of striding
// over {tag, lastUse, valid, dirty} records, and power-of-two set counts
// are mapped with a mask instead of a modulo.
#pragma once

#include <cstdint>
#include <vector>

namespace motune::cachesim {

using Addr = std::uint64_t;

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t writebacks = 0;

  double missRate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses) /
                               static_cast<double>(accesses);
  }
};

/// One cache level. Associativity <= 0 selects a fully-associative cache.
class SetAssocCache {
public:
  SetAssocCache(std::int64_t capacityBytes, std::int64_t lineBytes,
                int associativity);

  /// Performs a line-granular access; returns true on hit. On a miss the
  /// line is installed (write-allocate) and `evictedDirty` reports whether
  /// a dirty victim was written back.
  bool access(Addr lineAddr, bool isWrite, bool* evictedDirty = nullptr);

  /// Probes without modifying state; true if the line is resident.
  bool contains(Addr lineAddr) const;

  void reset();

  std::int64_t capacityBytes() const { return capacityBytes_; }
  std::int64_t lineBytes() const { return lineBytes_; }
  int associativity() const { return ways_; }
  int numSets() const { return static_cast<int>(sets_); }
  const CacheStats& stats() const { return stats_; }

private:
  std::size_t setOf(Addr lineAddr) const {
    // Shared-level slicing can round the set count off a power of two
    // (hierarchy.cpp); fall back to modulo only then.
    return setMask_ != 0 ? static_cast<std::size_t>(lineAddr) & setMask_
                         : static_cast<std::size_t>(lineAddr) % sets_;
  }

  std::int64_t capacityBytes_;
  std::int64_t lineBytes_;
  int ways_;
  std::size_t sets_;
  std::size_t setMask_ = 0; ///< sets_ - 1 when sets_ is a power of two
  // SoA state, sets_ * ways_ each, row-major by set.
  std::vector<Addr> tags_;
  std::vector<std::uint64_t> lastUse_;
  std::vector<std::uint8_t> flags_; ///< bit 0 = valid, bit 1 = dirty
  std::uint64_t clock_ = 0;
  CacheStats stats_;
};

} // namespace motune::cachesim
