#include "machine/machine.h"

#include "support/check.h"

#include <algorithm>

namespace motune::machine {

int MachineModel::socketsUsed(int threads) const {
  MOTUNE_CHECK(threads >= 1);
  const int capped = std::min(threads, totalCores());
  return (capped + coresPerSocket - 1) / coresPerSocket;
}

int MachineModel::maxThreadsOnOneSocket(int threads) const {
  MOTUNE_CHECK(threads >= 1);
  return std::min(threads, coresPerSocket);
}

double MachineModel::effectiveCapacityPerThread(std::size_t level,
                                                int threads) const {
  MOTUNE_CHECK(level < caches.size());
  const CacheLevelSpec& spec = caches[level];
  if (!spec.sharedPerSocket) return static_cast<double>(spec.capacityBytes);
  const int sharers = maxThreadsOnOneSocket(threads);
  return static_cast<double>(spec.capacityBytes) / std::max(1, sharers);
}

double MachineModel::aggregateDramBandwidthGBs(int threads) const {
  return dramBandwidthGBs * socketsUsed(threads);
}

double MachineModel::memContentionFactor(int threads) const {
  const int onSocket = maxThreadsOnOneSocket(threads);
  const int sockets = socketsUsed(threads);
  return (1.0 + memContentionPerThread * (onSocket - 1)) *
         (1.0 + memContentionPerSocket * (sockets - 1));
}

MachineModel westmere() {
  MachineModel m;
  m.name = "Westmere";
  m.sockets = 4;
  m.coresPerSocket = 10;
  m.freqGHz = 2.4;
  m.flopsPerCyclePerCore = 4.0; // SSE4.2 double precision, mul+add pipes
  m.dramBandwidthGBs = 17.0;    // per socket, sustained
  m.dramLatencyCycles = 220;
  m.memContentionPerThread = 0.0085; // 10-core socket: ~8% at full occupancy
  m.memContentionPerSocket = 0.14;   // QPI / snoop traffic across 4 sockets
  m.corePowerActiveW = 10.0;  // 130W TDP / 10 cores, minus uncore share
  m.socketPowerBaseW = 30.0;
  m.dramEnergyPerByteNj = 0.4;
  m.caches = {
      {"L1", 32 * 1024, 64, 8, 4, false},
      {"L2", 256 * 1024, 64, 8, 11, false},
      {"L3", 30 * 1024 * 1024, 64, 24, 42, true},
  };
  return m;
}

MachineModel barcelona() {
  MachineModel m;
  m.name = "Barcelona";
  m.sockets = 8;
  m.coresPerSocket = 4;
  m.freqGHz = 2.3;
  m.flopsPerCyclePerCore = 4.0; // SSE double precision
  m.dramBandwidthGBs = 8.0;     // per socket, sustained
  m.dramLatencyCycles = 230;
  m.memContentionPerThread = 0.033; // small 2M L3, weak memory subsystem
  m.memContentionPerSocket = 0.13;  // 8-socket HyperTransport fabric
  m.corePowerActiveW = 15.0;  // 95W TDP / 4 cores, 65nm-era efficiency
  m.socketPowerBaseW = 25.0;
  m.dramEnergyPerByteNj = 0.6;
  m.caches = {
      {"L1", 64 * 1024, 64, 2, 3, false},
      {"L2", 512 * 1024, 64, 16, 15, false},
      {"L3", 2 * 1024 * 1024, 64, 32, 40, true},
  };
  return m;
}

std::vector<int> evaluatedThreadCounts(const MachineModel& m) {
  if (m.name == "Westmere") return {1, 5, 10, 20, 40};
  if (m.name == "Barcelona") return {1, 2, 4, 8, 16, 32};
  // Generic fallback: powers of two up to the core count, plus the maximum.
  std::vector<int> counts;
  for (int t = 1; t < m.totalCores(); t *= 2) counts.push_back(t);
  counts.push_back(m.totalCores());
  return counts;
}

} // namespace motune::machine
