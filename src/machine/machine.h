// Target machine description.
//
// The paper evaluates on two real systems (Table I): a 4-socket Intel Xeon
// E7-4870 ("Westmere") and an 8-socket AMD Opteron 8356 ("Barcelona").
// This module describes such machines — topology, cache hierarchy, compute
// and memory throughput — for the analytical performance model and the
// trace-driven cache simulator, which together stand in for the real
// hardware in this reproduction (see DESIGN.md §1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace motune::machine {

/// One level of the data-cache hierarchy.
struct CacheLevelSpec {
  std::string name;           ///< "L1", "L2", "L3"
  std::int64_t capacityBytes; ///< total capacity of one instance
  std::int64_t lineBytes;     ///< cache line size
  int associativity;          ///< ways; <=0 means fully associative
  int latencyCycles;          ///< access latency on hit at this level
  bool sharedPerSocket;       ///< true: one instance per socket, shared by
                              ///< its cores; false: private per core
};

/// A shared-memory multiprocessor in the paper's experimental-setup sense.
///
/// Thread placement follows the paper's protocol: "all involved threads were
/// bound to individual physical cores such that the resources of one chip
/// are fully utilized before involving an additional processor" — i.e.
/// fill-first (compact) placement, which the helpers below encode.
struct MachineModel {
  std::string name;
  int sockets = 1;
  int coresPerSocket = 1;
  double freqGHz = 1.0;
  double flopsPerCyclePerCore = 2.0;   ///< sustained double-precision
  double dramBandwidthGBs = 10.0;      ///< per-socket sustained bandwidth
  int dramLatencyCycles = 200;
  double forkJoinBaseUs = 3.0;         ///< parallel-region entry cost
  double forkJoinPerThreadUs = 0.15;   ///< additional per-thread cost
  /// Memory-path contention: co-located threads share the L3, memory
  /// controller and (across sockets) the interconnect. Memory time is
  /// scaled by (1 + perThread*(threadsOnSocket-1)) * (1 + perSocket*
  /// (socketsUsed-1)) — the mechanism behind the paper's sub-linear
  /// scaling (Fig. 1, Table III).
  double memContentionPerThread = 0.01;
  double memContentionPerSocket = 0.10;
  /// Power model (for the optional energy objective; paper §III.B.1 lists
  /// "energy consumption" among the objectives f may quantify).
  double corePowerActiveW = 8.0;   ///< per busy core
  double socketPowerBaseW = 25.0;  ///< uncore/static per occupied socket
  double dramEnergyPerByteNj = 0.5; ///< DRAM access energy, nJ per byte
  std::vector<CacheLevelSpec> caches;  ///< ordered L1 -> last level

  int totalCores() const { return sockets * coresPerSocket; }

  /// Number of sockets occupied by `threads` under fill-first placement.
  int socketsUsed(int threads) const;

  /// Threads running on the most-populated socket under fill-first
  /// placement (determines how thin shared caches are sliced).
  int maxThreadsOnOneSocket(int threads) const;

  /// Effective capacity of cache level `level` available to one thread when
  /// `threads` threads run under fill-first placement: private levels keep
  /// their full size, shared levels are divided among the co-located
  /// threads. This is the mechanism behind thread-count-dependent optimal
  /// tile sizes (paper §II, Fig. 2).
  double effectiveCapacityPerThread(std::size_t level, int threads) const;

  /// Aggregate DRAM bandwidth available to `threads` threads (fill-first):
  /// each occupied socket contributes its full memory controller.
  double aggregateDramBandwidthGBs(int threads) const;

  /// Memory contention multiplier for `threads` threads (see the
  /// memContention* fields).
  double memContentionFactor(int threads) const;
};

/// Intel Xeon E7-4870 system: 4 sockets x 10 cores, 32K/256K private,
/// 30M shared L3 per socket (paper Table I).
MachineModel westmere();

/// AMD Opteron 8356 system: 8 sockets x 4 cores, 64K/512K private,
/// 2M shared L3 per socket (paper Table I).
MachineModel barcelona();

/// The thread counts the paper evaluates on each machine (Table II/III).
std::vector<int> evaluatedThreadCounts(const MachineModel& m);

} // namespace motune::machine
