#include "session/session.h"

#include "observe/metrics.h"
#include "support/check.h"

#include <filesystem>

namespace motune::session {

namespace {

constexpr int kFormatVersion = 1;
constexpr const char* kFormatName = "motune-session";

support::Json spaceToJson(const std::vector<tuning::ParamSpec>& space) {
  support::JsonArray out;
  for (const auto& p : space)
    out.emplace_back(support::JsonObject{
        {"name", p.name}, {"lo", p.lo}, {"hi", p.hi}});
  return out;
}

std::vector<tuning::ParamSpec> spaceFromJson(const support::Json& json) {
  std::vector<tuning::ParamSpec> out;
  for (const auto& j : json.asArray()) {
    tuning::ParamSpec p;
    p.name = j.at("name").asString();
    p.lo = j.at("lo").asInt();
    p.hi = j.at("hi").asInt();
    out.push_back(std::move(p));
  }
  return out;
}

} // namespace

support::Json headerToJson(const SessionHeader& header) {
  return support::JsonObject{
      {"type", "header"},
      {"format", kFormatName},
      {"version", header.version},
      {"problem", header.problem},
      {"algorithm", header.algorithm},
      {"seed", std::to_string(header.seed)}, // u64-safe: JSON numbers are doubles
      {"objectives", header.objectives},
      {"space", spaceToJson(header.space)},
      {"algorithm_options", header.algorithmOptions},
  };
}

SessionHeader headerFromJson(const support::Json& json) {
  MOTUNE_CHECK_MSG(json.has("format") &&
                       json.at("format").asString() == kFormatName,
                   "not a motune session journal header");
  SessionHeader h;
  h.version = static_cast<int>(json.at("version").asInt());
  h.problem = json.at("problem").asString();
  h.algorithm = json.at("algorithm").asString();
  h.seed = std::stoull(json.at("seed").asString());
  h.objectives = static_cast<std::size_t>(json.at("objectives").asInt());
  h.space = spaceFromJson(json.at("space"));
  h.algorithmOptions = json.at("algorithm_options");
  return h;
}

void checkCompatible(const SessionHeader& journal,
                     const SessionHeader& current) {
  MOTUNE_CHECK_MSG(journal.version == kFormatVersion,
                   "session journal format version " +
                       std::to_string(journal.version) +
                       " is not supported (expected " +
                       std::to_string(kFormatVersion) + ")");
  MOTUNE_CHECK_MSG(journal.problem == current.problem,
                   "session problem mismatch: journal tuned '" +
                       journal.problem + "', this run tunes '" +
                       current.problem + "'");
  MOTUNE_CHECK_MSG(journal.algorithm == current.algorithm,
                   "session algorithm mismatch: journal used " +
                       journal.algorithm + ", this run uses " +
                       current.algorithm);
  MOTUNE_CHECK_MSG(journal.seed == current.seed,
                   "session seed mismatch: journal used " +
                       std::to_string(journal.seed) + ", this run uses " +
                       std::to_string(current.seed));
  MOTUNE_CHECK_MSG(journal.objectives == current.objectives,
                   "session objective-count mismatch");
  MOTUNE_CHECK_MSG(spaceToJson(journal.space).dump(-1) ==
                       spaceToJson(current.space).dump(-1),
                   "session search-space mismatch (different parameter "
                   "names or ranges)");
  MOTUNE_CHECK_MSG(journal.algorithmOptions.dump(-1) ==
                       current.algorithmOptions.dump(-1),
                   "session algorithm-options mismatch (population, CR/F, "
                   "stop rule, ... must equal the original run's)");
}

bool warmStartCompatible(const SessionHeader& journal,
                         const SessionHeader& current) {
  return journal.version == kFormatVersion &&
         journal.problem == current.problem &&
         journal.objectives == current.objectives &&
         spaceToJson(journal.space).dump(-1) ==
             spaceToJson(current.space).dump(-1);
}

bool sessionExists(const std::string& directory) {
  return std::filesystem::exists(journalPath(directory));
}

ResumeState loadSession(const std::string& directory) {
  const std::vector<support::Json> records =
      readJournal(journalPath(directory));
  MOTUNE_CHECK_MSG(!records.empty(),
                   "empty session journal in " + directory);
  MOTUNE_CHECK_MSG(records.front().has("type") &&
                       records.front().at("type").asString() == "header",
                   "session journal does not start with a header record");

  ResumeState state;
  state.header = headerFromJson(records.front());
  for (std::size_t i = 1; i < records.size(); ++i) {
    const support::Json& r = records[i];
    const std::string& type = r.at("type").asString();
    if (type == "eval") {
      EvalRecord e;
      for (const auto& v : r.at("config").asArray())
        e.config.push_back(v.asInt());
      for (const auto& v : r.at("objectives").asArray())
        e.objectives.push_back(v.asNumber());
      MOTUNE_CHECK_MSG(e.objectives.size() == state.header.objectives,
                       "eval record objective-count mismatch");
      state.evaluations.push_back(std::move(e));
    } else if (type == "checkpoint") {
      state.checkpoint = r.at("state");
      state.checkpointGeneration = static_cast<int>(r.at("generation").asInt());
      ++state.checkpoints;
    } else if (type == "resume") {
      ++state.resumes;
    } else if (type == "finish") {
      state.finished = true;
    } else {
      MOTUNE_CHECK_MSG(type == "header",
                       "unknown session record type: " + type);
      MOTUNE_CHECK_MSG(false, "duplicate header record in session journal");
    }
  }
  return state;
}

SessionWriter::SessionWriter(const std::string& directory,
                             const SessionHeader& header)
    : journal_(journalPath(directory), JournalWriter::Mode::Truncate) {
  journal_.write(headerToJson(header));
}

SessionWriter::SessionWriter(const std::string& directory,
                             const ResumeState& resumed)
    : journal_(journalPath(directory), JournalWriter::Mode::Append) {
  journal_.write(support::JsonObject{
      {"type", "resume"},
      {"recorded_evaluations", resumed.evaluations.size()},
      {"from_generation", resumed.checkpointGeneration},
  });
  observe::MetricsRegistry::global().counter("session.resumes").add();
}

void SessionWriter::recordEvaluation(const tuning::Config& config,
                                     const tuning::Objectives& objectives) {
  support::JsonArray c, o;
  for (std::int64_t v : config) c.emplace_back(v);
  for (double v : objectives) o.emplace_back(v);
  journal_.write(support::JsonObject{
      {"type", "eval"}, {"config", std::move(c)}, {"objectives", std::move(o)}});
  evaluations_.fetch_add(1, std::memory_order_relaxed);
  observe::MetricsRegistry::global().counter("session.evaluations.recorded")
      .add();
}

void SessionWriter::recordCheckpoint(const support::Json& state,
                                     int generation,
                                     std::uint64_t evaluations) {
  journal_.write(support::JsonObject{
      {"type", "checkpoint"},
      {"generation", generation},
      {"evaluations", evaluations},
      {"state", state},
  });
  ++checkpoints_;
  auto& metrics = observe::MetricsRegistry::global();
  metrics.counter("session.checkpoints").add();
  metrics.gauge("session.checkpoint.generation")
      .set(static_cast<double>(generation));
}

void SessionWriter::recordFinish(std::uint64_t evaluations,
                                 std::size_t frontSize, double hypervolume) {
  journal_.write(support::JsonObject{
      {"type", "finish"},
      {"evaluations", evaluations},
      {"front_size", frontSize},
      {"hypervolume", hypervolume},
  });
}

} // namespace motune::session
