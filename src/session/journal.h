// Low-level session-journal I/O: an append-only JSON-lines file that is
// safe to re-read after the writing process was killed at any instant.
//
// Crash model: a SIGKILL/OOM-kill can truncate the file mid-line (the last
// record was partially flushed). readJournal() therefore tolerates exactly
// one unparseable *tail*; garbage in the middle of the file is corruption
// and is reported as an error. Every write is flushed before the call
// returns, so the journal never lags the search by more than the record
// being written.
//
// The record vocabulary and field-by-field format live in
// docs/architecture.md ("Session journal format"); this layer only moves
// parsed JSON values in and out of the file.
#pragma once

#include "support/json.h"

#include <fstream>
#include <mutex>
#include <string>
#include <vector>

namespace motune::session {

/// The journal file inside a session directory.
std::string journalPath(const std::string& directory);

/// All complete records of a journal, in file order. A truncated final
/// line (the crash tail) is silently dropped; an unparseable line that is
/// NOT the tail throws support::CheckError.
std::vector<support::Json> readJournal(const std::string& path);

/// Appending record writer; thread-safe, one flushed line per record.
class JournalWriter {
public:
  enum class Mode {
    Truncate, ///< fresh journal (refuses to overwrite an existing one)
    Append,   ///< continue an existing journal (resume)
  };

  JournalWriter(std::string path, Mode mode);

  void write(const support::Json& record);

  const std::string& path() const { return path_; }
  std::uint64_t recordsWritten() const { return records_; }

private:
  std::string path_;
  std::mutex mutex_;
  std::ofstream out_;
  std::uint64_t records_ = 0;
};

} // namespace motune::session
