#include "session/journal.h"

#include "support/check.h"

#include <filesystem>
#include <sstream>

namespace motune::session {

std::string journalPath(const std::string& directory) {
  return (std::filesystem::path(directory) / "session.jsonl").string();
}

std::vector<support::Json> readJournal(const std::string& path) {
  std::ifstream in(path);
  MOTUNE_CHECK_MSG(in.good(), "cannot open session journal: " + path);

  std::vector<support::Json> records;
  std::string line;
  std::size_t lineNo = 0;
  bool sawBadLine = false;
  std::size_t badLineNo = 0;
  while (std::getline(in, line)) {
    ++lineNo;
    if (line.empty()) continue;
    // A parse failure is only acceptable as the crash-truncated tail: any
    // complete record after it means mid-file corruption.
    MOTUNE_CHECK_MSG(!sawBadLine, "corrupt session journal " + path +
                                      ": unparseable record at line " +
                                      std::to_string(badLineNo) +
                                      " is not the final line");
    try {
      records.push_back(support::Json::parse(line));
    } catch (const support::CheckError&) {
      sawBadLine = true;
      badLineNo = lineNo;
    }
  }
  return records;
}

JournalWriter::JournalWriter(std::string path, Mode mode)
    : path_(std::move(path)) {
  const std::filesystem::path p(path_);
  if (p.has_parent_path()) std::filesystem::create_directories(p.parent_path());
  if (mode == Mode::Truncate) {
    MOTUNE_CHECK_MSG(!std::filesystem::exists(p),
                     "session journal already exists: " + path_ +
                         " (use --resume to continue it, or point "
                         "--checkpoint at a fresh directory)");
    out_.open(path_, std::ios::out | std::ios::trunc);
  } else {
    MOTUNE_CHECK_MSG(std::filesystem::exists(p),
                     "no session journal to resume: " + path_);
    // Crash repair: a kill mid-write leaves a torn final line without a
    // trailing newline. readJournal tolerates it, but only while it stays
    // last — drop it so appended records start on a fresh line and the
    // mid-file corruption check keeps its teeth.
    {
      std::ifstream in(path_, std::ios::binary);
      std::ostringstream buffer;
      buffer << in.rdbuf();
      const std::string content = buffer.str();
      const std::size_t lastNewline = content.rfind('\n');
      const std::size_t keep =
          lastNewline == std::string::npos ? 0 : lastNewline + 1;
      if (keep != content.size()) std::filesystem::resize_file(p, keep);
    }
    out_.open(path_, std::ios::out | std::ios::app);
  }
  MOTUNE_CHECK_MSG(out_.good(), "cannot open session journal for writing: " +
                                    path_);
}

void JournalWriter::write(const support::Json& record) {
  const std::string line = record.dump(-1);
  std::lock_guard lock(mutex_);
  out_ << line << '\n';
  out_.flush();
  MOTUNE_CHECK_MSG(out_.good(), "session journal write failed: " + path_);
  ++records_;
}

} // namespace motune::session
