// Durable tuning sessions: crash-safe persistence of a running RS-GDE3
// search, so a killed tuning run (`motune tune --checkpoint DIR`) resumes
// (`--resume DIR`) bit-identically — same Pareto front, same evaluation
// count — as if it had never been interrupted.
//
// One session = one directory holding an append-only JSONL journal
// (journal.h) that records, in order:
//   * a `header` record binding the journal to one exact search (problem
//     tag, algorithm, seed, search space, algorithm options) — resume
//     refuses a journal whose header does not match the current run;
//   * an `eval` record per *unique* evaluation (config, objectives) — on
//     resume these pre-seed the CountingEvaluator memo, so replayed
//     generations re-use recorded results instead of re-evaluating;
//   * a `checkpoint` record every N generations carrying the serialized
//     RS-GDE3 engine state (population, archive, boundary, RNG position);
//   * a `resume` marker per resumption (provenance);
//   * a `finish` record when the search completes.
//
// Resume = last complete checkpoint + memo pre-seed of every recorded
// evaluation. Because the search is deterministic, generations between the
// checkpoint and the kill replay exactly, hitting the pre-seeded memo, so
// the evaluation count E and the final front match the uninterrupted run
// bit for bit (pinned by tests/session_test.cpp and the kill-resume CI
// job). The full record format is specified field by field in
// docs/architecture.md.
#pragma once

#include "session/journal.h"
#include "tuning/search_space.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>

namespace motune::session {

/// How a tuning run uses sessions; carried inside autotune::TunerOptions.
struct SessionOptions {
  std::string directory;   ///< empty = sessions disabled
  int checkpointEvery = 1; ///< generations between checkpoint records
  bool resume = false;     ///< continue the journal in `directory`
};

/// Identity of a search — everything that must match for a journal to be
/// replayable by the current invocation.
struct SessionHeader {
  int version = 1;         ///< journal format version
  std::string problem;     ///< free-form tag (kernel, machine, N, objectives)
  std::string algorithm;   ///< "rsgde3" | "gde3"
  std::uint64_t seed = 0;
  std::size_t objectives = 0;
  std::vector<tuning::ParamSpec> space;
  support::Json algorithmOptions; ///< opaque blob, compared verbatim
};

support::Json headerToJson(const SessionHeader& header);
SessionHeader headerFromJson(const support::Json& json);

/// MOTUNE_CHECK-fails with a field-level message when the journal header
/// and the current run describe different searches.
void checkCompatible(const SessionHeader& journal,
                     const SessionHeader& current);

/// Relaxed fingerprint match for surrogate warm-starting: the journal's
/// eval records are usable as training data for `current` when the problem
/// tag, objective count and search space agree. Seed, algorithm and
/// algorithm options may differ — a different search over the same problem
/// still measured the same cost surface.
bool warmStartCompatible(const SessionHeader& journal,
                         const SessionHeader& current);

/// One recorded unique evaluation.
struct EvalRecord {
  tuning::Config config;
  tuning::Objectives objectives;
};

/// Everything a resume needs, reconstructed from a journal.
struct ResumeState {
  SessionHeader header;
  std::vector<EvalRecord> evaluations; ///< all recorded unique evaluations
  std::optional<support::Json> checkpoint; ///< last complete engine state
  int checkpointGeneration = 0;
  std::uint64_t checkpoints = 0; ///< checkpoint records seen
  int resumes = 0;               ///< prior resume markers
  bool finished = false;         ///< a finish record is present
};

bool sessionExists(const std::string& directory);

/// Parses `directory`/session.jsonl; tolerates a crash-truncated tail
/// (journal.h). Throws support::CheckError on a missing or corrupt
/// journal.
ResumeState loadSession(const std::string& directory);

/// Record-level writer for one tuning run. Thread-safe; every record is
/// flushed before the call returns. Emits session.* metrics.
class SessionWriter {
public:
  /// Fresh session: creates the directory, writes the header record.
  /// Refuses to overwrite an existing journal.
  SessionWriter(const std::string& directory, const SessionHeader& header);

  /// Resumed session: validates nothing (the caller already did via
  /// checkCompatible), appends a resume marker to the existing journal.
  SessionWriter(const std::string& directory, const ResumeState& resumed);

  /// Unique-evaluation record (CountingEvaluator listener target).
  void recordEvaluation(const tuning::Config& config,
                        const tuning::Objectives& objectives);

  /// Engine-state checkpoint (RSGDE3::serialize output).
  void recordCheckpoint(const support::Json& state, int generation,
                        std::uint64_t evaluations);

  /// Clean-completion marker.
  void recordFinish(std::uint64_t evaluations, std::size_t frontSize,
                    double hypervolume);

  const std::string& path() const { return journal_.path(); }
  std::uint64_t evaluationsRecorded() const { return evaluations_; }
  std::uint64_t checkpointsWritten() const { return checkpoints_; }

private:
  JournalWriter journal_;
  std::atomic<std::uint64_t> evaluations_{0};
  std::uint64_t checkpoints_ = 0;
};

} // namespace motune::session
