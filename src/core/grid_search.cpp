#include "core/grid_search.h"

#include "support/check.h"

#include <algorithm>
#include <cmath>

namespace motune::opt {

std::uint64_t GridSpec::points() const {
  std::uint64_t n = 1;
  for (const auto& dim : values) n *= dim.size();
  return n;
}

std::vector<std::int64_t> geometricValues(std::int64_t lo, std::int64_t hi,
                                          std::size_t count) {
  MOTUNE_CHECK(lo >= 1 && hi >= lo && count >= 1);
  std::vector<std::int64_t> out;
  const double ratio =
      count > 1 ? std::pow(static_cast<double>(hi) / lo,
                           1.0 / static_cast<double>(count - 1))
                : 1.0;
  double x = static_cast<double>(lo);
  for (std::size_t i = 0; i < count; ++i) {
    auto v = static_cast<std::int64_t>(std::llround(x));
    v = std::clamp(v, lo, hi);
    if (out.empty() || v > out.back()) out.push_back(v);
    x = std::max(x * ratio, x + 1.0); // at least +1 to avoid stalling
  }
  if (out.back() != hi) out.push_back(hi);
  return out;
}

GridSearch::GridSearch(tuning::ObjectiveFunction& fn,
                       runtime::ThreadPool& pool, GridSpec spec,
                       bool parallelEvaluation)
    : fn_(fn), pool_(pool), spec_(std::move(spec)),
      parallel_(parallelEvaluation) {
  MOTUNE_CHECK(spec_.values.size() == fn.space().size());
  for (const auto& dim : spec_.values) MOTUNE_CHECK(!dim.empty());
}

OptResult GridSearch::run() {
  // Enumerate the cartesian product.
  std::vector<tuning::Config> configs;
  configs.reserve(spec_.points());
  tuning::Config current(spec_.values.size());
  std::vector<std::size_t> idx(spec_.values.size(), 0);
  bool done = false;
  while (!done) {
    for (std::size_t d = 0; d < idx.size(); ++d)
      current[d] = spec_.values[d][idx[d]];
    configs.push_back(current);
    // Odometer increment, innermost dimension fastest.
    std::size_t d = idx.size();
    for (;;) {
      if (d == 0) {
        done = true;
        break;
      }
      --d;
      if (++idx[d] < spec_.values[d].size()) break;
      idx[d] = 0;
    }
  }

  tuning::CountingEvaluator counter(fn_);
  tuning::BatchEvaluator batch(counter, pool_, parallel_);
  const auto objectives = batch.evaluateAll(configs);

  OptResult res;
  res.population.reserve(configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    std::vector<double> genome(configs[i].begin(), configs[i].end());
    res.population.push_back(
        {std::move(genome), configs[i], objectives[i]});
  }
  res.front = paretoFront(res.population);
  res.evaluations = counter.evaluations();
  res.generations = 1;
  return res;
}

} // namespace motune::opt
