#include "core/testproblems.h"

#include "core/hypervolume.h"
#include "support/check.h"

#include <cmath>

namespace motune::opt {

SyntheticProblem::SyntheticProblem(std::string name, std::size_t vars,
                                   double lo, double hi,
                                   std::size_t objectives, Fn fn,
                                   std::int64_t resolution)
    : name_(std::move(name)), vars_(vars), lo_(lo), hi_(hi), m_(objectives),
      fn_(std::move(fn)), resolution_(resolution) {
  MOTUNE_CHECK(vars >= 1 && resolution >= 2 && hi > lo);
  for (std::size_t v = 0; v < vars_; ++v)
    space_.push_back({"x" + std::to_string(v), 0, resolution_});
}

std::vector<double> SyntheticProblem::decode(const tuning::Config& c) const {
  MOTUNE_CHECK(c.size() == vars_);
  std::vector<double> x(vars_);
  for (std::size_t v = 0; v < vars_; ++v)
    x[v] = lo_ + (hi_ - lo_) * static_cast<double>(c[v]) /
                     static_cast<double>(resolution_);
  return x;
}

tuning::Objectives SyntheticProblem::evaluate(const tuning::Config& config) {
  return fn_(decode(config));
}

SyntheticProblem makeSchaffer() {
  return {"schaffer", 1, -10.0, 10.0, 2, [](const std::vector<double>& x) {
            return tuning::Objectives{x[0] * x[0], (x[0] - 2) * (x[0] - 2)};
          }};
}

SyntheticProblem makeFonseca() {
  return {"fonseca", 3, -4.0, 4.0, 2, [](const std::vector<double>& x) {
            const double a = 1.0 / std::sqrt(3.0);
            double s1 = 0.0, s2 = 0.0;
            for (double xi : x) {
              s1 += (xi - a) * (xi - a);
              s2 += (xi + a) * (xi + a);
            }
            return tuning::Objectives{1.0 - std::exp(-s1),
                                      1.0 - std::exp(-s2)};
          }};
}

namespace {
double zdtG(const std::vector<double>& x) {
  double s = 0.0;
  for (std::size_t i = 1; i < x.size(); ++i) s += x[i];
  return 1.0 + 9.0 * s / static_cast<double>(x.size() - 1);
}
} // namespace

SyntheticProblem makeZDT1() {
  return {"zdt1", 30, 0.0, 1.0, 2, [](const std::vector<double>& x) {
            const double g = zdtG(x);
            return tuning::Objectives{x[0],
                                      g * (1.0 - std::sqrt(x[0] / g))};
          }};
}

SyntheticProblem makeZDT2() {
  return {"zdt2", 30, 0.0, 1.0, 2, [](const std::vector<double>& x) {
            const double g = zdtG(x);
            const double r = x[0] / g;
            return tuning::Objectives{x[0], g * (1.0 - r * r)};
          }};
}

SyntheticProblem makeZDT3() {
  return {"zdt3", 30, 0.0, 1.0, 2, [](const std::vector<double>& x) {
            const double g = zdtG(x);
            const double r = x[0] / g;
            return tuning::Objectives{
                x[0], g * (1.0 - std::sqrt(r) -
                           r * std::sin(10.0 * std::acos(-1.0) * x[0]))};
          }};
}

SyntheticProblem makeZDT6() {
  return {"zdt6", 10, 0.0, 1.0, 2, [](const std::vector<double>& x) {
            const double pi = std::acos(-1.0);
            const double s6 = std::pow(std::sin(6.0 * pi * x[0]), 6.0);
            const double f1 = 1.0 - std::exp(-4.0 * x[0]) * s6;
            double s = 0.0;
            for (std::size_t i = 1; i < x.size(); ++i) s += x[i];
            const double g =
                1.0 + 9.0 * std::pow(s / static_cast<double>(x.size() - 1),
                                     0.25);
            const double r = f1 / g;
            return tuning::Objectives{f1, g * (1.0 - r * r)};
          }};
}

SyntheticProblem makeKursawe() {
  return {"kursawe", 3, -5.0, 5.0, 2, [](const std::vector<double>& x) {
            double f1 = 0.0, f2 = 0.0;
            for (std::size_t i = 0; i + 1 < x.size(); ++i)
              f1 += -10.0 * std::exp(-0.2 * std::sqrt(x[i] * x[i] +
                                                      x[i + 1] * x[i + 1]));
            for (double xi : x)
              f2 += std::pow(std::abs(xi), 0.8) +
                    5.0 * std::sin(xi * xi * xi);
            // Shift into the positive quadrant so the hypervolume metric
            // applies unchanged (f1 in [-20, 0], f2 in [-12, ~26]).
            return tuning::Objectives{f1 + 20.0, f2 + 15.0};
          }};
}

double idealHypervolume(const std::string& problemName) {
  // All values are the exact (or numerically converged, 200k-point
  // parametric sampling) hypervolume of the true Pareto front after
  // normalizing each objective by 1.0 and using the (1, 1) reference.
  // Closed forms: schaffer needs worst = (4, 4): 5/6; zdt1: 2/3;
  // zdt2: 1/3 (see header comments). The sampled fronts below reproduce
  // these to ~1e-5, so one code path serves every problem.
  const std::size_t samples = 200001;
  std::vector<Objectives> pts;
  pts.reserve(samples);

  if (problemName == "schaffer") {
    for (std::size_t i = 0; i < samples; ++i) {
      const double x = 2.0 * static_cast<double>(i) / (samples - 1);
      pts.push_back({x * x / 4.0, (x - 2) * (x - 2) / 4.0}); // worst (4,4)
    }
    return hypervolume2d(std::move(pts), {1.0, 1.0});
  }
  if (problemName == "fonseca") {
    const double a = 1.0 / std::sqrt(3.0);
    for (std::size_t i = 0; i < samples; ++i) {
      const double x = -a + 2.0 * a * static_cast<double>(i) / (samples - 1);
      pts.push_back({1.0 - std::exp(-3.0 * (x - a) * (x - a)),
                     1.0 - std::exp(-3.0 * (x + a) * (x + a))});
    }
    return hypervolume2d(std::move(pts), {1.0, 1.0});
  }
  if (problemName == "zdt1") {
    for (std::size_t i = 0; i < samples; ++i) {
      const double f1 = static_cast<double>(i) / (samples - 1);
      pts.push_back({f1, 1.0 - std::sqrt(f1)});
    }
    return hypervolume2d(std::move(pts), {1.0, 1.0});
  }
  if (problemName == "zdt2") {
    for (std::size_t i = 0; i < samples; ++i) {
      const double f1 = static_cast<double>(i) / (samples - 1);
      pts.push_back({f1, 1.0 - f1 * f1});
    }
    return hypervolume2d(std::move(pts), {1.0, 1.0});
  }
  if (problemName == "zdt6") {
    const double pi = std::acos(-1.0);
    for (std::size_t i = 0; i < samples; ++i) {
      const double x = static_cast<double>(i) / (samples - 1);
      const double f1 =
          1.0 - std::exp(-4.0 * x) * std::pow(std::sin(6.0 * pi * x), 6.0);
      pts.push_back({f1, 1.0 - f1 * f1});
    }
    return hypervolume2d(std::move(pts), {1.0, 1.0});
  }
  MOTUNE_CHECK_MSG(false, "no ideal hypervolume known for " + problemName);
  return 0.0;
}

} // namespace motune::opt
