// GDE3 — Generalized Differential Evolution 3 (Kukkonen & Lampinen 2005),
// the approximation technique inside RS-GDE3 (paper §III.B.3).
//
// DE/rand/1/bin variation exactly as the paper's Algorithm 1, with
// CR = F = 0.5 and a population of 30 by default; trial vectors are
// projected into the current boundary via Boundary::closestTo (line 11).
// Selection: a trial replaces its parent if it dominates it, is discarded
// if dominated, and otherwise both survive — the over-full generation is
// truncated back to the population size by non-dominated sorting and
// crowding distance. Termination: no hypervolume improvement for three
// consecutive generations (paper §III.B.3).
#pragma once

#include "core/hypervolume.h"
#include "core/result.h"
#include "runtime/thread_pool.h"
#include "support/json.h"
#include "support/rng.h"
#include "tuning/evaluator.h"

#include <optional>
#include <set>

namespace motune::tuning {
class Surrogate;
} // namespace motune::tuning

namespace motune::opt {

/// JSON codec of one evaluated individual ({"g": genome, "c": config,
/// "o": objectives}) — shared by the engine checkpoints and the island
/// migrant wire format (docs/search.md).
support::Json individualToJson(const Individual& ind);
Individual individualFromJson(const support::Json& json);

struct GDE3Options {
  std::size_t population = 30;
  double cr = 0.5;
  double f = 0.5;
  int maxGenerations = 100;
  /// Stop after this many consecutive non-improving generations. The paper
  /// states three; with noise-free deterministic evaluations (this
  /// reproduction's machine model) search plateaus are never broken by
  /// measurement jitter, so a slightly larger default patience recovers
  /// the paper's evaluation budgets and front sizes (see DESIGN.md §5).
  int noImproveLimit = 6;
  double improveEpsilon = 1e-6; ///< relative HV gain counting as improvement
  /// Diversity injection: when a generation yields no improvement, this
  /// many dominated members are replaced by fresh random samples from the
  /// current (rough-set-reduced) boundary before the next generation. This
  /// keeps the small population (30) from stagnating in the vast tiling
  /// spaces; 0 disables it.
  std::size_t immigrantsOnStagnation = 5;
  std::uint64_t seed = 1;
  bool parallelEvaluation = true;
  /// Deterministic starting points injected into the initial population
  /// (analytic seeding, src/tuning/seed.h; island rotation,
  /// src/tuning/island.h). The first min(size, population) random members
  /// are overwritten with these configurations AFTER the uniform draws, so
  /// the RNG stream position after initialize() is identical with and
  /// without seeds — seeding redirects where the search starts, it never
  /// reshapes downstream randomness. Seeds beyond the population size are
  /// ignored.
  std::vector<tuning::Config> initialSeeds;
  /// Optional surrogate pre-ranking (src/tuning/surrogate.h). When set, the
  /// engine feeds every full evaluation into the surrogate and, once it is
  /// ready and surrogateKeep < 1, sends only the top ceil(keep * population)
  /// trial offspring per generation to the full evaluation — culled trials
  /// keep their parent. At surrogateKeep == 1 the surrogate only observes
  /// and scores (pure observability mode): the evaluation sequence, fronts
  /// and RNG stream are byte-identical to a surrogate-free run. Not owned;
  /// must outlive the engine. Restore() rebuilds the surrogate
  /// deterministically by replaying the archive over its warm-start base.
  tuning::Surrogate* surrogate = nullptr;
  double surrogateKeep = 1.0;
};

/// Step-wise GDE3 engine. RS-GDE3 drives it one generation at a time,
/// updating the search boundary between generations; run() performs the
/// full loop with the default (static) boundary.
class GDE3 {
public:
  GDE3(tuning::ObjectiveFunction& fn, runtime::ThreadPool& pool,
       GDE3Options options = {});

  /// Samples and evaluates the initial random population over the full
  /// parameter space.
  void initialize();

  /// Replaces the variation boundary (rough-set reduction hook).
  void setBoundary(tuning::Boundary boundary);
  const tuning::Boundary& boundary() const { return boundary_; }

  /// Runs one generation; returns true if the front hypervolume improved.
  bool step();

  /// Full optimization loop: initialize + step until termination.
  OptResult run();

  /// Result snapshot at any point. The front is the non-dominated subset
  /// of ALL evaluated configurations (archive), matching how the baseline
  /// strategies report their solution sets.
  OptResult snapshot() const;

  const std::vector<Individual>& population() const { return population_; }

  /// The top `count` population members by non-dominated rank, ties broken
  /// by descending crowding distance — the emigrant set of the island
  /// model. Deterministic; touches no RNG state.
  std::vector<Individual> selectTop(std::size_t count) const;

  /// Integrates externally evaluated individuals (island immigrants):
  /// migrants whose configuration is not already in the population replace
  /// the worst-ranked members, and every integrated migrant enters the
  /// archive (its objectives were produced by the same deterministic
  /// objective function on the sending island). Touches no RNG state and
  /// does not count toward evaluations() — the sender already paid for
  /// them. Returns the number of migrants integrated.
  std::size_t integrateMigrants(const std::vector<Individual>& migrants);

  int generationsDone() const { return generations_; }
  std::uint64_t evaluations() const { return counter_.evaluations(); }

  /// Live progress accessors (per-generation streaming): best archive-front
  /// hypervolume so far, the latest generation's hypervolume, and the size
  /// of the latest archive front.
  double bestHypervolume() const { return bestHv_; }
  double lastHypervolume() const {
    return hvHistory_.empty() ? 0.0 : hvHistory_.back();
  }
  std::size_t lastFrontSize() const { return lastFrontConfigs_.size(); }

  /// Complete engine state as one JSON document: population, archive,
  /// hypervolume normalization, stagnation bookkeeping, current boundary
  /// and the exact RNG stream position. restore() of this state into a
  /// freshly constructed engine (same objective function, same options)
  /// continues the search bit-identically — the basis of the durable
  /// tuning sessions in src/session/. Only valid after initialize().
  support::Json serialize() const;
  void restore(const support::Json& state);

  /// The memoizing evaluator in front of the objective function. The
  /// session layer pre-seeds it on resume (CountingEvaluator::preload) and
  /// journals unique evaluations through its listener hook.
  tuning::CountingEvaluator& evaluator() { return counter_; }

private:
  std::vector<Individual>
  evaluateAll(std::vector<std::vector<double>> genomes,
              const tuning::Boundary& projection);
  /// Returns the number of immigrants actually injected (telemetry).
  std::size_t injectImmigrants(std::size_t count);
  double frontHypervolume() const;

  tuning::CountingEvaluator counter_;
  runtime::ThreadPool& pool_;
  GDE3Options options_;
  tuning::Boundary fullBoundary_;
  tuning::Boundary boundary_;
  support::Rng rng_;

  std::vector<Individual> population_;
  std::vector<Individual> archive_; ///< every evaluated individual
  std::set<Config> lastFrontConfigs_; ///< archive front of the previous gen
  std::optional<HypervolumeMetric> metric_; ///< fixed after initialization
  double bestHv_ = 0.0;
  int generations_ = 0;
  std::vector<double> hvHistory_;
};

} // namespace motune::opt
