#include "core/random_search.h"

#include "support/check.h"
#include "support/rng.h"

namespace motune::opt {

RandomSearch::RandomSearch(tuning::ObjectiveFunction& fn,
                           runtime::ThreadPool& pool,
                           RandomSearchOptions options)
    : fn_(fn), pool_(pool), options_(options) {
  MOTUNE_CHECK(options.budget >= 1);
}

OptResult RandomSearch::run() {
  const tuning::Boundary bounds = tuning::Boundary::fromSpace(fn_.space());
  support::Rng rng(options_.seed);

  tuning::CountingEvaluator counter(fn_);
  tuning::BatchEvaluator batch(counter, pool_, options_.parallelEvaluation);

  // Draw until `budget` unique configurations were evaluated (duplicates in
  // small spaces would otherwise silently shrink the budget).
  std::vector<Individual> all;
  while (counter.evaluations() < options_.budget) {
    const std::uint64_t missing = options_.budget - counter.evaluations();
    std::vector<tuning::Config> configs;
    std::vector<std::vector<double>> genomes;
    for (std::uint64_t i = 0; i < missing; ++i) {
      std::vector<double> g(bounds.dims());
      for (std::size_t d = 0; d < bounds.dims(); ++d)
        g[d] = rng.uniform(bounds.lo[d], bounds.hi[d]);
      configs.push_back(bounds.closestTo(g));
      genomes.push_back(std::move(g));
    }
    auto objectives = batch.evaluateAll(configs);
    for (std::size_t i = 0; i < configs.size(); ++i)
      all.push_back({std::move(genomes[i]), std::move(configs[i]),
                     std::move(objectives[i])});
    if (all.size() > 4 * options_.budget) break; // tiny space: give up
  }

  OptResult res;
  res.front = paretoFront(all);
  res.population = std::move(all);
  res.evaluations = counter.evaluations();
  res.generations = 1;
  return res;
}

} // namespace motune::opt
