// Rough-set based search-space reduction (paper §III.B.4, Fig. 5).
//
// From the most recent population, the non-dominated solutions mark the
// interesting area; the dominated solutions surrounding them provide the
// boundary coordinates. The reduced space is the largest hyper-rectangle
// limited by dominated points that encloses all non-dominated points.
// Unlike model-based reduction schemes, this requires no domain knowledge —
// only the already-evaluated configurations.
#pragma once

#include "core/pareto.h"
#include "tuning/search_space.h"

#include <span>

namespace motune::opt {

/// Computes the reduced boundary from `population`; `full` bounds the
/// result (and supplies limits along dimensions where no dominated point
/// lies outside the non-dominated span).
tuning::Boundary roughSetReduce(std::span<const Individual> population,
                                const tuning::Boundary& full);

} // namespace motune::opt
