// Hypervolume quality metric (paper §V.B.3, Table VI's V(S) column).
//
// "It computes the normalized volume (in the bi-objective case the area)
// behind a front. The larger V(S), the closer the front could be pushed
// toward the hypothetical ideal (0,0) point", ranging from 0 (worst) to 1
// (unattainable ideal).
#pragma once

#include "core/pareto.h"

#include <vector>

namespace motune::opt {

/// Exact hypervolume of a 2-objective point set w.r.t. reference point
/// `ref` (volume of the region dominated by the set and dominating ref).
/// Points outside the reference box contribute only their clipped part.
double hypervolume2d(std::vector<Objectives> points, const Objectives& ref);

/// Exact n-objective hypervolume by recursive slicing (usable for small
/// fronts / up to ~5 objectives; the framework's experiments are
/// bi-objective, this supports the generic API).
double hypervolumeNd(std::vector<Objectives> points, const Objectives& ref);

/// Normalizes objectives by fixed per-objective worst references and
/// computes V(S) in [0, 1] against the (1,...,1) reference — the paper's
/// normalized metric, comparable across optimizers for a fixed problem.
class HypervolumeMetric {
public:
  /// `worst` must be strictly positive per objective; objective values are
  /// divided by it (the ideal point is the origin).
  explicit HypervolumeMetric(Objectives worst);

  double operator()(const std::vector<Objectives>& points) const;
  double ofFront(const std::vector<Individual>& front) const;

  const Objectives& worst() const { return worst_; }

private:
  Objectives worst_;
};

} // namespace motune::opt
