// NSGA-II (Deb et al. 2002) — not part of the paper, included as an
// additional comparator for the ablation study: it shares the Pareto
// machinery with GDE3 but uses SBX crossover + polynomial mutation and
// binary tournament selection, which lets the benches separate "multi-
// objective evolutionary search" from the specific DE + rough-set design
// the paper proposes.
#pragma once

#include "core/result.h"
#include "runtime/thread_pool.h"
#include "support/rng.h"
#include "tuning/evaluator.h"

namespace motune::opt {

struct NSGA2Options {
  std::size_t population = 30;
  int maxGenerations = 100;
  int noImproveLimit = 3;
  double improveEpsilon = 1e-4;
  double crossoverProb = 0.9;
  double mutationProbPerGene = -1.0; ///< <0 selects 1/dims
  double sbxEta = 15.0;
  double mutationEta = 20.0;
  std::uint64_t seed = 1;
  bool parallelEvaluation = true;
};

class NSGA2 {
public:
  NSGA2(tuning::ObjectiveFunction& fn, runtime::ThreadPool& pool,
        NSGA2Options options = {});
  OptResult run();

private:
  tuning::ObjectiveFunction& fn_;
  runtime::ThreadPool& pool_;
  NSGA2Options options_;
};

} // namespace motune::opt
