#include "core/gde3.h"

#include "observe/metrics.h"
#include "observe/trace.h"
#include "support/check.h"
#include "tuning/surrogate.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <set>

namespace motune::opt {

GDE3::GDE3(tuning::ObjectiveFunction& fn, runtime::ThreadPool& pool,
           GDE3Options options)
    : counter_(fn),
      pool_(pool),
      options_(options),
      fullBoundary_(tuning::Boundary::fromSpace(fn.space())),
      boundary_(fullBoundary_),
      rng_(options.seed) {
  MOTUNE_CHECK(options_.population >= 4); // DE needs 4 distinct members
  MOTUNE_CHECK(options_.cr >= 0.0 && options_.cr <= 1.0);
  MOTUNE_CHECK(options_.f > 0.0);
  MOTUNE_CHECK(options_.surrogateKeep > 0.0 && options_.surrogateKeep <= 1.0);
}

std::vector<Individual>
GDE3::evaluateAll(std::vector<std::vector<double>> genomes,
                  const tuning::Boundary& projection) {
  std::vector<tuning::Config> configs;
  configs.reserve(genomes.size());
  for (const auto& g : genomes) configs.push_back(projection.closestTo(g));

  tuning::BatchEvaluator batch(counter_, pool_, options_.parallelEvaluation);
  std::vector<tuning::Objectives> objectives = batch.evaluateAll(configs);

  std::vector<Individual> out;
  out.reserve(genomes.size());
  for (std::size_t i = 0; i < genomes.size(); ++i)
    out.push_back({std::move(genomes[i]), std::move(configs[i]),
                   std::move(objectives[i])});
  // Every evaluated point enters the archive; the reported Pareto set is
  // the non-dominated subset of everything measured, exactly as for the
  // brute-force and random-search baselines.
  archive_.insert(archive_.end(), out.begin(), out.end());
  // The surrogate learns from the same sequence the archive records, so
  // restore() can rebuild its state by replaying the archive.
  if (options_.surrogate)
    for (const auto& ind : out)
      options_.surrogate->observe(ind.config, ind.objectives);
  return out;
}

void GDE3::initialize() {
  observe::Span span = observe::Tracer::global().span(
      "gde3.initialize",
      {{"population", support::Json(options_.population)},
       {"dims", support::Json(fullBoundary_.dims())}});
  const std::size_t dims = fullBoundary_.dims();
  std::vector<std::vector<double>> genomes;
  genomes.reserve(options_.population);
  for (std::size_t i = 0; i < options_.population; ++i) {
    std::vector<double> g(dims);
    for (std::size_t d = 0; d < dims; ++d)
      g[d] = rng_.uniform(fullBoundary_.lo[d], fullBoundary_.hi[d]);
    genomes.push_back(std::move(g));
  }
  // Analytic/island seeds overwrite the first slots AFTER the draws above,
  // so the RNG stream position is independent of the seed list (see
  // GDE3Options::initialSeeds).
  const std::size_t seeded =
      std::min(options_.initialSeeds.size(), options_.population);
  for (std::size_t i = 0; i < seeded; ++i) {
    const tuning::Config& c = options_.initialSeeds[i];
    MOTUNE_CHECK_MSG(c.size() == dims,
                     "initial seed dimensionality mismatch");
    std::vector<double>& g = genomes[i];
    for (std::size_t d = 0; d < dims; ++d)
      g[d] = static_cast<double>(c[d]);
  }
  population_ = evaluateAll(std::move(genomes), fullBoundary_);

  // Fix the hypervolume normalization from the initial sample: the worst
  // observed value per objective, padded so later (worse) points clip to
  // zero contribution rather than distorting the metric.
  const std::size_t m = population_.front().objectives.size();
  Objectives worst(m, 0.0);
  for (const auto& ind : population_)
    for (std::size_t d = 0; d < m; ++d)
      worst[d] = std::max(worst[d], ind.objectives[d]);
  for (double& w : worst) w = std::max(w * 1.1, 1e-300);
  metric_.emplace(std::move(worst));

  bestHv_ = frontHypervolume();
  hvHistory_.assign(1, bestHv_);
  generations_ = 0;
  span.setAttr("seeds", support::Json(seeded));
  span.setAttr("initial_hv", support::Json(bestHv_));
  observe::MetricsRegistry::global().gauge("gde3.best_hv").set(bestHv_);
}

void GDE3::setBoundary(tuning::Boundary boundary) {
  MOTUNE_CHECK(boundary.dims() == fullBoundary_.dims());
  boundary_ = boundary.intersect(fullBoundary_);
}

double GDE3::frontHypervolume() const {
  MOTUNE_CHECK(metric_.has_value());
  return metric_->ofFront(paretoFront(population_));
}

bool GDE3::step() {
  MOTUNE_CHECK_MSG(!population_.empty(), "initialize() must run first");
  observe::Span span = observe::Tracer::global().span("gde3.generation");
  const std::size_t n = population_.size();
  const std::size_t dims = fullBoundary_.dims();

  // DE/rand/1/bin trial generation (paper Algorithm 1).
  std::vector<std::vector<double>> trials;
  trials.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t b, c, d;
    do b = static_cast<std::size_t>(rng_.uniformInt(0, n - 1)); while (b == i);
    do c = static_cast<std::size_t>(rng_.uniformInt(0, n - 1));
    while (c == i || c == b);
    do d = static_cast<std::size_t>(rng_.uniformInt(0, n - 1));
    while (d == i || d == b || d == c);

    const auto& ga = population_[i].genome;
    const auto& gb = population_[b].genome;
    const auto& gc = population_[c].genome;
    const auto& gd = population_[d].genome;
    const auto forced = static_cast<std::size_t>(
        rng_.uniformInt(0, static_cast<std::int64_t>(dims) - 1));

    std::vector<double> r(dims);
    for (std::size_t k = 0; k < dims; ++k) {
      if (rng_.uniform() < options_.cr || k == forced)
        r[k] = gb[k] + options_.f * (gc[k] - gd[k]);
      else
        r[k] = ga[k];
    }
    trials.push_back(std::move(r));
  }

  // Surrogate pre-ranking: score every projected trial with the cheap
  // model and send only the top ceil(keep * n) to the full evaluation.
  // Scoring never touches rng_, so at keep == 1 (score-but-don't-cull)
  // the evaluation sequence is identical to a surrogate-free generation.
  std::vector<char> culled(n, 0);
  std::size_t culledCount = 0;
  if (options_.surrogate && options_.surrogate->ready()) {
    std::vector<std::pair<double, std::size_t>> ranked;
    ranked.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      double s = options_.surrogate->score(boundary_.closestTo(trials[i]));
      if (std::isnan(s)) s = std::numeric_limits<double>::infinity();
      ranked.emplace_back(s, i);
    }
    const auto keep = std::max<std::size_t>(
        1, static_cast<std::size_t>(std::ceil(
               options_.surrogateKeep * static_cast<double>(n))));
    if (keep < n) {
      std::sort(ranked.begin(), ranked.end()); // ties break on trial index
      for (std::size_t j = keep; j < n; ++j) culled[ranked[j].second] = 1;
      culledCount = n - keep;
      observe::MetricsRegistry::global()
          .counter("tuning.surrogate.culled")
          .add(culledCount);
    }
  }
  std::vector<std::vector<double>> toEval;
  toEval.reserve(n - culledCount);
  for (std::size_t i = 0; i < n; ++i)
    if (!culled[i]) toEval.push_back(std::move(trials[i]));

  std::vector<Individual> offspring = evaluateAll(std::move(toEval), boundary_);

  // GDE3 selection.
  std::vector<Individual> next;
  next.reserve(2 * n);
  std::size_t evaluated = 0;
  for (std::size_t i = 0; i < n; ++i) {
    Individual& parent = population_[i];
    if (culled[i]) { // the surrogate rejected the trial: the parent survives
      next.push_back(std::move(parent));
      continue;
    }
    Individual& trial = offspring[evaluated++];
    if (dominates(trial.objectives, parent.objectives)) {
      next.push_back(std::move(trial));
    } else if (dominates(parent.objectives, trial.objectives) ||
               trial.config == parent.config) {
      next.push_back(std::move(parent));
    } else {
      next.push_back(std::move(parent));
      next.push_back(std::move(trial));
    }
  }
  truncateByRankAndCrowding(next, options_.population);
  population_ = std::move(next);

  ++generations_;
  const double hv = frontHypervolume();
  hvHistory_.push_back(hv);
  const bool hvImproved = hv > bestHv_ * (1.0 + options_.improveEpsilon);
  bestHv_ = std::max(bestHv_, hv);

  // "The solutions do not improve" (paper §III.B.3) is judged on the
  // solution set: a generation improves if the hypervolume grew or the
  // Pareto set of everything evaluated GAINED members (pure replacements
  // at equal quality do not count, keeping the budget close to the
  // paper's evaluation counts).
  std::set<Config> frontConfigs;
  for (const auto& ind : paretoFront(archive_))
    frontConfigs.insert(ind.config);
  const bool frontGrew = frontConfigs.size() > lastFrontConfigs_.size();
  lastFrontConfigs_ = std::move(frontConfigs);
  const bool improved = hvImproved || frontGrew;

  std::size_t immigrants = 0;
  if (!improved && options_.immigrantsOnStagnation > 0)
    immigrants = injectImmigrants(options_.immigrantsOnStagnation);

  // Per-generation telemetry (paper-trajectory attributes): `hv` is the
  // best hypervolume so far (monotone non-decreasing by construction),
  // `gen_hv` the raw population-front value of this generation.
  span.setAttr("gen", support::Json(generations_));
  span.setAttr("hv", support::Json(bestHv_));
  span.setAttr("gen_hv", support::Json(hv));
  span.setAttr("front_size", support::Json(lastFrontConfigs_.size()));
  span.setAttr("immigrants", support::Json(immigrants));
  span.setAttr("boundary_volume", support::Json(boundary_.volume()));
  span.setAttr("improved", support::Json(improved));
  if (options_.surrogate) span.setAttr("culled", support::Json(culledCount));
  auto& metrics = observe::MetricsRegistry::global();
  metrics.counter("gde3.generations").add();
  metrics.gauge("gde3.best_hv").set(bestHv_);
  metrics.gauge("gde3.front_size")
      .set(static_cast<double>(lastFrontConfigs_.size()));
  metrics.gauge("gde3.boundary_volume").set(boundary_.volume());
  if (immigrants > 0) metrics.counter("gde3.immigrants").add(immigrants);
  return improved;
}

std::size_t GDE3::injectImmigrants(std::size_t count) {
  // Replace dominated members (never the first front) with random samples
  // from the current boundary.
  const auto fronts = nonDominatedSort(population_);
  std::vector<std::size_t> replaceable;
  for (std::size_t f = 1; f < fronts.size(); ++f)
    for (std::size_t i : fronts[f]) replaceable.push_back(i);
  if (replaceable.empty()) return 0;

  count = std::min(count, replaceable.size());
  const std::size_t dims = fullBoundary_.dims();
  std::vector<std::vector<double>> genomes;
  std::vector<std::size_t> targets;
  for (std::size_t k = 0; k < count; ++k) {
    const std::size_t pick = static_cast<std::size_t>(
        rng_.uniformInt(0, static_cast<std::int64_t>(replaceable.size()) - 1));
    targets.push_back(replaceable[pick]);
    replaceable.erase(replaceable.begin() + static_cast<std::ptrdiff_t>(pick));

    // Elite transfer: clone a front member and resample one coordinate
    // over its FULL range. Good parameter settings carry over between
    // neighboring regions of the front (e.g. tile sizes across thread
    // counts), so this stretches the front along under-explored axes and
    // keeps regions the rough-set cut excluded reachable (the paper notes
    // the reduced space "may not contain all the solutions within the
    // desired optimal Pareto set"); the DE trials themselves stay confined
    // to the reduced boundary per Algorithm 1.
    std::vector<double> g(dims);
    const std::size_t elite = fronts.front()[static_cast<std::size_t>(
        rng_.uniformInt(0,
                        static_cast<std::int64_t>(fronts.front().size()) - 1))];
    g = population_[elite].genome;
    const auto d = static_cast<std::size_t>(
        rng_.uniformInt(0, static_cast<std::int64_t>(dims) - 1));
    g[d] = rng_.uniform(fullBoundary_.lo[d], fullBoundary_.hi[d] + 1e-9);
    genomes.push_back(std::move(g));
    if (replaceable.empty()) break;
  }
  std::vector<Individual> immigrants =
      evaluateAll(std::move(genomes), fullBoundary_);
  for (std::size_t k = 0; k < immigrants.size(); ++k)
    population_[targets[k]] = std::move(immigrants[k]);
  return immigrants.size();
}

std::vector<Individual> GDE3::selectTop(std::size_t count) const {
  MOTUNE_CHECK_MSG(!population_.empty(), "initialize() must run first");
  std::vector<Individual> pool = population_;
  if (count < pool.size()) truncateByRankAndCrowding(pool, count);
  return pool;
}

std::size_t GDE3::integrateMigrants(const std::vector<Individual>& migrants) {
  MOTUNE_CHECK_MSG(!population_.empty(), "initialize() must run first");
  // Configurations already present keep their local copy: re-integrating
  // them would shrink diversity without adding information.
  std::set<Config> have;
  for (const auto& ind : population_) have.insert(ind.config);
  std::vector<Individual> fresh;
  for (const auto& m : migrants) {
    MOTUNE_CHECK_MSG(m.genome.size() == fullBoundary_.dims() &&
                         m.objectives.size() ==
                             population_.front().objectives.size(),
                     "migrant dimensionality mismatch");
    if (have.insert(m.config).second) fresh.push_back(m);
  }
  if (fresh.empty()) return 0;

  // Worst-first replacement order: fronts from last to first, within a
  // front by ascending crowding distance (stable sort: deterministic).
  const auto fronts = nonDominatedSort(population_);
  std::vector<std::size_t> worstFirst;
  worstFirst.reserve(population_.size());
  for (auto f = fronts.rbegin(); f != fronts.rend(); ++f) {
    const auto dist = crowdingDistance(population_, *f);
    std::vector<std::size_t> order(f->size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                       return dist[a] < dist[b];
                     });
    for (std::size_t k : order) worstFirst.push_back((*f)[k]);
  }

  const std::size_t n = std::min(fresh.size(), population_.size());
  for (std::size_t i = 0; i < n; ++i)
    population_[worstFirst[i]] = fresh[i];
  archive_.insert(archive_.end(), fresh.begin(),
                  fresh.begin() + static_cast<std::ptrdiff_t>(n));
  // Keep the archive-replay invariant: restore() rebuilds the surrogate by
  // replaying the archive, so migrants entering it must be observed too.
  if (options_.surrogate)
    for (std::size_t i = 0; i < n; ++i)
      options_.surrogate->observe(fresh[i].config, fresh[i].objectives);
  return n;
}

OptResult GDE3::run() {
  observe::Span span = observe::Tracer::global().span("gde3.run");
  initialize();
  int flat = 0;
  while (generations_ < options_.maxGenerations && flat < options_.noImproveLimit) {
    flat = step() ? 0 : flat + 1;
  }
  span.setAttr("generations", support::Json(generations_));
  span.setAttr("evaluations", support::Json(evaluations()));
  span.setAttr("hv", support::Json(bestHv_));
  return snapshot();
}

support::Json individualToJson(const Individual& ind) {
  support::JsonArray genome, config, objectives;
  for (double g : ind.genome) genome.emplace_back(g);
  for (std::int64_t c : ind.config) config.emplace_back(c);
  for (double o : ind.objectives) objectives.emplace_back(o);
  return support::JsonObject{{"g", std::move(genome)},
                             {"c", std::move(config)},
                             {"o", std::move(objectives)}};
}

Individual individualFromJson(const support::Json& j) {
  Individual ind;
  for (const auto& v : j.at("g").asArray()) ind.genome.push_back(v.asNumber());
  for (const auto& v : j.at("c").asArray()) ind.config.push_back(v.asInt());
  for (const auto& v : j.at("o").asArray())
    ind.objectives.push_back(v.asNumber());
  return ind;
}

namespace {

// RNG words are full 64-bit values; JSON numbers are doubles and lose
// precision past 2^53, so the stream position travels as hex strings.
std::string hexU64(std::uint64_t v) {
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::uint64_t parseHexU64(const std::string& s) {
  MOTUNE_CHECK_MSG(s.rfind("0x", 0) == 0 && s.size() > 2,
                   "malformed RNG state word: " + s);
  return std::stoull(s.substr(2), nullptr, 16);
}

support::Json boundaryToJson(const tuning::Boundary& b) {
  support::JsonArray lo, hi;
  for (double v : b.lo) lo.emplace_back(v);
  for (double v : b.hi) hi.emplace_back(v);
  return support::JsonObject{{"lo", std::move(lo)}, {"hi", std::move(hi)}};
}

tuning::Boundary boundaryFromJson(const support::Json& j) {
  tuning::Boundary b;
  for (const auto& v : j.at("lo").asArray()) b.lo.push_back(v.asNumber());
  for (const auto& v : j.at("hi").asArray()) b.hi.push_back(v.asNumber());
  MOTUNE_CHECK(b.lo.size() == b.hi.size());
  return b;
}

} // namespace

support::Json GDE3::serialize() const {
  MOTUNE_CHECK_MSG(!population_.empty(),
                   "serialize() requires an initialized engine");
  support::JsonArray population, archive, lastFront, worst, hvHistory;
  for (const auto& ind : population_) population.push_back(individualToJson(ind));
  for (const auto& ind : archive_) archive.push_back(individualToJson(ind));
  for (const auto& config : lastFrontConfigs_) {
    support::JsonArray c;
    for (std::int64_t v : config) c.emplace_back(v);
    lastFront.emplace_back(std::move(c));
  }
  for (double w : metric_->worst()) worst.emplace_back(w);
  for (double hv : hvHistory_) hvHistory.emplace_back(hv);

  const support::Rng::State rng = rng_.state();
  support::JsonArray words;
  for (std::uint64_t w : rng.words) words.emplace_back(hexU64(w));

  return support::JsonObject{
      {"population", std::move(population)},
      {"archive", std::move(archive)},
      {"last_front_configs", std::move(lastFront)},
      {"metric_worst", std::move(worst)},
      {"hv_history", std::move(hvHistory)},
      {"best_hv", bestHv_},
      {"generations", generations_},
      {"boundary", boundaryToJson(boundary_)},
      {"rng",
       support::JsonObject{{"words", std::move(words)},
                           {"gaussian", rng.cachedGaussian},
                           {"has_gaussian", rng.hasCachedGaussian}}},
  };
}

void GDE3::restore(const support::Json& state) {
  population_.clear();
  archive_.clear();
  lastFrontConfigs_.clear();
  for (const auto& j : state.at("population").asArray())
    population_.push_back(individualFromJson(j));
  for (const auto& j : state.at("archive").asArray())
    archive_.push_back(individualFromJson(j));
  for (const auto& j : state.at("last_front_configs").asArray()) {
    Config c;
    for (const auto& v : j.asArray()) c.push_back(v.asInt());
    lastFrontConfigs_.insert(std::move(c));
  }
  MOTUNE_CHECK_MSG(!population_.empty(), "checkpoint has an empty population");

  Objectives worst;
  for (const auto& v : state.at("metric_worst").asArray())
    worst.push_back(v.asNumber());
  metric_.emplace(std::move(worst));

  hvHistory_.clear();
  for (const auto& v : state.at("hv_history").asArray())
    hvHistory_.push_back(v.asNumber());
  bestHv_ = state.at("best_hv").asNumber();
  generations_ = static_cast<int>(state.at("generations").asInt());

  tuning::Boundary boundary = boundaryFromJson(state.at("boundary"));
  MOTUNE_CHECK_MSG(boundary.dims() == fullBoundary_.dims(),
                   "checkpoint boundary dimensionality mismatch");
  boundary_ = std::move(boundary);

  const support::Json& rng = state.at("rng");
  support::Rng::State rngState;
  const auto& words = rng.at("words").asArray();
  MOTUNE_CHECK(words.size() == rngState.words.size());
  for (std::size_t i = 0; i < words.size(); ++i)
    rngState.words[i] = parseHexU64(words[i].asString());
  rngState.cachedGaussian = rng.at("gaussian").asNumber();
  rngState.hasCachedGaussian = rng.at("has_gaussian").asBool();
  rng_.setState(rngState);

  // The surrogate is not serialized: its state is a pure function of the
  // observation sequence, which is exactly the archive (plus any warm-start
  // base the owner preloaded before the engine started). Replay it.
  if (options_.surrogate) {
    options_.surrogate->resetToPreloaded();
    for (const auto& ind : archive_)
      options_.surrogate->observe(ind.config, ind.objectives);
  }

  observe::MetricsRegistry::global().gauge("gde3.best_hv").set(bestHv_);
}

OptResult GDE3::snapshot() const {
  OptResult res;
  res.front = paretoFront(archive_);
  res.population = population_;
  res.evaluations = counter_.evaluations();
  res.generations = generations_;
  res.hvHistory = hvHistory_;
  return res;
}

} // namespace motune::opt
