// Result type shared by all search strategies, carrying the three metrics
// Table VI compares: the solution set S, the evaluation count E and (via
// HypervolumeMetric) V(S).
#pragma once

#include "core/pareto.h"

#include <cstdint>
#include <vector>

namespace motune::opt {

struct OptResult {
  std::vector<Individual> front;      ///< non-dominated solutions found
  std::vector<Individual> population; ///< final population (if applicable)
  std::uint64_t evaluations = 0;      ///< E: unique configurations evaluated
  int generations = 0;                ///< iterations performed
  std::vector<double> hvHistory;      ///< per-generation front hypervolume
};

} // namespace motune::opt
