#include "core/roughset.h"

#include "support/check.h"

#include <algorithm>
#include <limits>

namespace motune::opt {

tuning::Boundary roughSetReduce(std::span<const Individual> population,
                                const tuning::Boundary& full) {
  MOTUNE_CHECK(!population.empty());
  const std::size_t dims = full.dims();

  const auto ndIdx = nonDominatedIndices(population);
  std::vector<bool> isNd(population.size(), false);
  for (std::size_t i : ndIdx) isNd[i] = true;

  // Without dominated witnesses there is nothing to cut away.
  if (ndIdx.size() == population.size()) return full;

  tuning::Boundary reduced = full;
  for (std::size_t d = 0; d < dims; ++d) {
    // Span of the non-dominated solutions along dimension d.
    double ndLo = std::numeric_limits<double>::infinity();
    double ndHi = -std::numeric_limits<double>::infinity();
    for (std::size_t i : ndIdx) {
      const auto v = static_cast<double>(population[i].config[d]);
      ndLo = std::min(ndLo, v);
      ndHi = std::max(ndHi, v);
    }

    // Tightest dominated coordinates strictly outside that span: they
    // become the edges of the largest enclosing hyper-rectangle.
    double cutLo = full.lo[d];
    double cutHi = full.hi[d];
    for (std::size_t i = 0; i < population.size(); ++i) {
      if (isNd[i]) continue;
      const auto v = static_cast<double>(population[i].config[d]);
      if (v < ndLo) cutLo = std::max(cutLo, v);
      if (v > ndHi) cutHi = std::min(cutHi, v);
    }
    reduced.lo[d] = cutLo;
    reduced.hi[d] = cutHi;
  }
  return reduced;
}

} // namespace motune::opt
