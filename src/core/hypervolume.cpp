#include "core/hypervolume.h"

#include "support/check.h"

#include <algorithm>

namespace motune::opt {

double hypervolume2d(std::vector<Objectives> points, const Objectives& ref) {
  MOTUNE_CHECK(ref.size() == 2);
  // Clip and drop points that do not dominate the reference at all.
  std::erase_if(points, [&](const Objectives& p) {
    return p[0] >= ref[0] || p[1] >= ref[1];
  });
  if (points.empty()) return 0.0;
  for (auto& p : points) {
    p[0] = std::max(p[0], 0.0);
    p[1] = std::max(p[1], 0.0);
  }
  // Sweep in ascending f0; each point contributes a rectangle up to the
  // best (lowest) f1 seen so far.
  std::sort(points.begin(), points.end());
  double volume = 0.0;
  double bestF1 = ref[1];
  for (const auto& p : points) {
    if (p[1] < bestF1) {
      volume += (ref[0] - p[0]) * (bestF1 - p[1]);
      bestF1 = p[1];
    }
  }
  return volume;
}

namespace {

/// Recursive slicing on the last objective (exclusive hypervolume sweep).
double hvRecursive(std::vector<Objectives> points, const Objectives& ref) {
  const std::size_t m = ref.size();
  if (m == 2) return hypervolume2d(std::move(points), ref);

  std::erase_if(points, [&](const Objectives& p) {
    for (std::size_t d = 0; d < m; ++d)
      if (p[d] >= ref[d]) return true;
    return false;
  });
  if (points.empty()) return 0.0;

  // Sort ascending by the last objective and sweep upward: the slab
  // [z_i, z_next) is dominated exactly by the points with z <= z_i.
  std::sort(points.begin(), points.end(),
            [m](const Objectives& a, const Objectives& b) {
              return a[m - 1] < b[m - 1];
            });

  Objectives subRef(ref.begin(), ref.end() - 1);
  double volume = 0.0;
  std::vector<Objectives> active;
  for (std::size_t i = 0; i < points.size(); ++i) {
    active.emplace_back(points[i].begin(), points[i].end() - 1);
    const double z = points[i][m - 1];
    const double zNext =
        i + 1 < points.size() ? points[i + 1][m - 1] : ref[m - 1];
    if (zNext > z) volume += (zNext - z) * hvRecursive(active, subRef);
  }
  return volume;
}

} // namespace

double hypervolumeNd(std::vector<Objectives> points, const Objectives& ref) {
  MOTUNE_CHECK(ref.size() >= 2);
  return hvRecursive(std::move(points), ref);
}

HypervolumeMetric::HypervolumeMetric(Objectives worst)
    : worst_(std::move(worst)) {
  for (double w : worst_) MOTUNE_CHECK_MSG(w > 0.0, "worst refs must be > 0");
}

double HypervolumeMetric::operator()(
    const std::vector<Objectives>& points) const {
  std::vector<Objectives> normalized;
  normalized.reserve(points.size());
  for (const auto& p : points) {
    MOTUNE_CHECK(p.size() == worst_.size());
    Objectives q(p.size());
    for (std::size_t d = 0; d < p.size(); ++d) q[d] = p[d] / worst_[d];
    normalized.push_back(std::move(q));
  }
  Objectives ref(worst_.size(), 1.0);
  const double vol = worst_.size() == 2
                         ? hypervolume2d(std::move(normalized), ref)
                         : hypervolumeNd(std::move(normalized), ref);
  return vol; // volume of the unit box is 1, so this is already in [0,1]
}

double HypervolumeMetric::ofFront(const std::vector<Individual>& front) const {
  std::vector<Objectives> pts;
  pts.reserve(front.size());
  for (const auto& ind : front) pts.push_back(ind.objectives);
  return (*this)(pts);
}

} // namespace motune::opt
