#include "core/rsgde3.h"

#include "core/roughset.h"
#include "observe/trace.h"
#include "support/check.h"

namespace motune::opt {

namespace {

GDE3Options innerOptions(const RSGDE3Options& options, int maxGenerations) {
  GDE3Options inner = options.gde3;
  inner.maxGenerations = maxGenerations;
  return inner;
}

} // namespace

RSGDE3::RSGDE3(tuning::ObjectiveFunction& fn, runtime::ThreadPool& pool,
               RSGDE3Options options)
    : options_(options),
      maxGenerations_(options.maxTotalGenerations > 0
                          ? options.maxTotalGenerations
                          : options.gde3.maxGenerations),
      full_(tuning::Boundary::fromSpace(fn.space())),
      engine_(fn, pool, innerOptions(options, maxGenerations_)) {}

/// Rebuilds the reduced boundary and reports the reduction to the trace.
void RSGDE3::reduceAndRecord() {
  engine_.setBoundary(roughSetReduce(engine_.population(), full_));
  observe::Tracer& tracer = observe::Tracer::global();
  if (!tracer.enabled()) return;
  const double volume = engine_.boundary().volume();
  const double fullVolume = full_.volume();
  tracer.event("roughset.reduce",
               {{"gen", support::Json(engine_.generationsDone())},
                {"boundary_volume", support::Json(volume)},
                {"volume_fraction",
                 support::Json(fullVolume > 0 ? volume / fullVolume : 0.0)}});
}

support::Json RSGDE3::serialize() const {
  return support::JsonObject{{"format", "motune-rsgde3-state"},
                             {"version", 1},
                             {"flat", flat_},
                             {"gde3", engine_.serialize()}};
}

void RSGDE3::restore(const support::Json& state) {
  MOTUNE_CHECK_MSG(state.has("format") && state.at("format").asString() ==
                                              "motune-rsgde3-state",
                   "not an RS-GDE3 checkpoint");
  MOTUNE_CHECK_MSG(state.at("version").asInt() == 1,
                   "unsupported RS-GDE3 checkpoint version");
  flat_ = static_cast<int>(state.at("flat").asInt());
  engine_.restore(state.at("gde3"));
}

OptResult RSGDE3::run(const RunHooks* hooks) {
  observe::Span span = observe::Tracer::global().span(
      "rsgde3.run",
      {{"reduction", support::Json(options_.reductionEnabled)},
       {"max_generations", support::Json(maxGenerations_)},
       {"resumed", support::Json(hooks != nullptr &&
                                 hooks->resumeState != nullptr)}});

  const bool checkpointing = hooks != nullptr && hooks->checkpoint != nullptr;
  if (hooks != nullptr && hooks->resumeState != nullptr) {
    restore(*hooks->resumeState);
  } else {
    flat_ = 0;
    engine_.initialize();
    if (options_.reductionEnabled) reduceAndRecord();
    // Generation-0 checkpoint: a kill during the very first generation
    // resumes without repeating the initial population's evaluations.
    if (checkpointing) hooks->checkpoint(serialize(), 0);
  }

  // Loop of Fig. 4: one GDE3 generation, then rebuild the reduced search
  // space from the new population; terminate when generations stop
  // improving the solution set.
  const int every = hooks != nullptr && hooks->checkpointEvery > 0
                        ? hooks->checkpointEvery
                        : 1;
  int sinceCheckpoint = 0;
  while (flat_ < options_.gde3.noImproveLimit &&
         engine_.generationsDone() < maxGenerations_) {
    if (hooks != nullptr && hooks->shouldStop && hooks->shouldStop()) break;
    flat_ = engine_.step() ? 0 : flat_ + 1;
    if (hooks != nullptr && hooks->onGeneration) {
      GenerationProgress progress;
      progress.generation = engine_.generationsDone();
      progress.hypervolume = engine_.bestHypervolume();
      progress.genHypervolume = engine_.lastHypervolume();
      progress.frontSize = engine_.lastFrontSize();
      progress.evaluations = engine_.evaluations();
      hooks->onGeneration(progress);
    }
    if (hooks != nullptr && hooks->onMigrate && hooks->migrateEvery > 0 &&
        engine_.generationsDone() % hooks->migrateEvery == 0)
      hooks->onMigrate(engine_, engine_.generationsDone());
    if (options_.reductionEnabled) reduceAndRecord();
    if (checkpointing && ++sinceCheckpoint >= every) {
      hooks->checkpoint(serialize(), engine_.generationsDone());
      sinceCheckpoint = 0;
    }
  }
  if (checkpointing && sinceCheckpoint > 0)
    hooks->checkpoint(serialize(), engine_.generationsDone());

  OptResult result = engine_.snapshot();
  span.setAttr("generations", support::Json(result.generations));
  span.setAttr("evaluations", support::Json(result.evaluations));
  span.setAttr("front_size", support::Json(result.front.size()));
  return result;
}

} // namespace motune::opt
