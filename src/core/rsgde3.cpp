#include "core/rsgde3.h"

#include "core/roughset.h"

namespace motune::opt {

RSGDE3::RSGDE3(tuning::ObjectiveFunction& fn, runtime::ThreadPool& pool,
               RSGDE3Options options)
    : fn_(fn), pool_(pool), options_(options) {}

OptResult RSGDE3::run() {
  const int maxGens = options_.maxTotalGenerations > 0
                          ? options_.maxTotalGenerations
                          : options_.gde3.maxGenerations;
  GDE3Options inner = options_.gde3;
  inner.maxGenerations = maxGens;
  GDE3 engine(fn_, pool_, inner);
  const tuning::Boundary full = tuning::Boundary::fromSpace(fn_.space());

  engine.initialize();
  if (options_.reductionEnabled)
    engine.setBoundary(roughSetReduce(engine.population(), full));

  // Loop of Fig. 4: one GDE3 generation, then rebuild the reduced search
  // space from the new population; terminate when generations stop
  // improving the solution set.
  int flat = 0;
  while (flat < options_.gde3.noImproveLimit &&
         engine.generationsDone() < maxGens) {
    flat = engine.step() ? 0 : flat + 1;
    if (options_.reductionEnabled)
      engine.setBoundary(roughSetReduce(engine.population(), full));
  }
  return engine.snapshot();
}

} // namespace motune::opt
