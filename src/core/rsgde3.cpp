#include "core/rsgde3.h"

#include "core/roughset.h"
#include "observe/trace.h"

namespace motune::opt {

namespace {

/// Rebuilds the reduced boundary and reports the reduction to the trace.
void reduceAndRecord(GDE3& engine, const tuning::Boundary& full) {
  engine.setBoundary(roughSetReduce(engine.population(), full));
  observe::Tracer& tracer = observe::Tracer::global();
  if (!tracer.enabled()) return;
  const double volume = engine.boundary().volume();
  const double fullVolume = full.volume();
  tracer.event("roughset.reduce",
               {{"gen", support::Json(engine.generationsDone())},
                {"boundary_volume", support::Json(volume)},
                {"volume_fraction",
                 support::Json(fullVolume > 0 ? volume / fullVolume : 0.0)}});
}

} // namespace

RSGDE3::RSGDE3(tuning::ObjectiveFunction& fn, runtime::ThreadPool& pool,
               RSGDE3Options options)
    : fn_(fn), pool_(pool), options_(options) {}

OptResult RSGDE3::run() {
  const int maxGens = options_.maxTotalGenerations > 0
                          ? options_.maxTotalGenerations
                          : options_.gde3.maxGenerations;
  GDE3Options inner = options_.gde3;
  inner.maxGenerations = maxGens;
  GDE3 engine(fn_, pool_, inner);
  const tuning::Boundary full = tuning::Boundary::fromSpace(fn_.space());

  observe::Span span = observe::Tracer::global().span(
      "rsgde3.run",
      {{"reduction", support::Json(options_.reductionEnabled)},
       {"max_generations", support::Json(maxGens)}});

  engine.initialize();
  if (options_.reductionEnabled) reduceAndRecord(engine, full);

  // Loop of Fig. 4: one GDE3 generation, then rebuild the reduced search
  // space from the new population; terminate when generations stop
  // improving the solution set.
  int flat = 0;
  while (flat < options_.gde3.noImproveLimit &&
         engine.generationsDone() < maxGens) {
    flat = engine.step() ? 0 : flat + 1;
    if (options_.reductionEnabled) reduceAndRecord(engine, full);
  }
  OptResult result = engine.snapshot();
  span.setAttr("generations", support::Json(result.generations));
  span.setAttr("evaluations", support::Json(result.evaluations));
  span.setAttr("front_size", support::Json(result.front.size()));
  return result;
}

} // namespace motune::opt
