#include "core/nsga2.h"

#include "core/hypervolume.h"
#include "support/check.h"

#include <algorithm>
#include <cmath>

namespace motune::opt {

namespace {

/// SBX crossover for one gene pair.
std::pair<double, double> sbx(double a, double b, double lo, double hi,
                              double eta, support::Rng& rng) {
  if (std::abs(a - b) < 1e-14) return {a, b};
  const double u = rng.uniform();
  const double beta = u <= 0.5
                          ? std::pow(2.0 * u, 1.0 / (eta + 1.0))
                          : std::pow(1.0 / (2.0 * (1.0 - u)),
                                     1.0 / (eta + 1.0));
  double c1 = 0.5 * ((a + b) - beta * std::abs(b - a));
  double c2 = 0.5 * ((a + b) + beta * std::abs(b - a));
  return {std::clamp(c1, lo, hi), std::clamp(c2, lo, hi)};
}

/// Polynomial mutation for one gene.
double polyMutate(double x, double lo, double hi, double eta,
                  support::Rng& rng) {
  if (hi <= lo) return x;
  const double u = rng.uniform();
  const double delta = u < 0.5
                           ? std::pow(2.0 * u, 1.0 / (eta + 1.0)) - 1.0
                           : 1.0 - std::pow(2.0 * (1.0 - u),
                                            1.0 / (eta + 1.0));
  return std::clamp(x + delta * (hi - lo), lo, hi);
}

} // namespace

NSGA2::NSGA2(tuning::ObjectiveFunction& fn, runtime::ThreadPool& pool,
             NSGA2Options options)
    : fn_(fn), pool_(pool), options_(options) {
  MOTUNE_CHECK(options_.population >= 4 && options_.population % 2 == 0);
}

OptResult NSGA2::run() {
  const tuning::Boundary bounds = tuning::Boundary::fromSpace(fn_.space());
  const std::size_t dims = bounds.dims();
  const std::size_t n = options_.population;
  support::Rng rng(options_.seed);
  const double pm = options_.mutationProbPerGene > 0
                        ? options_.mutationProbPerGene
                        : 1.0 / static_cast<double>(dims);

  tuning::CountingEvaluator counter(fn_);
  tuning::BatchEvaluator batch(counter, pool_, options_.parallelEvaluation);

  auto evaluateGenomes = [&](std::vector<std::vector<double>> genomes) {
    std::vector<tuning::Config> configs;
    configs.reserve(genomes.size());
    for (const auto& g : genomes) configs.push_back(bounds.closestTo(g));
    auto objs = batch.evaluateAll(configs);
    std::vector<Individual> out;
    out.reserve(genomes.size());
    for (std::size_t i = 0; i < genomes.size(); ++i)
      out.push_back({std::move(genomes[i]), std::move(configs[i]),
                     std::move(objs[i])});
    return out;
  };

  // Initial population.
  std::vector<std::vector<double>> genomes;
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> g(dims);
    for (std::size_t d = 0; d < dims; ++d)
      g[d] = rng.uniform(bounds.lo[d], bounds.hi[d]);
    genomes.push_back(std::move(g));
  }
  std::vector<Individual> pop = evaluateGenomes(std::move(genomes));

  // Fixed normalization from the initial sample (as in GDE3).
  Objectives worst(pop.front().objectives.size(), 0.0);
  for (const auto& ind : pop)
    for (std::size_t d = 0; d < worst.size(); ++d)
      worst[d] = std::max(worst[d], ind.objectives[d]);
  for (double& w : worst) w = std::max(w * 1.1, 1e-300);
  const HypervolumeMetric metric(std::move(worst));

  std::vector<double> hvHistory{metric.ofFront(paretoFront(pop))};
  double bestHv = hvHistory.front();
  int flat = 0;
  int gen = 0;

  while (gen < options_.maxGenerations && flat < options_.noImproveLimit) {
    // Rank + crowding for tournament selection.
    const auto fronts = nonDominatedSort(pop);
    std::vector<int> rank(pop.size(), 0);
    std::vector<double> crowd(pop.size(), 0.0);
    for (std::size_t f = 0; f < fronts.size(); ++f) {
      const auto d = crowdingDistance(pop, fronts[f]);
      for (std::size_t k = 0; k < fronts[f].size(); ++k) {
        rank[fronts[f][k]] = static_cast<int>(f);
        crowd[fronts[f][k]] = d[k];
      }
    }
    auto tournament = [&] {
      const auto a = static_cast<std::size_t>(rng.uniformInt(0, pop.size() - 1));
      const auto b = static_cast<std::size_t>(rng.uniformInt(0, pop.size() - 1));
      if (rank[a] != rank[b]) return rank[a] < rank[b] ? a : b;
      return crowd[a] >= crowd[b] ? a : b;
    };

    std::vector<std::vector<double>> offspring;
    offspring.reserve(n);
    while (offspring.size() < n) {
      const auto& p1 = pop[tournament()].genome;
      const auto& p2 = pop[tournament()].genome;
      std::vector<double> c1 = p1;
      std::vector<double> c2 = p2;
      if (rng.uniform() < options_.crossoverProb) {
        for (std::size_t d = 0; d < dims; ++d) {
          if (rng.uniform() < 0.5) continue;
          std::tie(c1[d], c2[d]) = sbx(p1[d], p2[d], bounds.lo[d],
                                       bounds.hi[d], options_.sbxEta, rng);
        }
      }
      for (std::size_t d = 0; d < dims; ++d) {
        if (rng.uniform() < pm)
          c1[d] = polyMutate(c1[d], bounds.lo[d], bounds.hi[d],
                             options_.mutationEta, rng);
        if (rng.uniform() < pm)
          c2[d] = polyMutate(c2[d], bounds.lo[d], bounds.hi[d],
                             options_.mutationEta, rng);
      }
      offspring.push_back(std::move(c1));
      if (offspring.size() < n) offspring.push_back(std::move(c2));
    }

    std::vector<Individual> children = evaluateGenomes(std::move(offspring));
    for (auto& c : children) pop.push_back(std::move(c));
    truncateByRankAndCrowding(pop, n);

    ++gen;
    const double hv = metric.ofFront(paretoFront(pop));
    hvHistory.push_back(hv);
    flat = hv > bestHv * (1.0 + options_.improveEpsilon) ? 0 : flat + 1;
    bestHv = std::max(bestHv, hv);
  }

  OptResult res;
  res.front = paretoFront(pop);
  res.population = std::move(pop);
  res.evaluations = counter.evaluations();
  res.generations = gen;
  res.hvHistory = std::move(hvHistory);
  return res;
}

} // namespace motune::opt
