// Standard multi-objective benchmark problems with analytically known
// Pareto fronts (Schaffer, Fonseca-Fleming, ZDT suite, Kursawe).
//
// These are not in the paper; they validate the optimizer implementations:
// the tests drive GDE3/RS-GDE3/NSGA-II against fronts whose geometry and
// hypervolume are known in closed form. Continuous variables are mapped
// onto an integer grid so the problems exercise the same Config pathway as
// the tuning problems.
#pragma once

#include "tuning/kernel_problem.h" // ObjectiveFunction

#include <functional>
#include <string>

namespace motune::opt {

/// A continuous test problem exposed through the integer Config interface:
/// each variable is discretized into `resolution` + 1 grid steps.
class SyntheticProblem final : public tuning::ObjectiveFunction {
public:
  using Fn = std::function<tuning::Objectives(const std::vector<double>&)>;

  SyntheticProblem(std::string name, std::size_t vars, double lo, double hi,
                   std::size_t objectives, Fn fn,
                   std::int64_t resolution = 10000);

  std::size_t numObjectives() const override { return m_; }
  const std::vector<tuning::ParamSpec>& space() const override {
    return space_;
  }
  tuning::Objectives evaluate(const tuning::Config& config) override;

  /// Decodes a configuration back to continuous variables.
  std::vector<double> decode(const tuning::Config& config) const;

  const std::string& name() const { return name_; }

private:
  std::string name_;
  std::size_t vars_;
  double lo_, hi_;
  std::size_t m_;
  Fn fn_;
  std::int64_t resolution_;
  std::vector<tuning::ParamSpec> space_;
};

// Factories. Each documents its true Pareto front; `idealHypervolume` gives
// the exact normalized hypervolume of the true front under the stated
// normalization (see testproblems.cpp), used as the test target.
SyntheticProblem makeSchaffer();  ///< f = (x^2, (x-2)^2), front x in [0,2]
SyntheticProblem makeFonseca();   ///< 3 vars in [-4,4], concave front
SyntheticProblem makeZDT1();      ///< 30 vars, convex front f2 = 1 - sqrt(f1)
SyntheticProblem makeZDT2();      ///< 30 vars, concave front f2 = 1 - f1^2
SyntheticProblem makeZDT3();      ///< 30 vars, disconnected front
SyntheticProblem makeZDT6();      ///< 10 vars, nonuniform concave front
SyntheticProblem makeKursawe();   ///< 3 vars in [-5,5], disconnected front

/// Exact hypervolume of the true front w.r.t. the normalization used by the
/// optimizer tests (reference box documented per problem in the .cpp).
double idealHypervolume(const std::string& problemName);

} // namespace motune::opt
