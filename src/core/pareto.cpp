#include "core/pareto.h"

#include "support/check.h"

#include <algorithm>
#include <limits>
#include <set>

namespace motune::opt {

bool dominates(const Objectives& a, const Objectives& b) {
  MOTUNE_CHECK(a.size() == b.size() && !a.empty());
  bool strictlyBetter = false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i] > b[i]) return false;
    if (a[i] < b[i]) strictlyBetter = true;
  }
  return strictlyBetter;
}

std::vector<std::size_t> nonDominatedIndices(std::span<const Individual> pop) {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < pop.size(); ++i) {
    bool dominated = false;
    for (std::size_t j = 0; j < pop.size() && !dominated; ++j)
      if (j != i && dominates(pop[j].objectives, pop[i].objectives))
        dominated = true;
    if (!dominated) out.push_back(i);
  }
  return out;
}

std::vector<Individual> paretoFront(std::span<const Individual> pop) {
  std::vector<Individual> out;
  std::set<Config> seen;
  for (std::size_t i : nonDominatedIndices(pop)) {
    if (seen.insert(pop[i].config).second) out.push_back(pop[i]);
  }
  return out;
}

std::vector<std::vector<std::size_t>>
nonDominatedSort(std::span<const Individual> pop) {
  const std::size_t n = pop.size();
  std::vector<std::vector<std::size_t>> dominatesList(n);
  std::vector<int> dominatedBy(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (dominates(pop[i].objectives, pop[j].objectives)) {
        dominatesList[i].push_back(j);
        ++dominatedBy[j];
      } else if (dominates(pop[j].objectives, pop[i].objectives)) {
        dominatesList[j].push_back(i);
        ++dominatedBy[i];
      }
    }
  }

  std::vector<std::vector<std::size_t>> fronts;
  std::vector<std::size_t> current;
  for (std::size_t i = 0; i < n; ++i)
    if (dominatedBy[i] == 0) current.push_back(i);
  while (!current.empty()) {
    std::vector<std::size_t> next;
    for (std::size_t i : current) {
      for (std::size_t j : dominatesList[i]) {
        if (--dominatedBy[j] == 0) next.push_back(j);
      }
    }
    fronts.push_back(std::move(current));
    current = std::move(next);
  }
  return fronts;
}

std::vector<double> crowdingDistance(std::span<const Individual> pop,
                                     const std::vector<std::size_t>& front) {
  const std::size_t n = front.size();
  std::vector<double> dist(n, 0.0);
  if (n == 0) return dist;
  if (n <= 2) {
    std::fill(dist.begin(), dist.end(),
              std::numeric_limits<double>::infinity());
    return dist;
  }
  const std::size_t m = pop[front[0]].objectives.size();
  std::vector<std::size_t> order(n);
  for (std::size_t obj = 0; obj < m; ++obj) {
    for (std::size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return pop[front[a]].objectives[obj] < pop[front[b]].objectives[obj];
    });
    const double lo = pop[front[order.front()]].objectives[obj];
    const double hi = pop[front[order.back()]].objectives[obj];
    dist[order.front()] = std::numeric_limits<double>::infinity();
    dist[order.back()] = std::numeric_limits<double>::infinity();
    if (hi <= lo) continue;
    for (std::size_t k = 1; k + 1 < n; ++k) {
      dist[order[k]] += (pop[front[order[k + 1]]].objectives[obj] -
                         pop[front[order[k - 1]]].objectives[obj]) /
                        (hi - lo);
    }
  }
  return dist;
}

void truncateByRankAndCrowding(std::vector<Individual>& pop,
                               std::size_t target) {
  if (pop.size() <= target) return;
  const auto fronts = nonDominatedSort(pop);
  std::vector<Individual> out;
  out.reserve(target);
  for (const auto& front : fronts) {
    if (out.size() + front.size() <= target) {
      for (std::size_t i : front) out.push_back(std::move(pop[i]));
      if (out.size() == target) break;
      continue;
    }
    // Split front: keep the most crowded-distance-diverse members.
    const auto dist = crowdingDistance(pop, front);
    std::vector<std::size_t> order(front.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return dist[a] > dist[b]; });
    for (std::size_t k = 0; out.size() < target; ++k)
      out.push_back(std::move(pop[front[order[k]]]));
    break;
  }
  pop = std::move(out);
}

} // namespace motune::opt
