// RS-GDE3: the paper's novel multi-objective optimization algorithm
// (§III.B, Fig. 4) — GDE3 generations interleaved with rough-set search
// space reduction. Each iteration generates new configurations with GDE3
// inside the current boundary, then rebuilds the boundary from the new
// population ("we continuously update the reduced search space ... to
// gradually steer the search towards the area where the optimal Pareto set
// is located"). Terminates when results stop improving.
#pragma once

#include "core/gde3.h"

namespace motune::opt {

struct RSGDE3Options {
  GDE3Options gde3;
  bool reductionEnabled = true; ///< false = plain GDE3 (ablation switch)
  int maxTotalGenerations = 0; ///< hard generation cap; 0 = inherit
                               ///< gde3.maxGenerations
};

class RSGDE3 {
public:
  RSGDE3(tuning::ObjectiveFunction& fn, runtime::ThreadPool& pool,
         RSGDE3Options options = {});

  OptResult run();

private:
  tuning::ObjectiveFunction& fn_;
  runtime::ThreadPool& pool_;
  RSGDE3Options options_;
};

} // namespace motune::opt
