// RS-GDE3: the paper's novel multi-objective optimization algorithm
// (§III.B, Fig. 4) — GDE3 generations interleaved with rough-set search
// space reduction. Each iteration generates new configurations with GDE3
// inside the current boundary, then rebuilds the boundary from the new
// population ("we continuously update the reduced search space ... to
// gradually steer the search towards the area where the optimal Pareto set
// is located"). Terminates when results stop improving.
//
// The engine is checkpointable: serialize() captures the complete search
// state (delegating to GDE3::serialize for population/archive/RNG, plus
// the stagnation counter), and run() accepts RunHooks so a persistence
// layer (src/session/) can journal state between generations and resume a
// killed search bit-identically — without core depending on any file I/O.
#pragma once

#include "core/gde3.h"

#include <functional>

namespace motune::opt {

struct RSGDE3Options {
  GDE3Options gde3;
  bool reductionEnabled = true; ///< false = plain GDE3 (ablation switch)
  int maxTotalGenerations = 0; ///< hard generation cap; 0 = inherit
                               ///< gde3.maxGenerations
};

/// Per-generation progress snapshot handed to RunHooks::onGeneration —
/// the live-streaming payload (daemon subscribe verb, `motune top`).
struct GenerationProgress {
  int generation = 0;
  double hypervolume = 0.0;    ///< best archive-front HV so far
  double genHypervolume = 0.0; ///< this generation's HV
  std::size_t frontSize = 0;   ///< archive front size after this generation
  std::uint64_t evaluations = 0;
};

/// Checkpoint/resume callbacks for RSGDE3::run(). All state passes through
/// as opaque JSON so the caller decides where it lives (the session journal
/// writes one JSONL record per checkpoint).
struct RunHooks {
  /// Invoked with serialize()'d state after initialization and after every
  /// checkpointEvery-th generation (plus the final one).
  std::function<void(const support::Json& state, int generation)> checkpoint;
  int checkpointEvery = 1;
  /// When set, run() restores this state instead of initializing — the
  /// engine continues exactly where the serialized search stopped.
  const support::Json* resumeState = nullptr;
  /// Cooperative stop: polled between generations. Returning true ends the
  /// run after the current generation (a final checkpoint is still
  /// written), so a serving layer can cancel an in-flight search without
  /// tearing down its thread. The snapshot returned is the usual partial
  /// result — callers that cancel typically discard it.
  std::function<bool()> shouldStop;
  /// Live telemetry: invoked after every completed generation with the
  /// current search trajectory. Must be cheap and non-blocking — it runs
  /// on the search thread between generations.
  std::function<void(const GenerationProgress&)> onGeneration;
  /// Island-model migration point (src/tuning/island.h): invoked after
  /// every migrateEvery-th generation, between onGeneration and the
  /// rough-set reduction, with direct engine access so the exchange layer
  /// can publish selectTop() emigrants and integrateMigrants() from the
  /// ring neighbor. Runs before the generation's checkpoint, so a resumed
  /// island re-executes an unpersisted migration deterministically (peer
  /// records are immutable once written). 0 disables migration.
  std::function<void(GDE3& engine, int generation)> onMigrate;
  int migrateEvery = 0;
};

class RSGDE3 {
public:
  RSGDE3(tuning::ObjectiveFunction& fn, runtime::ThreadPool& pool,
         RSGDE3Options options = {});

  OptResult run(const RunHooks* hooks = nullptr);

  /// Complete search state: the inner GDE3 engine plus the non-improving
  /// generation counter the stop rule tracks.
  support::Json serialize() const;
  void restore(const support::Json& state);

  /// The inner GDE3 engine (evaluator access for memo pre-seeding and
  /// journaling; result snapshots).
  GDE3& engine() { return engine_; }

private:
  void reduceAndRecord();

  RSGDE3Options options_;
  int maxGenerations_;
  tuning::Boundary full_;
  GDE3 engine_;
  int flat_ = 0; ///< consecutive non-improving generations
};

} // namespace motune::opt
