// Random search baseline (paper §V.B.3): "generates random configurations,
// evaluates them and returns those which are non-dominated". The evaluation
// budget is set to match RS-GDE3's so Table VI/Fig. 9 compare equal effort.
#pragma once

#include "core/result.h"
#include "runtime/thread_pool.h"
#include "tuning/evaluator.h"

#include <cstdint>

namespace motune::opt {

struct RandomSearchOptions {
  std::uint64_t budget = 1000; ///< unique configurations to evaluate
  std::uint64_t seed = 1;
  bool parallelEvaluation = true;
};

class RandomSearch {
public:
  RandomSearch(tuning::ObjectiveFunction& fn, runtime::ThreadPool& pool,
               RandomSearchOptions options = {});
  OptResult run();

private:
  tuning::ObjectiveFunction& fn_;
  runtime::ThreadPool& pool_;
  RandomSearchOptions options_;
};

} // namespace motune::opt
