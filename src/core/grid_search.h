// Brute-force grid search — the paper's "extensive search within a
// necessarily restricted search space" (§V.B.1): evaluate every point of a
// per-dimension value grid (e.g. ~14,000 tile-size combinations times the
// evaluated thread counts for mm) and keep the non-dominated set.
//
// Besides the Pareto front, the result retains every evaluated point — the
// Table II / Table V analyses need the per-thread-count optima and
// cross-application losses, and Fig. 8 plots all points.
#pragma once

#include "core/result.h"
#include "runtime/thread_pool.h"
#include "tuning/evaluator.h"

#include <cstdint>
#include <vector>

namespace motune::opt {

struct GridSpec {
  /// Explicit values per parameter dimension, innermost-last; the cartesian
  /// product is evaluated.
  std::vector<std::vector<std::int64_t>> values;

  std::uint64_t points() const;
};

/// Roughly geometric value ladder in [lo, hi] with about `count` entries
/// (the paper's restricted brute-force grid for tile sizes).
std::vector<std::int64_t> geometricValues(std::int64_t lo, std::int64_t hi,
                                          std::size_t count);

class GridSearch {
public:
  GridSearch(tuning::ObjectiveFunction& fn, runtime::ThreadPool& pool,
             GridSpec spec, bool parallelEvaluation = true);
  OptResult run(); ///< population = all evaluated points

private:
  tuning::ObjectiveFunction& fn_;
  runtime::ThreadPool& pool_;
  GridSpec spec_;
  bool parallel_;
};

} // namespace motune::opt
