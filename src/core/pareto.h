// Pareto-set machinery: dominance, non-dominated sorting, crowding
// distance, and the Individual type shared by every optimizer.
//
// Definitions follow the paper (§III.B.1): configuration c1 dominates c2 if
// it is no worse in every objective and strictly better in at least one;
// a Pareto set is a set of mutually non-dominated configurations.
#pragma once

#include "tuning/search_space.h"

#include <span>
#include <vector>

namespace motune::opt {

using tuning::Config;
using tuning::Objectives;

/// One evaluated configuration. `genome` is the continuous representation
/// the variation operators work on; `config` is its projection onto the
/// integer search space (what was actually evaluated).
struct Individual {
  std::vector<double> genome;
  Config config;
  Objectives objectives;
};

/// True if a dominates b (all objectives minimized).
bool dominates(const Objectives& a, const Objectives& b);

/// Indices of the non-dominated members (first front) of `pop`.
std::vector<std::size_t> nonDominatedIndices(std::span<const Individual> pop);

/// The non-dominated subset itself, with duplicate configurations removed.
std::vector<Individual> paretoFront(std::span<const Individual> pop);

/// Fast non-dominated sort (Deb et al.): partitions indices into fronts,
/// best first.
std::vector<std::vector<std::size_t>>
nonDominatedSort(std::span<const Individual> pop);

/// NSGA-II crowding distance for the members of one front (index-aligned
/// with `front`); boundary points get +infinity.
std::vector<double> crowdingDistance(std::span<const Individual> pop,
                                     const std::vector<std::size_t>& front);

/// Shrinks `pop` to `target` members by rank, breaking ties within the
/// split front by descending crowding distance (GDE3 / NSGA-II truncation).
void truncateByRankAndCrowding(std::vector<Individual>& pop,
                               std::size_t target);

} // namespace motune::opt
