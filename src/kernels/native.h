// Native (compiled C++) kernel implementations.
//
// Reference versions are straightforward loops; tiled versions take the
// tile sizes and thread count at run time and execute through the
// framework's thread pool — exactly what a generated multi-version does,
// minus the source-to-source step. Tests require tiled == reference
// bit-for-bit (the arithmetic reassociation-free loop orders make this
// exact for mm/dsyrk/stencils; n-body accumulates in a fixed j order too).
#pragma once

#include "runtime/thread_pool.h"

#include <cstdint>
#include <vector>

namespace motune::kernels {

struct Tile3 {
  std::int64_t ti = 1;
  std::int64_t tj = 1;
  std::int64_t tk = 1;
};

struct Tile2 {
  std::int64_t ti = 1;
  std::int64_t tj = 1;
};

// --- matrix multiplication (row-major N x N) -------------------------------
void mmReference(const double* a, const double* b, double* c, std::int64_t n);
void mmTiled(const double* a, const double* b, double* c, std::int64_t n,
             Tile3 t, int threads, runtime::ThreadPool& pool);

// --- dsyrk: C += A * A^T ----------------------------------------------------
void dsyrkReference(const double* a, double* c, std::int64_t n);
void dsyrkTiled(const double* a, double* c, std::int64_t n, Tile3 t,
                int threads, runtime::ThreadPool& pool);

// --- jacobi-2d: one 5-point sweep a -> b ------------------------------------
void jacobi2dReference(const double* a, double* b, std::int64_t n);
void jacobi2dTiled(const double* a, double* b, std::int64_t n, Tile2 t,
                   int threads, runtime::ThreadPool& pool);

// --- 3d-stencil: one 27-point sweep a -> b ----------------------------------
void stencil3dReference(const double* a, double* b, std::int64_t n);
void stencil3dTiled(const double* a, double* b, std::int64_t n, Tile3 t,
                    int threads, runtime::ThreadPool& pool);

// --- n-body: naive O(N^2) force accumulation --------------------------------
struct Bodies {
  std::vector<double> x, y, z, fx, fy, fz;

  explicit Bodies(std::size_t n)
      : x(n), y(n), z(n), fx(n, 0.0), fy(n, 0.0), fz(n, 0.0) {}
  std::size_t size() const { return x.size(); }
};

void nbodyReference(Bodies& bodies);
void nbodyTiled(Bodies& bodies, Tile2 t, int threads,
                runtime::ThreadPool& pool);

/// Deterministic pseudo-random initialization shared by tests/benches.
void fillDeterministic(std::vector<double>& data, std::uint64_t seed);

} // namespace motune::kernels
