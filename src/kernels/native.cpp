#include "kernels/native.h"

#include "runtime/parallel_for.h"
#include "support/check.h"

#include <algorithm>
#include <cmath>

namespace motune::kernels {

namespace {

std::int64_t ceilDiv(std::int64_t a, std::int64_t b) { return (a + b - 1) / b; }

void checkTile(std::int64_t t) { MOTUNE_CHECK(t >= 1); }

} // namespace

void fillDeterministic(std::vector<double>& data, std::uint64_t seed) {
  for (std::size_t i = 0; i < data.size(); ++i) {
    std::uint64_t x = seed + 0x9e3779b97f4a7c15ull * (i + 1);
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    x ^= x >> 31;
    data[i] = static_cast<double>(x >> 11) * 0x1.0p-53 - 0.5;
  }
}

// --- mm ---------------------------------------------------------------------

void mmReference(const double* a, const double* b, double* c, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j < n; ++j)
      for (std::int64_t k = 0; k < n; ++k)
        c[i * n + j] += a[i * n + k] * b[k * n + j];
}

void mmTiled(const double* a, const double* b, double* c, std::int64_t n,
             Tile3 t, int threads, runtime::ThreadPool& pool) {
  checkTile(t.ti);
  checkTile(t.tj);
  checkTile(t.tk);
  const std::int64_t nti = ceilDiv(n, t.ti);
  const std::int64_t ntj = ceilDiv(n, t.tj);
  // Collapsed (it, jt) tile space is the parallel loop; each (it, jt) tile
  // owns a disjoint block of C, so the accumulation is race-free and the
  // per-element k order equals the reference order (bit-exact results).
  runtime::parallelForBlocked(
      pool, 0, nti * ntj, threads, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t idx = lo; idx < hi; ++idx) {
          const std::int64_t it = idx / ntj * t.ti;
          const std::int64_t jt = idx % ntj * t.tj;
          const std::int64_t iEnd = std::min(n, it + t.ti);
          const std::int64_t jEnd = std::min(n, jt + t.tj);
          for (std::int64_t kt = 0; kt < n; kt += t.tk) {
            const std::int64_t kEnd = std::min(n, kt + t.tk);
            for (std::int64_t i = it; i < iEnd; ++i)
              for (std::int64_t j = jt; j < jEnd; ++j) {
                double acc = c[i * n + j];
                for (std::int64_t k = kt; k < kEnd; ++k)
                  acc += a[i * n + k] * b[k * n + j];
                c[i * n + j] = acc;
              }
          }
        }
      });
}

// --- dsyrk ------------------------------------------------------------------

void dsyrkReference(const double* a, double* c, std::int64_t n) {
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j < n; ++j)
      for (std::int64_t k = 0; k < n; ++k)
        c[i * n + j] += a[i * n + k] * a[j * n + k];
}

void dsyrkTiled(const double* a, double* c, std::int64_t n, Tile3 t,
                int threads, runtime::ThreadPool& pool) {
  checkTile(t.ti);
  checkTile(t.tj);
  checkTile(t.tk);
  const std::int64_t nti = ceilDiv(n, t.ti);
  const std::int64_t ntj = ceilDiv(n, t.tj);
  runtime::parallelForBlocked(
      pool, 0, nti * ntj, threads, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t idx = lo; idx < hi; ++idx) {
          const std::int64_t it = idx / ntj * t.ti;
          const std::int64_t jt = idx % ntj * t.tj;
          const std::int64_t iEnd = std::min(n, it + t.ti);
          const std::int64_t jEnd = std::min(n, jt + t.tj);
          for (std::int64_t kt = 0; kt < n; kt += t.tk) {
            const std::int64_t kEnd = std::min(n, kt + t.tk);
            for (std::int64_t i = it; i < iEnd; ++i)
              for (std::int64_t j = jt; j < jEnd; ++j) {
                double acc = c[i * n + j];
                for (std::int64_t k = kt; k < kEnd; ++k)
                  acc += a[i * n + k] * a[j * n + k];
                c[i * n + j] = acc;
              }
          }
        }
      });
}

// --- jacobi-2d --------------------------------------------------------------

void jacobi2dReference(const double* a, double* b, std::int64_t n) {
  for (std::int64_t i = 1; i < n - 1; ++i)
    for (std::int64_t j = 1; j < n - 1; ++j)
      b[i * n + j] = 0.2 * (a[i * n + j] + a[(i - 1) * n + j] +
                            a[(i + 1) * n + j] + a[i * n + j - 1] +
                            a[i * n + j + 1]);
}

void jacobi2dTiled(const double* a, double* b, std::int64_t n, Tile2 t,
                   int threads, runtime::ThreadPool& pool) {
  checkTile(t.ti);
  checkTile(t.tj);
  const std::int64_t span = n - 2; // interior points per dimension
  const std::int64_t nti = ceilDiv(span, t.ti);
  const std::int64_t ntj = ceilDiv(span, t.tj);
  runtime::parallelForBlocked(
      pool, 0, nti * ntj, threads, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t idx = lo; idx < hi; ++idx) {
          const std::int64_t it = 1 + idx / ntj * t.ti;
          const std::int64_t jt = 1 + idx % ntj * t.tj;
          const std::int64_t iEnd = std::min(n - 1, it + t.ti);
          const std::int64_t jEnd = std::min(n - 1, jt + t.tj);
          for (std::int64_t i = it; i < iEnd; ++i)
            for (std::int64_t j = jt; j < jEnd; ++j)
              b[i * n + j] = 0.2 * (a[i * n + j] + a[(i - 1) * n + j] +
                                    a[(i + 1) * n + j] + a[i * n + j - 1] +
                                    a[i * n + j + 1]);
        }
      });
}

// --- 3d-stencil -------------------------------------------------------------

void stencil3dReference(const double* a, double* b, std::int64_t n) {
  const double w = 1.0 / 27.0;
  for (std::int64_t i = 1; i < n - 1; ++i)
    for (std::int64_t j = 1; j < n - 1; ++j)
      for (std::int64_t k = 1; k < n - 1; ++k) {
        double acc = 0.0;
        for (std::int64_t di = -1; di <= 1; ++di)
          for (std::int64_t dj = -1; dj <= 1; ++dj)
            for (std::int64_t dk = -1; dk <= 1; ++dk)
              acc += a[((i + di) * n + (j + dj)) * n + (k + dk)];
        b[(i * n + j) * n + k] = w * acc;
      }
}

void stencil3dTiled(const double* a, double* b, std::int64_t n, Tile3 t,
                    int threads, runtime::ThreadPool& pool) {
  checkTile(t.ti);
  checkTile(t.tj);
  checkTile(t.tk);
  const double w = 1.0 / 27.0;
  const std::int64_t span = n - 2;
  const std::int64_t nti = ceilDiv(span, t.ti);
  const std::int64_t ntj = ceilDiv(span, t.tj);
  runtime::parallelForBlocked(
      pool, 0, nti * ntj, threads, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t idx = lo; idx < hi; ++idx) {
          const std::int64_t it = 1 + idx / ntj * t.ti;
          const std::int64_t jt = 1 + idx % ntj * t.tj;
          const std::int64_t iEnd = std::min(n - 1, it + t.ti);
          const std::int64_t jEnd = std::min(n - 1, jt + t.tj);
          for (std::int64_t kt = 1; kt < n - 1; kt += t.tk) {
            const std::int64_t kEnd = std::min(n - 1, kt + t.tk);
            for (std::int64_t i = it; i < iEnd; ++i)
              for (std::int64_t j = jt; j < jEnd; ++j)
                for (std::int64_t k = kt; k < kEnd; ++k) {
                  double acc = 0.0;
                  for (std::int64_t di = -1; di <= 1; ++di)
                    for (std::int64_t dj = -1; dj <= 1; ++dj)
                      for (std::int64_t dk = -1; dk <= 1; ++dk)
                        acc += a[((i + di) * n + (j + dj)) * n + (k + dk)];
                  b[(i * n + j) * n + k] = w * acc;
                }
          }
        }
      });
}

// --- n-body -----------------------------------------------------------------

namespace {
constexpr double kSoftening = 1e-9;

inline void nbodyAccumulate(Bodies& bodies, std::int64_t i, std::int64_t j) {
  const double dx = bodies.x[j] - bodies.x[i];
  const double dy = bodies.y[j] - bodies.y[i];
  const double dz = bodies.z[j] - bodies.z[i];
  const double r2 = dx * dx + dy * dy + dz * dz + kSoftening;
  const double inv = 1.0 / (r2 * std::sqrt(r2));
  bodies.fx[i] += dx * inv;
  bodies.fy[i] += dy * inv;
  bodies.fz[i] += dz * inv;
}
} // namespace

void nbodyReference(Bodies& bodies) {
  const auto n = static_cast<std::int64_t>(bodies.size());
  for (std::int64_t i = 0; i < n; ++i)
    for (std::int64_t j = 0; j < n; ++j) nbodyAccumulate(bodies, i, j);
}

void nbodyTiled(Bodies& bodies, Tile2 t, int threads,
                runtime::ThreadPool& pool) {
  checkTile(t.ti);
  checkTile(t.tj);
  const auto n = static_cast<std::int64_t>(bodies.size());
  const std::int64_t nti = ceilDiv(n, t.ti);
  // Only the i loop is parallel (j carries the force reduction); for each
  // body, j still runs in ascending order -> bit-exact vs. the reference.
  runtime::parallelForBlocked(
      pool, 0, nti, threads, [&](std::int64_t lo, std::int64_t hi) {
        for (std::int64_t itIdx = lo; itIdx < hi; ++itIdx) {
          const std::int64_t it = itIdx * t.ti;
          const std::int64_t iEnd = std::min(n, it + t.ti);
          for (std::int64_t i = it; i < iEnd; ++i)
            for (std::int64_t jt = 0; jt < n; jt += t.tj) {
              const std::int64_t jEnd = std::min(n, jt + t.tj);
              for (std::int64_t j = jt; j < jEnd; ++j)
                nbodyAccumulate(bodies, i, j);
            }
        }
      });
}

} // namespace motune::kernels
