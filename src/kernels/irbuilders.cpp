#include "kernels/kernel.h"

#include "support/check.h"

namespace motune::kernels {

namespace {

using ir::AffineExpr;
using ir::ExprPtr;

AffineExpr v(const std::string& name) { return AffineExpr::var(name); }

ir::Loop mkLoop(const std::string& iv, std::int64_t lo, std::int64_t hi) {
  ir::Loop l;
  l.iv = iv;
  l.lower = AffineExpr::constant(lo);
  l.upper = ir::Bound(AffineExpr::constant(hi));
  l.step = 1;
  return l;
}

/// Builds a loop vector by move (Loop is move-only: its body holds
/// unique_ptrs, so initializer lists cannot be used).
template <typename... L>
std::vector<ir::Loop> loopVec(L&&... loops) {
  std::vector<ir::Loop> v;
  v.reserve(sizeof...(loops));
  (v.push_back(std::move(loops)), ...);
  return v;
}

/// Wraps `stmts` into the nest loops[0] > loops[1] > ... (outermost first).
ir::Program nestProgram(const std::string& name,
                        std::vector<ir::ArrayDecl> arrays,
                        std::vector<ir::Loop> loops,
                        std::vector<ir::StmtPtr> stmts) {
  for (std::size_t l = loops.size(); l-- > 0;) {
    loops[l].body = std::move(stmts);
    stmts.clear();
    stmts.push_back(ir::Stmt::makeLoop(std::move(loops[l])));
  }
  ir::Program p;
  p.name = name;
  p.arrays = std::move(arrays);
  p.body = std::move(stmts);
  return p;
}

} // namespace

ir::Program buildMM(std::int64_t n) {
  MOTUNE_CHECK(n >= 1);
  // for i, j, k: C[i][j] += A[i][k] * B[k][j]   (IJK ordering, paper Fig. 7)
  ir::Assign st;
  st.array = "C";
  st.subscripts = {v("i"), v("j")};
  st.rhs = ir::read("A", {v("i"), v("k")}) * ir::read("B", {v("k"), v("j")});
  st.accumulate = true;

  std::vector<ir::StmtPtr> body;
  body.push_back(ir::Stmt::makeAssign(std::move(st)));
  return nestProgram(
      "mm",
      {{"A", {n, n}, 8}, {"B", {n, n}, 8}, {"C", {n, n}, 8}},
      loopVec(mkLoop("i", 0, n), mkLoop("j", 0, n), mkLoop("k", 0, n)),
      std::move(body));
}

ir::Program buildDsyrk(std::int64_t n) {
  MOTUNE_CHECK(n >= 1);
  // B = A * A^T + B: C[i][j] += A[i][k] * A[j][k] — the on-the-fly
  // transposition removes mm's unaligned B access (paper §V.C).
  ir::Assign st;
  st.array = "C";
  st.subscripts = {v("i"), v("j")};
  st.rhs = ir::read("A", {v("i"), v("k")}) * ir::read("A", {v("j"), v("k")});
  st.accumulate = true;

  std::vector<ir::StmtPtr> body;
  body.push_back(ir::Stmt::makeAssign(std::move(st)));
  return nestProgram(
      "dsyrk",
      {{"A", {n, n}, 8}, {"C", {n, n}, 8}},
      loopVec(mkLoop("i", 0, n), mkLoop("j", 0, n), mkLoop("k", 0, n)),
      std::move(body));
}

ir::Program buildJacobi2d(std::int64_t n) {
  MOTUNE_CHECK(n >= 3);
  // One sweep of the 5-point Jacobi stencil, ping-pong arrays A -> B.
  auto at = [&](std::int64_t di, std::int64_t dj) {
    return ir::read("A", {v("i") + di, v("j") + dj});
  };
  ir::Assign st;
  st.array = "B";
  st.subscripts = {v("i"), v("j")};
  st.rhs = ir::constant(0.2) *
           (at(0, 0) + at(-1, 0) + at(1, 0) + at(0, -1) + at(0, 1));

  std::vector<ir::StmtPtr> body;
  body.push_back(ir::Stmt::makeAssign(std::move(st)));
  return nestProgram(
      "jacobi-2d",
      {{"A", {n, n}, 8}, {"B", {n, n}, 8}},
      loopVec(mkLoop("i", 1, n - 1), mkLoop("j", 1, n - 1)),
      std::move(body));
}

ir::Program buildStencil3d(std::int64_t n) {
  MOTUNE_CHECK(n >= 3);
  // Generic 3x3x3 27-point box stencil, ping-pong arrays A -> B.
  ExprPtr sum;
  for (std::int64_t di = -1; di <= 1; ++di) {
    for (std::int64_t dj = -1; dj <= 1; ++dj) {
      for (std::int64_t dk = -1; dk <= 1; ++dk) {
        ExprPtr term =
            ir::read("A", {v("i") + di, v("j") + dj, v("k") + dk});
        sum = sum ? sum + term : term;
      }
    }
  }
  ir::Assign st;
  st.array = "B";
  st.subscripts = {v("i"), v("j"), v("k")};
  st.rhs = ir::constant(1.0 / 27.0) * sum;

  std::vector<ir::StmtPtr> body;
  body.push_back(ir::Stmt::makeAssign(std::move(st)));
  return nestProgram(
      "3d-stencil",
      {{"A", {n, n, n}, 8}, {"B", {n, n, n}, 8}},
      loopVec(mkLoop("i", 1, n - 1), mkLoop("j", 1, n - 1), mkLoop("k", 1, n - 1)),
      std::move(body));
}

ir::Program buildNBody(std::int64_t n) {
  MOTUNE_CHECK(n >= 2);
  // Naive O(N^2) gravitational force accumulation with softening; the
  // self-interaction (i == j) contributes a zero numerator and is harmless.
  const double eps = 1e-9;
  ExprPtr dx = ir::read("X", {v("j")}) - ir::read("X", {v("i")});
  ExprPtr dy = ir::read("Y", {v("j")}) - ir::read("Y", {v("i")});
  ExprPtr dz = ir::read("Z", {v("j")}) - ir::read("Z", {v("i")});
  ExprPtr r2 = dx * dx + dy * dy + dz * dz + ir::constant(eps);
  ExprPtr inv = ir::constant(1.0) / (r2 * ir::sqrtOf(r2));

  auto accum = [&](const std::string& target, const ExprPtr& numerator) {
    ir::Assign st;
    st.array = target;
    st.subscripts = {v("i")};
    st.rhs = numerator * inv;
    st.accumulate = true;
    return ir::Stmt::makeAssign(std::move(st));
  };

  std::vector<ir::StmtPtr> body;
  body.push_back(accum("FX", dx));
  body.push_back(accum("FY", dy));
  body.push_back(accum("FZ", dz));
  return nestProgram(
      "n-body",
      {{"X", {n}, 8}, {"Y", {n}, 8}, {"Z", {n}, 8},
       {"FX", {n}, 8}, {"FY", {n}, 8}, {"FZ", {n}, 8}},
      loopVec(mkLoop("i", 0, n), mkLoop("j", 0, n)),
      std::move(body));
}

} // namespace motune::kernels
