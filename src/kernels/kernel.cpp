#include "kernels/kernel.h"

#include "support/check.h"

namespace motune::kernels {

const std::vector<KernelSpec>& allKernels() {
  // Problem sizes: mm/dsyrk use the paper's N = 1400. The other sizes are
  // chosen so working sets straddle the modeled caches the way the paper's
  // do — in particular the n-body set (6 arrays x 8 B x 200k bodies ~ 9.6 MB)
  // fits Westmere's 30 MB L3 but not Barcelona's 2 MB (paper §V.C explains
  // Table V's contrast exactly this way).
  static const std::vector<KernelSpec> kernels = {
      {"mm", 3, "O(N^3)", "O(N^2)", buildMM, 1400, 24},
      {"dsyrk", 3, "O(N^3)", "O(N^2)", buildDsyrk, 1400, 24},
      {"jacobi-2d", 2, "O(N^2)", "O(N^2)", buildJacobi2d, 4000, 26},
      {"3d-stencil", 3, "O(N^3)", "O(N^3)", buildStencil3d, 256, 14},
      {"n-body", 2, "O(N^2)", "O(N)", buildNBody, 200000, 64},
  };
  return kernels;
}

const KernelSpec& kernelByName(const std::string& name) {
  for (const auto& k : allKernels())
    if (k.name == name) return k;
  MOTUNE_CHECK_MSG(false, "unknown kernel: " + name);
  return allKernels().front();
}

} // namespace motune::kernels
