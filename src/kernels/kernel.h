// The paper's evaluation kernels (Table IV): matrix multiplication, dsyrk,
// jacobi-2d, a generic 3x3x3 3d-stencil, and a naive n-body simulation.
//
// Each kernel exists in two forms:
//  * an IR builder (the compiler path: analysis, transformation, codegen,
//    performance model all consume the IR), and
//  * native C++ implementations (reference + runtime-tiled parallel) used
//    by the native evaluator and the correctness tests.
#pragma once

#include "ir/program.h"

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace motune::kernels {

struct KernelSpec {
  std::string name;
  std::size_t tileDims = 3; ///< dimensionality of the tiling search space
  std::string computeComplexity; ///< paper Table IV
  std::string memoryComplexity;  ///< paper Table IV
  std::function<ir::Program(std::int64_t)> buildIR;
  std::int64_t paperN = 0; ///< problem size for the experiment harness
  std::int64_t testN = 0;  ///< miniature size for interpreter-backed tests
};

/// All five evaluation kernels, in the paper's order.
const std::vector<KernelSpec>& allKernels();

/// Lookup by name ("mm", "dsyrk", "jacobi-2d", "3d-stencil", "n-body").
const KernelSpec& kernelByName(const std::string& name);

// Individual IR builders (N is the problem size; arrays are N x N, N^3 or
// N-element as appropriate).
ir::Program buildMM(std::int64_t n);        ///< C[i][j] += A[i][k]*B[k][j], IJK
ir::Program buildDsyrk(std::int64_t n);     ///< C[i][j] += A[i][k]*A[j][k]
ir::Program buildJacobi2d(std::int64_t n);  ///< 5-point sweep A -> B
ir::Program buildStencil3d(std::int64_t n); ///< 27-point sweep A -> B
ir::Program buildNBody(std::int64_t n);     ///< naive O(N^2) force pass

} // namespace motune::kernels
