#include "serve/daemon.h"

#include "observe/expose.h"
#include "observe/metrics.h"
#include "serve/protocol.h"
#include "support/check.h"

#include <chrono>
#include <cstring>
#include <fstream>
#include <iterator>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace motune::serve {

namespace {

support::Json errorResponse(const std::string& message) {
  return support::JsonObject{{"ok", false}, {"error", message}};
}

} // namespace

Daemon::Daemon(DaemonOptions options)
    : options_(std::move(options)), store_(options_.stateDir) {
  MOTUNE_CHECK_MSG(!options_.stateDir.empty(), "serve: state dir is required");
}

Daemon::~Daemon() { stop(); }

void Daemon::start() {
  MOTUNE_CHECK_MSG(!running_, "daemon already running");

  listenFd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  MOTUNE_CHECK_MSG(listenFd_ >= 0, "serve: cannot create socket");
  int one = 1;
  ::setsockopt(listenFd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(options_.port));
  MOTUNE_CHECK_MSG(
      ::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) == 1,
      "serve: invalid bind address: " + options_.host);
  if (::bind(listenFd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listenFd_);
    listenFd_ = -1;
    MOTUNE_CHECK_MSG(false, "serve: cannot bind " + options_.host + ":" +
                                std::to_string(options_.port) + ": " + err);
  }
  MOTUNE_CHECK_MSG(::listen(listenFd_, 64) == 0, "serve: listen failed");

  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  ::getsockname(listenFd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_ = ntohs(bound.sin_port);

  hub_ = std::make_unique<StreamHub>(options_.streamBufferFrames);
  scheduler_ =
      std::make_unique<JobScheduler>(store_, options_.scheduler, hub_.get());
  scheduler_->start();
  store_.writeDaemonInfo(port_, options_.scheduler.workers);

  running_ = true;
  shutdownRequested_ = false;
  acceptThread_ = std::thread([this] { acceptLoop(); });
}

bool Daemon::waitForShutdown(double timeoutSeconds) {
  std::unique_lock lock(shutdownMutex_);
  auto requested = [this] { return shutdownRequested_; };
  if (timeoutSeconds <= 0.0) {
    shutdownCv_.wait(lock, requested);
    return true;
  }
  return shutdownCv_.wait_for(
      lock, std::chrono::duration<double>(timeoutSeconds), requested);
}

void Daemon::requestShutdown() {
  {
    std::lock_guard lock(shutdownMutex_);
    shutdownRequested_ = true;
  }
  shutdownCv_.notify_all();
}

void Daemon::stop() {
  if (!running_) return;
  running_ = false;
  requestShutdown();

  // Closing the listen socket pops the accept loop out of accept().
  if (listenFd_ >= 0) {
    ::shutdown(listenFd_, SHUT_RDWR);
    ::close(listenFd_);
    listenFd_ = -1;
  }
  if (acceptThread_.joinable()) acceptThread_.join();

  // Close every live subscription first: streaming connection threads are
  // blocked in Subscription::next(), not recv(), and only a closed
  // subscription pops them out promptly.
  if (hub_) hub_->closeAll();

  // Kick live connections out of recv(); their threads then exit.
  {
    std::lock_guard lock(connMutex_);
    for (int fd : connFds_) ::shutdown(fd, SHUT_RDWR);
  }
  for (std::thread& t : connThreads_)
    if (t.joinable()) t.join();
  connThreads_.clear();
  {
    std::lock_guard lock(connMutex_);
    for (int fd : connFds_) ::close(fd);
    connFds_.clear();
  }

  if (scheduler_) scheduler_->stop();
}

void Daemon::acceptLoop() {
  for (;;) {
    const int fd = ::accept(listenFd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return; // listener closed: shutting down
    }
    std::lock_guard lock(connMutex_);
    connFds_.push_back(fd);
    connThreads_.emplace_back([this, fd] { serveConnection(fd); });
  }
}

void Daemon::serveConnection(int fd) {
  FrameReader reader;
  try {
    for (;;) {
      std::optional<support::Json> request = recvFrame(fd, reader);
      if (!request) break; // clean EOF
      if (request->has("verb") &&
          request->at("verb").asString() == "subscribe") {
        // Streaming verb: pushes frames until the job ends, then the
        // connection is request/response again.
        handleSubscribe(fd, *request);
        continue;
      }
      support::Json response = dispatch(*request);
      const bool shutdownVerb =
          request->has("verb") && request->at("verb").asString() == "shutdown";
      sendFrame(fd, response);
      if (shutdownVerb) {
        requestShutdown();
        break;
      }
    }
  } catch (const std::exception&) {
    // Protocol violation or the peer vanished mid-frame: this connection
    // is done; the daemon and every other connection are unaffected.
  }
  // Signal the peer we are done (it may be blocked in recv waiting for a
  // response that will never come). The fd itself stays in connFds_ for
  // stop() to close — shutdown() on an already-dead fd is harmless,
  // close() from two threads is not.
  ::shutdown(fd, SHUT_RDWR);
}

void Daemon::handleSubscribe(int fd, const support::Json& request) {
  std::string id;
  try {
    MOTUNE_CHECK_MSG(request.has("id"), "subscribe needs an id");
    id = request.at("id").asString();
  } catch (const std::exception& e) {
    sendFrame(fd, errorResponse(e.what()));
    return;
  }

  // Register before looking at the job's state: a terminal transition
  // between the two would otherwise slip past both the status check and
  // the hub. The reverse order is safe — publishEnd on the freshly
  // registered subscription just closes it and the loop below drains.
  std::shared_ptr<Subscription> sub = hub_->subscribe(id);
  const std::optional<JobInfo> info = scheduler_->status(id);
  if (!info) {
    hub_->unsubscribe(id, sub);
    sendFrame(fd, errorResponse("unknown job: " + id));
    return;
  }

  sendFrame(fd, support::JsonObject{{"ok", true},
                                    {"id", id},
                                    {"state", jobStateName(info->state)}});

  const bool terminal = info->state == JobState::Done ||
                        info->state == JobState::Failed ||
                        info->state == JobState::Cancelled;
  bool peerGone = false;
  if (terminal) {
    hub_->unsubscribe(id, sub);
  } else {
    for (;;) {
      std::optional<support::Json> frame = sub->next(0.25);
      if (frame) {
        try {
          sendFrame(fd, *frame);
        } catch (const std::exception&) {
          peerGone = true; // EPIPE mid-stream
          break;
        }
        continue;
      }
      if (sub->finished()) break; // job ended (or daemon shutting down)
      // Idle tick: is the peer still there? MSG_PEEK leaves any pipelined
      // request in the socket buffer for the post-stream loop.
      char probe;
      const ssize_t n = ::recv(fd, &probe, 1, MSG_PEEK | MSG_DONTWAIT);
      if (n == 0 || (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK &&
                     errno != EINTR)) {
        peerGone = true;
        break;
      }
    }
    if (peerGone) hub_->unsubscribe(id, sub);
  }

  if (peerGone)
    throw std::runtime_error("subscriber disconnected mid-stream");

  // The daemon (not the hub) composes the end frame: it carries the final
  // state from a fresh status lookup and this subscriber's drop count.
  const std::optional<JobInfo> last = scheduler_->status(id);
  sendFrame(fd,
            support::JsonObject{
                {"stream", "end"},
                {"job", id},
                {"state", last ? jobStateName(last->state) : "unknown"},
                {"dropped", std::to_string(sub->dropped())}});
}

support::Json Daemon::dispatch(const support::Json& request) {
  try {
    MOTUNE_CHECK_MSG(request.has("verb"), "request has no verb");
    const std::string verb = request.at("verb").asString();

    if (verb == "ping") return support::JsonObject{{"ok", true}};

    if (verb == "submit") {
      const JobSpec spec = specFromJson(request.at("spec"));
      const int priority =
          request.has("priority")
              ? static_cast<int>(request.at("priority").asInt())
              : 0;
      const bool noCache =
          request.has("no_cache") && request.at("no_cache").asBool();
      const Admission admission =
          scheduler_->submit(spec, priority, noCache);
      if (!admission.accepted) {
        support::JsonObject response{{"ok", false},
                                     {"error", admission.error}};
        if (admission.retryAfterSeconds > 0.0)
          response.emplace("retry_after", admission.retryAfterSeconds);
        return response;
      }
      support::JsonObject response{{"ok", true}, {"id", admission.id}};
      if (admission.cached) response.emplace("cached", true);
      return response;
    }

    if (verb == "status") {
      const std::string id = request.at("id").asString();
      const std::optional<JobInfo> info = scheduler_->status(id);
      if (!info) return errorResponse("unknown job: " + id);
      return support::JsonObject{{"ok", true}, {"job", infoToJson(*info)}};
    }

    if (verb == "result") {
      const std::string id = request.at("id").asString();
      const std::optional<JobInfo> info = scheduler_->status(id);
      if (!info) return errorResponse("unknown job: " + id);
      if (info->state != JobState::Done)
        return errorResponse("job " + id + " is " +
                             jobStateName(info->state) + ", not done");
      std::ifstream in(info->artifactPath);
      std::string text((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
      return support::JsonObject{{"ok", true},
                                 {"artifact", support::Json::parse(text)}};
    }

    if (verb == "cancel") {
      const CancelOutcome outcome =
          scheduler_->cancel(request.at("id").asString());
      if (!outcome.ok) return errorResponse(outcome.detail);
      return support::JsonObject{{"ok", true}, {"detail", outcome.detail}};
    }

    if (verb == "list") {
      support::JsonArray jobs;
      for (const JobInfo& info : scheduler_->list())
        jobs.push_back(infoToJson(info));
      return support::JsonObject{{"ok", true}, {"jobs", std::move(jobs)}};
    }

    if (verb == "stats") {
      if (request.has("format") &&
          request.at("format").asString() == "prometheus")
        return support::JsonObject{
            {"ok", true},
            {"prometheus",
             observe::renderPrometheus(observe::MetricsRegistry::global())}};
      return support::JsonObject{{"ok", true}, {"stats", scheduler_->stats()}};
    }

    if (verb == "shutdown") return support::JsonObject{{"ok", true}};

    return errorResponse("unknown verb: " + verb);
  } catch (const std::exception& e) {
    return errorResponse(e.what());
  }
}

} // namespace motune::serve
