// The tuning daemon: a TCP server speaking the length-prefixed JSON
// protocol of serve/protocol.h, dispatching verbs onto a JobScheduler.
//
// Request/response verbs (one JSON object per frame, "verb" selects):
//
//   {"verb":"ping"}                          -> {"ok":true}
//   {"verb":"submit","spec":{..},"priority":N[,"no_cache":true]}
//     -> {"ok":true,"id":"j000001"}
//     -> {"ok":true,"id":"j000001","cached":true}  (spec already finished;
//                                                   nothing scheduled)
//     -> {"ok":false,"error":"queue full","retry_after":0.5}   (backpressure)
//   {"verb":"status","id":"j000001"}         -> {"ok":true,"job":{..}}
//   {"verb":"result","id":"j000001"}         -> {"ok":true,"artifact":{..}}
//   {"verb":"cancel","id":"j000001"}         -> {"ok":true,"detail":"..."}
//   {"verb":"list"}                          -> {"ok":true,"jobs":[..]}
//   {"verb":"stats"}                         -> {"ok":true,"stats":{..}}
//   {"verb":"stats","format":"prometheus"}   -> {"ok":true,"prometheus":"..."}
//                                               (text exposition 0.0.4)
//   {"verb":"shutdown"}                      -> {"ok":true}, then the daemon
//                                               drains connections and stops
//
// One streaming verb breaks the request/response pattern: subscribe
// upgrades the connection to a push stream of a job's live frames (state
// transitions, per-generation progress, trace records) until the job
// reaches a terminal state, closing with an `end` frame that reports how
// many best-effort frames this subscriber lost. Wire format in
// docs/serve.md; buffering policy in serve/stream.h.
//
//   {"verb":"subscribe","id":"j000001"}      -> {"ok":true,...}, then frames
//
// Every failure is an {"ok":false,"error":...} response on the same
// connection; only a protocol violation (oversized/malformed frame) drops
// the connection. Connections are handled one thread each — clients are
// expected to be few (CI harnesses, CLIs), jobs are where the concurrency
// is — and requests on one connection are served strictly in order, so a
// client may pipeline frames.
//
// Lifecycle: start() binds (port 0 picks an ephemeral port — port() tells
// which), recovers + starts the scheduler, writes STATE/daemon.json and
// begins accepting. waitForShutdown() blocks until a shutdown verb or
// requestShutdown(); stop() is the idempotent teardown (also called by the
// destructor). SIGKILL needs no cooperation from any of this: the store is
// crash-consistent and the next start() resumes from it.
#pragma once

#include "serve/scheduler.h"
#include "serve/store.h"
#include "serve/stream.h"

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace motune::serve {

struct DaemonOptions {
  std::string stateDir;          ///< required: the durable job store
  std::string host = "127.0.0.1"; ///< bind address
  int port = 0;                  ///< 0 = ephemeral (see Daemon::port())
  SchedulerOptions scheduler;
  /// Per-subscriber buffer (frames) for the subscribe verb. A subscriber
  /// slower than the stream loses best-effort frames past this depth —
  /// counted, reported in its end frame — but never blocks a worker.
  std::size_t streamBufferFrames = 256;
};

class Daemon {
public:
  explicit Daemon(DaemonOptions options);
  ~Daemon(); ///< stop()s if still running

  /// Bind + listen, recover + start the scheduler, write daemon.json,
  /// spawn the accept loop. Throws support::CheckError when the port
  /// cannot be bound.
  void start();

  /// Blocks until a `shutdown` verb arrives or requestShutdown() is
  /// called; the caller then runs stop(). With a positive timeout it
  /// returns after at most that many seconds, reporting whether shutdown
  /// was requested — the CLI polls this so a signal handler only has to
  /// set an atomic flag (requestShutdown takes a mutex and is not
  /// async-signal-safe).
  bool waitForShutdown(double timeoutSeconds = 0.0);

  /// Unblocks waitForShutdown() (signal handlers route here).
  void requestShutdown();

  /// Stops accepting, closes live connections, stops the scheduler
  /// (running jobs finish; their artifacts land before stop() returns).
  /// Idempotent.
  void stop();

  int port() const { return port_; }
  JobScheduler& scheduler() { return *scheduler_; }

private:
  void acceptLoop();
  void serveConnection(int fd);
  support::Json dispatch(const support::Json& request);
  /// The subscribe verb: upgrades the connection to a push stream of the
  /// job's frames until the job ends (or the peer hangs up), then returns
  /// — the connection goes back to request/response.
  void handleSubscribe(int fd, const support::Json& request);

  DaemonOptions options_;
  JobStore store_;
  std::unique_ptr<StreamHub> hub_;
  std::unique_ptr<JobScheduler> scheduler_;

  int listenFd_ = -1;
  int port_ = 0;
  std::thread acceptThread_;

  std::mutex connMutex_;
  std::vector<std::thread> connThreads_;
  std::vector<int> connFds_;

  std::mutex shutdownMutex_;
  std::condition_variable shutdownCv_;
  bool shutdownRequested_ = false;
  bool running_ = false;
};

} // namespace motune::serve
