// Durable job store of the tuning daemon: one directory per job under
// STATE/jobs/, holding everything needed to resume, replay, or audit it.
//
//   STATE/
//     daemon.json            # {port, pid, workers, started_unix} per start
//     jobs/
//       by-spec/
//         <spec hash>        # result-cache index: one file per distinct
//                            # finished spec, holding the id of the first
//                            # job that completed it (docs/serve.md)
//       j000001/
//         job.json           # id + spec + priority, written before the
//                            # submit is acknowledged (atomic rename)
//         warm_start.json    # journals chosen to pre-train the surrogate,
//                            # pinned at first run so a crash-resume
//                            # trains on the identical corpus
//         events.jsonl       # per-job observability stream: submitted /
//                            # started / resumed / finished / failed /
//                            # cancelled records with timings and metrics
//         session/           # crash-safe tuning journal (src/session/),
//                            # present for checkpointable algorithms
//         artifact.json      # the tuning artifact; presence == done
//         cancelled          # marker file; presence == cancelled
//         error.json         # {error}; presence == failed
//
// The on-disk state is the source of truth across restarts. recover()
// reconstructs the scheduler's world from it: jobs with an artifact are
// done, marked jobs are cancelled/failed, everything else — including jobs
// that were mid-run when the daemon died — re-enters the queue, resuming
// from the session journal when one exists. Because searches are
// deterministic in their seed, a re-run job (no journal, or a journal too
// damaged to load) still produces the bit-identical artifact; the journal
// only saves the already-spent evaluations.
#pragma once

#include "serve/job.h"
#include "session/journal.h"
#include "support/json.h"

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace motune::serve {

/// Append-only per-job event stream (events.jsonl): one flushed JSON line
/// per lifecycle transition, each carrying a wall-clock stamp and, for the
/// terminal records, the job's result metrics. This is the per-job
/// observability sink — the daemon-level metrics aggregate across jobs,
/// this file is the one place a single job's history lives.
class JobLog {
public:
  explicit JobLog(const std::string& path);
  void record(const std::string& event, support::JsonObject fields = {});

private:
  std::string path_;
  std::mutex mutex_;
};

/// One job recovered from disk (recover() output).
struct RecoveredJob {
  std::string id;
  JobSpec spec;
  int priority = 0;
  double submittedUnix = 0.0;
  JobState state = JobState::Queued; ///< Queued, Done, Failed or Cancelled
  bool hasSession = false;           ///< a session journal exists
  std::string error;                 ///< Failed only
  JobInfo doneInfo;                  ///< Done only: metrics from events.jsonl
};

class JobStore {
public:
  explicit JobStore(std::string stateDir); ///< creates STATE/jobs/

  const std::string& stateDir() const { return stateDir_; }
  std::string jobDir(const std::string& id) const;
  std::string artifactPath(const std::string& id) const;
  std::string sessionDir(const std::string& id) const;
  std::string eventsPath(const std::string& id) const;
  std::string tracePath(const std::string& id) const;

  /// Number of runs already recorded in the job's trace.jsonl (one
  /// `trace.header` line per run). A restarted daemon appends run 1, 2, ...
  /// to the same file; the count keys the resumed run's span-id range so
  /// ids stay unique across the whole trace.
  int traceRunCount(const std::string& id) const;

  /// Allocates the next job id ("j%06d", continuing past any ids already
  /// on disk) and persists {id, spec, priority}: the directory, job.json
  /// (write-temp + rename, so a crash never leaves a half-written spec)
  /// and the `submitted` event. Returns the id.
  std::string persistNewJob(const JobSpec& spec, int priority,
                            double submittedUnix);

  /// Opens (creates) the job's event log.
  std::shared_ptr<JobLog> log(const std::string& id);

  /// Terminal markers. The artifact is the done marker and is written by
  /// the worker (saveArtifact is already atomic enough: the readback on
  /// `result` parses the JSON and fails cleanly on a torn file).
  void markCancelled(const std::string& id);
  void markFailed(const std::string& id, const std::string& error);

  /// Result-cache index (jobs/by-spec/<hash> -> job id, atomic write).
  /// The scheduler keeps the authoritative in-memory map; these files make
  /// the mapping auditable and are healed from recovered Done jobs on
  /// start, so the index never has to be trusted over the job directories.
  void indexSpec(const std::string& hash, const std::string& id);

  /// The surrogate warm-start corpus pinned to a job: written once before
  /// the job's first run, read back verbatim on every resume (the journal
  /// list is part of the search identity once culling is on).
  void writeWarmStart(const std::string& id,
                      const std::vector<std::string>& dirs);
  /// Returns the pinned list, or nullopt when the job has none on disk.
  std::optional<std::vector<std::string>>
  readWarmStart(const std::string& id) const;

  /// Scans STATE/jobs/ and classifies every job directory; also reseeds
  /// the id allocator past the highest recovered id. Jobs whose session
  /// journal exists but is unloadable (killed before the header flushed,
  /// or already carrying a finish record without an artifact) get the
  /// journal removed here so the re-run starts a fresh one.
  std::vector<RecoveredJob> recover();

  /// Writes STATE/daemon.json (pid/port provenance for scripts).
  void writeDaemonInfo(int port, unsigned workers);

private:
  std::string stateDir_;
  std::mutex mutex_;
  std::uint64_t nextId_ = 1;
};

} // namespace motune::serve
