#include "serve/store.h"

#include "session/session.h"
#include "support/check.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>

#include <unistd.h>

namespace motune::serve {

namespace fs = std::filesystem;

namespace {

double nowUnix() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

/// Write-temp + rename: readers never observe a half-written file.
void writeFileAtomic(const fs::path& path, const std::string& content) {
  const fs::path tmp = path.string() + ".tmp";
  {
    std::ofstream out(tmp);
    MOTUNE_CHECK_MSG(out.good(), "cannot write " + tmp.string());
    out << content;
    out.flush();
    MOTUNE_CHECK_MSG(out.good(), "write failed: " + tmp.string());
  }
  fs::rename(tmp, path);
}

} // namespace

JobLog::JobLog(const std::string& path) : path_(path) {}

void JobLog::record(const std::string& event, support::JsonObject fields) {
  fields.emplace("event", event);
  fields.emplace("t_unix", nowUnix());
  const std::string line = support::Json(std::move(fields)).dump(-1);
  std::lock_guard lock(mutex_);
  std::ofstream out(path_, std::ios::out | std::ios::app);
  MOTUNE_CHECK_MSG(out.good(), "cannot append to " + path_);
  out << line << '\n';
  out.flush();
}

JobStore::JobStore(std::string stateDir) : stateDir_(std::move(stateDir)) {
  fs::create_directories(fs::path(stateDir_) / "jobs");
}

std::string JobStore::jobDir(const std::string& id) const {
  return (fs::path(stateDir_) / "jobs" / id).string();
}

std::string JobStore::artifactPath(const std::string& id) const {
  return (fs::path(jobDir(id)) / "artifact.json").string();
}

std::string JobStore::sessionDir(const std::string& id) const {
  return (fs::path(jobDir(id)) / "session").string();
}

std::string JobStore::eventsPath(const std::string& id) const {
  return (fs::path(jobDir(id)) / "events.jsonl").string();
}

std::string JobStore::tracePath(const std::string& id) const {
  return (fs::path(jobDir(id)) / "trace.jsonl").string();
}

int JobStore::traceRunCount(const std::string& id) const {
  std::ifstream in(tracePath(id));
  if (!in.good()) return 0;
  int runs = 0;
  std::string line;
  while (std::getline(in, line))
    if (line.find("\"trace.header\"") != std::string::npos) ++runs;
  return runs;
}

std::string JobStore::persistNewJob(const JobSpec& spec, int priority,
                                    double submittedUnix) {
  std::string id;
  {
    std::lock_guard lock(mutex_);
    char buf[16];
    std::snprintf(buf, sizeof buf, "j%06llu",
                  static_cast<unsigned long long>(nextId_++));
    id = buf;
  }
  fs::create_directories(jobDir(id));
  const support::Json record = support::JsonObject{
      {"id", id},
      {"spec", specToJson(spec)},
      {"priority", priority},
      {"submitted_unix", submittedUnix},
  };
  writeFileAtomic(fs::path(jobDir(id)) / "job.json", record.dump(2) + "\n");
  return id;
}

std::shared_ptr<JobLog> JobStore::log(const std::string& id) {
  return std::make_shared<JobLog>(eventsPath(id));
}

void JobStore::markCancelled(const std::string& id) {
  writeFileAtomic(fs::path(jobDir(id)) / "cancelled", "cancelled\n");
}

void JobStore::markFailed(const std::string& id, const std::string& error) {
  writeFileAtomic(fs::path(jobDir(id)) / "error.json",
                  support::Json(support::JsonObject{{"error", error}}).dump(2) +
                      "\n");
}

void JobStore::indexSpec(const std::string& hash, const std::string& id) {
  const fs::path dir = fs::path(stateDir_) / "jobs" / "by-spec";
  fs::create_directories(dir);
  writeFileAtomic(dir / hash, id + "\n");
}

void JobStore::writeWarmStart(const std::string& id,
                              const std::vector<std::string>& dirs) {
  support::JsonArray list;
  for (const std::string& d : dirs) list.emplace_back(d);
  writeFileAtomic(fs::path(jobDir(id)) / "warm_start.json",
                  support::Json(support::JsonObject{
                                    {"dirs", std::move(list)}})
                          .dump(2) +
                      "\n");
}

std::optional<std::vector<std::string>>
JobStore::readWarmStart(const std::string& id) const {
  const fs::path path = fs::path(jobDir(id)) / "warm_start.json";
  std::ifstream in(path);
  if (!in.good()) return std::nullopt;
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  std::vector<std::string> dirs;
  for (const auto& d : support::Json::parse(text).at("dirs").asArray())
    dirs.push_back(d.asString());
  return dirs;
}

std::vector<RecoveredJob> JobStore::recover() {
  std::vector<RecoveredJob> out;
  const fs::path jobsRoot = fs::path(stateDir_) / "jobs";
  std::uint64_t maxId = 0;
  std::vector<fs::path> dirs;
  for (const auto& entry : fs::directory_iterator(jobsRoot))
    if (entry.is_directory()) dirs.push_back(entry.path());
  std::sort(dirs.begin(), dirs.end());

  for (const fs::path& dir : dirs) {
    const fs::path specPath = dir / "job.json";
    // A crash between mkdir and the job.json rename leaves a spec-less
    // directory; the submit was never acknowledged, so it is not a job.
    if (!fs::exists(specPath)) continue;

    std::ifstream in(specPath);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    const support::Json record = support::Json::parse(text);

    RecoveredJob job;
    job.id = record.at("id").asString();
    job.spec = specFromJson(record.at("spec"));
    job.priority = static_cast<int>(record.at("priority").asInt());
    job.submittedUnix = record.at("submitted_unix").asNumber();
    if (job.id.size() > 1)
      maxId = std::max<std::uint64_t>(maxId, std::stoull(job.id.substr(1)));

    if (fs::exists(dir / "cancelled")) {
      job.state = JobState::Cancelled;
    } else if (fs::exists(dir / "error.json")) {
      job.state = JobState::Failed;
      std::ifstream err(dir / "error.json");
      std::string errText((std::istreambuf_iterator<char>(err)),
                          std::istreambuf_iterator<char>());
      job.error = support::Json::parse(errText).at("error").asString();
    } else if (fs::exists(dir / "artifact.json")) {
      job.state = JobState::Done;
      job.doneInfo.id = job.id;
      job.doneInfo.state = JobState::Done;
      job.doneInfo.priority = job.priority;
      job.doneInfo.spec = job.spec;
      job.doneInfo.submittedUnix = job.submittedUnix;
      job.doneInfo.artifactPath = (dir / "artifact.json").string();
      // Result metrics: prefer the artifact itself (always present for a
      // done job) over the event log (whose terminal record can be lost to
      // a crash between the artifact write and the event append).
      try {
        std::ifstream art(dir / "artifact.json");
        std::string artText((std::istreambuf_iterator<char>(art)),
                            std::istreambuf_iterator<char>());
        const support::Json artifact = support::Json::parse(artText);
        job.doneInfo.evaluations =
            static_cast<std::uint64_t>(artifact.at("evaluations").asInt());
        job.doneInfo.hypervolume = artifact.at("hypervolume").asNumber();
        job.doneInfo.frontSize = artifact.at("versions").size();
        if (artifact.has("session"))
          job.doneInfo.resumes = static_cast<int>(
              artifact.at("session").at("resumes").asInt());
      } catch (const support::CheckError&) {
        // Torn artifact (killed mid-write): treat as not done — drop the
        // file and requeue below.
        fs::remove(dir / "artifact.json");
        job.state = JobState::Queued;
      }
    } else {
      job.state = JobState::Queued;
    }

    if (job.state == JobState::Queued) {
      // Re-runnable. Use the session journal when it is actually loadable;
      // a journal killed before its header flushed, or carrying a finish
      // record with no artifact (killed between finish and artifact
      // write), cannot seed a resume — drop it and re-run from scratch,
      // which reproduces the identical artifact deterministically.
      const std::string sess = sessionDir(job.id);
      if (session::sessionExists(sess)) {
        bool usable = false;
        try {
          usable = !session::loadSession(sess).finished;
        } catch (const support::CheckError&) {
          usable = false;
        }
        if (!usable) fs::remove_all(sess);
        job.hasSession = usable;
      }
    }
    out.push_back(std::move(job));
  }

  std::lock_guard lock(mutex_);
  nextId_ = std::max(nextId_, maxId + 1);
  return out;
}

void JobStore::writeDaemonInfo(int port, unsigned workers) {
  const support::Json info = support::JsonObject{
      {"port", port},
      {"pid", static_cast<std::int64_t>(::getpid())},
      {"workers", static_cast<std::int64_t>(workers)},
      {"started_unix", nowUnix()},
  };
  writeFileAtomic(fs::path(stateDir_) / "daemon.json", info.dump(2) + "\n");
}

} // namespace motune::serve
