// Job model of the tuning daemon: what a client submits (JobSpec), what
// the scheduler tracks (JobState/JobInfo), and the translation from a spec
// to the tuning stack (problem + tuner options).
//
// A JobSpec is deliberately the same vocabulary as the `motune tune`
// flags (kernel, machine, n, algorithm, seed, objectives, budget), so the
// `motune submit` subcommand reuses the tune flag parsing verbatim and a
// spec can be replayed locally with `motune tune` for debugging. Specs are
// serialized into the job directory (job.json) at admission time — before
// the submit is acknowledged — which is what makes an acked job durable
// across a daemon crash.
#pragma once

#include "autotune/autotuner.h"
#include "support/json.h"
#include "tuning/kernel_problem.h"

#include <cstdint>
#include <string>
#include <vector>

namespace motune::serve {

/// One tuning request, in `motune tune` vocabulary.
struct JobSpec {
  std::string kernel = "mm";        ///< built-in kernel name
  std::string machine = "westmere"; ///< machine model name
  std::int64_t n = 0;               ///< problem size; 0 = the paper size
  std::string algorithm = "rsgde3"; ///< rsgde3 | gde3 | nsga2 | random
  std::uint64_t seed = 1;
  std::vector<tuning::Objective> objectives; ///< empty = time,resources
  std::uint64_t budget = 1000; ///< evaluation budget for algorithm=random
  /// Surrogate keep fraction (GDE3 family only; see tune --surrogate-keep).
  /// Below 1 the daemon also warm-starts the surrogate from the journals of
  /// finished compatible jobs in its own store; the chosen journal list is
  /// persisted per job so a crash-resume trains on the identical corpus.
  double surrogateKeep = 1.0;
  /// Island-model search (GDE3 family only, incompatible with
  /// surrogate_keep < 1; see tune --islands). The worker runs the islands
  /// in-process under the job's session directory, so a daemon restart
  /// resumes every island from its own journal. Deterministic for a fixed
  /// spec, so island jobs stay result-cacheable.
  int islands = 1;
  /// Analytic seeding of the initial population (GDE3 family only; see
  /// tune --seed-analytic). Deterministic per spec.
  bool seedAnalytic = false;
};

support::Json specToJson(const JobSpec& spec);
JobSpec specFromJson(const support::Json& json);

/// Content hash of a canonicalized spec (FNV-1a 64 over the compact JSON
/// dump), as 16 lowercase hex digits. Equal specs always hash equal;
/// 64 bits is not proof of identity, so the scheduler re-compares the
/// canonical JSON on every cache hit before serving it (the serve result
/// cache, `jobs/by-spec/<hash>`).
std::string specHash(const JobSpec& spec);

/// True when a finished job's artifact is a pure function of the spec, so
/// the result cache may answer a byte-identical resubmission with it.
/// False for surrogate_keep < 1: the daemon warm-starts those jobs from
/// whatever compatible jobs had finished in its store when the job first
/// ran, so the same spec submitted later (or to another daemon) can
/// legitimately produce a different artifact — such jobs neither hit nor
/// populate the cache.
bool cacheableSpec(const JobSpec& spec);

/// MOTUNE_CHECK-fails with a field-level message on an invalid spec
/// (unknown kernel/machine/algorithm/objective, negative n). Run at
/// admission time so bad specs are rejected on submit, not when a worker
/// finally dequeues them.
void validateSpec(const JobSpec& spec);

/// True for the algorithms whose engine state can be journaled (the
/// GDE3 family). Other algorithms are still durable — they re-run from
/// scratch on daemon restart, which reproduces the identical artifact
/// because every search is deterministic in its seed — they just cannot
/// reuse the interrupted run's evaluations.
bool checkpointable(const std::string& algorithm);

/// Builds the tuning problem a spec describes.
tuning::KernelTuningProblem problemFromSpec(const JobSpec& spec);

/// Tuner options for a spec: algorithm, seed, budget — plus the serve
/// policy (sessions under `sessionDir` for checkpointable algorithms,
/// `jobThreads` evaluation workers). Session resume is enabled when a
/// journal already exists (daemon restart). Each call builds a fresh
/// options value: one AutoTuner — and therefore one CountingEvaluator —
/// per job, never shared (see CountingEvaluator::preload).
autotune::TunerOptions tunerOptionsFromSpec(
    const JobSpec& spec, const std::string& sessionDir, unsigned jobThreads,
    int checkpointEvery,
    const std::vector<std::string>& warmStartDirs = {});

/// Lifecycle of a job inside the scheduler.
enum class JobState {
  Queued,    ///< admitted, waiting for a worker
  Running,   ///< a worker is tuning it
  Done,      ///< artifact written
  Failed,    ///< the search threw; error recorded
  Cancelled, ///< cancelled while queued or running
};

const char* jobStateName(JobState state);
JobState jobStateFromName(const std::string& name);

/// Status snapshot of one job (the `status`/`list` wire payload).
struct JobInfo {
  std::string id;
  JobState state = JobState::Queued;
  int priority = 0;
  JobSpec spec;
  double submittedUnix = 0.0;  ///< wall clock, seconds
  double queueSeconds = 0.0;   ///< admission -> start (or now)
  double runSeconds = 0.0;     ///< start -> finish (or now)
  int resumes = 0;             ///< times the job resumed from its journal
  std::uint64_t evaluations = 0; ///< set when Done
  double hypervolume = 0.0;      ///< set when Done
  std::size_t frontSize = 0;     ///< set when Done
  std::string error;             ///< set when Failed
  std::string artifactPath;      ///< set when Done
};

support::Json infoToJson(const JobInfo& info);
JobInfo infoFromJson(const support::Json& json);

} // namespace motune::serve
