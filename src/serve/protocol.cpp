#include "serve/protocol.h"

#include "support/check.h"

#include <cerrno>
#include <cstring>

#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

namespace motune::serve {

namespace {

std::string errnoDetail(const char* op) {
  return std::string(op) + " failed: " + std::strerror(errno);
}

std::uint32_t decodeLength(const char* bytes) {
  const auto b = reinterpret_cast<const unsigned char*>(bytes);
  return (std::uint32_t(b[0]) << 24) | (std::uint32_t(b[1]) << 16) |
         (std::uint32_t(b[2]) << 8) | std::uint32_t(b[3]);
}

} // namespace

std::string encodeFrame(const support::Json& message) {
  const std::string payload = message.dump(-1);
  MOTUNE_CHECK_MSG(payload.size() <= kMaxFrameBytes,
                   "frame payload exceeds kMaxFrameBytes");
  const auto n = static_cast<std::uint32_t>(payload.size());
  std::string out;
  out.reserve(4 + payload.size());
  out.push_back(static_cast<char>((n >> 24) & 0xff));
  out.push_back(static_cast<char>((n >> 16) & 0xff));
  out.push_back(static_cast<char>((n >> 8) & 0xff));
  out.push_back(static_cast<char>(n & 0xff));
  out += payload;
  return out;
}

void FrameReader::feed(const char* data, std::size_t size) {
  buffer_.append(data, size);
}

std::optional<support::Json> FrameReader::next() {
  if (buffer_.size() < 4) return std::nullopt;
  const std::uint32_t length = decodeLength(buffer_.data());
  if (length > kMaxFrameBytes)
    throw ProtocolError("frame length " + std::to_string(length) +
                        " exceeds the " + std::to_string(kMaxFrameBytes) +
                        "-byte limit");
  if (buffer_.size() < 4 + static_cast<std::size_t>(length))
    return std::nullopt;
  const std::string payload = buffer_.substr(4, length);
  buffer_.erase(0, 4 + static_cast<std::size_t>(length));
  try {
    return support::Json::parse(payload);
  } catch (const support::CheckError& e) {
    throw ProtocolError(std::string("malformed frame payload: ") + e.what());
  }
}

void sendFrame(int fd, const support::Json& message) {
  const std::string frame = encodeFrame(message);
  std::size_t sent = 0;
  while (sent < frame.size()) {
    // MSG_NOSIGNAL: a peer that hung up yields EPIPE instead of killing
    // the daemon with SIGPIPE.
    const ssize_t n = ::send(fd, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(errnoDetail("send"));
    }
    sent += static_cast<std::size_t>(n);
  }
}

std::optional<support::Json> recvFrame(int fd, FrameReader& reader) {
  char chunk[4096];
  for (;;) {
    if (std::optional<support::Json> message = reader.next())
      return message;
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(errnoDetail("recv"));
    }
    if (n == 0) {
      if (reader.pending() == 0) return std::nullopt; // clean EOF
      throw ProtocolError("connection closed mid-frame (" +
                          std::to_string(reader.pending()) +
                          " bytes of a partial frame)");
    }
    reader.feed(chunk, static_cast<std::size_t>(n));
  }
}

} // namespace motune::serve
