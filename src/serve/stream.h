// Live job streaming for the tuning daemon: the fan-out hub behind the
// `subscribe` verb.
//
// Producers are the scheduler's worker threads (state transitions,
// per-generation progress) and each job's tracer (span/event records via
// StreamSink); consumers are connection threads holding a Subscription
// each. The contract that keeps streaming off the scheduler hot path:
//
//   - publish with zero subscribers is one relaxed atomic load;
//   - a subscriber's buffer is bounded. Best-effort frames (trace,
//     progress) are dropped and counted when it is full; control frames
//     (state transitions, the terminal end-of-stream) are always enqueued
//     so every subscriber observes the job's outcome;
//   - producers never block: push is a mutex-protected deque append, the
//     socket write happens on the consumer's thread.
//
// The wire format of the frames (docs/serve.md "Subscribing to a job") is
// composed by the publishers; this layer moves opaque JSON payloads.
#pragma once

#include "observe/trace.h"
#include "support/json.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

namespace motune::serve {

/// One subscriber's bounded frame queue. Created by StreamHub::subscribe;
/// the connection thread drains it with next() and the hub closes it when
/// the job ends or the daemon stops.
class Subscription {
public:
  explicit Subscription(std::size_t capacity) : capacity_(capacity) {}

  /// Blocks up to timeoutSeconds for the next frame. nullopt on timeout or
  /// when the stream is closed and fully drained — check finished() to
  /// tell the two apart.
  std::optional<support::Json> next(double timeoutSeconds);

  /// Closed and nothing left to drain: the consumer should send its end
  /// frame and stop.
  bool finished() const;

  /// Best-effort frames discarded because the buffer was full.
  std::uint64_t dropped() const {
    return dropped_.load(std::memory_order_relaxed);
  }

private:
  friend class StreamHub;

  /// Control frames always enqueue (the buffer may transiently exceed
  /// capacity by the handful of lifecycle frames); best-effort frames are
  /// dropped and counted when the buffer is full. Never blocks.
  void push(support::Json frame, bool control);
  void close();

  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::deque<support::Json> queue_;
  bool closed_ = false;
  std::atomic<std::uint64_t> dropped_{0};
};

/// Per-job fan-out of live frames to any number of subscribers.
class StreamHub {
public:
  explicit StreamHub(std::size_t bufferFrames = 256)
      : bufferFrames_(bufferFrames == 0 ? 1 : bufferFrames) {}

  std::shared_ptr<Subscription> subscribe(const std::string& jobId);
  void unsubscribe(const std::string& jobId,
                   const std::shared_ptr<Subscription>& sub);

  /// True when anyone subscribes to any job — the producers' cheap gate
  /// (conservative: a subscriber to job A keeps publishes for job B on the
  /// locked path, which only costs the lookup).
  bool anySubscribers() const {
    return subscriberCount_.load(std::memory_order_relaxed) != 0;
  }

  /// Lifecycle frame: always delivered to every current subscriber.
  void publishControl(const std::string& jobId, support::Json frame);

  /// Best-effort frame (trace records, per-generation progress): dropped
  /// and counted per subscriber when its buffer is full.
  void publishBestEffort(const std::string& jobId, support::Json frame);

  /// Terminal frame: delivered like a control frame, then every
  /// subscription of the job is closed and forgotten.
  void publishEnd(const std::string& jobId, support::Json frame);

  /// Daemon shutdown: closes every subscription of every job so blocked
  /// consumer threads wake and finish.
  void closeAll();

  std::size_t subscriberCount() const {
    return subscriberCount_.load(std::memory_order_relaxed);
  }

private:
  const std::size_t bufferFrames_;
  std::atomic<std::size_t> subscriberCount_{0};
  mutable std::mutex mutex_;
  std::map<std::string, std::vector<std::shared_ptr<Subscription>>> subs_;
};

/// observe::Sink adapter: forwards every record of a job's tracer into the
/// hub as a best-effort `{"stream":"trace","record":{...}}` frame. Attached
/// to the per-job tracer alongside its JSONL file sink.
class StreamSink final : public observe::Sink {
public:
  StreamSink(StreamHub& hub, std::string jobId)
      : hub_(&hub), jobId_(std::move(jobId)) {}
  void write(const observe::TraceRecord& record) override;

private:
  StreamHub* hub_;
  std::string jobId_;
};

} // namespace motune::serve
