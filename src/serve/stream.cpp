#include "serve/stream.h"

#include "observe/metrics.h"

#include <algorithm>
#include <chrono>

namespace motune::serve {

// ----------------------------------------------------------- subscription

std::optional<support::Json> Subscription::next(double timeoutSeconds) {
  std::unique_lock lock(mutex_);
  if (queue_.empty() && !closed_) {
    ready_.wait_for(lock,
                    std::chrono::duration<double>(
                        std::max(0.0, timeoutSeconds)),
                    [this] { return !queue_.empty() || closed_; });
  }
  if (queue_.empty()) return std::nullopt;
  support::Json frame = std::move(queue_.front());
  queue_.pop_front();
  return frame;
}

bool Subscription::finished() const {
  std::lock_guard lock(mutex_);
  return closed_ && queue_.empty();
}

void Subscription::push(support::Json frame, bool control) {
  {
    std::lock_guard lock(mutex_);
    if (closed_) return;
    if (!control && queue_.size() >= capacity_) {
      dropped_.fetch_add(1, std::memory_order_relaxed);
      observe::MetricsRegistry::global()
          .counter("serve.stream.dropped")
          .add();
      return;
    }
    queue_.push_back(std::move(frame));
  }
  ready_.notify_one();
}

void Subscription::close() {
  {
    std::lock_guard lock(mutex_);
    closed_ = true;
  }
  ready_.notify_all();
}

// -------------------------------------------------------------------- hub

std::shared_ptr<Subscription> StreamHub::subscribe(const std::string& jobId) {
  auto sub = std::make_shared<Subscription>(bufferFrames_);
  {
    std::lock_guard lock(mutex_);
    subs_[jobId].push_back(sub);
  }
  subscriberCount_.fetch_add(1, std::memory_order_relaxed);
  observe::MetricsRegistry::global()
      .gauge("serve.stream.subscribers")
      .set(static_cast<double>(subscriberCount()));
  return sub;
}

void StreamHub::unsubscribe(const std::string& jobId,
                            const std::shared_ptr<Subscription>& sub) {
  bool removed = false;
  {
    std::lock_guard lock(mutex_);
    auto it = subs_.find(jobId);
    if (it != subs_.end()) {
      auto& list = it->second;
      auto pos = std::find(list.begin(), list.end(), sub);
      if (pos != list.end()) {
        list.erase(pos);
        removed = true;
      }
      if (list.empty()) subs_.erase(it);
    }
  }
  if (removed) {
    sub->close();
    subscriberCount_.fetch_sub(1, std::memory_order_relaxed);
    observe::MetricsRegistry::global()
        .gauge("serve.stream.subscribers")
        .set(static_cast<double>(subscriberCount()));
  }
}

void StreamHub::publishControl(const std::string& jobId,
                               support::Json frame) {
  if (!anySubscribers()) return;
  std::lock_guard lock(mutex_);
  auto it = subs_.find(jobId);
  if (it == subs_.end()) return;
  for (const auto& sub : it->second) sub->push(frame, /*control=*/true);
}

void StreamHub::publishBestEffort(const std::string& jobId,
                                  support::Json frame) {
  if (!anySubscribers()) return;
  std::lock_guard lock(mutex_);
  auto it = subs_.find(jobId);
  if (it == subs_.end()) return;
  observe::MetricsRegistry::global().counter("serve.stream.frames").add();
  for (const auto& sub : it->second) sub->push(frame, /*control=*/false);
}

void StreamHub::publishEnd(const std::string& jobId, support::Json frame) {
  std::vector<std::shared_ptr<Subscription>> ended;
  {
    std::lock_guard lock(mutex_);
    auto it = subs_.find(jobId);
    if (it == subs_.end()) return;
    ended = std::move(it->second);
    subs_.erase(it);
  }
  for (const auto& sub : ended) {
    sub->push(frame, /*control=*/true);
    sub->close();
  }
  subscriberCount_.fetch_sub(ended.size(), std::memory_order_relaxed);
  observe::MetricsRegistry::global()
      .gauge("serve.stream.subscribers")
      .set(static_cast<double>(subscriberCount()));
}

void StreamHub::closeAll() {
  std::map<std::string, std::vector<std::shared_ptr<Subscription>>> all;
  {
    std::lock_guard lock(mutex_);
    all = std::move(subs_);
    subs_.clear();
  }
  std::size_t count = 0;
  for (const auto& [id, list] : all) {
    for (const auto& sub : list) {
      sub->close();
      ++count;
    }
  }
  subscriberCount_.fetch_sub(count, std::memory_order_relaxed);
  observe::MetricsRegistry::global()
      .gauge("serve.stream.subscribers")
      .set(static_cast<double>(subscriberCount()));
}

// ------------------------------------------------------------------- sink

void StreamSink::write(const observe::TraceRecord& record) {
  if (!hub_->anySubscribers()) return;
  hub_->publishBestEffort(
      jobId_, support::Json(support::JsonObject{
                  {"stream", support::Json("trace")},
                  {"job", support::Json(jobId_)},
                  {"record", record.toJson()}}));
}

} // namespace motune::serve
