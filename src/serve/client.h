// Client side of the daemon protocol: one blocking TCP connection, one
// request/response pair per call. Used by the `motune submit` / `motune
// jobs` subcommands, tests/serve_test.cpp and bench/bench_serve.cpp; the
// CI load harness (tools/loadtest_serve.py) speaks the same frames from
// Python.
//
// Errors come back two ways, deliberately distinct:
//   - transport/protocol failures (cannot connect, connection dropped,
//     malformed frame) throw ProtocolError / support::CheckError;
//   - application failures ({"ok":false}) are data: request() returns the
//     response as-is, and the typed helpers rethrow the embedded error as
//     support::CheckError — except submit(), whose rejection (admission
//     control backpressure) is an expected outcome and is returned as a
//     value for the caller to retry on.
#pragma once

#include "serve/job.h"
#include "serve/protocol.h"

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace motune::serve {

/// Submit outcome as the client sees it (mirror of scheduler::Admission).
struct SubmitOutcome {
  bool accepted = false;
  std::string id;
  std::string error;
  double retryAfterSeconds = 0.0;
  bool cached = false; ///< id names an already-finished identical job
};

/// How a subscribe stream ended: the job's terminal state and how many
/// best-effort frames the daemon dropped for this subscriber (trace and
/// progress frames only — state and end frames are never dropped).
struct StreamEnd {
  std::string state;
  std::uint64_t dropped = 0;
};

class Client {
public:
  /// Connects immediately; throws support::CheckError on failure.
  Client(const std::string& host, int port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// One request/response round trip (the raw escape hatch).
  support::Json request(const support::Json& body);

  void ping();
  /// `noCache` forces a real run even when an identical spec already
  /// finished (the daemon's exact-spec result cache).
  SubmitOutcome submit(const JobSpec& spec, int priority = 0,
                       bool noCache = false);
  JobInfo status(const std::string& id);
  support::Json result(const std::string& id); ///< the artifact JSON
  std::string cancel(const std::string& id);   ///< returns the detail
  std::vector<JobInfo> list();
  support::Json stats();
  /// `stats --format prometheus`: the metrics registry rendered as
  /// Prometheus text exposition (observe/expose.h).
  std::string statsPrometheus();
  void shutdown(); ///< asks the daemon to stop accepting and exit

  /// Streams a job's live frames: sends the subscribe verb, invokes
  /// onFrame for every pushed frame (control/progress/trace — see
  /// docs/serve.md) and returns when the daemon sends the end frame. The
  /// connection is usable for further requests afterwards. Throws
  /// support::CheckError when the job is unknown.
  StreamEnd subscribe(const std::string& id,
                      const std::function<void(const support::Json&)>& onFrame);

  /// Polls status() until the job reaches a terminal state; returns the
  /// final info. Throws on timeout (<= 0 waits forever).
  JobInfo await(const std::string& id, double timeoutSeconds = 0.0,
                double pollSeconds = 0.02);

  /// Half-closes the socket from any thread, popping a blocked subscribe()
  /// or request() out with an error. The teardown path of `motune top`,
  /// whose watcher threads block in subscribe() indefinitely.
  void shutdownConnection();

private:
  int fd_ = -1;
  FrameReader reader_;
};

} // namespace motune::serve
