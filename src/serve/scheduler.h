// Multi-tenant job scheduler of the tuning daemon: a bounded priority
// queue in front of a fixed worker pool, with admission control and
// durable state (serve/store.h).
//
// Concurrency model: each worker thread runs one job at a time through its
// own AutoTuner — its own evaluation thread pool and its own memoizing
// CountingEvaluator — so jobs never share mutable tuning state and every
// job's artifact is bit-identical regardless of how many workers run or in
// which order jobs are dequeued (pinned by tests/serve_test.cpp). The only
// cross-job state is the process-wide MetricsRegistry, which feeds the
// daemon gauges (queue depth, active jobs, admission rejects, latency
// histograms) and never feeds back into a search.
//
// Admission control: the queue is bounded. A submit against a full queue
// is rejected immediately with a retry-after hint — backpressure at the
// edge instead of unbounded memory growth — and counted in
// serve.admission.rejects. An accepted job is persisted (job.json +
// `submitted` event) before submit() returns, so an acknowledged job
// survives a SIGKILL of the daemon from that instant on.
#pragma once

#include "serve/job.h"
#include "serve/store.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

namespace motune::serve {

class StreamHub;

struct SchedulerOptions {
  unsigned workers = 2;          ///< concurrent tuning jobs
  std::size_t queueCapacity = 64; ///< queued (not running) jobs admitted
  unsigned jobThreads = 1;       ///< evaluation workers per job
  int checkpointEvery = 1;       ///< generations between job checkpoints
  double retryAfterSeconds = 0.5; ///< backpressure hint on rejects
};

/// Outcome of a submit: accepted with an id, or rejected with the reason
/// and a retry-after hint (admission control) .
struct Admission {
  bool accepted = false;
  std::string id;
  std::string error;
  double retryAfterSeconds = 0.0;
  /// The spec matched an already-finished job byte for byte: `id` is that
  /// job's id and its artifact is immediately fetchable — nothing was
  /// scheduled (the serve result cache; opt out per submit with no_cache).
  bool cached = false;
};

/// Outcome of a cancel. Queued jobs cancel immediately; running
/// GDE3-family jobs stop cooperatively after the current generation (state
/// becomes `cancelling` on the wire until the worker confirms).
struct CancelOutcome {
  bool ok = false;
  std::string detail; ///< "cancelled" | "cancelling" | error text
};

class JobScheduler {
public:
  /// `hub` (optional) receives live frames — job state transitions,
  /// per-generation progress, trace records — for the daemon's subscribe
  /// verb. The scheduler never blocks on it (serve/stream.h).
  JobScheduler(JobStore& store, SchedulerOptions options,
               StreamHub* hub = nullptr);
  ~JobScheduler(); ///< stop()s if still running

  /// Recovers durable jobs from the store (done/failed/cancelled jobs
  /// surface in list(); interrupted ones re-enter the queue — ahead of
  /// anything submitted later, at their recorded priority) and spawns the
  /// workers. The recovery queue ignores the capacity bound: those jobs
  /// were already admitted once.
  void start();

  /// Graceful stop: workers finish their current job, the queue stays
  /// durable on disk for the next start. Idempotent.
  void stop();

  /// `noCache` bypasses the exact-spec result cache (for cacheable specs
  /// — see cacheableSpec() — the deterministic searches make a finished
  /// job's artifact the correct answer for any byte-identical
  /// resubmission; load harnesses that need N real runs of one spec opt
  /// out).
  Admission submit(const JobSpec& spec, int priority, bool noCache = false);
  CancelOutcome cancel(const std::string& id);
  std::optional<JobInfo> status(const std::string& id) const;
  std::vector<JobInfo> list() const;

  /// Daemon-level snapshot for the `stats` verb: queue/capacity/active,
  /// lifetime counters, and p50/p99 of the job latency histograms.
  support::Json stats() const;

  /// Blocks until the queue is empty and no job is running (load tests,
  /// benches). Returns false on timeout; <= 0 waits forever.
  bool drain(double timeoutSeconds = 0.0);

  std::size_t queueDepth() const;
  unsigned activeJobs() const;

private:
  struct Job {
    std::string id;
    JobSpec spec;
    int priority = 0;
    JobState state = JobState::Queued;
    double submittedUnix = 0.0;
    std::chrono::steady_clock::time_point enqueued;
    std::chrono::steady_clock::time_point started;
    double queueSeconds = 0.0;
    double runSeconds = 0.0;
    int resumes = 0;
    std::uint64_t evaluations = 0;
    double hypervolume = 0.0;
    std::size_t frontSize = 0;
    std::string error;
    std::string artifactPath;
    bool hasSession = false; ///< resume from the journal on first run
    std::atomic<bool> stopRequested{false};
    std::shared_ptr<JobLog> log;
  };

  void workerLoop();
  void runJob(const std::shared_ptr<Job>& job);
  void enqueueLocked(const std::shared_ptr<Job>& job, bool recovered);
  /// The warm-start corpus for a surrogate job: the pinned on-disk list
  /// when one exists, else the session journals of finished compatible
  /// jobs (pinned to disk before returning, so every resume sees the same
  /// list).
  std::vector<std::string> warmStartDirsFor(const Job& job);
  JobInfo infoOf(const Job& job) const; ///< caller holds mutex_
  /// Publishes a `{"stream":"control","event":"state",...}` frame (no-op
  /// without a hub or subscribers).
  void publishState(const std::string& id, JobState state);

  JobStore& store_;
  SchedulerOptions options_;
  StreamHub* hub_ = nullptr;

  mutable std::mutex mutex_;
  std::condition_variable wakeWorkers_;
  std::condition_variable idle_;
  /// Dequeue order: highest priority first (key stores -priority), FIFO
  /// within a priority level. Recovered jobs are enqueued during start(),
  /// before any new submission can race in, so they keep their on-disk id
  /// order and run ahead of new jobs of equal priority.
  std::map<std::pair<int, std::uint64_t>, std::shared_ptr<Job>> queue_;
  std::map<std::string, std::shared_ptr<Job>> jobs_;
  /// Exact-spec result cache: specHash -> id of the first job that
  /// finished that spec. Holds cacheable specs only (cacheableSpec():
  /// warm-started surrogate jobs are excluded — their artifacts are not
  /// pure functions of the spec). Rebuilt from recovered Done jobs on
  /// start() (the job directories are the source of truth; jobs/by-spec/
  /// is healed from them), extended as jobs finish.
  std::map<std::string, std::string> specIndex_;
  std::uint64_t seq_ = 0;
  unsigned active_ = 0;
  bool stopping_ = false;
  bool started_ = false;
  std::vector<std::thread> workers_;
};

} // namespace motune::serve
