#include "serve/client.h"

#include "support/check.h"

#include <chrono>
#include <cstring>
#include <thread>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

namespace motune::serve {

namespace {

/// Unwraps {"ok":true,...}; rethrows {"ok":false,"error":..} as CheckError.
const support::Json& unwrap(const support::Json& response) {
  MOTUNE_CHECK_MSG(response.has("ok"), "malformed response: no ok field");
  if (!response.at("ok").asBool()) {
    MOTUNE_CHECK_MSG(false, response.has("error")
                                ? response.at("error").asString()
                                : "request failed");
  }
  return response;
}

} // namespace

Client::Client(const std::string& host, int port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  MOTUNE_CHECK_MSG(fd_ >= 0, "client: cannot create socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  MOTUNE_CHECK_MSG(::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) == 1,
                   "client: invalid address: " + host);
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    MOTUNE_CHECK_MSG(false, "client: cannot connect to " + host + ":" +
                                std::to_string(port) + ": " + err);
  }
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

void Client::shutdownConnection() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

support::Json Client::request(const support::Json& body) {
  sendFrame(fd_, body);
  std::optional<support::Json> response = recvFrame(fd_, reader_);
  MOTUNE_CHECK_MSG(response.has_value(),
                   "client: daemon closed the connection");
  return std::move(*response);
}

void Client::ping() {
  unwrap(request(support::JsonObject{{"verb", "ping"}}));
}

SubmitOutcome Client::submit(const JobSpec& spec, int priority,
                             bool noCache) {
  support::JsonObject body{
      {"verb", "submit"}, {"spec", specToJson(spec)}, {"priority", priority}};
  if (noCache) body.emplace("no_cache", true);
  const support::Json response = request(std::move(body));
  SubmitOutcome outcome;
  outcome.accepted = response.at("ok").asBool();
  if (outcome.accepted) {
    outcome.id = response.at("id").asString();
    outcome.cached = response.has("cached") && response.at("cached").asBool();
  } else {
    outcome.error = response.at("error").asString();
    if (response.has("retry_after"))
      outcome.retryAfterSeconds = response.at("retry_after").asNumber();
  }
  return outcome;
}

JobInfo Client::status(const std::string& id) {
  const support::Json response =
      unwrap(request(support::JsonObject{{"verb", "status"}, {"id", id}}));
  return infoFromJson(response.at("job"));
}

support::Json Client::result(const std::string& id) {
  const support::Json response =
      unwrap(request(support::JsonObject{{"verb", "result"}, {"id", id}}));
  return response.at("artifact");
}

std::string Client::cancel(const std::string& id) {
  const support::Json response =
      unwrap(request(support::JsonObject{{"verb", "cancel"}, {"id", id}}));
  return response.at("detail").asString();
}

std::vector<JobInfo> Client::list() {
  const support::Json response =
      unwrap(request(support::JsonObject{{"verb", "list"}}));
  std::vector<JobInfo> jobs;
  for (const auto& job : response.at("jobs").asArray())
    jobs.push_back(infoFromJson(job));
  return jobs;
}

support::Json Client::stats() {
  return unwrap(request(support::JsonObject{{"verb", "stats"}})).at("stats");
}

std::string Client::statsPrometheus() {
  return unwrap(request(support::JsonObject{{"verb", "stats"},
                                            {"format", "prometheus"}}))
      .at("prometheus")
      .asString();
}

StreamEnd Client::subscribe(
    const std::string& id,
    const std::function<void(const support::Json&)>& onFrame) {
  unwrap(request(support::JsonObject{{"verb", "subscribe"}, {"id", id}}));
  StreamEnd end;
  for (;;) {
    std::optional<support::Json> frame = recvFrame(fd_, reader_);
    MOTUNE_CHECK_MSG(frame.has_value(),
                     "client: daemon closed the stream before the end frame");
    const std::string stream =
        frame->has("stream") ? frame->at("stream").asString() : "";
    if (stream == "end") {
      end.state = frame->at("state").asString();
      end.dropped = std::stoull(frame->at("dropped").asString());
      return end;
    }
    if (onFrame) onFrame(*frame);
  }
}

void Client::shutdown() {
  unwrap(request(support::JsonObject{{"verb", "shutdown"}}));
}

JobInfo Client::await(const std::string& id, double timeoutSeconds,
                      double pollSeconds) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(timeoutSeconds));
  for (;;) {
    JobInfo info = status(id);
    if (info.state == JobState::Done || info.state == JobState::Failed ||
        info.state == JobState::Cancelled)
      return info;
    if (timeoutSeconds > 0.0 && std::chrono::steady_clock::now() >= deadline)
      MOTUNE_CHECK_MSG(false, "await: job " + id + " still " +
                                  jobStateName(info.state) + " after " +
                                  std::to_string(timeoutSeconds) + "s");
    std::this_thread::sleep_for(std::chrono::duration<double>(pollSeconds));
  }
}

} // namespace motune::serve
