#include "serve/job.h"

#include "kernels/kernel.h"
#include "machine/machine.h"
#include "session/session.h"
#include "support/check.h"
#include "tuning/island.h"

#include <cstdio>

namespace motune::serve {

namespace {

const char* objectiveName(tuning::Objective o) {
  switch (o) {
  case tuning::Objective::Time: return "time";
  case tuning::Objective::Resources: return "resources";
  case tuning::Objective::Energy: return "energy";
  }
  return "unknown";
}

tuning::Objective objectiveFromName(const std::string& name) {
  if (name == "time") return tuning::Objective::Time;
  if (name == "resources") return tuning::Objective::Resources;
  if (name == "energy") return tuning::Objective::Energy;
  MOTUNE_CHECK_MSG(false, "unknown objective: " + name);
  return tuning::Objective::Time;
}

std::vector<tuning::Objective> effectiveObjectives(const JobSpec& spec) {
  if (!spec.objectives.empty()) return spec.objectives;
  return {tuning::Objective::Time, tuning::Objective::Resources};
}

} // namespace

support::Json specToJson(const JobSpec& spec) {
  support::JsonArray objectives;
  for (tuning::Objective o : effectiveObjectives(spec))
    objectives.emplace_back(objectiveName(o));
  support::JsonObject obj{
      {"kernel", spec.kernel},
      {"machine", spec.machine},
      {"n", spec.n},
      {"algorithm", spec.algorithm},
      {"seed", std::to_string(spec.seed)}, // u64-safe (JSON numbers are doubles)
      {"objectives", std::move(objectives)},
      {"budget", std::to_string(spec.budget)},
      {"surrogate_keep", spec.surrogateKeep},
  };
  // Emitted only when non-default: the canonical dump feeds specHash, and
  // unconditional new fields would invalidate every existing result-cache
  // entry (jobs/by-spec) for specs that never asked for islands/seeding.
  if (spec.islands > 1) obj.emplace("islands", spec.islands);
  if (spec.seedAnalytic) obj.emplace("seed_analytic", true);
  return obj;
}

JobSpec specFromJson(const support::Json& json) {
  JobSpec spec;
  spec.kernel = json.at("kernel").asString();
  spec.machine = json.at("machine").asString();
  spec.n = json.at("n").asInt();
  spec.algorithm = json.at("algorithm").asString();
  spec.seed = std::stoull(json.at("seed").asString());
  spec.objectives.clear();
  for (const auto& o : json.at("objectives").asArray())
    spec.objectives.push_back(objectiveFromName(o.asString()));
  spec.budget = std::stoull(json.at("budget").asString());
  // Absent in job.json written by older daemons: default = no surrogate.
  if (json.has("surrogate_keep"))
    spec.surrogateKeep = json.at("surrogate_keep").asNumber();
  if (json.has("islands"))
    spec.islands = static_cast<int>(json.at("islands").asInt());
  if (json.has("seed_analytic"))
    spec.seedAnalytic = json.at("seed_analytic").asBool();
  return spec;
}

std::string specHash(const JobSpec& spec) {
  const std::string canonical = specToJson(spec).dump(-1);
  std::uint64_t h = 0xcbf29ce484222325ULL; // FNV-1a 64 offset basis
  for (unsigned char c : canonical) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

bool cacheableSpec(const JobSpec& spec) { return spec.surrogateKeep >= 1.0; }

void validateSpec(const JobSpec& spec) {
  kernels::kernelByName(spec.kernel); // throws on an unknown kernel
  MOTUNE_CHECK_MSG(spec.machine == "westmere" || spec.machine == "barcelona",
                   "unknown machine: " + spec.machine +
                       " (available: westmere, barcelona)");
  MOTUNE_CHECK_MSG(spec.n >= 0, "problem size must be >= 0");
  MOTUNE_CHECK_MSG(spec.algorithm == "rsgde3" || spec.algorithm == "gde3" ||
                       spec.algorithm == "nsga2" ||
                       spec.algorithm == "random",
                   "unknown algorithm: " + spec.algorithm +
                       " (available: rsgde3, gde3, nsga2, random)");
  for (tuning::Objective o : spec.objectives) (void)objectiveName(o);
  MOTUNE_CHECK_MSG(spec.surrogateKeep > 0.0 && spec.surrogateKeep <= 1.0,
                   "surrogate_keep must be in (0, 1]");
  MOTUNE_CHECK_MSG(spec.surrogateKeep == 1.0 ||
                       checkpointable(spec.algorithm),
                   "surrogate_keep < 1 requires algorithm rsgde3 or gde3");
  MOTUNE_CHECK_MSG(spec.islands >= 1, "islands must be >= 1");
  MOTUNE_CHECK_MSG(spec.islands == 1 || checkpointable(spec.algorithm),
                   "islands > 1 requires algorithm rsgde3 or gde3");
  MOTUNE_CHECK_MSG(spec.islands == 1 || spec.surrogateKeep == 1.0,
                   "islands > 1 is incompatible with surrogate_keep < 1 "
                   "(the surrogate is not shared between islands)");
  MOTUNE_CHECK_MSG(!spec.seedAnalytic || checkpointable(spec.algorithm),
                   "seed_analytic requires algorithm rsgde3 or gde3");
}

bool checkpointable(const std::string& algorithm) {
  return algorithm == "rsgde3" || algorithm == "gde3";
}

tuning::KernelTuningProblem problemFromSpec(const JobSpec& spec) {
  const machine::MachineModel machine = spec.machine == "barcelona"
                                            ? machine::barcelona()
                                            : machine::westmere();
  return tuning::KernelTuningProblem(kernels::kernelByName(spec.kernel),
                                     machine, spec.n, {},
                                     effectiveObjectives(spec));
}

autotune::TunerOptions tunerOptionsFromSpec(
    const JobSpec& spec, const std::string& sessionDir, unsigned jobThreads,
    int checkpointEvery, const std::vector<std::string>& warmStartDirs) {
  autotune::TunerOptions options;
  if (spec.algorithm == "rsgde3")
    options.algorithm = autotune::Algorithm::RSGDE3;
  else if (spec.algorithm == "gde3")
    options.algorithm = autotune::Algorithm::PlainGDE3;
  else if (spec.algorithm == "nsga2")
    options.algorithm = autotune::Algorithm::NSGA2;
  else if (spec.algorithm == "random")
    options.algorithm = autotune::Algorithm::Random;
  else
    MOTUNE_CHECK_MSG(false, "unknown algorithm: " + spec.algorithm);
  options.gde3.seed = spec.seed;
  options.nsga2.seed = spec.seed;
  options.randomBudget = spec.budget;
  options.evaluationWorkers = jobThreads == 0 ? 1 : jobThreads;
  options.seedAnalytic = spec.seedAnalytic;
  options.islands = spec.islands;
  if (checkpointable(spec.algorithm) && !sessionDir.empty()) {
    options.session.directory = sessionDir;
    options.session.checkpointEvery = checkpointEvery;
    // Island jobs journal under per-island subdirectories, so restart
    // detection probes island 0's journal instead of the root one.
    options.session.resume =
        spec.islands > 1
            ? session::sessionExists(tuning::islandDirectory(sessionDir, 0))
            : session::sessionExists(sessionDir);
  }
  if (spec.surrogateKeep < 1.0) {
    options.surrogateEnabled = true;
    options.surrogateKeep = spec.surrogateKeep;
    options.warmStartDirs = warmStartDirs;
  }
  return options;
}

const char* jobStateName(JobState state) {
  switch (state) {
  case JobState::Queued: return "queued";
  case JobState::Running: return "running";
  case JobState::Done: return "done";
  case JobState::Failed: return "failed";
  case JobState::Cancelled: return "cancelled";
  }
  return "unknown";
}

JobState jobStateFromName(const std::string& name) {
  if (name == "queued") return JobState::Queued;
  if (name == "running") return JobState::Running;
  if (name == "done") return JobState::Done;
  if (name == "failed") return JobState::Failed;
  if (name == "cancelled") return JobState::Cancelled;
  MOTUNE_CHECK_MSG(false, "unknown job state: " + name);
  return JobState::Queued;
}

support::Json infoToJson(const JobInfo& info) {
  return support::JsonObject{
      {"id", info.id},
      {"state", jobStateName(info.state)},
      {"priority", info.priority},
      {"spec", specToJson(info.spec)},
      {"submitted_unix", info.submittedUnix},
      {"queue_seconds", info.queueSeconds},
      {"run_seconds", info.runSeconds},
      {"resumes", info.resumes},
      {"evaluations", std::to_string(info.evaluations)},
      {"hypervolume", info.hypervolume},
      {"front_size", info.frontSize},
      {"error", info.error},
      {"artifact", info.artifactPath},
  };
}

JobInfo infoFromJson(const support::Json& json) {
  JobInfo info;
  info.id = json.at("id").asString();
  info.state = jobStateFromName(json.at("state").asString());
  info.priority = static_cast<int>(json.at("priority").asInt());
  info.spec = specFromJson(json.at("spec"));
  info.submittedUnix = json.at("submitted_unix").asNumber();
  info.queueSeconds = json.at("queue_seconds").asNumber();
  info.runSeconds = json.at("run_seconds").asNumber();
  info.resumes = static_cast<int>(json.at("resumes").asInt());
  info.evaluations = std::stoull(json.at("evaluations").asString());
  info.hypervolume = json.at("hypervolume").asNumber();
  info.frontSize = static_cast<std::size_t>(json.at("front_size").asInt());
  info.error = json.at("error").asString();
  info.artifactPath = json.at("artifact").asString();
  return info;
}

} // namespace motune::serve
