#include "serve/scheduler.h"

#include "autotune/artifact.h"
#include "observe/metrics.h"
#include "observe/trace.h"
#include "serve/stream.h"
#include "support/check.h"

#include <algorithm>
#include <chrono>
#include <exception>
#include <fstream>

namespace motune::serve {

namespace {

double nowUnix() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

double secondsSince(std::chrono::steady_clock::time_point t) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t)
      .count();
}

observe::MetricsRegistry& metrics() {
  return observe::MetricsRegistry::global();
}

} // namespace

JobScheduler::JobScheduler(JobStore& store, SchedulerOptions options,
                           StreamHub* hub)
    : store_(store), options_(options), hub_(hub) {
  if (options_.workers == 0) options_.workers = 1;
}

void JobScheduler::publishState(const std::string& id, JobState state) {
  if (hub_ == nullptr || !hub_->anySubscribers()) return;
  hub_->publishControl(
      id, support::Json(support::JsonObject{
              {"stream", support::Json("control")},
              {"event", support::Json("state")},
              {"job", support::Json(id)},
              {"state", support::Json(jobStateName(state))}}));
}

JobScheduler::~JobScheduler() { stop(); }

void JobScheduler::start() {
  std::vector<RecoveredJob> recovered = store_.recover();
  {
    std::lock_guard lock(mutex_);
    MOTUNE_CHECK_MSG(!started_, "scheduler already started");
    started_ = true;
    stopping_ = false;
    for (RecoveredJob& rec : recovered) {
      auto job = std::make_shared<Job>();
      job->id = rec.id;
      job->spec = rec.spec;
      job->priority = rec.priority;
      job->state = rec.state;
      job->submittedUnix = rec.submittedUnix;
      job->enqueued = std::chrono::steady_clock::now();
      job->error = rec.error;
      job->hasSession = rec.hasSession;
      job->log = store_.log(rec.id);
      if (rec.state == JobState::Done) {
        job->evaluations = rec.doneInfo.evaluations;
        job->hypervolume = rec.doneInfo.hypervolume;
        job->frontSize = rec.doneInfo.frontSize;
        job->resumes = rec.doneInfo.resumes;
        job->artifactPath = rec.doneInfo.artifactPath;
      }
      jobs_.emplace(job->id, job);
      if (rec.state == JobState::Queued) enqueueLocked(job, /*recovered=*/true);
      // Result cache: recovered in id order, so emplace keeps the earliest
      // finished job for each distinct spec across restarts too.
      // Warm-started specs are never cacheable (see submit()).
      if (rec.state == JobState::Done && cacheableSpec(rec.spec))
        specIndex_.emplace(specHash(rec.spec), job->id);
    }
    for (const auto& [hash, id] : specIndex_) store_.indexSpec(hash, id);
    metrics().gauge("serve.queue_depth").set(static_cast<double>(queue_.size()));
  }
  // Touch the whole cache counter family up front so every scrape exposes
  // all three members — a member absent until its first event reads as an
  // incomplete family on dashboards.
  metrics().counter("serve.cache.lookups");
  metrics().counter("serve.cache.hits");
  metrics().counter("serve.cache.misses");
  for (unsigned i = 0; i < options_.workers; ++i)
    workers_.emplace_back([this] { workerLoop(); });
}

void JobScheduler::stop() {
  {
    std::lock_guard lock(mutex_);
    if (!started_) return;
    stopping_ = true;
  }
  wakeWorkers_.notify_all();
  for (std::thread& t : workers_)
    if (t.joinable()) t.join();
  workers_.clear();
  std::lock_guard lock(mutex_);
  started_ = false;
}

void JobScheduler::enqueueLocked(const std::shared_ptr<Job>& job,
                                 bool recovered) {
  queue_.emplace(std::make_pair(-job->priority, seq_++), job);
  if (recovered) job->log->record("requeued", {{"priority", job->priority}});
}

Admission JobScheduler::submit(const JobSpec& spec, int priority,
                               bool noCache) {
  Admission admission;
  try {
    validateSpec(spec);
  } catch (const support::CheckError& e) {
    admission.error = e.what();
    metrics().counter("serve.admission.invalid").add();
    return admission;
  }

  // Admission control: persistNewJob touches the disk, so check capacity
  // first and do the I/O outside the lock only after reserving a slot is
  // impossible to get wrong — here the simple order is check + persist +
  // enqueue all under the lock; job submission is not the hot path.
  std::unique_lock lock(mutex_);
  if (stopping_ || !started_) {
    admission.error = "daemon is shutting down";
    return admission;
  }

  // Exact-spec result cache: a byte-identical spec that already finished
  // gets the finished job's id back — before the capacity check, since
  // nothing is scheduled. Only warm-start-free specs (surrogate_keep ==
  // 1) are eligible: below 1 the artifact also depends on the corpus of
  // compatible jobs that had finished when the job first ran
  // (warmStartDirsFor), so an identical spec submitted later can
  // legitimately produce a different artifact. Ineligible submits skip
  // the lookup entirely (no serve.cache.* counter moves). The artifact
  // existence check guards against an operator deleting a job directory
  // behind the index.
  if (!noCache && cacheableSpec(spec)) {
    metrics().counter("serve.cache.lookups").add();
    const auto hit = specIndex_.find(specHash(spec));
    std::shared_ptr<Job> cachedJob;
    if (hit != specIndex_.end()) {
      const auto it = jobs_.find(hit->second);
      // The 64-bit hash alone is not proof of identity: verify the
      // indexed job's canonical spec JSON matches before serving it, so
      // a hash collision demotes to a miss instead of returning another
      // spec's artifact.
      if (it != jobs_.end() && it->second->state == JobState::Done &&
          specToJson(it->second->spec).dump(-1) ==
              specToJson(spec).dump(-1) &&
          std::ifstream(store_.artifactPath(hit->second)).good())
        cachedJob = it->second;
    }
    if (cachedJob) {
      metrics().counter("serve.cache.hits").add();
      admission.accepted = true;
      admission.cached = true;
      admission.id = cachedJob->id;
      lock.unlock();
      cachedJob->log->record("cache_hit", {{"priority", priority}});
      return admission;
    }
    metrics().counter("serve.cache.misses").add();
  }

  if (queue_.size() >= options_.queueCapacity) {
    admission.error = "queue full";
    admission.retryAfterSeconds = options_.retryAfterSeconds;
    metrics().counter("serve.admission.rejects").add();
    return admission;
  }

  const double submitted = nowUnix();
  const std::string id = store_.persistNewJob(spec, priority, submitted);
  auto job = std::make_shared<Job>();
  job->id = id;
  job->spec = spec;
  job->priority = priority;
  job->submittedUnix = submitted;
  job->enqueued = std::chrono::steady_clock::now();
  job->log = store_.log(id);
  job->log->record("submitted", {{"priority", priority},
                                 {"spec", specToJson(spec)}});
  jobs_.emplace(id, job);
  enqueueLocked(job, /*recovered=*/false);
  metrics().counter("serve.submits").add();
  metrics().gauge("serve.queue_depth").set(static_cast<double>(queue_.size()));
  lock.unlock();
  wakeWorkers_.notify_one();

  admission.accepted = true;
  admission.id = id;
  return admission;
}

CancelOutcome JobScheduler::cancel(const std::string& id) {
  CancelOutcome outcome;
  std::shared_ptr<Job> toMark; // markCancelled outside the lock
  {
    std::lock_guard lock(mutex_);
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {
      outcome.detail = "unknown job: " + id;
      return outcome;
    }
    Job& job = *it->second;
    switch (job.state) {
    case JobState::Queued: {
      for (auto qit = queue_.begin(); qit != queue_.end(); ++qit)
        if (qit->second->id == id) {
          queue_.erase(qit);
          break;
        }
      job.state = JobState::Cancelled;
      job.queueSeconds = secondsSince(job.enqueued);
      toMark = it->second;
      outcome.ok = true;
      outcome.detail = "cancelled";
      metrics().counter("serve.jobs.cancelled").add();
      metrics().gauge("serve.queue_depth")
          .set(static_cast<double>(queue_.size()));
      break;
    }
    case JobState::Running:
      // Cooperative: the worker observes the flag between generations,
      // discards the partial result and confirms the cancellation.
      job.stopRequested.store(true);
      outcome.ok = true;
      outcome.detail = "cancelling";
      break;
    case JobState::Done:
    case JobState::Failed:
    case JobState::Cancelled:
      outcome.detail = std::string("job already ") + jobStateName(job.state);
      break;
    }
  }
  if (toMark) {
    store_.markCancelled(id);
    toMark->log->record("cancelled", {{"while", "queued"}});
    if (hub_ != nullptr)
      hub_->publishEnd(
          id, support::Json(support::JsonObject{
                  {"stream", support::Json("control")},
                  {"event", support::Json("state")},
                  {"job", support::Json(id)},
                  {"state", support::Json(jobStateName(JobState::Cancelled))}}));
  }
  return outcome;
}

JobInfo JobScheduler::infoOf(const Job& job) const {
  JobInfo info;
  info.id = job.id;
  info.state = job.state;
  info.priority = job.priority;
  info.spec = job.spec;
  info.submittedUnix = job.submittedUnix;
  info.queueSeconds = job.state == JobState::Queued
                          ? secondsSince(job.enqueued)
                          : job.queueSeconds;
  info.runSeconds = job.state == JobState::Running ? secondsSince(job.started)
                                                   : job.runSeconds;
  info.resumes = job.resumes;
  info.evaluations = job.evaluations;
  info.hypervolume = job.hypervolume;
  info.frontSize = job.frontSize;
  info.error = job.error;
  info.artifactPath = job.artifactPath;
  return info;
}

std::optional<JobInfo> JobScheduler::status(const std::string& id) const {
  std::lock_guard lock(mutex_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  return infoOf(*it->second);
}

std::vector<JobInfo> JobScheduler::list() const {
  std::lock_guard lock(mutex_);
  std::vector<JobInfo> out;
  out.reserve(jobs_.size());
  for (const auto& [id, job] : jobs_) out.push_back(infoOf(*job));
  return out;
}

support::Json JobScheduler::stats() const {
  std::size_t depth;
  unsigned active;
  {
    std::lock_guard lock(mutex_);
    depth = queue_.size();
    active = active_;
  }
  auto& reg = metrics();
  const auto wait = reg.histogram("serve.job.queue_seconds").snapshot();
  const auto run = reg.histogram("serve.job.run_seconds").snapshot();
  const auto total = reg.histogram("serve.job.total_seconds").snapshot();
  auto summary = [](const observe::Histogram::Snapshot& s) -> support::Json {
    return support::JsonObject{{"count", std::to_string(s.count)},
                               {"mean", s.mean()},
                               {"p50", s.p50()},
                               {"p99", s.p99()}};
  };
  return support::JsonObject{
      {"queue_depth", static_cast<std::int64_t>(depth)},
      {"queue_capacity", static_cast<std::int64_t>(options_.queueCapacity)},
      {"active_jobs", static_cast<std::int64_t>(active)},
      {"workers", static_cast<std::int64_t>(options_.workers)},
      {"submits",
       std::to_string(reg.counter("serve.submits").value())},
      {"admission_rejects",
       std::to_string(reg.counter("serve.admission.rejects").value())},
      {"completed", std::to_string(reg.counter("serve.jobs.done").value())},
      {"failed", std::to_string(reg.counter("serve.jobs.failed").value())},
      {"cancelled",
       std::to_string(reg.counter("serve.jobs.cancelled").value())},
      {"resumed", std::to_string(reg.counter("serve.jobs.resumed").value())},
      {"cache_lookups",
       std::to_string(reg.counter("serve.cache.lookups").value())},
      {"cache_hits",
       std::to_string(reg.counter("serve.cache.hits").value())},
      {"cache_misses",
       std::to_string(reg.counter("serve.cache.misses").value())},
      {"queue_seconds", summary(wait)},
      {"run_seconds", summary(run)},
      {"total_seconds", summary(total)},
  };
}

bool JobScheduler::drain(double timeoutSeconds) {
  std::unique_lock lock(mutex_);
  auto done = [this] { return queue_.empty() && active_ == 0; };
  if (timeoutSeconds <= 0.0) {
    idle_.wait(lock, done);
    return true;
  }
  return idle_.wait_for(lock, std::chrono::duration<double>(timeoutSeconds),
                        done);
}

std::size_t JobScheduler::queueDepth() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

unsigned JobScheduler::activeJobs() const {
  std::lock_guard lock(mutex_);
  return active_;
}

void JobScheduler::workerLoop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock lock(mutex_);
      wakeWorkers_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (stopping_) return;
      job = queue_.begin()->second;
      queue_.erase(queue_.begin());
      job->state = JobState::Running;
      job->started = std::chrono::steady_clock::now();
      job->queueSeconds = secondsSince(job->enqueued);
      ++active_;
      metrics().gauge("serve.queue_depth")
          .set(static_cast<double>(queue_.size()));
      metrics().gauge("serve.active_jobs").set(static_cast<double>(active_));
    }
    publishState(job->id, JobState::Running);
    runJob(job);
    {
      std::lock_guard lock(mutex_);
      --active_;
      metrics().gauge("serve.active_jobs").set(static_cast<double>(active_));
    }
    idle_.notify_all();
  }
}

std::vector<std::string> JobScheduler::warmStartDirsFor(const Job& job) {
  if (std::optional<std::vector<std::string>> pinned =
          store_.readWarmStart(job.id))
    return *pinned;
  // First run: the corpus is the session journals of finished jobs over
  // the same problem (kernel/machine/n/objectives; seed and algorithm may
  // differ — session::warmStartCompatible re-checks per journal). Pinned
  // to disk before the search starts: the list is part of the search
  // identity once culling is on, and a later resume must not see a corpus
  // grown by jobs that finished in between.
  std::vector<std::string> dirs;
  const std::string objectives =
      specToJson(job.spec).at("objectives").dump(-1);
  {
    std::lock_guard lock(mutex_);
    for (const auto& [id, other] : jobs_) { // id order: deterministic
      if (id == job.id || other->state != JobState::Done) continue;
      const JobSpec& s = other->spec;
      if (s.kernel != job.spec.kernel || s.machine != job.spec.machine ||
          s.n != job.spec.n ||
          specToJson(s).at("objectives").dump(-1) != objectives)
        continue;
      if (!session::sessionExists(store_.sessionDir(id))) continue;
      dirs.push_back(store_.sessionDir(id));
      if (dirs.size() >= 8) break; // bounded preload cost
    }
  }
  store_.writeWarmStart(job.id, dirs);
  return dirs;
}

void JobScheduler::runJob(const std::shared_ptr<Job>& job) {
  job->log->record("started", {{"resume", job->hasSession},
                               {"queue_seconds", job->queueSeconds}});
  if (job->hasSession) metrics().counter("serve.jobs.resumed").add();

  // Per-job tracer: every span/event this job's search emits — from any
  // thread of its private evaluation pool — lands in the job's own
  // trace.jsonl, stamped with the job id and run sequence. A restarted
  // daemon appends run 1, 2, ... to the same file, and the span-id base
  // (job number in the high bits, run sequence below) keeps ids globally
  // unique across concurrent jobs and across resumes of one job.
  const int runSeq = store_.traceRunCount(job->id);
  std::uint64_t jobNum = 0;
  try {
    jobNum = std::stoull(job->id.substr(1));
  } catch (const std::exception&) {
    jobNum = 0;
  }
  observe::Tracer jobTracer;
  jobTracer.seedIds((jobNum << 32) |
                    (static_cast<std::uint64_t>(runSeq & 0xff) << 24) | 1);
  jobTracer.setStamp({{"job", support::Json(job->id)},
                      {"run", support::Json(runSeq)}});
  jobTracer.addSink(std::make_shared<observe::JsonLinesSink>(
      store_.tracePath(job->id), observe::JsonLinesSink::Mode::Append));
  if (hub_ != nullptr)
    jobTracer.addSink(std::make_shared<StreamSink>(*hub_, job->id));
  jobTracer.event("serve.job.start",
                  {{"resume", support::Json(job->hasSession)},
                   {"queue_seconds", support::Json(job->queueSeconds)},
                   {"kernel", support::Json(job->spec.kernel)},
                   {"algorithm", support::Json(job->spec.algorithm)}});

  JobState finalState;
  std::string error;
  autotune::TuningResult result;
  try {
    // The override covers the tuner's whole lifetime; its evaluation pool
    // threads inherit it through ThreadPool::submit. The tuner (and its
    // pool) is destroyed before jobTracer goes out of scope below.
    observe::ScopedTracer traceScope(&jobTracer);
    tuning::KernelTuningProblem problem = problemFromSpec(job->spec);
    std::vector<std::string> warmDirs;
    if (job->spec.surrogateKeep < 1.0) warmDirs = warmStartDirsFor(*job);
    autotune::TunerOptions options = tunerOptionsFromSpec(
        job->spec, store_.sessionDir(job->id), options_.jobThreads,
        options_.checkpointEvery, warmDirs);
    options.stopRequested = [job] { return job->stopRequested.load(); };
    options.onProgress = [this, job](const opt::GenerationProgress& p) {
      {
        std::lock_guard lock(mutex_);
        job->evaluations = p.evaluations;
        job->hypervolume = p.hypervolume;
        job->frontSize = p.frontSize;
      }
      if (hub_ != nullptr && hub_->anySubscribers())
        hub_->publishBestEffort(
            job->id,
            support::Json(support::JsonObject{
                {"stream", support::Json("progress")},
                {"job", support::Json(job->id)},
                {"generation", support::Json(p.generation)},
                {"hypervolume", support::Json(p.hypervolume)},
                {"gen_hypervolume", support::Json(p.genHypervolume)},
                {"front_size",
                 support::Json(static_cast<std::uint64_t>(p.frontSize))},
                {"evaluations",
                 support::Json(std::to_string(p.evaluations))}}));
    };
    autotune::AutoTuner tuner(std::move(options));
    result = tuner.tune(problem);
    if (job->stopRequested.load()) {
      finalState = JobState::Cancelled;
    } else {
      autotune::TunedArtifact artifact = autotune::makeArtifact(result, problem);
      autotune::saveArtifact(artifact, store_.artifactPath(job->id));
      finalState = JobState::Done;
    }
  } catch (const std::exception& e) {
    finalState = JobState::Failed;
    error = e.what();
  }

  const double runSeconds = secondsSince(job->started);
  bool indexNew = false;
  std::string indexHash;
  {
    std::lock_guard lock(mutex_);
    job->state = finalState;
    job->runSeconds = runSeconds;
    job->error = error;
    if (finalState == JobState::Done) {
      job->evaluations = result.evaluations;
      job->hypervolume = result.hypervolume;
      job->frontSize = result.front.size();
      job->resumes = result.session ? result.session->resumes : 0;
      job->artifactPath = store_.artifactPath(job->id);
      // Warm-started jobs (surrogate_keep < 1) are not cacheable: their
      // artifact depends on the store's contents at first run, not just
      // the spec — never index them.
      if (cacheableSpec(job->spec)) {
        indexHash = specHash(job->spec);
        indexNew = specIndex_.emplace(indexHash, job->id).second;
      }
    }
  }
  // Keep-first: only the job that claimed the in-memory entry writes the
  // on-disk index, so concurrent no-cache runs of one spec cannot flap it.
  if (indexNew) store_.indexSpec(indexHash, job->id);

  auto& reg = metrics();
  switch (finalState) {
  case JobState::Done:
    job->log->record("finished",
                     {{"run_seconds", runSeconds},
                      {"evaluations", std::to_string(result.evaluations)},
                      {"hypervolume", result.hypervolume},
                      {"front_size",
                       static_cast<std::int64_t>(result.front.size())},
                      {"resumes", result.session ? result.session->resumes : 0}});
    reg.counter("serve.jobs.done").add();
    break;
  case JobState::Cancelled:
    store_.markCancelled(job->id);
    job->log->record("cancelled",
                     {{"while", "running"}, {"run_seconds", runSeconds}});
    reg.counter("serve.jobs.cancelled").add();
    break;
  case JobState::Failed:
  default:
    store_.markFailed(job->id, error);
    job->log->record("failed",
                     {{"error", error}, {"run_seconds", runSeconds}});
    reg.counter("serve.jobs.failed").add();
    break;
  }
  reg.histogram("serve.job.queue_seconds").observe(job->queueSeconds);
  reg.histogram("serve.job.run_seconds").observe(runSeconds);
  reg.histogram("serve.job.total_seconds")
      .observe(job->queueSeconds + runSeconds);

  jobTracer.event("serve.job.finish",
                  {{"state", support::Json(jobStateName(finalState))},
                   {"run_seconds", support::Json(runSeconds)},
                   {"evaluations",
                    support::Json(std::to_string(job->evaluations))},
                   {"hypervolume", support::Json(job->hypervolume)}});
  // Drop the sinks before the tracer dies: the StreamSink borrows the hub
  // and the file sink should flush/close deterministically here, not at
  // some later destructor ordering.
  jobTracer.clearSinks();

  if (hub_ != nullptr)
    hub_->publishEnd(
        job->id,
        support::Json(support::JsonObject{
            {"stream", support::Json("control")},
            {"event", support::Json("state")},
            {"job", support::Json(job->id)},
            {"state", support::Json(jobStateName(finalState))}}));
}

} // namespace motune::serve
