// Wire protocol of the motune tuning daemon: length-prefixed JSON frames
// over a stream socket.
//
// A frame is a 4-byte big-endian unsigned payload length followed by that
// many bytes of UTF-8 JSON (one request or one response object). The
// length prefix makes message boundaries explicit — no sentinel scanning,
// no ambiguity with embedded newlines — and caps resource usage: a frame
// longer than kMaxFrameBytes is a protocol error and the connection is
// dropped, so a misbehaving client cannot balloon the daemon's memory.
//
// The verb vocabulary (submit/status/result/cancel/list/stats/ping/
// shutdown) and the response envelope ({"ok":true,...} /
// {"ok":false,"error":...,"retry_after_ms":...}) are specified field by
// field in docs/serve.md; this layer only moves JSON values across the
// socket. FrameReader is the incremental decoder: feed it whatever chunk
// sizes the transport delivers (partial reads are the common case under
// load) and it yields complete payloads in order.
#pragma once

#include "support/json.h"

#include <cstddef>
#include <cstdint>
#include <optional>
#include <stdexcept>
#include <string>

namespace motune::serve {

/// Hard cap on one frame's payload. Generous for the protocol's payloads
/// (specs, status lists, artifacts — all well under a megabyte) while
/// bounding what one connection can make the peer buffer.
inline constexpr std::size_t kMaxFrameBytes = 4u << 20;

/// Framing violation: oversized length prefix, unparseable payload, or a
/// stream that ends mid-frame. The daemon answers with a best-effort error
/// response and drops the connection; clients surface it to the caller.
class ProtocolError : public std::runtime_error {
public:
  explicit ProtocolError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Serializes one message to its on-wire bytes (prefix + compact JSON).
std::string encodeFrame(const support::Json& message);

/// Incremental frame decoder. feed() appends raw bytes in whatever chunks
/// arrived; next() returns the earliest complete payload, or nullopt when
/// more bytes are needed. Throws ProtocolError on an oversized declared
/// length or a payload that is not valid JSON — the stream is unusable
/// after that (framing is lost).
class FrameReader {
public:
  void feed(const char* data, std::size_t size);
  std::optional<support::Json> next();

  /// Bytes buffered but not yet consumed by next().
  std::size_t pending() const { return buffer_.size(); }

private:
  std::string buffer_;
};

/// Blocking socket I/O. sendFrame writes the whole encoded frame (handling
/// short writes); recvFrame reads exactly one frame through `reader`, the
/// connection's persistent decoder state (a pipelined second frame read in
/// the same chunk stays buffered for the next call). recvFrame returns
/// nullopt on clean EOF at a frame boundary; EOF mid-frame, an oversized
/// frame, or malformed JSON throw ProtocolError; transport errors throw
/// std::runtime_error with errno detail.
void sendFrame(int fd, const support::Json& message);
std::optional<support::Json> recvFrame(int fd, FrameReader& reader);

} // namespace motune::serve
