#include "observe/expose.h"

#include "observe/metrics.h"

#include <cctype>
#include <cmath>
#include <sstream>

namespace motune::observe {

namespace {

/// Prometheus sample values: full double precision, but "NaN"/"+Inf"/"-Inf"
/// spellings for the non-finite cases the text format defines.
std::string sampleValue(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0 ? "+Inf" : "-Inf";
  std::ostringstream out;
  out.precision(17);
  out << v;
  return out.str();
}

void writeHelpType(std::ostream& out, const std::string& name,
                   const char* type) {
  out << "# TYPE " << name << ' ' << type << '\n';
}

} // namespace

std::string prometheusName(const std::string& name) {
  std::string out = "motune_";
  for (char c : name) {
    const bool valid = std::isalnum(static_cast<unsigned char>(c)) != 0 ||
                       c == '_' || c == ':';
    out += valid ? c : '_';
  }
  return out;
}

std::string renderPrometheus(const MetricsRegistry& registry) {
  std::ostringstream out;
  registry.eachCounter([&](const std::string& name, const Counter& c) {
    const std::string metric = prometheusName(name) + "_total";
    writeHelpType(out, metric, "counter");
    out << metric << ' ' << c.value() << '\n';
  });
  registry.eachGauge([&](const std::string& name, const Gauge& g) {
    const std::string metric = prometheusName(name);
    writeHelpType(out, metric, "gauge");
    out << metric << ' ' << sampleValue(g.value()) << '\n';
  });
  registry.eachHistogram([&](const std::string& name, const Histogram& h) {
    const Histogram::Snapshot s = h.snapshot();
    const std::string metric = prometheusName(name);
    writeHelpType(out, metric, "summary");
    if (s.count > 0) {
      out << metric << "{quantile=\"0.5\"} " << sampleValue(s.p50()) << '\n';
      out << metric << "{quantile=\"0.9\"} " << sampleValue(s.p90()) << '\n';
      out << metric << "{quantile=\"0.99\"} " << sampleValue(s.p99()) << '\n';
    }
    out << metric << "_sum " << sampleValue(s.sum) << '\n';
    out << metric << "_count " << s.count << '\n';
  });
  return out.str();
}

} // namespace motune::observe
