#include "observe/trace.h"

#include "observe/metrics.h"
#include "observe/ring.h"
#include "support/check.h"
#include "support/table.h"

#include <algorithm>
#include <fstream>
#include <ostream>

namespace motune::observe {

namespace {

/// Per-thread stack of open spans: (tracer, span id). Nesting is resolved
/// against the nearest open span of the SAME tracer, so independent tracers
/// (tests) sharing a thread do not adopt each other's spans.
struct OpenSpan {
  const Tracer* tracer;
  std::uint64_t id;
};
thread_local std::vector<OpenSpan> tlsSpanStack;

/// Active per-thread tracer override (see ScopedTracer).
thread_local Tracer* tlsTracerOverride = nullptr;

std::atomic<std::uint32_t> nextThreadId{1};

/// True iff `path` exists, is non-empty, and its last byte is not '\n' —
/// i.e. a crash tore the final line mid-write.
bool hasTornTail(const std::string& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in.good() || in.tellg() == std::streampos(0)) return false;
  in.seekg(-1, std::ios::end);
  char last = '\n';
  in.read(&last, 1);
  return last != '\n';
}

} // namespace

std::uint32_t currentThreadId() {
  thread_local const std::uint32_t tid =
      nextThreadId.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

// ---------------------------------------------------------------- records

const char* TraceRecord::kindName(Kind kind) {
  switch (kind) {
  case Kind::Span: return "span";
  case Kind::Event: return "event";
  case Kind::Counter: return "counter";
  case Kind::Gauge: return "gauge";
  case Kind::Histogram: return "histogram";
  }
  return "unknown";
}

support::Json TraceRecord::toJson() const {
  support::JsonObject obj;
  obj["type"] = kindName(kind);
  obj["name"] = name;
  obj["t"] = start;
  if (tid != 0) obj["tid"] = static_cast<std::uint64_t>(tid);
  if (kind == Kind::Span) {
    obj["id"] = id;
    obj["parent"] = parent;
    obj["dur"] = duration;
  }
  if (!attrs.empty()) obj["attrs"] = support::Json(attrs);
  return support::Json(std::move(obj));
}

// ------------------------------------------------------------------ sinks

JsonLinesSink::JsonLinesSink(std::ostream& out) : out_(&out) {}

JsonLinesSink::JsonLinesSink(const std::string& path, Mode mode) {
  const bool sealTornTail = mode == Mode::Append && hasTornTail(path);
  auto out = std::make_unique<std::ofstream>(
      path, mode == Mode::Append ? std::ios::app : std::ios::trunc);
  MOTUNE_CHECK_MSG(out->good(), "cannot open trace file: " + path);
  if (sealTornTail) *out << '\n';
  owned_ = std::move(out);
  out_ = owned_.get();
}

void JsonLinesSink::write(const TraceRecord& record) {
  *out_ << record.toJson().dump(-1) << '\n';
}

void JsonLinesSink::flush() { out_->flush(); }

ChromeTraceSink::ChromeTraceSink(std::ostream& out) : out_(&out) {
  *out_ << "[\n";
}

ChromeTraceSink::ChromeTraceSink(const std::string& path)
    : owned_(std::make_unique<std::ofstream>(path)), out_(owned_.get()) {
  MOTUNE_CHECK_MSG(owned_->good(), "cannot open trace file: " + path);
  *out_ << "[\n";
}

ChromeTraceSink::~ChromeTraceSink() {
  *out_ << "\n]\n";
  out_->flush();
}

void ChromeTraceSink::write(const TraceRecord& record) {
  // Chrome trace events use microsecond timestamps; tid 0 (records emitted
  // before any thread id was assigned, e.g. metric snapshots) maps to the
  // emitting thread being unknown — displayed on tid 0's track.
  support::JsonObject ev;
  ev["name"] = record.name;
  ev["pid"] = 1;
  ev["tid"] = static_cast<std::uint64_t>(record.tid);
  ev["ts"] = record.start * 1e6;
  switch (record.kind) {
  case TraceRecord::Kind::Span:
    ev["ph"] = "X";
    ev["dur"] = record.duration * 1e6;
    if (!record.attrs.empty()) ev["args"] = support::Json(record.attrs);
    break;
  case TraceRecord::Kind::Event:
    ev["ph"] = "i";
    ev["s"] = "t"; // thread-scoped instant
    if (!record.attrs.empty()) ev["args"] = support::Json(record.attrs);
    break;
  case TraceRecord::Kind::Counter:
  case TraceRecord::Kind::Gauge: {
    ev["ph"] = "C";
    support::JsonObject args;
    const auto it = record.attrs.find("value");
    args["value"] = it == record.attrs.end() ? support::Json(0.0) : it->second;
    ev["args"] = support::Json(std::move(args));
    break;
  }
  case TraceRecord::Kind::Histogram:
    // No native histogram phase; an instant with the summary as args keeps
    // the data visible in the viewer's event pane.
    ev["ph"] = "i";
    ev["s"] = "g"; // global instant
    if (!record.attrs.empty()) ev["args"] = support::Json(record.attrs);
    break;
  }
  if (!first_) *out_ << ",\n";
  first_ = false;
  *out_ << support::Json(std::move(ev)).dump(-1);
}

void ChromeTraceSink::flush() { out_->flush(); }

void TableSink::write(const TraceRecord& record) {
  records_.push_back(record);
}

void TableSink::flush() {
  if (records_.empty()) return;
  support::TextTable table("trace summary");
  table.setHeader({"type", "name", "t", "dur", "attrs"});
  for (const auto& r : records_) {
    std::string attrs;
    for (const auto& [key, value] : r.attrs) {
      if (!attrs.empty()) attrs += " ";
      attrs += key + "=" + value.dump(-1);
    }
    table.addRow({TraceRecord::kindName(r.kind), r.name,
                  support::fmtSeconds(r.start),
                  r.kind == TraceRecord::Kind::Span
                      ? support::fmtSeconds(r.duration)
                      : "-",
                  attrs});
  }
  *out_ << table.render();
  records_.clear();
}

void MemorySink::write(const TraceRecord& record) {
  std::lock_guard lock(mutex_);
  records_.push_back(record);
}

std::vector<TraceRecord> MemorySink::records() const {
  std::lock_guard lock(mutex_);
  return records_;
}

void MemorySink::clear() {
  std::lock_guard lock(mutex_);
  records_.clear();
}

// ------------------------------------------------------------------- span

Span::Span(Tracer* tracer, std::string name, support::JsonObject attrs)
    : tracer_(tracer) {
  record_.kind = TraceRecord::Kind::Span;
  record_.name = std::move(name);
  record_.attrs = std::move(attrs);
  record_.id = tracer_->nextId_.fetch_add(1, std::memory_order_relaxed);
  record_.parent = tracer_->currentParent();
  record_.tid = currentThreadId();
  record_.start = tracer_->now();
  tlsSpanStack.push_back({tracer_, record_.id});
}

Span::Span(Span&& other) noexcept
    : tracer_(other.tracer_), record_(std::move(other.record_)) {
  other.tracer_ = nullptr;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    tracer_ = other.tracer_;
    record_ = std::move(other.record_);
    other.tracer_ = nullptr;
  }
  return *this;
}

Span::~Span() { end(); }

void Span::setAttr(const std::string& key, support::Json value) {
  if (!tracer_) return;
  record_.attrs[key] = std::move(value);
}

void Span::end() {
  if (!tracer_) return;
  tracer_->endSpan(*this);
  tracer_ = nullptr;
}

// ----------------------------------------------------------------- tracer

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {
  // The single deliberate system_clock read: every timestamp in the trace
  // is steady (monotone); this anchor lets consumers print absolute times.
  wallEpochUnix_ = std::chrono::duration<double>(
                       std::chrono::system_clock::now().time_since_epoch())
                       .count();
}

double Tracer::now() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       epoch_)
      .count();
}

void Tracer::addSink(std::shared_ptr<Sink> sink) {
  MOTUNE_CHECK(sink != nullptr);
  // Each sink opens with the trace header, so any single output file is
  // self-describing: the wall-clock anchor of t=0 and the clock domain.
  TraceRecord header;
  header.kind = TraceRecord::Kind::Event;
  header.name = "trace.header";
  header.tid = currentThreadId();
  header.start = now();
  header.attrs = {{"wall_epoch_unix", support::Json(wallEpochUnix_)},
                  {"clock", support::Json("steady")},
                  {"time_unit", support::Json("s")}};
  std::lock_guard lock(mutex_);
  for (const auto& [key, value] : stamp_)
    if (header.attrs.find(key) == header.attrs.end())
      header.attrs[key] = value;
  sink->write(header);
  sinks_.push_back(std::move(sink));
  enabled_.store(true, std::memory_order_relaxed);
}

void Tracer::clearSinks() {
  drainRuntimeEvents();
  std::lock_guard lock(mutex_);
  for (const auto& sink : sinks_) sink->flush();
  sinks_.clear();
  enabled_.store(false, std::memory_order_relaxed);
}

std::uint64_t Tracer::currentParent() const {
  for (auto it = tlsSpanStack.rbegin(); it != tlsSpanStack.rend(); ++it)
    if (it->tracer == this) return it->id;
  return 0;
}

Span Tracer::span(std::string name, support::JsonObject attrs) {
  if (!enabled()) return {};
  return Span(this, std::move(name), std::move(attrs));
}

void Tracer::event(std::string name, support::JsonObject attrs) {
  if (!enabled()) return;
  TraceRecord record;
  record.kind = TraceRecord::Kind::Event;
  record.name = std::move(name);
  record.parent = currentParent();
  record.tid = currentThreadId();
  record.start = now();
  record.attrs = std::move(attrs);
  emit(record);
}

void Tracer::emitRecord(const TraceRecord& record) {
  if (!enabled()) return;
  emit(record);
}

void Tracer::endSpan(Span& span) {
  span.record_.duration = now() - span.record_.start;
  // Pop this span from the thread's stack (it is the top in disciplined
  // RAII use; search defensively otherwise).
  for (auto it = tlsSpanStack.rbegin(); it != tlsSpanStack.rend(); ++it) {
    if (it->tracer == this && it->id == span.record_.id) {
      tlsSpanStack.erase(std::next(it).base());
      break;
    }
  }
  emit(span.record_);
}

void Tracer::setStamp(support::JsonObject stamp) {
  std::lock_guard lock(mutex_);
  stamp_ = std::move(stamp);
}

void Tracer::emit(const TraceRecord& record) {
  std::lock_guard lock(mutex_);
  if (stamp_.empty()) {
    for (const auto& sink : sinks_) sink->write(record);
    return;
  }
  TraceRecord stamped = record;
  for (const auto& [key, value] : stamp_)
    if (stamped.attrs.find(key) == stamped.attrs.end())
      stamped.attrs[key] = value;
  for (const auto& sink : sinks_) sink->write(stamped);
}

void Tracer::snapshotMetrics(const MetricsRegistry& registry) {
  if (!enabled()) return;
  const double t = now();
  auto emitKind = [&](TraceRecord::Kind kind, const std::string& name,
                      support::JsonObject attrs) {
    TraceRecord record;
    record.kind = kind;
    record.name = name;
    record.tid = currentThreadId();
    record.start = t;
    record.attrs = std::move(attrs);
    emit(record);
  };
  registry.eachCounter([&](const std::string& name, const Counter& c) {
    emitKind(TraceRecord::Kind::Counter, name,
             {{"value", support::Json(c.value())}});
  });
  registry.eachGauge([&](const std::string& name, const Gauge& g) {
    emitKind(TraceRecord::Kind::Gauge, name,
             {{"value", support::Json(g.value())}});
  });
  registry.eachHistogram([&](const std::string& name, const Histogram& h) {
    const Histogram::Snapshot s = h.snapshot();
    support::JsonObject attrs{{"count", support::Json(s.count)},
                              {"sum", support::Json(s.sum)}};
    if (s.count > 0) {
      attrs["min"] = support::Json(s.min);
      attrs["max"] = support::Json(s.max);
      attrs["mean"] = support::Json(s.mean());
      attrs["p50"] = support::Json(s.p50());
      attrs["p90"] = support::Json(s.p90());
      attrs["p99"] = support::Json(s.p99());
    }
    emitKind(TraceRecord::Kind::Histogram, name, std::move(attrs));
  });
}

void Tracer::drainRuntimeEvents() {
  // Only the process-wide tracer owns the runtime rings: instrumented
  // runtime code reports to Tracer::process(), so draining into a private
  // (per-job or test) tracer would misattribute records.
  if (this == &Tracer::process() && enabled())
    RuntimeLog::global().drainInto(*this);
}

void Tracer::flush() {
  drainRuntimeEvents();
  std::lock_guard lock(mutex_);
  for (const auto& sink : sinks_) sink->flush();
}

Tracer& Tracer::global() {
  return tlsTracerOverride ? *tlsTracerOverride : process();
}

Tracer& Tracer::process() {
  static Tracer tracer;
  return tracer;
}

// ----------------------------------------------------------- scoped tracer

ScopedTracer::ScopedTracer(Tracer* tracer) : previous_(tlsTracerOverride) {
  tlsTracerOverride = tracer;
}

ScopedTracer::~ScopedTracer() { tlsTracerOverride = previous_; }

Tracer* ScopedTracer::current() { return tlsTracerOverride; }

} // namespace motune::observe
