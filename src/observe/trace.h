// Structured tracing for the tuning pipeline.
//
// The paper's headline results are trajectories — hypervolume per
// generation, evaluation counts (Table VI), runtime version-selection
// decisions — so the pipeline emits them as structured records instead of
// computing them internally and throwing them away. A Tracer produces
// spans (named, timed, nested, attributed) and events (instantaneous);
// pluggable Sinks consume the records: JSON-lines for machines (CI
// regression gates, dashboards), a summary table for humans, an in-memory
// buffer for tests.
//
// Overhead discipline: a Tracer with no sinks is disabled; span()/event()
// then cost one relaxed atomic load and produce nothing. Instrumented code
// therefore calls the process-wide Tracer::global() unconditionally.
#pragma once

#include "support/json.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace motune::observe {

class MetricsRegistry;

/// Small sequential id of the calling OS thread (1 = first thread that
/// asked). Shared by spans, events and the runtime ring buffers so every
/// trace record can be attributed to a worker.
std::uint32_t currentThreadId();

/// One trace record. Spans carry a duration and an id/parent pair encoding
/// nesting; events are instantaneous; metric kinds are registry snapshots
/// stitched into the trace at flush time.
struct TraceRecord {
  enum class Kind { Span, Event, Counter, Gauge, Histogram };

  Kind kind = Kind::Event;
  std::string name;
  std::uint64_t id = 0;     ///< span id (0 for non-spans)
  std::uint64_t parent = 0; ///< enclosing span id (0 = root)
  std::uint32_t tid = 0;    ///< emitting thread (currentThreadId())
  double start = 0.0;       ///< seconds since the tracer's epoch
  double duration = 0.0;    ///< span duration in seconds (0 otherwise)
  support::JsonObject attrs;

  /// JSONL line payload: {"type":..,"name":..,"t":..,...,"attrs":{..}}.
  support::Json toJson() const;
  static const char* kindName(Kind kind);
};

/// Consumer of trace records. Implementations must tolerate concurrent
/// write() calls being serialized by the Tracer (the Tracer holds its sink
/// lock around write), i.e. they need no locking of their own for that.
class Sink {
public:
  virtual ~Sink() = default;
  virtual void write(const TraceRecord& record) = 0;
  virtual void flush() {}
};

/// Machine-readable backend: one compact JSON object per line.
class JsonLinesSink final : public Sink {
public:
  /// Appending keeps records from a previous run of the same trace file
  /// (daemon restarts after SIGKILL); a torn final line left by the crash
  /// is sealed with a newline so the new run starts on a fresh line.
  enum class Mode { Truncate, Append };

  explicit JsonLinesSink(std::ostream& out); ///< not owned
  explicit JsonLinesSink(const std::string& path,
                         Mode mode = Mode::Truncate);
  void write(const TraceRecord& record) override;
  void flush() override;

private:
  std::unique_ptr<std::ostream> owned_;
  std::ostream* out_;
};

/// Human-readable backend: buffers records and renders a support::TextTable
/// on flush (spans with timing, then metric snapshots).
class TableSink final : public Sink {
public:
  explicit TableSink(std::ostream& out) : out_(&out) {}
  void write(const TraceRecord& record) override;
  void flush() override;

private:
  std::ostream* out_;
  std::vector<TraceRecord> records_;
};

/// Chrome trace-event sink: emits the JSON array format understood by
/// Perfetto / chrome://tracing. Spans become complete events (`ph:"X"`,
/// microsecond timestamps), events become instants (`ph:"i"`), counters
/// and gauges become counter samples (`ph:"C"`); every event carries
/// pid/tid. The closing `]` is written on destruction (Tracer::clearSinks
/// drops the sink); the array format tolerates a truncated tail, so a
/// crashed run still loads.
class ChromeTraceSink final : public Sink {
public:
  explicit ChromeTraceSink(std::ostream& out); ///< not owned
  explicit ChromeTraceSink(const std::string& path);
  ~ChromeTraceSink() override;
  void write(const TraceRecord& record) override;
  void flush() override;

private:
  std::unique_ptr<std::ostream> owned_;
  std::ostream* out_;
  bool first_ = true;
};

/// Test/introspection backend: keeps every record.
class MemorySink final : public Sink {
public:
  void write(const TraceRecord& record) override;
  std::vector<TraceRecord> records() const;
  void clear();

private:
  mutable std::mutex mutex_;
  std::vector<TraceRecord> records_;
};

class Tracer;

/// RAII handle for an in-flight span. Inactive (default-constructed or
/// produced by a disabled tracer) handles no-op. End on the thread that
/// started the span — nesting is tracked per thread.
class Span {
public:
  Span() = default;
  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  bool active() const { return tracer_ != nullptr; }
  std::uint64_t id() const { return record_.id; }

  /// Attaches/overwrites an attribute; recorded when the span ends.
  void setAttr(const std::string& key, support::Json value);

  /// Ends the span now (destructor otherwise ends it).
  void end();

private:
  friend class Tracer;
  Span(Tracer* tracer, std::string name, support::JsonObject attrs);

  Tracer* tracer_ = nullptr;
  TraceRecord record_;
};

/// Thread-safe span/event producer. Disabled until a sink is attached.
///
/// Clock discipline: all timestamps are steady_clock seconds since the
/// tracer's epoch (construction time), so spans never go backwards. The
/// wall-clock anchor is recorded exactly once per sink as a `trace.header`
/// event (attr `wall_epoch_unix`), letting consumers print absolute times.
class Tracer {
public:
  Tracer();

  void addSink(std::shared_ptr<Sink> sink);
  /// Flushes and detaches all sinks (tracer becomes disabled again).
  void clearSinks();
  bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Opens a span; the returned handle records nesting for this thread.
  Span span(std::string name, support::JsonObject attrs = {});

  /// Emits an instantaneous event under the current thread's span.
  void event(std::string name, support::JsonObject attrs = {});

  /// Emits a pre-built record verbatim (ring-buffer drains, adapters).
  void emitRecord(const TraceRecord& record);

  /// Hands the tracer a fresh span id (ring drains synthesize spans).
  std::uint64_t allocateId() {
    return nextId_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Starts span-id allocation at `base`. Per-job tracers seed a disjoint
  /// id range (job number in the high bits) so ids never collide across
  /// concurrent jobs or across the runs of one resumed job.
  void seedIds(std::uint64_t base) {
    nextId_.store(base, std::memory_order_relaxed);
  }

  /// Attributes merged into every record this tracer emits (job id, run
  /// sequence). Set before attaching sinks; record-local keys win.
  void setStamp(support::JsonObject stamp);

  /// Stitches a snapshot of every registry instrument into the trace as
  /// Counter/Gauge/Histogram records (run-level totals at end of run).
  void snapshotMetrics(const MetricsRegistry& registry);

  /// Drains the runtime ring buffers into the sinks, then flushes them.
  void flush();

  /// Seconds since this tracer's epoch (construction time).
  double now() const;

  /// Tracer the pipeline instrumentation reports to: the thread's
  /// ScopedTracer override when one is installed (per-job tracing in the
  /// daemon), otherwise the process-wide tracer.
  static Tracer& global();

  /// The process-wide tracer itself, ignoring thread overrides. Owns the
  /// runtime event rings; the CLI attaches `--trace` sinks here.
  static Tracer& process();

private:
  friend class Span;
  void endSpan(Span& span);
  void emit(const TraceRecord& record);
  void drainRuntimeEvents();
  std::uint64_t currentParent() const;

  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> nextId_{1};
  std::chrono::steady_clock::time_point epoch_;
  double wallEpochUnix_ = 0.0; ///< system_clock anchor, captured once
  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<Sink>> sinks_;
  support::JsonObject stamp_; ///< merged into every record (see setStamp)
};

/// RAII thread-local tracer override: while alive, Tracer::global() on this
/// thread resolves to `tracer`. The daemon installs one per job worker so
/// all instrumentation below (autotuner, evaluator, search engines) lands
/// in the job's trace; ThreadPool::submit propagates the override into pool
/// threads so parallel evaluations are captured too.
class ScopedTracer {
public:
  explicit ScopedTracer(Tracer* tracer);
  ~ScopedTracer();
  ScopedTracer(const ScopedTracer&) = delete;
  ScopedTracer& operator=(const ScopedTracer&) = delete;

  /// The calling thread's active override (nullptr when none).
  static Tracer* current();

private:
  Tracer* previous_;
};

} // namespace motune::observe
