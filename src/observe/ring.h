// Per-thread lock-free event rings for the runtime hot path.
//
// parallel_for chunks, pool task executions, worker idle gaps and region
// invocations happen far too often to take the Tracer's sink mutex per
// record. Instead every OS thread owns a fixed-size single-producer ring:
// the hot path does two relaxed atomic loads plus a slot write, and the
// Tracer drains all rings into its sinks at flush points (Tracer::flush /
// clearSinks), converting each entry into a TraceRecord that carries the
// producing thread's id. When a ring is full, records are dropped and
// counted — the drop counter is reported into the trace on every drain, so
// loss is never silent.
//
// Overhead discipline: producers only run when Tracer::global() is enabled
// (call sites gate on that one relaxed atomic load), so the disabled-path
// cost of the runtime instrumentation stays a single load per call site.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

namespace motune::observe {

class Tracer;

/// One compact runtime event. Meaning of arg0/arg1 depends on the kind.
struct RuntimeEvent {
  enum class Kind : std::uint8_t {
    Task,         ///< pool task execution (arg0: 1 = run by a helping joiner)
    Idle,         ///< worker wait between tasks
    Chunk,        ///< parallel_for chunk (arg0 = lo, arg1 = hi)
    RegionInvoke, ///< region version execution (arg0 = version, arg1 = threads)
  };

  Kind kind = Kind::Task;
  double start = 0.0;    ///< Tracer::global().now() seconds
  double duration = 0.0;
  std::int64_t arg0 = 0;
  std::int64_t arg1 = 0;

  /// Trace record name for a kind ("rt.task", "rt.idle", ...).
  static const char* kindName(Kind kind);
};

/// Fixed-capacity single-producer / single-consumer ring. The owning
/// thread pushes; the drain (serialized by RuntimeLog's mutex) pops.
/// Overflow increments a drop counter instead of blocking or tearing.
class EventRing {
public:
  explicit EventRing(std::uint32_t tid, std::size_t capacity = kDefaultCapacity);

  std::uint32_t tid() const { return tid_; }
  std::size_t capacity() const { return slots_.size(); }

  /// Producer side (owning thread only). Returns false when full (the
  /// event is dropped and counted).
  bool tryPush(const RuntimeEvent& event);

  /// Events dropped since construction (monotone).
  std::uint64_t drops() const {
    return drops_.load(std::memory_order_relaxed);
  }

  /// Consumer side: pops every currently-visible event into `out` (appends;
  /// events stay in production order). Safe to run concurrently with
  /// tryPush, but only from one consumer at a time.
  void drain(std::vector<RuntimeEvent>& out);

  static constexpr std::size_t kDefaultCapacity = 8192;

private:
  const std::uint32_t tid_;
  std::vector<RuntimeEvent> slots_;
  const std::size_t mask_;
  // head_ is written by the producer only, tail_ by the consumer only.
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> tail_{0};
  std::atomic<std::uint64_t> drops_{0};
};

/// Process-wide registry of per-thread rings. Leaky singleton: worker
/// threads of static pools may outlive ordinary static destruction order.
class RuntimeLog {
public:
  /// The calling thread's ring (created and registered on first use).
  EventRing& ring();

  /// Pops every ring's pending events, converts them to span records (with
  /// thread ids) and emits them through `tracer`, followed by one
  /// `rt.ring.dropped` counter record carrying the total drop count — the
  /// counter is emitted even when zero, so consumers can assert that no
  /// loss occurred.
  void drainInto(Tracer& tracer);

  /// Sum of drop counters over all rings.
  std::uint64_t totalDrops() const;

  /// Number of registered rings (threads that ever pushed).
  std::size_t ringCount() const;

  static RuntimeLog& global();

private:
  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<EventRing>> rings_;
};

} // namespace motune::observe
