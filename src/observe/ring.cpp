#include "observe/ring.h"

#include "observe/trace.h"
#include "support/check.h"

#include <algorithm>

namespace motune::observe {

const char* RuntimeEvent::kindName(Kind kind) {
  switch (kind) {
  case Kind::Task: return "rt.task";
  case Kind::Idle: return "rt.idle";
  case Kind::Chunk: return "rt.chunk";
  case Kind::RegionInvoke: return "rt.region";
  }
  return "rt.unknown";
}

namespace {

std::size_t roundUpPow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

} // namespace

EventRing::EventRing(std::uint32_t tid, std::size_t capacity)
    : tid_(tid),
      slots_(roundUpPow2(std::max<std::size_t>(capacity, 2))),
      mask_(slots_.size() - 1) {}

bool EventRing::tryPush(const RuntimeEvent& event) {
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  const std::uint64_t tail = tail_.load(std::memory_order_acquire);
  if (head - tail >= slots_.size()) {
    drops_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  slots_[head & mask_] = event;
  head_.store(head + 1, std::memory_order_release);
  return true;
}

void EventRing::drain(std::vector<RuntimeEvent>& out) {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  for (; tail != head; ++tail) out.push_back(slots_[tail & mask_]);
  tail_.store(tail, std::memory_order_release);
}

EventRing& RuntimeLog::ring() {
  thread_local EventRing* tlsRing = nullptr;
  if (tlsRing == nullptr) {
    auto fresh = std::make_shared<EventRing>(currentThreadId());
    tlsRing = fresh.get();
    std::lock_guard lock(mutex_);
    rings_.push_back(std::move(fresh)); // registry keeps rings alive forever
  }
  return *tlsRing;
}

void RuntimeLog::drainInto(Tracer& tracer) {
  std::vector<std::shared_ptr<EventRing>> rings;
  {
    std::lock_guard lock(mutex_);
    rings = rings_;
  }
  std::vector<RuntimeEvent> events;
  std::uint64_t drops = 0;
  for (const auto& ring : rings) {
    events.clear();
    ring->drain(events);
    drops += ring->drops();
    for (const RuntimeEvent& e : events) {
      TraceRecord record;
      record.kind = TraceRecord::Kind::Span; // timed, but flat (parent 0)
      record.name = RuntimeEvent::kindName(e.kind);
      record.id = tracer.allocateId();
      record.tid = ring->tid();
      record.start = e.start;
      record.duration = e.duration;
      switch (e.kind) {
      case RuntimeEvent::Kind::Task:
        if (e.arg0 != 0) record.attrs["helper"] = support::Json(true);
        break;
      case RuntimeEvent::Kind::Idle:
        break;
      case RuntimeEvent::Kind::Chunk:
        record.attrs["lo"] = support::Json(e.arg0);
        record.attrs["hi"] = support::Json(e.arg1);
        break;
      case RuntimeEvent::Kind::RegionInvoke:
        record.attrs["version"] = support::Json(e.arg0);
        record.attrs["threads"] = support::Json(e.arg1);
        break;
      }
      tracer.emitRecord(record);
    }
  }
  // Always reported (even at zero): consumers assert "no silent loss".
  TraceRecord counter;
  counter.kind = TraceRecord::Kind::Counter;
  counter.name = "rt.ring.dropped";
  counter.tid = currentThreadId();
  counter.start = tracer.now();
  counter.attrs["value"] = support::Json(drops);
  tracer.emitRecord(counter);
}

std::uint64_t RuntimeLog::totalDrops() const {
  std::lock_guard lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& ring : rings_) total += ring->drops();
  return total;
}

std::size_t RuntimeLog::ringCount() const {
  std::lock_guard lock(mutex_);
  return rings_.size();
}

RuntimeLog& RuntimeLog::global() {
  static RuntimeLog* log = new RuntimeLog; // leaky: workers may outlive exit
  return *log;
}

} // namespace motune::observe
