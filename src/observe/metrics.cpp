#include "observe/metrics.h"

#include "support/table.h"

#include <cmath>

namespace motune::observe {

namespace {

// DDSketch-style relative-accuracy buckets: gamma = 1.04 bounds the
// per-bucket relative error by (gamma-1)/(gamma+1) ~ 2%.
constexpr double kGamma = 1.04;
const double kLogGamma = std::log(kGamma);

int bucketIndex(double v) {
  return static_cast<int>(std::ceil(std::log(v) / kLogGamma));
}

double bucketValue(int index) {
  // Midpoint of (gamma^(i-1), gamma^i] in the relative sense.
  return 2.0 * std::pow(kGamma, index) / (1.0 + kGamma);
}

} // namespace

void Histogram::observe(double v) {
  std::lock_guard lock(mutex_);
  ++count_;
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
  if (v > 0.0)
    ++buckets_[bucketIndex(v)];
  else
    ++nonPositive_;
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard lock(mutex_);
  Snapshot s;
  s.count = count_;
  s.sum = sum_;
  if (count_ > 0) {
    s.min = min_;
    s.max = max_;
  }
  s.nonPositive = nonPositive_;
  s.buckets = buckets_;
  return s;
}

double Histogram::Snapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  // Rank of the q-quantile among `count` sorted observations; the
  // non-positive observations (all <= 0, summarized only by min) sort
  // before every bucket.
  const auto rank = static_cast<std::uint64_t>(
      q * static_cast<double>(count - 1));
  if (rank < nonPositive) return min;
  std::uint64_t seen = nonPositive;
  for (const auto& [index, n] : buckets) {
    seen += n;
    if (rank < seen)
      return std::min(max, std::max(min, bucketValue(index)));
  }
  return max;
}

void Histogram::reset() {
  std::lock_guard lock(mutex_);
  count_ = 0;
  sum_ = 0.0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
  nonPositive_ = 0;
  buckets_.clear();
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

support::Json MetricsRegistry::toJson() const {
  support::JsonObject counters, gauges, histograms;
  {
    std::lock_guard lock(mutex_);
    for (const auto& [name, c] : counters_)
      counters[name] = support::Json(c->value());
    for (const auto& [name, g] : gauges_)
      gauges[name] = support::Json(g->value());
    for (const auto& [name, h] : histograms_) {
      const Histogram::Snapshot s = h->snapshot();
      support::JsonObject obj{{"count", support::Json(s.count)},
                              {"sum", support::Json(s.sum)}};
      if (s.count > 0) {
        obj["min"] = support::Json(s.min);
        obj["max"] = support::Json(s.max);
        obj["mean"] = support::Json(s.mean());
        obj["p50"] = support::Json(s.p50());
        obj["p90"] = support::Json(s.p90());
        obj["p99"] = support::Json(s.p99());
      }
      histograms[name] = support::Json(std::move(obj));
    }
  }
  return support::Json(support::JsonObject{
      {"counters", support::Json(std::move(counters))},
      {"gauges", support::Json(std::move(gauges))},
      {"histograms", support::Json(std::move(histograms))}});
}

std::string MetricsRegistry::renderTable() const {
  support::TextTable table("metrics");
  table.setHeader({"kind", "name", "value"});
  std::lock_guard lock(mutex_);
  for (const auto& [name, c] : counters_)
    table.addRow({"counter", name, std::to_string(c->value())});
  for (const auto& [name, g] : gauges_)
    table.addRow({"gauge", name, support::fmt(g->value(), 6)});
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot s = h->snapshot();
    table.addRow({"histogram", name,
                  "n=" + std::to_string(s.count) +
                      " mean=" + support::fmt(s.mean(), 6) +
                      " max=" + support::fmt(s.count ? s.max : 0.0, 6)});
  }
  return table.render();
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& entry : counters_) entry.second->reset();
  for (auto& entry : gauges_) entry.second->reset();
  for (auto& entry : histograms_) entry.second->reset();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

} // namespace motune::observe
