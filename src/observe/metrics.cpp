#include "observe/metrics.h"

#include "support/table.h"

namespace motune::observe {

void Histogram::observe(double v) {
  std::lock_guard lock(mutex_);
  ++count_;
  sum_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
}

Histogram::Snapshot Histogram::snapshot() const {
  std::lock_guard lock(mutex_);
  Snapshot s;
  s.count = count_;
  s.sum = sum_;
  if (count_ > 0) {
    s.min = min_;
    s.max = max_;
  }
  return s;
}

void Histogram::reset() {
  std::lock_guard lock(mutex_);
  count_ = 0;
  sum_ = 0.0;
  min_ = std::numeric_limits<double>::infinity();
  max_ = -std::numeric_limits<double>::infinity();
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

support::Json MetricsRegistry::toJson() const {
  support::JsonObject counters, gauges, histograms;
  {
    std::lock_guard lock(mutex_);
    for (const auto& [name, c] : counters_)
      counters[name] = support::Json(c->value());
    for (const auto& [name, g] : gauges_)
      gauges[name] = support::Json(g->value());
    for (const auto& [name, h] : histograms_) {
      const Histogram::Snapshot s = h->snapshot();
      support::JsonObject obj{{"count", support::Json(s.count)},
                              {"sum", support::Json(s.sum)}};
      if (s.count > 0) {
        obj["min"] = support::Json(s.min);
        obj["max"] = support::Json(s.max);
        obj["mean"] = support::Json(s.mean());
      }
      histograms[name] = support::Json(std::move(obj));
    }
  }
  return support::Json(support::JsonObject{
      {"counters", support::Json(std::move(counters))},
      {"gauges", support::Json(std::move(gauges))},
      {"histograms", support::Json(std::move(histograms))}});
}

std::string MetricsRegistry::renderTable() const {
  support::TextTable table("metrics");
  table.setHeader({"kind", "name", "value"});
  std::lock_guard lock(mutex_);
  for (const auto& [name, c] : counters_)
    table.addRow({"counter", name, std::to_string(c->value())});
  for (const auto& [name, g] : gauges_)
    table.addRow({"gauge", name, support::fmt(g->value(), 6)});
  for (const auto& [name, h] : histograms_) {
    const Histogram::Snapshot s = h->snapshot();
    table.addRow({"histogram", name,
                  "n=" + std::to_string(s.count) +
                      " mean=" + support::fmt(s.mean(), 6) +
                      " max=" + support::fmt(s.count ? s.max : 0.0, 6)});
  }
  return table.render();
}

void MetricsRegistry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& entry : counters_) entry.second->reset();
  for (auto& entry : gauges_) entry.second->reset();
  for (auto& entry : histograms_) entry.second->reset();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

} // namespace motune::observe
