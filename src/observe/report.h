// Trace analysis: turns a recorded run (JSONL trace) into an explanation.
//
// PR 1 made the tuning pipeline emit structured spans/events/metrics; this
// module reads them back and answers the questions the paper answers with
// its figures: where did the tuning time go (span self-time attribution,
// collapsed stacks), how did RS-GDE3 converge (hypervolume per generation
// with stall detection — the paper's Fig. 5-style trajectory), what did
// the search produce (final Pareto front per kernel), how effective was
// evaluation memoization, which versions did the runtime pick, and how
// well the analytical cost model agrees with the cache simulator on the
// sampled configurations. `motune report` is the CLI front end.
#pragma once

#include "observe/trace.h"

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace motune::observe {

struct ReportOptions {
  std::size_t topK = 10;       ///< hot-span table size
  double stallEpsilon = 0.002; ///< relative HV gain below which a run stalled
};

/// Per-name span aggregation. Self time is the span's duration minus the
/// durations of its direct children (span nesting via id/parent).
struct SpanStat {
  std::string name;
  std::uint64_t count = 0;
  double totalSeconds = 0.0;
  double selfSeconds = 0.0;
};

/// One point of the convergence trajectory (a gde3.generation span).
struct GenerationPoint {
  std::int64_t gen = 0;
  double bestHv = 0.0; ///< best-so-far hypervolume (monotone)
  double genHv = 0.0;  ///< this generation's raw front hypervolume
  std::int64_t frontSize = 0;
  std::int64_t immigrants = 0;
  bool improved = false;
};

struct StallInfo {
  bool stalled = false;
  std::int64_t flatTail = 0;      ///< trailing generations without HV gain
  double totalImprovement = 0.0;  ///< relative HV gain, first -> last
  std::string verdict;            ///< human-readable one-liner
};

/// Per-thread runtime activity (from the drained ring buffers).
struct ThreadActivity {
  std::uint32_t tid = 0;
  std::uint64_t tasks = 0;
  std::uint64_t chunks = 0;
  std::uint64_t regions = 0;
  double busySeconds = 0.0; ///< task + region execution time
  double idleSeconds = 0.0;
};

struct Report {
  // Trace header.
  double wallEpochUnix = 0.0;
  std::size_t records = 0;

  // Span attribution.
  std::vector<SpanStat> hotSpans;       ///< sorted by self time, top-k
  double totalSelfSeconds = 0.0;        ///< denominator for self-time shares
  std::string collapsedStacks;          ///< flamegraph collapsed-stack dump

  // Convergence.
  std::vector<GenerationPoint> convergence;
  StallInfo stall;

  // Final Pareto front (autotune.front_version events, in emission order).
  std::vector<support::JsonObject> front;

  // Evaluator.
  std::uint64_t uniqueEvaluations = 0;
  std::uint64_t memoHits = 0;
  double memoHitRate = 0.0;
  support::JsonObject evalLatency; ///< histogram attrs (mean/p50/p90/p99/..)

  // Runtime version selection.
  std::map<std::string, std::map<std::int64_t, std::uint64_t>>
      selectionsByPolicy;                            ///< region.select
  std::map<std::int64_t, std::uint64_t> invocations; ///< rt.region by version
  std::map<std::string, std::uint64_t> adaptiveCounters; ///< rt.adaptive.*

  // Model-vs-cachesim validation (eval.validate events).
  std::vector<support::JsonObject> validations;

  // Runtime threads.
  std::vector<ThreadActivity> threads;
  std::uint64_t ringDrops = 0;
  bool sawRingDropCounter = false;
};

/// Parses a JSONL trace (as written by JsonLinesSink) back into records.
/// Malformed lines raise support::CheckError with the line number.
std::vector<TraceRecord> parseTraceJsonl(std::istream& in);
std::vector<TraceRecord> parseTraceFile(const std::string& path);

/// Builds the report from parsed records.
Report buildReport(const std::vector<TraceRecord>& records,
                   const ReportOptions& options = {});

/// Renders the report as markdown (the `motune report` default).
std::string renderMarkdown(const Report& report);

/// Renders the report as a JSON document (for dashboards / diffing).
support::Json reportToJson(const Report& report);

} // namespace motune::observe
