// Low-overhead metric instruments for the tuning pipeline.
//
// Counters are monotone (unique evaluations, memo hits, region
// invocations), gauges hold the latest value of a quantity (best
// hypervolume, reduced-boundary volume), histograms summarize a
// distribution (evaluation latency, region execution time). Instruments
// are always on: recording is a relaxed atomic op (counters/gauges) or a
// short critical section (histograms), cheap next to the work being
// measured. A MetricsRegistry names and owns instruments; handles returned
// by it stay valid for the registry's lifetime, so hot paths look the
// instrument up once and keep the reference.
#pragma once

#include "support/json.h"

#include <array>
#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace motune::observe {

/// Monotone counter (reset() excepted). Internally striped: each thread
/// adds to its own cache-line-padded cell, so counters on hot paths (memo
/// hits under parallel batch evaluation) do not serialize the threads on
/// one contended cache line. value() sums the stripes — exact whenever the
/// writers are quiescent, which is when every reader (tests, report,
/// snapshot-at-run-end) looks.
class Counter {
public:
  void add(std::uint64_t delta = 1) {
    stripes_[stripeIndex()].v.fetch_add(delta, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    std::uint64_t sum = 0;
    for (const auto& s : stripes_)
      sum += s.v.load(std::memory_order_relaxed);
    return sum;
  }
  void reset() {
    for (auto& s : stripes_) s.v.store(0, std::memory_order_relaxed);
  }

private:
  static constexpr std::size_t kStripes = 8; // power of two (mask select)
  struct alignas(64) Stripe {
    std::atomic<std::uint64_t> v{0};
  };

  /// Stable per-thread stripe, assigned round-robin on first use; threads
  /// land on distinct cache lines until more than kStripes are live.
  static std::size_t stripeIndex() {
    static std::atomic<std::size_t> next{0};
    static thread_local std::size_t idx =
        next.fetch_add(1, std::memory_order_relaxed);
    return idx & (kStripes - 1);
  }

  std::array<Stripe, kStripes> stripes_;
};

/// Last-value-wins gauge.
class Gauge {
public:
  void set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void reset() { value_.store(0.0, std::memory_order_relaxed); }

private:
  std::atomic<double> value_{0.0};
};

/// Streaming summary of an observed distribution. Besides count/sum/min/
/// max it keeps a log-bucketed sketch (DDSketch-style, ~2% relative error)
/// of the positive values, so snapshots can answer quantile queries with
/// bounded memory — evaluation latencies span orders of magnitude, which
/// is exactly what relative-error buckets handle well.
class Histogram {
public:
  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    std::uint64_t nonPositive = 0;         ///< observations <= 0
    std::map<int, std::uint64_t> buckets;  ///< log-bucket index -> count

    double mean() const {
      return count == 0 ? 0.0 : sum / static_cast<double>(count);
    }

    /// Value at quantile q in [0, 1], within ~2% relative error for
    /// positive observations (exact at the min/max ends). 0 when empty.
    double quantile(double q) const;
    double p50() const { return quantile(0.50); }
    double p90() const { return quantile(0.90); }
    double p99() const { return quantile(0.99); }
  };

  void observe(double v);
  Snapshot snapshot() const;
  void reset();

private:
  mutable std::mutex mutex_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
  std::uint64_t nonPositive_ = 0;
  std::map<int, std::uint64_t> buckets_;
};

/// Named instrument store. counter()/gauge()/histogram() create on first
/// use and always return the same instrument for a name afterwards.
class MetricsRegistry {
public:
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// {"counters":{..},"gauges":{..},"histograms":{name:{count,sum,..}}}.
  support::Json toJson() const;

  /// Human-readable dump via support::TextTable.
  std::string renderTable() const;

  /// Zeroes every instrument; existing handles remain valid.
  void reset();

  /// Process-wide registry the pipeline instrumentation reports to.
  static MetricsRegistry& global();

  /// Calls `fn(name, instrument)` for each instrument of one kind, in name
  /// order (used by Tracer::snapshotMetrics).
  template <typename Fn> void eachCounter(Fn&& fn) const {
    std::lock_guard lock(mutex_);
    for (const auto& [name, c] : counters_) fn(name, *c);
  }
  template <typename Fn> void eachGauge(Fn&& fn) const {
    std::lock_guard lock(mutex_);
    for (const auto& [name, g] : gauges_) fn(name, *g);
  }
  template <typename Fn> void eachHistogram(Fn&& fn) const {
    std::lock_guard lock(mutex_);
    for (const auto& [name, h] : histograms_) fn(name, *h);
  }

private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

} // namespace motune::observe
